// Package seabed is a from-scratch Go implementation of Seabed (OSDI 2016):
// big-data analytics over encrypted datasets.
//
// Seabed lets an analyst run OLAP-style SQL over data that stays encrypted
// on an untrusted server. Its core primitive is ASHE, an additively
// symmetric homomorphic encryption scheme three orders of magnitude faster
// than Paillier, paired with SPLASHE, a splayed encoding that defeats
// frequency attacks on deterministically encrypted dimensions.
//
// The typical flow mirrors the paper's three client requests (§4.1). Every
// request takes a context.Context, so queries can be canceled mid-flight or
// bounded by a deadline, and options configure each query:
//
//	ctx := context.Background()
//	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 16})
//	proxy, _ := seabed.NewProxy(masterSecret, cluster)
//
//	// 1. Create Plan: plaintext schema + sample queries → encrypted schema.
//	proxy.CreatePlan(schema, samples, seabed.PlannerOptions{})
//
//	// 2. Upload Data: plaintext rows → encrypted columnar tables.
//	proxy.Upload(ctx, "sales", data, seabed.ModeSeabed)
//
//	// 3. Query Data: unmodified SQL → decrypted rows + latency breakdown.
//	res, _ := proxy.Query(ctx, "SELECT SUM(revenue) FROM sales WHERE country = 'CA'",
//	    seabed.WithTimeout(30*time.Second))
//	rows, _ := res.All()
//
// Canceling ctx aborts the query at every layer — the in-process worker
// pool, the wire-protocol exchange with a seabed-server, a shard scatter —
// and Query returns ctx.Err() promptly. Large scans can stream instead of
// materializing:
//
//	res, _ := proxy.Query(ctx, "SELECT revenue FROM sales WHERE day > 180",
//	    seabed.WithStreaming())
//	for row, err := range res.Rows() { // decrypts chunk by chunk
//	    ...
//	}
//
// The package re-exports the system's building blocks — the ASHE, SPLASHE,
// DET, ORE and Paillier schemes, the columnar store, the Spark-like engine,
// the planner and the query translator — so downstream users can compose
// them directly; see the examples directory.
package seabed

import (
	"time"

	"seabed/internal/client"
	"seabed/internal/durable"
	"seabed/internal/engine"
	"seabed/internal/fleet"
	"seabed/internal/idlist"
	"seabed/internal/netsim"
	"seabed/internal/obs"
	"seabed/internal/planner"
	"seabed/internal/remote"
	"seabed/internal/schema"
	"seabed/internal/server"
	"seabed/internal/shard"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
	"seabed/internal/translate"
)

// System types.
type (
	// Proxy is the trusted client-side proxy: planner, encryption module,
	// query translator front-end, and decryption module (§4).
	Proxy = client.Proxy
	// KeyRing derives every per-column key from one master secret.
	KeyRing = client.KeyRing
	// Cluster is the untrusted server: a Spark-like engine over partitioned
	// columnar tables (§4.5).
	Cluster = engine.Cluster
	// ClusterConfig sizes the simulated cluster.
	ClusterConfig = engine.Config
	// ClusterBackend abstracts the engine the proxy drives: an in-process
	// *Cluster or a *RemoteCluster reaching a seabed-server over TCP.
	ClusterBackend = client.ClusterBackend
	// RemoteCluster is a ClusterBackend speaking the wire protocol to a
	// seabed-server daemon.
	RemoteCluster = remote.RemoteCluster
	// ShardedCluster is a ClusterBackend that range-partitions tables across
	// N seabed-server daemons and scatter-gathers every query (merging ASHE,
	// Paillier, and group-by partials at the trusted proxy).
	ShardedCluster = shard.Cluster
	// FleetCluster is a ClusterBackend that range-partitions tables across N
	// seabed-server daemons with R-way replication: queries fail over to a
	// live replica when a daemon dies, stragglers are hedged to a second
	// replica past a completion quantile, and a dead daemon heals from its
	// neighbors over the wire's segment-shipping frames.
	FleetCluster = fleet.Cluster
	// FleetOptions configures DialFleet: replica count, hedge quantile, and
	// the epoch file that makes the coordinator's placement durable.
	FleetOptions = fleet.Options
	// FleetStats is a fleet's health and mitigation counters
	// (FleetCluster.Stats).
	FleetStats = fleet.Stats
	// Server hosts a Cluster behind a TCP listener (cmd/seabed-server wraps
	// it; embed it to serve from your own process).
	Server = server.Server
	// DurableStore is the disk-backed table store a restartable server
	// mounts (cmd/seabed-server's -data-dir): segment files + write-ahead
	// log + crash recovery. Attach one with Server.UseDurable.
	DurableStore = durable.Store
	// DurableOptions configures OpenDurableStore.
	DurableOptions = durable.Options
	// QueryOption tunes one query execution (see the With… options).
	QueryOption = client.QueryOption
	// QueryResult is a decrypted result with its latency breakdown. Rows
	// yields the decrypted rows (incrementally for streamed scans); All
	// materializes them; Trace returns the query's span tree.
	QueryResult = client.QueryResult
	// TraceSpan is one span of a query trace: QueryResult.Trace() returns
	// the root, covering parse through decrypt at the proxy, per-shard
	// scatter spans, and each daemon's queue/map/shuffle/reduce breakdown.
	// TraceSpan.SlowestChild("shard ") on the run span names the straggler
	// that dominated a skewed query (§6.2).
	TraceSpan = obs.Span
	// MetricsRegistry is a server's time-series metrics registry
	// (Server.Metrics); WritePrometheus renders the text exposition that
	// seabed-server's -debug-addr /metrics endpoint serves.
	MetricsRegistry = obs.Registry
	// Row is one decrypted result row.
	Row = client.Row
	// Value is one result cell.
	Value = client.Value
	// Schema describes a plaintext table.
	Schema = schema.Table
	// SchemaColumn describes one plaintext column.
	SchemaColumn = schema.Column
	// Plan is the encrypted schema the planner produces.
	Plan = planner.Plan
	// PlannerOptions tunes the planner (§4.2).
	PlannerOptions = planner.Options
	// Mode selects NoEnc, Seabed, or the Paillier baseline.
	Mode = translate.Mode
	// Table is a partitioned columnar table.
	Table = store.Table
	// Column is one column vector.
	Column = store.Column
	// Link is a modeled network link.
	Link = netsim.Link
	// Query is a parsed SQL statement.
	Query = sqlparse.Query
)

// Modes (§6.1's three systems).
const (
	// ModeNoEnc runs queries over unencrypted data.
	ModeNoEnc = translate.NoEnc
	// ModeSeabed runs the paper's system: ASHE + SPLASHE + DET + OPE.
	ModeSeabed = translate.Seabed
	// ModePaillier runs the CryptDB/Monomi-style baseline.
	ModePaillier = translate.Paillier
)

// Column types.
const (
	// Int64 marks integer columns.
	Int64 = schema.Int64
	// String marks string columns.
	String = schema.String
)

// Column kinds for building source tables.
const (
	// U64 columns hold integers.
	U64 = store.U64
	// Bytes columns hold byte strings.
	Bytes = store.Bytes
	// Str columns hold strings.
	Str = store.Str
)

// Predefined network links (§6.1, §6.6).
var (
	// LinkInCluster is the default 2 Gbps / 0.5 ms placement.
	LinkInCluster = netsim.InCluster
	// LinkWAN100 is the degraded 100 Mbps / 10 ms link.
	LinkWAN100 = netsim.WAN100
	// LinkWAN10 is the degraded 10 Mbps / 100 ms link.
	LinkWAN10 = netsim.WAN10
)

// NewCluster creates the untrusted server with the given configuration.
func NewCluster(cfg ClusterConfig) *Cluster { return engine.NewCluster(cfg) }

// NewServer wraps a cluster in a wire-protocol TCP server; call
// ListenAndServe (or Serve) on the result.
func NewServer(cluster *Cluster) *Server { return server.New(cluster) }

// Fsync policies for OpenDurableStore.
const (
	// FsyncAlways syncs the WAL before every append acknowledgement.
	FsyncAlways = durable.FsyncAlways
	// FsyncBatch amortizes syncs, trading a bounded loss window for
	// memory-speed acknowledgements.
	FsyncBatch = durable.FsyncBatch
)

// OpenDurableStore mounts (creating or recovering) a disk-backed table
// store; attach it to a Server with UseDurable to make the daemon
// restartable.
func OpenDurableStore(opts DurableOptions) (*DurableStore, error) { return durable.Open(opts) }

// DialCluster connects to a running seabed-server and returns a backend
// usable wherever an in-process *Cluster is: pass it to NewProxy to run the
// whole Create Plan / Upload Data / Query Data flow against a remote engine.
func DialCluster(addr string) (*RemoteCluster, error) { return remote.Dial(addr) }

// DialShardedCluster connects to N running seabed-server daemons and returns
// a sharded backend: uploads range-partition across the daemons by row
// identifier, queries scatter to every shard concurrently, and partial
// aggregates merge at the proxy (ASHE bodies sum, identifier lists merge,
// Paillier ciphertexts multiply, group-by partials reduce by key).
func DialShardedCluster(addrs ...string) (*ShardedCluster, error) { return shard.Dial(addrs) }

// DialFleet connects to N running seabed-server daemons and returns a
// replicated fleet backend: every identifier range lives on
// FleetOptions.Replicas daemons (chained declustering), queries fail over
// and hedge across replicas, and FleetCluster.Heal rebuilds a dead daemon
// from its neighbors without re-uploading. See the internal/fleet package
// comment for the full model.
func DialFleet(addrs []string, opts FleetOptions) (*FleetCluster, error) {
	return fleet.Dial(addrs, opts)
}

// NewProxy creates the trusted proxy with a master secret (≥ 16 bytes).
func NewProxy(masterSecret []byte, cluster ClusterBackend) (*Proxy, error) {
	return client.NewProxy(masterSecret, cluster)
}

// Query options -----------------------------------------------------------

// WithMode selects the encryption mode a query runs under: ModeSeabed (the
// default), ModeNoEnc, or ModePaillier. The table must have been uploaded
// under that mode.
func WithMode(m Mode) QueryOption { return client.WithMode(m) }

// WithTimeout bounds a query's end-to-end execution; past the deadline every
// layer is canceled and the query returns context.DeadlineExceeded. It
// composes with any deadline already on the caller's context (the earlier
// one wins).
func WithTimeout(d time.Duration) QueryOption { return client.WithTimeout(d) }

// WithExpectedGroups feeds the group-inflation heuristic (§4.5) the expected
// number of distinct groups.
func WithExpectedGroups(n int) QueryOption { return client.WithExpectedGroups(n) }

// WithoutInflation turns the group-inflation optimization off.
func WithoutInflation() QueryOption { return client.WithoutInflation() }

// WithForceInflate overrides the computed group-inflation factor.
func WithForceInflate(n int) QueryOption { return client.WithForceInflate(n) }

// WithSelectivity appends the §6.1 random-selection filter: each row is
// chosen independently with probability prob in (0, 1), deterministically
// from seed.
func WithSelectivity(prob float64, seed uint64) QueryOption {
	return client.WithSelectivity(prob, seed)
}

// WithCodec overrides the identifier-list codec (the Figure 8 sweep).
func WithCodec(c idlist.Codec) QueryOption { return client.WithCodec(c) }

// WithCompressAtDriver moves result compression from workers to the driver
// (the §4.5 ablation).
func WithCompressAtDriver() QueryOption { return client.WithCompressAtDriver() }

// WithServerOnly skips client-side decryption, matching experiments that
// measure only server latency (§6.7).
func WithServerOnly() QueryOption { return client.WithServerOnly() }

// WithStreaming makes a scan query stream: QueryResult.Rows yields rows as
// result chunks arrive, decrypting incrementally instead of materializing
// the whole scan.
func WithStreaming() QueryOption { return client.WithStreaming() }

// BuildTable assembles a plaintext source table from full-length columns.
func BuildTable(name string, cols []Column, parts int) (*Table, error) {
	return store.Build(name, cols, parts)
}

// ParseSQL parses a statement in Seabed's SQL subset (§4.4).
func ParseSQL(src string) (*Query, error) { return sqlparse.Parse(src) }
