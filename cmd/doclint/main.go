// Command doclint enforces the repository's godoc standard: every exported
// top-level declaration (and the package clause itself) in the checked
// packages must carry a doc comment. go vet accepts silent exports; this
// repository does not — the package docs are the architecture record
// (internal/engine sets the bar), so an undocumented export is a review
// failure, caught here in CI rather than in review.
//
// Usage:
//
//	doclint [dir ...]        (default: ./internal/... equivalent walk)
//
// Each dir is walked recursively; _test.go files and testdata directories
// are skipped. Exits 1 listing every undocumented export as file:line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal"}
	}
	var bad []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			findings, err := lintFile(path)
			if err != nil {
				return err
			}
			bad = append(bad, findings...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Println(b)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported declarations\n", len(bad))
		os.Exit(1)
	}
}

// lintFile parses one file and returns a finding per undocumented export.
func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods count when the receiver type is exported: an exported
			// method on an unexported type is still reachable through
			// interfaces and deserves a doc, so no receiver exemption.
			report(d.Pos(), "exported "+funcKind(d)+" "+d.Name.Name+" has no doc comment")
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return out, nil
}

// lintGenDecl reports undocumented exported consts, vars, and types. A doc
// on the grouped decl covers its specs (the standard const-block idiom);
// within an undocumented group, each exported spec needs its own comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type "+s.Name.Name+" has no doc comment")
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "exported "+kindWord(d.Tok)+" "+name.Name+" has no doc comment")
				}
			}
		}
	}
}

// funcKind distinguishes methods from functions in findings.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// kindWord renders the decl keyword for a finding message.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
