// Command seabed-top is the fleet's health viewer: a one-screen rollup of
// daemon liveness, per-daemon load and residency pressure, hedge/failover
// rates, and replica staleness, refreshed on an interval like top(1).
//
// Two sources, one output:
//
//	seabed-top -url http://127.0.0.1:7700            # a proxy's /debug/fleet
//	seabed-top -addrs :7687,:7689,:7691              # dial the fleet directly
//	seabed-top -addrs ... -debug-addrs :7688,:7690,:7692   # + /stats per daemon
//
// With -url the tool polls an already-running proxy's debug plane (the
// /debug/fleet endpoint client.Proxy.DebugHandler mounts when its backend is
// a fleet coordinator). With -addrs it dials the daemons itself and builds
// the same rollup coordinator-side. -once prints a single snapshot and exits
// nonzero unless every daemon is live — the CI liveness check (1 for a
// degraded or unreachable fleet, 2 when the fleet cannot even be dialed).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"seabed/internal/fleet"
)

func main() {
	url := flag.String("url", "", "proxy debug-plane base URL to poll /debug/fleet from")
	addrs := flag.String("addrs", "", "comma-separated daemon addresses to dial directly")
	debugAddrs := flag.String("debug-addrs", "", "comma-separated daemon debug addresses (with -addrs; one per daemon)")
	replicas := flag.Int("replicas", 0, "replication factor R (with -addrs; 0 = fleet default)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit (status 1 if any daemon is unreachable)")
	flag.Parse()

	fetch, cleanup, err := buildFetcher(*url, *addrs, *debugAddrs, *replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seabed-top:", err)
		os.Exit(2)
	}
	defer cleanup()

	for {
		h, err := fetch(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "seabed-top:", err)
			if *once {
				os.Exit(1)
			}
		} else {
			render(os.Stdout, h)
			if *once {
				if h.Live < len(h.Daemons) {
					os.Exit(1)
				}
				return
			}
		}
		time.Sleep(*interval)
	}
}

// buildFetcher resolves the flags into one health source: an HTTP poll of a
// proxy's /debug/fleet, or a directly-dialed fleet coordinator.
func buildFetcher(url, addrs, debugAddrs string, replicas int) (fetch func(context.Context) (*fleet.FleetHealth, error), cleanup func(), err error) {
	cleanup = func() {}
	switch {
	case url != "" && addrs != "":
		return nil, nil, fmt.Errorf("-url and -addrs are mutually exclusive")
	case url != "":
		base := strings.TrimSuffix(url, "/")
		return func(ctx context.Context) (*fleet.FleetHealth, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/fleet", nil)
			if err != nil {
				return nil, err
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close() //nolint:errcheck // read-only body
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET %s/debug/fleet: %s", base, resp.Status)
			}
			var h fleet.FleetHealth
			if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
				return nil, err
			}
			return &h, nil
		}, cleanup, nil
	case addrs != "":
		var dbg []string
		if debugAddrs != "" {
			dbg = strings.Split(debugAddrs, ",")
		}
		c, err := fleet.Dial(strings.Split(addrs, ","), fleet.Options{
			Replicas:   replicas,
			DebugAddrs: dbg,
		})
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context) (*fleet.FleetHealth, error) {
			h := c.Health(ctx)
			return &h, nil
		}, func() { c.Close() }, nil //nolint:errcheck // exiting anyway
	}
	return nil, nil, fmt.Errorf("need -url or -addrs (see -help)")
}

// render prints one snapshot as a fixed-width table plus a summary line.
func render(w *os.File, h *fleet.FleetHealth) {
	fmt.Fprintf(w, "fleet: %d/%d live  R=%d  epoch=%d  hedges=%d  failovers=%d  stale_ranges=%d\n",
		h.Live, len(h.Daemons), h.Replicas, h.Epoch, h.Hedges, h.Failovers, len(h.StaleRanges))
	fmt.Fprintf(w, "%-3s %-22s %-5s %-5s %-7s %7s %7s %7s %9s %12s\n",
		"ID", "ADDR", "LIVE", "DOWN", "RANGES", "RUNS", "ACTIVE", "TABLES", "FAULTS", "RESIDENT")
	for _, d := range h.Daemons {
		live, down := "yes", "-"
		if !d.Live {
			live = "NO"
		}
		if d.Down {
			down = "DOWN"
		}
		runs, active, faults, resident := "-", "-", "-", "-"
		if d.Stats != nil {
			runs = fmt.Sprintf("%d", d.Stats.Runs)
			active = fmt.Sprintf("%d", d.Stats.RunsActive)
			faults = fmt.Sprintf("%d", d.Stats.Residency.ColumnFaults)
			resident = fmt.Sprintf("%d", d.Stats.ResidentBytes)
		}
		fmt.Fprintf(w, "%-3d %-22s %-5s %-5s %-7d %7s %7s %7d %9s %12s\n",
			d.Index, d.Addr, live, down, len(d.Ranges), runs, active, d.Tables, faults, resident)
		if d.Err != "" {
			fmt.Fprintf(w, "    └─ %s\n", d.Err)
		}
	}
	for _, sr := range h.StaleRanges {
		fmt.Fprintf(w, "stale: %s range %d max_end_id=%d lag=%v\n", sr.Ref, sr.Range, sr.MaxEndID, sr.Lag)
	}
}
