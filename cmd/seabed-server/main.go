// Command seabed-server runs Seabed's untrusted engine as a standalone
// daemon: an engine.Cluster behind a TCP listener speaking the
// internal/wire protocol. The trusted proxy (internal/client) connects via
// internal/remote, uploads encrypted tables, and submits physical plans —
// the server never sees a key or a plaintext row (§4).
//
// Usage:
//
//	seabed-server -addr :7687 -workers 16
//
// then, from the client side:
//
//	seabed-demo -addr localhost:7687
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"seabed/internal/engine"
	"seabed/internal/server"
)

func main() {
	addr := flag.String("addr", ":7687", "TCP listen address")
	workers := flag.Int("workers", 16, "simulated cluster workers (the x-axis of Figure 7)")
	parallelism := flag.Int("parallelism", 0, "bound on real task goroutines (0 = NumCPU)")
	seed := flag.Uint64("seed", 0, "seed for straggler injection and group inflation")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	flag.Parse()

	cluster := engine.NewCluster(engine.Config{
		Workers:         *workers,
		RealParallelism: *parallelism,
		Seed:            *seed,
	})
	srv := server.New(cluster)
	if !*quiet {
		srv.Logf = log.Printf
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closed := make(chan struct{})
	go func() {
		s := <-sig
		log.Printf("seabed-server: %v: shutting down", s)
		srv.Close() //nolint:errcheck // exiting either way
		close(closed)
	}()

	log.Printf("seabed-server: listening on %s (%d workers)", *addr, *workers)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "seabed-server:", err)
		os.Exit(1)
	}
	// Serve returns once the listener closes; wait for Close to finish
	// tearing down the connections before exiting.
	<-closed
	log.Printf("seabed-server: bye")
}
