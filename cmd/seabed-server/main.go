// Command seabed-server runs Seabed's untrusted engine as a standalone
// daemon: an engine.Cluster behind a TCP listener speaking the
// internal/wire protocol. The trusted proxy (internal/client) connects via
// internal/remote, uploads encrypted tables, and submits physical plans —
// the server never sees a key or a plaintext row (§4).
//
// Usage:
//
//	seabed-server -addr :7687 -workers 16
//
// then, from the client side:
//
//	seabed-demo -addr localhost:7687
//
// With -data-dir the daemon is durable and restartable: uploads flush to
// checksummed segment files, appends journal to a write-ahead log before
// they are acknowledged (-fsync selects the policy), and a restart over the
// same directory recovers every table — including after a crash, which at
// worst costs a torn, unacknowledged WAL tail:
//
//	seabed-server -addr :7687 -data-dir /var/lib/seabed -fsync always
//
// A sharded deployment runs one daemon per shard, each declaring its
// identity, and the client scatter-gathers across all of them:
//
//	seabed-server -addr :7687 -shard 0/3 &
//	seabed-server -addr :7688 -shard 1/3 &
//	seabed-server -addr :7689 -shard 2/3 &
//	seabed-demo -addrs localhost:7687,localhost:7688,localhost:7689
//
// With -metrics, the daemon prints per-connection and per-table statistics
// on SIGUSR1 — `kill -USR1 $(pidof seabed-server)` shows whether shards
// stayed balanced.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"seabed/internal/durable"
	"seabed/internal/engine"
	"seabed/internal/server"
)

// parseShard validates an "i/n" shard identity.
func parseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		var err1, err2 error
		i, err1 = strconv.Atoi(is)
		n, err2 = strconv.Atoi(ns)
		ok = err1 == nil && err2 == nil
	}
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want i/n, e.g. 0/3", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: shard index must be in [0, %d)", s, n)
	}
	return i, n, nil
}

func main() {
	addr := flag.String("addr", ":7687", "TCP listen address")
	workers := flag.Int("workers", engine.DefaultWorkers, "simulated cluster workers (the x-axis of Figure 7)")
	parallelism := flag.Int("parallelism", 0, "bound on real task goroutines (0 = NumCPU)")
	seed := flag.Uint64("seed", 0, "seed for straggler injection and group inflation")
	shard := flag.String("shard", "", "shard identity i/n in a sharded deployment (e.g. 0/3)")
	metrics := flag.Bool("metrics", false, "print per-connection/table stats on SIGUSR1")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before connections are force-closed")
	dataDir := flag.String("data-dir", "", "durable table storage directory (WAL + segment files); empty = in-memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always (ack after fsync) or batch (bounded loss window)")
	flag.Parse()

	shardIdx, shardCount, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seabed-server:", err)
		os.Exit(2)
	}
	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seabed-server:", err)
		os.Exit(2)
	}
	label := "seabed-server"
	if shardCount > 1 {
		label = fmt.Sprintf("seabed-server[%d/%d]", shardIdx, shardCount)
	}

	cluster := engine.NewCluster(engine.Config{
		Workers:         *workers,
		RealParallelism: *parallelism,
		Seed:            *seed,
	})
	srv := server.New(cluster)
	if shardCount > 1 {
		srv.ShardIndex, srv.ShardCount = shardIdx, shardCount
	}
	if !*quiet {
		srv.Logf = func(format string, args ...any) {
			log.Printf(label+": "+format, args...)
		}
	}
	var dstore *durable.Store
	if *dataDir != "" {
		opts := durable.Options{Dir: *dataDir, Fsync: fsyncPolicy}
		if !*quiet {
			opts.Logf = func(format string, args ...any) {
				log.Printf(label+": durable: "+format, args...)
			}
		}
		dstore, err = durable.Open(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, label+":", err)
			os.Exit(1)
		}
		srv.UseDurable(dstore)
		r := dstore.Recovery()
		log.Printf("%s: data-dir %s (fsync=%v): recovered %d tables, %d segments, %d wal records (%d torn tails), %d bytes in %v",
			label, *dataDir, fsyncPolicy, r.Tables, r.Segments, r.WALRecords, r.TornTails, r.Bytes, r.Duration)
	}
	if *metrics {
		watchMetrics(srv, label)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops accepting, cancels
	// in-flight queries through the context plumbing (each canceled client
	// gets its terminal error response), and drains connections within the
	// -drain budget; a second signal force-closes immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closed := make(chan struct{})
	go func() {
		s := <-sig
		log.Printf("%s: %v: draining (up to %v; signal again to force)", label, s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			<-sig
			log.Printf("%s: second signal: force-closing", label)
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("%s: drain incomplete (%v); connections force-closed", label, err)
		}
		close(closed)
	}()

	log.Printf("%s: listening on %s (%d workers)", label, *addr, *workers)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, label+":", err)
		os.Exit(1)
	}
	// Serve returns once the listener closes; wait for Shutdown to finish
	// draining the connections before exiting 0, then sync and close the
	// durable store — after the drain, so every acknowledged append has
	// been journaled through it.
	<-closed
	if dstore != nil {
		if err := dstore.Close(); err != nil {
			log.Printf("%s: close durable store: %v", label, err)
		}
	}
	log.Printf("%s: bye", label)
}
