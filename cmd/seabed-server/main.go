// Command seabed-server runs Seabed's untrusted engine as a standalone
// daemon: an engine.Cluster behind a TCP listener speaking the
// internal/wire protocol. The trusted proxy (internal/client) connects via
// internal/remote, uploads encrypted tables, and submits physical plans —
// the server never sees a key or a plaintext row (§4).
//
// Usage:
//
//	seabed-server -addr :7687 -workers 16
//
// then, from the client side:
//
//	seabed-demo -addr localhost:7687
//
// With -data-dir the daemon is durable and restartable: uploads flush to
// checksummed segment files, appends journal to a write-ahead log before
// they are acknowledged (-fsync selects the policy), and a restart over the
// same directory recovers every table — including after a crash, which at
// worst costs a torn, unacknowledged WAL tail:
//
//	seabed-server -addr :7687 -data-dir /var/lib/seabed -fsync always
//
// Recovery maps segment files instead of reading them: columns fault into
// memory per query, and -max-resident caps how much faulted column data
// stays resident (least-recently-pinned partitions evict back to their
// mapping), so a daemon can serve tables larger than RAM:
//
//	seabed-server -addr :7687 -data-dir /var/lib/seabed -max-resident 256MiB
//
// A sharded deployment runs one daemon per shard, each declaring its
// identity, and the client scatter-gathers across all of them:
//
//	seabed-server -addr :7687 -shard 0/3 &
//	seabed-server -addr :7688 -shard 1/3 &
//	seabed-server -addr :7689 -shard 2/3 &
//	seabed-demo -addrs localhost:7687,localhost:7688,localhost:7689
//
// Adding -replicas on the client turns the same daemons into a replicated
// fleet: each identifier range is registered on R daemons (chained
// declustering), queries fail over to a live replica when a daemon dies,
// stragglers are hedged to a second replica past the -hedge quantile, and a
// daemon restarted on an empty disk heals by pulling its tables directly
// from its neighbors over the protocol's segment-shipping frames (no proxy
// re-upload — the /stats and /metrics planes count the shipped bytes):
//
//	seabed-demo -addrs localhost:7687,localhost:7688,localhost:7689 -replicas 2 -hedge 0.9
//
// With -metrics, the daemon prints per-connection and per-table statistics
// on SIGUSR1 — `kill -USR1 $(pidof seabed-server)` shows whether shards
// stayed balanced; -metrics-format selects the rendering (text or json).
//
// With -debug-addr the daemon serves its debug plane over HTTP on a second
// listener: /metrics (Prometheus text exposition of request, WAL, and
// recovery latency series), /stats (the SIGUSR1 snapshot as JSON), and
// /debug/pprof/ (the standard Go profiles):
//
//	seabed-server -addr :7687 -debug-addr :7688
//	curl -s localhost:7688/metrics | grep seabed_request_seconds
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"seabed/internal/durable"
	"seabed/internal/engine"
	"seabed/internal/server"
)

// parseByteSize parses a -max-resident value: a plain byte count or a
// number with a binary/decimal suffix (64MiB, 2GB, 512k). Case-insensitive;
// an empty string means 0 (unlimited).
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30}, {"tib", 1 << 40},
		{"kb", 1e3}, {"mb", 1e6}, {"gb", 1e9}, {"tb", 1e12},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}, {"t", 1 << 40},
		{"b", 1},
	}
	lower := strings.ToLower(s)
	mult := int64(1)
	num := lower
	for _, u := range units {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(lower, u.suffix))
			break
		}
	}
	n, err := strconv.ParseFloat(num, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("byte size %q: want a count like 67108864, 64MiB, or 2GB", s)
	}
	return int64(n * float64(mult)), nil
}

// parseShard validates an "i/n" shard identity.
func parseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		var err1, err2 error
		i, err1 = strconv.Atoi(is)
		n, err2 = strconv.Atoi(ns)
		ok = err1 == nil && err2 == nil
	}
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q: want i/n, e.g. 0/3", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: shard index must be in [0, %d)", s, n)
	}
	return i, n, nil
}

func main() {
	addr := flag.String("addr", ":7687", "TCP listen address")
	workers := flag.Int("workers", engine.DefaultWorkers, "simulated cluster workers (the x-axis of Figure 7)")
	parallelism := flag.Int("parallelism", 0, "bound on real task goroutines (0 = NumCPU)")
	seed := flag.Uint64("seed", 0, "seed for straggler injection and group inflation")
	shard := flag.String("shard", "", "shard identity i/n in a sharded deployment (e.g. 0/3)")
	metrics := flag.Bool("metrics", false, "print per-connection/table stats on SIGUSR1")
	metricsFormat := flag.String("metrics-format", "text", "SIGUSR1 stats rendering: text or json")
	debugAddr := flag.String("debug-addr", "", "HTTP debug listener (/metrics exposition, /stats JSON, /debug/pprof/); empty = disabled")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before connections are force-closed")
	dataDir := flag.String("data-dir", "", "durable table storage directory (WAL + segment files); empty = in-memory only")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always (ack after fsync) or batch (bounded loss window)")
	maxResident := flag.String("max-resident", "", "budget for column data faulted in from mapped segments (e.g. 64MiB, 2GB); empty or 0 = unlimited")
	flag.Parse()

	shardIdx, shardCount, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seabed-server:", err)
		os.Exit(2)
	}
	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seabed-server:", err)
		os.Exit(2)
	}
	maxResidentBytes, err := parseByteSize(*maxResident)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seabed-server: -max-resident:", err)
		os.Exit(2)
	}
	if *metricsFormat != "text" && *metricsFormat != "json" {
		fmt.Fprintf(os.Stderr, "seabed-server: -metrics-format %q: want text or json\n", *metricsFormat)
		os.Exit(2)
	}
	label := "seabed-server"
	if shardCount > 1 {
		label = fmt.Sprintf("seabed-server[%d/%d]", shardIdx, shardCount)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("daemon", label)

	cluster := engine.NewCluster(engine.Config{
		Workers:         *workers,
		RealParallelism: *parallelism,
		Seed:            *seed,
	})
	srv := server.New(cluster)
	if shardCount > 1 {
		srv.ShardIndex, srv.ShardCount = shardIdx, shardCount
	}
	if !*quiet {
		srv.Log = logger
	}
	var dstore *durable.Store
	if *dataDir != "" {
		opts := durable.Options{Dir: *dataDir, Fsync: fsyncPolicy, Metrics: srv.Metrics(), MaxResidentBytes: maxResidentBytes}
		if !*quiet {
			opts.Log = logger.With("subsys", "durable")
		}
		dstore, err = durable.Open(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, label+":", err)
			os.Exit(1)
		}
		srv.UseDurable(dstore)
		r := dstore.Recovery()
		logger.Info("recovered data-dir",
			"dir", *dataDir, "fsync", fsyncPolicy.String(),
			"tables", r.Tables, "segments", r.Segments,
			"wal_records", r.WALRecords, "torn_tails", r.TornTails,
			"bytes", r.Bytes, "mapped_bytes", r.MappedBytes, "duration", r.Duration)
	}
	if *metrics {
		watchMetrics(srv, logger, *metricsFormat)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, label+":", err)
			os.Exit(1)
		}
		logger.Info("debug listener up", "debug_addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, srv.DebugHandler()); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Warn("debug listener failed", "err", err)
			}
		}()
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops accepting, cancels
	// in-flight queries through the context plumbing (each canceled client
	// gets its terminal error response), and drains connections within the
	// -drain budget; a second signal force-closes immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closed := make(chan struct{})
	go func() {
		s := <-sig
		logger.Info("draining", "signal", s.String(), "budget", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			<-sig
			logger.Warn("second signal: force-closing")
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete; connections force-closed", "err", err)
		}
		close(closed)
	}()

	logger.Info("listening", "addr", *addr, "workers", *workers)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, label+":", err)
		os.Exit(1)
	}
	// Serve returns once the listener closes; wait for Shutdown to finish
	// draining the connections before exiting 0, then sync and close the
	// durable store — after the drain, so every acknowledged append has
	// been journaled through it.
	<-closed
	if dstore != nil {
		if err := dstore.Close(); err != nil {
			logger.Warn("close durable store", "err", err)
		}
	}
	logger.Info("bye")
}
