//go:build unix

package main

import (
	"encoding/json"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"seabed/internal/server"
)

// watchMetrics prints a stats snapshot whenever the daemon receives SIGUSR1
// (the -metrics flag), rendered per -metrics-format: "text" is the
// human-oriented multi-line dump, "json" the same snapshot in the
// machine-stable field names Stats.MarshalJSON defines.
func watchMetrics(srv *server.Server, logger *slog.Logger, format string) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGUSR1)
	go func() {
		for range sig {
			if format == "json" {
				b, err := json.Marshal(srv.Stats())
				if err != nil {
					logger.Warn("marshal stats", "err", err)
					continue
				}
				os.Stderr.Write(append(b, '\n')) //nolint:errcheck // best-effort dump
				continue
			}
			logger.Info("stats", "snapshot", srv.Stats().String())
		}
	}()
}
