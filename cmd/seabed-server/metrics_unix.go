//go:build unix

package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"

	"seabed/internal/server"
)

// watchMetrics prints a stats snapshot to the log whenever the daemon
// receives SIGUSR1 (the -metrics flag).
func watchMetrics(srv *server.Server, label string) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGUSR1)
	go func() {
		for range sig {
			log.Printf("%s: stats: %s", label, srv.Stats())
		}
	}()
}
