//go:build !unix

package main

import (
	"log"

	"seabed/internal/server"
)

// watchMetrics is a no-op where SIGUSR1 does not exist.
func watchMetrics(_ *server.Server, label string) {
	log.Printf("%s: -metrics requires a unix platform (SIGUSR1); ignoring", label)
}
