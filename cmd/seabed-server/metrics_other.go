//go:build !unix

package main

import (
	"log/slog"

	"seabed/internal/server"
)

// watchMetrics is a no-op where SIGUSR1 does not exist.
func watchMetrics(_ *server.Server, logger *slog.Logger, _ string) {
	logger.Warn("-metrics requires a unix platform (SIGUSR1); ignoring")
}
