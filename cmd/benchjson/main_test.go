package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: seabed
cpu: Test CPU
BenchmarkTable1_OperationCosts-8   	       1	 123456789 ns/op	  4096 B/op	      42 allocs/op
BenchmarkFig6_LatencyVsRows-8      	       2	  98765432 ns/op
BenchmarkKernelFilterSumU64-8      	    2024	    560806 ns/op	 467443508 rows/s	       0 B/op	       0 allocs/op
PASS
ok  	seabed	12.345s
`

func TestConvert(t *testing.T) {
	var out strings.Builder
	if err := convert(strings.NewReader(sample), &out, "abc123"); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Commit != "abc123" || len(rep.Benchmarks) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkTable1_OperationCosts" || b.Procs != 8 ||
		b.Iterations != 1 || b.NsPerOp != 123456789 || b.BytesPerOp != 4096 || b.AllocsPerOp != 42 {
		t.Fatalf("benchmark 0 = %+v", b)
	}
	if rep.Benchmarks[1].BytesPerOp != 0 || rep.Benchmarks[1].Extra != nil {
		t.Fatalf("benchmark 1 = %+v", rep.Benchmarks[1])
	}
	// Custom ReportMetric units (the kernel benchmarks' rows/s) must land in
	// Extra without disturbing the standard columns.
	k := rep.Benchmarks[2]
	if k.Name != "BenchmarkKernelFilterSumU64" || k.NsPerOp != 560806 ||
		k.AllocsPerOp != 0 || k.Extra["rows/s"] != 467443508 {
		t.Fatalf("benchmark 2 = %+v", k)
	}
}

func TestConvertRejectsEmptyAndFailed(t *testing.T) {
	var out strings.Builder
	if err := convert(strings.NewReader("PASS\n"), &out, ""); err == nil {
		t.Fatal("empty bench stream accepted")
	}
	failed := sample + "--- FAIL: TestSomething (0.00s)\nFAIL\n"
	if err := convert(strings.NewReader(failed), &out, ""); err == nil {
		t.Fatal("failed bench stream accepted")
	}
}
