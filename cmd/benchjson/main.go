// Command benchjson converts `go test -bench` output into the repository's
// BENCH_<sha>.json artifact format, so CI can archive one machine-readable
// performance snapshot per commit and the perf trajectory across commits can
// be diffed mechanically.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | benchjson -commit $SHA > BENCH_$SHA.json
//
// It exits non-zero if the stream contains test failures or no benchmark
// lines at all, so a silently broken bench run fails the CI job instead of
// archiving an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -procs suffix stripped.
	Name string `json:"name"`
	// Procs is GOMAXPROCS during the run (the -N name suffix; 1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp mirror the standard -benchmem metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units by name — e.g. the engine's
	// kernel benchmarks report "rows/s" — so throughput rows land in the
	// artifact alongside the standard metrics.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_<sha>.json document.
type Report struct {
	Commit     string      `json:"commit,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench parses one "Benchmark..." output line; ok is false for lines
// that are not benchmark results.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if procs, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			b.Name, b.Procs = fields[0][:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
				seen = true
			}
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			// Custom b.ReportMetric units (e.g. "rows/s"). A unit contains a
			// non-numeric rune, which tells it apart from a stray number.
			if v, err := strconv.ParseFloat(val, 64); err == nil && !numericToken(unit) {
				if b.Extra == nil {
					b.Extra = make(map[string]float64)
				}
				b.Extra[unit] = v
			}
		}
	}
	return b, seen
}

// numericToken reports whether s parses as a number (so it cannot be a
// metric unit).
func numericToken(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// convert reads bench output from r and writes the JSON report to w.
func convert(r io.Reader, w io.Writer, commit string) error {
	report := Report{
		Commit:    commit,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBench(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
		if strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL") {
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("bench stream contains failures")
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func main() {
	commit := flag.String("commit", "", "commit SHA recorded in the report")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := convert(os.Stdin, w, *commit); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
