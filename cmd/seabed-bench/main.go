// Command seabed-bench regenerates every table and figure of the Seabed
// paper's evaluation (§6) at laptop scale.
//
// Usage:
//
//	seabed-bench [-run name[,name...]] [-scale N] [-workers N] [-quick] [-trials N]
//
// Without -run, every experiment runs in paper order. Row counts are the
// paper's divided by -scale (default 10,000); shapes, not absolute numbers,
// are the reproduction target (see DESIGN.md and EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seabed/internal/bench"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment names (default: all); use -list to enumerate")
	list := flag.Bool("list", false, "list experiments and exit")
	scale := flag.Uint64("scale", 10_000, "divide the paper's row counts by this factor")
	workers := flag.Int("workers", 100, "simulated cluster worker count (paper: 100 cores)")
	quick := flag.Bool("quick", false, "shrink sweeps and datasets for a fast smoke run")
	trials := flag.Int("trials", 0, "runs per measured point (0 = default)")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Workers: *workers, Quick: *quick, Trials: *trials, Seed: *seed}

	selected := bench.Experiments()
	if *run != "" {
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			e, ok := bench.Find(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "seabed-bench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s — %s ===\n", e.Name, e.Title)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "seabed-bench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %.1fs ---\n", e.Name, time.Since(start).Seconds())
	}
}
