// Command seabed-bench regenerates every table and figure of the Seabed
// paper's evaluation (§6) at laptop scale.
//
// Usage:
//
//	seabed-bench [-run name[,name...]] [-scale N] [-workers N] [-quick] [-trials N]
//	             [-cpuprofile out.pprof] [-memprofile out.pprof] [-trace]
//
// Without -run, every experiment runs in paper order. Row counts are the
// paper's divided by -scale (default 10,000); shapes, not absolute numbers,
// are the reproduction target (see DESIGN.md and EXPERIMENTS.md).
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments, so executor work is measurable without hand-editing: e.g.
//
//	seabed-bench -run kernels -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
//
// -trace prints the slowest query's span tree (parse/translate/run/decrypt,
// plus the engine's stage breakdown) after each experiment, so a regression
// in one experiment points at its slowest stage without a re-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"seabed/internal/bench"
)

func main() {
	os.Exit(run())
}

// run carries the real main so profile writers and other defers execute
// before the process exits.
func run() int {
	runFlag := flag.String("run", "", "comma-separated experiment names (default: all); use -list to enumerate")
	list := flag.Bool("list", false, "list experiments and exit")
	scale := flag.Uint64("scale", 10_000, "divide the paper's row counts by this factor")
	workers := flag.Int("workers", 100, "simulated cluster worker count (paper: 100 cores)")
	quick := flag.Bool("quick", false, "shrink sweeps and datasets for a fast smoke run")
	trials := flag.Int("trials", 0, "runs per measured point (0 = default)")
	seed := flag.Int64("seed", 42, "generator seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file on exit")
	trace := flag.Bool("trace", false, "print the slowest query's span tree after each experiment")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return 0
	}

	cfg := bench.Config{Scale: *scale, Workers: *workers, Quick: *quick, Trials: *trials, Seed: *seed}
	if *trace {
		bench.EnableTracing()
	}

	selected := bench.Experiments()
	if *runFlag != "" {
		selected = nil
		for _, name := range strings.Split(*runFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "seabed-bench: unknown experiment %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabed-bench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "seabed-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "seabed-bench: -cpuprofile: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seabed-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "seabed-bench: -memprofile: %v\n", err)
			}
		}()
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s — %s ===\n", e.Name, e.Title)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "seabed-bench: %s: %v\n", e.Name, err)
			return 1
		}
		if *trace {
			if sp := bench.TakeSlowestTrace(); sp != nil {
				fmt.Printf("slowest query in %s (%v):\n%s", e.Name, sp.Duration(), sp)
			}
		}
		fmt.Printf("--- %s done in %.1fs ---\n", e.Name, time.Since(start).Seconds())
	}
	return 0
}
