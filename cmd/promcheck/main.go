// Command promcheck validates a Prometheus text exposition, the CI guard for
// seabed-server's /metrics endpoint. It reads the exposition from stdin (or a
// file argument), runs the format checks internal/obs enforces — TYPE lines
// before samples, parseable samples, cumulative histogram buckets whose +Inf
// equals _count — and optionally asserts that required metric families are
// present:
//
//	curl -s localhost:7688/metrics | promcheck -require seabed_request_seconds,seabed_wal_fsync_seconds
//
// Exit status: 0 when the exposition is valid and every required family is
// present, 1 otherwise (with a diagnosis on stderr).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seabed/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}

	fams, err := obs.ValidateExposition(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}

	missing := 0
	if *require != "" {
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if _, ok := fams[want]; !ok {
				fmt.Fprintf(os.Stderr, "promcheck: %s: required family %q is missing\n", name, want)
				missing++
			}
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: %d families ok\n", name, len(fams))
}
