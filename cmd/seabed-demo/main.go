// Command seabed-demo walks through Seabed's three client requests (§4.1)
// on a small retail dataset: Create Plan, Upload Data, Query Data. It prints
// the planner's scheme choices, the translated query plans, and decrypted
// results with their latency breakdown — a guided tour of the system.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"seabed"
)

func main() {
	rows := flag.Int("rows", 50_000, "dataset size")
	workers := flag.Int("workers", 8, "simulated cluster workers (embedded mode)")
	addr := flag.String("addr", "", "address of a running seabed-server; empty runs an embedded cluster")
	addrs := flag.String("addrs", "", "comma-separated addresses of N seabed-server shards (scatter-gather mode)")
	replicas := flag.Int("replicas", 0, "with -addrs: replicate each identifier range on R daemons (fleet mode with failover and healing); 0 disables replication")
	hedge := flag.Float64("hedge", 0, "with -replicas: hedge straggler sub-queries to a second replica once this fraction of ranges has completed, e.g. 0.9; 0 disables hedging")
	flag.Parse()
	if *addr != "" && *addrs != "" {
		fmt.Fprintln(os.Stderr, "seabed-demo: -addr and -addrs are mutually exclusive")
		os.Exit(2)
	}
	if *replicas > 0 && *addrs == "" {
		fmt.Fprintln(os.Stderr, "seabed-demo: -replicas needs -addrs")
		os.Exit(2)
	}
	if err := run(*rows, *workers, *addr, *addrs, *replicas, *hedge); err != nil {
		fmt.Fprintln(os.Stderr, "seabed-demo:", err)
		os.Exit(1)
	}
}

func run(rows, workers int, addr, addrs string, replicas int, hedge float64) error {
	ctx := context.Background()
	// The engine is embedded in this process, one seabed-server daemon
	// reached over TCP, or a sharded fleet of daemons — the rest of the demo
	// is identical.
	var cluster seabed.ClusterBackend
	var where string
	switch {
	case addrs != "" && replicas > 0:
		var list []string
		for _, a := range strings.Split(addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				list = append(list, a)
			}
		}
		fc, err := seabed.DialFleet(list, seabed.FleetOptions{Replicas: replicas, HedgeQuantile: hedge})
		if err != nil {
			return err
		}
		defer fc.Close()
		cluster = fc
		workers = fc.Workers()
		where = fmt.Sprintf("%d-daemon fleet at %s, %d replicas per range, hedge quantile %v (%d workers total)",
			fc.NumDaemons(), addrs, fc.Replicas(), hedge, workers)
		defer func() {
			st := fc.Stats()
			fmt.Printf("\nfleet mitigation counters: %d hedged sub-queries, %d failovers\n", st.Hedges, st.Failovers)
		}()
	case addrs != "":
		var list []string
		for _, a := range strings.Split(addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				list = append(list, a)
			}
		}
		sc, err := seabed.DialShardedCluster(list...)
		if err != nil {
			return err
		}
		defer sc.Close()
		cluster = sc
		workers = sc.Workers()
		where = fmt.Sprintf("%d seabed-server shards at %s (%d workers total)", sc.NumShards(), addrs, workers)
	case addr != "":
		rc, err := seabed.DialCluster(addr)
		if err != nil {
			return err
		}
		defer rc.Close()
		cluster = rc
		workers = rc.Workers()
		where = fmt.Sprintf("seabed-server at %s (%d workers)", addr, workers)
	default:
		cluster = seabed.NewCluster(seabed.ClusterConfig{Workers: workers})
		where = fmt.Sprintf("%d simulated workers (embedded)", workers)
	}

	fmt.Println("Seabed demo — big data analytics over encrypted datasets")
	fmt.Printf("dataset: %d rows, cluster: %s\n\n", rows, where)

	// --- 1. Create Plan -------------------------------------------------
	countries := []string{"USA", "Canada", "India", "Chile", "Japan", "Kenya"}
	freqs := []uint64{0, 0, 0, 0, 0, 0}
	rng := rand.New(rand.NewSource(7))
	countryCol := make([]string, rows)
	for i := range countryCol {
		// Skewed: USA and Canada dominate.
		v := 0
		switch r := rng.Float64(); {
		case r < 0.45:
			v = 0
		case r < 0.80:
			v = 1
		default:
			v = 2 + rng.Intn(4)
		}
		countryCol[i] = countries[v]
		freqs[v]++
	}

	sch := &seabed.Schema{Name: "sales", Columns: []seabed.SchemaColumn{
		{Name: "revenue", Type: seabed.Int64, Sensitive: true},
		{Name: "units", Type: seabed.Int64, Sensitive: true},
		{Name: "country", Type: seabed.String, Sensitive: true,
			Cardinality: len(countries), Freqs: freqs, Values: countries},
		{Name: "day", Type: seabed.Int64, Sensitive: true},
		{Name: "store", Type: seabed.Int64, Sensitive: true},
	}}
	samples := []string{
		"SELECT SUM(revenue) FROM sales WHERE country = 'Canada'",
		"SELECT VAR(units) FROM sales",
		"SELECT SUM(revenue) FROM sales WHERE day > 180",
		"SELECT store, SUM(revenue) FROM sales GROUP BY store",
	}

	proxy, err := seabed.NewProxy([]byte("demo-master-secret-0123456789ab"), cluster)
	if err != nil {
		return err
	}
	plan, err := proxy.CreatePlan(sch, samples, seabed.PlannerOptions{})
	if err != nil {
		return err
	}
	fmt.Println("[Create Plan] planner decisions:")
	for _, name := range plan.Order {
		cp := plan.Cols[name]
		extra := ""
		if cp.Square {
			extra += " +squared-column"
		}
		if cp.Splashe != nil {
			extra += fmt.Sprintf(" (d=%d, k=%d, %d splayed measures)",
				cp.Splashe.D, cp.Splashe.K, len(cp.SplayedMeasures))
		}
		fmt.Printf("  %-10s -> %v%s\n", name, cp.PrimaryScheme(), extra)
	}
	for _, warn := range plan.Warnings {
		fmt.Println("  warning:", warn)
	}

	// --- 2. Upload Data --------------------------------------------------
	revenue := make([]uint64, rows)
	units := make([]uint64, rows)
	day := make([]uint64, rows)
	storeID := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		revenue[i] = uint64(rng.Intn(10_000))
		units[i] = uint64(rng.Intn(40))
		day[i] = uint64(rng.Intn(365) + 1)
		storeID[i] = uint64(rng.Intn(12))
	}
	src, err := seabed.BuildTable("sales", []seabed.Column{
		{Name: "revenue", Kind: seabed.U64, U64: revenue},
		{Name: "units", Kind: seabed.U64, U64: units},
		{Name: "country", Kind: seabed.Str, Str: countryCol},
		{Name: "day", Kind: seabed.U64, U64: day},
		{Name: "store", Kind: seabed.U64, U64: storeID},
	}, 1)
	if err != nil {
		return err
	}
	if err := proxy.Upload(ctx, "sales", src, seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
		return err
	}
	enc, err := proxy.Table("sales", seabed.ModeSeabed)
	if err != nil {
		return err
	}
	plain, err := proxy.Table("sales", seabed.ModeNoEnc)
	if err != nil {
		return err
	}
	fmt.Printf("\n[Upload Data] encrypted table: %d physical columns, %.1f MB on disk (plaintext: %.1f MB)\n",
		len(enc.ColNames()), float64(enc.DiskBytes())/1e6, float64(plain.DiskBytes())/1e6)

	// --- 3. Query Data ---------------------------------------------------
	queries := []struct {
		sql  string
		opts []seabed.QueryOption
	}{
		{"SELECT SUM(revenue) FROM sales WHERE country = 'Canada'", nil},
		{"SELECT SUM(revenue) FROM sales WHERE country = 'Kenya'", nil},
		{"SELECT COUNT(*) FROM sales WHERE country = 'USA'", nil},
		{"SELECT AVG(revenue) FROM sales WHERE day > 180", nil},
		{"SELECT VAR(units) FROM sales", nil},
		{"SELECT store, SUM(revenue) FROM sales GROUP BY store", []seabed.QueryOption{seabed.WithExpectedGroups(12)}},
	}
	fmt.Println("\n[Query Data] Seabed vs NoEnc (results must agree; every query bounded by a 1m deadline):")
	for _, q := range queries {
		opts := append([]seabed.QueryOption{seabed.WithTimeout(time.Minute)}, q.opts...)
		encRes, err := proxy.Query(ctx, q.sql, opts...)
		if err != nil {
			return fmt.Errorf("%s: %v", q.sql, err)
		}
		encRows, err := encRes.All()
		if err != nil {
			return fmt.Errorf("%s: %v", q.sql, err)
		}
		plainRes, err := proxy.Query(ctx, q.sql, append(opts, seabed.WithMode(seabed.ModeNoEnc))...)
		if err != nil {
			return err
		}
		plainRows, err := plainRes.All()
		if err != nil {
			return err
		}
		fmt.Printf("\n  %s\n", q.sql)
		limit := len(encRows)
		if limit > 4 {
			limit = 4
		}
		for i := 0; i < limit; i++ {
			row := encRows[i]
			line := "    "
			if row.Key != nil {
				line += row.Key.Display() + ": "
			}
			for j, v := range row.Values {
				if j > 0 {
					line += ", "
				}
				line += v.Display()
			}
			check := "✓"
			if plainRows[i].Values[0].Display() != row.Values[0].Display() {
				check = "MISMATCH vs NoEnc!"
			}
			fmt.Printf("%s   [%s]\n", line, check)
		}
		if len(encRows) > limit {
			fmt.Printf("    … %d more groups\n", len(encRows)-limit)
		}
		fmt.Printf("    latency: server %.4fs + network %.4fs + client %.4fs = %.4fs (PRF evals: %d)\n",
			encRes.ServerTime.Seconds(), encRes.NetworkTime.Seconds(),
			encRes.ClientTime.Seconds(), encRes.TotalTime.Seconds(), encRes.PRFEvals)
	}
	return nil
}
