// Big Data Benchmark example: the AmpLab benchmark (§6.7) — scans with OPE
// predicates, prefix group-bys under DET, a DET equi-join, and the external
// script's phase-2 aggregation — across NoEnc, Seabed, and Paillier.
//
// Run with:
//
//	go run ./examples/bigdatabench [-visits N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"seabed"
)

func main() {
	visits := flag.Int("visits", 30_000, "uservisits rows (rankings and q4 scale along)")
	flag.Parse()
	if err := run(*visits); err != nil {
		log.Fatal(err)
	}
}

func run(visits int) error {
	ctx := context.Background()
	pages := visits / 10
	q4 := visits / 4
	fmt.Printf("AmpLab Big Data Benchmark: rankings=%d uservisits=%d q4phase2=%d\n\n", pages, visits, q4)

	bdb, err := seabed.GenerateBDB(seabed.BDBConfig{Pages: pages, Visits: visits, Q4Rows: q4, Seed: 9})
	if err != nil {
		return err
	}
	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 16})
	proxy, err := seabed.NewProxy([]byte("bigdatabench-master-secret-0123"), cluster)
	if err != nil {
		return err
	}
	samples := seabed.BDBSamples()
	for name, sch := range map[string]*seabed.Schema{
		"rankings":   bdb.RankingsSchema,
		"uservisits": bdb.UserVisitsSchema,
		"q4phase2":   bdb.Q4Phase2Schema,
	} {
		if _, err := proxy.CreatePlan(sch, samples[name], seabed.PlannerOptions{}); err != nil {
			return fmt.Errorf("plan %s: %v", name, err)
		}
	}
	modes := []seabed.Mode{seabed.ModeNoEnc, seabed.ModeSeabed, seabed.ModePaillier}
	for name, tbl := range map[string]*seabed.Table{
		"rankings":   bdb.Rankings,
		"uservisits": bdb.UserVisits,
		"q4phase2":   bdb.Q4Phase2,
	} {
		if err := proxy.Upload(ctx, name, tbl, modes...); err != nil {
			return fmt.Errorf("upload %s: %v", name, err)
		}
	}

	fmt.Printf("%-5s %-10s %12s %12s %12s   %s\n", "query", "kind", "NoEnc", "Seabed", "Paillier", "rows/groups")
	for _, q := range seabed.BDBQueries() {
		kind := "aggregate"
		switch q.Name[:2] {
		case "Q1":
			kind = "scan"
		case "Q2", "Q4":
			kind = "group-by"
		case "Q3":
			kind = "join"
		}
		line := fmt.Sprintf("%-5s %-10s", q.Name, kind)
		var resultCount int
		for _, mode := range modes {
			// Server-side timing, as in §6.7 ("we do not measure the
			// client-side cost of any of the compared systems").
			res, err := proxy.Query(ctx, q.SQL, seabed.WithMode(mode), seabed.WithServerOnly())
			if err != nil {
				return fmt.Errorf("%s %v: %v", q.Name, mode, err)
			}
			line += fmt.Sprintf(" %12v", res.ServerTime)
			resultCount = int(res.Metrics.RowsSelected)
		}
		fmt.Printf("%s   %d\n", line, resultCount)
	}

	// One query end-to-end with decryption, verified against NoEnc.
	fmt.Println("\nverification: Q3A decrypted vs plaintext")
	q3 := seabed.BDBQueries()[6]
	encRes, err := proxy.Query(ctx, q3.SQL)
	if err != nil {
		return err
	}
	encRows, err := encRes.All()
	if err != nil {
		return err
	}
	plainRes, err := proxy.Query(ctx, q3.SQL, seabed.WithMode(seabed.ModeNoEnc))
	if err != nil {
		return err
	}
	plainRows, err := plainRes.All()
	if err != nil {
		return err
	}
	if len(encRows) != len(plainRows) {
		return fmt.Errorf("group counts differ: %d vs %d", len(encRows), len(plainRows))
	}
	mismatches := 0
	for i := range encRows {
		if encRows[i].Values[1].I64 != plainRows[i].Values[1].I64 {
			mismatches++
		}
	}
	fmt.Printf("  %d groups, %d mismatches\n", len(encRows), mismatches)
	if mismatches > 0 {
		return fmt.Errorf("Q3A results diverge")
	}
	return nil
}
