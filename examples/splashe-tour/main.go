// SPLASHE tour: demonstrates the frequency attack on deterministic
// encryption (Naveed et al. [36]) and how basic and enhanced SPLASHE defeat
// it (§3.3, §3.4) — while keeping aggregation exact.
//
// Run with:
//
//	go run ./examples/splashe-tour
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"seabed"
)

// The §3.4 scenario: a company whose employees are mostly in USA and
// Canada, with a long tail of other countries.
var (
	countries = []string{"USA", "Canada", "India", "Chile", "China", "Japan", "Israel", "UK", "Iraq"}
	freqs     = []uint64{4000, 3500, 220, 180, 260, 140, 120, 200, 80}
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	var rows int
	var country []string
	salary := []uint64{}
	for v, f := range freqs {
		for i := uint64(0); i < f; i++ {
			country = append(country, countries[v])
			salary = append(salary, uint64(40000+rng.Intn(80000)))
			rows++
		}
	}
	rng.Shuffle(rows, func(a, b int) {
		country[a], country[b] = country[b], country[a]
		salary[a], salary[b] = salary[b], salary[a]
	})

	// --- Step 1: the attack on plain DET ----------------------------------
	fmt.Println("Step 1 — deterministic encryption leaks frequencies")
	dk, err := seabed.NewDETKey([]byte("0123456789abcdef"))
	if err != nil {
		return err
	}
	counts := map[string]uint64{}
	for _, c := range country {
		counts[string(dk.EncryptString(c))]++
	}
	// The adversary observes one count per distinct ciphertext and knows the
	// rough population distribution (auxiliary data).
	observed := make([]uint64, 0, len(counts))
	ctOrder := make([]string, 0, len(counts))
	for ct, n := range counts {
		observed = append(observed, n)
		ctOrder = append(ctOrder, ct)
	}
	guess := seabed.FrequencyAttack(observed, freqs)
	correct := 0
	for i, ct := range ctOrder {
		truth, err := dk.DecryptString([]byte(ct))
		if err != nil {
			return err
		}
		if guess[i] >= 0 && countries[guess[i]] == truth {
			correct++
		}
	}
	fmt.Printf("  attacker decodes %d/%d countries from ciphertext frequencies alone\n\n", correct, len(countries))

	// --- Step 2: enhanced SPLASHE balances the DET column ------------------
	fmt.Println("Step 2 — enhanced SPLASHE")
	layout, err := seabed.PlanEnhancedSplashe(freqs)
	if err != nil {
		return err
	}
	fmt.Printf("  layout: d=%d values, k=%d dedicated columns (%v), threshold=%d\n",
		layout.D, layout.K, layout.Common, layout.Threshold)

	// Run the full system so the balanced column is the real upload.
	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 4})
	proxy, err := seabed.NewProxy([]byte("splashe-tour-master-secret-0123"), cluster)
	if err != nil {
		return err
	}
	sch := &seabed.Schema{Name: "emp", Columns: []seabed.SchemaColumn{
		{Name: "salary", Type: seabed.Int64, Sensitive: true},
		{Name: "country", Type: seabed.String, Sensitive: true,
			Cardinality: len(countries), Freqs: freqs, Values: countries},
	}}
	if _, err := proxy.CreatePlan(sch, []string{
		"SELECT SUM(salary) FROM emp WHERE country = 'India'",
	}, seabed.PlannerOptions{}); err != nil {
		return err
	}
	src, err := seabed.BuildTable("emp", []seabed.Column{
		{Name: "salary", Kind: seabed.U64, U64: salary},
		{Name: "country", Kind: seabed.Str, Str: country},
	}, 4)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := proxy.Upload(ctx, "emp", src, seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
		return err
	}

	// The adversary's view of the uploaded balanced DET column.
	enc, err := proxy.Table("emp", seabed.ModeSeabed)
	if err != nil {
		return err
	}
	balanced := map[string]uint64{}
	for _, part := range enc.Parts {
		col := part.Col("country_det")
		for _, ct := range col.Bytes {
			balanced[string(ct)]++
		}
	}
	var min, max uint64 = 1 << 62, 0
	for _, n := range balanced {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("  plaintext skew: USA %d vs Iraq %d (50x)\n", freqs[0], freqs[8])
	fmt.Printf("  balanced DET column: %d distinct ciphertexts, frequencies %d..%d (%.2fx spread)\n",
		len(balanced), min, max, float64(max)/float64(min))
	fmt.Println("  USA and Canada do not appear in the column at all — fully hidden")

	// --- Step 3: aggregation stays exact -----------------------------------
	fmt.Println("\nStep 3 — aggregates stay exact despite the dummies")
	for _, c := range []string{"USA", "India", "Iraq"} {
		sql := fmt.Sprintf("SELECT SUM(salary), COUNT(*) FROM emp WHERE country = '%s'", c)
		encRes, err := proxy.Query(ctx, sql)
		if err != nil {
			return err
		}
		encRows, err := encRes.All()
		if err != nil {
			return err
		}
		plainRes, err := proxy.Query(ctx, sql, seabed.WithMode(seabed.ModeNoEnc))
		if err != nil {
			return err
		}
		plainRows, err := plainRes.All()
		if err != nil {
			return err
		}
		match := "✓"
		if encRows[0].Values[0].I64 != plainRows[0].Values[0].I64 ||
			encRows[0].Values[1].I64 != plainRows[0].Values[1].I64 {
			match = "MISMATCH"
		}
		fmt.Printf("  %-7s sum=%-12s count=%-6s [%s]\n", c,
			encRows[0].Values[0].Display(), encRows[0].Values[1].Display(), match)
	}
	return nil
}
