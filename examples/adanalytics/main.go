// Ad-analytics example: the paper's motivating BI workload (§6.6) on the
// public API — hour-of-day revenue dashboards, anomaly-hunting variance
// queries, and the Paillier baseline comparison.
//
// Run with:
//
//	go run ./examples/adanalytics [-rows N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"seabed"
)

func main() {
	rows := flag.Int("rows", 40_000, "dataset rows")
	flag.Parse()
	if err := run(*rows); err != nil {
		log.Fatal(err)
	}
}

func run(rows int) error {
	ctx := context.Background()
	fmt.Printf("ad-analytics on %d rows (33 dimensions, 18 measures)\n\n", rows)
	ada, err := seabed.GenerateAdA(seabed.AdAConfig{Rows: rows, Seed: 3})
	if err != nil {
		return err
	}
	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 16})
	proxy, err := seabed.NewProxy([]byte("adanalytics-master-secret-01234"), cluster)
	if err != nil {
		return err
	}
	plan, err := proxy.CreatePlan(ada.Schema, seabed.AdASamples(),
		seabed.PlannerOptions{MaxStorageOverhead: 10})
	if err != nil {
		return err
	}
	splayed := 0
	for _, cp := range plan.Cols {
		if cp.Splashe != nil {
			splayed++
		}
	}
	fmt.Printf("planner: %d columns, %d SPLASHE dimensions, %d warnings\n",
		len(plan.Order), splayed, len(plan.Warnings))

	if err := proxy.Upload(ctx, "ada", ada.Table,
		seabed.ModeNoEnc, seabed.ModeSeabed, seabed.ModePaillier); err != nil {
		return err
	}
	enc, err := proxy.Table("ada", seabed.ModeSeabed)
	if err != nil {
		return err
	}
	plain, err := proxy.Table("ada", seabed.ModeNoEnc)
	if err != nil {
		return err
	}
	fmt.Printf("storage: plaintext %.1f MB -> Seabed %.1f MB (%.2fx)\n\n",
		float64(plain.DiskBytes())/1e6, float64(enc.DiskBytes())/1e6,
		float64(enc.DiskBytes())/float64(plain.DiskBytes()))

	// Dashboard: revenue by hour across the morning.
	fmt.Println("dashboard: SELECT hour, SUM(m0) WHERE hour < 8 GROUP BY hour")
	res, err := proxy.Query(ctx, "SELECT hour, SUM(m0) FROM ada WHERE hour < 8 GROUP BY hour",
		seabed.WithExpectedGroups(8))
	if err != nil {
		return err
	}
	resRows, err := res.All()
	if err != nil {
		return err
	}
	for _, row := range resRows {
		fmt.Printf("  hour %-2s revenue %s\n", row.Key.Display(), row.Values[1].Display())
	}
	fmt.Printf("  latency: %v (server %v, client %v)\n\n", res.TotalTime, res.ServerTime, res.ClientTime)

	// The three-system comparison on one query.
	fmt.Println("system comparison: SELECT hour, SUM(m1) WHERE hour < 4 GROUP BY hour")
	for _, mode := range []seabed.Mode{seabed.ModeNoEnc, seabed.ModeSeabed, seabed.ModePaillier} {
		r, err := proxy.Query(ctx, "SELECT hour, SUM(m1) FROM ada WHERE hour < 4 GROUP BY hour",
			seabed.WithMode(mode), seabed.WithExpectedGroups(4))
		if err != nil {
			return err
		}
		rRows, err := r.All()
		if err != nil {
			return err
		}
		fmt.Printf("  %-9v total %v  (groups: %d)\n", mode, r.TotalTime, len(rRows))
	}

	// Anomaly hunting: variance via the client-precomputed squared column.
	fmt.Println("\nanomaly check: SELECT AVG(m0), VAR(m0) — quadratic support via CPre (§5)")
	// m0 was not declared quadratic in the samples; demonstrate the planner
	// feedback loop by re-planning with the variance query included.
	samples := append(seabed.AdASamples(), "SELECT VAR(m0) FROM ada")
	if _, err := proxy.CreatePlan(ada.Schema, samples, seabed.PlannerOptions{MaxStorageOverhead: 10}); err != nil {
		return err
	}
	if err := proxy.Upload(ctx, "ada", ada.Table, seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
		return err
	}
	r, err := proxy.Query(ctx, "SELECT AVG(m0), VAR(m0) FROM ada")
	if err != nil {
		return err
	}
	rRows, err := r.All()
	if err != nil {
		return err
	}
	check, err := proxy.Query(ctx, "SELECT AVG(m0), VAR(m0) FROM ada", seabed.WithMode(seabed.ModeNoEnc))
	if err != nil {
		return err
	}
	checkRows, err := check.All()
	if err != nil {
		return err
	}
	fmt.Printf("  Seabed: avg=%s var=%s\n", rRows[0].Values[0].Display(), rRows[0].Values[1].Display())
	fmt.Printf("  NoEnc:  avg=%s var=%s\n", checkRows[0].Values[0].Display(), checkRows[0].Values[1].Display())
	return nil
}
