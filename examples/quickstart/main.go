// Quickstart: the smallest end-to-end Seabed program, plus a direct tour of
// the ASHE primitive.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"seabed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- The ASHE primitive by hand (§3.1) --------------------------------
	// ASHE ciphertexts add without the key; sums over contiguous rows
	// decrypt with just two PRF evaluations.
	key, err := seabed.NewASHEKey([]byte("0123456789abcdef"))
	if err != nil {
		return err
	}
	sum := key.Encrypt(100, 1) // Enc(100) at row 1
	sum = seabed.ASHEAdd(sum, key.Encrypt(250, 2))
	sum = seabed.ASHEAdd(sum, key.Encrypt(50, 3))
	fmt.Printf("ASHE: Enc(100)+Enc(250)+Enc(50) decrypts to %d (ids %s)\n\n",
		key.Decrypt(sum), sum.IDs.String())

	// --- The full system (§4) ---------------------------------------------
	// 1. Create Plan: tell the planner the schema and the expected queries.
	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 4})
	proxy, err := seabed.NewProxy([]byte("quickstart-master-secret-012345"), cluster)
	if err != nil {
		return err
	}
	schema := &seabed.Schema{Name: "orders", Columns: []seabed.SchemaColumn{
		{Name: "amount", Type: seabed.Int64, Sensitive: true},
		{Name: "region", Type: seabed.String, Sensitive: true,
			Cardinality: 3, Values: []string{"east", "west", "north"}},
	}}
	plan, err := proxy.CreatePlan(schema, []string{
		"SELECT SUM(amount) FROM orders WHERE region = 'east'",
	}, seabed.PlannerOptions{})
	if err != nil {
		return err
	}
	fmt.Println("planner chose:")
	for _, name := range plan.Order {
		fmt.Printf("  %-8s -> %v\n", name, plan.Cols[name].PrimaryScheme())
	}

	// 2. Upload Data: plaintext columns are encrypted client-side.
	src, err := seabed.BuildTable("orders", []seabed.Column{
		{Name: "amount", Kind: seabed.U64, U64: []uint64{120, 80, 220, 45, 310}},
		{Name: "region", Kind: seabed.Str, Str: []string{"east", "west", "east", "north", "east"}},
	}, 2)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := proxy.Upload(ctx, "orders", src, seabed.ModeSeabed); err != nil {
		return err
	}

	// 3. Query Data: unmodified SQL; the server never sees plaintext.
	res, err := proxy.Query(ctx, "SELECT SUM(amount) FROM orders WHERE region = 'east'")
	if err != nil {
		return err
	}
	rows, err := res.All()
	if err != nil {
		return err
	}
	fmt.Printf("\nSUM(amount) WHERE region='east' = %s  (expect 650)\n", rows[0].Values[0].Display())
	fmt.Printf("latency: server %v + network %v + client %v\n",
		res.ServerTime, res.NetworkTime, res.ClientTime)
	return nil
}
