// Regression example: one-dimensional linear regression over encrypted data
// using client pre-processing (§5, Table 6's LinReg rows) — the client
// uploads x², and x·y as additional ASHE columns at ingest time, and every
// sum the least-squares formulas need is then a pure server-side aggregate.
//
//	slope     = (n·Σxy − Σx·Σy) / (n·Σx² − (Σx)²)
//	intercept = (Σy − slope·Σx) / n
//
// Run with:
//
//	go run ./examples/regression
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"seabed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthetic ad spend (x) vs revenue (y): y ≈ 3x + 500 + noise.
	const rows = 20_000
	rng := rand.New(rand.NewSource(5))
	x := make([]uint64, rows)
	y := make([]uint64, rows)
	xx := make([]uint64, rows)
	xy := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		xi := uint64(rng.Intn(1000) + 1)
		yi := 3*xi + 500 + uint64(rng.Intn(101)) - 50
		x[i], y[i] = xi, yi
		// Client pre-processing (CPre): quadratic and cross terms are
		// computed in the trusted domain and encrypted like any measure.
		xx[i] = xi * xi
		xy[i] = xi * yi
	}

	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 8})
	proxy, err := seabed.NewProxy([]byte("regression-master-secret-012345"), cluster)
	if err != nil {
		return err
	}
	sch := &seabed.Schema{Name: "spend", Columns: []seabed.SchemaColumn{
		{Name: "x", Type: seabed.Int64, Sensitive: true},
		{Name: "y", Type: seabed.Int64, Sensitive: true},
		{Name: "xx", Type: seabed.Int64, Sensitive: true},
		{Name: "xy", Type: seabed.Int64, Sensitive: true},
	}}
	if _, err := proxy.CreatePlan(sch, []string{
		"SELECT SUM(x), SUM(y), SUM(xx), SUM(xy), COUNT(*) FROM spend",
	}, seabed.PlannerOptions{}); err != nil {
		return err
	}
	src, err := seabed.BuildTable("spend", []seabed.Column{
		{Name: "x", Kind: seabed.U64, U64: x},
		{Name: "y", Kind: seabed.U64, U64: y},
		{Name: "xx", Kind: seabed.U64, U64: xx},
		{Name: "xy", Kind: seabed.U64, U64: xy},
	}, 4)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := proxy.Upload(ctx, "spend", src, seabed.ModeSeabed); err != nil {
		return err
	}

	// One round trip: the server computes five encrypted sums; the client
	// decrypts and finishes the least-squares math.
	res, err := proxy.Query(ctx, "SELECT SUM(x), SUM(y), SUM(xx), SUM(xy), COUNT(*) FROM spend")
	if err != nil {
		return err
	}
	rows2, err := res.All()
	if err != nil {
		return err
	}
	v := rows2[0].Values
	sx, sy, sxx, sxy := float64(v[0].I64), float64(v[1].I64), float64(v[2].I64), float64(v[3].I64)
	n := float64(v[4].I64)

	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	fmt.Printf("linear regression over %d encrypted rows (one round trip):\n", rows)
	fmt.Printf("  slope     = %.4f   (true: 3.0)\n", slope)
	fmt.Printf("  intercept = %.2f  (true: ~500)\n", intercept)
	fmt.Printf("  server %v, client %v\n", res.ServerTime, res.ClientTime)

	if slope < 2.9 || slope > 3.1 {
		return fmt.Errorf("slope %f deviates from ground truth", slope)
	}
	return nil
}
