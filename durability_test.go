// Durability end-to-end tests: the kill-and-restart acceptance gates of the
// durable storage engine.
//
//	(a) In-process (fully race-instrumented): a 3-shard fleet of durable
//	    servers answers a query, one shard stops and restarts over the same
//	    data directory on the same address, and the same shard.Cluster —
//	    whose pooled sockets to that shard died — returns byte-identical
//	    rows, with recovery visible in server.Stats.
//	(b) Subprocess: a real seabed-server daemon is SIGKILLed mid-append
//	    stream and restarted with the same -data-dir; every acknowledged
//	    append survives and 3-shard query results match an in-process proxy
//	    holding the same committed data byte for byte.
package seabed_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"seabed"
)

// startDurableShard serves a durable seabed-server on addr (":0" picks a
// port) and returns its address plus handles for stopping and inspection.
func startDurableShard(t *testing.T, addr, dir string, shardIdx, shardCount int) (string, *seabed.Server, *seabed.DurableStore, func()) {
	t.Helper()
	d, err := seabed.OpenDurableStore(seabed.DurableOptions{Dir: dir, Fsync: seabed.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := seabed.NewServer(seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))
	srv.ShardIndex, srv.ShardCount = shardIdx, shardCount
	srv.UseDurable(d)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close() //nolint:errcheck // racing test teardown
		<-done
		d.Close() //nolint:errcheck // racing test teardown
	}
	t.Cleanup(stop)
	return ln.Addr().String(), srv, d, stop
}

// TestShardRestartRecoversDurableTables is gate (a). It runs fully under
// the race detector: the server, durable store, and recovery all execute in
// process.
func TestShardRestartRecoversDurableTables(t *testing.T) {
	base := t.TempDir()
	addrs := make([]string, 3)
	stops := make([]func(), 3)
	for i := range addrs {
		addrs[i], _, _, stops[i] = startDurableShard(t, "127.0.0.1:0", filepath.Join(base, fmt.Sprint(i)), i, 3)
	}
	sc, err := seabed.DialShardedCluster(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	proxy := lifecycleProxy(t, sc) // uploads "big" in NoEnc + Seabed

	// Grow the table so WAL replay is part of the recovery under test.
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		batch := appendBatch(t, 3000+uint64(i)*90, 90)
		if err := proxy.Append(ctx, "big", batch, seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{aggSQL, "SELECT COUNT(*) FROM big", "SELECT m FROM big WHERE d > 29"}
	want := make(map[string][]seabed.Row)
	for _, sql := range queries {
		want[sql] = queryRows(t, proxy, sql)
	}

	// Stop shard 1 and bring it back over the same directory and address.
	stops[1]()
	_, srv1b, _, _ := startDurableShard(t, addrs[1], filepath.Join(base, "1"), 1, 3)
	rec := srv1b.Stats().Recovery
	if rec.Tables != 2 { // big#noenc + big#seabed
		t.Fatalf("restarted shard recovered %d tables, want 2 (%+v)", rec.Tables, rec)
	}
	if rec.WALRecords == 0 {
		t.Fatalf("restarted shard replayed no WAL records; appends were not journaled (%+v)", rec)
	}

	// The same sharded cluster serves byte-identical results: its pooled
	// sockets to shard 1 are dead and the pool redials the restarted
	// daemon, which must hold exactly the rows it held before.
	for _, sql := range queries {
		if got := queryRows(t, proxy, sql); !reflect.DeepEqual(got, want[sql]) {
			t.Fatalf("%q: rows diverged across shard restart (%d vs %d rows)", sql, len(got), len(want[sql]))
		}
	}
	// And the table keeps growing where it left off.
	if err := proxy.Append(ctx, "big", appendBatch(t, 3270, 30), seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
	after := queryRows(t, proxy, "SELECT COUNT(*) FROM big")
	if reflect.DeepEqual(after, want["SELECT COUNT(*) FROM big"]) {
		t.Fatal("post-restart append did not land")
	}
}

// appendBatch builds a plaintext batch continuing lifecycleProxy's dataset
// shape: deterministic contents from the global row position.
func appendBatch(t *testing.T, from uint64, rows int) *seabed.Table {
	t.Helper()
	m := make([]uint64, rows)
	d := make([]uint64, rows)
	for i := range m {
		pos := from + uint64(i)
		m[i] = pos % 997
		d[i] = pos%31 + 1
	}
	batch, err := seabed.BuildTable("big", []seabed.Column{
		{Name: "m", Kind: seabed.U64, U64: m},
		{Name: "d", Kind: seabed.U64, U64: d},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

// queryRows runs sql in Seabed mode and materializes the rows.
func queryRows(t *testing.T, proxy *seabed.Proxy, sql string) []seabed.Row {
	t.Helper()
	res, err := proxy.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// --- gate (b): a real daemon, a real SIGKILL -----------------------------

// buildServerBinary compiles cmd/seabed-server once per test run.
func buildServerBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available to build the daemon")
	}
	bin := filepath.Join(t.TempDir(), "seabed-server")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/seabed-server")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build seabed-server: %v\n%s", err, out)
	}
	return bin
}

// reservePort grabs a loopback port and releases it for a daemon to bind.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// spawnDaemon starts a durable daemon process and waits until it accepts
// connections.
func spawnDaemon(t *testing.T, bin, addr, dir string, shardIdx, shardCount int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-shard", fmt.Sprintf("%d/%d", shardIdx, shardCount),
		"-data-dir", dir,
		"-fsync", "always",
		"-workers", "4",
		"-quiet")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck // may already be dead
			cmd.Wait()         //nolint:errcheck // reap
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never came up", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestKillRestartSIGKILLMidAppend is gate (b): SIGKILL a shard daemon while
// an append stream is running against the fleet, restart it with the same
// -data-dir, and verify every acknowledged append survived — query results
// must be byte-identical to an in-process proxy holding the same committed
// batches.
func TestKillRestartSIGKILLMidAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills daemon subprocesses")
	}
	bin := buildServerBinary(t)
	base := t.TempDir()
	const shards = 3
	addrs := make([]string, shards)
	daemons := make([]*exec.Cmd, shards)
	for i := range addrs {
		addrs[i] = reservePort(t)
		daemons[i] = spawnDaemon(t, bin, addrs[i], filepath.Join(base, fmt.Sprint(i)), i, shards)
	}
	sc, err := seabed.DialShardedCluster(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	proxy := lifecycleProxy(t, sc)
	ctx := context.Background()

	// Append batches until one fails: after the third acknowledgement a
	// SIGKILL lands on shard 1, so an append soon dies mid-flight. Appends
	// run in Seabed mode only — a single mode keeps a failed append
	// all-or-nothing at the proxy, so the retry below re-encrypts the
	// byte-identical batch.
	const batchRows = 90
	committed := 0
	failed := -1
	killed := make(chan struct{})
	for k := 0; k < 40; k++ {
		if k == 3 {
			go func() {
				defer close(killed)
				daemons[1].Process.Signal(syscall.SIGKILL) //nolint:errcheck // target may already be gone
				daemons[1].Wait()                          //nolint:errcheck // reap
			}()
		}
		err := proxy.Append(ctx, "big", appendBatch(t, 3000+uint64(k*batchRows), batchRows), seabed.ModeSeabed)
		if err != nil {
			failed = k
			break
		}
		committed = k + 1
	}
	if failed < 0 {
		t.Fatal("no append failed despite the SIGKILL; the kill never landed mid-stream")
	}
	<-killed
	t.Logf("SIGKILL after %d committed batches; batch %d failed", committed, failed)

	// Restart the killed shard over its data directory and retry the failed
	// batch: shards that already applied their slice acknowledge the replay
	// idempotently, the restarted shard applies it fresh.
	daemons[1] = spawnDaemon(t, bin, addrs[1], filepath.Join(base, "1"), 1, shards)
	if err := proxy.Append(ctx, "big", appendBatch(t, 3000+uint64(failed*batchRows), batchRows), seabed.ModeSeabed); err != nil {
		t.Fatalf("retrying the failed append after restart: %v", err)
	}
	committed = failed + 1

	// Mirror the committed state on an in-process proxy: same upload, same
	// batches. Deterministic encryption makes equal data byte-identical.
	local := lifecycleProxy(t, seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))
	for k := 0; k < committed; k++ {
		if err := local.Append(ctx, "big", appendBatch(t, 3000+uint64(k*batchRows), batchRows), seabed.ModeSeabed); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{aggSQL, "SELECT COUNT(*) FROM big", "SELECT m FROM big WHERE d > 29"} {
		want := queryRows(t, local, sql)
		got := queryRows(t, proxy, sql)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q: post-restart fleet diverges from committed data (%d vs %d rows)", sql, len(got), len(want))
		}
	}
}
