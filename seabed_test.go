package seabed_test

import (
	"context"
	"strings"
	"testing"

	"seabed"
)

// newTestSystem builds a minimal proxy + dataset through the public facade.
func newTestSystem(t *testing.T) *seabed.Proxy {
	t.Helper()
	cluster := seabed.NewCluster(seabed.ClusterConfig{Workers: 4})
	proxy, err := seabed.NewProxy([]byte("facade-test-master-secret-01234"), cluster)
	if err != nil {
		t.Fatal(err)
	}
	sch := &seabed.Schema{Name: "t", Columns: []seabed.SchemaColumn{
		{Name: "m", Type: seabed.Int64, Sensitive: true},
		{Name: "d", Type: seabed.String, Sensitive: true, Cardinality: 2, Values: []string{"a", "b"}},
	}}
	if _, err := proxy.CreatePlan(sch, []string{
		"SELECT SUM(m) FROM t WHERE d = 'a'",
	}, seabed.PlannerOptions{}); err != nil {
		t.Fatal(err)
	}
	src, err := seabed.BuildTable("t", []seabed.Column{
		{Name: "m", Kind: seabed.U64, U64: []uint64{10, 20, 30, 40}},
		{Name: "d", Kind: seabed.Str, Str: []string{"a", "b", "a", "b"}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Upload(context.Background(), "t", src, seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
		t.Fatal(err)
	}
	return proxy
}

func TestFacadeEndToEnd(t *testing.T) {
	proxy := newTestSystem(t)
	res, err := proxy.Query(context.Background(), "SELECT SUM(m) FROM t WHERE d = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].Values[0].I64; got != 40 {
		t.Fatalf("sum = %d, want 40", got)
	}
}

func TestFacadeCryptoPrimitives(t *testing.T) {
	// ASHE through the facade.
	ak, err := seabed.NewASHEKey([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	c1 := ak.Encrypt(5, 1)
	c2 := ak.Encrypt(7, 2)
	if got := ak.Decrypt(seabed.ASHEAdd(c1, c2)); got != 12 {
		t.Fatalf("ASHE sum = %d, want 12", got)
	}
	// DET.
	dk, err := seabed.NewDETKey([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := dk.DecryptU64(dk.EncryptU64(42)); err != nil || v != 42 {
		t.Fatalf("DET roundtrip = %d, %v", v, err)
	}
	// ORE.
	ok, err := seabed.NewOREKey([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if seabed.ORECompare(ok.Encrypt(3), ok.Encrypt(9)) != -1 {
		t.Fatal("ORE compare failed")
	}
}

func TestFacadeSplashe(t *testing.T) {
	l, err := seabed.PlanEnhancedSplashe([]uint64{100, 90, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if l.K != 2 {
		t.Fatalf("k = %d, want 2", l.K)
	}
	basic, err := seabed.PlanBasicSplashe(4)
	if err != nil {
		t.Fatal(err)
	}
	if basic.NumSplayColumns() != 4 {
		t.Fatal("basic layout broken")
	}
	guess := seabed.FrequencyAttack([]uint64{9, 5, 1}, []uint64{90, 50, 10})
	if guess[0] != 0 || guess[1] != 1 || guess[2] != 2 {
		t.Fatalf("attack = %v", guess)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	bdb, err := seabed.GenerateBDB(seabed.BDBConfig{Pages: 20, Visits: 100, Q4Rows: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bdb.UserVisits.NumRows() != 100 {
		t.Fatal("BDB generation failed")
	}
	if len(seabed.BDBQueries()) != 10 {
		t.Fatal("BDB query set must have 10 entries")
	}
	ada, err := seabed.GenerateAdA(seabed.AdAConfig{Rows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ada.SensitiveDims) != 10 {
		t.Fatal("AdA generation failed")
	}
	if len(seabed.MDXCatalog()) != 38 {
		t.Fatal("MDX catalog must have 38 entries")
	}
	syn, err := seabed.GenerateSynthetic(100, 5, 1)
	if err != nil || syn.NumRows() != 100 {
		t.Fatalf("synthetic generation: %v", err)
	}
	if len(seabed.SyntheticQueries()) == 0 || seabed.SyntheticSchema(5) == nil {
		t.Fatal("synthetic schema/queries missing")
	}
}

func TestFacadeParseSQL(t *testing.T) {
	q, err := seabed.ParseSQL("SELECT SUM(a) FROM t WHERE b > 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "SUM(a)") {
		t.Fatalf("parsed query = %s", q)
	}
	if _, err := seabed.ParseSQL("not sql"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestFacadeIDListCodecs(t *testing.T) {
	if len(seabed.IDListCodecs()) < 5 {
		t.Fatal("codec family too small")
	}
}

func TestFacadeLinks(t *testing.T) {
	if seabed.LinkWAN10.TransferTime(1000) <= seabed.LinkInCluster.TransferTime(1000) {
		t.Fatal("link ordering broken")
	}
}
