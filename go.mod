module seabed

go 1.24
