// Fleet end-to-end tests: the kill-and-heal and hedged-scatter acceptance
// gates of the replicated, self-healing fleet, driven through the public
// facade (DialFleet) and fully race-instrumented.
//
//	(a) A 3-daemon R=2 durable fleet serves a NoEnc/Seabed/Paillier workload;
//	    one daemon is killed mid-workload and every query still succeeds with
//	    rows byte-identical to an in-process mirror (replica failover). The
//	    dead daemon restarts on an empty disk and heals daemon-to-daemon over
//	    the segment-shipping frames: its recovered segment files match the
//	    replicas' CRC-for-CRC, writes resume, and results stay identical.
//	(b) A fleet with one injected straggler daemon and an armed hedge
//	    quantile answers with correct rows by re-issuing the straggler's
//	    sub-query to a second replica — visible in both the coordinator's and
//	    the daemons' hedge counters — and cancels the losing attempt.
package seabed_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"seabed"
)

// startFleetDaemon serves one fleet daemon: a seabed-server with shard
// identity i/n on addr (":0" picks a port), durable over dir when non-empty,
// whose engine stalls each map task by sleep (straggler and kill-window
// injection). The returned stop is idempotent.
func startFleetDaemon(t *testing.T, addr, dir string, i, n int, sleep time.Duration) (string, *seabed.Server, *seabed.DurableStore, func()) {
	t.Helper()
	srv := seabed.NewServer(seabed.NewCluster(seabed.ClusterConfig{
		Workers: 4, RealParallelism: 2, TaskSleep: sleep,
	}))
	srv.ShardIndex, srv.ShardCount = i, n
	var d *seabed.DurableStore
	if dir != "" {
		var err error
		d, err = seabed.OpenDurableStore(seabed.DurableOptions{Dir: dir, Fsync: seabed.FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		srv.UseDurable(d)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close() //nolint:errcheck // racing test teardown
		<-done
		if d != nil {
			d.Close() //nolint:errcheck // racing test teardown
		}
	}
	t.Cleanup(stop)
	return ln.Addr().String(), srv, d, stop
}

// fleetWorkloadQueries enumerates the (sql, mode) pairs of the fleet
// acceptance workload: aggregates in all three encryption modes, the scan in
// the two modes whose projections are cheap enough to run repeatedly.
func fleetWorkloadQueries() []struct {
	sql  string
	mode seabed.Mode
} {
	var qs []struct {
		sql  string
		mode seabed.Mode
	}
	for _, sql := range []string{aggSQL, "SELECT COUNT(*) FROM big"} {
		for _, mode := range []seabed.Mode{seabed.ModeNoEnc, seabed.ModeSeabed, seabed.ModePaillier} {
			qs = append(qs, struct {
				sql  string
				mode seabed.Mode
			}{sql, mode})
		}
	}
	for _, mode := range []seabed.Mode{seabed.ModeNoEnc, seabed.ModeSeabed} {
		qs = append(qs, struct {
			sql  string
			mode seabed.Mode
		}{"SELECT m FROM big WHERE d > 29", mode})
	}
	return qs
}

// modeRows runs sql under mode and materializes the rows.
func modeRows(t *testing.T, proxy *seabed.Proxy, sql string, mode seabed.Mode) []seabed.Row {
	t.Helper()
	res, err := proxy.Query(context.Background(), sql, seabed.WithMode(mode))
	if err != nil {
		t.Fatalf("%v %q: %v", mode, sql, err)
	}
	rows, err := res.All()
	if err != nil {
		t.Fatalf("%v %q: %v", mode, sql, err)
	}
	return rows
}

// TestFleetFailoverAndHealEndToEnd is gate (a): kill one of three durable
// daemons mid-workload under R=2 replication, then heal it from its replica
// neighbors over segment shipping.
func TestFleetFailoverAndHealEndToEnd(t *testing.T) {
	ctx := context.Background()
	base := t.TempDir()
	addrs := make([]string, 3)
	stores := make([]*seabed.DurableStore, 3)
	stops := make([]func(), 3)
	for i := range addrs {
		addrs[i], _, stores[i], stops[i] = startFleetDaemon(t, "127.0.0.1:0", filepath.Join(base, fmt.Sprint(i)), i, 3, 2*time.Millisecond)
	}
	fc, err := seabed.DialFleet(addrs, seabed.FleetOptions{
		Replicas:  2,
		EpochPath: filepath.Join(base, "epoch.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() }) //nolint:errcheck // test teardown

	// The in-process mirror holds the same plaintext under the same keys: the
	// fleet must match it byte for byte in every phase. appendBatch(0, 3000)
	// reproduces lifecycleProxy's dataset exactly, so the Paillier upload adds
	// the baseline mode on top of the NoEnc+Seabed fixture.
	local := lifecycleProxy(t, seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))
	if err := local.Ring().EnsurePaillier(256); err != nil { // small key: test speed
		t.Fatal(err)
	}
	if err := local.Upload(ctx, "big", appendBatch(t, 0, 3000), seabed.ModePaillier); err != nil {
		t.Fatal(err)
	}
	fleetP := local.WithCluster(fc)
	if err := fleetP.SyncTables(ctx); err != nil {
		t.Fatal(err)
	}

	// workload runs every (sql, mode) pair against the fleet and demands rows
	// identical to the in-process mirror — "zero failed queries" is the gate,
	// so any error inside is fatal.
	workload := func(phase string) {
		t.Helper()
		for _, q := range fleetWorkloadQueries() {
			want := modeRows(t, local, q.sql, q.mode)
			got := modeRows(t, fleetP, q.sql, q.mode)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: %v %q: fleet rows diverge from in-process mirror (%d vs %d rows)",
					phase, q.mode, q.sql, len(got), len(want))
			}
		}
	}
	workload("healthy fleet")

	// Kill daemon 1 while the workload runs: in-flight sub-queries on it die
	// mid-run and fail over; later queries route around the corpse.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(30 * time.Millisecond)
		stops[1]()
	}()
	workload("daemon dying mid-workload")
	<-killed
	workload("daemon 1 down")
	st := fc.Stats()
	if st.Failovers == 0 {
		t.Fatal("daemon 1 died but the coordinator recorded no failovers")
	}
	if !reflect.DeepEqual(st.Down, []int{1}) {
		t.Fatalf("down set = %v, want [1]", st.Down)
	}

	// A streamed scan fails over too (the dead replica never delivered rows).
	streamed, err := fleetP.Query(ctx, "SELECT m FROM big WHERE d > 29", seabed.WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	var streamedRows []seabed.Row
	for row, err := range streamed.Rows() {
		if err != nil {
			t.Fatalf("streamed scan over degraded fleet: %v", err)
		}
		streamedRows = append(streamedRows, row)
	}
	if want := modeRows(t, local, "SELECT m FROM big WHERE d > 29", seabed.ModeSeabed); !reflect.DeepEqual(streamedRows, want) {
		t.Fatalf("degraded streamed scan diverges from mirror (%d vs %d rows)", len(streamedRows), len(want))
	}

	// Writes demand the full fleet: an append acknowledged by one replica of
	// a range would silently diverge the set.
	if err := fleetP.Append(ctx, "big", appendBatch(t, 3000, 90), seabed.ModeNoEnc); err == nil {
		t.Fatal("append succeeded against a degraded fleet")
	} else if !strings.Contains(err.Error(), "heal") {
		t.Fatalf("degraded append error %q does not point at healing", err)
	}

	// Restart daemon 1 on an EMPTY directory at its old address and heal: the
	// coordinator orders it to pull every range it hosts daemon-to-daemon
	// from a live replica — no proxy re-upload.
	_, _, store1b, _ := startFleetDaemon(t, addrs[1], filepath.Join(base, "1-reborn"), 1, 3, 2*time.Millisecond)
	if err := fc.Heal(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if st := fc.Stats(); len(st.Down) != 0 {
		t.Fatalf("down set = %v after heal, want empty", st.Down)
	}

	// CRC-for-CRC: the healed daemon's installed segment files must be the
	// replicas' committed files exactly — same names, sizes, and whole-file
	// CRCs. Daemon 1 hosts range 0 (pulled from daemon 0, its co-replica)
	// and range 1 (pulled from daemon 2).
	for _, table := range []string{"big@NoEnc", "big@Seabed", "big@Paillier"} {
		for _, src := range []struct{ k, daemon int }{{0, 0}, {1, 2}} {
			ref := fmt.Sprintf("%s#r%d", table, src.k)
			wantSegs, wantTail, err := stores[src.daemon].ShipManifest(ref)
			if err != nil {
				t.Fatalf("replica daemon %d manifest %q: %v", src.daemon, ref, err)
			}
			if len(wantSegs) == 0 {
				t.Fatalf("replica daemon %d ships no segments for %q; fixture broken", src.daemon, ref)
			}
			gotSegs, gotTail, err := store1b.ShipManifest(ref)
			if err != nil {
				t.Fatalf("healed daemon has no %q: %v", ref, err)
			}
			if !reflect.DeepEqual(gotSegs, wantSegs) {
				t.Fatalf("healed %q segments %+v do not match replica's %+v", ref, gotSegs, wantSegs)
			}
			if (gotTail == nil) != (wantTail == nil) {
				t.Fatalf("healed %q WAL tail presence diverges from replica", ref)
			}
		}
	}

	// The healed fleet accepts writes again, and the grown table still
	// matches the mirror in every mode (the mirror grows through the shared
	// proxy tables).
	if err := fleetP.Append(ctx, "big", appendBatch(t, 3000, 90), seabed.ModeNoEnc, seabed.ModeSeabed, seabed.ModePaillier); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	workload("after heal and append")
}

// TestFleetHedgesStragglerEndToEnd is gate (b): one daemon stalls every map
// task, the hedge quantile is armed, and the straggling range's sub-query is
// re-issued to its second replica — the query completes fast and correct,
// and the losing slow attempt is canceled on its daemon.
func TestFleetHedgesStragglerEndToEnd(t *testing.T) {
	ctx := context.Background()
	addrs := make([]string, 3)
	servers := make([]*seabed.Server, 3)
	for i := range addrs {
		sleep := time.Duration(0)
		if i == 0 {
			sleep = 250 * time.Millisecond // the straggler
		}
		addrs[i], servers[i], _, _ = startFleetDaemon(t, "127.0.0.1:0", "", i, 3, sleep)
	}
	fc, err := seabed.DialFleet(addrs, seabed.FleetOptions{Replicas: 2, HedgeQuantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() }) //nolint:errcheck // test teardown

	local := lifecycleProxy(t, seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))
	hedged := local.WithCluster(fc)
	if err := hedged.SyncTables(ctx); err != nil {
		t.Fatal(err)
	}

	want := queryRows(t, local, aggSQL)
	got := queryRows(t, hedged, aggSQL)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged fleet rows diverge from in-process mirror (%d vs %d rows)", len(got), len(want))
	}
	st := fc.Stats()
	if st.Hedges == 0 {
		t.Fatal("straggler daemon never triggered a hedge")
	}
	if len(st.Down) != 0 {
		t.Fatalf("hedging marked daemons down: %v", st.Down)
	}
	// The hedge went to a healthy replica and is counted on its server …
	var hedgedRuns uint64
	for _, srv := range servers[1:] {
		hedgedRuns += srv.Stats().HedgedRuns
	}
	if hedgedRuns == 0 {
		t.Fatal("no replica daemon counted a hedged run")
	}
	// … and the losing slow attempt was canceled rather than left running.
	if st := drainStats(t, servers[0]); st.Canceled == 0 {
		t.Fatal("straggler daemon never saw its losing attempt canceled")
	}
}
