// Query-lifecycle end-to-end tests: cancellation, deadlines, and streaming
// through the public facade, against all three backends — the in-process
// engine, a loopback seabed-server, and a 3-shard loopback fleet. These are
// the acceptance gates of the context-first API redesign:
//
//	(a) cancelling a context mid-query returns promptly (well under 1s)
//	    with context.Canceled, while the same query uncancelled succeeds
//	    with results identical across all backends;
//	(b) a streamed large scan via Rows() yields the same rows as the
//	    materialized result.
package seabed_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"seabed"
	"seabed/internal/server"
)

// slowCluster returns an engine whose map tasks each stall for sleep on at
// most two real goroutines, making query wall-time long and predictable so a
// mid-query cancel demonstrably lands mid-query.
func slowCluster(sleep time.Duration) *seabed.Cluster {
	return seabed.NewCluster(seabed.ClusterConfig{
		Workers:         4,
		RealParallelism: 2,
		TaskSleep:       sleep,
	})
}

// lifecycleProxy builds a 3000-row dataset on the given backend, partitioned
// 30 ways so a TaskSleep-injected engine has a long runway of map tasks.
func lifecycleProxy(t *testing.T, backend seabed.ClusterBackend) *seabed.Proxy {
	t.Helper()
	const rows = 3000
	proxy, err := seabed.NewProxy([]byte("lifecycle-test-master-secret-012"), backend)
	if err != nil {
		t.Fatal(err)
	}
	proxy.Parts = 30
	sch := &seabed.Schema{Name: "big", Columns: []seabed.SchemaColumn{
		{Name: "m", Type: seabed.Int64, Sensitive: true},
		{Name: "d", Type: seabed.Int64, Sensitive: true},
	}}
	if _, err := proxy.CreatePlan(sch, []string{
		"SELECT SUM(m) FROM big WHERE d > 15",
	}, seabed.PlannerOptions{}); err != nil {
		t.Fatal(err)
	}
	m := make([]uint64, rows)
	d := make([]uint64, rows)
	for i := range m {
		m[i] = uint64(i % 997)
		d[i] = uint64(i%31) + 1
	}
	src, err := seabed.BuildTable("big", []seabed.Column{
		{Name: "m", Kind: seabed.U64, U64: m},
		{Name: "d", Kind: seabed.U64, U64: d},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Upload(context.Background(), "big", src, seabed.ModeNoEnc, seabed.ModeSeabed); err != nil {
		t.Fatal(err)
	}
	return proxy
}

// startSlowServer launches a loopback seabed-server over a slow cluster and
// returns its address plus the server for stats inspection.
func startSlowServer(t *testing.T, sleep time.Duration, shard string) (string, *seabed.Server) {
	t.Helper()
	srv := seabed.NewServer(slowCluster(sleep))
	if shard != "" {
		fmt.Sscanf(shard, "%d/%d", &srv.ShardIndex, &srv.ShardCount) //nolint:errcheck // test input
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close() //nolint:errcheck // racing test teardown
		<-done
	})
	return ln.Addr().String(), srv
}

const aggSQL = "SELECT SUM(m) FROM big WHERE d > 15"

// assertCancelsPromptly cancels a context 60ms into the query and asserts
// the proxy returns context.Canceled well under the 1s budget.
func assertCancelsPromptly(t *testing.T, proxy *seabed.Proxy) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := proxy.Query(ctx, aggSQL)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled query took %v, want < 1s", elapsed)
	}
	// The uncancelled runway really was longer than the time we waited:
	// ~15 tasks per lane × 20ms means a full run takes ≥ 200ms.
	if elapsed < 60*time.Millisecond {
		t.Fatalf("query returned in %v, before the cancel even fired", elapsed)
	}
}

// drainStats polls until the server reports no in-flight runs, proving the
// canceled query's slot was freed.
func drainStats(t *testing.T, srv *seabed.Server) server.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.RunsActive == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still reports %d in-flight runs", st.RunsActive)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelMidQueryInProcess(t *testing.T) {
	proxy := lifecycleProxy(t, slowCluster(20*time.Millisecond))
	assertCancelsPromptly(t, proxy)
	// The same query, uncancelled, still succeeds afterwards.
	if _, err := proxy.Query(context.Background(), aggSQL); err != nil {
		t.Fatalf("uncancelled query after a cancel: %v", err)
	}
}

func TestCancelMidQueryRemote(t *testing.T) {
	addr, srv := startSlowServer(t, 20*time.Millisecond, "")
	rc, err := seabed.DialCluster(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	proxy := lifecycleProxy(t, rc)

	assertCancelsPromptly(t, proxy)
	st := drainStats(t, srv)
	if st.Canceled == 0 {
		t.Fatal("server never counted a canceled run; the Cancel frame did not arrive")
	}
	// The freed slot serves the next query on the same pool.
	if _, err := proxy.Query(context.Background(), aggSQL); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
}

func TestCancelMidQuerySharded(t *testing.T) {
	addrs := make([]string, 3)
	servers := make([]*seabed.Server, 3)
	for i := range addrs {
		addrs[i], servers[i] = startSlowServer(t, 20*time.Millisecond, fmt.Sprintf("%d/3", i))
	}
	sc, err := seabed.DialShardedCluster(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	proxy := lifecycleProxy(t, sc)

	assertCancelsPromptly(t, proxy)
	for i, srv := range servers {
		if st := drainStats(t, srv); st.Canceled == 0 {
			t.Errorf("shard %d never counted a canceled run", i)
		}
	}
}

// TestDeadlineCancelsAllShards is the WithTimeout gate: a deadline shorter
// than the slow 3-shard query returns context.DeadlineExceeded and cancels
// the in-flight work on every daemon (asserted via server.Stats).
func TestDeadlineCancelsAllShards(t *testing.T) {
	addrs := make([]string, 3)
	servers := make([]*seabed.Server, 3)
	for i := range addrs {
		addrs[i], servers[i] = startSlowServer(t, 20*time.Millisecond, fmt.Sprintf("%d/3", i))
	}
	sc, err := seabed.DialShardedCluster(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	proxy := lifecycleProxy(t, sc)

	start := time.Now()
	_, err = proxy.Query(context.Background(), aggSQL, seabed.WithTimeout(80*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline query returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline query took %v, want < 1s", elapsed)
	}
	for i, srv := range servers {
		st := drainStats(t, srv)
		if st.Canceled == 0 {
			t.Errorf("shard %d never canceled its slice of the deadline-exceeded query", i)
		}
	}
	// Past deadlines fail fast without touching the fleet again.
	if _, err := proxy.Query(context.Background(), aggSQL, seabed.WithTimeout(-time.Second)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v", err)
	}
}

// TestUncancelledResultsIdenticalAcrossBackends is acceptance gate (a)'s
// second half: the redesigned query path returns identical decrypted rows
// in-process, over the wire, and scatter-gathered across three shards.
func TestUncancelledResultsIdenticalAcrossBackends(t *testing.T) {
	local := lifecycleProxy(t, seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))

	addr, _ := startSlowServer(t, 0, "")
	rc, err := seabed.DialCluster(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	remote := local.WithCluster(rc)
	if err := remote.SyncTables(context.Background()); err != nil {
		t.Fatal(err)
	}

	shardAddrs := make([]string, 3)
	for i := range shardAddrs {
		shardAddrs[i], _ = startSlowServer(t, 0, fmt.Sprintf("%d/3", i))
	}
	sc, err := seabed.DialShardedCluster(shardAddrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	sharded := local.WithCluster(sc)
	if err := sharded.SyncTables(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, sql := range []string{
		aggSQL,
		"SELECT COUNT(*) FROM big",
		"SELECT m FROM big WHERE d > 29", // scan
	} {
		for _, mode := range []seabed.Mode{seabed.ModeNoEnc, seabed.ModeSeabed} {
			rowsOf := func(p *seabed.Proxy) []seabed.Row {
				res, err := p.Query(context.Background(), sql, seabed.WithMode(mode))
				if err != nil {
					t.Fatalf("%v %q: %v", mode, sql, err)
				}
				rows, err := res.All()
				if err != nil {
					t.Fatalf("%v %q: %v", mode, sql, err)
				}
				return rows
			}
			want := rowsOf(local)
			if got := rowsOf(remote); !reflect.DeepEqual(got, want) {
				t.Errorf("%v %q: remote rows diverge from in-process", mode, sql)
			}
			if got := rowsOf(sharded); !reflect.DeepEqual(got, want) {
				t.Errorf("%v %q: sharded rows diverge from in-process", mode, sql)
			}
		}
	}
}

// TestStreamedScanMatchesMaterialized is acceptance gate (b): a streamed
// scan's Rows() yields exactly the rows the materialized path returns — for
// the in-process, remote, and sharded backends — and the post-drain metrics
// are populated.
func TestStreamedScanMatchesMaterialized(t *testing.T) {
	local := lifecycleProxy(t, seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))

	addr, _ := startSlowServer(t, 0, "")
	rc, err := seabed.DialCluster(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	remote := local.WithCluster(rc)
	if err := remote.SyncTables(context.Background()); err != nil {
		t.Fatal(err)
	}

	shardAddrs := make([]string, 3)
	for i := range shardAddrs {
		shardAddrs[i], _ = startSlowServer(t, 0, fmt.Sprintf("%d/3", i))
	}
	sc, err := seabed.DialShardedCluster(shardAddrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	sharded := local.WithCluster(sc)
	if err := sharded.SyncTables(context.Background()); err != nil {
		t.Fatal(err)
	}

	// d > 1 selects ~2900 of 3000 rows: the scan spans multiple wire chunks.
	const scanSQL = "SELECT m FROM big WHERE d > 1"
	for name, proxy := range map[string]*seabed.Proxy{
		"in-process": local, "remote": remote, "sharded": sharded,
	} {
		mat, err := proxy.Query(context.Background(), scanSQL)
		if err != nil {
			t.Fatalf("%s materialized: %v", name, err)
		}
		matRows, err := mat.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(matRows) < 2000 {
			t.Fatalf("%s: scan selected only %d rows; fixture broken", name, len(matRows))
		}

		streamed, err := proxy.Query(context.Background(), scanSQL, seabed.WithStreaming())
		if err != nil {
			t.Fatalf("%s streamed: %v", name, err)
		}
		var got []seabed.Row
		for row, err := range streamed.Rows() {
			if err != nil {
				t.Fatalf("%s streamed row: %v", name, err)
			}
			got = append(got, row)
		}
		if !reflect.DeepEqual(got, matRows) {
			t.Fatalf("%s: streamed rows diverge from materialized (%d vs %d rows)", name, len(got), len(matRows))
		}
		if streamed.Metrics.RowsScanned == 0 || streamed.ServerTime <= 0 {
			t.Fatalf("%s: post-drain metrics not populated: %+v", name, streamed.Metrics)
		}
		// A drained stream is one-shot.
		for _, err := range streamed.Rows() {
			if err == nil {
				t.Fatalf("%s: second Rows() on a drained stream yielded no error", name)
			}
			break
		}
	}
}

// TestStreamEarlyBreakCancelsQuery verifies that abandoning a streamed scan
// mid-iteration cancels the underlying query and frees the server slot.
func TestStreamEarlyBreakCancelsQuery(t *testing.T) {
	addr, srv := startSlowServer(t, 0, "")
	rc, err := seabed.DialCluster(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	proxy := lifecycleProxy(t, rc)

	res, err := proxy.Query(context.Background(), "SELECT m FROM big WHERE d > 1", seabed.WithStreaming())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range res.Rows() {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n >= 10 {
			break
		}
	}
	drainStats(t, srv)
	// The pool must still serve queries after the abandoned stream.
	if _, err := proxy.Query(context.Background(), "SELECT COUNT(*) FROM big"); err != nil {
		t.Fatalf("query after abandoned stream: %v", err)
	}
}
