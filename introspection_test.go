// Query-introspection end-to-end tests: the EXPLAIN / EXPLAIN ANALYZE front
// door, the live-query registry and kill endpoint on both sides of the trust
// boundary, and the fleet health rollup — all through the public facade and
// the HTTP debug planes, the way an operator would reach them.
package seabed_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seabed"
	"seabed/internal/fleet"
	"seabed/internal/obs"
)

// getJSON fetches url and decodes the JSON body into out, reporting the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitForActiveQuery polls a debug plane's /debug/queries until an in-flight
// run appears, returning its trace ID.
func waitForActiveQuery(t *testing.T, baseURL string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var pl obs.QueriesPayload
		if getJSON(t, baseURL+"/debug/queries", &pl) == http.StatusOK && len(pl.Active) > 0 {
			return pl.Active[0].TraceID
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no active query ever appeared on /debug/queries")
	return ""
}

// TestExplainRendersPlan is the plain-EXPLAIN gate: the compiled plan renders
// as an operator tree — schemes, kernels, predicted shuffle — without running
// the query.
func TestExplainRendersPlan(t *testing.T) {
	proxy := lifecycleProxy(t, seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))
	res, err := proxy.Query(context.Background(), "EXPLAIN "+aggSQL)
	if err != nil {
		t.Fatal(err)
	}
	text := res.ExplainText()
	for _, want := range []string{
		"EXPLAIN (mode=",
		"column m: scheme=",
		"column d: scheme=",
		"Aggregate [",
		"Filter ",
		"Scan big: 3000 rows",
		"predicted shuffle ≈",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
	// Plain EXPLAIN must not execute: no measured counters in the tree and
	// nothing entered the flight recorder's run path as a real query.
	if strings.Contains(text, "rows_scanned=") {
		t.Errorf("plain EXPLAIN carries measured counters (the query ran):\n%s", text)
	}
	// The plan still travels as ordinary rows, so All() works unmodified.
	rows, err := res.All()
	if err != nil || len(rows) == 0 {
		t.Fatalf("EXPLAIN rows: %d, err=%v", len(rows), err)
	}
}

// TestExplainAnalyzeShardedEndToEnd is the acceptance gate: EXPLAIN ANALYZE
// against a 3-shard fleet prints the per-operator tree with real counters
// merged across shards (carried in wire v8 result frames).
func TestExplainAnalyzeShardedEndToEnd(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i], _ = startSlowServer(t, 0, fmt.Sprintf("%d/3", i))
	}
	sc, err := seabed.DialShardedCluster(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	proxy := lifecycleProxy(t, sc)

	res, err := proxy.Query(context.Background(), "EXPLAIN ANALYZE "+aggSQL)
	if err != nil {
		t.Fatal(err)
	}
	text := res.ExplainText()
	for _, want := range []string{
		"EXPLAIN ANALYZE (mode=",
		"map_tasks=",
		"selection: ",
		"rows_scanned=3000", // merged across all 3 shards, not one shard's slice
		"batches=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	// The grafted counters are the run's own merged metrics: per-operator
	// counters crossed the wire from every shard and summed.
	if res.Metrics.RowsScanned != 3000 {
		t.Errorf("merged RowsScanned = %d, want 3000", res.Metrics.RowsScanned)
	}
	if res.Metrics.Ops.Batches == 0 {
		t.Errorf("merged per-operator counters are zero; v8 Ops did not cross the wire: %+v", res.Metrics.Ops)
	}
	// The ANALYZE run went through the ordinary query path: it was traced and
	// entered the proxy's flight recorder.
	if proxy.Queries().RecordedCount() == 0 {
		t.Error("ANALYZE run never entered the flight recorder")
	}

	// A grouped ANALYZE (NoEnc: plaintext group keys) shows the group path
	// choice and the dense/hash split.
	res, err = proxy.Query(context.Background(),
		"EXPLAIN ANALYZE SELECT d, SUM(m) FROM big GROUP BY d", seabed.WithMode(seabed.ModeNoEnc))
	if err != nil {
		t.Fatal(err)
	}
	text = res.ExplainText()
	for _, want := range []string{"GroupBy d: path=", "rows grouped: dense=", "group_slots="} {
		if !strings.Contains(text, want) {
			t.Errorf("grouped EXPLAIN ANALYZE missing %q:\n%s", want, text)
		}
	}
	if res.Metrics.Ops.GroupDense+res.Metrics.Ops.GroupHash == 0 {
		t.Errorf("grouped run counted no grouped rows: %+v", res.Metrics.Ops)
	}
}

// TestDebugKillProxyEndToEnd kills a stalled query through the proxy's
// /debug/queries/kill and asserts the caller gets context.Canceled in under
// a second.
func TestDebugKillProxyEndToEnd(t *testing.T) {
	proxy := lifecycleProxy(t, slowCluster(20*time.Millisecond))
	dbg := httptest.NewServer(proxy.DebugHandler())
	t.Cleanup(dbg.Close)

	errc := make(chan error, 1)
	go func() {
		_, err := proxy.Query(context.Background(), aggSQL)
		errc <- err
	}()
	trace := waitForActiveQuery(t, dbg.URL)

	killAt := time.Now()
	var kill struct {
		Killed bool `json:"killed"`
	}
	if code := getJSON(t, dbg.URL+"/debug/queries/kill?trace="+trace, &kill); code != http.StatusOK || !kill.Killed {
		t.Fatalf("kill returned status=%d killed=%v", code, kill.Killed)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("killed query returned %v, want context.Canceled", err)
		}
		if elapsed := time.Since(killAt); elapsed > time.Second {
			t.Fatalf("killed query took %v to return, want < 1s", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("killed query never returned")
	}

	// The run left the active set and landed in the flight recorder with its
	// terminal error.
	var pl obs.QueriesPayload
	getJSON(t, dbg.URL+"/debug/queries", &pl)
	if len(pl.Active) != 0 {
		t.Errorf("active set still holds %d runs after the kill", len(pl.Active))
	}
	found := false
	for _, q := range pl.Recent {
		if q.TraceID == trace {
			found = true
			if !q.Done || !strings.Contains(q.Err, "canceled") {
				t.Errorf("recorded trace %s: done=%v err=%q, want done with a canceled error", trace, q.Done, q.Err)
			}
		}
	}
	if !found {
		t.Errorf("killed trace %s never entered the flight recorder", trace)
	}
	// Killing a gone trace is a 404, not a panic.
	if code := getJSON(t, dbg.URL+"/debug/queries/kill?trace="+trace, nil); code != http.StatusNotFound {
		t.Errorf("re-kill of a finished trace returned %d, want 404", code)
	}
	// A malformed trace ID is a 400.
	if code := getJSON(t, dbg.URL+"/debug/queries/kill?trace=xyzzy", nil); code != http.StatusBadRequest {
		t.Errorf("malformed trace returned %d, want 400", code)
	}
}

// TestDebugKillDaemonEndToEnd kills a stalled run through the daemon's own
// debug plane — the untrusted side, where the registry holds plan
// fingerprints, never SQL — and asserts the slot frees and the client errors
// promptly.
func TestDebugKillDaemonEndToEnd(t *testing.T) {
	addr, srv := startSlowServer(t, 20*time.Millisecond, "")
	rc, err := seabed.DialCluster(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	proxy := lifecycleProxy(t, rc)
	dbg := httptest.NewServer(srv.DebugHandler())
	t.Cleanup(dbg.Close)

	errc := make(chan error, 1)
	go func() {
		_, err := proxy.Query(context.Background(), aggSQL)
		errc <- err
	}()
	trace := waitForActiveQuery(t, dbg.URL)

	// The daemon never sees plaintext: its registry entry must be a plan
	// fingerprint, not the SQL text.
	var pl obs.QueriesPayload
	getJSON(t, dbg.URL+"/debug/queries", &pl)
	if len(pl.Active) > 0 && strings.Contains(pl.Active[0].Query, "SELECT") {
		t.Errorf("daemon registry leaked SQL text: %q", pl.Active[0].Query)
	}

	killAt := time.Now()
	var kill struct {
		Killed bool `json:"killed"`
	}
	if code := getJSON(t, dbg.URL+"/debug/queries/kill?trace="+trace, &kill); code != http.StatusOK || !kill.Killed {
		t.Fatalf("daemon kill returned status=%d killed=%v", code, kill.Killed)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("daemon-killed query returned %v, want a canceled error", err)
		}
		if elapsed := time.Since(killAt); elapsed > time.Second {
			t.Fatalf("daemon-killed query took %v to return, want < 1s", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon-killed query never returned")
	}

	// The daemon counted the cancellation and freed the slot …
	if st := drainStats(t, srv); st.Canceled == 0 {
		t.Fatal("daemon never counted the killed run as canceled")
	}
	// … and the freed slot serves the next query.
	if _, err := proxy.Query(context.Background(), aggSQL); err != nil {
		t.Fatalf("query after daemon-side kill: %v", err)
	}
}

// TestFleetHealthRollup boots a 3-daemon fleet with per-daemon debug planes,
// and asserts the coordinator's rollup — reached through the proxy's
// /debug/fleet endpoint — reports all three live with their /stats merged in.
func TestFleetHealthRollup(t *testing.T) {
	addrs := make([]string, 3)
	servers := make([]*seabed.Server, 3)
	dbgAddrs := make([]string, 3)
	for i := range addrs {
		addrs[i], servers[i], _, _ = startFleetDaemon(t, "127.0.0.1:0", "", i, 3, 0)
		ds := httptest.NewServer(servers[i].DebugHandler())
		t.Cleanup(ds.Close)
		dbgAddrs[i] = strings.TrimPrefix(ds.URL, "http://")
	}
	fc, err := seabed.DialFleet(addrs, seabed.FleetOptions{Replicas: 2, DebugAddrs: dbgAddrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	proxy := lifecycleProxy(t, fc)
	if _, err := proxy.Query(context.Background(), aggSQL); err != nil {
		t.Fatal(err)
	}

	pd := httptest.NewServer(proxy.DebugHandler())
	t.Cleanup(pd.Close)
	var h fleet.FleetHealth
	if code := getJSON(t, pd.URL+"/debug/fleet", &h); code != http.StatusOK {
		t.Fatalf("/debug/fleet returned %d", code)
	}
	if h.Live != 3 || len(h.Daemons) != 3 {
		t.Fatalf("fleet health: %d/%d live, want 3/3", h.Live, len(h.Daemons))
	}
	if h.Replicas != 2 {
		t.Errorf("health echoes R=%d, want 2", h.Replicas)
	}
	var runs uint64
	for _, d := range h.Daemons {
		if !d.Live || d.Err != "" {
			t.Errorf("daemon %d (%s): live=%v err=%q", d.Index, d.Addr, d.Live, d.Err)
		}
		if d.Tables == 0 {
			t.Errorf("daemon %d reports no tables after the upload", d.Index)
		}
		if len(d.Ranges) == 0 {
			t.Errorf("daemon %d hosts no ranges under R=2 placement", d.Index)
		}
		if d.Stats == nil {
			t.Errorf("daemon %d: /stats never merged into the rollup", d.Index)
			continue
		}
		runs += d.Stats.Runs
	}
	if runs == 0 {
		t.Error("no daemon counted a run; /stats polling is broken")
	}
	if len(h.StaleRanges) != 0 {
		t.Errorf("healthy fleet reports stale ranges: %+v", h.StaleRanges)
	}

	// Killing one daemon degrades the rollup to 2/3 live without hanging it.
	servers[2].Close() //nolint:errcheck // deliberate kill
	var h2 fleet.FleetHealth
	deadline := time.Now().Add(10 * time.Second)
	for {
		start := time.Now()
		if code := getJSON(t, pd.URL+"/debug/fleet", &h2); code != http.StatusOK {
			t.Fatalf("/debug/fleet after kill returned %d", code)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("health poll with a dead daemon took %v; probe timeout broken", elapsed)
		}
		if h2.Live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollup never saw the dead daemon: %d/%d live", h2.Live, len(h2.Daemons))
		}
		time.Sleep(50 * time.Millisecond)
	}
	if h2.Daemons[2].Live || h2.Daemons[2].Err == "" {
		t.Errorf("dead daemon reported live=%v err=%q", h2.Daemons[2].Live, h2.Daemons[2].Err)
	}
}
