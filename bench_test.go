// Package-level benchmarks: one testing.B target per table and figure of
// the paper's evaluation (run `go test -bench=. -benchmem`). Each benchmark
// executes the corresponding experiment end to end at a reduced scale; for
// full paper-shaped output use cmd/seabed-bench.
package seabed_test

import (
	"io"
	"testing"

	"seabed/internal/bench"
)

// benchCfg keeps each iteration around a second. Workers is left unset so
// Quick runs inherit engine.DefaultWorkers — benchmarks and an unconfigured
// engine simulate the same machine.
func benchCfg() bench.Config {
	return bench.Config{Quick: true, Scale: 50_000, Trials: 1, Seed: 42}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := bench.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_OperationCosts(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2_QueryTranslation(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3_IDListEncodings(b *testing.B)     { runExperiment(b, "table3") }
func BenchmarkTable4_QueryCategories(b *testing.B)     { runExperiment(b, "table4") }
func BenchmarkTable5_DatasetSizes(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkFig6_LatencyVsRows(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7_LatencyVsWorkers(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8_SelectivitySweep(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9a_GroupByMicrobench(b *testing.B)    { runExperiment(b, "fig9a") }
func BenchmarkFig9bc_BigDataBenchmark(b *testing.B)    { runExperiment(b, "fig9bc") }
func BenchmarkFig10a_AdAnalyticsLatency(b *testing.B)  { runExperiment(b, "fig10a") }
func BenchmarkFig10b_SplasheStorage(b *testing.B)      { runExperiment(b, "fig10b") }
func BenchmarkLinks_ClientLinkSweep(b *testing.B)      { runExperiment(b, "links") }
func BenchmarkAblations_DesignChoices(b *testing.B)    { runExperiment(b, "ablations") }
func BenchmarkKernels_ExecutorThroughput(b *testing.B) { runExperiment(b, "kernels") }
func BenchmarkRecovery_DurableReplay(b *testing.B)     { runExperiment(b, "recovery") }
func BenchmarkColdScan_MappedSegments(b *testing.B)    { runExperiment(b, "coldscan") }
func BenchmarkHedge_StragglerMitigation(b *testing.B)  { runExperiment(b, "hedge") }
