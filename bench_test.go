// Package-level benchmarks: one testing.B target per table and figure of
// the paper's evaluation (run `go test -bench=. -benchmem`). Each benchmark
// executes the corresponding experiment end to end at a reduced scale; for
// full paper-shaped output use cmd/seabed-bench.
package seabed_test

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"seabed/internal/bench"
	"seabed/internal/engine"
	"seabed/internal/server"
	"seabed/internal/shard"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// benchCfg keeps each iteration around a second. Workers is left unset so
// Quick runs inherit engine.DefaultWorkers — benchmarks and an unconfigured
// engine simulate the same machine.
func benchCfg() bench.Config {
	return bench.Config{Quick: true, Scale: 50_000, Trials: 1, Seed: 42}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := bench.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_OperationCosts(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2_QueryTranslation(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3_IDListEncodings(b *testing.B)     { runExperiment(b, "table3") }
func BenchmarkTable4_QueryCategories(b *testing.B)     { runExperiment(b, "table4") }
func BenchmarkTable5_DatasetSizes(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkFig6_LatencyVsRows(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7_LatencyVsWorkers(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8_SelectivitySweep(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9a_GroupByMicrobench(b *testing.B)    { runExperiment(b, "fig9a") }
func BenchmarkFig9bc_BigDataBenchmark(b *testing.B)    { runExperiment(b, "fig9bc") }
func BenchmarkFig10a_AdAnalyticsLatency(b *testing.B)  { runExperiment(b, "fig10a") }
func BenchmarkFig10b_SplasheStorage(b *testing.B)      { runExperiment(b, "fig10b") }
func BenchmarkLinks_ClientLinkSweep(b *testing.B)      { runExperiment(b, "links") }
func BenchmarkAblations_DesignChoices(b *testing.B)    { runExperiment(b, "ablations") }
func BenchmarkKernels_ExecutorThroughput(b *testing.B) { runExperiment(b, "kernels") }
func BenchmarkRecovery_DurableReplay(b *testing.B)     { runExperiment(b, "recovery") }
func BenchmarkColdScan_MappedSegments(b *testing.B)    { runExperiment(b, "coldscan") }
func BenchmarkHedge_StragglerMitigation(b *testing.B)  { runExperiment(b, "hedge") }

// BenchmarkGroupBy_WideKeyThroughput drives the engine's hashed group path
// end to end — every row its own sparse key, so the grouper runs the
// open-addressed table with radix-partitioned probing and the bucketed
// parallel reduce — and archives throughput as a custom "Mrows/s" metric.
// CI asserts this metric is present in the emitted BENCH_<sha>.json, seeding
// the group-by performance trajectory.
func BenchmarkGroupBy_WideKeyThroughput(b *testing.B) {
	const rows = 1 << 20
	vals := make([]uint64, rows)
	keys := make([]uint64, rows)
	for i := range vals {
		vals[i] = uint64(i % 100)
		// 64Ki distinct sparse keys: far past the dense direct-index span,
		// and every map task's table crosses the radix-probing threshold.
		keys[i] = uint64(i%(1<<16))*0x9e3779b1 + 11
	}
	tbl, err := store.Build("gbwide", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "k", Kind: store.U64, U64: keys},
	}, engine.DefaultWorkers)
	if err != nil {
		b.Fatal(err)
	}
	cluster := engine.NewCluster(engine.Config{Workers: engine.DefaultWorkers})
	pl := &engine.Plan{Table: tbl, GroupBy: &engine.GroupBy{Col: "k"},
		Aggs: []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}, {Kind: engine.AggCount}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(context.Background(), pl); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

// BenchmarkStreamedScan_FirstChunkFleet stands up a three-shard loopback
// fleet and streams a filtered projected scan through shard.RunStream,
// archiving the merged first-chunk latency against the full gather as
// custom "first_chunk_ms"/"run_ms" metrics. The acceptance bar for the
// streaming engine is first-chunk under 10% of the full run: the first
// sink call needs only shard 0's first map task, while the run pays for
// every partition on every shard.
func BenchmarkStreamedScan_FirstChunkFleet(b *testing.B) {
	const (
		shards = 3
		rows   = 240_000
		parts  = 24
	)
	addrs := make([]string, shards)
	for i := range addrs {
		srv := server.New(engine.NewCluster(engine.Config{Workers: 4}))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln) //nolint:errcheck // torn down with the benchmark
		b.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
	}
	sc, err := shard.Dial(addrs)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sc.Close() })

	vals := make([]uint64, rows)
	tags := make([]string, rows)
	for i := range vals {
		vals[i] = uint64(i % 256)
		tags[i] = string(rune('a' + i%13))
	}
	tbl, err := store.Build("fleetscan", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "tag", Kind: store.Str, Str: tags},
	}, parts)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := sc.RegisterTable(ctx, "fleetscan", tbl); err != nil {
		b.Fatal(err)
	}
	pl := &engine.Plan{Table: tbl,
		Filters: []engine.Filter{{Kind: engine.FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 128}},
		Project: []string{"v", "tag"}}
	// One untimed warmup: CI archives a single iteration, and the first
	// streamed run pays connection and plan-cache cold starts that would
	// otherwise swamp the first-chunk/full-run ratio being tracked.
	if _, err := sc.RunStream(ctx, pl, func([]engine.ScanRow) error { return nil }); err != nil {
		b.Fatal(err)
	}
	var firstChunk, fullRun time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := sc.RunStream(ctx, pl, func([]engine.ScanRow) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		run := time.Since(start)
		if res.Metrics.FirstChunk <= 0 {
			b.Fatal("merged metrics carry no FirstChunk")
		}
		// Keep the best observed run and its own first-chunk latency, so the
		// archived pair is internally consistent.
		if fullRun == 0 || run < fullRun {
			firstChunk, fullRun = res.Metrics.FirstChunk, run
		}
	}
	b.ReportMetric(float64(firstChunk)/float64(time.Millisecond), "first_chunk_ms")
	b.ReportMetric(float64(fullRun)/float64(time.Millisecond), "run_ms")
}
