package seabed

import (
	"seabed/internal/ashe"
	"seabed/internal/det"
	"seabed/internal/idlist"
	"seabed/internal/ope"
	"seabed/internal/paillier"
	"seabed/internal/splashe"
)

// Direct access to the encryption schemes, for users composing Seabed's
// primitives without the full proxy stack (e.g. the quickstart example
// aggregates ASHE ciphertexts by hand).

// ASHE (§3.1): the additively symmetric homomorphic scheme.
type (
	// ASHEKey encrypts and decrypts one column.
	ASHEKey = ashe.Key
	// ASHECiphertext is a group element plus an identifier multiset.
	ASHECiphertext = ashe.Ciphertext
	// IDList is a compressed multiset of row identifiers (§4.5).
	IDList = idlist.List
	// IDListCodec serializes identifier lists (Table 3's encodings).
	IDListCodec = idlist.Codec
)

// NewASHEKey creates an ASHE column key from a 16-byte secret.
func NewASHEKey(secret []byte) (*ASHEKey, error) { return ashe.NewKey(secret) }

// ASHEAdd homomorphically adds two ciphertexts.
func ASHEAdd(a, b ASHECiphertext) ASHECiphertext { return ashe.Add(a, b) }

// DET (§2.1): deterministic encryption for joins and equality.
type DETKey = det.Key

// NewDETKey creates a DET key from a 16-byte secret.
func NewDETKey(secret []byte) (*DETKey, error) { return det.NewKey(secret) }

// ORE (§4.2, Appendix A.3): the Chenette et al. order-revealing scheme.
type OREKey = ope.Key

// NewOREKey creates an ORE key from a 16-byte secret.
func NewOREKey(secret []byte) (*OREKey, error) { return ope.NewKey(secret) }

// ORECompare order-compares two ORE ciphertexts without any key:
// -1, 0 or +1.
func ORECompare(ct1, ct2 []byte) int { return ope.Compare(ct1, ct2) }

// Paillier: the asymmetric baseline CryptDB and Monomi build on.
type (
	// PaillierPrivateKey decrypts.
	PaillierPrivateKey = paillier.PrivateKey
	// PaillierPublicKey encrypts and adds.
	PaillierPublicKey = paillier.PublicKey
)

// SPLASHE (§3.3–3.4): splayed layouts for frequency-attack defense.
type (
	// SplasheLayout describes how one dimension is splayed.
	SplasheLayout = splashe.Layout
)

// PlanBasicSplashe plans a basic layout for a dimension of cardinality d.
func PlanBasicSplashe(d int) (SplasheLayout, error) { return splashe.PlanBasic(d) }

// PlanEnhancedSplashe plans an enhanced layout from per-value counts.
func PlanEnhancedSplashe(counts []uint64) (SplasheLayout, error) {
	return splashe.PlanEnhanced(counts)
}

// FrequencyAttack mounts the rank-matching frequency attack of [36] —
// useful for demonstrating what SPLASHE defends against (see the
// splashe-tour example).
func FrequencyAttack(observed, known []uint64) []int {
	return splashe.FrequencyAttack(observed, known)
}

// IDListCodecs returns the Table 3 / Figure 8 encoding family, in sweep
// order.
func IDListCodecs() []IDListCodec { return idlist.AllCodecs() }
