package seabed

import (
	"seabed/internal/workload"
)

// Public access to the evaluation workload generators (§5, §6), so examples
// and downstream users can regenerate the paper's datasets.

type (
	// BDB is the generated AmpLab Big Data Benchmark (§6.7).
	BDB = workload.BDB
	// BDBConfig scales the benchmark.
	BDBConfig = workload.BDBConfig
	// BDBQuery is one of the ten benchmark queries.
	BDBQuery = workload.BDBQuery
	// AdA is the generated advertising-analytics workload (§6.6).
	AdA = workload.AdA
	// AdAConfig scales it.
	AdAConfig = workload.AdAConfig
	// MDXFunction is one row of the Appendix B catalog (Table 6).
	MDXFunction = workload.MDXFunction
	// CategoryCounts is a Table 4 classification row.
	CategoryCounts = workload.CategoryCounts
)

// GenerateBDB builds the Big Data Benchmark tables at the given scale.
func GenerateBDB(cfg BDBConfig) (*BDB, error) { return workload.GenerateBDB(cfg) }

// BDBQueries returns the ten benchmark queries with the paper's
// simplifications applied (§6.7).
func BDBQueries() []BDBQuery { return workload.BDBQueries() }

// BDBSamples returns per-table sample query sets for planning.
func BDBSamples() map[string][]string { return workload.BDBSamples() }

// GenerateAdA builds the advertising-analytics workload at the given scale.
func GenerateAdA(cfg AdAConfig) (*AdA, error) { return workload.GenerateAdA(cfg) }

// AdASamples returns the ad-analytics sample queries for planning.
func AdASamples() []string { return workload.AdASamples() }

// GenerateSynthetic builds the §6.1 microbenchmark table.
func GenerateSynthetic(rows, groups int, seed int64) (*Table, error) {
	return workload.Synthetic(rows, groups, seed)
}

// SyntheticSchema returns the microbenchmark schema.
func SyntheticSchema(groups int) *Schema { return workload.SyntheticSchema(groups) }

// SyntheticQueries returns the microbenchmark sample queries.
func SyntheticQueries() []string { return workload.SyntheticQueries() }

// MDXCatalog returns Table 6: all 38 MDX functions with how Seabed supports
// each.
func MDXCatalog() []MDXFunction { return workload.MDXCatalog() }
