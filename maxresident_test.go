// Max-resident end-to-end test: a durable daemon restarted with a residency
// budget far below its table sizes must answer scans and aggregates
// byte-identically to the all-resident daemon it replaced — the disk-to-wire
// columnar path serves tables larger than RAM by faulting columns per query
// and evicting between queries, never by changing results.
package seabed_test

import (
	"net"
	"reflect"
	"testing"

	"seabed"
)

// startBudgetedServer serves a durable seabed-server on addr (":0" picks a
// port) over dir with the given residency budget (0 = unlimited).
func startBudgetedServer(t *testing.T, addr, dir string, budget int64) (string, *seabed.Server, *seabed.DurableStore, func()) {
	t.Helper()
	d, err := seabed.OpenDurableStore(seabed.DurableOptions{
		Dir: dir, Fsync: seabed.FsyncAlways, MaxResidentBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := seabed.NewServer(seabed.NewCluster(seabed.ClusterConfig{Workers: 4}))
	srv.UseDurable(d)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close() //nolint:errcheck // racing test teardown
		<-done
		d.Close() //nolint:errcheck // racing test teardown
	}
	t.Cleanup(stop)
	return ln.Addr().String(), srv, d, stop
}

func TestMaxResidentServesLargerThanBudget(t *testing.T) {
	dir := t.TempDir()

	// Seed the directory through an unbudgeted daemon and capture the
	// reference answers while everything is heap-resident.
	addr, _, _, stop := startBudgetedServer(t, "127.0.0.1:0", dir, 0)
	sc, err := seabed.DialShardedCluster(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	proxy := lifecycleProxy(t, sc) // uploads "big" in NoEnc + Seabed modes
	queries := []string{
		aggSQL,
		"SELECT COUNT(*) FROM big",
		"SELECT m FROM big WHERE d > 29", // streamed scan
		"SELECT m FROM big WHERE d > 15", // wider scan: many chunks
	}
	want := make(map[string][]seabed.Row)
	for _, sql := range queries {
		want[sql] = queryRows(t, proxy, sql)
	}
	stop()

	// Restart over the same directory and address with a budget orders of
	// magnitude below the data: every table is now larger than what may stay
	// resident, so queries fault columns in per map task and the manager
	// evicts between pins. The same proxy keeps querying — its pooled
	// sockets died with the daemon and redial the budgeted one.
	const budget = 4096
	_, srv2, d2, _ := startBudgetedServer(t, addr, dir, budget)
	rec := srv2.Stats().Recovery
	if rec.MappedBytes == 0 {
		t.Fatalf("restart mapped no segment bytes: %+v", rec)
	}
	tableBytes := uint64(rec.MappedBytes)
	if tableBytes <= budget*4 {
		t.Fatalf("fixture too small for the test: %d mapped bytes vs %d budget", tableBytes, budget)
	}
	for _, sql := range queries {
		got := queryRows(t, proxy, sql)
		if !reflect.DeepEqual(got, want[sql]) {
			t.Fatalf("%q: budgeted daemon diverged from all-resident answers (%d vs %d rows)",
				sql, len(got), len(want[sql]))
		}
	}

	st := srv2.Stats().Residency
	if st.BudgetBytes != budget {
		t.Fatalf("stats budget = %d, want %d", st.BudgetBytes, budget)
	}
	if st.ColumnFaults == 0 {
		t.Fatal("budgeted daemon answered without faulting a single column — the views were never exercised")
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite %d data bytes under a %d budget: %+v", tableBytes, budget, st)
	}
	// The watermark holds between queries: transient working sets may exceed
	// it, but after eviction the resident estimate must sit far below the
	// table sizes.
	if st.ResidentBytes > tableBytes/2 {
		t.Fatalf("resident bytes %d did not come back toward the %d budget (tables %d)",
			st.ResidentBytes, budget, tableBytes)
	}
	if got := d2.Residency().Stats().BudgetBytes; got != budget {
		t.Fatalf("store-level budget = %d, want %d", got, budget)
	}
}
