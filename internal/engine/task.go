package engine

import (
	"fmt"
	"math/big"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// This file holds the execution state shared by the vectorized executor
// (compile.go / kernel.go / batch.go) and the retained row-at-a-time
// reference evaluator (reference.go): aggregate accumulators, map-task
// output, and the shuffle-size accounting both paths must agree on.

// cancelCheckRows is how often (in rows) a map task polls its context: a
// power of two so the hot loop's check is one mask and compare. It is a
// whole multiple of batchRows, so the vectorized executor checks on batch
// boundaries at exactly the same row granularity as the reference loop.
const cancelCheckRows = 1 << 16

// groupKey identifies a group within map/reduce bookkeeping. Bytes keys are
// folded into the string field.
type groupKey struct {
	kind   store.Kind
	u64    uint64
	str    string
	suffix int
}

// partial is an in-flight aggregate for one group.
type partial struct {
	rows uint64
	aggs []aggState
}

// aggState is one aggregate's accumulator.
type aggState struct {
	kind      AggKind
	u64       uint64
	ids       idlist.List
	pail      *big.Int
	ope       []byte
	compBytes []byte // byte-valued companion of the winning row
	argID     uint64 // winning row for min/max
	// median collection: every selected row's key material.
	medU64  []uint64
	medOpe  [][]byte
	medComp []uint64
	medIDs  []uint64
	seen    bool // for min/max: whether any row contributed
	// encodedLen is the codec-compressed identifier-list size when the
	// worker compressed it (shuffle accounting).
	encodedLen int
}

func newPartial(aggs []Agg) *partial {
	p := &partial{aggs: make([]aggState, len(aggs))}
	for i, a := range aggs {
		p.aggs[i].kind = a.Kind
		if a.Kind == AggPaillierSum {
			p.aggs[i].pail = a.PK.EncryptZero()
		}
	}
	return p
}

// keyedPartial pairs a group key with its in-flight accumulator inside a
// reducer bucket.
type keyedPartial struct {
	key groupKey
	p   *partial
}

// mapResult is one map task's output.
type mapResult struct {
	single *partial
	// groups is the task's group-by output, already partitioned for the
	// shuffle: groups[b] holds the (key, partial) pairs reducerBucket assigns
	// to reducer b, so the reduce stage concatenates per-bucket slices
	// instead of re-hashing a map per task. Its length is the cluster's
	// Workers count; a key appears in at most one bucket, and at most once
	// per task.
	groups  [][]keyedPartial
	scan    []ScanRow
	elapsed time.Duration
	// bytes is the serialized partial size (shuffle traffic).
	bytes        int
	rowsScanned  uint64
	rowsSelected uint64
	// ops carries the task's per-operator counters (batch-granularity; see
	// OpStats). The reference evaluator leaves it zero except for column
	// pins/faults, which both executors record in runMapTask's shared path.
	ops OpStats
}

// reducerBucket deterministically assigns a group key to one of n reducer
// buckets. Both executors and every shard must agree on the assignment — it
// replaces the old sort-all-distinct-keys round-robin — so it hashes only
// the key's value material (splitmix64 over u64 keys, FNV-1a over
// string/byte keys, the inflation suffix mixed in) and never map iteration
// order.
func reducerBucket(k groupKey, n int) int {
	if n <= 1 {
		return 0
	}
	h := splitmix64(uint64(int64(k.suffix)) ^ 0x5eabed)
	if k.kind == store.U64 {
		h = splitmix64(h ^ k.u64)
	} else {
		f := uint64(14695981039346656037)
		for i := 0; i < len(k.str); i++ {
			f = (f ^ uint64(k.str[i])) * 1099511628211
		}
		h = splitmix64(h ^ f)
	}
	return int(h % uint64(n))
}

// bucketGroups converts a groupKey-keyed map into the reducer-bucketed
// mapResult contract. The reference evaluator's row loop still accumulates
// into a map (that loop is behaviorally frozen); this conversion is its only
// concession to the bucketed shuffle.
func bucketGroups(groups map[groupKey]*partial, n int) [][]keyedPartial {
	out := make([][]keyedPartial, n)
	for k, p := range groups {
		b := reducerBucket(k, n)
		out[b] = append(out[b], keyedPartial{key: k, p: p})
	}
	return out
}

// rangeBounds intersects a partition with the plan's optional IDRange frame
// (§4.5 scatter-gather shard scoping) and returns the index interval
// [i0, i1] of in-scope rows. Row identifiers are contiguous within a
// partition, so the scope is a simple interval; a partition wholly outside
// yields i1 < i0 and scans nothing.
func rangeBounds(part *store.Partition, r *IDRange) (i0, i1 int) {
	n := part.NumRows()
	i0, i1 = 0, n-1
	if r == nil || n == 0 {
		return i0, i1
	}
	first, last := part.StartID, part.StartID+uint64(n)-1
	if r.Lo > last || r.Hi < first || r.Lo > r.Hi {
		return 0, -1
	}
	if r.Lo > first {
		i0 = int(r.Lo - first)
	}
	if r.Hi < last {
		i1 = int(r.Hi - first)
	}
	return i0, i1
}

// flattenRight concatenates the right table's partitions per column. A
// view-backed right table is pinned resident for the walk; the appends below
// copy into fresh heap vectors, so nothing aliases the views after release.
func flattenRight(t *store.Table, cols []string, key string) (map[string]*store.Column, error) {
	for _, p := range t.Parts {
		release, err := p.Pin(nil)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	names := append([]string{key}, cols...)
	out := make(map[string]*store.Column, len(names))
	for _, name := range names {
		if _, ok := out[name]; ok {
			continue
		}
		kind, err := t.ColKind(name)
		if err != nil {
			return nil, err
		}
		full := &store.Column{Name: name, Kind: kind}
		for _, p := range t.Parts {
			c := p.Col(name)
			if c == nil {
				return nil, fmt.Errorf("engine: join table %q partition missing column %q", t.Name, name)
			}
			switch kind {
			case store.U64:
				full.U64 = append(full.U64, c.U64...)
			case store.Bytes:
				full.Bytes = append(full.Bytes, c.Bytes...)
			default:
				full.Str = append(full.Str, c.Str...)
			}
		}
		out[name] = full
	}
	return out, nil
}

// splitmix64 is the deterministic per-row hash behind FilterRandom and group
// inflation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func cmpMatch(op sqlparse.CmpOp, cmp int) bool {
	switch op {
	case sqlparse.OpEq:
		return cmp == 0
	case sqlparse.OpNe:
		return cmp != 0
	case sqlparse.OpLt:
		return cmp < 0
	case sqlparse.OpLe:
		return cmp <= 0
	case sqlparse.OpGt:
		return cmp > 0
	case sqlparse.OpGe:
		return cmp >= 0
	}
	return false
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// encodePartialIDs compresses ASHE identifier lists at the worker (§4.5);
// the codec output size rides in the aggState to keep shuffle sizes honest.
func encodePartialIDs(p *partial, codec idlist.Codec) error {
	for i := range p.aggs {
		st := &p.aggs[i]
		if st.kind != AggAsheSum || st.ids.Empty() {
			continue
		}
		enc, err := codec.Encode(st.ids)
		if err != nil {
			return fmt.Errorf("engine: encode id list: %v", err)
		}
		// Decode immediately: the reducer must merge raw lists, and a real
		// deployment pays exactly this decode on the reduce side.
		dec, err := codec.Decode(enc)
		if err != nil {
			return fmt.Errorf("engine: decode id list: %v", err)
		}
		st.ids = dec
		st.encodedLen = len(enc)
	}
	return nil
}

// partialBytes estimates the serialized size of a map task's output.
func (pl *Plan) partialBytes(res *mapResult, codec idlist.Codec) int {
	total := 0
	addPartial := func(key *groupKey, p *partial) {
		if key != nil {
			switch key.kind {
			case store.U64:
				total += 8
			default:
				total += len(key.str)
			}
			if key.suffix >= 0 {
				total += 2
			}
		}
		total += 8 // row count
		for i := range p.aggs {
			st := &p.aggs[i]
			switch st.kind {
			case AggCount, AggPlainSum, AggPlainSumSq, AggPlainMin, AggPlainMax:
				total += 8
			case AggAsheSum:
				total += 8
				if pl.CompressAtDriver {
					total += 16 * st.ids.NumRanges() // raw ranges on the wire
				} else {
					total += st.encodedLen
				}
			case AggPaillierSum:
				total += pl.Aggs[i].PK.CiphertextSize()
			case AggOpeMin, AggOpeMax:
				total += len(st.ope)
			case AggPlainMedian:
				total += 8 * len(st.medU64)
			case AggOpeMedian:
				total += opeMedianBytes(st.medOpe)
			}
		}
	}
	if res.single != nil {
		addPartial(nil, res.single)
	}
	for _, kps := range res.groups {
		for i := range kps {
			addPartial(&kps[i].key, kps[i].p)
		}
	}
	for _, row := range res.scan {
		total += 8
		for i := range row.U64s {
			total += 8
			total += len(row.Bytes[i])
			total += len(row.Strs[i])
		}
	}
	return total
}

// opeMedianBytes sizes a collected OPE median shuffle payload from the
// actual ciphertext lengths (OPE ciphertexts are variable-length), plus the
// row identifier and companion value each element carries.
func opeMedianBytes(medOpe [][]byte) int {
	total := 0
	for _, ct := range medOpe {
		total += len(ct) + 16
	}
	return total
}

// takeCompanion records the companion-column value of a new min/max winner.
func (st *aggState) takeCompanion(comp *store.Column, j int) {
	if comp == nil {
		return
	}
	if comp.Kind == store.Bytes {
		st.compBytes = comp.Bytes[j]
		return
	}
	st.u64 = comp.U64[j]
}
