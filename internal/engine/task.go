package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/ope"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// cancelCheckRows is how often (in rows) a map task polls its context: a
// power of two so the hot loop's check is one mask and compare.
const cancelCheckRows = 1 << 16

// groupKey identifies a group within map/reduce bookkeeping. Bytes keys are
// folded into the string field.
type groupKey struct {
	kind   store.Kind
	u64    uint64
	str    string
	suffix int
}

// partial is an in-flight aggregate for one group.
type partial struct {
	rows uint64
	aggs []aggState
}

// aggState is one aggregate's accumulator.
type aggState struct {
	kind      AggKind
	u64       uint64
	ids       idlist.List
	pail      *big.Int
	ope       []byte
	compBytes []byte // byte-valued companion of the winning row
	argID     uint64 // winning row for min/max
	// median collection: every selected row's key material.
	medU64  []uint64
	medOpe  [][]byte
	medComp []uint64
	medIDs  []uint64
	seen    bool // for min/max: whether any row contributed
	// encodedLen is the codec-compressed identifier-list size when the
	// worker compressed it (shuffle accounting).
	encodedLen int
}

func newPartial(aggs []Agg) *partial {
	p := &partial{aggs: make([]aggState, len(aggs))}
	for i, a := range aggs {
		p.aggs[i].kind = a.Kind
		if a.Kind == AggPaillierSum {
			p.aggs[i].pail = a.PK.EncryptZero()
		}
	}
	return p
}

// mapResult is one map task's output.
type mapResult struct {
	single  *partial
	groups  map[groupKey]*partial
	scan    []ScanRow
	elapsed time.Duration
	// bytes is the serialized partial size (shuffle traffic).
	bytes        int
	rowsScanned  uint64
	rowsSelected uint64
}

// boundCols resolves every column a plan references against a partition and
// the optional broadcast join.
type boundCols struct {
	filters    []*store.Column
	aggs       []*store.Column
	companions []*store.Column
	group      *store.Column
	project    []*store.Column

	// joined columns come from the flattened right table.
	filterRight  []bool
	aggRight     []bool
	groupRight   bool
	projectRight []bool

	leftKey  *store.Column
	joinHash map[string]int
	right    map[string]*store.Column
}

// flattenRight concatenates the right table's partitions per column.
func flattenRight(t *store.Table, cols []string, key string) (map[string]*store.Column, error) {
	names := append([]string{key}, cols...)
	out := make(map[string]*store.Column, len(names))
	for _, name := range names {
		if _, ok := out[name]; ok {
			continue
		}
		kind, err := t.ColKind(name)
		if err != nil {
			return nil, err
		}
		full := &store.Column{Name: name, Kind: kind}
		for _, p := range t.Parts {
			c := p.Col(name)
			if c == nil {
				return nil, fmt.Errorf("engine: join table %q partition missing column %q", t.Name, name)
			}
			switch kind {
			case store.U64:
				full.U64 = append(full.U64, c.U64...)
			case store.Bytes:
				full.Bytes = append(full.Bytes, c.Bytes...)
			default:
				full.Str = append(full.Str, c.Str...)
			}
		}
		out[name] = full
	}
	return out, nil
}

// hashKeyOf renders a join/group key value as a map key.
func hashKeyOf(c *store.Column, i int) string {
	switch c.Kind {
	case store.U64:
		var b [8]byte
		v := c.U64[i]
		for j := 0; j < 8; j++ {
			b[j] = byte(v >> (8 * j))
		}
		return string(b[:])
	case store.Bytes:
		return string(c.Bytes[i])
	default:
		return c.Str[i]
	}
}

// buildJoinHash indexes the right table's key column.
func buildJoinHash(right map[string]*store.Column, keyCol string) map[string]int {
	key := right[keyCol]
	h := make(map[string]int, key.Len())
	for i := 0; i < key.Len(); i++ {
		h[hashKeyOf(key, i)] = i
	}
	return h
}

// bind resolves the plan's columns against one partition.
func (pl *Plan) bind(part *store.Partition, right map[string]*store.Column, joinHash map[string]int) (*boundCols, error) {
	b := &boundCols{right: right, joinHash: joinHash}
	resolve := func(name string) (*store.Column, bool, error) {
		if c := part.Col(name); c != nil {
			return c, false, nil
		}
		if right != nil {
			if c, ok := right[name]; ok {
				return c, true, nil
			}
		}
		return nil, false, fmt.Errorf("engine: unknown column %q", name)
	}
	for _, f := range pl.Filters {
		if f.Kind == FilterRandom {
			b.filters = append(b.filters, nil)
			b.filterRight = append(b.filterRight, false)
			continue
		}
		c, r, err := resolve(f.Col)
		if err != nil {
			return nil, err
		}
		b.filters = append(b.filters, c)
		b.filterRight = append(b.filterRight, r)
	}
	for _, a := range pl.Aggs {
		if a.Kind == AggCount {
			b.aggs = append(b.aggs, nil)
			b.companions = append(b.companions, nil)
			b.aggRight = append(b.aggRight, false)
			continue
		}
		c, r, err := resolve(a.Col)
		if err != nil {
			return nil, err
		}
		var comp *store.Column
		if a.Companion != "" {
			comp, _, err = resolve(a.Companion)
			if err != nil {
				return nil, err
			}
		}
		b.aggs = append(b.aggs, c)
		b.companions = append(b.companions, comp)
		b.aggRight = append(b.aggRight, r)
	}
	if pl.GroupBy != nil {
		c, r, err := resolve(pl.GroupBy.Col)
		if err != nil {
			return nil, err
		}
		b.group, b.groupRight = c, r
	}
	for _, name := range pl.Project {
		c, r, err := resolve(name)
		if err != nil {
			return nil, err
		}
		b.project = append(b.project, c)
		b.projectRight = append(b.projectRight, r)
	}
	if pl.Join != nil {
		c := part.Col(pl.Join.LeftCol)
		if c == nil {
			return nil, fmt.Errorf("engine: join key %q missing from left table", pl.Join.LeftCol)
		}
		b.leftKey = c
	}
	return b, nil
}

// splitmix64 is the deterministic per-row hash behind FilterRandom and group
// inflation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func cmpMatch(op sqlparse.CmpOp, cmp int) bool {
	switch op {
	case sqlparse.OpEq:
		return cmp == 0
	case sqlparse.OpNe:
		return cmp != 0
	case sqlparse.OpLt:
		return cmp < 0
	case sqlparse.OpLe:
		return cmp <= 0
	case sqlparse.OpGt:
		return cmp > 0
	case sqlparse.OpGe:
		return cmp >= 0
	}
	return false
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// runMapTask executes the plan's map stage on one partition. It observes ctx
// at the injected I/O stall and once per cancelCheckRows rows of the scan
// loop, so a canceled query abandons even a single huge partition promptly.
func (pl *Plan) runMapTask(ctx context.Context, c *Cluster, part *store.Partition, right map[string]*store.Column, joinHash map[string]int, codec idlist.Codec) (*mapResult, error) {
	if c.cfg.TaskSleep > 0 {
		t := time.NewTimer(c.cfg.TaskSleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	b, err := pl.bind(part, right, joinHash)
	if err != nil {
		return nil, err
	}
	res := &mapResult{}
	n := part.NumRows()

	// Shard scoping (§4.5 scatter-gather): restrict the task to the rows of
	// this partition whose global identifiers fall inside pl.Range. Row
	// identifiers are contiguous within a partition, so the scope is a simple
	// index interval [i0, i1]; a partition wholly outside scans nothing.
	i0, i1 := 0, n-1
	if pl.Range != nil && n > 0 {
		first, last := part.StartID, part.StartID+uint64(n)-1
		if pl.Range.Lo > last || pl.Range.Hi < first || pl.Range.Lo > pl.Range.Hi {
			i0, i1 = 0, -1
		} else {
			if pl.Range.Lo > first {
				i0 = int(pl.Range.Lo - first)
			}
			if pl.Range.Hi < last {
				i1 = int(pl.Range.Hi - first)
			}
		}
	}
	res.rowsScanned = uint64(i1 - i0 + 1)

	start := time.Now()
	if pl.GroupBy == nil && len(pl.Project) == 0 {
		res.single = newPartial(pl.Aggs)
	} else if pl.GroupBy != nil {
		res.groups = make(map[groupKey]*partial)
	}

	inflate := 0
	if pl.GroupBy != nil && pl.GroupBy.Inflate > 1 {
		inflate = pl.GroupBy.Inflate
	}

	for i := i0; i <= i1; i++ {
		if (i-i0)&(cancelCheckRows-1) == cancelCheckRows-1 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		rowID := part.StartID + uint64(i)
		joinIdx := -1
		if b.leftKey != nil {
			idx, ok := b.joinHash[hashKeyOf(b.leftKey, i)]
			if !ok {
				continue // inner join: unmatched rows drop
			}
			joinIdx = idx
		}
		// at maps a side flag to the row index without allocating (hot loop).
		// Filters (conjunction).
		ok := true
		for fi := range pl.Filters {
			f := &pl.Filters[fi]
			switch f.Kind {
			case FilterRandom:
				if f.Prob < 1 && splitmix64(f.Seed^rowID) >= uint64(f.Prob*float64(1<<63))<<1 {
					ok = false
				}
			case FilterPlainCmp:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				if !cmpMatch(f.Op, cmpU64(col.U64[j], f.U64)) {
					ok = false
				}
			case FilterStrCmp:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				v := col.Str[j]
				var cmp int
				switch {
				case v < f.Str:
					cmp = -1
				case v > f.Str:
					cmp = 1
				}
				if !cmpMatch(f.Op, cmp) {
					ok = false
				}
			case FilterDetEq:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				if bytes.Equal(col.Bytes[j], f.Bytes) == f.Negate {
					ok = false
				}
			case FilterOpeCmp:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				if !cmpMatch(f.Op, ope.Compare(col.Bytes[j], f.Bytes)) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		res.rowsSelected++

		// Scan mode: project and continue.
		if len(pl.Project) > 0 {
			row := ScanRow{ID: rowID,
				U64s:  make([]uint64, len(b.project)),
				Bytes: make([][]byte, len(b.project)),
				Strs:  make([]string, len(b.project))}
			for pi, col := range b.project {
				j := i
				if b.projectRight[pi] {
					j = joinIdx
				}
				switch col.Kind {
				case store.U64:
					row.U64s[pi] = col.U64[j]
				case store.Bytes:
					row.Bytes[pi] = col.Bytes[j]
				default:
					row.Strs[pi] = col.Str[j]
				}
			}
			res.scan = append(res.scan, row)
			continue
		}

		// Locate the group partial.
		var pg *partial
		if pl.GroupBy == nil {
			pg = res.single
		} else {
			key := groupKey{kind: b.group.Kind, suffix: -1}
			j := i
			if b.groupRight {
				j = joinIdx
			}
			switch b.group.Kind {
			case store.U64:
				key.u64 = b.group.U64[j]
			case store.Bytes:
				key.str = string(b.group.Bytes[j])
			default:
				key.str = b.group.Str[j]
			}
			if inflate > 0 {
				key.suffix = int(splitmix64(c.cfg.Seed^rowID^0xa5a5) % uint64(inflate))
			}
			pg = res.groups[key]
			if pg == nil {
				pg = newPartial(pl.Aggs)
				res.groups[key] = pg
			}
		}
		pg.rows++

		// Accumulate aggregates.
		for ai := range pl.Aggs {
			st := &pg.aggs[ai]
			col := b.aggs[ai]
			j := i
			if col != nil && b.aggRight[ai] {
				j = joinIdx
			}
			switch st.kind {
			case AggCount:
				st.u64++
			case AggPlainSum:
				st.u64 += col.U64[j]
			case AggPlainSumSq:
				st.u64 += col.U64[j] * col.U64[j]
			case AggAsheSum:
				st.u64 += col.U64[j]
				st.ids.Append(rowID)
			case AggPaillierSum:
				pl.Aggs[ai].PK.AddInto(st.pail, new(big.Int).SetBytes(col.Bytes[j]))
			case AggPlainMin:
				if !st.seen || col.U64[j] < st.u64 {
					st.u64, st.seen = col.U64[j], true
				}
			case AggPlainMax:
				if !st.seen || col.U64[j] > st.u64 {
					st.u64, st.seen = col.U64[j], true
				}
			case AggOpeMin:
				if !st.seen || ope.Less(col.Bytes[j], st.ope) {
					st.ope, st.argID, st.seen = col.Bytes[j], rowID, true
					st.takeCompanion(b.companions[ai], j)
				}
			case AggOpeMax:
				if !st.seen || ope.Less(st.ope, col.Bytes[j]) {
					st.ope, st.argID, st.seen = col.Bytes[j], rowID, true
					st.takeCompanion(b.companions[ai], j)
				}
			case AggPlainMedian:
				st.medU64 = append(st.medU64, col.U64[j])
			case AggOpeMedian:
				st.medOpe = append(st.medOpe, col.Bytes[j])
				st.medIDs = append(st.medIDs, rowID)
				if comp := b.companions[ai]; comp != nil {
					st.medComp = append(st.medComp, comp.U64[j])
				}
			}
		}
	}

	// Worker-side compression of ASHE identifier lists (§4.5): encode here,
	// inside the measured task, unless the ablation moved it to the driver.
	if !pl.CompressAtDriver {
		if res.single != nil {
			if err := encodePartialIDs(res.single, codec); err != nil {
				return nil, err
			}
		}
		for _, pg := range res.groups {
			if err := encodePartialIDs(pg, codec); err != nil {
				return nil, err
			}
		}
	}
	res.elapsed = time.Since(start)
	res.bytes = pl.partialBytes(res, codec)
	return res, nil
}

// encodedIDBytes holds codec output per agg between map and reduce; it rides
// in the aggState to keep shuffle sizes honest.
func encodePartialIDs(p *partial, codec idlist.Codec) error {
	for i := range p.aggs {
		st := &p.aggs[i]
		if st.kind != AggAsheSum || st.ids.Empty() {
			continue
		}
		enc, err := codec.Encode(st.ids)
		if err != nil {
			return fmt.Errorf("engine: encode id list: %v", err)
		}
		// Decode immediately: the reducer must merge raw lists, and a real
		// deployment pays exactly this decode on the reduce side.
		dec, err := codec.Decode(enc)
		if err != nil {
			return fmt.Errorf("engine: decode id list: %v", err)
		}
		st.ids = dec
		st.encodedLen = len(enc)
	}
	return nil
}

// partialBytes estimates the serialized size of a map task's output.
func (pl *Plan) partialBytes(res *mapResult, codec idlist.Codec) int {
	total := 0
	addPartial := func(key *groupKey, p *partial) {
		if key != nil {
			switch key.kind {
			case store.U64:
				total += 8
			default:
				total += len(key.str)
			}
			if key.suffix >= 0 {
				total += 2
			}
		}
		total += 8 // row count
		for i := range p.aggs {
			st := &p.aggs[i]
			switch st.kind {
			case AggCount, AggPlainSum, AggPlainSumSq, AggPlainMin, AggPlainMax:
				total += 8
			case AggAsheSum:
				total += 8
				if pl.CompressAtDriver {
					total += 16 * st.ids.NumRanges() // raw ranges on the wire
				} else {
					total += st.encodedLen
				}
			case AggPaillierSum:
				total += pl.Aggs[i].PK.CiphertextSize()
			case AggOpeMin, AggOpeMax:
				total += len(st.ope)
			case AggPlainMedian:
				total += 8 * len(st.medU64)
			case AggOpeMedian:
				total += len(st.medOpe) * (64 + 16)
			}
		}
	}
	if res.single != nil {
		addPartial(nil, res.single)
	}
	for key, p := range res.groups {
		k := key
		addPartial(&k, p)
	}
	for _, row := range res.scan {
		total += 8
		for i := range row.U64s {
			total += 8
			total += len(row.Bytes[i])
			total += len(row.Strs[i])
		}
	}
	return total
}

// takeCompanion records the companion-column value of a new min/max winner.
func (st *aggState) takeCompanion(comp *store.Column, j int) {
	if comp == nil {
		return
	}
	if comp.Kind == store.Bytes {
		st.compBytes = comp.Bytes[j]
		return
	}
	st.u64 = comp.U64[j]
}
