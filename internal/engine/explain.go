package engine

// This file is the engine's half of EXPLAIN: names for the kernel enums and
// predictors for the executor choices (group path, join index, result size)
// that the proxy's plan renderer reports. Everything here reads the plan and
// the engine's own sizing constants — the same constants execute() consults —
// so EXPLAIN never drifts from what a run would actually do.

import (
	"fmt"

	"seabed/internal/store"
)

// String names the filter kernel, as EXPLAIN prints it.
func (k FilterKind) String() string {
	switch k {
	case FilterPlainCmp:
		return "plain_cmp"
	case FilterStrCmp:
		return "str_cmp"
	case FilterDetEq:
		return "det_eq"
	case FilterOpeCmp:
		return "ope_cmp"
	case FilterRandom:
		return "random"
	}
	return fmt.Sprintf("FilterKind(%d)", int(k))
}

// String names the aggregate kernel, as EXPLAIN prints it.
func (k AggKind) String() string {
	switch k {
	case AggPlainSum:
		return "plain_sum"
	case AggPlainSumSq:
		return "plain_sum_sq"
	case AggCount:
		return "count"
	case AggAsheSum:
		return "ashe_sum"
	case AggPaillierSum:
		return "paillier_sum"
	case AggPlainMin:
		return "plain_min"
	case AggPlainMax:
		return "plain_max"
	case AggOpeMin:
		return "ope_min"
	case AggOpeMax:
		return "ope_max"
	case AggPlainMedian:
		return "plain_median"
	case AggOpeMedian:
		return "ope_median"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// GroupKeyKind resolves the grouping column's storage kind, looking on the
// scan table first and the join's right table second (grouping by a projected
// right-side column). ok is false when the plan has no grouping or the column
// resolves on neither side.
func (pl *Plan) GroupKeyKind() (kind store.Kind, ok bool) {
	if pl.GroupBy == nil {
		return 0, false
	}
	if k, err := pl.Table.ColKind(pl.GroupBy.Col); err == nil {
		return k, true
	}
	if pl.Join != nil && pl.Join.Right != nil {
		if k, err := pl.Join.Right.ColKind(pl.GroupBy.Col); err == nil {
			return k, true
		}
	}
	return 0, false
}

// GroupPath predicts which grouping path the executor will take for this
// plan, using the same sizing rules as the grouper: plaintext u64 keys get a
// dense direct index over min(KeyBound or the default span, the dense cap)
// keys times the inflation-suffix domain with an open-addressed hash fallback
// (radix-partitioned once the table outgrows radixMinTable), un-inflated byte
// keys a bytes-keyed map, and everything else a string-keyed map. Empty when
// the plan has no GROUP BY.
func (pl *Plan) GroupPath() string {
	gb := pl.GroupBy
	if gb == nil {
		return ""
	}
	kind, ok := pl.GroupKeyKind()
	if !ok {
		return "unknown key"
	}
	inflateN := uint64(1)
	if gb.Inflate > 1 {
		inflateN = uint64(gb.Inflate)
	}
	switch kind {
	case store.U64:
		keys := uint64(denseDefaultEntries) / inflateN
		bounded := ""
		if gb.KeyBound > 0 {
			keys = gb.KeyBound
			bounded = ", KeyBound"
		}
		if max := uint64(denseMaxEntries) / inflateN; keys > max {
			keys = max
		}
		return fmt.Sprintf("dense direct-index (%d keys × %d suffixes%s), hash fallback radix-partitioned ≥ %d slots",
			keys, inflateN, bounded, radixMinTable)
	case store.Bytes:
		if inflateN == 1 {
			return "bytes-keyed map"
		}
		return "string-keyed map (inflated byte keys)"
	}
	return "string-keyed map"
}

// JoinIndexKind names the hash index the broadcast join builds over the right
// table, typed by the left key column's kind the way the probe kernel is:
// u64 keys hash directly, byte and string keys use a string-keyed map. Empty
// when the plan has no join.
func (pl *Plan) JoinIndexKind() string {
	if pl.Join == nil {
		return ""
	}
	kind, err := pl.Table.ColKind(pl.Join.LeftCol)
	if err != nil {
		return "unknown key"
	}
	switch kind {
	case store.U64:
		return "u64-hash"
	case store.Bytes:
		return "bytes-hash"
	}
	return "string-hash"
}

// Per-value size guesses for EstimateResultBytes: a shipped u64, an
// encrypted-bytes cell (DET/OPE/Paillier ciphertext), and one aggregate's
// share of a result group (ASHE body plus encoded identifier-list overhead).
const (
	estU64Bytes   = 8
	estCellBytes  = 32
	estAggBytes   = 48
	estGroupGuess = 1 << 12
)

// EstimateResultBytes predicts the result-transfer (shuffle) volume of a
// plan before it runs, for EXPLAIN's "predicted shuffle" line: scans ship
// every un-filtered row's identifier plus projected cells, aggregations ship
// one record per expected group. The estimate is a pre-selection upper bound
// — filters only shrink it — sized from the plan's own table and grouping
// hints (KeyBound, inflation), with a fixed guess for unbounded groupings.
func (pl *Plan) EstimateResultBytes() uint64 {
	rows := pl.Table.NumRows()
	if r := pl.Range; r != nil && r.Hi >= r.Lo {
		if span := r.Hi - r.Lo + 1; span < rows {
			rows = span
		}
	}
	if len(pl.Project) > 0 {
		per := uint64(estU64Bytes) // the row identifier
		for _, name := range pl.Project {
			kind, err := pl.Table.ColKind(name)
			if err == nil && kind == store.U64 {
				per += estU64Bytes
			} else {
				per += estCellBytes
			}
		}
		return rows * per
	}
	groups := uint64(1)
	if gb := pl.GroupBy; gb != nil {
		groups = estGroupGuess
		if gb.KeyBound > 0 {
			groups = gb.KeyBound
		}
		if gb.Inflate > 1 {
			groups *= uint64(gb.Inflate)
		}
		if groups > rows && rows > 0 {
			groups = rows
		}
	}
	return groups * (estU64Bytes + uint64(len(pl.Aggs))*estAggBytes)
}
