package engine

import (
	"reflect"
	"testing"
)

// TestOpStatsMergeThreeShards pins the merge semantics the coordinator relies
// on when it folds three shards' v8 counter blocks into one EXPLAIN ANALYZE
// view: every field sums, except GroupTableLen, which reports the largest
// single table any shard built (a capacity, not a volume).
func TestOpStatsMergeThreeShards(t *testing.T) {
	shards := []OpStats{
		{Batches: 1, DenseBatches: 2, JoinProbed: 3, JoinMatched: 4, GroupDense: 5,
			GroupHash: 6, RadixBatches: 7, GroupSlots: 8, GroupTableLen: 100, ColumnPins: 9, ColumnFaults: 10},
		{Batches: 10, DenseBatches: 20, JoinProbed: 30, JoinMatched: 40, GroupDense: 50,
			GroupHash: 60, RadixBatches: 70, GroupSlots: 80, GroupTableLen: 4096, ColumnPins: 90, ColumnFaults: 100},
		{Batches: 100, DenseBatches: 200, JoinProbed: 300, JoinMatched: 400, GroupDense: 500,
			GroupHash: 600, RadixBatches: 700, GroupSlots: 800, GroupTableLen: 512, ColumnPins: 900, ColumnFaults: 1000},
	}
	var merged OpStats
	for i := range shards {
		merged.merge(&shards[i])
	}
	want := OpStats{
		Batches: 111, DenseBatches: 222, JoinProbed: 333, JoinMatched: 444, GroupDense: 555,
		GroupHash: 666, RadixBatches: 777, GroupSlots: 888, GroupTableLen: 4096, ColumnPins: 999, ColumnFaults: 1110,
	}
	if merged != want {
		t.Fatalf("3-shard merge:\n got %+v\nwant %+v", merged, want)
	}

	// Structural guard: a field added to OpStats without a merge rule would
	// silently read zero in every EXPLAIN ANALYZE. Merging a one-valued stats
	// block into a zero block must touch every field.
	ones := OpStats{}
	v := reflect.ValueOf(&ones).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(1)
	}
	var m OpStats
	m.merge(&ones)
	mv := reflect.ValueOf(m)
	for i := 0; i < mv.NumField(); i++ {
		if mv.Field(i).Uint() == 0 {
			t.Errorf("OpStats.%s not touched by merge; add it to merge()", mv.Type().Field(i).Name)
		}
	}
}

// TestMergeMetricsCarriesOps pins that the shard-result metric fold
// (mergeMetrics, the coordinator's scatter-gather path) forwards the ops
// block rather than dropping it on the floor.
func TestMergeMetricsCarriesOps(t *testing.T) {
	dst := Metrics{Ops: OpStats{Batches: 1, GroupTableLen: 10}}
	src := Metrics{Ops: OpStats{Batches: 2, GroupTableLen: 7, ColumnFaults: 3}}
	mergeMetrics(&dst, &src, false)
	if dst.Ops.Batches != 3 || dst.Ops.GroupTableLen != 10 || dst.Ops.ColumnFaults != 3 {
		t.Fatalf("mergeMetrics dropped ops counters: %+v", dst.Ops)
	}
}
