package engine

import (
	"context"
	"crypto/rand"
	"fmt"
	"reflect"
	"testing"

	"seabed/internal/paillier"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// This file differentially tests the vectorized executor (Run) against the
// retained straight-line reference evaluator (RunReference): every query
// category — filter, aggregate, group-by, join, median, scan — in each of
// the NoEnc (plaintext), Seabed (ASHE/DET/OPE), and Paillier column
// representations must produce byte-identical results and identical
// deterministic cost accounting through both executors. CI runs the package
// under -race, so the compiled plan's sharing across concurrent map tasks
// is exercised too.

// diffFixture extends the test fixture with a string dimension and a
// Paillier ciphertext column so all three encryption modes are present in
// one table.
func diffFixture(t *testing.T, rows, parts int) (*store.Table, *store.Table, *paillier.PrivateKey) {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sk.NewMaskPool(rand.Reader, 16)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, rows)
	dims := make([]uint64, rows)
	wide := make([]uint64, rows)
	strs := make([]string, rows)
	asheCol := make([]uint64, rows)
	detCol := make([][]byte, rows)
	opeCol := make([][]byte, rows)
	pailCol := make([][]byte, rows)
	for i := 0; i < rows; i++ {
		vals[i] = uint64(i % 97)
		dims[i] = uint64(i % 7)
		// Distinct per row and spread far past the grouper's dense span, so
		// wide group-bys drive the hashed (and, once the table outgrows
		// radixMinTable, radix-partitioned) probe path.
		wide[i] = uint64(i)*0x9e3779b1 + 11
		strs[i] = fmt.Sprintf("dim-%d", i%5)
		asheCol[i] = asheKey.EncryptBody(vals[i], uint64(i)+1)
		detCol[i] = detKey.EncryptU64(dims[i])
		opeCol[i] = opeKey.Encrypt(vals[i])
		pailCol[i] = sk.Marshal(pool.EncryptU64(vals[i]))
	}
	tbl, err := store.Build("t", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "d", Kind: store.U64, U64: dims},
		{Name: "w", Kind: store.U64, U64: wide},
		{Name: "s", Kind: store.Str, Str: strs},
		{Name: "v_ashe", Kind: store.U64, U64: asheCol},
		{Name: "d_det", Kind: store.Bytes, Bytes: detCol},
		{Name: "v_ope", Kind: store.Bytes, Bytes: opeCol},
		{Name: "v_pail", Kind: store.Bytes, Bytes: pailCol},
	}, parts)
	if err != nil {
		t.Fatal(err)
	}

	// Right side for broadcast joins: one row per dim value, keyed both as
	// plaintext u64 and as DET bytes, with a payload column.
	const rdims = 5 // leave dims 5 and 6 unmatched so inner-join drops occur
	rdim := make([]uint64, rdims)
	rdet := make([][]byte, rdims)
	rank := make([]uint64, rdims)
	for i := 0; i < rdims; i++ {
		rdim[i] = uint64(i)
		rdet[i] = detKey.EncryptU64(uint64(i))
		rank[i] = uint64(100 + i*11)
	}
	right, err := store.Build("r", []store.Column{
		{Name: "rdim", Kind: store.U64, U64: rdim},
		{Name: "rdim_det", Kind: store.Bytes, Bytes: rdet},
		{Name: "rank", Kind: store.U64, U64: rank},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, right, sk
}

// assertSameResult compares everything deterministic about two results:
// groups (keys, rows, every aggregate value including encoded id-lists and
// Paillier ciphertexts), scan rows, and the non-timing metrics.
func assertSameResult(t *testing.T, name string, vec, ref *Result) {
	t.Helper()
	if !reflect.DeepEqual(vec.Groups, ref.Groups) {
		t.Errorf("%s: groups diverge\nvectorized: %+v\nreference:  %+v", name, vec.Groups, ref.Groups)
	}
	if !reflect.DeepEqual(vec.Scan, ref.Scan) {
		t.Errorf("%s: scan rows diverge (%d vs %d rows)", name, len(vec.Scan), len(ref.Scan))
	}
	type det struct {
		ShuffleBytes, ResultBytes, MapTasks, ReduceTasks int
		RowsScanned, RowsSelected                        uint64
	}
	v := det{vec.Metrics.ShuffleBytes, vec.Metrics.ResultBytes, vec.Metrics.MapTasks, vec.Metrics.ReduceTasks, vec.Metrics.RowsScanned, vec.Metrics.RowsSelected}
	r := det{ref.Metrics.ShuffleBytes, ref.Metrics.ResultBytes, ref.Metrics.MapTasks, ref.Metrics.ReduceTasks, ref.Metrics.RowsScanned, ref.Metrics.RowsSelected}
	if v != r {
		t.Errorf("%s: deterministic metrics diverge\nvectorized: %+v\nreference:  %+v", name, v, r)
	}
}

func TestDifferentialExecutors(t *testing.T) {
	// ~2857 rows per partition: every partition spans multiple 1024-row
	// batches, so batch-boundary state (selection-vector reuse, arena
	// refills, per-batch id-list AppendRange runs) is differentially
	// exercised, not just the single-batch case.
	const rows, parts = 20000, 7
	tbl, right, sk := diffFixture(t, rows, parts)
	pk := &sk.PublicKey

	cases := []struct {
		name string
		plan func() *Plan
	}{
		// --- NoEnc: plaintext filters and aggregates ---
		{"noenc/filter-agg", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 40}},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount},
					{Kind: AggPlainSumSq, Col: "v"}, {Kind: AggPlainMin, Col: "v"}, {Kind: AggPlainMax, Col: "v"}}}
		}},
		{"noenc/every-op", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{
					{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGe, U64: 10},
					{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpLe, U64: 90},
					{Kind: FilterPlainCmp, Col: "d", Op: sqlparse.OpNe, U64: 6},
				},
				Aggs: []Agg{{Kind: AggCount}}}
		}},
		{"noenc/str-filter", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterStrCmp, Col: "s", Op: sqlparse.OpGt, Str: "dim-1"}},
				Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}},
		{"noenc/random-filter", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterRandom, Prob: 0.37, Seed: 1234}},
				Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}},
		{"noenc/group-by-u64", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d"},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}, {Kind: AggPlainMax, Col: "v"}}}
		}},
		{"noenc/group-by-str", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "s"},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}}}
		}},
		{"noenc/group-by-inflated", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d", Inflate: 4},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}},
		// Bounded key domains: KeyBound sizes the dense flat-array path
		// exactly (7), undershoots so keys 3..6 must fall back to the hashed
		// path (3), and composes with inflation.
		{"noenc/group-by-bounded", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d", KeyBound: 7},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}, {Kind: AggPlainMin, Col: "v"}}}
		}},
		{"noenc/group-by-bound-undershoot", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d", KeyBound: 3},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}, {Kind: AggPlainMax, Col: "v"}}}
		}},
		{"noenc/group-by-bounded-inflated", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d", KeyBound: 7, Inflate: 4},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}},
		// Wide keys (every row distinct, values far past the dense span):
		// the hashed probe path, with lane accumulators, generic per-slot
		// partials (median is not lane-eligible), and inflation suffixes.
		{"noenc/group-by-wide", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w"},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}, {Kind: AggPlainMin, Col: "v"}}}
		}},
		{"noenc/group-by-wide-median", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w"},
				Aggs: []Agg{{Kind: AggPlainMedian, Col: "v"}, {Kind: AggCount}}}
		}},
		{"noenc/group-by-wide-inflated", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w", Inflate: 2},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}}}
		}},
		{"noenc/median", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "d", Op: sqlparse.OpEq, U64: 3}},
				Aggs:    []Agg{{Kind: AggPlainMedian, Col: "v"}}}
		}},
		{"noenc/median-partial", func() *Plan {
			return &Plan{Table: tbl, Partial: true,
				Aggs: []Agg{{Kind: AggPlainMedian, Col: "v"}}}
		}},
		{"noenc/scan", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 88}},
				Project: []string{"v", "s", "d"}}
		}},
		{"noenc/join", func() *Plan {
			return &Plan{Table: tbl,
				Join: &Join{Right: right, LeftCol: "d", RightCol: "rdim", RightCols: []string{"rank"}},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggPlainSum, Col: "rank"}, {Kind: AggCount}}}
		}},
		{"noenc/join-right-filter", func() *Plan {
			return &Plan{Table: tbl,
				Join:    &Join{Right: right, LeftCol: "d", RightCol: "rdim", RightCols: []string{"rank"}},
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "rank", Op: sqlparse.OpGt, U64: 110}},
				Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}},
		{"noenc/join-groupby-scan-project-right", func() *Plan {
			return &Plan{Table: tbl,
				Join:    &Join{Right: right, LeftCol: "d", RightCol: "rdim", RightCols: []string{"rank"}},
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 90}},
				Project: []string{"v", "rank"}}
		}},

		// --- Seabed: ASHE sums, DET/OPE filters, OPE extremes and medians ---
		{"seabed/det-filter-ashe-sum", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterDetEq, Col: "d_det", Bytes: detKey.EncryptU64(3)}},
				Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}}}
		}},
		{"seabed/det-negate", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterDetEq, Col: "d_det", Bytes: detKey.EncryptU64(3), Negate: true}},
				Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}}}
		}},
		{"seabed/ope-filter", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterOpeCmp, Col: "v_ope", Op: sqlparse.OpLt, Bytes: opeKey.Encrypt(30)}},
				Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}}}
		}},
		{"seabed/group-by-det", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d_det"},
				Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}}}
		}},
		{"seabed/group-by-det-inflated", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d_det", Inflate: 3},
				Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}}}
		}},
		{"seabed/group-by-wide-ashe", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w"},
				Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}}}
		}},
		{"seabed/ope-minmax-companion", func() *Plan {
			return &Plan{Table: tbl,
				Aggs: []Agg{
					{Kind: AggOpeMin, Col: "v_ope", Companion: "v_ashe"},
					{Kind: AggOpeMax, Col: "v_ope", Companion: "d_det"}}}
		}},
		{"seabed/ope-median", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterDetEq, Col: "d_det", Bytes: detKey.EncryptU64(1)}},
				Aggs:    []Agg{{Kind: AggOpeMedian, Col: "v_ope", Companion: "v_ashe"}}}
		}},
		{"seabed/ope-median-partial", func() *Plan {
			return &Plan{Table: tbl, Partial: true,
				Aggs: []Agg{{Kind: AggOpeMedian, Col: "v_ope", Companion: "v_ashe"}}}
		}},
		{"seabed/scan-encrypted", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterOpeCmp, Col: "v_ope", Op: sqlparse.OpGt, Bytes: opeKey.Encrypt(92)}},
				Project: []string{"v_ashe", "d_det", "v_ope"}}
		}},
		{"seabed/join-det-keys", func() *Plan {
			return &Plan{Table: tbl,
				Join: &Join{Right: right, LeftCol: "d_det", RightCol: "rdim_det", RightCols: []string{"rank"}},
				Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggPlainSum, Col: "rank"}}}
		}},
		{"seabed/idrange", func() *Plan {
			return &Plan{Table: tbl, Range: &IDRange{Lo: 500, Hi: 2750},
				Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}}}
		}},
		{"seabed/idrange-partial-groupby", func() *Plan {
			return &Plan{Table: tbl, Range: &IDRange{Lo: 1000, Hi: 3000}, Partial: true,
				GroupBy: &GroupBy{Col: "d_det"},
				Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggPlainMedian, Col: "v"}}}
		}},
		{"seabed/compress-at-driver", func() *Plan {
			return &Plan{Table: tbl, CompressAtDriver: true,
				Filters: []Filter{{Kind: FilterRandom, Prob: 0.5, Seed: 7}},
				Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}}}
		}},

		// --- Paillier ---
		{"paillier/sum", func() *Plan {
			return &Plan{Table: tbl, Aggs: []Agg{{Kind: AggPaillierSum, Col: "v_pail", PK: pk}}}
		}},
		{"paillier/filtered-sum", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterDetEq, Col: "d_det", Bytes: detKey.EncryptU64(2)}},
				Aggs:    []Agg{{Kind: AggPaillierSum, Col: "v_pail", PK: pk}, {Kind: AggCount}}}
		}},
		{"paillier/group-by", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d"},
				Aggs: []Agg{{Kind: AggPaillierSum, Col: "v_pail", PK: pk}}}
		}},
		{"paillier/group-by-bounded", func() *Plan {
			// Paillier is not lane-eligible: the dense index resolves slots
			// but accumulation runs the generic per-slot kernels.
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d", KeyBound: 7},
				Aggs: []Agg{{Kind: AggPaillierSum, Col: "v_pail", PK: pk}, {Kind: AggCount}}}
		}},
	}

	c := NewCluster(Config{Workers: 4, Seed: 11})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vec, err := c.Run(context.Background(), tc.plan())
			if err != nil {
				t.Fatalf("vectorized: %v", err)
			}
			ref, err := c.RunReference(context.Background(), tc.plan())
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			assertSameResult(t, tc.name, vec, ref)
		})
	}
}

// TestDifferentialRadixGroupBy drives the radix-partitioned probe path,
// which needs enough distinct keys inside one map task for the
// open-addressed table to outgrow radixMinTable: 2 partitions × 18000
// distinct keys per task. Both lane (sum/count/ASHE) and generic (median)
// accumulation run through the radix-ordered probes, and the results must
// match the row-at-a-time reference exactly — including ASHE id-list
// contents, which pin the selection-order (not probe-order) accumulation
// guarantee.
func TestDifferentialRadixGroupBy(t *testing.T) {
	const rows, parts = 36000, 2
	vals := make([]uint64, rows)
	wide := make([]uint64, rows)
	asheCol := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		vals[i] = uint64(i % 97)
		wide[i] = uint64(i)*0x9e3779b1 + 11
		asheCol[i] = asheKey.EncryptBody(vals[i], uint64(i)+1)
	}
	tbl, err := store.Build("radix", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "w", Kind: store.U64, U64: wide},
		{Name: "v_ashe", Kind: store.U64, U64: asheCol},
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(Config{Workers: 4, Seed: 11})
	for _, tc := range []struct {
		name string
		plan func() *Plan
	}{
		{"lanes", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w"},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}, {Kind: AggAsheSum, Col: "v_ashe"}}}
		}},
		{"generic", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w"},
				Aggs: []Agg{{Kind: AggPlainMedian, Col: "v"}, {Kind: AggCount}}}
		}},
		{"inflated", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "w", Inflate: 2},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vec, err := c.Run(context.Background(), tc.plan())
			if err != nil {
				t.Fatalf("vectorized: %v", err)
			}
			ref, err := c.RunReference(context.Background(), tc.plan())
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if len(vec.Groups) != rows {
				t.Errorf("%d groups, want %d (every wide key distinct)", len(vec.Groups), rows)
			}
			assertSameResult(t, tc.name, vec, ref)
		})
	}
}

// TestDifferentialInflationSuffixIsolation is the regression test for suffix
// aliasing: every row carries one of two group values while inflation splays
// each into suffix sub-groups, so the dense index holds several cells per
// key and any cross-suffix aliasing (two suffixes resolving to one slot, in
// any batch) would corrupt counts. The suffix split must also agree exactly
// with the reference evaluator's per-row assignment.
func TestDifferentialInflationSuffixIsolation(t *testing.T) {
	const rows, parts, inflate = 9000, 3, 3
	vals := make([]uint64, rows)
	dims := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		vals[i] = uint64(i % 13)
		dims[i] = uint64(i%2) * 5 // keys 0 and 5, both under any bound ≥ 6
	}
	tbl, err := store.Build("sfx", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "d", Kind: store.U64, U64: dims},
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(Config{Workers: 4, Seed: 11})
	for _, bound := range []uint64{0, 6} { // default dense span and an exact KeyBound
		plan := func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d", Inflate: inflate, KeyBound: bound},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}}
		}
		vec, err := c.Run(context.Background(), plan())
		if err != nil {
			t.Fatalf("bound=%d vectorized: %v", bound, err)
		}
		ref, err := c.RunReference(context.Background(), plan())
		if err != nil {
			t.Fatalf("bound=%d reference: %v", bound, err)
		}
		assertSameResult(t, fmt.Sprintf("suffix-isolation/bound=%d", bound), vec, ref)
		if len(vec.Groups) != 2*inflate {
			t.Fatalf("bound=%d: %d groups, want %d (2 keys × %d suffixes)", bound, len(vec.Groups), 2*inflate, inflate)
		}
		var rowsTotal uint64
		for _, g := range vec.Groups {
			if g.KeyU64 != 0 && g.KeyU64 != 5 {
				t.Errorf("bound=%d: unexpected group key %d", bound, g.KeyU64)
			}
			if g.Suffix < 0 || g.Suffix >= inflate {
				t.Errorf("bound=%d: suffix %d outside [0,%d)", bound, g.Suffix, inflate)
			}
			rowsTotal += g.Rows
		}
		if rowsTotal != rows {
			t.Errorf("bound=%d: suffix groups cover %d rows, want %d", bound, rowsTotal, rows)
		}
	}
}

// TestDifferentialEmptyRange pins the degenerate cases: a shard frame that
// excludes the whole table, and a predicate that selects nothing.
func TestDifferentialEmptyCases(t *testing.T) {
	tbl, _, _ := fixture(t, 300, 3)
	c := NewCluster(Config{Workers: 2})
	for _, tc := range []struct {
		name string
		plan func() *Plan
	}{
		{"out-of-range", func() *Plan {
			return &Plan{Table: tbl, Range: &IDRange{Lo: 10_000, Hi: 20_000},
				Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}}}
		}},
		{"nothing-selected", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 1 << 40}},
				Aggs:    []Agg{{Kind: AggPlainMin, Col: "v"}, {Kind: AggPlainMedian, Col: "v"}}}
		}},
		{"empty-groupby", func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d"},
				Filters: []Filter{{Kind: FilterRandom, Prob: 0, Seed: 3}},
				Aggs:    []Agg{{Kind: AggCount}}}
		}},
		{"empty-scan", func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 1 << 40}},
				Project: []string{"v"}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vec, err := c.Run(context.Background(), tc.plan())
			if err != nil {
				t.Fatalf("vectorized: %v", err)
			}
			ref, err := c.RunReference(context.Background(), tc.plan())
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			assertSameResult(t, tc.name, vec, ref)
		})
	}
}
