package engine

import (
	"bytes"
	"fmt"
	"math/big"

	"seabed/internal/ope"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// This file holds the executor's kernels: per-kind, per-operator functions
// compiled once per Run (compile.go) and invoked once per batch (batch.go).
// Predicate kernels compact a selection vector in place; accumulator kernels
// fold the survivors into an aggState, either in one tight loop over the raw
// column slice (the single-group bulk path) or one row at a time (the
// group-by path, where rows scatter across partials). Neither path contains
// a switch over FilterKind or AggKind: the switch ran at compile time.

// partCols is a compiled plan bound to one partition: the concrete column
// vectors every kernel reads. Slots mirror the plan's filters/aggs/project
// order; nil entries are FilterRandom / AggCount placeholders.
type partCols struct {
	filters    []*store.Column
	aggs       []*store.Column
	companions []*store.Column
	group      *store.Column
	project    []*store.Column
	leftKey    *store.Column
}

// batch is the executor's working set for one batchRows-sized slice of a
// partition. sel holds the indices (relative to the partition) of rows still
// alive; join holds the matched right-table row for each sel entry, parallel
// to sel, and is nil for plans without a join. Predicate kernels compact
// both in place.
type batch struct {
	sel  []int32
	join []int32
}

// predKernel applies one compiled filter to a batch, compacting b.sel (and
// b.join, when present) to the survivors. startID is the partition's first
// global row identifier, so row i's identifier is startID + i.
type predKernel func(pc *partCols, b *batch, startID uint64)

// aggKernel accumulates one compiled aggregate. bulk consumes a whole
// batch's selection vector into a single group's state; row accumulates one
// survivor (i = left row, j = joined right row or -1) for the group-by
// path; dense consumes the contiguous row interval [lo, hi] directly — the
// executor takes that path when a plan has no filters and no join, so every
// batch survives whole and the selection vector would be the identity.
type aggKernel struct {
	bulk  func(pc *partCols, st *aggState, b *batch, startID uint64)
	row   func(pc *partCols, st *aggState, i, j int32, rowID uint64)
	dense func(pc *partCols, st *aggState, lo, hi int, startID uint64)
}

// rowPred lifts a per-row predicate into a predKernel. It is the generic
// driver for filter kinds whose comparison dominates the call overhead
// (DET/OPE/string comparisons) and for right-side columns, where every row
// indexes through the join vector anyway.
func rowPred(match func(pc *partCols, i, j int32, rowID uint64) bool) predKernel {
	return func(pc *partCols, b *batch, startID uint64) {
		out := b.sel[:0]
		if b.join == nil {
			for _, i := range b.sel {
				if match(pc, i, -1, startID+uint64(i)) {
					out = append(out, i)
				}
			}
			b.sel = out
			return
		}
		jout := b.join[:0]
		for k, i := range b.sel {
			if match(pc, i, b.join[k], startID+uint64(i)) {
				out = append(out, i)
				jout = append(jout, b.join[k])
			}
		}
		b.sel, b.join = out, jout
	}
}

// compileFilter lowers one filter to a predicate kernel. Plain u64
// comparisons on left-side columns of join-free plans get fully specialized
// per operator — the hot path of a filtered scan; everything else goes
// through the rowPred driver with the kind dispatch resolved here, once.
func (cp *compiledPlan) compileFilter(fi int, f *Filter) (predKernel, error) {
	right := cp.filters[fi].isRight() && f.Kind != FilterRandom
	vectorizable := cp.pl.Join == nil && !right

	switch f.Kind {
	case FilterRandom:
		if f.Prob >= 1 {
			return func(pc *partCols, b *batch, startID uint64) {}, nil
		}
		threshold := uint64(f.Prob*float64(1<<63)) << 1
		seed := f.Seed
		if vectorizable {
			return func(pc *partCols, b *batch, startID uint64) {
				out := b.sel[:0]
				for _, i := range b.sel {
					if splitmix64(seed^(startID+uint64(i))) < threshold {
						out = append(out, i)
					}
				}
				b.sel = out
			}, nil
		}
		return rowPred(func(pc *partCols, i, j int32, rowID uint64) bool {
			return splitmix64(seed^rowID) < threshold
		}), nil

	case FilterPlainCmp:
		c := f.U64
		if vectorizable {
			return plainCmpKernel(fi, f.Op, c)
		}
		op := f.Op
		return rowPred(func(pc *partCols, i, j int32, rowID uint64) bool {
			v := pc.filters[fi].U64[pick(i, j, right)]
			return cmpMatch(op, cmpU64(v, c))
		}), nil

	case FilterStrCmp:
		c, op := f.Str, f.Op
		return rowPred(func(pc *partCols, i, j int32, rowID uint64) bool {
			v := pc.filters[fi].Str[pick(i, j, right)]
			var cmp int
			switch {
			case v < c:
				cmp = -1
			case v > c:
				cmp = 1
			}
			return cmpMatch(op, cmp)
		}), nil

	case FilterDetEq:
		want, neg := f.Bytes, f.Negate
		if vectorizable {
			return func(pc *partCols, b *batch, startID uint64) {
				col := pc.filters[fi].Bytes
				out := b.sel[:0]
				for _, i := range b.sel {
					if bytes.Equal(col[i], want) != neg {
						out = append(out, i)
					}
				}
				b.sel = out
			}, nil
		}
		return rowPred(func(pc *partCols, i, j int32, rowID uint64) bool {
			return bytes.Equal(pc.filters[fi].Bytes[pick(i, j, right)], want) != neg
		}), nil

	case FilterOpeCmp:
		want, op := f.Bytes, f.Op
		return rowPred(func(pc *partCols, i, j int32, rowID uint64) bool {
			return cmpMatch(op, ope.Compare(pc.filters[fi].Bytes[pick(i, j, right)], want))
		}), nil
	}
	return nil, fmt.Errorf("engine: unknown filter kind %d", f.Kind)
}

// plainCmpKernel returns the operator-specialized u64 comparison kernel for
// a left-side column of a join-free plan: one branch per row, no calls.
func plainCmpKernel(fi int, op sqlparse.CmpOp, c uint64) (predKernel, error) {
	switch op {
	case sqlparse.OpEq:
		return func(pc *partCols, b *batch, _ uint64) {
			col, out := pc.filters[fi].U64, b.sel[:0]
			for _, i := range b.sel {
				if col[i] == c {
					out = append(out, i)
				}
			}
			b.sel = out
		}, nil
	case sqlparse.OpNe:
		return func(pc *partCols, b *batch, _ uint64) {
			col, out := pc.filters[fi].U64, b.sel[:0]
			for _, i := range b.sel {
				if col[i] != c {
					out = append(out, i)
				}
			}
			b.sel = out
		}, nil
	case sqlparse.OpLt:
		return func(pc *partCols, b *batch, _ uint64) {
			col, out := pc.filters[fi].U64, b.sel[:0]
			for _, i := range b.sel {
				if col[i] < c {
					out = append(out, i)
				}
			}
			b.sel = out
		}, nil
	case sqlparse.OpLe:
		return func(pc *partCols, b *batch, _ uint64) {
			col, out := pc.filters[fi].U64, b.sel[:0]
			for _, i := range b.sel {
				if col[i] <= c {
					out = append(out, i)
				}
			}
			b.sel = out
		}, nil
	case sqlparse.OpGt:
		return func(pc *partCols, b *batch, _ uint64) {
			col, out := pc.filters[fi].U64, b.sel[:0]
			for _, i := range b.sel {
				if col[i] > c {
					out = append(out, i)
				}
			}
			b.sel = out
		}, nil
	case sqlparse.OpGe:
		return func(pc *partCols, b *batch, _ uint64) {
			col, out := pc.filters[fi].U64, b.sel[:0]
			for _, i := range b.sel {
				if col[i] >= c {
					out = append(out, i)
				}
			}
			b.sel = out
		}, nil
	}
	// An unknown operator selects nothing, matching cmpMatch's default.
	return func(pc *partCols, b *batch, _ uint64) {
		b.sel = b.sel[:0]
		if b.join != nil {
			b.join = b.join[:0]
		}
	}, nil
}

// pick maps a (left row, joined row) pair to the index a column reads,
// resolved by the compile-time side flag.
func pick(i, j int32, right bool) int32 {
	if right {
		return j
	}
	return i
}

// compileAgg lowers one aggregate to its bulk and row accumulators. The
// bulk path runs a tight per-kind loop over the raw column slice via the
// selection vector — the u64 sum kernels allocate nothing.
func (cp *compiledPlan) compileAgg(ai int, a *Agg) aggKernel {
	right := cp.aggCols[ai].isRight() && a.Kind != AggCount

	switch a.Kind {
	case AggCount:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, _ uint64) {
				st.u64 += uint64(len(b.sel))
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				st.u64++
			},
			dense: func(pc *partCols, st *aggState, lo, hi int, _ uint64) {
				st.u64 += uint64(hi - lo + 1)
			},
		}

	case AggPlainSum:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, _ uint64) {
				col := pc.aggs[ai].U64
				var s uint64
				if right {
					for _, j := range b.join {
						s += col[j]
					}
				} else {
					for _, i := range b.sel {
						s += col[i]
					}
				}
				st.u64 += s
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				st.u64 += pc.aggs[ai].U64[pick(i, j, right)]
			},
			dense: func(pc *partCols, st *aggState, lo, hi int, _ uint64) {
				var s uint64
				for _, v := range pc.aggs[ai].U64[lo : hi+1] {
					s += v
				}
				st.u64 += s
			},
		}

	case AggPlainSumSq:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, _ uint64) {
				col := pc.aggs[ai].U64
				var s uint64
				if right {
					for _, j := range b.join {
						s += col[j] * col[j]
					}
				} else {
					for _, i := range b.sel {
						s += col[i] * col[i]
					}
				}
				st.u64 += s
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				v := pc.aggs[ai].U64[pick(i, j, right)]
				st.u64 += v * v
			},
			dense: func(pc *partCols, st *aggState, lo, hi int, _ uint64) {
				var s uint64
				for _, v := range pc.aggs[ai].U64[lo : hi+1] {
					s += v * v
				}
				st.u64 += s
			},
		}

	case AggAsheSum:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, startID uint64) {
				col := pc.aggs[ai].U64
				if right {
					for k, i := range b.sel {
						st.u64 += col[b.join[k]]
						st.ids.Append(startID + uint64(i))
					}
				} else {
					for _, i := range b.sel {
						st.u64 += col[i]
						st.ids.Append(startID + uint64(i))
					}
				}
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				st.u64 += pc.aggs[ai].U64[pick(i, j, right)]
				st.ids.Append(rowID)
			},
			// A dense batch's identifiers are one contiguous run, so the
			// id-list grows by a single range — no per-row Append at all.
			dense: func(pc *partCols, st *aggState, lo, hi int, startID uint64) {
				var s uint64
				for _, v := range pc.aggs[ai].U64[lo : hi+1] {
					s += v
				}
				st.u64 += s
				st.ids.AppendRange(startID+uint64(lo), startID+uint64(hi))
			},
		}

	case AggPaillierSum:
		pk := a.PK
		row := func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
			pk.AddInto(st.pail, new(big.Int).SetBytes(pc.aggs[ai].Bytes[pick(i, j, right)]))
		}
		return aggKernel{bulk: rowBulk(row), row: row, dense: rowDense(row)}

	case AggPlainMin:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, _ uint64) {
				col := pc.aggs[ai].U64
				if right {
					for _, j := range b.join {
						if v := col[j]; !st.seen || v < st.u64 {
							st.u64, st.seen = v, true
						}
					}
				} else {
					for _, i := range b.sel {
						if v := col[i]; !st.seen || v < st.u64 {
							st.u64, st.seen = v, true
						}
					}
				}
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				if v := pc.aggs[ai].U64[pick(i, j, right)]; !st.seen || v < st.u64 {
					st.u64, st.seen = v, true
				}
			},
			dense: func(pc *partCols, st *aggState, lo, hi int, _ uint64) {
				for _, v := range pc.aggs[ai].U64[lo : hi+1] {
					if !st.seen || v < st.u64 {
						st.u64, st.seen = v, true
					}
				}
			},
		}

	case AggPlainMax:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, _ uint64) {
				col := pc.aggs[ai].U64
				if right {
					for _, j := range b.join {
						if v := col[j]; !st.seen || v > st.u64 {
							st.u64, st.seen = v, true
						}
					}
				} else {
					for _, i := range b.sel {
						if v := col[i]; !st.seen || v > st.u64 {
							st.u64, st.seen = v, true
						}
					}
				}
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				if v := pc.aggs[ai].U64[pick(i, j, right)]; !st.seen || v > st.u64 {
					st.u64, st.seen = v, true
				}
			},
			dense: func(pc *partCols, st *aggState, lo, hi int, _ uint64) {
				for _, v := range pc.aggs[ai].U64[lo : hi+1] {
					if !st.seen || v > st.u64 {
						st.u64, st.seen = v, true
					}
				}
			},
		}

	case AggOpeMin:
		row := func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
			idx := pick(i, j, right)
			if v := pc.aggs[ai].Bytes[idx]; !st.seen || ope.Less(v, st.ope) {
				st.ope, st.argID, st.seen = v, rowID, true
				st.takeCompanion(pc.companions[ai], int(idx))
			}
		}
		return aggKernel{bulk: rowBulk(row), row: row, dense: rowDense(row)}

	case AggOpeMax:
		row := func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
			idx := pick(i, j, right)
			if v := pc.aggs[ai].Bytes[idx]; !st.seen || ope.Less(st.ope, v) {
				st.ope, st.argID, st.seen = v, rowID, true
				st.takeCompanion(pc.companions[ai], int(idx))
			}
		}
		return aggKernel{bulk: rowBulk(row), row: row, dense: rowDense(row)}

	case AggPlainMedian:
		return aggKernel{
			bulk: func(pc *partCols, st *aggState, b *batch, _ uint64) {
				col := pc.aggs[ai].U64
				if right {
					for _, j := range b.join {
						st.medU64 = append(st.medU64, col[j])
					}
				} else {
					for _, i := range b.sel {
						st.medU64 = append(st.medU64, col[i])
					}
				}
			},
			row: func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
				st.medU64 = append(st.medU64, pc.aggs[ai].U64[pick(i, j, right)])
			},
			dense: func(pc *partCols, st *aggState, lo, hi int, _ uint64) {
				st.medU64 = append(st.medU64, pc.aggs[ai].U64[lo:hi+1]...)
			},
		}

	case AggOpeMedian:
		row := func(pc *partCols, st *aggState, i, j int32, rowID uint64) {
			idx := pick(i, j, right)
			st.medOpe = append(st.medOpe, pc.aggs[ai].Bytes[idx])
			st.medIDs = append(st.medIDs, rowID)
			if comp := pc.companions[ai]; comp != nil {
				st.medComp = append(st.medComp, comp.U64[idx])
			}
		}
		return aggKernel{bulk: rowBulk(row), row: row, dense: rowDense(row)}
	}
	// Unknown kinds accumulate nothing (Plan validation rejects them before
	// execution reaches here).
	nop := func(pc *partCols, st *aggState, i, j int32, rowID uint64) {}
	return aggKernel{bulk: rowBulk(nop), row: nop, dense: rowDense(nop)}
}

// rowBulk lifts a row accumulator into a bulk one for aggregate kinds whose
// per-row work (OPE comparisons, slice appends) dwarfs the call overhead.
func rowBulk(row func(pc *partCols, st *aggState, i, j int32, rowID uint64)) func(pc *partCols, st *aggState, b *batch, startID uint64) {
	return func(pc *partCols, st *aggState, b *batch, startID uint64) {
		for k, i := range b.sel {
			row(pc, st, i, b.joinAt(k), startID+uint64(i))
		}
	}
}

// rowDense lifts a row accumulator into a dense-interval one. Dense batches
// only exist for join-free plans, so the joined-row argument is always -1.
func rowDense(row func(pc *partCols, st *aggState, i, j int32, rowID uint64)) func(pc *partCols, st *aggState, lo, hi int, startID uint64) {
	return func(pc *partCols, st *aggState, lo, hi int, startID uint64) {
		for i := lo; i <= hi; i++ {
			row(pc, st, int32(i), -1, startID+uint64(i))
		}
	}
}

// joinAt returns the joined right-table row for sel entry k, or -1 when the
// plan has no join.
func (b *batch) joinAt(k int) int32 {
	if b.join == nil {
		return -1
	}
	return b.join[k]
}

// accumulateLanes runs the flat-lane group accumulators over one batch:
// for each lane-eligible aggregate, a tight per-kind loop over the
// (selection, slot) pairs groupSlots resolved, writing straight into the
// per-slot u64 lanes — one cache-dense array per aggregate, no partial
// pointer chase and no per-row indirect call. The AggKind switch runs once
// per aggregate per batch, amortized to noise.
func (ts *taskState) accumulateLanes(startID uint64) {
	g := &ts.g
	sel := ts.b.sel
	slots := g.slots[:len(sel)]
	rows := g.rowsLane
	for _, s := range slots {
		rows[s]++
	}
	for ai := range g.aggs {
		lane := g.aggLanes[ai]
		col := ts.pc.aggs[ai]
		right := ts.cp.aggCols[ai].isRight()
		switch g.aggs[ai].Kind {
		case AggCount:
			for _, s := range slots {
				lane[s]++
			}
		case AggPlainSum:
			u := col.U64
			if right {
				join := ts.b.join
				for k := range sel {
					lane[slots[k]] += u[join[k]]
				}
			} else {
				for k, i := range sel {
					lane[slots[k]] += u[i]
				}
			}
		case AggPlainSumSq:
			u := col.U64
			if right {
				join := ts.b.join
				for k := range sel {
					v := u[join[k]]
					lane[slots[k]] += v * v
				}
			} else {
				for k, i := range sel {
					v := u[i]
					lane[slots[k]] += v * v
				}
			}
		case AggAsheSum:
			u := col.U64
			ids := g.idLanes[ai]
			if right {
				join := ts.b.join
				for k, i := range sel {
					s := slots[k]
					lane[s] += u[join[k]]
					ids[s].Append(startID + uint64(i))
				}
			} else {
				for k, i := range sel {
					s := slots[k]
					lane[s] += u[i]
					ids[s].Append(startID + uint64(i))
				}
			}
		case AggPlainMin:
			u := col.U64
			if right {
				join := ts.b.join
				for k := range sel {
					if s, v := slots[k], u[join[k]]; v < lane[s] {
						lane[s] = v
					}
				}
			} else {
				for k, i := range sel {
					if s, v := slots[k], u[i]; v < lane[s] {
						lane[s] = v
					}
				}
			}
		case AggPlainMax:
			u := col.U64
			if right {
				join := ts.b.join
				for k := range sel {
					if s, v := slots[k], u[join[k]]; v > lane[s] {
						lane[s] = v
					}
				}
			} else {
				for k, i := range sel {
					if s, v := slots[k], u[i]; v > lane[s] {
						lane[s] = v
					}
				}
			}
		}
	}
}
