package engine

import (
	"context"
	"reflect"
	"testing"

	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// cacheFixture builds a small table and a cluster for cache tests.
func cacheFixture(t *testing.T) (*Cluster, *store.Table) {
	t.Helper()
	const rows = 4096
	v := make([]uint64, rows)
	d := make([]uint64, rows)
	for i := range v {
		v[i] = uint64(i % 100)
		d[i] = uint64(i % 16)
	}
	tbl, err := store.Build("pc", []store.Column{
		{Name: "v", Kind: store.U64, U64: v},
		{Name: "d", Kind: store.U64, U64: d},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(Config{Workers: 4}), tbl
}

// cacheShapePlan builds a fresh plan struct of the canonical cached shape.
func cacheShapePlan(tbl *store.Table, cut uint64) *Plan {
	return &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: cut}},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}},
	}
}

// TestPlanCacheHitsRepeatedShapes runs the same query shape through fresh
// Plan structs and checks the second run hits the cache with identical
// results, while a changed constant or a grown table misses.
func TestPlanCacheHitsRepeatedShapes(t *testing.T) {
	c, tbl := cacheFixture(t)
	ctx := context.Background()

	first, err := c.Run(ctx, cacheShapePlan(tbl, 50))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.PlanCacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", h, m)
	}
	second, err := c.Run(ctx, cacheShapePlan(tbl, 50))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.PlanCacheStats(); h != 1 || m != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", h, m)
	}
	if !reflect.DeepEqual(first.Groups, second.Groups) {
		t.Fatal("cached run diverged from compiled run")
	}

	// A different constant is a different shape.
	if _, err := c.Run(ctx, cacheShapePlan(tbl, 10)); err != nil {
		t.Fatal(err)
	}
	if h, m := c.PlanCacheStats(); h != 1 || m != 2 {
		t.Fatalf("after new constant: hits=%d misses=%d, want 1/2", h, m)
	}

	// Copy-on-write growth changes the table pointer: the stale compilation
	// must not serve the grown table.
	batch, err := store.BuildFrom("pc", []store.Column{
		{Name: "v", Kind: store.U64, U64: []uint64{60, 70}},
		{Name: "d", Kind: store.U64, U64: []uint64{1, 2}},
	}, 1, tbl.EndID()+1)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := tbl.WithAppended(batch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx, cacheShapePlan(grown, 50))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.PlanCacheStats(); h != 1 || m != 3 {
		t.Fatalf("after growth: hits=%d misses=%d, want 1/3", h, m)
	}
	wantSum := first.Groups[0].Aggs[0].U64 + 60 + 70
	if got := res.Groups[0].Aggs[0].U64; got != wantSum {
		t.Fatalf("grown-table sum %d, want %d", got, wantSum)
	}
}

// TestPlanCacheSurvivesCallerMutation mutates a Plan in place after running
// it; the cached compilation of the original shape must keep serving the
// original semantics.
func TestPlanCacheSurvivesCallerMutation(t *testing.T) {
	c, tbl := cacheFixture(t)
	ctx := context.Background()

	pl := cacheShapePlan(tbl, 50)
	first, err := c.Run(ctx, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Hostile-ish caller: reuse the same struct for a different query.
	pl.Filters[0].U64 = 90
	pl.Codec = nil
	mutated, err := c.Run(ctx, pl)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.Groups[0].Aggs[0].U64 == first.Groups[0].Aggs[0].U64 {
		t.Fatal("mutated plan returned the original's result")
	}
	// The original shape, via a fresh struct, must hit and match run one.
	again, err := c.Run(ctx, cacheShapePlan(tbl, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Groups, again.Groups) {
		t.Fatal("cache served mutated kernels for the original shape")
	}
	if h, _ := c.PlanCacheStats(); h != 1 {
		t.Fatalf("original shape re-run did not hit (hits=%d)", h)
	}
}

// TestPlanCacheJoinAndGroupShapes exercises fingerprint coverage for join,
// group-by, scan, and range fields: each variation must compile separately
// and reuse only its own entry.
func TestPlanCacheJoinAndGroupShapes(t *testing.T) {
	c, tbl := cacheFixture(t)
	ctx := context.Background()
	right, err := store.Build("dim", []store.Column{
		{Name: "k", Kind: store.U64, U64: []uint64{1, 2, 3}},
		{Name: "label", Kind: store.U64, U64: []uint64{10, 20, 30}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []func() *Plan{
		func() *Plan {
			return &Plan{Table: tbl, GroupBy: &GroupBy{Col: "d"},
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}}}
		},
		func() *Plan {
			return &Plan{Table: tbl,
				Join: &Join{Right: right, LeftCol: "d", RightCol: "k", RightCols: []string{"label"}},
				Aggs: []Agg{{Kind: AggCount}}}
		},
		func() *Plan { return &Plan{Table: tbl, Project: []string{"v"}} },
		func() *Plan {
			return &Plan{Table: tbl, Range: &IDRange{Lo: 10, Hi: 500}, Partial: true,
				Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}}}
		},
	}
	var wants []*Result
	for _, mk := range shapes {
		res, err := c.Run(ctx, mk())
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, res)
	}
	if h, m := c.PlanCacheStats(); h != 0 || m != uint64(len(shapes)) {
		t.Fatalf("distinct shapes collided: hits=%d misses=%d", h, m)
	}
	for i, mk := range shapes {
		res, err := c.Run(ctx, mk())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Groups, wants[i].Groups) || !reflect.DeepEqual(res.Scan, wants[i].Scan) {
			t.Fatalf("shape %d: cached rerun diverged", i)
		}
	}
	if h, m := c.PlanCacheStats(); h != uint64(len(shapes)) || m != uint64(len(shapes)) {
		t.Fatalf("reruns did not all hit: hits=%d misses=%d", h, m)
	}
}

// TestPlanCacheBounded floods the cache with distinct shapes and checks it
// resets at the bound instead of growing without limit, while reference
// runs bypass it entirely.
func TestPlanCacheBounded(t *testing.T) {
	c, tbl := cacheFixture(t)
	ctx := context.Background()
	for i := 0; i < planCacheMax+30; i++ {
		if _, err := c.Run(ctx, cacheShapePlan(tbl, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.plans.mu.Lock()
	size := len(c.plans.plans)
	c.plans.mu.Unlock()
	if size > planCacheMax {
		t.Fatalf("cache grew to %d entries, bound is %d", size, planCacheMax)
	}

	h, m := c.PlanCacheStats()
	if _, err := c.RunReference(ctx, cacheShapePlan(tbl, 5)); err != nil {
		t.Fatal(err)
	}
	if h2, m2 := c.PlanCacheStats(); h2 != h || m2 != m {
		t.Fatal("reference evaluator touched the plan cache")
	}
}

// BenchmarkPlanCache reports compile-skipping in isolation: the same join
// shape repeatedly, cold vs warm cache.
func BenchmarkPlanCacheJoinShape(b *testing.B) {
	const rows = 1 << 15
	v := make([]uint64, rows)
	k := make([]uint64, rows)
	for i := range v {
		v[i], k[i] = uint64(i%100), uint64(i)
	}
	tbl, err := store.Build("pc", []store.Column{
		{Name: "v", Kind: store.U64, U64: v},
		{Name: "k", Kind: store.U64, U64: k},
	}, 4)
	if err != nil {
		b.Fatal(err)
	}
	right, err := store.Build("dim", []store.Column{
		{Name: "k", Kind: store.U64, U64: k},
		{Name: "w", Kind: store.U64, U64: v},
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *Plan {
		return &Plan{Table: tbl,
			Join: &Join{Right: right, LeftCol: "k", RightCol: "k", RightCols: []string{"w"}},
			Aggs: []Agg{{Kind: AggPlainSum, Col: "w"}}}
	}
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			c := NewCluster(Config{Workers: 4})
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !warm {
					c.plans.mu.Lock()
					c.plans.plans = nil
					c.plans.mu.Unlock()
				}
				if _, err := c.Run(ctx, mk()); err != nil {
					b.Fatal(err)
				}
			}
			h, m := c.PlanCacheStats()
			b.ReportMetric(float64(h)/float64(max(h+m, 1)), "hit-rate")
		})
	}
}

// TestPlanCacheClonesFilterBytes reuses one ciphertext buffer for two
// queries' encrypted constants — the caller-mutation hazard the cache's
// clone must survive for byte-valued filters: the cached kernels must keep
// comparing against the constant they were compiled with, not the buffer's
// current contents.
func TestPlanCacheClonesFilterBytes(t *testing.T) {
	const rows = 1024
	b := make([][]byte, rows)
	v := make([]uint64, rows)
	valA := []byte{0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA}
	valB := []byte{0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xBB}
	for i := range b {
		if i%4 == 0 {
			b[i] = valA
		} else {
			b[i] = valB
		}
		v[i] = uint64(i)
	}
	tbl, err := store.Build("det", []store.Column{
		{Name: "d", Kind: store.Bytes, Bytes: b},
		{Name: "v", Kind: store.U64, U64: v},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(Config{Workers: 2})
	ctx := context.Background()

	buf := append([]byte(nil), valA...) // the caller's reusable buffer
	mkPlan := func(constant []byte) *Plan {
		return &Plan{Table: tbl,
			Filters: []Filter{{Kind: FilterDetEq, Col: "d", Bytes: constant}},
			Aggs:    []Agg{{Kind: AggCount}}}
	}
	first, err := c.Run(ctx, mkPlan(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Groups[0].Aggs[0].U64; got != rows/4 {
		t.Fatalf("fixture: valA count %d, want %d", got, rows/4)
	}
	copy(buf, valB) // reuse the buffer for the "next query"
	if _, err := c.Run(ctx, mkPlan(buf)); err != nil {
		t.Fatal(err)
	}
	// The original constant, in a fresh buffer, must hit the first entry
	// and still count valA rows.
	again, err := c.Run(ctx, mkPlan(append([]byte(nil), valA...)))
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := c.PlanCacheStats(); h != 1 {
		t.Fatalf("original constant did not hit (hits=%d)", h)
	}
	if got := again.Groups[0].Aggs[0].U64; got != rows/4 {
		t.Fatalf("cached kernel compares against the mutated buffer: count %d, want %d", got, rows/4)
	}
}
