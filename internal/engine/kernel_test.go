package engine

import (
	"context"
	"testing"

	"seabed/internal/idlist"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// This file pins the vectorized executor's allocation behavior and measures
// kernel throughput against the retained reference evaluator. The
// BenchmarkKernel* benchmarks are the acceptance gauge for the
// vectorization work: run
//
//	go test -bench BenchmarkKernel -benchmem ./internal/engine
//
// and compare rows/s between each kernel and its *Reference twin (the
// pre-vectorization row-at-a-time loop). CI smokes them with -benchtime=1x.

// kernelFixture builds a plaintext table: v = i%100, d = i%7, a 1024-value
// dim column for dense group-by stress, and a distinct-per-row column whose
// values spread far past the grouper's dense span for hashed/radix group-by
// stress.
func kernelFixture(tb testing.TB, rows, parts int) *store.Table {
	tb.Helper()
	vals := make([]uint64, rows)
	dims := make([]uint64, rows)
	wide := make([]uint64, rows)
	uniq := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		vals[i] = uint64(i % 100)
		dims[i] = uint64(i % 7)
		wide[i] = uint64(i % 1024)
		uniq[i] = uint64(i)*0x9e3779b1 + 11
	}
	tbl, err := store.Build("k", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "d", Kind: store.U64, U64: dims},
		{Name: "w", Kind: store.U64, U64: wide},
		{Name: "u", Kind: store.U64, U64: uniq},
	}, parts)
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}

func filterSumPlan(tbl *store.Table) *Plan {
	return &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 50}},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	}
}

// resetSingle rewinds a task's single-group accumulators so execute can run
// again over the same state without reallocating.
func resetSingle(ts *taskState) {
	ts.res.single.rows = 0
	ts.res.rowsSelected = 0
	for i := range ts.res.single.aggs {
		ts.res.single.aggs[i].u64 = 0
	}
}

// TestKernelU64FilterSumAllocFree asserts the tentpole's allocation
// guarantee: once a task's state exists, the u64 filter+sum kernel path —
// selection-vector fill, predicate compaction, bulk accumulation — touches
// the heap zero times per partition pass.
func TestKernelU64FilterSumAllocFree(t *testing.T) {
	tbl := kernelFixture(t, 1<<16, 1)
	cp, err := filterSumPlan(tbl).compile(0, idlist.Default)
	if err != nil {
		t.Fatal(err)
	}
	ts := cp.newTaskState(tbl.Parts[0])
	ctx := context.Background()
	n := tbl.Parts[0].NumRows()
	if err := ts.execute(ctx, 0, n-1); err != nil { // warm up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		resetSingle(ts)
		if err := ts.execute(ctx, 0, n-1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("u64 filter+sum kernel path allocates %.1f allocs per pass, want 0", avg)
	}
}

// TestKernelU64JoinProbeAllocFree asserts the satellite fix for hashKeyOf:
// the typed join index probes u64 keys without rendering them as strings,
// so the probe+count path is allocation-free in steady state.
func TestKernelU64JoinProbeAllocFree(t *testing.T) {
	tbl := kernelFixture(t, 1<<14, 1)
	right := kernelFixture(t, 5, 1) // d values 0..4: dims 5 and 6 drop
	pl := &Plan{
		Table: tbl,
		Join:  &Join{Right: right, LeftCol: "d", RightCol: "d", RightCols: []string{"v"}},
		Aggs:  []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	}
	cp, err := pl.compile(0, idlist.Default)
	if err != nil {
		t.Fatal(err)
	}
	if cp.joinU64 == nil {
		t.Fatal("u64 join key did not compile to a typed u64 index")
	}
	ts := cp.newTaskState(tbl.Parts[0])
	ctx := context.Background()
	n := tbl.Parts[0].NumRows()
	if err := ts.execute(ctx, 0, n-1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		resetSingle(ts)
		if err := ts.execute(ctx, 0, n-1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("u64 join probe path allocates %.1f allocs per pass, want 0", avg)
	}
}

// TestKernelU64GroupKeyAllocFree asserts the group-by fast path: u64 group
// keys never round-trip through strings, so once every group's partial
// exists, accumulating more rows allocates nothing.
func TestKernelU64GroupKeyAllocFree(t *testing.T) {
	tbl := kernelFixture(t, 1<<14, 1)
	pl := &Plan{
		Table:   tbl,
		GroupBy: &GroupBy{Col: "w"}, // 1024 distinct u64 keys
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	}
	cp, err := pl.compile(0, idlist.Default)
	if err != nil {
		t.Fatal(err)
	}
	ts := cp.newTaskState(tbl.Parts[0])
	ctx := context.Background()
	n := tbl.Parts[0].NumRows()
	if err := ts.execute(ctx, 0, n-1); err != nil { // materializes all partials
		t.Fatal(err)
	}
	if len(ts.g.keys) != 1024 {
		t.Fatalf("u64 grouper holds %d groups, want 1024", len(ts.g.keys))
	}
	avg := testing.AllocsPerRun(10, func() {
		ts.res.rowsSelected = 0
		if err := ts.execute(ctx, 0, n-1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("u64 group-key path allocates %.1f allocs per pass in steady state, want 0", avg)
	}
}

// --- benchmarks: vectorized kernels vs the pre-refactor loop ---

const benchRows = 1 << 18

func reportRows(b *testing.B, rows int) {
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkKernelFilterSumU64 measures the compiled kernel path alone — the
// zero-allocation claim in the acceptance criteria is this benchmark's
// allocs/op column.
func BenchmarkKernelFilterSumU64(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	cp, err := filterSumPlan(tbl).compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	ts := cp.newTaskState(tbl.Parts[0])
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetSingle(ts)
		if err := ts.execute(ctx, 0, benchRows-1); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

// BenchmarkKernelFilterSumU64MapTask is the same plan through the full
// vectorized map task (bind, execute, encode, shuffle accounting) — the
// production per-partition cost.
func BenchmarkKernelFilterSumU64MapTask(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	cp, err := filterSumPlan(tbl).compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

// BenchmarkKernelFilterSumU64Reference is the pre-refactor row-at-a-time
// loop on the identical plan and partition.
func BenchmarkKernelFilterSumU64Reference(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	rp, err := filterSumPlan(tbl).compileReference(idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

// ashePlan sums a u64 column as ASHE ciphertext bodies (the paper's core
// aggregate): body adds plus identifier-list growth. With no filter the
// executor takes the dense path, growing the id-list by whole ranges.
func ashePlan(tbl *store.Table) *Plan {
	return &Plan{Table: tbl, Aggs: []Agg{{Kind: AggAsheSum, Col: "v"}}}
}

func BenchmarkKernelAsheSum(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	cp, err := ashePlan(tbl).compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func BenchmarkKernelAsheSumReference(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	rp, err := ashePlan(tbl).compileReference(idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func groupByPlan(tbl *store.Table) *Plan {
	return &Plan{
		Table:   tbl,
		GroupBy: &GroupBy{Col: "w"},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	}
}

func BenchmarkKernelGroupByU64(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	cp, err := groupByPlan(tbl).compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func BenchmarkKernelGroupByU64Reference(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	rp, err := groupByPlan(tbl).compileReference(idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

// wideGroupByPlan groups on the distinct-per-row column: every key misses
// the dense span, so the grouper's open-addressed table — radix-ordered once
// it outgrows radixMinTable — carries the whole load.
func wideGroupByPlan(tbl *store.Table) *Plan {
	return &Plan{
		Table:   tbl,
		GroupBy: &GroupBy{Col: "u"},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	}
}

func BenchmarkKernelGroupByU64Wide(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	cp, err := wideGroupByPlan(tbl).compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func BenchmarkKernelGroupByU64WideReference(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	rp, err := wideGroupByPlan(tbl).compileReference(idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func joinPlan(tbl, right *store.Table) *Plan {
	return &Plan{
		Table: tbl,
		Join:  &Join{Right: right, LeftCol: "d", RightCol: "d", RightCols: []string{"v"}},
		Aggs:  []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	}
}

func BenchmarkKernelJoinProbeU64(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	right := kernelFixture(b, 5, 1)
	cp, err := joinPlan(tbl, right).compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func BenchmarkKernelJoinProbeU64Reference(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	right := kernelFixture(b, 5, 1)
	rp, err := joinPlan(tbl, right).compileReference(idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

// BenchmarkKernelScanProject measures the arena-backed scan projection.
func BenchmarkKernelScanProject(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	pl := &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 90}},
		Project: []string{"v", "w"},
	}
	cp, err := pl.compile(0, idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}

func BenchmarkKernelScanProjectReference(b *testing.B) {
	tbl := kernelFixture(b, benchRows, 1)
	pl := &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 90}},
		Project: []string{"v", "w"},
	}
	rp, err := pl.compileReference(idlist.Default)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCluster(Config{Workers: 1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.runMapTask(ctx, c, tbl.Parts[0]); err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, benchRows)
}
