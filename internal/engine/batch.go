package engine

import (
	"context"
	"time"

	"seabed/internal/store"
)

// This file implements phase 2 of the vectorized executor: run the compiled
// kernels (compile.go / kernel.go) over one partition in fixed-size batches.
// Each batch fills a reusable selection vector with the indices of surviving
// rows — the join probe and every predicate kernel compact it in place — and
// the accumulator kernels then consume it in tight per-kind loops over the
// raw store.Column slices.

// batchRows is the executor's batch size. It equals ScanChunkRows so a fully
// surviving batch fills exactly one streaming scan chunk, and at 1024 rows
// the selection and join vectors (4 KiB each) stay resident in L1 while the
// per-batch bookkeeping amortizes to noise. It must divide cancelCheckRows
// so cancellation polls land on batch boundaries.
const batchRows = ScanChunkRows

// taskState is one map task's execution state: the compiled plan bound to a
// partition plus the reusable batch buffers. All per-batch workspace lives
// here, so the steady-state u64 filter+sum path allocates nothing.
type taskState struct {
	cp   *compiledPlan
	part *store.Partition
	pc   partCols
	res  *mapResult

	selBuf  []int32
	joinBuf []int32
	b       batch

	g     grouper
	arena scanArena
}

// newTaskState binds the compiled plan to a partition and sizes the
// workspace the plan's shape needs.
func (cp *compiledPlan) newTaskState(part *store.Partition) *taskState {
	ts := &taskState{cp: cp, part: part, res: &mapResult{}}
	cp.bindPart(part, &ts.pc)
	ts.selBuf = make([]int32, batchRows)
	if cp.pl.Join != nil {
		ts.joinBuf = make([]int32, 0, batchRows)
	}
	pl := cp.pl
	switch {
	case len(pl.Project) > 0:
		// scan: arena allocated lazily, one chunk at a time
	case pl.GroupBy == nil:
		ts.res.single = newPartial(pl.Aggs)
	default:
		ts.g.init(cp)
	}
	return ts
}

// execute runs the batch loop over partition rows [i0, i1], observing ctx
// every cancelCheckRows rows like the reference evaluator.
func (ts *taskState) execute(ctx context.Context, i0, i1 int) error {
	cp := ts.cp
	startID := ts.part.StartID
	scan := len(cp.pl.Project) > 0
	grouped := cp.pl.GroupBy != nil
	// With no predicates and no join every batch survives whole, so the
	// selection vector would be the identity: the dense kernels consume the
	// contiguous interval directly (and ASHE id-lists grow by whole ranges).
	dense := len(cp.preds) == 0 && ts.pc.leftKey == nil && !scan && !grouped
	processed := 0

	for lo := i0; lo <= i1; lo += batchRows {
		if processed&(cancelCheckRows-1) == 0 && processed > 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		hi := min(lo+batchRows-1, i1)
		n := hi - lo + 1
		processed += n

		if dense {
			ts.res.rowsSelected += uint64(n)
			ts.res.single.rows += uint64(n)
			for ai := range cp.aggs {
				cp.aggs[ai].dense(&ts.pc, &ts.res.single.aggs[ai], lo, hi, startID)
			}
			continue
		}

		sel := ts.selBuf[:n]
		for k := range sel {
			sel[k] = int32(lo + k)
		}
		ts.b.sel = sel
		ts.b.join = nil
		if ts.pc.leftKey != nil {
			ts.probe()
		}
		for _, pred := range cp.preds {
			pred(&ts.pc, &ts.b, startID)
			if len(ts.b.sel) == 0 {
				break
			}
		}
		survivors := len(ts.b.sel)
		ts.res.rowsSelected += uint64(survivors)
		if survivors == 0 {
			continue
		}

		switch {
		case scan:
			ts.projectScan(startID)
		case !grouped:
			ts.res.single.rows += uint64(survivors)
			for ai := range cp.aggs {
				cp.aggs[ai].bulk(&ts.pc, &ts.res.single.aggs[ai], &ts.b, startID)
			}
		default:
			ts.accumulateGroups(startID)
		}
	}
	return nil
}

// probe runs the broadcast-join hash probe over the batch: unmatched rows
// drop from the selection vector (inner join), matched rows record their
// right-table row in the join vector. The probe is typed by the key kind —
// u64 keys hash directly and byte keys use Go's allocation-free
// map[string]([]byte) lookup, so no per-row key materializes.
func (ts *taskState) probe() {
	key := ts.cp
	col := ts.pc.leftKey
	out := ts.b.sel[:0]
	join := ts.joinBuf[:0]
	switch col.Kind {
	case store.U64:
		h := key.joinU64
		for _, i := range ts.b.sel {
			if j, ok := h[col.U64[i]]; ok {
				out = append(out, i)
				join = append(join, j)
			}
		}
	case store.Bytes:
		h := key.joinStr
		for _, i := range ts.b.sel {
			if j, ok := h[string(col.Bytes[i])]; ok {
				out = append(out, i)
				join = append(join, j)
			}
		}
	default:
		h := key.joinStr
		for _, i := range ts.b.sel {
			if j, ok := h[col.Str[i]]; ok {
				out = append(out, i)
				join = append(join, j)
			}
		}
	}
	ts.b.sel, ts.b.join, ts.joinBuf = out, join, join
}

// --- group-by path ---

// u64Key is the allocation-free group key for plaintext u64 grouping
// columns: the value and the inflation suffix (−1 when inflation is off),
// both comparable, neither touching a string.
type u64Key struct {
	v      uint64
	suffix int32
}

// strKey is the group key for Str columns and for inflated Bytes columns.
type strKey struct {
	s      string
	suffix int32
}

// grouper locates the partial for each surviving row's group with
// kind-specialized maps. u64 keys stay u64 end to end (plus a one-entry
// cache for runs of equal keys); un-inflated byte keys probe a string-keyed
// map with Go's allocation-free []byte-conversion lookup, paying one string
// allocation per distinct group, not per row.
type grouper struct {
	aggs    []Agg
	kind    store.Kind
	right   bool
	inflate int
	seed    uint64

	u64   map[u64Key]*partial
	str   map[strKey]*partial
	plain map[string]*partial // Bytes keys, inflation off

	lastU64 u64Key
	lastP   *partial
}

func (g *grouper) init(cp *compiledPlan) {
	g.aggs = cp.pl.Aggs
	g.kind = groupColKind(cp)
	g.right = cp.groupCol.isRight()
	g.seed = cp.seed
	if cp.pl.GroupBy.Inflate > 1 {
		g.inflate = cp.pl.GroupBy.Inflate
	}
	switch {
	case g.kind == store.U64:
		g.u64 = make(map[u64Key]*partial)
	case g.kind == store.Bytes && g.inflate == 0:
		g.plain = make(map[string]*partial)
	default:
		g.str = make(map[strKey]*partial)
	}
}

func groupColKind(cp *compiledPlan) store.Kind {
	if cp.groupCol.isRight() {
		return cp.groupCol.right.Kind
	}
	return cp.pl.Table.Parts[0].Cols[cp.groupCol.idx].Kind
}

// accumulateGroups scatters the batch's survivors into their group partials
// and runs the compiled row accumulators — no AggKind switch, no u64 key
// ever rendered as a string.
func (ts *taskState) accumulateGroups(startID uint64) {
	g := &ts.g
	col := ts.pc.group
	for k, i := range ts.b.sel {
		j := ts.b.joinAt(k)
		idx := i
		if g.right {
			idx = j
		}
		rowID := startID + uint64(i)
		suffix := int32(-1)
		if g.inflate > 0 {
			suffix = int32(splitmix64(g.seed^rowID^0xa5a5) % uint64(g.inflate))
		}

		var p *partial
		switch {
		case g.u64 != nil:
			key := u64Key{v: col.U64[idx], suffix: suffix}
			if g.lastP != nil && key == g.lastU64 {
				p = g.lastP
			} else {
				p = g.u64[key]
				if p == nil {
					p = newPartial(g.aggs)
					g.u64[key] = p
				}
				g.lastU64, g.lastP = key, p
			}
		case g.plain != nil:
			p = g.plain[string(col.Bytes[idx])]
			if p == nil {
				p = newPartial(g.aggs)
				g.plain[string(col.Bytes[idx])] = p
			}
		default:
			key := strKey{suffix: suffix}
			if g.kind == store.Bytes {
				key.s = string(col.Bytes[idx])
			} else {
				key.s = col.Str[idx]
			}
			p = g.str[key]
			if p == nil {
				p = newPartial(g.aggs)
				g.str[key] = p
			}
		}

		p.rows++
		for ai := range ts.cp.aggs {
			ts.cp.aggs[ai].row(&ts.pc, &p.aggs[ai], i, j, rowID)
		}
	}
}

// fold converts the grouper's typed maps into the map-stage output contract
// (groupKey-keyed partials), which the shuffle/reduce and shuffle-size
// accounting consume unchanged.
func (g *grouper) fold(res *mapResult) {
	n := len(g.u64) + len(g.str) + len(g.plain)
	res.groups = make(map[groupKey]*partial, n)
	for k, p := range g.u64 {
		res.groups[groupKey{kind: store.U64, u64: k.v, suffix: int(k.suffix)}] = p
	}
	for k, p := range g.str {
		res.groups[groupKey{kind: g.kind, str: k.s, suffix: int(k.suffix)}] = p
	}
	for s, p := range g.plain {
		res.groups[groupKey{kind: store.Bytes, str: s, suffix: -1}] = p
	}
}

// --- scan path ---

// scanArena backs scan projection output in chunks of up to
// ScanChunkRows×width values: the per-row value slices of ScanRow are
// carved from one backing array per chunk instead of three allocations per
// row. A chunk is sized to the batch that triggers it — a fully surviving
// batch allocates exactly one streaming chunk's worth, while a selective
// scan's chunks stay proportional to its survivors, so retained ScanRows
// never pin arrays much larger than the rows they carry.
type scanArena struct {
	u64 []uint64
	byt [][]byte
	str []string
	off int
}

// projectScan gathers the batch's surviving rows into ScanRows, writing the
// projected values directly into the arena's current chunk.
func (ts *taskState) projectScan(startID uint64) {
	width := len(ts.pc.project)
	a := &ts.arena
	if need := len(ts.b.sel) * width; a.off+need > len(a.u64) {
		a.u64 = make([]uint64, need)
		a.byt = make([][]byte, need)
		a.str = make([]string, need)
		a.off = 0
	}
	for k, i := range ts.b.sel {
		lo, hi := a.off, a.off+width
		row := ScanRow{
			ID:    startID + uint64(i),
			U64s:  a.u64[lo:hi:hi],
			Bytes: a.byt[lo:hi:hi],
			Strs:  a.str[lo:hi:hi],
		}
		a.off = hi
		for pi, col := range ts.pc.project {
			idx := i
			if ts.cp.project[pi].isRight() {
				idx = ts.b.joinAt(k)
			}
			switch col.Kind {
			case store.U64:
				row.U64s[pi] = col.U64[idx]
			case store.Bytes:
				row.Bytes[pi] = col.Bytes[idx]
			default:
				row.Strs[pi] = col.Str[idx]
			}
		}
		ts.res.scan = append(ts.res.scan, row)
	}
}

// runMapTask executes the compiled plan's map stage on one partition. It
// observes ctx at the injected I/O stall and once per cancelCheckRows rows
// of the batch loop, so a canceled query abandons even a single huge
// partition promptly. Binding and compilation are excluded from the
// measured task duration, matching the reference evaluator's accounting.
func (cp *compiledPlan) runMapTask(ctx context.Context, c *Cluster, part *store.Partition) (*mapResult, error) {
	if c.cfg.TaskSleep > 0 {
		t := time.NewTimer(c.cfg.TaskSleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	// Fault in exactly the columns this plan reads, and hold them resident
	// (safe from eviction) for the duration of the task: the task state binds
	// &part.Cols[i] pointers, which stay valid only while pinned.
	release, err := part.Pin(cp.leftIdxs)
	if err != nil {
		return nil, err
	}
	defer release()
	ts := cp.newTaskState(part)
	i0, i1 := rangeBounds(part, cp.pl.Range)
	ts.res.rowsScanned = uint64(i1 - i0 + 1)

	start := time.Now()
	if err := ts.execute(ctx, i0, i1); err != nil {
		return nil, err
	}
	if cp.pl.GroupBy != nil && len(cp.pl.Project) == 0 {
		ts.g.fold(ts.res)
	}

	// Worker-side compression of ASHE identifier lists (§4.5): encode here,
	// inside the measured task, unless the ablation moved it to the driver.
	if !cp.pl.CompressAtDriver {
		if ts.res.single != nil {
			if err := encodePartialIDs(ts.res.single, cp.codec); err != nil {
				return nil, err
			}
		}
		for _, pg := range ts.res.groups {
			if err := encodePartialIDs(pg, cp.codec); err != nil {
				return nil, err
			}
		}
	}
	ts.res.elapsed = time.Since(start)
	ts.res.bytes = cp.pl.partialBytes(ts.res, cp.codec)
	return ts.res, nil
}
