package engine

import (
	"context"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/store"
)

// This file implements phase 2 of the vectorized executor: run the compiled
// kernels (compile.go / kernel.go) over one partition in fixed-size batches.
// Each batch fills a reusable selection vector with the indices of surviving
// rows — the join probe and every predicate kernel compact it in place — and
// the accumulator kernels then consume it in tight per-kind loops over the
// raw store.Column slices.

// batchRows is the executor's batch size. It equals ScanChunkRows so a fully
// surviving batch fills exactly one streaming scan chunk, and at 1024 rows
// the selection and join vectors (4 KiB each) stay resident in L1 while the
// per-batch bookkeeping amortizes to noise. It must divide cancelCheckRows
// so cancellation polls land on batch boundaries.
const batchRows = ScanChunkRows

// taskState is one map task's execution state: the compiled plan bound to a
// partition plus the reusable batch buffers. All per-batch workspace lives
// here, so the steady-state u64 filter+sum path allocates nothing.
type taskState struct {
	cp   *compiledPlan
	part *store.Partition
	pc   partCols
	res  *mapResult

	selBuf  []int32
	joinBuf []int32
	b       batch

	g     grouper
	arena scanArena
}

// newTaskState binds the compiled plan to a partition and sizes the
// workspace the plan's shape needs.
func (cp *compiledPlan) newTaskState(part *store.Partition) *taskState {
	ts := &taskState{cp: cp, part: part, res: &mapResult{}}
	cp.bindPart(part, &ts.pc)
	ts.selBuf = make([]int32, batchRows)
	if cp.pl.Join != nil {
		ts.joinBuf = make([]int32, 0, batchRows)
	}
	pl := cp.pl
	switch {
	case len(pl.Project) > 0:
		// scan: arena allocated lazily, one chunk at a time
	case pl.GroupBy == nil:
		ts.res.single = newPartial(pl.Aggs)
	default:
		ts.g.init(cp)
	}
	return ts
}

// execute runs the batch loop over partition rows [i0, i1], observing ctx
// every cancelCheckRows rows like the reference evaluator.
func (ts *taskState) execute(ctx context.Context, i0, i1 int) error {
	cp := ts.cp
	startID := ts.part.StartID
	scan := len(cp.pl.Project) > 0
	grouped := cp.pl.GroupBy != nil
	// With no predicates and no join every batch survives whole, so the
	// selection vector would be the identity: the dense kernels consume the
	// contiguous interval directly (and ASHE id-lists grow by whole ranges).
	dense := len(cp.preds) == 0 && ts.pc.leftKey == nil && !scan && !grouped
	processed := 0

	for lo := i0; lo <= i1; lo += batchRows {
		if processed&(cancelCheckRows-1) == 0 && processed > 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		hi := min(lo+batchRows-1, i1)
		n := hi - lo + 1
		processed += n
		ts.res.ops.Batches++

		if dense {
			ts.res.ops.DenseBatches++
			ts.res.rowsSelected += uint64(n)
			ts.res.single.rows += uint64(n)
			for ai := range cp.aggs {
				cp.aggs[ai].dense(&ts.pc, &ts.res.single.aggs[ai], lo, hi, startID)
			}
			continue
		}

		sel := ts.selBuf[:n]
		for k := range sel {
			sel[k] = int32(lo + k)
		}
		ts.b.sel = sel
		ts.b.join = nil
		if ts.pc.leftKey != nil {
			ts.probe()
		}
		for _, pred := range cp.preds {
			pred(&ts.pc, &ts.b, startID)
			if len(ts.b.sel) == 0 {
				break
			}
		}
		survivors := len(ts.b.sel)
		ts.res.rowsSelected += uint64(survivors)
		if survivors == 0 {
			continue
		}

		switch {
		case scan:
			ts.projectScan(startID)
		case !grouped:
			ts.res.single.rows += uint64(survivors)
			for ai := range cp.aggs {
				cp.aggs[ai].bulk(&ts.pc, &ts.res.single.aggs[ai], &ts.b, startID)
			}
		default:
			ts.accumulateGroups(startID)
		}
	}
	return nil
}

// probe runs the broadcast-join hash probe over the batch: unmatched rows
// drop from the selection vector (inner join), matched rows record their
// right-table row in the join vector. The probe is typed by the key kind —
// u64 keys hash directly and byte keys use Go's allocation-free
// map[string]([]byte) lookup, so no per-row key materializes.
func (ts *taskState) probe() {
	key := ts.cp
	col := ts.pc.leftKey
	probed := len(ts.b.sel)
	out := ts.b.sel[:0]
	join := ts.joinBuf[:0]
	switch col.Kind {
	case store.U64:
		h := key.joinU64
		for _, i := range ts.b.sel {
			if j, ok := h[col.U64[i]]; ok {
				out = append(out, i)
				join = append(join, j)
			}
		}
	case store.Bytes:
		h := key.joinStr
		for _, i := range ts.b.sel {
			if j, ok := h[string(col.Bytes[i])]; ok {
				out = append(out, i)
				join = append(join, j)
			}
		}
	default:
		h := key.joinStr
		for _, i := range ts.b.sel {
			if j, ok := h[col.Str[i]]; ok {
				out = append(out, i)
				join = append(join, j)
			}
		}
	}
	ts.b.sel, ts.b.join, ts.joinBuf = out, join, join
	ts.res.ops.JoinProbed += uint64(probed)
	ts.res.ops.JoinMatched += uint64(len(out))
}

// --- group-by path ---

// u64Key is the allocation-free group key for plaintext u64 grouping
// columns: the value and the inflation suffix (−1 when inflation is off),
// both comparable, neither touching a string.
type u64Key struct {
	v      uint64
	suffix int32
}

// strKey is the group key for Str columns and for inflated Bytes columns.
type strKey struct {
	s      string
	suffix int32
}

// Dense direct-index sizing for u64 group keys. Every u64 grouper starts
// with denseDefaultEntries slots of key×suffix coverage, so small dimension
// domains (the SPLASHE shape §4.5 optimizes) index directly even without a
// planner-declared bound; a plan-declared GroupBy.KeyBound sizes the index
// exactly. denseMaxEntries caps the allocation against huge or hostile
// bounds — keys beyond the dense span fall back to the open-addressed table
// and still group correctly.
const (
	denseDefaultEntries = 1 << 12
	denseMaxEntries     = 1 << 20
)

// Radix partitioning of hash-path probes. When the open-addressed slot
// table outgrows radixMinTable entries, each batch's surviving keys are
// counting-sorted by the top radixBits of their hash before probing: the
// table index is the hash's high bits, so probes within one radix run land
// in the same 1/256th of the table — cache-resident bursts instead of
// random per-row walks.
const (
	radixBits     = 8
	radixBuckets  = 1 << radixBits
	radixMinTable = 1 << 15
)

// grouper locates the accumulator for each surviving row's group. Plaintext
// u64 keys are slot-based: a key resolves — through a dense direct index
// when it lies under the dense span, or an open-addressed robin table
// otherwise — to a small slot number, and accumulation then runs per batch
// over (selection, slot) pairs. When every aggregate is lane-eligible
// (count/sum/sum-of-squares/ASHE-sum/min/max) the accumulators are flat
// per-aggregate u64 lanes indexed by slot, so the group-by inner loop
// touches two cache-dense arrays and calls nothing. Str and Bytes keys keep
// kind-specialized maps: un-inflated byte keys probe a string-keyed map with
// Go's allocation-free []byte-conversion lookup, paying one string
// allocation per distinct group, not per row.
type grouper struct {
	aggs    []Agg
	kind    store.Kind
	right   bool
	inflate int
	seed    uint64

	// u64 slot machinery. keys maps slot → key; dense maps
	// key*inflateN+suffix → slot+1 (0 = empty) for keys under denseKeys;
	// table is the open-addressed fallback, indexed by the top bits of
	// hashU64Key, holding slot+1.
	inflateN  uint64
	denseKeys uint64
	dense     []int32
	table     []int32
	shift     uint
	tableUsed int
	keys      []u64Key

	// Accumulator storage, one of two modes: flat lanes (rowsLane plus one
	// u64 lane per aggregate, id-lists alongside for ASHE) when every
	// aggregate is lane-eligible, or generic per-slot partials otherwise.
	lanes    bool
	rowsLane []uint64
	aggLanes [][]uint64
	idLanes  [][]idlist.List
	parts    []*partial

	// Per-batch scratch, sized to batchRows once: resolved slot per
	// survivor, and the hash path's pending positions/keys/hashes/probe
	// order.
	slots  []int32
	hpos   []int32
	hkeys  []u64Key
	hh     []uint64
	horder []int32

	str   map[strKey]*partial
	plain map[string]*partial // Bytes keys, inflation off
}

func (g *grouper) init(cp *compiledPlan) {
	g.aggs = cp.pl.Aggs
	g.kind = groupColKind(cp)
	g.right = cp.groupCol.isRight()
	g.seed = cp.seed
	if cp.pl.GroupBy.Inflate > 1 {
		g.inflate = cp.pl.GroupBy.Inflate
	}
	switch {
	case g.kind == store.U64:
		g.initU64(cp)
	case g.kind == store.Bytes && g.inflate == 0:
		g.plain = make(map[string]*partial)
	default:
		g.str = make(map[strKey]*partial)
	}
}

// initU64 sizes the slot machinery: the dense index spans
// min(KeyBound | default, cap/inflate) keys times the suffix domain, the
// open-addressed table starts at 1 Ki entries, and the per-batch scratch is
// allocated here once so the steady-state batch loop allocates nothing.
func (g *grouper) initU64(cp *compiledPlan) {
	g.inflateN = 1
	if g.inflate > 0 {
		g.inflateN = uint64(g.inflate)
	}
	keys := uint64(denseDefaultEntries) / g.inflateN
	if kb := cp.pl.GroupBy.KeyBound; kb > 0 {
		keys = kb
	}
	if max := uint64(denseMaxEntries) / g.inflateN; keys > max {
		keys = max
	}
	g.denseKeys = keys
	g.dense = make([]int32, keys*g.inflateN)
	g.table = make([]int32, 1<<10)
	g.shift = 64 - 10
	g.lanes = true
	for _, a := range g.aggs {
		switch a.Kind {
		case AggCount, AggPlainSum, AggPlainSumSq, AggAsheSum, AggPlainMin, AggPlainMax:
		default:
			g.lanes = false
		}
	}
	if g.lanes {
		g.aggLanes = make([][]uint64, len(g.aggs))
		g.idLanes = make([][]idlist.List, len(g.aggs))
	}
	g.slots = make([]int32, batchRows)
	g.hpos = make([]int32, batchRows)
	g.hkeys = make([]u64Key, batchRows)
	g.hh = make([]uint64, batchRows)
	g.horder = make([]int32, batchRows)
}

// hashU64Key hashes a u64 group key for the open-addressed table and mixes
// the inflation suffix so equal values with different suffixes land apart.
func hashU64Key(k u64Key) uint64 {
	return splitmix64(k.v ^ uint64(uint32(k.suffix))*0x9e3779b97f4a7c15)
}

// newSlot appends a slot for key and returns its index, growing whichever
// accumulator storage the grouper runs in.
func (g *grouper) newSlot(key u64Key) int32 {
	s := int32(len(g.keys))
	g.keys = append(g.keys, key)
	if !g.lanes {
		g.parts = append(g.parts, newPartial(g.aggs))
		return s
	}
	g.rowsLane = append(g.rowsLane, 0)
	for ai := range g.aggs {
		init := uint64(0)
		if g.aggs[ai].Kind == AggPlainMin {
			init = ^uint64(0)
		}
		g.aggLanes[ai] = append(g.aggLanes[ai], init)
		if g.aggs[ai].Kind == AggAsheSum {
			g.idLanes[ai] = append(g.idLanes[ai], idlist.List{})
		}
	}
	return s
}

// probeSlot resolves key to its slot through the open-addressed table,
// inserting a fresh slot on first sight. Linear probing from the hash's
// high bits; the table doubles at half load.
func (g *grouper) probeSlot(key u64Key, h uint64) int32 {
	if g.tableUsed*2 >= len(g.table) {
		g.growTable()
	}
	mask := uint64(len(g.table) - 1)
	idx := h >> g.shift
	for {
		s := g.table[idx]
		if s == 0 {
			s = g.newSlot(key) + 1
			g.table[idx] = s
			g.tableUsed++
			return s - 1
		}
		if g.keys[s-1] == key {
			return s - 1
		}
		idx = (idx + 1) & mask
	}
}

// growTable doubles the open-addressed table and reinserts every resident
// slot at its new high-bits position.
func (g *grouper) growTable() {
	old := g.table
	g.table = make([]int32, len(old)*2)
	g.shift--
	mask := uint64(len(g.table) - 1)
	for _, s := range old {
		if s == 0 {
			continue
		}
		idx := hashU64Key(g.keys[s-1]) >> g.shift
		for g.table[idx] != 0 {
			idx = (idx + 1) & mask
		}
		g.table[idx] = s
	}
}

// groupSlots resolves each survivor's group key to a slot in g.slots,
// parallel to the selection vector. Keys under the dense span index
// directly; the rest are hashed, radix-partitioned by hash prefix when the
// table is large, and probed in prefix order so table accesses burst
// through one cache-resident region at a time. Only the probe order is
// permuted — the slot vector stays in selection order, so accumulation
// (and with it id-list append order and min/max tie-breaking) is identical
// to the reference evaluator's row order.
func (ts *taskState) groupSlots(startID uint64) {
	g := &ts.g
	col := ts.pc.group
	sel := ts.b.sel
	slots := g.slots[:len(sel)]
	miss := 0
	for k, i := range sel {
		idx := i
		if g.right {
			idx = ts.b.joinAt(k)
		}
		v := col.U64[idx]
		sfx := int32(-1)
		dk := v * g.inflateN
		if g.inflate > 0 {
			sfx = int32(splitmix64(g.seed^(startID+uint64(i))^0xa5a5) % uint64(g.inflate))
			dk += uint64(sfx)
		}
		if v < g.denseKeys {
			s := g.dense[dk]
			if s == 0 {
				s = g.newSlot(u64Key{v: v, suffix: sfx}) + 1
				g.dense[dk] = s
			}
			slots[k] = s - 1
			continue
		}
		key := u64Key{v: v, suffix: sfx}
		g.hpos[miss] = int32(k)
		g.hkeys[miss] = key
		g.hh[miss] = hashU64Key(key)
		miss++
	}
	ts.res.ops.GroupDense += uint64(len(sel) - miss)
	ts.res.ops.GroupHash += uint64(miss)
	if miss == 0 {
		return
	}
	order := g.horder[:miss]
	if len(g.table) >= radixMinTable && miss >= radixBuckets {
		ts.res.ops.RadixBatches++
		var count [radixBuckets + 1]int32
		for m := 0; m < miss; m++ {
			count[(g.hh[m]>>(64-radixBits))+1]++
		}
		for b := 1; b <= radixBuckets; b++ {
			count[b] += count[b-1]
		}
		for m := 0; m < miss; m++ {
			b := g.hh[m] >> (64 - radixBits)
			order[count[b]] = int32(m)
			count[b]++
		}
	} else {
		for m := range order {
			order[m] = int32(m)
		}
	}
	for _, m := range order {
		slots[g.hpos[m]] = g.probeSlot(g.hkeys[m], g.hh[m])
	}
}

func groupColKind(cp *compiledPlan) store.Kind {
	if cp.groupCol.isRight() {
		return cp.groupCol.right.Kind
	}
	return cp.pl.Table.Parts[0].Cols[cp.groupCol.idx].Kind
}

// accumulateGroups folds the batch's survivors into their group
// accumulators. u64 keys take the two-phase slot path: resolve slots
// (groupSlots), then accumulate over (selection, slot) pairs — lane loops
// when every aggregate is lane-eligible (accumulateLanes, kernel.go), the
// compiled row kernels against per-slot partials otherwise. Str/Bytes keys
// keep the per-row map probe, whose string hashing dominates anyway.
func (ts *taskState) accumulateGroups(startID uint64) {
	g := &ts.g
	if g.kind == store.U64 {
		ts.groupSlots(startID)
		if g.lanes {
			ts.accumulateLanes(startID)
		} else {
			ts.accumulateSlots(startID)
		}
		return
	}
	col := ts.pc.group
	for k, i := range ts.b.sel {
		j := ts.b.joinAt(k)
		idx := i
		if g.right {
			idx = j
		}
		rowID := startID + uint64(i)
		suffix := int32(-1)
		if g.inflate > 0 {
			suffix = int32(splitmix64(g.seed^rowID^0xa5a5) % uint64(g.inflate))
		}

		var p *partial
		switch {
		case g.plain != nil:
			p = g.plain[string(col.Bytes[idx])]
			if p == nil {
				p = newPartial(g.aggs)
				g.plain[string(col.Bytes[idx])] = p
			}
		default:
			key := strKey{suffix: suffix}
			if g.kind == store.Bytes {
				key.s = string(col.Bytes[idx])
			} else {
				key.s = col.Str[idx]
			}
			p = g.str[key]
			if p == nil {
				p = newPartial(g.aggs)
				g.str[key] = p
			}
		}

		p.rows++
		for ai := range ts.cp.aggs {
			ts.cp.aggs[ai].row(&ts.pc, &p.aggs[ai], i, j, rowID)
		}
	}
}

// accumulateSlots is the generic u64 accumulation path: per-slot partials
// fed through the compiled row kernels, for aggregate mixes (Paillier, OPE,
// medians) the flat lanes cannot represent.
func (ts *taskState) accumulateSlots(startID uint64) {
	g := &ts.g
	sel := ts.b.sel
	slots := g.slots[:len(sel)]
	for _, s := range slots {
		g.parts[s].rows++
	}
	for ai := range ts.cp.aggs {
		row := ts.cp.aggs[ai].row
		for k, i := range sel {
			row(&ts.pc, &g.parts[slots[k]].aggs[ai], i, ts.b.joinAt(k), startID+uint64(i))
		}
	}
}

// slotPartial materializes slot s's accumulator as a partial: the partial
// itself in generic mode, or one assembled from the flat lanes. Called at
// fold time, once per group per task.
func (g *grouper) slotPartial(s int) *partial {
	if !g.lanes {
		return g.parts[s]
	}
	p := &partial{rows: g.rowsLane[s], aggs: make([]aggState, len(g.aggs))}
	for ai := range g.aggs {
		st := &p.aggs[ai]
		st.kind = g.aggs[ai].Kind
		st.u64 = g.aggLanes[ai][s]
		switch st.kind {
		case AggAsheSum:
			st.ids = g.idLanes[ai][s]
		case AggPlainMin, AggPlainMax:
			// A slot exists only because a row hit it, and every group-by row
			// contributes its aggregate value, so the extreme was seen.
			st.seen = true
		}
	}
	return p
}

// fold converts the grouper's slots and typed maps into the map-stage
// output contract: reducer-bucketed (key, partial) pairs, which the shuffle
// concatenates per bucket without re-hashing (run.go).
func (g *grouper) fold(res *mapResult, buckets int) {
	res.ops.GroupSlots += uint64(len(g.keys) + len(g.str) + len(g.plain))
	if n := uint64(len(g.table)); g.kind == store.U64 && n > res.ops.GroupTableLen {
		res.ops.GroupTableLen = n
	}
	res.groups = make([][]keyedPartial, buckets)
	add := func(k groupKey, p *partial) {
		b := reducerBucket(k, buckets)
		res.groups[b] = append(res.groups[b], keyedPartial{key: k, p: p})
	}
	for s := range g.keys {
		k := g.keys[s]
		add(groupKey{kind: store.U64, u64: k.v, suffix: int(k.suffix)}, g.slotPartial(s))
	}
	for k, p := range g.str {
		add(groupKey{kind: g.kind, str: k.s, suffix: int(k.suffix)}, p)
	}
	for s, p := range g.plain {
		add(groupKey{kind: store.Bytes, str: s, suffix: -1}, p)
	}
}

// --- scan path ---

// scanArena backs scan projection output in chunks of up to
// ScanChunkRows×width values: the per-row value slices of ScanRow are
// carved from one backing array per chunk instead of three allocations per
// row. A chunk is sized to the batch that triggers it — a fully surviving
// batch allocates exactly one streaming chunk's worth, while a selective
// scan's chunks stay proportional to its survivors, so retained ScanRows
// never pin arrays much larger than the rows they carry.
type scanArena struct {
	u64 []uint64
	byt [][]byte
	str []string
	off int
}

// projectScan gathers the batch's surviving rows into ScanRows, writing the
// projected values directly into the arena's current chunk.
func (ts *taskState) projectScan(startID uint64) {
	width := len(ts.pc.project)
	a := &ts.arena
	if need := len(ts.b.sel) * width; a.off+need > len(a.u64) {
		a.u64 = make([]uint64, need)
		a.byt = make([][]byte, need)
		a.str = make([]string, need)
		a.off = 0
	}
	for k, i := range ts.b.sel {
		lo, hi := a.off, a.off+width
		row := ScanRow{
			ID:    startID + uint64(i),
			U64s:  a.u64[lo:hi:hi],
			Bytes: a.byt[lo:hi:hi],
			Strs:  a.str[lo:hi:hi],
		}
		a.off = hi
		for pi, col := range ts.pc.project {
			idx := i
			if ts.cp.project[pi].isRight() {
				idx = ts.b.joinAt(k)
			}
			switch col.Kind {
			case store.U64:
				row.U64s[pi] = col.U64[idx]
			case store.Bytes:
				row.Bytes[pi] = col.Bytes[idx]
			default:
				row.Strs[pi] = col.Str[idx]
			}
		}
		ts.res.scan = append(ts.res.scan, row)
	}
}

// runMapTask executes the compiled plan's map stage on one partition. It
// observes ctx at the injected I/O stall and once per cancelCheckRows rows
// of the batch loop, so a canceled query abandons even a single huge
// partition promptly. Binding and compilation are excluded from the
// measured task duration, matching the reference evaluator's accounting.
func (cp *compiledPlan) runMapTask(ctx context.Context, c *Cluster, part *store.Partition) (*mapResult, error) {
	if c.cfg.TaskSleep > 0 {
		t := time.NewTimer(c.cfg.TaskSleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	// Fault in exactly the columns this plan reads, and hold them resident
	// (safe from eviction) for the duration of the task: the task state binds
	// &part.Cols[i] pointers, which stay valid only while pinned.
	release, faulted, err := part.PinStats(cp.leftIdxs)
	if err != nil {
		return nil, err
	}
	defer release()
	ts := cp.newTaskState(part)
	pinned := len(cp.leftIdxs)
	if cp.leftIdxs == nil {
		pinned = len(part.Cols)
	}
	ts.res.ops.ColumnPins = uint64(pinned)
	ts.res.ops.ColumnFaults = uint64(faulted)
	i0, i1 := rangeBounds(part, cp.pl.Range)
	ts.res.rowsScanned = uint64(i1 - i0 + 1)

	start := time.Now()
	if err := ts.execute(ctx, i0, i1); err != nil {
		return nil, err
	}
	if cp.pl.GroupBy != nil && len(cp.pl.Project) == 0 {
		ts.g.fold(ts.res, c.cfg.Workers)
	}

	// Worker-side compression of ASHE identifier lists (§4.5): encode here,
	// inside the measured task, unless the ablation moved it to the driver.
	if !cp.pl.CompressAtDriver {
		if ts.res.single != nil {
			if err := encodePartialIDs(ts.res.single, cp.codec); err != nil {
				return nil, err
			}
		}
		for _, kps := range ts.res.groups {
			for _, kp := range kps {
				if err := encodePartialIDs(kp.p, cp.codec); err != nil {
					return nil, err
				}
			}
		}
	}
	ts.res.elapsed = time.Since(start)
	ts.res.bytes = cp.pl.partialBytes(ts.res, cp.codec)
	return ts.res, nil
}
