package engine

import (
	"fmt"
	"sort"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/store"
)

// This file exports the partial-merge step of a scatter-gather deployment:
// a coordinating proxy fans a Plan out to N shards (each holding a disjoint
// row range of the logical table), collects one Result per shard, and folds
// them into the Result a single engine over the whole table would have
// produced. Shard groups are converted back into the engine's own partial
// accumulators and folded with the same mergePartial/finishPartial the
// in-process shuffle+reduce uses, so proxy-side reduce never re-implements
// aggregation semantics.
//
// Every merge is exact because Seabed's aggregates are shard-decomposable:
//
//   - ASHE sums commute: an ASHE ciphertext is (Σ values mod 2^64, id-list),
//     and addition unions identifier multisets, so summing per-shard bodies
//     and merging per-shard id-lists equals encrypting the global sum (§4.2).
//   - Paillier sums commute: E(a)·E(b) mod N² = E(a+b), and modular
//     multiplication is associative, so the product of per-shard products is
//     the product over all rows.
//   - Counts, plain sums, and sums of squares are ordinary integer sums.
//   - Min/max take the extreme of per-shard extremes (OPE comparison needs
//     no key); shards that selected no rows are skipped.
//   - Medians do NOT decompose, so Partial plans ship each shard's collected
//     inputs and the coordinator selects over the concatenation.
//
// Group-by results concatenate per-shard partial groups and reduce them by
// key, exactly the shuffle+reduce the engine performs between its own map
// tasks (§4.5).

// MergeResults folds per-shard partial results (in shard order) into the
// result a single engine over the union of the shards' rows would produce.
// pl is the original, unscoped plan: its Aggs supply Paillier public keys
// and merge kinds, and its Codec — which must be the codec the shards
// actually used — re-encodes merged identifier lists. Shard results must
// come from Partial plan executions (or be median-free). Metrics are
// combined scatter-gather style: stage times take the slowest shard (shards
// run in parallel), byte/task/row counts sum, and the measured merge time is
// added to DriverTime.
func MergeResults(pl *Plan, partials []*Result) (*Result, error) {
	start := time.Now()
	codec := pl.Codec
	if codec == nil {
		if pl.GroupBy != nil {
			codec = idlist.VBDiff
		} else {
			codec = idlist.Default
		}
	}

	out := &Result{}
	for i, r := range partials {
		mergeMetrics(&out.Metrics, &r.Metrics, i == 0)
	}
	if len(pl.Project) > 0 {
		total := 0
		for _, r := range partials {
			total += len(r.Scan)
		}
		out.Scan = make([]ScanRow, 0, total)
		for _, r := range partials {
			out.Scan = append(out.Scan, r.Scan...)
		}
		// Shards hold ascending identifier runs, but appended batches
		// interleave across shards; re-sorting by identifier restores the
		// single-engine scan order.
		sort.Slice(out.Scan, func(a, b int) bool { return out.Scan[a].ID < out.Scan[b].ID })
	} else {
		groups, bytes, err := mergeGroups(pl, partials, codec)
		if err != nil {
			return nil, err
		}
		out.Groups = groups
		out.Metrics.ResultBytes = bytes
	}

	out.Metrics.DriverTime += time.Since(start)
	out.Metrics.ServerTime = out.Metrics.MapTime + out.Metrics.ShuffleTime +
		out.Metrics.ReduceTime + out.Metrics.DriverTime
	return out, nil
}

// mergeGroups buckets every shard's groups by key and folds same-key groups
// through the engine's own reduce path: each shard group converts back into
// a partial accumulator, mergePartial folds it, and finishPartial finalizes
// (encodes merged id-lists, collapses medians) exactly as the in-process
// reduce does. It returns the merged groups (sorted) with their serialized
// size.
func mergeGroups(pl *Plan, partials []*Result, codec idlist.Codec) ([]Group, int, error) {
	for i, a := range pl.Aggs {
		if a.Kind == AggPaillierSum && a.PK == nil {
			return nil, 0, fmt.Errorf("engine: merge: Paillier aggregate %d without public key", i)
		}
	}
	merged := make(map[groupKey]*partial)
	var order []groupKey
	for _, r := range partials {
		for gi := range r.Groups {
			g := &r.Groups[gi]
			key := groupKey{kind: g.KeyKind, u64: g.KeyU64, suffix: g.Suffix}
			switch g.KeyKind {
			case store.Bytes:
				key.str = string(g.KeyBytes)
			case store.Str:
				key.str = g.KeyStr
			}
			src, err := partialFromGroup(pl, g)
			if err != nil {
				return nil, 0, err
			}
			acc := merged[key]
			if acc == nil {
				acc = newPartial(pl.Aggs)
				merged[key] = acc
				order = append(order, key)
			}
			mergePartial(pl, acc, src)
		}
	}

	out := make([]Group, 0, len(merged))
	total := 0
	for _, key := range order {
		group, bytes, err := pl.finishPartial(merged[key], key, codec)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, group)
		total += bytes
	}
	sort.Slice(out, func(a, b int) bool { return lessGroup(out[a], out[b]) })
	return out, total, nil
}

// partialFromGroup converts one shard's result group back into the engine's
// in-flight accumulator representation — the inverse of finishPartial for a
// Partial plan — so the coordinator's reduce runs through mergePartial
// unchanged. Field copies only; no aggregation semantics live here.
func partialFromGroup(pl *Plan, g *Group) (*partial, error) {
	if len(g.Aggs) != len(pl.Aggs) {
		return nil, fmt.Errorf("engine: merge: shard group has %d aggregates, want %d", len(g.Aggs), len(pl.Aggs))
	}
	p := &partial{rows: g.Rows, aggs: make([]aggState, len(g.Aggs))}
	for i := range g.Aggs {
		av, st := &g.Aggs[i], &p.aggs[i]
		st.kind = av.Kind
		if st.kind != pl.Aggs[i].Kind {
			return nil, fmt.Errorf("engine: merge: aggregate %d kind mismatch (%d vs %d)", i, av.Kind, pl.Aggs[i].Kind)
		}
		switch av.Kind {
		case AggCount, AggPlainSum, AggPlainSumSq:
			st.u64 = av.U64
		case AggAsheSum:
			st.u64 = av.Ashe.Body
			st.ids = av.Ashe.IDs
		case AggPaillierSum:
			if av.Pail == nil {
				return nil, fmt.Errorf("engine: merge: shard group missing Paillier ciphertext for aggregate %d", i)
			}
			st.pail = av.Pail
		case AggPlainMin, AggPlainMax:
			st.u64 = av.U64
			st.seen = g.Rows > 0
		case AggOpeMin, AggOpeMax:
			st.ope = av.Ope
			st.argID = av.ArgID
			st.u64 = av.U64
			st.compBytes = av.CompanionBytes
			st.seen = g.Rows > 0 && len(av.Ope) > 0
		case AggPlainMedian:
			st.medU64 = av.MedU64
		case AggOpeMedian:
			st.medOpe = av.MedOpe
			st.medIDs = av.MedIDs
			st.medComp = av.MedComp
		default:
			return nil, fmt.Errorf("engine: merge: unknown aggregate kind %d", av.Kind)
		}
	}
	return p, nil
}

// mergeMetrics combines one shard's metrics into the accumulator: stage
// times take the maximum (shards execute concurrently, so the gather waits
// for the slowest), sizes and counts sum. ResultBytes is summed here for
// scan results and recomputed from the merged groups otherwise.
func mergeMetrics(dst, src *Metrics, first bool) {
	maxDur := func(d *time.Duration, s time.Duration) {
		if first || s > *d {
			*d = s
		}
	}
	minDur := func(d *time.Duration, s time.Duration) {
		if first || s < *d {
			*d = s
		}
	}
	maxDur(&dst.MapTime, src.MapTime)
	maxDur(&dst.ReduceTime, src.ReduceTime)
	maxDur(&dst.ShuffleTime, src.ShuffleTime)
	maxDur(&dst.DriverTime, src.DriverTime)
	dst.ShuffleBytes += src.ShuffleBytes
	dst.ResultBytes += src.ResultBytes
	dst.MapTasks += src.MapTasks
	dst.ReduceTasks += src.ReduceTasks
	dst.RowsScanned += src.RowsScanned
	dst.RowsSelected += src.RowsSelected
	minDur(&dst.TaskMin, src.TaskMin)
	maxDur(&dst.TaskP50, src.TaskP50)
	maxDur(&dst.TaskMax, src.TaskMax)
	// FirstChunk takes the minimum non-zero value: the gather's caller saw
	// rows as soon as the first shard delivered any. Zero means a shard
	// streamed nothing and must not win the minimum.
	if src.FirstChunk > 0 && (dst.FirstChunk == 0 || src.FirstChunk < dst.FirstChunk) {
		dst.FirstChunk = src.FirstChunk
	}
	// Per-operator counters: flows sum, GroupTableLen maxes (OpStats.merge
	// applies the same rules the task fold used within one shard).
	dst.Ops.merge(&src.Ops)
}
