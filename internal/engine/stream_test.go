package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"seabed/internal/sqlparse"
)

// Mid-map streaming tests: RunStream must deliver exactly the rows Run
// materializes, in the same order, in sink batches of at most ScanChunkRows —
// and must deliver the first batch while later map tasks are still running.

// TestRunStreamEquivalence asserts the streaming contract against the
// materialized scan for single- and multi-partition tables: concatenating
// the sink batches reproduces Run's Scan exactly, the streamed result's own
// Scan stays nil, and FirstChunk is recorded.
func TestRunStreamEquivalence(t *testing.T) {
	for _, parts := range []int{1, 7} {
		tbl, _, _ := fixture(t, 20000, parts)
		c := NewCluster(Config{Workers: 4})
		plan := func() *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 40}},
				Project: []string{"v", "d", "v_ashe"}}
		}
		want, err := c.Run(context.Background(), plan())
		if err != nil {
			t.Fatal(err)
		}
		var got []ScanRow
		res, err := c.RunStream(context.Background(), plan(), func(rows []ScanRow) error {
			if len(rows) == 0 || len(rows) > ScanChunkRows {
				t.Errorf("sink batch of %d rows, want 1..%d", len(rows), ScanChunkRows)
			}
			got = append(got, rows...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Scan != nil {
			t.Errorf("parts=%d: streamed result materialized %d scan rows, want nil", parts, len(res.Scan))
		}
		if !reflect.DeepEqual(got, want.Scan) {
			t.Errorf("parts=%d: streamed rows diverge from materialized scan (%d vs %d rows)",
				parts, len(got), len(want.Scan))
		}
		if res.Metrics.FirstChunk <= 0 {
			t.Errorf("parts=%d: FirstChunk = %v, want > 0", parts, res.Metrics.FirstChunk)
		}
		if res.Metrics.RowsSelected != want.Metrics.RowsSelected {
			t.Errorf("parts=%d: RowsSelected %d vs %d", parts, res.Metrics.RowsSelected, want.Metrics.RowsSelected)
		}
	}
}

// TestRunStreamFirstChunkBeforeMapEnds pins the "mid-map" in mid-map
// streaming. With RealParallelism 1 the task launcher admits partitions in
// order, so partition 0 retires after one TaskSleep while five more tasks
// still have to run; the first sink call — and Metrics.FirstChunk — must
// land well before RunStream returns.
func TestRunStreamFirstChunkBeforeMapEnds(t *testing.T) {
	const parts = 6
	const sleep = 20 * time.Millisecond
	tbl, _, _ := fixture(t, 6000, parts)
	c := NewCluster(Config{Workers: 4, RealParallelism: 1, TaskSleep: sleep})
	start := time.Now()
	var firstRows time.Duration
	res, err := c.RunStream(context.Background(), &Plan{Table: tbl, Project: []string{"v"}},
		func(rows []ScanRow) error {
			if firstRows == 0 {
				firstRows = time.Since(start)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := time.Since(start)
	if res.Metrics.FirstChunk <= 0 {
		t.Fatalf("FirstChunk = %v, want > 0", res.Metrics.FirstChunk)
	}
	// The run holds at least parts×sleep of serialized map work; the first
	// chunk needs only partition 0's. Allow one extra sleep of slack.
	if firstRows >= total-2*sleep {
		t.Errorf("first rows at %v of a %v run: streaming did not beat the map stage", firstRows, total)
	}
	if res.Metrics.FirstChunk >= total-2*sleep {
		t.Errorf("FirstChunk = %v of a %v run, want mid-map delivery", res.Metrics.FirstChunk, total)
	}
}

// TestRunStreamSinkErrorAborts asserts a sink failure cancels the run: the
// error comes back verbatim and the remaining map tasks stop instead of
// running the table to completion.
func TestRunStreamSinkErrorAborts(t *testing.T) {
	tbl, _, _ := fixture(t, 6000, 6)
	c := NewCluster(Config{Workers: 4, RealParallelism: 1, TaskSleep: 5 * time.Millisecond})
	sinkErr := errors.New("downstream full")
	calls := 0
	_, err := c.RunStream(context.Background(), &Plan{Table: tbl, Project: []string{"v"}},
		func(rows []ScanRow) error {
			calls++
			return sinkErr
		})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("RunStream error = %v, want the sink's", err)
	}
	if calls != 1 {
		t.Errorf("sink called %d times after failing, want 1", calls)
	}
}

// TestRunStreamNonScanFallsBack asserts aggregate plans and nil sinks run
// exactly like Run: no streaming machinery, no FirstChunk.
func TestRunStreamNonScanFallsBack(t *testing.T) {
	tbl, _, _ := fixture(t, 3000, 3)
	c := NewCluster(Config{Workers: 4})
	res, err := c.RunStream(context.Background(),
		&Plan{Table: tbl, Aggs: []Agg{{Kind: AggCount}}},
		func(rows []ScanRow) error { t.Error("sink called for an aggregate plan"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FirstChunk != 0 {
		t.Errorf("FirstChunk = %v for a non-streaming run, want 0", res.Metrics.FirstChunk)
	}
	res, err = c.RunStream(context.Background(), &Plan{Table: tbl, Project: []string{"v"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scan) == 0 {
		t.Error("nil-sink RunStream did not materialize the scan")
	}
}
