package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/obs"
	"seabed/internal/ope"
	"seabed/internal/store"
)

// ScanSink receives one batch of scan rows from a streaming plan execution.
// Returning an error aborts the run; the error is propagated to the caller.
type ScanSink func(rows []ScanRow) error

// ScanChunkRows is the batch size streaming executions hand to a ScanSink,
// and the row count per MsgResultChunk frame on the wire. It bounds how much
// scan output is in flight between the engine and an incremental decrypter.
// It is also the executor's batch size (batchRows): at 1024 rows the
// selection vector stays L1-resident while per-batch overhead amortizes
// away, and one fully surviving batch fills exactly one streaming chunk, so
// the scan arena, the sink contract, and the wire frame all share a unit.
const ScanChunkRows = 1024

// ProjectKinds resolves the physical kinds of a plan's projected columns,
// in Plan.Project order: what a columnar chunk encoder needs, since a
// ScanRow's cells are ambiguous (empty values look alike across kinds).
// Names resolve against the scanned table first, then the join's right
// table, mirroring the executor's own resolution order.
func ProjectKinds(pl *Plan) ([]store.Kind, error) {
	kinds := make([]store.Kind, len(pl.Project))
	for i, name := range pl.Project {
		switch {
		case pl.Table != nil && pl.Table.HasCol(name):
			k, err := pl.Table.ColKind(name)
			if err != nil {
				return nil, err
			}
			kinds[i] = k
		case pl.Join != nil && pl.Join.Right != nil && pl.Join.Right.HasCol(name):
			k, err := pl.Join.Right.ColKind(name)
			if err != nil {
				return nil, err
			}
			kinds[i] = k
		default:
			return nil, fmt.Errorf("engine: unknown column %q", name)
		}
	}
	return kinds, nil
}

// mapRunner executes the map stage of an already-compiled plan on one
// partition. Two implementations exist: the vectorized compiledPlan
// (compile.go / batch.go) and the retained row-at-a-time referencePlan
// (reference.go).
type mapRunner interface {
	runMapTask(ctx context.Context, c *Cluster, part *store.Partition) (*mapResult, error)
}

// Run executes a plan and returns its result and cost metrics. Execution is
// two-phase: the plan is compiled once — filters to typed predicate
// kernels, aggregates to typed accumulator kernels, the join hash typed by
// key kind — and the compiled kernels then run over every partition in
// batches (see batch.go). The context is checked between map tasks and
// periodically within them; when it is canceled the worker pool drains and
// Run returns ctx.Err().
func (c *Cluster) Run(ctx context.Context, pl *Plan) (*Result, error) {
	return c.run(ctx, pl, false, nil)
}

// RunReference executes a plan with the retained row-at-a-time reference
// evaluator instead of the vectorized executor. Results and cost accounting
// are identical by construction — the differential tests enforce it — but
// the map stage interprets the plan per row. It exists for differential
// testing and as the before-side of kernel benchmarks; production paths
// (server, shards) always use Run.
func (c *Cluster) RunReference(ctx context.Context, pl *Plan) (*Result, error) {
	return c.run(ctx, pl, true, nil)
}

// run is the shared body behind Run, RunReference, and RunStream. A non-nil
// sink turns a projection plan into a streaming run: each map task's scan
// output is handed to the sink as soon as that task retires (in partition
// order, so the stream is globally identifier-ordered), the result's Scan
// stays nil, and Metrics.FirstChunk records the wall-clock latency to the
// first delivered chunk.
func (c *Cluster) run(ctx context.Context, pl *Plan, reference bool, sink ScanSink) (*Result, error) {
	if pl.Table == nil {
		return nil, errors.New("engine: plan has no table")
	}
	if len(pl.Aggs) == 0 && len(pl.Project) == 0 {
		return nil, errors.New("engine: plan has neither aggregates nor projection")
	}
	if len(pl.Project) > 0 && (len(pl.Aggs) > 0 || pl.GroupBy != nil) {
		return nil, errors.New("engine: scan plans cannot aggregate or group")
	}
	for _, a := range pl.Aggs {
		if a.Kind == AggPaillierSum && a.PK == nil {
			return nil, errors.New("engine: Paillier aggregate without public key")
		}
	}
	if pl.Join != nil {
		// The join index is typed by the key kind, so a kind-mismatched join
		// (say plaintext u64 probing DET bytes) can never match — reject it
		// here instead of silently returning an empty result.
		lk, lerr := pl.Table.ColKind(pl.Join.LeftCol)
		rk, rerr := pl.Join.Right.ColKind(pl.Join.RightCol)
		if lerr == nil && rerr == nil && lk != rk {
			return nil, fmt.Errorf("engine: join key kinds differ (%v left vs %v right)", lk, rk)
		}
	}
	codec := pl.Codec
	if codec == nil {
		if pl.GroupBy != nil {
			codec = idlist.VBDiff // §4.5: no range encoding for group-by
		} else {
			codec = idlist.Default
		}
		// Record the effective codec so the client decodes with the same one.
		pl.Codec = codec
	}

	var metrics Metrics

	// Phase 1 — compile (driver side, measured): bind the plan against the
	// partition layout, build the typed join index, and lower filters and
	// aggregates to kernels. Every map task shares the compiled plan, and
	// repeated query shapes share it across runs through the fingerprint
	// cache (plancache.go). The reference evaluator compiles fresh every
	// run, staying an independent oracle for the differential tests.
	start := time.Now()
	var runner mapRunner
	var err error
	if reference {
		runner, err = pl.compileReference(codec)
	} else {
		runner, err = c.compiled(pl, codec)
	}
	if err != nil {
		return nil, err
	}
	metrics.DriverTime += time.Since(start)

	// Phase 2 — map stage: one task per partition, executed with bounded
	// real parallelism, each measured individually. A streaming run also
	// starts a delivery goroutine that walks the tasks in partition order and
	// hands each retired task's scan output to the sink while later tasks are
	// still executing — the first chunk leaves as soon as partition 0
	// finishes, not after the whole map stage.
	parts := pl.Table.Parts
	results := make([]*mapResult, len(parts))
	errs := make([]error, len(parts))
	par := c.cfg.RealParallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	mctx := ctx
	var done []chan struct{}
	var deliverErr error
	deliverDone := make(chan struct{})
	if sink != nil {
		var cancel context.CancelFunc
		mctx, cancel = context.WithCancel(ctx)
		defer cancel()
		done = make([]chan struct{}, len(parts))
		for i := range done {
			done[i] = make(chan struct{})
		}
		runStart := time.Now()
		go func() {
			defer close(deliverDone)
			for i := range done {
				select {
				case <-done[i]:
				case <-mctx.Done():
					return
				}
				if errs[i] != nil || results[i] == nil {
					return
				}
				scan := results[i].scan
				for len(scan) > 0 {
					n := min(ScanChunkRows, len(scan))
					if err := sink(scan[:n]); err != nil {
						deliverErr = err
						cancel() // abort tasks still mapping
						return
					}
					if metrics.FirstChunk == 0 {
						metrics.FirstChunk = time.Since(runStart)
					}
					scan = scan[n:]
				}
			}
		}()
	} else {
		close(deliverDone)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range parts {
		// Abort the pool the moment the context dies: tasks already launched
		// drain (they observe ctx themselves), unlaunched ones never start.
		if mctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = runner.runMapTask(mctx, c, parts[i])
			if done != nil {
				close(done[i])
			}
		}(i)
	}
	wg.Wait()
	<-deliverDone
	if deliverErr != nil {
		return nil, deliverErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Reaching here means mctx was never canceled (a sink error or parent
	// cancellation returned above), so every task launched and completed.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	durations := make([]time.Duration, len(results))
	rng := rand.New(rand.NewSource(int64(c.cfg.Seed) ^ 0x5eabed))
	for i, r := range results {
		d := r.elapsed
		if c.cfg.StragglerProb > 0 && rng.Float64() < c.cfg.StragglerProb {
			d = time.Duration(float64(d) * c.cfg.StragglerFactor)
		}
		durations[i] = d
		metrics.ShuffleBytes += r.bytes
		metrics.RowsScanned += r.rowsScanned
		metrics.RowsSelected += r.rowsSelected
		metrics.Ops.merge(&r.ops)
	}
	metrics.MapTasks = len(results)
	metrics.MapTime = makespan(durations, c.cfg.Workers)
	metrics.TaskMin, metrics.TaskP50, metrics.TaskMax = taskSample(durations)

	out := &Result{}
	switch {
	case len(pl.Project) > 0:
		c.reduceScan(pl, results, out, &metrics, sink == nil)
	case pl.GroupBy == nil:
		if err := c.reduceSingle(pl, results, codec, out, &metrics); err != nil {
			return nil, err
		}
	default:
		if err := c.reduceGroups(pl, results, codec, out, &metrics); err != nil {
			return nil, err
		}
	}

	metrics.ServerTime = metrics.MapTime + metrics.ShuffleTime + metrics.ReduceTime + metrics.DriverTime
	out.Metrics = metrics
	if sp := obs.SpanFromContext(ctx); sp != nil {
		attachStageSpans(sp, &metrics)
	}
	return out, nil
}

// taskSample condenses the per-map-task duration distribution to the three
// numbers Metrics retains (min/p50/max) — enough for scatter-span straggler
// attribution without shipping every task's clock reading.
func taskSample(durations []time.Duration) (min, p50, max time.Duration) {
	if len(durations) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), durations...)
	slices.Sort(sorted)
	return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
}

// attachStageSpans reports the run's stage breakdown on the active trace
// span. Stage times are the engine's cost model (makespans and modeled
// shuffle), not wall-clock intervals, so the spans are laid out sequentially
// ending now — the shape Table 5's per-stage accounting takes.
func attachStageSpans(sp *obs.Span, m *Metrics) {
	base := time.Now().Add(-m.ServerTime)
	add := func(name string, d time.Duration) *obs.Span {
		s := sp.AddSpan(name, base, d)
		base = base.Add(d)
		return s
	}
	mapSp := add("map", m.MapTime)
	mapSp.SetAttr("tasks", strconv.Itoa(m.MapTasks))
	mapSp.SetAttr("rows_scanned", strconv.FormatUint(m.RowsScanned, 10))
	mapSp.SetAttr("rows_selected", strconv.FormatUint(m.RowsSelected, 10))
	mapSp.SetAttr("task_p50", m.TaskP50.String())
	mapSp.SetAttr("task_max", m.TaskMax.String())
	if m.FirstChunk > 0 {
		mapSp.SetAttr("first_chunk", m.FirstChunk.String())
	}
	add("shuffle", m.ShuffleTime).SetAttr("bytes", strconv.Itoa(m.ShuffleBytes))
	reduceSp := add("reduce", m.ReduceTime)
	reduceSp.SetAttr("tasks", strconv.Itoa(m.ReduceTasks))
	add("driver", m.DriverTime).SetAttr("result_bytes", strconv.Itoa(m.ResultBytes))
}

// RunStream executes a plan like Run, but delivers scan rows to sink in
// batches of up to ScanChunkRows instead of materializing them in the
// result (whose Scan field stays nil). For plans without a projection — or
// a nil sink — it is identical to Run. Delivery is mid-map: each partition's
// rows are handed to the sink as soon as that partition's task retires, in
// partition order, while later tasks are still executing — so the first
// chunk arrives long before the run's terminal metrics, at the latency
// Metrics.FirstChunk records. The executor's scan kernels project into
// ScanChunkRows-sized arena chunks (batch.go), so the batches handed to
// sink reference whole backing arrays rather than row-sized allocations. A
// sink error cancels the remaining map tasks and is returned as-is.
func (c *Cluster) RunStream(ctx context.Context, pl *Plan, sink ScanSink) (*Result, error) {
	if sink == nil || len(pl.Project) == 0 {
		return c.run(ctx, pl, false, nil)
	}
	return c.run(ctx, pl, false, sink)
}

// reduceScan computes the scan reduce's metrics and, when materialize is
// set (non-streaming runs), concatenates the scan rows at the driver; a
// streaming run already delivered them to the sink mid-map.
func (c *Cluster) reduceScan(pl *Plan, results []*mapResult, out *Result, m *Metrics, materialize bool) {
	start := time.Now()
	if materialize {
		total := 0
		for _, r := range results {
			total += len(r.scan)
		}
		out.Scan = make([]ScanRow, 0, total)
		for _, r := range results {
			out.Scan = append(out.Scan, r.scan...)
		}
	}
	m.DriverTime += time.Since(start)
	// Partials stream straight to the driver over one link.
	m.ShuffleTime = c.cfg.ShuffleLink.TransferTime(m.ShuffleBytes)
	m.ResultBytes = m.ShuffleBytes
}

// reduceSingle merges no-group-by partials at the driver (§4.5: workers send
// partial results to the driver, which aggregates).
func (c *Cluster) reduceSingle(pl *Plan, results []*mapResult, codec idlist.Codec, out *Result, m *Metrics) error {
	start := time.Now()
	final := newPartial(pl.Aggs)
	for _, r := range results {
		mergePartial(pl, final, r.single)
	}
	group, bytes, err := pl.finishPartial(final, groupKey{kind: store.U64, suffix: -1}, codec)
	if err != nil {
		return err
	}
	out.Groups = []Group{group}
	m.DriverTime += time.Since(start)
	m.ShuffleTime = c.cfg.ShuffleLink.TransferTime(m.ShuffleBytes)
	m.ResultBytes = bytes
	return nil
}

// reduceGroups merges the map tasks' reducer-bucketed partial groups. The
// shuffle is a concatenation: every map task already emitted its groups
// partitioned by reducerBucket (grouper.fold / bucketGroups), so reducer b's
// input is the task-order concatenation of each task's bucket b — no sort,
// no per-query key assignment, no re-hashing. One reducer runs per
// non-empty bucket, on real goroutines bounded by RealParallelism; the
// reported ReduceTime remains the makespan of the measured reducer
// durations over the simulated Workers, consistent with the map stage's
// accounting.
func (c *Cluster) reduceGroups(pl *Plan, results []*mapResult, codec idlist.Codec, out *Result, m *Metrics) error {
	nb := c.cfg.Workers
	if nb < 1 {
		nb = 1
	}
	buckets := make([][]keyedPartial, nb)
	for _, mr := range results {
		for bi, kps := range mr.groups {
			if len(kps) > 0 {
				buckets[bi] = append(buckets[bi], kps...)
			}
		}
	}
	active := make([]int, 0, nb)
	for bi := range buckets {
		if len(buckets[bi]) > 0 {
			active = append(active, bi)
		}
	}
	reducers := len(active)
	if reducers < 1 {
		reducers = 1
	}
	m.ReduceTasks = reducers

	// The shuffle fans out over the active reducers' links in parallel:
	// fewer reducers means fewer links carrying the same bytes — the §4.5
	// bottleneck that group inflation exists to fix.
	m.ShuffleTime = c.cfg.ShuffleLink.TransferTime(m.ShuffleBytes / reducers)

	// Merge per reducer, in parallel for real. Buckets are disjoint by
	// construction — a key maps to exactly one bucket, and each map task's
	// partial for it appears there once, in task order — so reducers share
	// no accumulator state.
	type reduced struct {
		groups []Group
		bytes  int
		dur    time.Duration
		err    error
	}
	outs := make([]reduced, len(active))
	par := c.cfg.RealParallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for ri, bi := range active {
		wg.Add(1)
		sem <- struct{}{}
		go func(ri, bi int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			o := &outs[ri]
			merged := make(map[groupKey]*partial)
			for _, kp := range buckets[bi] {
				acc := merged[kp.key]
				if acc == nil {
					acc = newPartial(pl.Aggs)
					merged[kp.key] = acc
				}
				mergePartial(pl, acc, kp.p)
			}
			for k, p := range merged {
				group, bytes, err := pl.finishPartial(p, k, codec)
				if err != nil {
					o.err = err
					return
				}
				o.groups = append(o.groups, group)
				o.bytes += bytes
			}
			o.dur = time.Since(start)
		}(ri, bi)
	}
	wg.Wait()

	durations := make([]time.Duration, len(active))
	resultBytes := 0
	for ri := range outs {
		if outs[ri].err != nil {
			return outs[ri].err
		}
		out.Groups = append(out.Groups, outs[ri].groups...)
		resultBytes += outs[ri].bytes
		durations[ri] = outs[ri].dur
	}
	m.ReduceTime = makespan(durations, c.cfg.Workers)
	m.ResultBytes = resultBytes
	sort.Slice(out.Groups, func(a, b int) bool { return lessGroup(out.Groups[a], out.Groups[b]) })
	return nil
}

func lessGroup(a, b Group) bool {
	if a.KeyU64 != b.KeyU64 {
		return a.KeyU64 < b.KeyU64
	}
	ab, bb := string(a.KeyBytes), string(b.KeyBytes)
	if ab != bb {
		return ab < bb
	}
	if a.KeyStr != b.KeyStr {
		return a.KeyStr < b.KeyStr
	}
	return a.Suffix < b.Suffix
}

// mergePartial folds src into dst.
func mergePartial(pl *Plan, dst, src *partial) {
	if src == nil {
		return
	}
	dst.rows += src.rows
	for i := range dst.aggs {
		d, s := &dst.aggs[i], &src.aggs[i]
		switch d.kind {
		case AggCount, AggPlainSum, AggPlainSumSq:
			d.u64 += s.u64
		case AggAsheSum:
			d.u64 += s.u64
			d.ids.Merge(s.ids)
		case AggPaillierSum:
			pl.Aggs[i].PK.AddInto(d.pail, s.pail)
		case AggPlainMin:
			if s.seen && (!d.seen || s.u64 < d.u64) {
				d.u64, d.seen = s.u64, true
			}
		case AggPlainMax:
			if s.seen && (!d.seen || s.u64 > d.u64) {
				d.u64, d.seen = s.u64, true
			}
		case AggOpeMin:
			if s.seen && (!d.seen || ope.Less(s.ope, d.ope)) {
				d.ope, d.argID, d.u64, d.compBytes, d.seen = s.ope, s.argID, s.u64, s.compBytes, true
			}
		case AggOpeMax:
			if s.seen && (!d.seen || ope.Less(d.ope, s.ope)) {
				d.ope, d.argID, d.u64, d.compBytes, d.seen = s.ope, s.argID, s.u64, s.compBytes, true
			}
		case AggPlainMedian:
			d.medU64 = append(d.medU64, s.medU64...)
		case AggOpeMedian:
			d.medOpe = append(d.medOpe, s.medOpe...)
			d.medIDs = append(d.medIDs, s.medIDs...)
			d.medComp = append(d.medComp, s.medComp...)
		}
	}
}

// finishPartial converts a merged partial into a result Group, encoding ASHE
// identifier lists for the client, and returns the group's serialized size.
func (pl *Plan) finishPartial(p *partial, key groupKey, codec idlist.Codec) (Group, int, error) {
	g := Group{KeyKind: key.kind, Suffix: key.suffix, Rows: p.rows, Aggs: make([]AggValue, len(p.aggs))}
	switch key.kind {
	case store.U64:
		g.KeyU64 = key.u64
	case store.Bytes:
		g.KeyBytes = []byte(key.str)
	default:
		g.KeyStr = key.str
	}
	bytes := 8 // key + row count, roughly
	if key.kind != store.U64 {
		bytes += len(key.str)
	}
	for i := range p.aggs {
		st := &p.aggs[i]
		av := AggValue{Kind: st.kind}
		switch st.kind {
		case AggCount, AggPlainSum, AggPlainSumSq, AggPlainMin, AggPlainMax:
			av.U64 = st.u64
			bytes += 8
		case AggAsheSum:
			enc, err := codec.Encode(st.ids)
			if err != nil {
				return Group{}, 0, fmt.Errorf("engine: encode result id list: %v", err)
			}
			av.Ashe = AsheAgg{Body: st.u64, IDs: st.ids, Encoded: enc}
			bytes += 8 + len(enc)
		case AggPaillierSum:
			av.Pail = st.pail
			bytes += pl.Aggs[i].PK.CiphertextSize()
		case AggOpeMin, AggOpeMax:
			av.Ope = st.ope
			av.ArgID = st.argID
			av.U64 = st.u64
			av.CompanionBytes = st.compBytes
			bytes += len(st.ope) + 16 + len(st.compBytes)
		case AggPlainMedian:
			if pl.Partial {
				// Shard slice: a global median needs every shard's inputs, so
				// ship the collection and let MergeResults collapse it.
				av.MedU64 = st.medU64
				bytes += 8 * len(st.medU64)
				break
			}
			if n := len(st.medU64); n > 0 {
				sort.Slice(st.medU64, func(a, b int) bool { return st.medU64[a] < st.medU64[b] })
				av.U64 = st.medU64[n/2]
			}
			bytes += 8
		case AggOpeMedian:
			if pl.Partial {
				av.MedOpe = st.medOpe
				av.MedIDs = st.medIDs
				av.MedComp = st.medComp
				bytes += opeMedianBytes(st.medOpe)
				break
			}
			av.Ope, av.ArgID, av.U64 = collapseOpeMedian(st.medOpe, st.medIDs, st.medComp)
			bytes += len(av.Ope) + 16
		}
		g.Aggs[i] = av
	}
	return g, bytes, nil
}

// collapseOpeMedian selects the middle element of an OPE-encrypted value
// collection by order-revealing comparison (Table 6: "Median … Using OPE") —
// the server needs no key. It returns the winning ciphertext, its row
// identifier, and its companion value (0 when no companions were collected).
func collapseOpeMedian(medOpe [][]byte, medIDs, medComp []uint64) (opeVal []byte, argID, comp uint64) {
	n := len(medOpe)
	if n == 0 {
		return nil, 0, 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ope.Less(medOpe[idx[a]], medOpe[idx[b]]) })
	mid := idx[n/2]
	opeVal, argID = medOpe[mid], medIDs[mid]
	if len(medComp) == n {
		comp = medComp[mid]
	}
	return opeVal, argID, comp
}

// makespan list-schedules the given task durations onto w workers (FIFO,
// earliest-free-worker) and returns the finishing time.
func makespan(durations []time.Duration, w int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	free := make([]time.Duration, w)
	var finish time.Duration
	for _, d := range durations {
		// Earliest-free worker.
		min := 0
		for i := 1; i < w; i++ {
			if free[i] < free[min] {
				min = i
			}
		}
		free[min] += d
		if free[min] > finish {
			finish = free[min]
		}
	}
	return finish
}
