package engine

import (
	"fmt"

	"seabed/internal/idlist"
	"seabed/internal/store"
)

// This file implements phase 1 of the vectorized executor: compile. A plan
// is bound against the table's partition layout exactly once per Run —
// column names resolve to layout indices, the broadcast join hash is built
// with keys typed by the key column's kind, every filter becomes a typed
// predicate kernel, and every aggregate a typed accumulator kernel. All
// per-kind dispatch happens here, outside the scan loop; phase 2 (batch.go)
// then runs the compiled kernels over selection vectors without a single
// per-row switch.

// colRef is a compiled column reference: an index into Partition.Cols for
// left-table columns, or the already-flattened right-side column for columns
// a broadcast join contributed. Exactly one of the two is meaningful.
type colRef struct {
	idx   int // left-side layout index; -1 when the column is right-side
	right *store.Column
}

// isRight reports whether the reference addresses the join's right table.
func (r colRef) isRight() bool { return r.idx < 0 }

// compiledPlan is the once-per-Run compilation of a Plan: resolved column
// references, a typed join index, and the predicate/accumulator kernels the
// batch executor runs. It is immutable after compile and shared by every
// map task of the run, so tasks on different partitions never rebuild it.
type compiledPlan struct {
	pl    *Plan
	codec idlist.Codec
	seed  uint64 // cluster seed, drives group inflation

	filters    []colRef
	aggCols    []colRef
	companions []colRef
	groupCol   colRef
	project    []colRef
	leftKeyIdx int // layout index of the join's left key; -1 without a join

	// leftIdxs lists the distinct left-table layout indices the plan reads —
	// the exact columns each map task pins resident in its partition, so a
	// query against a mapped table faults in only what it touches.
	leftIdxs []int

	// right holds the join's flattened right-side columns by name; the join
	// index maps key values to right-side row indices, typed by the key
	// column's kind so u64 keys never round-trip through strings.
	right   map[string]*store.Column
	joinU64 map[uint64]int32
	joinStr map[string]int32

	preds []predKernel
	aggs  []aggKernel
}

// compile binds pl against its table's layout and lowers it to kernels.
// seed is the cluster seed (group inflation); codec must be the resolved
// identifier-list codec.
func (pl *Plan) compile(seed uint64, codec idlist.Codec) (*compiledPlan, error) {
	cp := &compiledPlan{pl: pl, codec: codec, seed: seed, leftKeyIdx: -1}

	if pl.Join != nil {
		var err error
		cp.right, err = flattenRight(pl.Join.Right, pl.Join.RightCols, pl.Join.RightCol)
		if err != nil {
			return nil, err
		}
		cp.buildJoinIndex(cp.right[pl.Join.RightCol])
	}

	// All partitions share one column layout (store.Build slices each column,
	// and appends validate names and kinds), so name resolution against the
	// first partition holds for every task of the run.
	if len(pl.Table.Parts) == 0 {
		return nil, fmt.Errorf("engine: table %q has no partitions", pl.Table.Name)
	}
	layout := pl.Table.Parts[0]
	resolve := func(name string) (colRef, error) {
		if idx := layout.ColIndex(name); idx >= 0 {
			cp.useLeft(idx)
			return colRef{idx: idx}, nil
		}
		if cp.right != nil {
			if c, ok := cp.right[name]; ok {
				return colRef{idx: -1, right: c}, nil
			}
		}
		return colRef{}, fmt.Errorf("engine: unknown column %q", name)
	}

	for fi := range pl.Filters {
		f := &pl.Filters[fi]
		ref := colRef{idx: -1}
		if f.Kind != FilterRandom {
			var err error
			ref, err = resolve(f.Col)
			if err != nil {
				return nil, err
			}
		}
		cp.filters = append(cp.filters, ref)
	}
	for ai := range pl.Aggs {
		a := &pl.Aggs[ai]
		ref, comp := colRef{idx: -1}, colRef{idx: -1}
		if a.Kind != AggCount {
			var err error
			ref, err = resolve(a.Col)
			if err != nil {
				return nil, err
			}
			if a.Companion != "" {
				comp, err = resolve(a.Companion)
				if err != nil {
					return nil, err
				}
			}
		}
		cp.aggCols = append(cp.aggCols, ref)
		cp.companions = append(cp.companions, comp)
	}
	if pl.GroupBy != nil {
		ref, err := resolve(pl.GroupBy.Col)
		if err != nil {
			return nil, err
		}
		cp.groupCol = ref
	}
	for _, name := range pl.Project {
		ref, err := resolve(name)
		if err != nil {
			return nil, err
		}
		cp.project = append(cp.project, ref)
	}
	if pl.Join != nil {
		ref, err := resolve(pl.Join.LeftCol)
		if err != nil || ref.isRight() {
			return nil, fmt.Errorf("engine: join key %q missing from left table", pl.Join.LeftCol)
		}
		cp.leftKeyIdx = ref.idx
		cp.useLeft(ref.idx)
	}

	// Lower filters and aggregates to kernels, now that every reference is
	// resolved and each kernel can specialize on kind, operator, and side.
	for fi := range pl.Filters {
		k, err := cp.compileFilter(fi, &pl.Filters[fi])
		if err != nil {
			return nil, err
		}
		cp.preds = append(cp.preds, k)
	}
	for ai := range pl.Aggs {
		cp.aggs = append(cp.aggs, cp.compileAgg(ai, &pl.Aggs[ai]))
	}
	return cp, nil
}

// useLeft records a left-table layout index in the plan's pinned working
// set, deduplicated.
func (cp *compiledPlan) useLeft(idx int) {
	for _, have := range cp.leftIdxs {
		if have == idx {
			return
		}
	}
	cp.leftIdxs = append(cp.leftIdxs, idx)
}

// buildJoinIndex indexes the right table's key column, typed by its kind:
// u64 keys hash directly, byte and string keys share one string-keyed map
// (byte keys convert once here, at build — probes use Go's alloc-free
// map[string] lookup on a []byte conversion). Duplicate keys keep the last
// occurrence, matching the reference evaluator's hash build.
func (cp *compiledPlan) buildJoinIndex(key *store.Column) {
	switch key.Kind {
	case store.U64:
		cp.joinU64 = make(map[uint64]int32, len(key.U64))
		for i, v := range key.U64 {
			cp.joinU64[v] = int32(i)
		}
	case store.Bytes:
		cp.joinStr = make(map[string]int32, len(key.Bytes))
		for i, b := range key.Bytes {
			cp.joinStr[string(b)] = int32(i)
		}
	default:
		cp.joinStr = make(map[string]int32, len(key.Str))
		for i, s := range key.Str {
			cp.joinStr[s] = int32(i)
		}
	}
}

// bindPart resolves the compiled references against one partition's columns.
// This is the only per-partition work left at execution time: pointer
// lookups by index, no name resolution and no kind dispatch.
func (cp *compiledPlan) bindPart(part *store.Partition, pc *partCols) {
	at := func(ref colRef) *store.Column {
		if ref.isRight() {
			return ref.right // nil for FilterRandom / AggCount placeholders
		}
		return &part.Cols[ref.idx]
	}
	pc.filters = pc.filters[:0]
	for _, ref := range cp.filters {
		pc.filters = append(pc.filters, at(ref))
	}
	pc.aggs = pc.aggs[:0]
	pc.companions = pc.companions[:0]
	for ai, ref := range cp.aggCols {
		pc.aggs = append(pc.aggs, at(ref))
		pc.companions = append(pc.companions, at(cp.companions[ai]))
	}
	if cp.pl.GroupBy != nil {
		pc.group = at(cp.groupCol)
	}
	pc.project = pc.project[:0]
	for _, ref := range cp.project {
		pc.project = append(pc.project, at(ref))
	}
	if cp.leftKeyIdx >= 0 {
		pc.leftKey = &part.Cols[cp.leftKeyIdx]
	}
}
