package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/ope"
	"seabed/internal/store"
)

// This file retains the pre-vectorization row-at-a-time interpreter as a
// straight-line reference evaluator. It is not a production path: the
// differential tests run every query category through both executors and
// demand identical results, and the kernel benchmarks (and the bench
// package's "kernels" experiment) use it as the before-side of the
// vectorization speedup. It must stay behaviorally frozen — fix bugs in
// both executors or in neither.

// referencePlan is the reference evaluator's per-Run state: the plan, its
// codec, and the flattened right side with a string-keyed join hash (the
// representation the interpreter always used).
type referencePlan struct {
	pl       *Plan
	codec    idlist.Codec
	right    map[string]*store.Column
	joinHash map[string]int
}

// compileReference prepares the reference evaluator's run state; it is the
// counterpart of Plan.compile for the interpreter.
func (pl *Plan) compileReference(codec idlist.Codec) (*referencePlan, error) {
	rp := &referencePlan{pl: pl, codec: codec}
	if pl.Join != nil {
		var err error
		rp.right, err = flattenRight(pl.Join.Right, pl.Join.RightCols, pl.Join.RightCol)
		if err != nil {
			return nil, err
		}
		rp.joinHash = buildJoinHash(rp.right, pl.Join.RightCol)
	}
	return rp, nil
}

// boundCols resolves every column a plan references against a partition and
// the optional broadcast join.
type boundCols struct {
	filters    []*store.Column
	aggs       []*store.Column
	companions []*store.Column
	group      *store.Column
	project    []*store.Column

	// joined columns come from the flattened right table.
	filterRight  []bool
	aggRight     []bool
	groupRight   bool
	projectRight []bool

	leftKey  *store.Column
	joinHash map[string]int
	right    map[string]*store.Column
}

// hashKeyOf renders a join key value as a map key. Only the reference
// evaluator pays this per-probe string materialization; the vectorized
// executor's join index is typed by key kind.
func hashKeyOf(c *store.Column, i int) string {
	switch c.Kind {
	case store.U64:
		var b [8]byte
		v := c.U64[i]
		for j := 0; j < 8; j++ {
			b[j] = byte(v >> (8 * j))
		}
		return string(b[:])
	case store.Bytes:
		return string(c.Bytes[i])
	default:
		return c.Str[i]
	}
}

// buildJoinHash indexes the right table's key column.
func buildJoinHash(right map[string]*store.Column, keyCol string) map[string]int {
	key := right[keyCol]
	h := make(map[string]int, key.Len())
	for i := 0; i < key.Len(); i++ {
		h[hashKeyOf(key, i)] = i
	}
	return h
}

// bind resolves the plan's columns against one partition.
func (pl *Plan) bind(part *store.Partition, right map[string]*store.Column, joinHash map[string]int) (*boundCols, error) {
	b := &boundCols{right: right, joinHash: joinHash}
	resolve := func(name string) (*store.Column, bool, error) {
		if c := part.Col(name); c != nil {
			return c, false, nil
		}
		if right != nil {
			if c, ok := right[name]; ok {
				return c, true, nil
			}
		}
		return nil, false, fmt.Errorf("engine: unknown column %q", name)
	}
	for _, f := range pl.Filters {
		if f.Kind == FilterRandom {
			b.filters = append(b.filters, nil)
			b.filterRight = append(b.filterRight, false)
			continue
		}
		c, r, err := resolve(f.Col)
		if err != nil {
			return nil, err
		}
		b.filters = append(b.filters, c)
		b.filterRight = append(b.filterRight, r)
	}
	for _, a := range pl.Aggs {
		if a.Kind == AggCount {
			b.aggs = append(b.aggs, nil)
			b.companions = append(b.companions, nil)
			b.aggRight = append(b.aggRight, false)
			continue
		}
		c, r, err := resolve(a.Col)
		if err != nil {
			return nil, err
		}
		var comp *store.Column
		if a.Companion != "" {
			comp, _, err = resolve(a.Companion)
			if err != nil {
				return nil, err
			}
		}
		b.aggs = append(b.aggs, c)
		b.companions = append(b.companions, comp)
		b.aggRight = append(b.aggRight, r)
	}
	if pl.GroupBy != nil {
		c, r, err := resolve(pl.GroupBy.Col)
		if err != nil {
			return nil, err
		}
		b.group, b.groupRight = c, r
	}
	for _, name := range pl.Project {
		c, r, err := resolve(name)
		if err != nil {
			return nil, err
		}
		b.project = append(b.project, c)
		b.projectRight = append(b.projectRight, r)
	}
	if pl.Join != nil {
		c := part.Col(pl.Join.LeftCol)
		if c == nil {
			return nil, fmt.Errorf("engine: join key %q missing from left table", pl.Join.LeftCol)
		}
		b.leftKey = c
	}
	return b, nil
}

// runMapTask executes the plan's map stage on one partition with the
// original row-at-a-time loop: per-row switches over FilterKind and AggKind,
// string-keyed join probes, and string-folded group keys. It observes ctx
// at the injected I/O stall and once per cancelCheckRows rows.
func (rp *referencePlan) runMapTask(ctx context.Context, c *Cluster, part *store.Partition) (*mapResult, error) {
	pl := rp.pl
	if c.cfg.TaskSleep > 0 {
		t := time.NewTimer(c.cfg.TaskSleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	// The reference loop is not compiled, so no column working set is known
	// up front: pin the whole partition resident for the task.
	release, faulted, err := part.PinStats(nil)
	if err != nil {
		return nil, err
	}
	defer release()
	b, err := pl.bind(part, rp.right, rp.joinHash)
	if err != nil {
		return nil, err
	}
	res := &mapResult{}
	res.ops.ColumnPins = uint64(len(part.Cols))
	res.ops.ColumnFaults = uint64(faulted)

	i0, i1 := rangeBounds(part, pl.Range)
	res.rowsScanned = uint64(i1 - i0 + 1)

	start := time.Now()
	// The row loop accumulates groups into a key-addressed map; the bucketed
	// mapResult contract is produced by one bucketGroups conversion after
	// the loop, keeping the loop itself byte-for-byte the pre-vectorization
	// interpreter.
	var groups map[groupKey]*partial
	if pl.GroupBy == nil && len(pl.Project) == 0 {
		res.single = newPartial(pl.Aggs)
	} else if pl.GroupBy != nil {
		groups = make(map[groupKey]*partial)
	}

	inflate := 0
	if pl.GroupBy != nil && pl.GroupBy.Inflate > 1 {
		inflate = pl.GroupBy.Inflate
	}

	for i := i0; i <= i1; i++ {
		if (i-i0)&(cancelCheckRows-1) == cancelCheckRows-1 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		rowID := part.StartID + uint64(i)
		joinIdx := -1
		if b.leftKey != nil {
			idx, ok := b.joinHash[hashKeyOf(b.leftKey, i)]
			if !ok {
				continue // inner join: unmatched rows drop
			}
			joinIdx = idx
		}
		// Filters (conjunction).
		ok := true
		for fi := range pl.Filters {
			f := &pl.Filters[fi]
			switch f.Kind {
			case FilterRandom:
				if f.Prob < 1 && splitmix64(f.Seed^rowID) >= uint64(f.Prob*float64(1<<63))<<1 {
					ok = false
				}
			case FilterPlainCmp:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				if !cmpMatch(f.Op, cmpU64(col.U64[j], f.U64)) {
					ok = false
				}
			case FilterStrCmp:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				v := col.Str[j]
				var cmp int
				switch {
				case v < f.Str:
					cmp = -1
				case v > f.Str:
					cmp = 1
				}
				if !cmpMatch(f.Op, cmp) {
					ok = false
				}
			case FilterDetEq:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				if bytes.Equal(col.Bytes[j], f.Bytes) == f.Negate {
					ok = false
				}
			case FilterOpeCmp:
				col := b.filters[fi]
				j := i
				if b.filterRight[fi] {
					j = joinIdx
				}
				if !cmpMatch(f.Op, ope.Compare(col.Bytes[j], f.Bytes)) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		res.rowsSelected++

		// Scan mode: project and continue.
		if len(pl.Project) > 0 {
			row := ScanRow{ID: rowID,
				U64s:  make([]uint64, len(b.project)),
				Bytes: make([][]byte, len(b.project)),
				Strs:  make([]string, len(b.project))}
			for pi, col := range b.project {
				j := i
				if b.projectRight[pi] {
					j = joinIdx
				}
				switch col.Kind {
				case store.U64:
					row.U64s[pi] = col.U64[j]
				case store.Bytes:
					row.Bytes[pi] = col.Bytes[j]
				default:
					row.Strs[pi] = col.Str[j]
				}
			}
			res.scan = append(res.scan, row)
			continue
		}

		// Locate the group partial.
		var pg *partial
		if pl.GroupBy == nil {
			pg = res.single
		} else {
			key := groupKey{kind: b.group.Kind, suffix: -1}
			j := i
			if b.groupRight {
				j = joinIdx
			}
			switch b.group.Kind {
			case store.U64:
				key.u64 = b.group.U64[j]
			case store.Bytes:
				key.str = string(b.group.Bytes[j])
			default:
				key.str = b.group.Str[j]
			}
			if inflate > 0 {
				key.suffix = int(splitmix64(c.cfg.Seed^rowID^0xa5a5) % uint64(inflate))
			}
			pg = groups[key]
			if pg == nil {
				pg = newPartial(pl.Aggs)
				groups[key] = pg
			}
		}
		pg.rows++

		// Accumulate aggregates.
		for ai := range pl.Aggs {
			st := &pg.aggs[ai]
			col := b.aggs[ai]
			j := i
			if col != nil && b.aggRight[ai] {
				j = joinIdx
			}
			switch st.kind {
			case AggCount:
				st.u64++
			case AggPlainSum:
				st.u64 += col.U64[j]
			case AggPlainSumSq:
				st.u64 += col.U64[j] * col.U64[j]
			case AggAsheSum:
				st.u64 += col.U64[j]
				st.ids.Append(rowID)
			case AggPaillierSum:
				pl.Aggs[ai].PK.AddInto(st.pail, new(big.Int).SetBytes(col.Bytes[j]))
			case AggPlainMin:
				if !st.seen || col.U64[j] < st.u64 {
					st.u64, st.seen = col.U64[j], true
				}
			case AggPlainMax:
				if !st.seen || col.U64[j] > st.u64 {
					st.u64, st.seen = col.U64[j], true
				}
			case AggOpeMin:
				if !st.seen || ope.Less(col.Bytes[j], st.ope) {
					st.ope, st.argID, st.seen = col.Bytes[j], rowID, true
					st.takeCompanion(b.companions[ai], j)
				}
			case AggOpeMax:
				if !st.seen || ope.Less(st.ope, col.Bytes[j]) {
					st.ope, st.argID, st.seen = col.Bytes[j], rowID, true
					st.takeCompanion(b.companions[ai], j)
				}
			case AggPlainMedian:
				st.medU64 = append(st.medU64, col.U64[j])
			case AggOpeMedian:
				st.medOpe = append(st.medOpe, col.Bytes[j])
				st.medIDs = append(st.medIDs, rowID)
				if comp := b.companions[ai]; comp != nil {
					st.medComp = append(st.medComp, comp.U64[j])
				}
			}
		}
	}

	if groups != nil {
		res.groups = bucketGroups(groups, c.cfg.Workers)
	}

	// Worker-side compression of ASHE identifier lists (§4.5): encode here,
	// inside the measured task, unless the ablation moved it to the driver.
	if !pl.CompressAtDriver {
		if res.single != nil {
			if err := encodePartialIDs(res.single, rp.codec); err != nil {
				return nil, err
			}
		}
		for _, kps := range res.groups {
			for _, kp := range kps {
				if err := encodePartialIDs(kp.p, rp.codec); err != nil {
					return nil, err
				}
			}
		}
	}
	res.elapsed = time.Since(start)
	res.bytes = pl.partialBytes(res, rp.codec)
	return res, nil
}
