// Package engine implements Seabed's server side: a Spark-like distributed
// analytics engine over partitioned columnar tables (§4.5).
//
// The engine executes physical plans — filter, aggregate, group-by, scan,
// and broadcast equi-join — with one map task per partition and a shuffle +
// reduce stage for group-by queries, mirroring the paper's Spark deployment.
// Aggregation understands plaintext values, ASHE ciphertexts (sum bodies,
// merge identifier lists), and Paillier ciphertexts (modular products), so
// the NoEnc / Seabed / Paillier comparisons of §6 all run through the same
// code path.
//
// Execution is vectorized and two-phase. Compile (once per Run, compile.go):
// the plan binds against the partition layout and lowers to typed kernels —
// per-operator predicate kernels, per-kind accumulator kernels, a join index
// typed by key kind. Execute (batch.go): each partition runs in
// ScanChunkRows-sized batches over a reusable selection vector that the join
// probe and predicate kernels compact in place; accumulators then consume
// the survivors in tight loops over the raw column slices, with zero
// steady-state allocations on the u64 filter/sum/group-key paths. The
// pre-vectorization row-at-a-time interpreter is retained behind
// RunReference (reference.go) for differential testing and benchmarking.
//
// Tasks execute for real — the actual cryptography runs — but the reported
// server latency is computed by a list scheduler that places the measured
// task durations onto a configured number of simulated workers and adds
// modeled shuffle time (DESIGN.md §2 explains this substitution for the
// paper's physical cluster). Map-side results are compressed at the workers
// by default, the choice §4.5 arrives at.
package engine

import (
	"context"
	"math/big"
	"time"

	"seabed/internal/idlist"
	"seabed/internal/netsim"
	"seabed/internal/paillier"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// Config describes the simulated cluster.
type Config struct {
	// Workers is the number of simulated worker cores (the x-axis of
	// Figure 7). Defaults to DefaultWorkers.
	Workers int
	// RealParallelism bounds the goroutines that actually execute tasks.
	// Defaults to runtime.NumCPU().
	RealParallelism int
	// ShuffleLink models the per-worker link carrying map→reduce traffic.
	// Defaults to netsim.Shuffle.
	ShuffleLink netsim.Link
	// StragglerProb optionally makes a task a straggler with the given
	// probability (§6.2 observed GC stragglers); its simulated duration is
	// multiplied by StragglerFactor. Zero disables injection.
	StragglerProb float64
	// StragglerFactor is the slowdown applied to stragglers (default 5).
	StragglerFactor float64
	// Seed drives straggler injection and group inflation.
	Seed uint64
	// TaskSleep injects a real (wall-clock) delay at the start of every map
	// task, modeling the I/O stall of a cold HDFS read. The sleep is
	// context-aware, so a canceled query abandons it immediately — the
	// cancellation tests lean on this to make short queries observably slow.
	// Zero disables it.
	TaskSleep time.Duration
}

// DefaultWorkers is the worker count used when Config.Workers is unset. It is
// the single source of truth shared by cmd/seabed-server's -workers default
// and internal/bench's Quick configuration, so an unconfigured daemon, an
// embedded cluster, and a `go test -bench` run all simulate the same machine.
const DefaultWorkers = 16

// Cluster executes plans under a Config.
type Cluster struct {
	cfg Config
	// plans caches compiled plans by fingerprint so repeated query shapes
	// skip compilation (plancache.go).
	plans planCache
}

// NewCluster returns a Cluster, applying Config defaults.
func NewCluster(cfg Config) *Cluster {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.RealParallelism <= 0 {
		cfg.RealParallelism = 0 // resolved at run time
	}
	if cfg.ShuffleLink == (netsim.Link{}) {
		cfg.ShuffleLink = netsim.Shuffle
	}
	if cfg.StragglerFactor == 0 {
		cfg.StragglerFactor = 5
	}
	return &Cluster{cfg: cfg}
}

// Workers returns the simulated worker count.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// RegisterTable satisfies the proxy's cluster-backend contract. The
// in-process engine receives plans that reference tables by pointer, so
// there is nothing to ship; remote backends (internal/remote) use the same
// call to upload the table to a seabed-server.
func (c *Cluster) RegisterTable(ctx context.Context, ref string, t *store.Table) error {
	return ctx.Err()
}

// AppendTable satisfies the proxy's cluster-backend contract; like
// RegisterTable it is a no-op in process, where the proxy's own table
// pointer already carries the appended rows.
func (c *Cluster) AppendTable(ctx context.Context, ref string, batch *store.Table) error {
	return ctx.Err()
}

// FilterKind selects a predicate evaluation strategy.
type FilterKind int

const (
	// FilterPlainCmp compares a plaintext U64 column against a constant.
	FilterPlainCmp FilterKind = iota
	// FilterStrCmp compares a plaintext Str column against a constant
	// (equality and inequality only).
	FilterStrCmp
	// FilterDetEq compares a DET Bytes column against an encrypted
	// constant.
	FilterDetEq
	// FilterOpeCmp order-compares an OPE Bytes column against an encrypted
	// constant.
	FilterOpeCmp
	// FilterRandom selects each row independently with probability Prob,
	// the selectivity model of §6.1.
	FilterRandom
)

// Filter is one conjunct of a plan's predicate.
type Filter struct {
	Kind FilterKind
	Col  string
	Op   sqlparse.CmpOp
	// U64 is the constant for FilterPlainCmp.
	U64 uint64
	// Str is the constant for FilterStrCmp.
	Str string
	// Bytes is the encrypted constant for FilterDetEq / FilterOpeCmp.
	Bytes []byte
	// Negate inverts FilterDetEq (for <> predicates).
	Negate bool
	// Prob and Seed drive FilterRandom.
	Prob float64
	Seed uint64
}

// AggKind selects an aggregation strategy.
type AggKind int

const (
	// AggPlainSum sums a plaintext U64 column.
	AggPlainSum AggKind = iota
	// AggPlainSumSq sums the squares of a plaintext U64 column (NoEnc
	// variance; encrypted modes use a client-computed squared column).
	AggPlainSumSq
	// AggCount counts selected rows.
	AggCount
	// AggAsheSum sums an ASHE column: bodies mod 2^64 plus identifier-list
	// union.
	AggAsheSum
	// AggPaillierSum multiplies Paillier ciphertexts mod N².
	AggPaillierSum
	// AggPlainMin tracks the minimum of a plaintext column.
	AggPlainMin
	// AggPlainMax tracks the maximum of a plaintext column.
	AggPlainMax
	// AggOpeMin tracks the minimum of an OPE column using order-revealing
	// comparison.
	AggOpeMin
	// AggOpeMax tracks the maximum of an OPE column using order-revealing
	// comparison.
	AggOpeMax
	// AggPlainMedian collects a plaintext column and reports its upper
	// median.
	AggPlainMedian
	// AggOpeMedian collects an OPE column, sorts the ciphertexts by
	// order-revealing comparison (Table 6: "Median … Using OPE"), and
	// reports the middle element with its companion value.
	AggOpeMedian
)

// Agg is one aggregate of a plan.
type Agg struct {
	Kind AggKind
	Col  string
	// PK is required for AggPaillierSum.
	PK *paillier.PublicKey
	// Companion optionally names a column whose value rides along with the
	// winning row of AggOpeMin/AggOpeMax (typically the measure's ASHE
	// column, so the client can decrypt the extreme's actual value).
	Companion string
}

// GroupBy describes a plan's grouping.
type GroupBy struct {
	// Col is the grouping column (plaintext U64/Str or DET Bytes).
	Col string
	// Inflate, when > 1, appends a pseudo-random suffix in [0, Inflate) to
	// every group key, multiplying the number of groups to engage idle
	// reducers (§4.5). The client merges the inflated groups back.
	Inflate int
	// KeyBound, when > 0, declares that a plaintext U64 grouping column's
	// values lie in [0, KeyBound) — true for SPLASHE dimension columns, whose
	// values are dictionary indices the planner knows the size of. The
	// executor then sizes a dense direct-index table over key×suffix and
	// accumulates with zero hash probes. It is a sizing hint, never a
	// correctness contract: keys at or above the bound (or a bound too large
	// to index densely) fall back to the hashed path and still group
	// correctly.
	KeyBound uint64
}

// Join is a broadcast equi-join against a smaller table.
type Join struct {
	Right *store.Table
	// LeftCol and RightCol are the key columns (both plaintext or both
	// DET-encrypted).
	LeftCol, RightCol string
	// RightCols are projected from the right side and become addressable
	// by filters and aggregates.
	RightCols []string
}

// IDRange scopes a plan to the rows whose global identifiers fall in the
// inclusive interval [Lo, Hi]. A sharded deployment uses it to address one
// shard's rows: the coordinating proxy stamps each shard's plan with that
// shard's identifier range, so a plan is explicit about which slice of the
// logical table it aggregates even when a daemon's registry holds more.
type IDRange struct {
	Lo, Hi uint64
}

// Plan is a physical query plan.
type Plan struct {
	Table   *store.Table
	Join    *Join
	Filters []Filter
	Aggs    []Agg
	GroupBy *GroupBy
	// Range, when non-nil, restricts the plan to rows with identifiers in
	// [Range.Lo, Range.Hi] — the shard-scoping frame of a scatter-gather
	// deployment. Nil means every row of Table.
	Range *IDRange
	// Partial marks the plan as one shard's slice of a scatter-gather query:
	// collection-valued aggregates (medians) return their collected inputs in
	// the result instead of collapsing them, so the coordinator can merge
	// partial results from disjoint row ranges exactly (see MergeResults).
	Partial bool
	// Project switches the plan to scan mode: matching rows are returned
	// with their global identifiers and these columns' values.
	Project []string
	// Codec encodes ASHE identifier lists for transfer. Defaults to
	// idlist.Default for plain aggregation and idlist.VBDiff for group-by
	// (§4.5).
	Codec idlist.Codec
	// CompressAtDriver moves result compression from the workers to the
	// driver (the ablation of §4.5; default false = compress at workers).
	CompressAtDriver bool
}

// AggValue is one aggregate result.
type AggValue struct {
	Kind AggKind
	U64  uint64
	Ashe AsheAgg
	Pail *big.Int
	// Ope holds the winning ciphertext for AggOpeMin/AggOpeMax; ArgID is the
	// winning row's identifier, and U64 (or CompanionBytes, for byte-valued
	// companions) its companion-column value.
	Ope            []byte
	ArgID          uint64
	CompanionBytes []byte
	// MedU64 (AggPlainMedian) and MedOpe/MedIDs/MedComp (AggOpeMedian) carry
	// the uncollapsed median inputs of a Partial plan: a median cannot be
	// computed from per-shard medians, so shards return what they collected
	// and the coordinator selects over the concatenation (MergeResults).
	// Empty on non-Partial plans, where finishPartial collapses in place.
	MedU64  []uint64
	MedOpe  [][]byte
	MedIDs  []uint64
	MedComp []uint64
}

// AsheAgg is an aggregated ASHE ciphertext with its encoded identifier list.
type AsheAgg struct {
	Body uint64
	// IDs is the raw identifier list (present until encoding).
	IDs idlist.List
	// Encoded is the codec-compressed list as shipped to the client.
	Encoded []byte
}

// Group is one result group.
type Group struct {
	// Key is the group key: exactly one of KeyU64/KeyBytes/KeyStr is
	// meaningful per the grouping column's kind; Suffix is the inflation
	// suffix (−1 when inflation is off).
	KeyU64   uint64
	KeyBytes []byte
	KeyStr   string
	KeyKind  store.Kind
	Suffix   int
	Rows     uint64
	Aggs     []AggValue
}

// ScanRow is one row returned by a scan plan.
type ScanRow struct {
	ID uint64
	// U64s and Bytes hold the projected values, in Plan.Project order,
	// split by column kind (nil entries in the other slice).
	U64s  []uint64
	Bytes [][]byte
	Strs  []string
}

// Metrics reports the simulated and measured costs of a run.
type Metrics struct {
	// ServerTime is the simulated cluster makespan: map stage + shuffle +
	// reduce stage + driver merge.
	ServerTime time.Duration
	// MapTime and ReduceTime are the simulated stage makespans.
	MapTime    time.Duration
	ReduceTime time.Duration
	// ShuffleTime is the modeled map→reduce transfer time.
	ShuffleTime time.Duration
	// DriverTime is the measured driver-side merge (and compression, if
	// CompressAtDriver).
	DriverTime time.Duration
	// ShuffleBytes is the serialized size of all map-side partials.
	ShuffleBytes int
	// ResultBytes is the serialized result size sent to the client.
	ResultBytes int
	// MapTasks and ReduceTasks count scheduled tasks.
	MapTasks    int
	ReduceTasks int
	// RowsScanned and RowsSelected count input rows and filter survivors.
	RowsScanned  uint64
	RowsSelected uint64
	// TaskMin/TaskP50/TaskMax summarize the per-map-task duration
	// distribution (straggler multipliers included) instead of dropping it
	// after the makespan computation — the §6.2 skew signal, bounded to
	// three numbers per shard. Across a shard merge Min takes the minimum,
	// Max the maximum, and P50 the worst per-shard median: a conservative
	// straggler indicator that never under-reports skew.
	TaskMin time.Duration
	TaskP50 time.Duration
	TaskMax time.Duration
	// FirstChunk is the measured wall-clock time from the start of a
	// streaming run (RunStream with a sink and a projection) to the first
	// scan chunk delivered to the sink — the latency a client waits before
	// rows begin flowing, as opposed to ServerTime's full-run makespan. Zero
	// for non-streaming runs and for streams that delivered no rows. Across
	// a shard merge it takes the minimum non-zero value: the gather's caller
	// saw rows as soon as the first shard produced any.
	FirstChunk time.Duration
	// Ops is the per-operator counter block: which executor paths each
	// batch actually took. Crosses the wire from protocol v8; older peers
	// simply report zeroes (stage-level metrics above still arrive).
	Ops OpStats
}

// OpStats counts per-operator executor events — the EXPLAIN ANALYZE
// substance. Every field is bumped at batch granularity (or once per task),
// never per row, so the counters cost nothing the batch bookkeeping didn't
// already pay. Across task and shard merges every field sums except
// GroupTableLen, which takes the maximum: it reports a capacity (the largest
// open-addressed slot table any task allocated), not a flow.
type OpStats struct {
	// Batches counts row batches the vectorized loop executed.
	Batches uint64
	// DenseBatches counts batches on the all-rows-survive dense aggregate
	// path (no predicates, no join, no grouping, no projection).
	DenseBatches uint64
	// JoinProbed and JoinMatched count rows entering the broadcast-join
	// hash probe and rows that found a partner (inner-join survivors).
	JoinProbed  uint64
	JoinMatched uint64
	// GroupDense and GroupHash count group-key resolutions through the
	// dense direct index vs the open-addressed table.
	GroupDense uint64
	GroupHash  uint64
	// RadixBatches counts batches whose hash-path probes engaged radix
	// partitioning (table ≥ radixMinTable and ≥ radixBuckets misses).
	RadixBatches uint64
	// GroupSlots totals distinct group slots across tasks (occupancy);
	// GroupTableLen is the largest open-addressed table capacity seen.
	GroupSlots    uint64
	GroupTableLen uint64
	// ColumnPins counts columns pinned resident for map tasks;
	// ColumnFaults counts the pins that had to materialize the column from
	// its backing segment (store.Residency pressure attributed per query).
	ColumnPins   uint64
	ColumnFaults uint64
}

// merge folds src into o under the documented rules: sum flows, max the
// GroupTableLen capacity. Used both when a run folds task results and when
// the shard gather folds per-shard metrics.
func (o *OpStats) merge(src *OpStats) {
	o.Batches += src.Batches
	o.DenseBatches += src.DenseBatches
	o.JoinProbed += src.JoinProbed
	o.JoinMatched += src.JoinMatched
	o.GroupDense += src.GroupDense
	o.GroupHash += src.GroupHash
	o.RadixBatches += src.RadixBatches
	o.GroupSlots += src.GroupSlots
	if src.GroupTableLen > o.GroupTableLen {
		o.GroupTableLen = src.GroupTableLen
	}
	o.ColumnPins += src.ColumnPins
	o.ColumnFaults += src.ColumnFaults
}

// Result is a plan's output.
type Result struct {
	// Groups holds aggregation output; a query without GROUP BY yields one
	// group with KeyKind == store.U64 and Suffix == -1.
	Groups []Group
	// Scan holds scan-mode output.
	Scan []ScanRow
	// Metrics reports costs.
	Metrics Metrics
}
