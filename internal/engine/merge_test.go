package engine

import (
	"context"
	"reflect"
	"testing"

	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// shardSplit runs the same plan once over the whole table and once as three
// Partial, range-scoped shard slices merged with MergeResults, and asserts
// identical groups and scan rows — the unit-level version of the loopback
// acceptance test in internal/shard.
func shardSplit(t *testing.T, tbl *store.Table, mkPlan func(tbl *store.Table) *Plan) (*Result, *Result) {
	t.Helper()
	cl := NewCluster(Config{Workers: 4})

	whole := mkPlan(tbl)
	want, err := cl.Run(context.Background(), whole)
	if err != nil {
		t.Fatal(err)
	}

	subs := tbl.SplitRanges(3)
	partials := make([]*Result, len(subs))
	merged := mkPlan(tbl)
	for i, sub := range subs {
		pl := mkPlan(sub)
		pl.Partial = true
		if sub.NumRows() > 0 {
			pl.Range = &IDRange{Lo: sub.Parts[0].StartID, Hi: sub.EndID()}
		}
		if partials[i], err = cl.Run(context.Background(), pl); err != nil {
			t.Fatal(err)
		}
		// Every shard resolves the same effective codec; the merge reuses it.
		merged.Codec = pl.Codec
	}
	got, err := MergeResults(merged, partials)
	if err != nil {
		t.Fatal(err)
	}
	return got, want
}

func TestMergeResultsMatchesSingleRun(t *testing.T) {
	const rows = 999
	vals := make([]uint64, rows)
	grp := make([]uint64, rows)
	idx := make([]uint64, rows)
	for i := range vals {
		vals[i] = uint64(i*i%1000 + 1)
		grp[i] = uint64(i % 5)
		idx[i] = uint64(i + 1)
	}
	tbl, err := store.Build("t", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "g", Kind: store.U64, U64: grp},
		{Name: "idx", Kind: store.U64, U64: idx},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(tbl *store.Table) *Plan{
		"sum-count-minmax": func(tbl *store.Table) *Plan {
			return &Plan{Table: tbl, Aggs: []Agg{
				{Kind: AggPlainSum, Col: "v"},
				{Kind: AggCount},
				{Kind: AggPlainMin, Col: "v"},
				{Kind: AggPlainMax, Col: "v"},
			}}
		},
		"ashe-sum": func(tbl *store.Table) *Plan {
			return &Plan{Table: tbl, Aggs: []Agg{{Kind: AggAsheSum, Col: "v"}}}
		},
		"median": func(tbl *store.Table) *Plan {
			return &Plan{Table: tbl, Aggs: []Agg{{Kind: AggPlainMedian, Col: "v"}}}
		},
		"group-by": func(tbl *store.Table) *Plan {
			return &Plan{Table: tbl,
				Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggAsheSum, Col: "v"}},
				GroupBy: &GroupBy{Col: "g"}}
		},
		"filtered-empty-shards": func(tbl *store.Table) *Plan {
			// Only rows 1..3 match: the later shards select nothing, so the
			// merge must honor the "seen" semantics for min/max.
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "idx", Op: sqlparse.OpLe, U64: 3}},
				Aggs:    []Agg{{Kind: AggPlainMin, Col: "v"}, {Kind: AggPlainMax, Col: "v"}, {Kind: AggCount}}}
		},
		"filtered-no-match": func(tbl *store.Table) *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 1_000_000}},
				Aggs:    []Agg{{Kind: AggPlainMin, Col: "v"}, {Kind: AggCount}}}
		},
		"scan": func(tbl *store.Table) *Plan {
			return &Plan{Table: tbl,
				Filters: []Filter{{Kind: FilterPlainCmp, Col: "g", Op: sqlparse.OpEq, U64: 2}},
				Project: []string{"v"}}
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			got, want := shardSplit(t, tbl, mk)
			if !reflect.DeepEqual(got.Groups, want.Groups) {
				t.Errorf("merged groups differ:\n got %+v\nwant %+v", got.Groups, want.Groups)
			}
			if !reflect.DeepEqual(got.Scan, want.Scan) {
				t.Errorf("merged scan differs:\n got %+v\nwant %+v", got.Scan, want.Scan)
			}
			if got.Metrics.RowsScanned != want.Metrics.RowsScanned {
				t.Errorf("rows scanned = %d, want %d", got.Metrics.RowsScanned, want.Metrics.RowsScanned)
			}
		})
	}
}

// TestIDRangeScoping pins the shard frame: a range-scoped plan aggregates
// only the rows inside [Lo, Hi], skipping partitions wholly outside.
func TestIDRangeScoping(t *testing.T) {
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = 1
	}
	tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: vals}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(Config{Workers: 2})
	res, err := cl.Run(context.Background(), &Plan{Table: tbl,
		Range: &IDRange{Lo: 11, Hi: 40},
		Aggs:  []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Aggs[0].U64; got != 30 {
		t.Fatalf("scoped sum = %d, want 30", got)
	}
	if res.Metrics.RowsScanned != 30 {
		t.Fatalf("scoped rows scanned = %d, want 30", res.Metrics.RowsScanned)
	}
	// An inverted range selects nothing but still yields the zero group.
	res, err = cl.Run(context.Background(), &Plan{Table: tbl,
		Range: &IDRange{Lo: 50, Hi: 10},
		Aggs:  []Agg{{Kind: AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Aggs[0].U64 != 0 || res.Metrics.RowsScanned != 0 {
		t.Fatalf("inverted range scanned %d rows, counted %d", res.Metrics.RowsScanned, res.Groups[0].Aggs[0].U64)
	}
}
