package engine

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"seabed/internal/idlist"
)

// Plan-compile cache. Compilation (compile.go) binds a plan against its
// table's layout, builds the broadcast-join index, and lowers filters and
// aggregates to typed kernels — work that is identical every time the same
// query shape runs against the same table. A proxy serving an ad-analytics
// workload issues the same handful of shapes continuously (§6.5), so the
// cluster keys compiled plans by a fingerprint of everything compilation
// and execution read from the plan, and reuses the compiled artifact on a
// hit. The big win is the join index: rebuilding a right-table hash per
// query is the dominant compile cost.
//
// Correctness rests on two properties. First, a compiledPlan is immutable
// after compile — map tasks only read it — so sharing one across
// concurrent runs is safe. Second, the fingerprint covers table identity
// by pointer: tables grow copy-on-write everywhere (server appends,
// coordinator snapshots), so a table that gained rows is a different
// pointer and misses the cache, and a cached entry can never serve stale
// contents. The retained reference evaluator bypasses the cache, keeping
// the differential suite an independent oracle.

// planCacheMax bounds the cache. Workloads with more live shapes than this
// churn the map; when an insert would exceed the bound the cache resets
// wholesale — crude, but a reset costs one recompile per shape and keeps
// the steady state allocation-free, where an LRU would cost bookkeeping on
// every hit. The bound also limits how much table memory retired entries
// can pin: an entry holds its plan's flattened right-side join columns.
const planCacheMax = 128

// planCache is the cluster's fingerprint-keyed compiled-plan cache.
type planCache struct {
	mu     sync.Mutex
	plans  map[string]*compiledPlan
	hits   atomic.Uint64
	misses atomic.Uint64
}

// lookup returns the cached compilation for key, counting the outcome.
func (pc *planCache) lookup(key string) (*compiledPlan, bool) {
	pc.mu.Lock()
	cp, ok := pc.plans[key]
	pc.mu.Unlock()
	if ok {
		pc.hits.Add(1)
		return cp, true
	}
	pc.misses.Add(1)
	return nil, false
}

// store inserts a compilation, resetting the cache at the bound.
func (pc *planCache) store(key string, cp *compiledPlan) {
	pc.mu.Lock()
	if pc.plans == nil || len(pc.plans) >= planCacheMax {
		pc.plans = make(map[string]*compiledPlan, planCacheMax)
	}
	pc.plans[key] = cp
	pc.mu.Unlock()
}

// PlanCacheStats reports the cluster's compiled-plan cache hit/miss
// counters (surfaced by server.Stats and the SIGUSR1 metrics dump).
func (c *Cluster) PlanCacheStats() (hits, misses uint64) {
	return c.plans.hits.Load(), c.plans.misses.Load()
}

// compiled returns a compiledPlan for pl, from cache when an identical
// shape ran before. Compilation runs against a private clone of the plan:
// the kernels close over the plan's filter and aggregate specs, and a
// cached entry must stay valid even if the caller mutates its Plan in
// place after Run returns (the fingerprint would stop matching the mutated
// plan, but the cached entry still serves the original shape).
func (c *Cluster) compiled(pl *Plan, codec idlist.Codec) (*compiledPlan, error) {
	key := pl.fingerprint(codec)
	if cp, ok := c.plans.lookup(key); ok {
		return cp, nil
	}
	clone := *pl
	clone.Filters = append([]Filter(nil), pl.Filters...)
	for i := range clone.Filters {
		// The element copy shares the Bytes backing array; the DET/OPE
		// kernels close over it, so a caller reusing its ciphertext buffer
		// would rewrite the cached constant in place. Copy the bytes too.
		clone.Filters[i].Bytes = append([]byte(nil), clone.Filters[i].Bytes...)
	}
	clone.Aggs = append([]Agg(nil), pl.Aggs...)
	clone.Project = append([]string(nil), pl.Project...)
	if pl.Join != nil {
		j := *pl.Join
		j.RightCols = append([]string(nil), j.RightCols...)
		clone.Join = &j
	}
	if pl.GroupBy != nil {
		g := *pl.GroupBy
		clone.GroupBy = &g
	}
	if pl.Range != nil {
		r := *pl.Range
		clone.Range = &r
	}
	cp, err := clone.compile(c.cfg.Seed, codec)
	if err != nil {
		return nil, err
	}
	c.plans.store(key, cp)
	return cp, nil
}

// fingerprint serializes everything compile and the batch executor read
// from the plan into a cache key. Tables and Paillier keys enter by
// pointer identity (copy-on-write growth and per-proxy keys make the
// pointer the value's identity); every scalar field enters by value. Two
// plans with equal fingerprints are interchangeable for execution: a
// cached compilation of one runs the other with identical results.
func (pl *Plan) fingerprint(codec idlist.Codec) string {
	var b []byte
	ptr := func(p any) {
		b = fmt.Appendf(b, "%p|", p)
	}
	u64 := func(v uint64) {
		b = binary.AppendUvarint(b, v)
	}
	str := func(s string) {
		u64(uint64(len(s)))
		b = append(b, s...)
	}
	ptr(pl.Table)
	if pl.Join != nil {
		ptr(pl.Join.Right)
		str(pl.Join.LeftCol)
		str(pl.Join.RightCol)
		u64(uint64(len(pl.Join.RightCols)))
		for _, cname := range pl.Join.RightCols {
			str(cname)
		}
	} else {
		b = append(b, 'n')
	}
	u64(uint64(len(pl.Filters)))
	for i := range pl.Filters {
		f := &pl.Filters[i]
		u64(uint64(f.Kind))
		str(f.Col)
		u64(uint64(f.Op))
		u64(f.U64)
		str(f.Str)
		str(string(f.Bytes))
		if f.Negate {
			b = append(b, '!')
		}
		b = fmt.Appendf(b, "%v|", f.Prob)
		u64(f.Seed)
	}
	u64(uint64(len(pl.Aggs)))
	for i := range pl.Aggs {
		a := &pl.Aggs[i]
		u64(uint64(a.Kind))
		str(a.Col)
		str(a.Companion)
		if a.PK != nil {
			ptr(a.PK)
		}
	}
	if pl.GroupBy != nil {
		str(pl.GroupBy.Col)
		u64(uint64(pl.GroupBy.Inflate))
		u64(pl.GroupBy.KeyBound)
	} else {
		b = append(b, 'n')
	}
	u64(uint64(len(pl.Project)))
	for _, cname := range pl.Project {
		str(cname)
	}
	if pl.Range != nil {
		u64(pl.Range.Lo)
		u64(pl.Range.Hi)
	} else {
		b = append(b, 'n')
	}
	if pl.Partial {
		b = append(b, 'p')
	}
	if pl.CompressAtDriver {
		b = append(b, 'd')
	}
	str(codec.Name())
	return string(b)
}
