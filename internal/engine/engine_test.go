package engine

import (
	"context"
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"seabed/internal/ashe"
	"seabed/internal/det"
	"seabed/internal/ope"
	"seabed/internal/paillier"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

var (
	asheKey = ashe.MustNewKey([]byte("0123456789abcdef"))
	detKey  = det.MustNewKey([]byte("0123456789abcdef"))
	opeKey  = ope.MustNewKey([]byte("0123456789abcdef"))
)

// fixture builds a table with plain, ASHE, DET, and OPE views of the same
// data: value v_i = i%100, dim d_i = i%7.
func fixture(t *testing.T, rows, parts int) (*store.Table, []uint64, []uint64) {
	t.Helper()
	vals := make([]uint64, rows)
	dims := make([]uint64, rows)
	asheCol := make([]uint64, rows)
	detCol := make([][]byte, rows)
	opeCol := make([][]byte, rows)
	for i := 0; i < rows; i++ {
		vals[i] = uint64(i % 100)
		dims[i] = uint64(i % 7)
		asheCol[i] = asheKey.EncryptBody(vals[i], uint64(i)+1)
		detCol[i] = detKey.EncryptU64(dims[i])
		opeCol[i] = opeKey.Encrypt(vals[i])
	}
	tbl, err := store.Build("t", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "d", Kind: store.U64, U64: dims},
		{Name: "v_ashe", Kind: store.U64, U64: asheCol},
		{Name: "d_det", Kind: store.Bytes, Bytes: detCol},
		{Name: "v_ope", Kind: store.Bytes, Bytes: opeCol},
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, vals, dims
}

func cluster() *Cluster {
	return NewCluster(Config{Workers: 4})
}

func TestPlainSum(t *testing.T) {
	tbl, vals, _ := fixture(t, 1000, 7)
	res, err := cluster().Run(context.Background(), &Plan{Table: tbl, Aggs: []Agg{{Kind: AggPlainSum, Col: "v"}}})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, v := range vals {
		want += v
	}
	if got := res.Groups[0].Aggs[0].U64; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if res.Metrics.RowsScanned != 1000 || res.Metrics.RowsSelected != 1000 {
		t.Fatalf("metrics rows: %+v", res.Metrics)
	}
}

func TestAsheSumDecrypts(t *testing.T) {
	tbl, vals, _ := fixture(t, 1000, 7)
	res, err := cluster().Run(context.Background(), &Plan{Table: tbl, Aggs: []Agg{{Kind: AggAsheSum, Col: "v_ashe"}}})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, v := range vals {
		want += v
	}
	ag := res.Groups[0].Aggs[0].Ashe
	got := asheKey.Decrypt(ashe.Ciphertext{Body: ag.Body, IDs: ag.IDs})
	if got != want {
		t.Fatalf("decrypted sum = %d, want %d", got, want)
	}
	// All rows selected and ids contiguous: the final list must be 1 range.
	if ag.IDs.NumRanges() != 1 {
		t.Fatalf("id ranges = %d, want 1", ag.IDs.NumRanges())
	}
	if len(ag.Encoded) == 0 {
		t.Fatal("missing encoded id list")
	}
}

func TestDetFilter(t *testing.T) {
	tbl, vals, dims := fixture(t, 1000, 7)
	target := uint64(3)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterDetEq, Col: "d_det", Bytes: detKey.EncryptU64(target)}},
		Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}, {Kind: AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want, wantN uint64
	for i, v := range vals {
		if dims[i] == target {
			want += v
			wantN++
		}
	}
	ag := res.Groups[0].Aggs[0].Ashe
	if got := asheKey.Decrypt(ashe.Ciphertext{Body: ag.Body, IDs: ag.IDs}); got != want {
		t.Fatalf("filtered sum = %d, want %d", got, want)
	}
	if res.Groups[0].Aggs[1].U64 != wantN {
		t.Fatalf("count = %d, want %d", res.Groups[0].Aggs[1].U64, wantN)
	}
}

func TestDetFilterNegate(t *testing.T) {
	tbl, _, dims := fixture(t, 500, 3)
	target := uint64(2)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterDetEq, Col: "d_det", Bytes: detKey.EncryptU64(target), Negate: true}},
		Aggs:    []Agg{{Kind: AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, d := range dims {
		if d != target {
			want++
		}
	}
	if got := res.Groups[0].Aggs[0].U64; got != want {
		t.Fatalf("negated count = %d, want %d", got, want)
	}
}

func TestOpeFilter(t *testing.T) {
	tbl, vals, _ := fixture(t, 1000, 7)
	threshold := uint64(42)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterOpeCmp, Col: "v_ope", Op: sqlparse.OpGt, Bytes: opeKey.Encrypt(threshold)}},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, v := range vals {
		if v > threshold {
			want += v
		}
	}
	if got := res.Groups[0].Aggs[0].U64; got != want {
		t.Fatalf("ope-filtered sum = %d, want %d", got, want)
	}
}

func TestPlainCmpOperators(t *testing.T) {
	tbl, vals, _ := fixture(t, 300, 2)
	for _, op := range []sqlparse.CmpOp{sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe} {
		res, err := cluster().Run(context.Background(), &Plan{
			Table:   tbl,
			Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: op, U64: 50}},
			Aggs:    []Agg{{Kind: AggCount}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for _, v := range vals {
			if cmpMatch(op, cmpU64(v, 50)) {
				want++
			}
		}
		if got := res.Groups[0].Aggs[0].U64; got != want {
			t.Fatalf("op %v: count = %d, want %d", op, got, want)
		}
	}
}

func TestRandomSelectivity(t *testing.T) {
	tbl, _, _ := fixture(t, 20000, 5)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterRandom, Prob: 0.5, Seed: 99}},
		Aggs:    []Agg{{Kind: AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Groups[0].Aggs[0].U64
	if got < 9500 || got > 10500 {
		t.Fatalf("sel=50%% selected %d of 20000", got)
	}
	// Determinism.
	res2, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterRandom, Prob: 0.5, Seed: 99}},
		Aggs:    []Agg{{Kind: AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Groups[0].Aggs[0].U64 != got {
		t.Fatal("random selection is not deterministic for a fixed seed")
	}
	// Prob 1 selects everything.
	res3, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterRandom, Prob: 1.0, Seed: 99}},
		Aggs:    []Agg{{Kind: AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Groups[0].Aggs[0].U64 != 20000 {
		t.Fatalf("sel=100%% selected %d of 20000", res3.Groups[0].Aggs[0].U64)
	}
}

func TestGroupByPlain(t *testing.T) {
	tbl, vals, dims := fixture(t, 1000, 7)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		GroupBy: &GroupBy{Col: "d"},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}, {Kind: AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(res.Groups))
	}
	want := map[uint64]uint64{}
	for i, v := range vals {
		want[dims[i]] += v
	}
	for _, g := range res.Groups {
		if g.Aggs[0].U64 != want[g.KeyU64] {
			t.Fatalf("group %d sum = %d, want %d", g.KeyU64, g.Aggs[0].U64, want[g.KeyU64])
		}
	}
}

func TestGroupByDetKeysWithAshe(t *testing.T) {
	tbl, vals, dims := fixture(t, 1000, 7)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		GroupBy: &GroupBy{Col: "d_det"},
		Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(res.Groups))
	}
	want := map[uint64]uint64{}
	for i, v := range vals {
		want[dims[i]] += v
	}
	for _, g := range res.Groups {
		dim, err := detKey.DecryptU64(g.KeyBytes)
		if err != nil {
			t.Fatalf("decrypt group key: %v", err)
		}
		ag := g.Aggs[0].Ashe
		got := asheKey.Decrypt(ashe.Ciphertext{Body: ag.Body, IDs: ag.IDs})
		if got != want[dim] {
			t.Fatalf("group %d sum = %d, want %d", dim, got, want[dim])
		}
	}
}

func TestGroupInflation(t *testing.T) {
	tbl, vals, dims := fixture(t, 1000, 7)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		GroupBy: &GroupBy{Col: "d", Inflate: 4},
		Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) <= 7 || len(res.Groups) > 28 {
		t.Fatalf("inflated groups = %d, want in (7, 28]", len(res.Groups))
	}
	// Client-side de-inflation must recover exact sums.
	want := map[uint64]uint64{}
	for i, v := range vals {
		want[dims[i]] += v
	}
	got := map[uint64]uint64{}
	for _, g := range res.Groups {
		if g.Suffix < 0 {
			t.Fatal("inflated group missing suffix")
		}
		got[g.KeyU64] += g.Aggs[0].U64
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("de-inflated group %d = %d, want %d", k, got[k], w)
		}
	}
}

func TestPaillierSum(t *testing.T) {
	sk, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sk.NewMaskPool(rand.Reader, 16)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 300
	vals := make([]uint64, rows)
	cts := make([][]byte, rows)
	var want uint64
	for i := range vals {
		vals[i] = uint64(i * 3)
		want += vals[i]
		cts[i] = sk.Marshal(pool.EncryptU64(vals[i]))
	}
	tbl, err := store.Build("p", []store.Column{{Name: "v_pail", Kind: store.Bytes, Bytes: cts}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster().Run(context.Background(), &Plan{Table: tbl, Aggs: []Agg{{Kind: AggPaillierSum, Col: "v_pail", PK: &sk.PublicKey}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.DecryptU64(res.Groups[0].Aggs[0].Pail); got != want {
		t.Fatalf("paillier sum = %d, want %d", got, want)
	}
}

func TestMinMax(t *testing.T) {
	tbl, vals, _ := fixture(t, 500, 3)
	res, err := cluster().Run(context.Background(), &Plan{Table: tbl, Aggs: []Agg{
		{Kind: AggPlainMin, Col: "v"},
		{Kind: AggPlainMax, Col: "v"},
		{Kind: AggOpeMin, Col: "v_ope"},
		{Kind: AggOpeMax, Col: "v_ope"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var min, max = vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	g := res.Groups[0]
	if g.Aggs[0].U64 != min || g.Aggs[1].U64 != max {
		t.Fatalf("plain min/max = %d/%d, want %d/%d", g.Aggs[0].U64, g.Aggs[1].U64, min, max)
	}
	// OPE extremes must compare equal to the encryption of the true extremes.
	if ope.Compare(g.Aggs[2].Ope, opeKey.Encrypt(min)) != 0 {
		t.Fatal("ope min mismatch")
	}
	if ope.Compare(g.Aggs[3].Ope, opeKey.Encrypt(max)) != 0 {
		t.Fatal("ope max mismatch")
	}
}

func TestScan(t *testing.T) {
	tbl, vals, _ := fixture(t, 400, 4)
	res, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 90}},
		Project: []string{"v", "v_ashe"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, v := range vals {
		if v > 90 {
			want++
		}
	}
	if len(res.Scan) != want {
		t.Fatalf("scan rows = %d, want %d", len(res.Scan), want)
	}
	for _, row := range res.Scan {
		// Per-row ASHE decryption with the row id must match the plain value.
		if got := asheKey.DecryptBody(row.U64s[1], row.ID); got != row.U64s[0] {
			t.Fatalf("row %d: ashe %d != plain %d", row.ID, got, row.U64s[0])
		}
	}
}

func TestJoin(t *testing.T) {
	// Left: visits(url_det, rev); right: pages(url_det, rank).
	const pages, visits = 50, 600
	rng := mrand.New(mrand.NewSource(4))
	purls := make([][]byte, pages)
	ranks := make([]uint64, pages)
	for i := 0; i < pages; i++ {
		purls[i] = detKey.EncryptString(fmt.Sprintf("url%d", i))
		ranks[i] = uint64(rng.Intn(1000))
	}
	right, err := store.Build("pages", []store.Column{
		{Name: "url_det", Kind: store.Bytes, Bytes: purls},
		{Name: "rank", Kind: store.U64, U64: ranks},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	vurls := make([][]byte, visits)
	revs := make([]uint64, visits)
	urlIdx := make([]int, visits)
	for i := 0; i < visits; i++ {
		// Some visits reference unknown pages and must drop.
		idx := rng.Intn(pages + 10)
		urlIdx[i] = idx
		if idx < pages {
			vurls[i] = purls[idx]
		} else {
			vurls[i] = detKey.EncryptString(fmt.Sprintf("missing%d", idx))
		}
		revs[i] = uint64(rng.Intn(100))
	}
	left, err := store.Build("visits", []store.Column{
		{Name: "url_det", Kind: store.Bytes, Bytes: vurls},
		{Name: "rev", Kind: store.U64, U64: revs},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster().Run(context.Background(), &Plan{
		Table: left,
		Join:  &Join{Right: right, LeftCol: "url_det", RightCol: "url_det", RightCols: []string{"rank"}},
		Aggs: []Agg{
			{Kind: AggPlainSum, Col: "rev"},
			{Kind: AggPlainSum, Col: "rank"}, // right-side column
			{Kind: AggCount},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantRev, wantRank, wantN uint64
	for i := 0; i < visits; i++ {
		if urlIdx[i] < pages {
			wantRev += revs[i]
			wantRank += ranks[urlIdx[i]]
			wantN++
		}
	}
	g := res.Groups[0]
	if g.Aggs[0].U64 != wantRev || g.Aggs[1].U64 != wantRank || g.Aggs[2].U64 != wantN {
		t.Fatalf("join aggs = %d/%d/%d, want %d/%d/%d",
			g.Aggs[0].U64, g.Aggs[1].U64, g.Aggs[2].U64, wantRev, wantRank, wantN)
	}
}

func TestSimulatedScalingImprovesWithWorkers(t *testing.T) {
	tbl, _, _ := fixture(t, 200000, 32)
	// The OPE filter keeps each map task's measured duration in the
	// milliseconds: the vectorized executor runs a bare ASHE sum over 6k
	// rows in microseconds, where goroutine-scheduling jitter would drown
	// the simulated-scaling signal. Each cluster also gets one untimed
	// warmup run so cold caches don't skew the compared measurements.
	run := func(workers int) *Result {
		plan := func() *Plan {
			return &Plan{
				Table:   tbl,
				Filters: []Filter{{Kind: FilterOpeCmp, Col: "v_ope", Op: sqlparse.OpGe, Bytes: opeKey.Encrypt(0)}},
				Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}},
			}
		}
		c := NewCluster(Config{Workers: workers})
		if _, err := c.Run(context.Background(), plan()); err != nil { // warmup
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), plan())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	t1 := run(1).Metrics.MapTime
	t8 := run(8).Metrics.MapTime
	if t8 >= t1 {
		t.Fatalf("8 workers (%v) not faster than 1 (%v)", t8, t1)
	}
	// Demand at least 2x: per-task fixed costs (and race-detector
	// instrumentation, when enabled) keep the ideal 8x out of reach.
	if float64(t1)/float64(t8) < 2 {
		t.Fatalf("speedup %.1fx too small for 8 workers over 32 tasks", float64(t1)/float64(t8))
	}
}

func TestStragglerInjection(t *testing.T) {
	tbl, _, _ := fixture(t, 50000, 16)
	// An OPE filter keeps per-task durations well above timer noise — the
	// vectorized executor finishes a plain sum over 3k rows in microseconds,
	// too fast to compare two separately-measured runs reliably.
	plan := func() *Plan {
		return &Plan{
			Table:   tbl,
			Filters: []Filter{{Kind: FilterOpeCmp, Col: "v_ope", Op: sqlparse.OpGe, Bytes: opeKey.Encrypt(0)}},
			Aggs:    []Agg{{Kind: AggPlainSum, Col: "v"}},
		}
	}
	// One untimed warmup per cluster: the baseline otherwise measures cold
	// caches while the straggler run measures warm ones, which can eat the
	// injected 10x.
	baseCluster := NewCluster(Config{Workers: 16, Seed: 1})
	if _, err := baseCluster.Run(context.Background(), plan()); err != nil {
		t.Fatal(err)
	}
	base, err := baseCluster.Run(context.Background(), plan())
	if err != nil {
		t.Fatal(err)
	}
	slowCluster := NewCluster(Config{Workers: 16, Seed: 1, StragglerProb: 1, StragglerFactor: 10})
	if _, err := slowCluster.Run(context.Background(), plan()); err != nil {
		t.Fatal(err)
	}
	slow, err := slowCluster.Run(context.Background(), plan())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Metrics.MapTime < base.Metrics.MapTime*5 {
		t.Fatalf("stragglers did not slow the stage: %v vs %v", slow.Metrics.MapTime, base.Metrics.MapTime)
	}
}

func TestCompressAtDriverAblation(t *testing.T) {
	tbl, _, _ := fixture(t, 50000, 8)
	worker, err := cluster().Run(context.Background(), &Plan{
		Table:   tbl,
		Filters: []Filter{{Kind: FilterRandom, Prob: 0.5, Seed: 5}},
		Aggs:    []Agg{{Kind: AggAsheSum, Col: "v_ashe"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	driver, err := cluster().Run(context.Background(), &Plan{
		Table:            tbl,
		Filters:          []Filter{{Kind: FilterRandom, Prob: 0.5, Seed: 5}},
		Aggs:             []Agg{{Kind: AggAsheSum, Col: "v_ashe"}},
		CompressAtDriver: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Raw ranges on the wire are bigger than compressed lists.
	if driver.Metrics.ShuffleBytes <= worker.Metrics.ShuffleBytes {
		t.Fatalf("driver-compression shuffle %d should exceed worker-compression %d",
			driver.Metrics.ShuffleBytes, worker.Metrics.ShuffleBytes)
	}
	// Both must decrypt identically.
	wa, da := worker.Groups[0].Aggs[0].Ashe, driver.Groups[0].Aggs[0].Ashe
	if asheKey.Decrypt(ashe.Ciphertext{Body: wa.Body, IDs: wa.IDs}) != asheKey.Decrypt(ashe.Ciphertext{Body: da.Body, IDs: da.IDs}) {
		t.Fatal("ablation changed the result")
	}
}

func TestPlanValidation(t *testing.T) {
	tbl, _, _ := fixture(t, 10, 1)
	cases := []*Plan{
		{},
		{Table: tbl},
		{Table: tbl, Project: []string{"v"}, Aggs: []Agg{{Kind: AggCount}}},
		{Table: tbl, Aggs: []Agg{{Kind: AggPaillierSum, Col: "v"}}},
		{Table: tbl, Aggs: []Agg{{Kind: AggPlainSum, Col: "nope"}}},
		{Table: tbl, Aggs: []Agg{{Kind: AggCount}}, GroupBy: &GroupBy{Col: "nope"}},
		{Table: tbl, Aggs: []Agg{{Kind: AggCount}}, Filters: []Filter{{Kind: FilterPlainCmp, Col: "nope"}}},
		// Join key kinds must match: the typed join index can never pair a
		// u64 left key with a bytes right key, so the plan is rejected
		// instead of silently joining nothing.
		{Table: tbl, Aggs: []Agg{{Kind: AggCount}},
			Join: &Join{Right: tbl, LeftCol: "v", RightCol: "d_det"}},
	}
	for i, p := range cases {
		if _, err := cluster().Run(context.Background(), p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestMakespan(t *testing.T) {
	d := func(ms ...int) []time.Duration {
		out := make([]time.Duration, len(ms))
		for i, m := range ms {
			out[i] = time.Duration(m) * time.Millisecond
		}
		return out
	}
	if got := makespan(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %v", got)
	}
	if got := makespan(d(10, 10, 10, 10), 4); got != 10*time.Millisecond {
		t.Fatalf("parallel makespan = %v, want 10ms", got)
	}
	if got := makespan(d(10, 10, 10, 10), 1); got != 40*time.Millisecond {
		t.Fatalf("serial makespan = %v, want 40ms", got)
	}
	if got := makespan(d(10, 10, 10), 2); got != 20*time.Millisecond {
		t.Fatalf("2-worker makespan = %v, want 20ms", got)
	}
}
