package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the daemon's debug plane as an http.Handler, served
// from seabed-server's -debug-addr listener (separate from the data port, so
// scrapes and profiles never contend with the wire protocol's framing):
//
//	/metrics       Prometheus text exposition of the server's registry
//	               (request latency histograms, WAL fsync latency, plan-cache
//	               hits, recovery cost, byte counters)
//	/stats         the same Stats snapshot the SIGUSR1 dump renders, as JSON
//	/debug/queries       live-query registry + trace flight recorder (JSON)
//	/debug/queries/kill  cancel an in-flight run: ?trace=<16-hex trace ID>
//	/debug/pprof/  the standard Go profiles
//
// The handler holds no state of its own — every request reads the live
// registry or a fresh Stats snapshot — so it is safe to serve before, during,
// and after Serve.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obsReg.WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats()) //nolint:errcheck // best-effort debug endpoint
	})
	mux.HandleFunc("/debug/queries", s.queries.ServeQueries)
	mux.HandleFunc("/debug/queries/kill", s.queries.ServeKill)
	// net/http/pprof registers on DefaultServeMux at import; route the same
	// handlers on this private mux instead so the debug listener works even
	// when the embedding process never touches the default mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
