// Package server hosts an engine.Cluster behind a TCP listener speaking the
// internal/wire protocol, turning the untrusted engine into a standalone
// daemon (cmd/seabed-server) the trusted proxy reaches over the network —
// the deployment split of the paper's §4: the proxy and its keys stay on the
// client side, the server only ever sees ciphertexts, physical plans, and
// encrypted results.
//
// Each accepted connection is served by its own goroutine; requests on one
// connection are processed in order, and clients that want parallelism open
// multiple connections (internal/remote pools them). The table registry is
// shared across connections and guarded for concurrent registration and
// plan execution.
package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"seabed/internal/engine"
	"seabed/internal/store"
	"seabed/internal/wire"
)

// Server owns a cluster, a table registry, and a listener.
type Server struct {
	cluster *engine.Cluster
	// Logf, when non-nil, receives one line per connection event and
	// request-level failure. Set it before Serve.
	Logf func(format string, args ...any)
	// ShardIndex/ShardCount declare this daemon's identity in a sharded
	// deployment (the -shard i/n flag); they cross in the Welcome frame so
	// clients can verify their address list matches the fleet's layout at
	// connect time. ShardCount 0 declares none. Set them before Serve.
	ShardIndex, ShardCount int

	mu     sync.RWMutex
	tables map[string]*store.Table

	lnMu   sync.Mutex
	ln     net.Listener
	active map[net.Conn]struct{}
	conns  sync.WaitGroup

	// counters behind Stats (cmd/seabed-server's -metrics flag and the shard
	// balance assertions of the loopback tests).
	connsTotal atomic.Uint64
	registers  atomic.Uint64
	appends    atomic.Uint64
	runs       atomic.Uint64
	reqErrors  atomic.Uint64
}

// TableStat describes one registered table for monitoring.
type TableStat struct {
	Ref   string
	Rows  uint64
	Parts int
}

// Stats is a point-in-time snapshot of a server's activity: connection and
// per-request counters plus the size of every registered table. A sharded
// deployment compares Rows across daemons to check shard balance.
type Stats struct {
	ConnsTotal  uint64
	ConnsActive int
	Registers   uint64
	Appends     uint64
	Runs        uint64
	Errors      uint64
	Tables      []TableStat
}

// Stats returns a snapshot of the server's counters and table registry,
// with tables sorted by ref.
func (s *Server) Stats() Stats {
	st := Stats{
		ConnsTotal: s.connsTotal.Load(),
		Registers:  s.registers.Load(),
		Appends:    s.appends.Load(),
		Runs:       s.runs.Load(),
		Errors:     s.reqErrors.Load(),
	}
	s.lnMu.Lock()
	st.ConnsActive = len(s.active)
	s.lnMu.Unlock()
	s.mu.RLock()
	for ref, t := range s.tables {
		st.Tables = append(st.Tables, TableStat{Ref: ref, Rows: t.NumRows(), Parts: len(t.Parts)})
	}
	s.mu.RUnlock()
	sort.Slice(st.Tables, func(a, b int) bool { return st.Tables[a].Ref < st.Tables[b].Ref })
	return st
}

// String renders the snapshot as one human-readable block, the format the
// -metrics flag prints on SIGUSR1.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns=%d active=%d registers=%d appends=%d runs=%d errors=%d",
		st.ConnsTotal, st.ConnsActive, st.Registers, st.Appends, st.Runs, st.Errors)
	for _, t := range st.Tables {
		fmt.Fprintf(&b, "\n  table %q: %d rows, %d partitions", t.Ref, t.Rows, t.Parts)
	}
	return b.String()
}

// New returns a server executing plans on the given cluster.
func New(cluster *engine.Cluster) *Server {
	return &Server{
		cluster: cluster,
		tables:  make(map[string]*store.Table),
		active:  make(map[net.Conn]struct{}),
	}
}

// RegisterTable adds or replaces a table in the registry. The wire path uses
// it for MsgRegister frames; embedders can call it directly to preload
// tables.
func (s *Server) RegisterTable(ref string, t *store.Table) error {
	if ref == "" {
		return errors.New("server: empty table ref")
	}
	if t == nil {
		return errors.New("server: nil table")
	}
	s.mu.Lock()
	s.tables[ref] = t
	s.mu.Unlock()
	return nil
}

// TableRefs returns the registered refs, for monitoring.
func (s *Server) TableRefs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := make([]string, 0, len(s.tables))
	for ref := range s.tables {
		refs = append(refs, ref)
	}
	return refs
}

// lookup resolves a ref to its table.
func (s *Server) lookup(ref string) (*store.Table, error) {
	s.mu.RLock()
	t := s.tables[ref]
	s.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("server: unknown table ref %q (register it first)", ref)
	}
	return t, nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after a clean
// Close and the accept error otherwise. Close detaches the listener from
// the server before closing it, so "is this accept failure a clean
// shutdown" is answered by whether s.ln still points at ln — not by a flag
// Close could reset before this goroutine gets to look at it.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lnMu.Lock()
			detached := s.ln != ln
			s.lnMu.Unlock()
			if detached {
				return nil
			}
			return err
		}
		s.lnMu.Lock()
		if s.ln != ln { // Close raced the accept; next Accept returns its error
			s.lnMu.Unlock()
			conn.Close()
			continue
		}
		s.active[conn] = struct{}{}
		s.conns.Add(1)
		s.connsTotal.Add(1)
		s.lnMu.Unlock()
		go func() {
			defer func() {
				s.lnMu.Lock()
				delete(s.active, conn)
				s.lnMu.Unlock()
				s.conns.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting connections, closes every open connection (clients
// keep idle pooled connections open indefinitely, so there is nothing to
// drain — an in-flight request sees its socket close), and waits for the
// connection goroutines to exit. Registered tables survive Close; a new
// Serve continues with the same registry.
func (s *Server) Close() error {
	s.lnMu.Lock()
	ln := s.ln
	s.ln = nil
	for conn := range s.active {
		conn.Close() //nolint:errcheck // racing the handler's own close
	}
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.conns.Wait()
	return err
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// serveConn runs one connection: handshake, then a request/response loop.
// Protocol-level failures (bad frames, wrong version) drop the connection;
// request-level failures (unknown ref, plan errors) answer MsgError and keep
// it open.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	peer := conn.RemoteAddr()

	t, payload, err := wire.ReadFrame(conn)
	if err != nil {
		s.logf("%v: handshake read: %v", peer, err)
		return
	}
	if t != wire.MsgHello {
		s.logf("%v: expected hello, got %v", peer, t)
		return
	}
	version, err := wire.DecodeHello(payload)
	if err != nil {
		s.logf("%v: %v", peer, err)
		return
	}
	if version != wire.Version {
		wire.WriteFrame(conn, wire.MsgError, //nolint:errcheck // closing anyway
			wire.EncodeError(fmt.Sprintf("server: protocol version %d, want %d", version, wire.Version)))
		s.logf("%v: version mismatch (%d)", peer, version)
		return
	}
	if err := wire.WriteFrame(conn, wire.MsgWelcome, wire.EncodeWelcome(s.cluster.Workers(), s.ShardIndex, s.ShardCount)); err != nil {
		s.logf("%v: handshake write: %v", peer, err)
		return
	}
	s.logf("%v: connected (protocol v%d)", peer, version)

	for {
		t, payload, err := wire.ReadFrame(conn)
		if err != nil {
			s.logf("%v: disconnected: %v", peer, err)
			return
		}
		var respType wire.MsgType
		var resp []byte
		switch t {
		case wire.MsgRegister:
			s.registers.Add(1)
			respType, resp = s.handleRegister(payload)
		case wire.MsgAppend:
			s.appends.Add(1)
			respType, resp = s.handleAppend(payload)
		case wire.MsgRun:
			s.runs.Add(1)
			respType, resp = s.handleRun(payload)
		default:
			respType = wire.MsgError
			resp = wire.EncodeError(fmt.Sprintf("server: unexpected %v frame", t))
		}
		if respType == wire.MsgError {
			s.reqErrors.Add(1)
			s.logf("%v: %v request failed: %s", peer, t, wire.DecodeError(resp))
		}
		if err := wire.WriteFrame(conn, respType, resp); err != nil {
			s.logf("%v: write response: %v", peer, err)
			return
		}
	}
}

func (s *Server) handleRegister(payload []byte) (wire.MsgType, []byte) {
	ref, t, err := wire.DecodeRegister(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	if err := s.RegisterTable(ref, t); err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	s.logf("registered %q (%d rows, %d partitions)", ref, t.NumRows(), len(t.Parts))
	return wire.MsgOK, nil
}

func (s *Server) handleAppend(payload []byte) (wire.MsgType, []byte) {
	ref, batch, err := wire.DecodeAppend(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	// Copy-on-write under the registry lock: queries in flight keep reading
	// the table they resolved; the grown table replaces it atomically.
	s.mu.Lock()
	cur := s.tables[ref]
	if cur == nil {
		s.mu.Unlock()
		return wire.MsgError, wire.EncodeError(fmt.Sprintf("server: unknown table ref %q (register it first)", ref))
	}
	// Idempotent replay: a client whose connection died after the append was
	// applied but before the MsgOK arrived retries the same batch. A batch
	// whose identifiers all exist in the table already was applied —
	// acknowledge without re-applying (encryption is deterministic per row
	// identifier, so the retried batch is the byte-identical one already
	// stored). Checking identifier coverage, not row counts, keeps the check
	// correct for shard tables, whose identifier sequences carry gaps — and
	// a batch falling inside such a gap (identifiers this shard never held)
	// is NOT a replay; it falls through and fails the append check below.
	if batch.NumRows() > 0 && cur.Covers(batch.Parts[0].StartID, batch.EndID()) {
		s.mu.Unlock()
		s.logf("append to %q replayed (rows %d-%d already applied)",
			ref, batch.Parts[0].StartID, batch.EndID())
		return wire.MsgOK, nil
	}
	grown, err := cur.WithAppended(batch)
	if err != nil {
		s.mu.Unlock()
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	s.tables[ref] = grown
	s.mu.Unlock()
	s.logf("appended %d rows to %q (now %d rows)", batch.NumRows(), ref, grown.NumRows())
	return wire.MsgOK, nil
}

func (s *Server) handleRun(payload []byte) (wire.MsgType, []byte) {
	req, err := wire.DecodePlan(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	pl := req.Plan
	pl.Table, err = s.lookup(req.TableRef)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	if pl.Join != nil {
		pl.Join.Right, err = s.lookup(req.JoinRef)
		if err != nil {
			return wire.MsgError, wire.EncodeError(err.Error())
		}
	}
	res, err := s.cluster.Run(pl)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	// Run resolved the effective codec into pl.Codec; the client needs its
	// name to decode identifier lists.
	codecName := ""
	if pl.Codec != nil {
		codecName = pl.Codec.Name()
	}
	resp, err := wire.EncodeResult(codecName, res)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	return wire.MsgResult, resp
}
