// Package server hosts an engine.Cluster behind a TCP listener speaking the
// internal/wire protocol, turning the untrusted engine into a standalone
// daemon (cmd/seabed-server) the trusted proxy reaches over the network —
// the deployment split of the paper's §4: the proxy and its keys stay on the
// client side, the server only ever sees ciphertexts, physical plans, and
// encrypted results.
//
// Each accepted connection is served by its own goroutine; requests on one
// connection are processed in order, and clients that want parallelism open
// multiple connections (internal/remote pools them). While a plan executes,
// the connection keeps reading: a MsgCancel frame aborts the in-flight run
// through its context, scan results stream back as MsgResultChunk frames,
// and a client that disconnects mid-query cancels its run implicitly. The
// table registry is shared across connections and guarded for concurrent
// registration and plan execution.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seabed/internal/durable"
	"seabed/internal/engine"
	"seabed/internal/obs"
	"seabed/internal/store"
	"seabed/internal/wire"
)

// Server owns a cluster, a table registry, and a listener.
type Server struct {
	cluster *engine.Cluster
	// Log, when non-nil, receives structured connection events and
	// request-level failures; run-related records carry the query's trace_id.
	// Set it before Serve.
	Log *slog.Logger
	// ShardIndex/ShardCount declare this daemon's identity in a sharded
	// deployment (the -shard i/n flag); they cross in the Welcome frame so
	// clients can verify their address list matches the fleet's layout at
	// connect time. ShardCount 0 declares none. Set them before Serve.
	ShardIndex, ShardCount int
	// MaxProtocol caps the protocol version this server negotiates (0 means
	// wire.Version). Set to an older version — before Serve — to emulate a
	// daemon of that vintage, handshake semantics included: a v3 cap rejects
	// newer Hellos outright, exactly as a real v3 build does, which is how
	// the interop tests exercise the client's downgrade path.
	MaxProtocol int

	mu     sync.RWMutex
	tables map[string]*store.Table

	// tableMu serializes table mutations (registers and appends) with each
	// other, keeping their read-validate-persist-swap sequences atomic
	// without holding the registry lock across a WAL fsync — queries keep
	// resolving tables while an append waits on the disk.
	tableMu sync.Mutex
	// durable, when non-nil, persists the registry: registers flush
	// segments and appends journal to the WAL before they are acknowledged.
	durable  *durable.Store
	recovery durable.RecoveryStats

	lnMu   sync.Mutex
	ln     net.Listener
	active map[net.Conn]struct{}
	conns  sync.WaitGroup
	// quit, when closed, tells every connection to cancel its in-flight run
	// and exit after its current response — the graceful half of Shutdown.
	// Recreated by Serve so a Closed server can serve again.
	quit chan struct{}
	// pendingStop records a Close/Shutdown that arrived before Serve
	// registered its listener; the late-arriving Serve consumes it and
	// returns immediately instead of accepting forever. stopped tracks
	// whether a stop already took effect since the last Serve, so a
	// redundant Close after Shutdown (the usual deferred-cleanup pattern)
	// does not poison a later, intentional re-Serve.
	pendingStop bool
	stopped     bool

	// counters behind Stats (cmd/seabed-server's -metrics flag and the shard
	// balance assertions of the loopback tests).
	connsTotal atomic.Uint64
	registers  atomic.Uint64
	appends    atomic.Uint64
	runs       atomic.Uint64
	runsActive atomic.Int64
	canceled   atomic.Uint64
	reqErrors  atomic.Uint64

	// rowsScanned totals input rows across completed runs
	// (seabed_query_rows_scanned_total); queries is the live-query registry
	// + trace flight recorder behind /debug/queries.
	rowsScanned atomic.Uint64
	queries     *obs.QueryLog

	// replication counters (wire v6): runs the fleet coordinator marked as
	// hedges or failovers, and segment bytes shipped to or pulled from peer
	// daemons.
	hedgedRuns   atomic.Uint64
	failovers    atomic.Uint64
	replicaFetch atomic.Uint64

	// repMu guards repStats, the per-table replication counters behind the
	// replica-health section of Stats.
	repMu    sync.Mutex
	repStats map[string]*repStat

	// obs: the server's metrics registry (one per Server so in-process
	// multi-daemon tests don't collide) and the hot-path instruments. The
	// registry also serves /metrics through DebugHandler.
	obsReg     *obs.Registry
	reqSeconds map[wire.MsgType]*obs.Histogram
	firstChunk *obs.Histogram
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
}

// TableStat describes one registered table for monitoring.
type TableStat struct {
	Ref   string
	Rows  uint64
	Parts int
	// Bytes is the table's estimated resident memory.
	Bytes uint64
	// HedgedRuns and FailoverRuns count runs the fleet coordinator re-issued
	// to this daemon for the table (speculative hedges and replica
	// failovers); ShippedBytes and PulledBytes count segment bytes served to
	// and pulled from peer daemons for it. Together they are the table's
	// replica health as seen from this daemon.
	HedgedRuns   uint64
	FailoverRuns uint64
	ShippedBytes uint64
	PulledBytes  uint64
}

// repStat is one table's live replication counters.
type repStat struct {
	hedged, failovers, shippedBytes, pulledBytes atomic.Uint64
}

// repStat resolves (allocating on first touch) ref's replication counters.
func (s *Server) repStat(ref string) *repStat {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	st := s.repStats[ref]
	if st == nil {
		st = &repStat{}
		s.repStats[ref] = st
	}
	return st
}

// Stats is a point-in-time snapshot of a server's activity: connection and
// per-request counters plus the size of every registered table. A sharded
// deployment compares Rows across daemons to check shard balance; the
// cancellation tests watch RunsActive fall back to zero after a mid-query
// cancel to prove the slot was freed.
type Stats struct {
	ConnsTotal  uint64
	ConnsActive int
	Registers   uint64
	Appends     uint64
	Runs        uint64
	// RunsActive counts plans executing right now.
	RunsActive int
	// Canceled counts runs aborted by a Cancel frame, a client disconnect,
	// or server shutdown.
	Canceled uint64
	Errors   uint64
	// HedgedRuns and Failovers count runs the fleet coordinator marked as
	// speculative hedges and replica failovers; ReplicaFetchBytes counts
	// segment bytes shipped to or pulled from peer daemons (wire v6).
	HedgedRuns        uint64
	Failovers         uint64
	ReplicaFetchBytes uint64
	// TableCount and ResidentBytes size the registry: how many tables are
	// live and their estimated in-memory footprint (Table 5's "memory
	// size", summed).
	TableCount    int
	ResidentBytes uint64
	// PlanCacheHits/Misses report the engine's compiled-plan cache: a proxy
	// issuing repeated query shapes should see the hit counter climb.
	PlanCacheHits, PlanCacheMisses uint64
	// Recovery reports what the durable store rebuilt at boot (zero without
	// a -data-dir).
	Recovery durable.RecoveryStats
	// Residency reports the mapped-segment budget: bytes currently faulted
	// in from mapped segments, the -max-resident watermark, and fault and
	// eviction counters (zero without a -data-dir).
	Residency store.ResidencyStats
	Tables    []TableStat
}

// Stats returns a snapshot of the server's counters and table registry,
// with tables sorted by ref.
func (s *Server) Stats() Stats {
	st := Stats{
		ConnsTotal: s.connsTotal.Load(),
		Registers:  s.registers.Load(),
		Appends:    s.appends.Load(),
		Runs:       s.runs.Load(),
		RunsActive: int(s.runsActive.Load()),
		Canceled:   s.canceled.Load(),
		Errors:     s.reqErrors.Load(),

		HedgedRuns:        s.hedgedRuns.Load(),
		Failovers:         s.failovers.Load(),
		ReplicaFetchBytes: s.replicaFetch.Load(),
	}
	s.lnMu.Lock()
	st.ConnsActive = len(s.active)
	s.lnMu.Unlock()
	st.PlanCacheHits, st.PlanCacheMisses = s.cluster.PlanCacheStats()
	st.Recovery = s.recovery
	if s.durable != nil {
		st.Residency = s.durable.Residency().Stats()
	}
	rep := make(map[string]*repStat)
	s.repMu.Lock()
	for ref, r := range s.repStats {
		rep[ref] = r
	}
	s.repMu.Unlock()
	s.mu.RLock()
	for ref, t := range s.tables {
		bytes := t.MemBytes()
		ts := TableStat{Ref: ref, Rows: t.NumRows(), Parts: len(t.Parts), Bytes: bytes}
		if r := rep[ref]; r != nil {
			ts.HedgedRuns = r.hedged.Load()
			ts.FailoverRuns = r.failovers.Load()
			ts.ShippedBytes = r.shippedBytes.Load()
			ts.PulledBytes = r.pulledBytes.Load()
		}
		st.Tables = append(st.Tables, ts)
		st.ResidentBytes += bytes
	}
	s.mu.RUnlock()
	st.TableCount = len(st.Tables)
	sort.Slice(st.Tables, func(a, b int) bool { return st.Tables[a].Ref < st.Tables[b].Ref })
	return st
}

// String renders the snapshot as one human-readable block, the format the
// -metrics flag prints on SIGUSR1.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns=%d active=%d registers=%d appends=%d runs=%d in-flight=%d canceled=%d errors=%d",
		st.ConnsTotal, st.ConnsActive, st.Registers, st.Appends, st.Runs, st.RunsActive, st.Canceled, st.Errors)
	if st.HedgedRuns > 0 || st.Failovers > 0 || st.ReplicaFetchBytes > 0 {
		fmt.Fprintf(&b, "\nreplication: hedged=%d failovers=%d fetch=%s",
			st.HedgedRuns, st.Failovers, fmtBytes(st.ReplicaFetchBytes))
	}
	fmt.Fprintf(&b, "\ntables=%d resident=%s plan-cache=%d/%d hit/miss",
		st.TableCount, fmtBytes(st.ResidentBytes), st.PlanCacheHits, st.PlanCacheMisses)
	if r := st.Recovery; r.Tables > 0 || r.Duration > 0 {
		fmt.Fprintf(&b, "\nrecovered %d tables (%s, %s mapped, %d segments, %d wal records, %d torn tails) in %v",
			r.Tables, fmtBytes(uint64(r.Bytes)), fmtBytes(uint64(r.MappedBytes)), r.Segments, r.WALRecords, r.TornTails, r.Duration)
	}
	if r := st.Residency; r.BudgetBytes > 0 || r.ColumnFaults > 0 {
		fmt.Fprintf(&b, "\nresidency: %s resident (budget %s), %d column faults, %d evictions (%s reclaimed)",
			fmtBytes(r.ResidentBytes), fmtBytes(r.BudgetBytes), r.ColumnFaults, r.Evictions, fmtBytes(r.EvictedBytes))
	}
	for _, t := range st.Tables {
		fmt.Fprintf(&b, "\n  table %q: %d rows, %d partitions, %s", t.Ref, t.Rows, t.Parts, fmtBytes(t.Bytes))
		if t.HedgedRuns > 0 || t.FailoverRuns > 0 || t.ShippedBytes > 0 || t.PulledBytes > 0 {
			fmt.Fprintf(&b, " (hedged=%d failovers=%d shipped=%s pulled=%s)",
				t.HedgedRuns, t.FailoverRuns, fmtBytes(t.ShippedBytes), fmtBytes(t.PulledBytes))
		}
	}
	return b.String()
}

// MarshalJSON renders the snapshot with stable snake_case field names — the
// contract for `seabed-server -metrics-format=json` and the debug listener's
// /stats endpoint, so dashboards don't break when Go field names shift.
func (st Stats) MarshalJSON() ([]byte, error) {
	type tableJSON struct {
		Ref   string `json:"ref"`
		Rows  uint64 `json:"rows"`
		Parts int    `json:"parts"`
		Bytes uint64 `json:"bytes"`
		// Per-table replica health: coordination runs and shipped bytes.
		HedgedRuns   uint64 `json:"hedged_runs"`
		FailoverRuns uint64 `json:"failover_runs"`
		ShippedBytes uint64 `json:"shipped_bytes"`
		PulledBytes  uint64 `json:"pulled_bytes"`
	}
	type recoveryJSON struct {
		Tables          int     `json:"tables"`
		Segments        int     `json:"segments"`
		WALRecords      int     `json:"wal_records"`
		TornTails       int     `json:"torn_tails"`
		Bytes           int64   `json:"bytes"`
		MappedBytes     int64   `json:"mapped_bytes"`
		DurationSeconds float64 `json:"duration_seconds"`
	}
	type residencyJSON struct {
		BudgetBytes   uint64 `json:"budget_bytes"`
		ResidentBytes uint64 `json:"resident_bytes"`
		ColumnFaults  uint64 `json:"column_faults"`
		Evictions     uint64 `json:"evictions"`
		EvictedBytes  uint64 `json:"evicted_bytes"`
	}
	out := struct {
		ConnsTotal      uint64        `json:"conns_total"`
		ConnsActive     int           `json:"conns_active"`
		Registers       uint64        `json:"registers"`
		Appends         uint64        `json:"appends"`
		Runs            uint64        `json:"runs"`
		RunsActive      int           `json:"runs_active"`
		Canceled        uint64        `json:"canceled"`
		Errors          uint64        `json:"errors"`
		HedgedRuns      uint64        `json:"hedged_runs"`
		Failovers       uint64        `json:"failovers"`
		ReplicaFetch    uint64        `json:"replica_fetch_bytes"`
		TableCount      int           `json:"table_count"`
		ResidentBytes   uint64        `json:"resident_bytes"`
		PlanCacheHits   uint64        `json:"plan_cache_hits"`
		PlanCacheMisses uint64        `json:"plan_cache_misses"`
		Recovery        recoveryJSON  `json:"recovery"`
		Residency       residencyJSON `json:"residency"`
		Tables          []tableJSON   `json:"tables"`
	}{
		ConnsTotal:      st.ConnsTotal,
		ConnsActive:     st.ConnsActive,
		Registers:       st.Registers,
		Appends:         st.Appends,
		Runs:            st.Runs,
		RunsActive:      st.RunsActive,
		Canceled:        st.Canceled,
		Errors:          st.Errors,
		HedgedRuns:      st.HedgedRuns,
		Failovers:       st.Failovers,
		ReplicaFetch:    st.ReplicaFetchBytes,
		TableCount:      st.TableCount,
		ResidentBytes:   st.ResidentBytes,
		PlanCacheHits:   st.PlanCacheHits,
		PlanCacheMisses: st.PlanCacheMisses,
		Recovery: recoveryJSON{
			Tables:          st.Recovery.Tables,
			Segments:        st.Recovery.Segments,
			WALRecords:      st.Recovery.WALRecords,
			TornTails:       st.Recovery.TornTails,
			Bytes:           st.Recovery.Bytes,
			MappedBytes:     st.Recovery.MappedBytes,
			DurationSeconds: st.Recovery.Duration.Seconds(),
		},
		Residency: residencyJSON{
			BudgetBytes:   st.Residency.BudgetBytes,
			ResidentBytes: st.Residency.ResidentBytes,
			ColumnFaults:  st.Residency.ColumnFaults,
			Evictions:     st.Residency.Evictions,
			EvictedBytes:  st.Residency.EvictedBytes,
		},
		Tables: make([]tableJSON, 0, len(st.Tables)),
	}
	for _, t := range st.Tables {
		out.Tables = append(out.Tables, tableJSON{
			Ref: t.Ref, Rows: t.Rows, Parts: t.Parts, Bytes: t.Bytes,
			HedgedRuns: t.HedgedRuns, FailoverRuns: t.FailoverRuns,
			ShippedBytes: t.ShippedBytes, PulledBytes: t.PulledBytes,
		})
	}
	return json.Marshal(out)
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// New returns a server executing plans on the given cluster.
func New(cluster *engine.Cluster) *Server {
	s := &Server{
		cluster:  cluster,
		tables:   make(map[string]*store.Table),
		active:   make(map[net.Conn]struct{}),
		repStats: make(map[string]*repStat),
		queries:  obs.NewQueryLog(0),
	}
	s.initMetrics()
	return s
}

// Queries returns the daemon's live-query registry + flight recorder (the
// store behind /debug/queries and /debug/queries/kill).
func (s *Server) Queries() *obs.QueryLog { return s.queries }

// initMetrics registers the server's instruments. Hot-path series (request
// latency, bytes) are real instruments; counters the Stats snapshot already
// tracks are mirrored as functions so the two views can never disagree.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.obsReg = r
	s.reqSeconds = make(map[wire.MsgType]*obs.Histogram)
	for _, t := range []wire.MsgType{wire.MsgRegister, wire.MsgAppend, wire.MsgRun} {
		s.reqSeconds[t] = r.Histogram("seabed_request_seconds",
			"Request latency from frame arrival to response written, by message type.",
			nil, obs.Labels{"type": t.String()})
	}
	s.firstChunk = r.Histogram("seabed_first_chunk_seconds",
		"Latency from run start to the first streamed scan rows reaching the sink.",
		nil, nil)
	s.bytesIn = r.Counter("seabed_bytes_in_total", "Bytes received, frame headers included.", nil)
	s.bytesOut = r.Counter("seabed_bytes_out_total", "Bytes sent, frame headers included.", nil)

	cf := func(name, help string, labels obs.Labels, c *atomic.Uint64) {
		r.CounterFunc(name, help, labels, func() float64 { return float64(c.Load()) })
	}
	cf("seabed_conns_total", "Connections accepted.", nil, &s.connsTotal)
	cf("seabed_requests_total", "Requests received, by message type.", obs.Labels{"type": "register"}, &s.registers)
	cf("seabed_requests_total", "Requests received, by message type.", obs.Labels{"type": "append"}, &s.appends)
	cf("seabed_requests_total", "Requests received, by message type.", obs.Labels{"type": "run"}, &s.runs)
	cf("seabed_runs_canceled_total", "Runs aborted by cancel, disconnect, or shutdown.", nil, &s.canceled)
	cf("seabed_request_errors_total", "Requests answered with an error frame.", nil, &s.reqErrors)
	cf("seabed_hedged_runs_total", "Runs the fleet coordinator re-issued speculatively to this replica.", nil, &s.hedgedRuns)
	cf("seabed_failovers_total", "Runs re-issued to this replica after another replica failed.", nil, &s.failovers)
	cf("seabed_replica_fetch_bytes_total", "Segment bytes shipped to or pulled from peer daemons.", nil, &s.replicaFetch)
	r.GaugeFunc("seabed_conns_active", "Connections open right now.", nil, func() float64 {
		s.lnMu.Lock()
		defer s.lnMu.Unlock()
		return float64(len(s.active))
	})
	r.GaugeFunc("seabed_runs_active", "Plans executing right now.", nil, func() float64 {
		return float64(s.runsActive.Load())
	})
	cf("seabed_query_rows_scanned_total", "Input rows scanned by completed runs.", nil, &s.rowsScanned)
	r.GaugeFunc("seabed_active_queries", "Queries registered in flight right now.", nil, func() float64 {
		return float64(s.queries.ActiveCount())
	})
	r.GaugeFunc("seabed_flight_recorder_traces", "Completed query traces retained by the flight recorder.", nil, func() float64 {
		return float64(s.queries.RecordedCount())
	})
	r.CounterFunc("seabed_plan_cache_hits_total", "Compiled-plan cache hits.", nil, func() float64 {
		h, _ := s.cluster.PlanCacheStats()
		return float64(h)
	})
	r.CounterFunc("seabed_plan_cache_misses_total", "Compiled-plan cache misses.", nil, func() float64 {
		_, m := s.cluster.PlanCacheStats()
		return float64(m)
	})
	r.GaugeFunc("seabed_tables", "Registered tables.", nil, func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.tables))
	})
	r.GaugeFunc("seabed_resident_bytes", "Estimated resident memory of all registered tables.", nil, func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var b uint64
		for _, t := range s.tables {
			b += t.MemBytes()
		}
		return float64(b)
	})
}

// Metrics returns the server's metrics registry. Embedders can register
// their own instruments on it; durable stores attach their WAL latency
// histograms through durable.Options.Metrics.
func (s *Server) Metrics() *obs.Registry { return s.obsReg }

// UseDurable backs the server's registry with a disk store: the tables d
// recovered at Open load into the registry, later registers flush as
// segments, and appends journal to the write-ahead log before they are
// acknowledged. Call it before Serve; the server does not close d (the
// owner does, after the server has drained).
func (s *Server) UseDurable(d *durable.Store) {
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	s.mu.Lock()
	for ref, t := range d.Tables() {
		s.tables[ref] = t
	}
	s.mu.Unlock()
	s.durable = d
	s.recovery = d.Recovery()

	// Recovery cost is a one-shot fact; export it as gauges so a scrape after
	// boot shows what the restart paid (ROADMAP: recovery cost visibility).
	rec := s.recovery
	s.obsReg.Gauge("seabed_recovery_duration_seconds", "Wall-clock cost of the boot-time recovery replay.", nil).Set(rec.Duration.Seconds())
	s.obsReg.Gauge("seabed_recovery_bytes", "Bytes of table data rebuilt at boot.", nil).Set(float64(rec.Bytes))
	s.obsReg.Gauge("seabed_recovery_wal_records", "WAL records replayed at boot.", nil).Set(float64(rec.WALRecords))
	s.obsReg.Gauge("seabed_recovery_tables", "Tables recovered at boot.", nil).Set(float64(rec.Tables))
	s.obsReg.Gauge("seabed_recovery_mapped_bytes", "Bytes of segment data mmap'd (not read) at boot.", nil).Set(float64(rec.MappedBytes))

	// Residency moves while the server runs (columns fault in per query and
	// evict under -max-resident), so these read live from the store's
	// residency manager at scrape time rather than snapshotting once.
	res := d.Residency()
	s.obsReg.GaugeFunc("seabed_resident_budget_bytes", "Configured -max-resident budget for faulted column data (0 = unlimited).", nil, func() float64 {
		return float64(res.Stats().BudgetBytes)
	})
	s.obsReg.GaugeFunc("seabed_view_resident_bytes", "Column bytes currently faulted into memory from mapped segments.", nil, func() float64 {
		return float64(res.Stats().ResidentBytes)
	})
	s.obsReg.CounterFunc("seabed_column_faults_total", "Columns faulted in from mapped segments.", nil, func() float64 {
		return float64(res.Stats().ColumnFaults)
	})
	s.obsReg.CounterFunc("seabed_partition_evictions_total", "Partitions evicted to stay under the residency budget.", nil, func() float64 {
		return float64(res.Stats().Evictions)
	})
}

// RegisterTable adds or replaces a table in the registry — durably first,
// when a durable store is attached, so an acknowledged upload is on disk.
// The wire path uses it for MsgRegister frames; embedders can call it
// directly to preload tables.
func (s *Server) RegisterTable(ref string, t *store.Table) error {
	if ref == "" {
		return errors.New("server: empty table ref")
	}
	if t == nil {
		return errors.New("server: nil table")
	}
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	if s.durable != nil {
		if err := s.durable.Register(ref, t); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.tables[ref] = t
	s.mu.Unlock()
	return nil
}

// TableRefs returns the registered refs, for monitoring.
func (s *Server) TableRefs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := make([]string, 0, len(s.tables))
	for ref := range s.tables {
		refs = append(refs, ref)
	}
	return refs
}

// lookup resolves a ref to its table.
func (s *Server) lookup(ref string) (*store.Table, error) {
	s.mu.RLock()
	t := s.tables[ref]
	s.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("server: unknown table ref %q (register it first)", ref)
	}
	return t, nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close or Shutdown. It returns nil
// after a clean stop and the accept error otherwise. Close detaches the
// listener from the server before closing it, so "is this accept failure a
// clean shutdown" is answered by whether s.ln still points at ln — not by a
// flag Close could reset before this goroutine gets to look at it.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.pendingStop {
		s.pendingStop = false
		s.lnMu.Unlock()
		ln.Close() //nolint:errcheck // refusing to serve a stopped server
		return nil
	}
	s.ln = ln
	s.stopped = false
	if s.quit == nil {
		s.quit = make(chan struct{})
	}
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lnMu.Lock()
			detached := s.ln != ln
			s.lnMu.Unlock()
			if detached {
				return nil
			}
			return err
		}
		s.lnMu.Lock()
		if s.ln != ln { // Close raced the accept; next Accept returns its error
			s.lnMu.Unlock()
			conn.Close()
			continue
		}
		quit := s.quit
		s.active[conn] = struct{}{}
		s.conns.Add(1)
		s.connsTotal.Add(1)
		s.lnMu.Unlock()
		go func() {
			defer func() {
				s.lnMu.Lock()
				delete(s.active, conn)
				s.lnMu.Unlock()
				s.conns.Done()
			}()
			s.serveConn(conn, quit)
		}()
	}
}

// detach stops accepting new connections and signals every connection to
// wind down: the listener is detached and closed, and the quit channel —
// which cancels in-flight runs — is closed. It is the shared first half of
// Close and Shutdown.
func (s *Server) detach() error {
	s.lnMu.Lock()
	ln := s.ln
	s.ln = nil
	if ln == nil && !s.stopped {
		// Stop requested before Serve registered (or with no Serve at all):
		// leave a note for the late-arriving Serve to consume. A stop that
		// already took effect (ln detached earlier) sets nothing, so a
		// redundant Close after Shutdown cannot poison the next Serve.
		s.pendingStop = true
	}
	s.stopped = true
	if s.quit != nil {
		close(s.quit)
		s.quit = nil
	}
	s.lnMu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// Close stops accepting connections, cancels in-flight queries, closes every
// open connection (clients keep idle pooled connections open indefinitely,
// so there is nothing to drain — an in-flight request sees its socket
// close), and waits for the connection goroutines to exit. Registered tables
// survive Close; a new Serve continues with the same registry.
func (s *Server) Close() error {
	err := s.detach()
	s.lnMu.Lock()
	for conn := range s.active {
		conn.Close() //nolint:errcheck // racing the handler's own close
	}
	s.lnMu.Unlock()
	s.conns.Wait()
	return err
}

// Shutdown stops the server gracefully: it stops accepting connections,
// cancels every in-flight query through its context (the client receives the
// canceled run's error response before its connection closes), and waits for
// the connection goroutines to drain. If ctx expires first the remaining
// connections are closed Close-style and ctx.Err() is returned; a clean
// drain returns nil. Registered tables survive, as with Close.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.detach()
	done := make(chan struct{})
	go func() {
		s.conns.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.lnMu.Lock()
		for conn := range s.active {
			conn.Close() //nolint:errcheck // racing the handler's own close
		}
		s.lnMu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) log(msg string, args ...any) {
	if s.Log != nil {
		s.Log.Info(msg, args...)
	}
}

func (s *Server) logErr(msg string, args ...any) {
	if s.Log != nil {
		s.Log.Warn(msg, args...)
	}
}

// frame is one decoded wire frame in flight from the connection reader to
// the request loop. at is the read timestamp: the gap to request processing
// is the queue-wait span on a traced run.
type frame struct {
	t       wire.MsgType
	payload []byte
	at      time.Time
}

// serveConn runs one connection: handshake, then a request/response loop fed
// by a dedicated reader goroutine, so Cancel frames are seen while a plan
// executes. Protocol-level failures (bad frames, wrong version, any
// non-Cancel frame while a run is in flight) drop the connection;
// request-level failures (unknown ref, plan errors) answer MsgError and keep
// it open.
func (s *Server) serveConn(conn net.Conn, quit <-chan struct{}) {
	defer conn.Close()
	peer := conn.RemoteAddr()

	t, payload, err := wire.ReadFrame(conn)
	if err != nil {
		s.logErr("handshake read failed", "peer", peer, "err", err)
		return
	}
	if t != wire.MsgHello {
		s.logErr("handshake expected hello", "peer", peer, "got", t.String())
		return
	}
	version, err := wire.DecodeHello(payload)
	if err != nil {
		s.logErr("handshake decode failed", "peer", peer, "err", err)
		return
	}
	// Negotiate the connection's protocol version: the client's Hello carries
	// its newest, the Welcome answers with min(client, server). A cap below
	// v4 reproduces pre-negotiation semantics — those builds rejected every
	// mismatch, and emulating them any other way would leave the client's
	// downgrade path untested.
	maxVer := uint64(wire.Version)
	if s.MaxProtocol > 0 && uint64(s.MaxProtocol) < maxVer {
		maxVer = uint64(s.MaxProtocol)
	}
	reject := version < wire.MinVersion
	if maxVer < 4 {
		reject = version != maxVer
	}
	if reject {
		wire.WriteFrame(conn, wire.MsgError, //nolint:errcheck // closing anyway
			wire.EncodeError(fmt.Sprintf("server: protocol version %d, want %d", version, maxVer)))
		s.logErr("handshake version rejected", "peer", peer, "client_version", version, "max_version", maxVer)
		return
	}
	proto := min(version, maxVer)
	if err := wire.WriteFrame(conn, wire.MsgWelcome, wire.EncodeWelcome(proto, s.cluster.Workers(), s.ShardIndex, s.ShardCount)); err != nil {
		s.logErr("handshake write failed", "peer", peer, "err", err)
		return
	}
	s.log("client connected", "peer", peer, "proto", proto)

	// The reader goroutine owns the connection's read side for the rest of
	// its life. It stops when the connection errors (including our deferred
	// Close) or when serveConn stops consuming (connDone).
	frames := make(chan frame)
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		defer close(frames)
		for {
			t, payload, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			s.bytesIn.Add(uint64(len(payload)) + 5)
			select {
			case frames <- frame{t, payload, time.Now()}:
			case <-connDone:
				return
			}
		}
	}()

	for {
		select {
		case <-quit:
			s.log("closing connection (shutdown)", "peer", peer)
			return
		case f, ok := <-frames:
			if !ok {
				s.log("client disconnected", "peer", peer)
				return
			}
			var respType wire.MsgType
			var resp []byte
			keep := true
			switch f.t {
			case wire.MsgRegister:
				s.registers.Add(1)
				respType, resp = s.handleRegister(f.payload)
			case wire.MsgAppend:
				s.appends.Add(1)
				respType, resp = s.handleAppend(f.payload)
			case wire.MsgSegmentList:
				respType, resp = s.handleSegmentList(f.payload, proto)
			case wire.MsgSegmentFetch:
				respType, resp = s.handleSegmentFetch(f.payload, proto)
			case wire.MsgCancel:
				// Nothing in flight: the Cancel crossed our response on the
				// wire. Cancels are never answered, so ignoring it keeps the
				// connection's request/response accounting intact.
				continue
			case wire.MsgRun:
				// keep == false (shutdown, disconnect, protocol violation)
				// still delivers the run's terminal frame below — a client
				// canceled by shutdown learns its query's fate — and then
				// drops the connection.
				respType, resp, keep = s.serveRun(conn, quit, frames, f, proto)
			default:
				respType = wire.MsgError
				resp = wire.EncodeError(fmt.Sprintf("server: unexpected %v frame", f.t))
			}
			if respType == wire.MsgError {
				s.reqErrors.Add(1)
				s.logErr("request failed", "peer", peer, "type", f.t.String(), "err", wire.DecodeError(resp))
			}
			if err := wire.WriteFrame(conn, respType, resp); err != nil {
				s.logErr("response write failed", "peer", peer, "err", err)
				return
			}
			s.bytesOut.Add(uint64(len(resp)) + 5)
			if h := s.reqSeconds[f.t]; h != nil {
				h.ObserveDuration(time.Since(f.at))
			}
			if !keep {
				s.log("closing connection mid-run", "peer", peer)
				return
			}
		}
	}
}

// serveRun executes one MsgRun with cancellation support: the plan runs in
// its own goroutine (writing scan chunks straight to conn) while this loop
// watches for a Cancel frame, a client disconnect, or server shutdown — each
// cancels the run's context. It returns the terminal response frame and
// whether the connection should keep serving; ok == false also covers
// protocol violations (a non-Cancel frame while the run is in flight).
func (s *Server) serveRun(conn net.Conn, quit <-chan struct{}, frames <-chan frame, f frame, proto uint64) (wire.MsgType, []byte, bool) {
	s.runs.Add(1)
	s.runsActive.Add(1)
	defer s.runsActive.Add(-1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runDone struct {
		respType wire.MsgType
		resp     []byte
	}
	done := make(chan runDone, 1)
	go func() {
		respType, resp := s.executeRun(ctx, cancel, conn, f, proto)
		done <- runDone{respType, resp}
	}()

	keep := true
	for {
		select {
		case r := <-done:
			if ctx.Err() != nil {
				s.canceled.Add(1)
			}
			return r.respType, r.resp, keep
		case <-quit:
			// Shutdown: cancel the run but still deliver its terminal frame,
			// then let the caller close the connection. Nil the channel so the
			// closed case doesn't spin while the run drains.
			cancel()
			keep = false
			quit = nil
		case f, ok := <-frames:
			if !ok {
				// Client vanished mid-query: abandon the work. The terminal
				// frame write will fail harmlessly.
				cancel()
				keep = false
				frames = nil
				continue
			}
			if f.t == wire.MsgCancel {
				cancel()
				continue
			}
			// Pipelining into an in-flight run is a protocol violation from a
			// client this server cannot trust: abandon the run and the
			// connection.
			s.logErr("unexpected frame while a run is in flight", "peer", conn.RemoteAddr(), "type", f.t.String())
			cancel()
			keep = false
		}
	}
}

func (s *Server) handleRegister(payload []byte) (wire.MsgType, []byte) {
	ref, t, err := wire.DecodeRegister(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	if err := s.RegisterTable(ref, t); err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	s.log("table registered", "ref", ref, "rows", t.NumRows(), "parts", len(t.Parts))
	return wire.MsgOK, nil
}

func (s *Server) handleAppend(payload []byte) (wire.MsgType, []byte) {
	ref, batch, err := wire.DecodeAppend(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	// tableMu makes the read-validate-journal-swap sequence atomic against
	// other registry mutations without holding the registry lock across the
	// durable journal's fsync: queries keep resolving tables while the disk
	// writes.
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	s.mu.RLock()
	cur := s.tables[ref]
	s.mu.RUnlock()
	if cur == nil {
		return wire.MsgError, wire.EncodeError(fmt.Sprintf("server: unknown table ref %q (register it first)", ref))
	}
	// Idempotent replay: a client whose connection died after the append was
	// applied but before the MsgOK arrived retries the same batch. A batch
	// whose identifiers all exist in the table already was applied —
	// acknowledge without re-applying (encryption is deterministic per row
	// identifier, so the retried batch is the byte-identical one already
	// stored). Checking identifier coverage, not row counts, keeps the check
	// correct for shard tables, whose identifier sequences carry gaps — and
	// a batch falling inside such a gap (identifiers this shard never held)
	// is NOT a replay; it falls through and fails the append check below.
	// Replay detection also covers the durable crash window where a batch
	// was journaled and recovered but its acknowledgement was lost: the
	// retried batch is acked without re-journaling.
	if batch.NumRows() > 0 && cur.Covers(batch.Parts[0].StartID, batch.EndID()) {
		s.log("append replayed", "ref", ref, "from", batch.Parts[0].StartID, "to", batch.EndID())
		return wire.MsgOK, nil
	}
	grown, err := cur.WithAppended(batch)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	// Journal before acknowledging: under fsync=always the MsgOK below
	// promises the batch survives a crash, so the WAL record must be
	// durable first. A journal failure leaves the in-memory table unchanged
	// and the client sees the error.
	if s.durable != nil {
		if err := s.durable.Append(ref, batch); err != nil {
			return wire.MsgError, wire.EncodeError(err.Error())
		}
	}
	// Copy-on-write swap: queries in flight keep reading the table they
	// resolved; the grown table replaces it atomically.
	s.mu.Lock()
	s.tables[ref] = grown
	s.mu.Unlock()
	s.log("rows appended", "ref", ref, "rows", batch.NumRows(), "total", grown.NumRows())
	return wire.MsgOK, nil
}

// executeRun decodes and runs one plan, writing scan rows to conn as
// MsgResultChunk frames as the engine produces them, and returns the
// terminal response frame. On a v4 connection carrying a trace ID the run
// builds its span breakdown — queue wait, then the engine's stage spans —
// and ships it in the result frame. cancel is the run's own cancel func,
// registered with the live-query registry so /debug/queries/kill reaches
// the same context MsgCancel does.
func (s *Server) executeRun(ctx context.Context, cancel context.CancelFunc, conn net.Conn, f frame, proto uint64) (mt wire.MsgType, payload []byte) {
	req, err := wire.DecodePlan(f.payload, proto)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}

	// Register with the introspection plane for the whole run. The daemon
	// never sees SQL, so the fingerprint is a compact plan summary; the
	// terminal error (if any) is recovered from the response frame so every
	// return path below records correctly.
	aq := s.queries.Start(req.TraceID, planFingerprint(req), cancel)
	var recTrace string
	defer func() {
		var ferr error
		if mt == wire.MsgError {
			ferr = errors.New(wire.DecodeError(payload))
		}
		aq.Finish(ferr, recTrace)
	}()

	// Replica-coordination accounting (v6): a pre-v6 frame decodes both
	// flags false, so no extra gate is needed.
	if req.Hedge {
		s.hedgedRuns.Add(1)
		s.repStat(req.TableRef).hedged.Add(1)
	}
	if req.Failover {
		s.failovers.Add(1)
		s.repStat(req.TableRef).failovers.Add(1)
	}

	// The daemon-side trace root. Queue wait — the gap between the frame
	// leaving the socket and the run starting — is the paper's §6.2 signal
	// for an overloaded daemon, distinct from a slow one.
	var root *obs.Span
	if proto >= 4 && req.TraceID != 0 {
		root = obs.NewTraceWithID("daemon", req.TraceID)
		root.SetAttr("trace", fmt.Sprintf("%016x", req.TraceID))
		if s.ShardCount > 0 {
			root.SetAttr("shard", fmt.Sprintf("%d/%d", s.ShardIndex, s.ShardCount))
		}
		root.AddSpan("queue", f.at, time.Since(f.at))
		ctx = obs.ContextWithSpan(ctx, root)
		s.log("run started", "trace_id", fmt.Sprintf("%016x", req.TraceID), "table", req.TableRef)
	}

	pl := req.Plan
	pl.Table, err = s.lookup(req.TableRef)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	if pl.Join != nil {
		pl.Join.Right, err = s.lookup(req.JoinRef)
		if err != nil {
			return wire.MsgError, wire.EncodeError(err.Error())
		}
	}
	// Scan plans stream: each batch crosses as its own frame, so the client
	// decrypts incrementally and a canceled query stops mid-stream instead
	// of after one giant materialized frame. On v5+ connections each batch
	// leaves as column extents appended into one reused buffer — the
	// executor's arenas reach the wire without a row-major re-encode and
	// without per-row allocations; pre-v5 peers get the row-major framing.
	var sink engine.ScanSink
	if len(pl.Project) > 0 {
		if proto >= 5 {
			kinds, err := engine.ProjectKinds(pl)
			if err != nil {
				return wire.MsgError, wire.EncodeError(err.Error())
			}
			var chunkBuf []byte
			sink = func(rows []engine.ScanRow) error {
				var err error
				chunkBuf, err = wire.AppendScanChunk(chunkBuf[:0], rows, kinds)
				if err != nil {
					return err
				}
				if err := wire.WriteFrame(conn, wire.MsgResultChunk, chunkBuf); err != nil {
					return err
				}
				s.bytesOut.Add(uint64(len(chunkBuf)) + 5)
				aq.AddRows(uint64(len(rows)))
				return nil
			}
		} else {
			sink = func(rows []engine.ScanRow) error {
				chunk, err := wire.EncodeScanChunk(rows, nil, proto)
				if err != nil {
					return err
				}
				if err := wire.WriteFrame(conn, wire.MsgResultChunk, chunk); err != nil {
					return err
				}
				s.bytesOut.Add(uint64(len(chunk)) + 5)
				aq.AddRows(uint64(len(rows)))
				return nil
			}
		}
	}
	res, err := s.cluster.RunStream(ctx, pl, sink)
	if err != nil {
		if ctx.Err() != nil {
			return wire.MsgError, wire.EncodeError("server: query canceled")
		}
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	s.rowsScanned.Add(res.Metrics.RowsScanned)
	if len(pl.Project) == 0 {
		aq.SetRows(uint64(len(res.Groups)))
	}
	if res.Metrics.FirstChunk > 0 {
		s.firstChunk.ObserveDuration(res.Metrics.FirstChunk)
		if root != nil {
			root.SetAttr("first_chunk", res.Metrics.FirstChunk.String())
		}
	}
	// Run resolved the effective codec into pl.Codec; the client needs its
	// name to decode identifier lists.
	codecName := ""
	if pl.Codec != nil {
		codecName = pl.Codec.Name()
	}
	var spans []obs.FlatSpan
	if root != nil {
		root.End()
		spans = obs.Flatten(root)
		recTrace = root.String()
	}
	resp, err := wire.EncodeResult(codecName, res, spans, proto)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	return wire.MsgResult, resp
}

// planFingerprint summarizes a plan request for the live-query registry: the
// daemon holds only ciphertext plans, so this is the untrusted side's analog
// of the proxy's SQL fingerprint.
func planFingerprint(req *wire.PlanRequest) string {
	pl := req.Plan
	mode := "agg"
	switch {
	case len(pl.Project) > 0:
		mode = "scan"
	case pl.GroupBy != nil:
		mode = "group"
	}
	fp := mode + " " + req.TableRef
	if pl.Join != nil {
		fp += " join " + req.JoinRef
	}
	if pl.Partial {
		fp += fmt.Sprintf(" [%d-%d]", pl.Range.Lo, pl.Range.Hi)
	}
	return fp
}
