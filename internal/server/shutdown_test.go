package server

import (
	"context"
	"net"
	"testing"
	"time"

	"seabed/internal/engine"
	"seabed/internal/store"
	"seabed/internal/wire"
)

// serveOn starts srv on a loopback listener, returning the Serve result
// channel (buffered, so the goroutine never leaks) and the address.
func serveOn(t *testing.T, srv *Server) (chan error, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close() //nolint:errcheck // teardown; Shutdown tests already stopped it
	})
	return done, ln.Addr().String()
}

// slowServer returns a server whose map tasks stall, so an in-flight run is
// observably in flight, plus a registered 16-partition table and a run
// payload for it.
func slowServer(t *testing.T, sleep time.Duration) (*Server, []byte) {
	t.Helper()
	srv := New(engine.NewCluster(engine.Config{
		Workers: 2, RealParallelism: 1, TaskSleep: sleep,
	}))
	tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: make([]uint64, 1600)}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@NoEnc", tbl); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.EncodePlan(&wire.PlanRequest{
		TableRef: "t@NoEnc",
		Plan:     &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}}},
	}, wire.Version)
	if err != nil {
		t.Fatal(err)
	}
	return srv, payload
}

// awaitRunsActive polls Stats until the in-flight gauge reaches want.
func awaitRunsActive(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().RunsActive != want {
		if time.Now().After(deadline) {
			t.Fatalf("RunsActive = %d, want %d", srv.Stats().RunsActive, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelFrameAbortsRun drives the v3 Cancel frame at the raw protocol
// level: a Cancel mid-run makes the server answer the run with an error
// promptly, free the slot (RunsActive back to 0, Canceled counted), and keep
// the connection serving.
func TestCancelFrameAbortsRun(t *testing.T) {
	srv, payload := slowServer(t, 20*time.Millisecond)
	_, addr := serveOn(t, srv)
	conn := dialRaw(t, addr)
	handshake(t, conn)

	if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
		t.Fatal(err)
	}
	awaitRunsActive(t, srv, 1)
	start := time.Now()
	if err := wire.WriteFrame(conn, wire.MsgCancel, nil); err != nil {
		t.Fatal(err)
	}
	mt, resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError {
		t.Fatalf("canceled run answered %v, want error", mt)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel-to-response took %v, want < 1s (full run is ~320ms of sleep)", elapsed)
	}
	_ = resp
	st := srv.Stats()
	if st.Canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", st.Canceled)
	}
	awaitRunsActive(t, srv, 0)

	// The connection still serves: a fresh run completes.
	if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgResult {
		t.Fatalf("run after cancel: (%v, %v), want result", mt, err)
	}
}

// TestStrayCancelIgnored pins the race where a Cancel crosses the response
// in flight: a Cancel with nothing running is silently ignored and the
// connection keeps its request/response accounting.
func TestStrayCancelIgnored(t *testing.T) {
	srv, payload := slowServer(t, 0)
	_, addr := serveOn(t, srv)
	conn := dialRaw(t, addr)
	handshake(t, conn)

	if err := wire.WriteFrame(conn, wire.MsgCancel, nil); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgResult {
		t.Fatalf("run after stray cancel: (%v, %v), want result", mt, err)
	}
	if st := srv.Stats(); st.Canceled != 0 {
		t.Fatalf("stray cancel counted as a cancellation: %+v", st)
	}
}

// TestShutdownCancelsInflightAndDrains is the graceful-shutdown gate:
// Shutdown stops accepting, cancels the in-flight query through its context
// (the client still gets the run's terminal error frame), and drains the
// connection goroutines within the context's budget.
func TestShutdownCancelsInflightAndDrains(t *testing.T) {
	srv, payload := slowServer(t, 20*time.Millisecond)
	done, addr := serveOn(t, srv)
	conn := dialRaw(t, addr)
	handshake(t, conn)

	if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
		t.Fatal(err)
	}
	awaitRunsActive(t, srv, 1)

	// The client should still receive the canceled run's terminal frame.
	type resp struct {
		mt  wire.MsgType
		err error
	}
	respc := make(chan resp, 1)
	go func() {
		mt, _, err := wire.ReadFrame(conn)
		respc <- resp{mt, err}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain took %v; in-flight work was not canceled", elapsed)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	r := <-respc
	if r.err != nil || r.mt != wire.MsgError {
		t.Fatalf("in-flight run ended with (%v, %v), want a canceled-error frame", r.mt, r.err)
	}
	st := srv.Stats()
	if st.Canceled == 0 {
		t.Fatal("shutdown did not count the canceled run")
	}
	if st.ConnsActive != 0 {
		t.Fatalf("connections survived shutdown: %d", st.ConnsActive)
	}
	// New connections are refused after shutdown.
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestShutdownIdleServer drains immediately with nothing in flight.
func TestShutdownIdleServer(t *testing.T) {
	srv, _ := slowServer(t, 0)
	done, _ := serveOn(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown returned %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}
