package server

import (
	"bytes"
	"context"
	"net"
	"reflect"
	"testing"

	"seabed/internal/engine"
	"seabed/internal/remote"
	"seabed/internal/store"
)

// startCappedServer serves a cluster-backed server negotiating at most
// maxProto (0 = the current version).
func startCappedServer(t *testing.T, maxProto int) (*Server, string) {
	t.Helper()
	srv := New(engine.NewCluster(engine.Config{Workers: 4}))
	srv.MaxProtocol = maxProto
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close() //nolint:errcheck // racing teardown
		<-done
	})
	return srv, ln.Addr().String()
}

// scanTable builds a mixed-kind table whose scan exercises every extent
// encoding: u64 words, ragged byte blobs, and strings.
func scanTable(t *testing.T, rows int) *store.Table {
	t.Helper()
	u := make([]uint64, rows)
	b := make([][]byte, rows)
	s := make([]string, rows)
	for i := range u {
		u[i] = uint64(i) * 3
		b[i] = bytes.Repeat([]byte{byte(i)}, i%4)
		s[i] = string(rune('a' + i%26))
	}
	tbl, err := store.Build("sc", []store.Column{
		{Name: "m", Kind: store.U64, U64: u},
		{Name: "blob", Kind: store.Bytes, Bytes: b},
		{Name: "tag", Kind: store.Str, Str: s},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestStreamedScanInterop runs the same streamed scan against a v5 server
// (columnar chunks) and a server capped at v4 (row-major fallback): the
// negotiation must be invisible — identical rows, values, and order.
func TestStreamedScanInterop(t *testing.T) {
	ctx := context.Background()
	tbl := scanTable(t, 500)
	scan := func(maxProto int) []engine.ScanRow {
		_, addr := startCappedServer(t, maxProto)
		rc, err := remote.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rc.Close() })
		if err := rc.RegisterTable(ctx, "sc", tbl); err != nil {
			t.Fatal(err)
		}
		var got []engine.ScanRow
		pl := &engine.Plan{Table: tbl, Project: []string{"m", "blob", "tag"}}
		res, err := rc.RunStream(ctx, pl, func(batch []engine.ScanRow) error {
			got = append(got, batch...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// FirstChunk rides the v7 result frame; a pre-v7 peer drops it.
		if maxProto == 0 && res.Metrics.FirstChunk <= 0 {
			t.Errorf("remote FirstChunk = %v, want > 0 on a v7 connection", res.Metrics.FirstChunk)
		}
		if maxProto == 4 && res.Metrics.FirstChunk != 0 {
			t.Errorf("remote FirstChunk = %v over a v4 connection, want 0", res.Metrics.FirstChunk)
		}
		return got
	}

	v5 := scan(0) // negotiate the current version: columnar chunks
	v4 := scan(4) // emulate an old daemon: row-major chunks
	if len(v5) != 500 || len(v4) != 500 {
		t.Fatalf("scan row counts: v5=%d v4=%d, want 500", len(v5), len(v4))
	}
	for i := range v5 {
		if v5[i].ID != v4[i].ID ||
			!reflect.DeepEqual(v5[i].U64s, v4[i].U64s) ||
			!reflect.DeepEqual(v5[i].Strs, v4[i].Strs) ||
			!bytesRowEqual(v5[i].Bytes, v4[i].Bytes) {
			t.Fatalf("row %d diverges across protocol versions:\n v5=%+v\n v4=%+v", i, v5[i], v4[i])
		}
	}
	// Spot-check values against the source so both paths aren't wrong alike.
	if v5[7].U64s[0] != 21 || v5[7].Strs[2] != "h" || len(v5[7].Bytes[1]) != 3 {
		t.Fatalf("row 7 = %+v, want u64 21, tag \"h\", 3 blob bytes", v5[7])
	}
}

// bytesRowEqual compares Bytes cells treating nil and empty as equal — the
// two framings legitimately differ in how they decode a zero-length blob.
func bytesRowEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
