package server

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"sort"

	"seabed/internal/durable"
	"seabed/internal/remote"
	"seabed/internal/store"
	"seabed/internal/wire"
)

// Segment shipping handlers (wire v6): the daemon half of fleet
// replication. A daemon answers MsgSegmentList with the CRC'd inventory of
// its tables, serves raw segment bytes for single-segment MsgSegmentFetch
// requests, and — for a fetch naming a source peer — dials that peer
// itself, pulls the table's segments plus WAL tail, verifies every CRC, and
// installs the result, so a fleet heals daemon-to-daemon without the proxy
// re-uploading anything. Durable daemons ship their on-disk files
// byte-for-byte; memory-only daemons synthesize one in-memory SBSG segment
// (wire.MemSegment) through durable.EncodeSegment.

// handleSegmentList answers a MsgSegmentList request with the manifests of
// the named table, or of every table when the ref is empty.
func (s *Server) handleSegmentList(payload []byte, proto uint64) (wire.MsgType, []byte) {
	if proto < 6 {
		return wire.MsgError, wire.EncodeError(fmt.Sprintf("server: segment shipping needs protocol v6, connection negotiated v%d", proto))
	}
	ref, err := wire.DecodeSegmentListReq(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	refs := []string{ref}
	if ref == "" {
		refs = s.TableRefs()
		sort.Strings(refs)
	}
	ms := make([]wire.TableManifest, 0, len(refs))
	for _, ref := range refs {
		m, err := s.shipManifest(ref)
		if err != nil {
			return wire.MsgError, wire.EncodeError(err.Error())
		}
		ms = append(ms, m)
	}
	return wire.MsgSegmentList, wire.EncodeSegmentList(ms)
}

// shipManifest inventories one table for shipping: identifier envelope plus
// the segment set a peer should fetch, in install order.
func (s *Server) shipManifest(ref string) (wire.TableManifest, error) {
	t, err := s.lookup(ref)
	if err != nil {
		return wire.TableManifest{}, err
	}
	m := wire.TableManifest{Ref: ref, Rows: t.NumRows()}
	if m.Rows > 0 {
		m.StartID = t.Parts[0].StartID
		m.EndID = t.EndID()
	} else {
		m.StartID, m.EndID = 1, 0 // the inverted empty envelope shards use
	}
	if s.durable != nil {
		segs, tail, err := s.durable.ShipManifest(ref)
		if err != nil {
			return wire.TableManifest{}, err
		}
		for _, sg := range segs {
			m.Segments = append(m.Segments, wire.SegmentInfo{Name: sg.Name, Size: uint64(sg.Size), CRC: sg.CRC})
		}
		if tail != nil {
			data, err := serializeTable(tail)
			if err != nil {
				return wire.TableManifest{}, err
			}
			m.Segments = append(m.Segments, wire.SegmentInfo{Name: wire.WALSegment, Size: uint64(len(data)), CRC: crc32.ChecksumIEEE(data)})
		}
		if len(m.Segments) > 0 {
			return m, nil
		}
		// Nothing committed and nothing pending (a just-registered empty
		// range): fall through to the synthesized in-memory segment so the
		// table — schema, envelope, emptiness and all — still ships.
	}
	data, err := durable.EncodeSegment(t)
	if err != nil {
		return wire.TableManifest{}, err
	}
	m.Segments = []wire.SegmentInfo{{Name: wire.MemSegment, Size: uint64(len(data)), CRC: crc32.ChecksumIEEE(data)}}
	return m, nil
}

// handleSegmentFetch serves one segment's bytes (empty From), or pulls and
// installs a whole table from the peer daemon named by From.
func (s *Server) handleSegmentFetch(payload []byte, proto uint64) (wire.MsgType, []byte) {
	if proto < 6 {
		return wire.MsgError, wire.EncodeError(fmt.Sprintf("server: segment shipping needs protocol v6, connection negotiated v%d", proto))
	}
	ref, name, from, err := wire.DecodeSegmentFetch(payload)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	if from != "" {
		if err := s.pullTable(ref, from); err != nil {
			return wire.MsgError, wire.EncodeError(err.Error())
		}
		return wire.MsgOK, nil
	}
	data, err := s.segmentBytes(ref, name)
	if err != nil {
		return wire.MsgError, wire.EncodeError(err.Error())
	}
	s.replicaFetch.Add(uint64(len(data)))
	s.repStat(ref).shippedBytes.Add(uint64(len(data)))
	return wire.MsgSegmentData, wire.EncodeSegmentData(name, data)
}

// segmentBytes resolves one shippable segment's raw bytes: a committed file,
// the WAL-tail pseudo-segment, or a memory-only daemon's synthesized table
// segment.
func (s *Server) segmentBytes(ref, name string) ([]byte, error) {
	switch {
	case name == wire.MemSegment:
		// Memory-only daemons always ship this; durable daemons ship it for
		// tables with nothing committed and nothing pending (see shipManifest).
		t, err := s.lookup(ref)
		if err != nil {
			return nil, err
		}
		return durable.EncodeSegment(t)
	case s.durable != nil && name == wire.WALSegment:
		_, tail, err := s.durable.ShipManifest(ref)
		if err != nil {
			return nil, err
		}
		if tail == nil {
			return nil, fmt.Errorf("server: table %q has no wal tail to ship", ref)
		}
		return serializeTable(tail)
	case s.durable != nil:
		return s.durable.SegmentBytes(ref, name)
	}
	return nil, fmt.Errorf("server: memory-only daemon ships %q segments, not %q", wire.MemSegment, name)
}

// pullTable dials the peer daemon at from, pulls table ref — segment list,
// every segment's bytes (CRC-verified by the frame decoder), and the WAL
// tail — and installs the result locally: durable daemons write the raw
// files back down byte-for-byte and journal the tail (durable.InstallTable),
// memory-only daemons decode onto the heap. The table is addressable in the
// registry when pullTable returns. The pull runs synchronously on the
// requesting connection with its own background context; the requester's
// deadline bounds how long it waits, not how long the transfer runs.
func (s *Server) pullTable(ref, from string) error {
	src, err := remote.Dial(from)
	if err != nil {
		return fmt.Errorf("server: pull %q: dial source %s: %w", ref, from, err)
	}
	defer src.Close()
	ctx := context.Background()
	ms, err := src.TableManifests(ctx, ref)
	if err != nil {
		return fmt.Errorf("server: pull %q from %s: %w", ref, from, err)
	}
	if len(ms) != 1 || ms[0].Ref != ref {
		return fmt.Errorf("server: pull %q: source %s does not serve it", ref, from)
	}

	var files []durable.ShipFile
	var memTable, tail *store.Table
	var pulled uint64
	for _, si := range ms[0].Segments {
		sd, err := src.FetchSegment(ctx, ref, si.Name)
		if err != nil {
			return fmt.Errorf("server: pull %q from %s: %w", ref, from, err)
		}
		pulled += uint64(len(sd.Data))
		switch si.Name {
		case wire.WALSegment:
			if tail, err = store.Read(bytes.NewReader(sd.Data)); err != nil {
				return fmt.Errorf("server: pull %q: decode wal tail: %w", ref, err)
			}
		case wire.MemSegment:
			if memTable, err = durable.DecodeSegment(sd.Data); err != nil {
				return fmt.Errorf("server: pull %q: decode table segment: %w", ref, err)
			}
		default:
			files = append(files, durable.ShipFile{Name: sd.Name, Data: sd.Data})
		}
	}

	// Assemble and install under tableMu, like any other registry mutation.
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	var tbl *store.Table
	switch {
	case s.durable != nil && len(files) > 0:
		if tbl, err = s.durable.InstallTable(ref, files, tail); err != nil {
			return err
		}
	case s.durable != nil && memTable != nil:
		// Synthesized-segment source (memory daemon, or a durable peer with
		// nothing on disk yet): no raw files to mirror, so register the
		// decoded table durably — the local daemon journals its own copy.
		if err := s.durable.Register(ref, memTable); err != nil {
			return err
		}
		tbl = memTable
	case s.durable != nil && tail != nil:
		// WAL-only source: the whole table is its uncompacted tail.
		if err := s.durable.Register(ref, tail); err != nil {
			return err
		}
		tbl = tail
	case memTable != nil:
		tbl = memTable
	case len(files) > 0:
		for _, f := range files {
			part, err := durable.DecodeSegment(f.Data)
			if err != nil {
				return fmt.Errorf("server: pull %q: decode segment %s: %w", ref, f.Name, err)
			}
			if tbl == nil {
				tbl = part
			} else if err := tbl.AppendTable(part); err != nil {
				return fmt.Errorf("server: pull %q: segment %s does not continue its predecessors: %w", ref, f.Name, err)
			}
		}
		if tail != nil {
			if err := tbl.AppendTable(tail); err != nil {
				return fmt.Errorf("server: pull %q: wal tail does not continue the segments: %w", ref, err)
			}
		}
	case tail != nil:
		tbl = tail
	default:
		return fmt.Errorf("server: pull %q: source %s shipped no segments", ref, from)
	}
	s.mu.Lock()
	s.tables[ref] = tbl
	s.mu.Unlock()
	s.replicaFetch.Add(pulled)
	s.repStat(ref).pulledBytes.Add(pulled)
	s.log("table pulled from peer", "ref", ref, "from", from, "bytes", pulled, "segments", len(ms[0].Segments))
	return nil
}

// serializeTable renders a table to its store serialization (the WAL record
// payload format), the encoding WAL-tail pseudo-segments ship in.
func serializeTable(t *store.Table) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("server: serialize wal tail: %w", err)
	}
	return buf.Bytes(), nil
}
