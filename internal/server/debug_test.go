package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"seabed/internal/engine"
	"seabed/internal/obs"
	"seabed/internal/store"
	"seabed/internal/wire"
)

// driveTraffic registers a table and runs one aggregate over the wire so the
// request-latency histograms have observations.
func driveTraffic(t *testing.T, addr string) {
	t.Helper()
	conn := dialRaw(t, addr)
	handshake(t, conn)
	tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: []uint64{1, 2, 3}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := wire.EncodeRegister("t@NoEnc", tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgRegister, reg); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgOK {
		t.Fatalf("register: (%v, %v)", mt, err)
	}
	run, err := wire.EncodePlan(&wire.PlanRequest{
		TableRef: "t@NoEnc",
		Plan:     &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}}},
	}, wire.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgRun, run); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgResult {
		t.Fatalf("run: (%v, %v)", mt, err)
	}
}

// TestDebugHandlerMetrics scrapes /metrics after real traffic and validates
// the exposition — format-level (via obs.ValidateExposition) and the core
// series the observability plane promises.
func TestDebugHandlerMetrics(t *testing.T) {
	srv, addr := startServer(t)
	driveTraffic(t, addr)

	ts := httptest.NewServer(srv.DebugHandler())
	t.Cleanup(ts.Close)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	body := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	fams, err := obs.ValidateExposition(body)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for name, typ := range map[string]string{
		"seabed_request_seconds":       "histogram",
		"seabed_bytes_in_total":        "counter",
		"seabed_bytes_out_total":       "counter",
		"seabed_requests_total":        "counter",
		"seabed_conns_active":          "gauge",
		"seabed_plan_cache_hits_total": "counter",
	} {
		if got := fams[name]; got != typ {
			t.Errorf("family %s = %q, want %q", name, got, typ)
		}
	}
	// The run we drove must have been observed by the latency histogram.
	text := string(body)
	if !strings.Contains(text, `seabed_request_seconds_count{type="run"} 1`) {
		t.Errorf("run latency not observed:\n%s", text)
	}
	if !strings.Contains(text, `seabed_request_seconds_count{type="register"} 1`) {
		t.Errorf("register latency not observed:\n%s", text)
	}
}

// TestDebugHandlerStats checks the /stats JSON endpoint exposes the stable
// snake_case snapshot.
func TestDebugHandlerStats(t *testing.T) {
	srv, addr := startServer(t)
	driveTraffic(t, addr)

	ts := httptest.NewServer(srv.DebugHandler())
	t.Cleanup(ts.Close)
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		ConnsTotal uint64 `json:"conns_total"`
		Runs       uint64 `json:"runs"`
		TableCount int    `json:"table_count"`
		Tables     []struct {
			Ref  string `json:"ref"`
			Rows uint64 `json:"rows"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ConnsTotal == 0 || got.Runs != 1 || got.TableCount != 1 {
		t.Fatalf("stats = %+v, want 1 run over 1 table", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].Ref != "t@NoEnc" || got.Tables[0].Rows != 3 {
		t.Fatalf("tables = %+v, want t@NoEnc with 3 rows", got.Tables)
	}
}
