package server

import (
	"bytes"
	"testing"

	"seabed/internal/durable"
	"seabed/internal/engine"
	"seabed/internal/store"
	"seabed/internal/wire"
)

// durableFixtureTable builds rows worth persisting.
func durableFixtureTable(t *testing.T, startID uint64, rows int) *store.Table {
	t.Helper()
	u := make([]uint64, rows)
	for i := range u {
		u[i] = startID + uint64(i)
	}
	tbl, err := store.BuildFrom("d", []store.Column{{Name: "v", Kind: store.U64, U64: u}}, 2, startID)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestServerDurableRegistryRoundTrip drives the server's registry mutations
// with a durable store attached and checks a second server mounting the
// same directory recovers the registry — the restart path of a
// seabed-server daemon — including replay idempotency across the restart.
func TestServerDurableRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine.NewCluster(engine.Config{Workers: 2}))
	srv.UseDurable(d)

	tbl := durableFixtureTable(t, 1, 100)
	if err := srv.RegisterTable("d#noenc", tbl); err != nil {
		t.Fatal(err)
	}
	batch := durableFixtureTable(t, 101, 40)
	payload, err := wire.EncodeAppend("d#noenc", batch)
	if err != nil {
		t.Fatal(err)
	}
	if typ, resp := srv.handleAppend(payload); typ != wire.MsgOK {
		t.Fatalf("append failed: %s", wire.DecodeError(resp))
	}
	// A replayed batch acks without re-journaling.
	if typ, resp := srv.handleAppend(payload); typ != wire.MsgOK {
		t.Fatalf("replayed append failed: %s", wire.DecodeError(resp))
	}
	want, err := srv.lookup("d#noenc")
	if err != nil {
		t.Fatal(err)
	}
	if want.NumRows() != 140 {
		t.Fatalf("registry holds %d rows, want 140", want.NumRows())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh durable store and server over the same directory.
	d2, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	srv2 := New(engine.NewCluster(engine.Config{Workers: 2}))
	srv2.UseDurable(d2)
	got, err := srv2.lookup("d#noenc")
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf, gotBuf bytes.Buffer
	if _, err := want.WriteTo(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Fatal("recovered registry table is not byte-identical")
	}

	st := srv2.Stats()
	if st.TableCount != 1 || st.ResidentBytes == 0 {
		t.Fatalf("stats miss the recovered table: %+v", st)
	}
	if st.Recovery.Tables != 1 || st.Recovery.WALRecords != 1 || st.Recovery.Duration <= 0 {
		t.Fatalf("recovery stats off (want 1 table, 1 wal record — the replay must not have re-journaled): %+v", st.Recovery)
	}
	// Appends continue past the recovered identifier range.
	payload2, err := wire.EncodeAppend("d#noenc", durableFixtureTable(t, 141, 10))
	if err != nil {
		t.Fatal(err)
	}
	if typ, resp := srv2.handleAppend(payload2); typ != wire.MsgOK {
		t.Fatalf("post-recovery append failed: %s", wire.DecodeError(resp))
	}
}

// TestStatsStringSurfacesDurability checks the SIGUSR1 dump carries the new
// counters.
func TestStatsStringSurfacesDurability(t *testing.T) {
	st := Stats{
		TableCount:      2,
		ResidentBytes:   3 << 20,
		PlanCacheHits:   7,
		PlanCacheMisses: 3,
		Recovery:        durable.RecoveryStats{Tables: 2, Segments: 4, WALRecords: 9, Bytes: 1 << 20, Duration: 1},
	}
	out := st.String()
	for _, want := range []string{"tables=2", "resident=3.0MiB", "plan-cache=7/3", "recovered 2 tables", "9 wal records"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("stats dump %q misses %q", out, want)
		}
	}
}
