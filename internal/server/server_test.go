package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"seabed/internal/engine"
	"seabed/internal/store"
	"seabed/internal/wire"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(engine.NewCluster(engine.Config{Workers: 4}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func handshake(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	mt, _, err := wire.ReadFrame(conn)
	if err != nil || mt != wire.MsgWelcome {
		t.Fatalf("handshake: (%v, %v), want welcome", mt, err)
	}
}

func TestRejectsWrongProtocolVersion(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	e := wire.EncodeHello()
	e[0] = 1 // corrupt the version varint to a pre-MinVersion value
	if err := wire.WriteFrame(conn, wire.MsgHello, e); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(wire.DecodeError(payload), "version") {
		t.Fatalf("got (%v, %q), want a version-mismatch error", mt, wire.DecodeError(payload))
	}
}

// TestNegotiatesDownNewerClient pins the forward-compatibility half of the v4
// handshake: a client offering a version newer than the server's answers with
// the server's own version in the Welcome rather than a rejection.
func TestNegotiatesDownNewerClient(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHelloVersion(wire.Version+3)); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgWelcome {
		t.Fatalf("got %v frame, want welcome", mt)
	}
	v, _, _, _, err := wire.DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != wire.Version {
		t.Fatalf("negotiated v%d, want v%d", v, wire.Version)
	}
}

func TestDropsConnectionOnNonHelloFirstFrame(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgRun, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("server answered a connection that skipped the handshake")
	}
}

func TestUnknownRequestAnswersErrorAndKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	handshake(t, conn)
	if err := wire.WriteFrame(conn, wire.MsgWelcome, nil); err != nil { // not a request type
		t.Fatal(err)
	}
	mt, _, err := wire.ReadFrame(conn)
	if err != nil || mt != wire.MsgError {
		t.Fatalf("got (%v, %v), want an error frame", mt, err)
	}
	// The connection must survive a bad request.
	if err := wire.WriteFrame(conn, wire.MsgRun, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if mt, _, err = wire.ReadFrame(conn); err != nil || mt != wire.MsgError {
		t.Fatalf("after bad request: (%v, %v), want an error frame", mt, err)
	}
}

func TestRunAgainstUnknownRefAnswersError(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	handshake(t, conn)
	payload, err := wire.EncodePlan(&wire.PlanRequest{
		TableRef: "ghost@Seabed",
		Plan:     &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggCount}}},
	}, wire.Version)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
		t.Fatal(err)
	}
	mt, resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(wire.DecodeError(resp), "unknown table") {
		t.Fatalf("got (%v, %q), want an unknown-table error", mt, wire.DecodeError(resp))
	}
}

// TestRegistryConcurrentAccess hammers the table registry from parallel
// registrations, lookups, and plan runs (meaningful under -race).
func TestRegistryConcurrentAccess(t *testing.T) {
	srv, _ := startServer(t)
	mkTable := func(n uint64) *store.Table {
		vals := make([]uint64, 100)
		for i := range vals {
			vals[i] = n
		}
		tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: vals}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ref := fmt.Sprintf("t%d@Seabed", g%4)
			for i := 0; i < 20; i++ {
				if err := srv.RegisterTable(ref, mkTable(uint64(g))); err != nil {
					t.Error(err)
					return
				}
				if tbl, err := srv.lookup(ref); err != nil || tbl.NumRows() != 100 {
					t.Errorf("lookup %q: (%v, %v)", ref, tbl, err)
					return
				}
				srv.TableRefs()
			}
		}(g)
	}
	wg.Wait()
	if got := len(srv.TableRefs()); got != 4 {
		t.Fatalf("registry holds %d refs, want 4", got)
	}
}

// TestAppendIdempotentReplay pins the at-most-once contract: a retried
// append frame whose rows are already the table's tail (the client's
// connection died after apply, before the MsgOK) is acknowledged without
// re-applying, while genuinely misplaced batches still fail.
func TestAppendIdempotentReplay(t *testing.T) {
	srv := New(engine.NewCluster(engine.Config{Workers: 2}))
	base, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: make([]uint64, 100)}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@Seabed", base); err != nil {
		t.Fatal(err)
	}
	mkBatch := func(startID uint64, n int) []byte {
		batch, err := store.BuildFrom("t", []store.Column{{Name: "v", Kind: store.U64, U64: make([]uint64, n)}}, 1, startID)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := wire.EncodeAppend("t@Seabed", batch)
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	rows := func() uint64 {
		tbl, err := srv.lookup("t@Seabed")
		if err != nil {
			t.Fatal(err)
		}
		return tbl.NumRows()
	}

	payload := mkBatch(101, 10)
	if mt, resp := srv.handleAppend(payload); mt != wire.MsgOK {
		t.Fatalf("append: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 110 {
		t.Fatalf("rows after append = %d, want 110", rows())
	}
	// Replay of the same frame: acknowledged, not re-applied.
	if mt, resp := srv.handleAppend(payload); mt != wire.MsgOK {
		t.Fatalf("replay: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 110 {
		t.Fatalf("rows after replay = %d, want 110 (double-applied)", rows())
	}
	// The next fresh batch continues normally.
	if mt, resp := srv.handleAppend(mkBatch(111, 5)); mt != wire.MsgOK {
		t.Fatalf("follow-up append: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 115 {
		t.Fatalf("rows after follow-up = %d, want 115", rows())
	}
	// A replay of rows that are no longer the tail is still acknowledged
	// without re-applying: append identifiers only grow, so a batch ending
	// at or before the table's last identifier was already applied.
	if mt, resp := srv.handleAppend(payload); mt != wire.MsgOK {
		t.Fatalf("old replay: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 115 {
		t.Fatalf("rows after old replay = %d, want 115 (double-applied)", rows())
	}
	// A batch that overlaps the tail without being a pure replay is
	// genuinely misplaced and still fails.
	if mt, _ := srv.handleAppend(mkBatch(110, 11)); mt != wire.MsgError {
		t.Fatal("overlapping batch accepted")
	}
	if rows() != 115 {
		t.Fatalf("rows after overlap = %d, want 115", rows())
	}
	// A batch that starts past the tail is accepted with a gap: a shard
	// table owns only its slice of each global batch, so the identifiers it
	// receives skip those routed to other shards.
	if mt, resp := srv.handleAppend(mkBatch(200, 5)); mt != wire.MsgOK {
		t.Fatalf("gapped shard batch: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 120 {
		t.Fatalf("rows after gapped batch = %d, want 120", rows())
	}
	// A batch landing inside a gap — identifiers this shard never held — is
	// not a replay and must fail, not be silently acknowledged.
	if mt, _ := srv.handleAppend(mkBatch(150, 5)); mt != wire.MsgError {
		t.Fatal("never-applied gap batch acknowledged")
	}
	if rows() != 120 {
		t.Fatalf("rows after gap batch = %d, want 120", rows())
	}
}

// TestHostileShortFramesMidStream sends a frame whose header promises more
// payload than ever arrives, mid-connection: the server must drop the
// connection without hanging other clients or panicking, and keep serving
// fresh connections.
func TestHostileShortFramesMidStream(t *testing.T) {
	srv, addr := startServer(t)
	conn := dialRaw(t, addr)
	handshake(t, conn)

	// A well-formed request first, so the short frame lands mid-stream.
	if err := wire.WriteFrame(conn, wire.MsgRun, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgError {
		t.Fatalf("malformed plan: (%v, %v), want error frame", mt, err)
	}
	// Header claims 1 KiB, then the client vanishes.
	head := []byte{byte(wire.MsgRun), 0, 0, 4, 0}
	if _, err := conn.Write(append(head, []byte("short")...)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// An oversized length prefix must also just drop the connection.
	conn2 := dialRaw(t, addr)
	handshake(t, conn2)
	if _, err := conn2.Write([]byte{byte(wire.MsgRun), 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(conn2); err == nil {
		t.Fatal("server answered a frame exceeding MaxFrame")
	}

	// The server survives both and serves fresh connections.
	conn3 := dialRaw(t, addr)
	handshake(t, conn3)
	if st := srv.Stats(); st.ConnsTotal < 3 {
		t.Fatalf("conns total = %d, want ≥ 3", st.ConnsTotal)
	}
}

// TestAppendReplayOverWire drives the at-most-once append contract through
// a real socket: the same MsgAppend frame sent twice (a client retrying
// after a lost MsgOK) is acknowledged both times and applied once.
func TestAppendReplayOverWire(t *testing.T) {
	srv, addr := startServer(t)
	base, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: make([]uint64, 100)}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@Seabed", base); err != nil {
		t.Fatal(err)
	}
	batch, err := store.BuildFrom("t", []store.Column{{Name: "v", Kind: store.U64, U64: []uint64{7, 8, 9}}}, 1, 101)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.EncodeAppend("t@Seabed", batch)
	if err != nil {
		t.Fatal(err)
	}

	conn := dialRaw(t, addr)
	handshake(t, conn)
	for attempt := 0; attempt < 2; attempt++ {
		if err := wire.WriteFrame(conn, wire.MsgAppend, payload); err != nil {
			t.Fatal(err)
		}
		if mt, resp, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgOK {
			t.Fatalf("attempt %d: (%v, %q, %v), want ok", attempt, mt, wire.DecodeError(resp), err)
		}
	}
	tbl, err := srv.lookup("t@Seabed")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 103 {
		t.Fatalf("rows = %d, want 103 (replay double-applied)", tbl.NumRows())
	}
	if st := srv.Stats(); st.Appends != 2 {
		t.Fatalf("append counter = %d, want 2", st.Appends)
	}
}

// TestCloseRacesInflightQueries closes the server while queries are on the
// wire: in-flight requests may fail with connection errors, but nothing
// hangs, panics, or leaks a goroutine past Close (meaningful under -race).
func TestCloseRacesInflightQueries(t *testing.T) {
	srv := New(engine.NewCluster(engine.Config{Workers: 2}))
	vals := make([]uint64, 20000)
	tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: vals}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@NoEnc", tbl); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	// Prove the server is accepting before racing Close against queries:
	// a successful handshake means Serve has registered the listener.
	probe := dialRaw(t, ln.Addr().String())
	handshake(t, probe)
	probe.Close()

	payload, err := wire.EncodePlan(&wire.PlanRequest{
		TableRef: "t@NoEnc",
		Plan:     &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}}},
	}, wire.Version)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return // Close won the race with the dial
			}
			defer conn.Close()
			if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHello()); err != nil {
				return
			}
			if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgWelcome {
				return
			}
			for i := 0; i < 50; i++ {
				if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
					return // server closed mid-stream: expected
				}
				if _, _, err := wire.ReadFrame(conn); err != nil {
					return
				}
			}
		}()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	wg.Wait() // Close waited for connection goroutines; clients must unblock
}

func TestCloseThenServeAgainKeepsRegistry(t *testing.T) {
	srv := New(engine.NewCluster(engine.Config{Workers: 2}))
	tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: []uint64{1}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@NoEnc", tbl); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		conn := dialRaw(t, ln.Addr().String())
		handshake(t, conn)
		conn.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: serve returned %v", round, err)
		}
	}
	if len(srv.TableRefs()) != 1 {
		t.Fatal("registry did not survive Close")
	}
}
