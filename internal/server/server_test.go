package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"seabed/internal/engine"
	"seabed/internal/store"
	"seabed/internal/wire"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(engine.NewCluster(engine.Config{Workers: 4}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func handshake(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	mt, _, err := wire.ReadFrame(conn)
	if err != nil || mt != wire.MsgWelcome {
		t.Fatalf("handshake: (%v, %v), want welcome", mt, err)
	}
}

func TestRejectsWrongProtocolVersion(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	e := wire.EncodeHello()
	e[0] = 99 // corrupt the version varint (still a valid varint)
	if err := wire.WriteFrame(conn, wire.MsgHello, e); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(wire.DecodeError(payload), "version") {
		t.Fatalf("got (%v, %q), want a version-mismatch error", mt, wire.DecodeError(payload))
	}
}

func TestDropsConnectionOnNonHelloFirstFrame(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgRun, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("server answered a connection that skipped the handshake")
	}
}

func TestUnknownRequestAnswersErrorAndKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	handshake(t, conn)
	if err := wire.WriteFrame(conn, wire.MsgWelcome, nil); err != nil { // not a request type
		t.Fatal(err)
	}
	mt, _, err := wire.ReadFrame(conn)
	if err != nil || mt != wire.MsgError {
		t.Fatalf("got (%v, %v), want an error frame", mt, err)
	}
	// The connection must survive a bad request.
	if err := wire.WriteFrame(conn, wire.MsgRun, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if mt, _, err = wire.ReadFrame(conn); err != nil || mt != wire.MsgError {
		t.Fatalf("after bad request: (%v, %v), want an error frame", mt, err)
	}
}

func TestRunAgainstUnknownRefAnswersError(t *testing.T) {
	_, addr := startServer(t)
	conn := dialRaw(t, addr)
	handshake(t, conn)
	payload, err := wire.EncodePlan(&wire.PlanRequest{
		TableRef: "ghost@Seabed",
		Plan:     &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggCount}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgRun, payload); err != nil {
		t.Fatal(err)
	}
	mt, resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(wire.DecodeError(resp), "unknown table") {
		t.Fatalf("got (%v, %q), want an unknown-table error", mt, wire.DecodeError(resp))
	}
}

// TestRegistryConcurrentAccess hammers the table registry from parallel
// registrations, lookups, and plan runs (meaningful under -race).
func TestRegistryConcurrentAccess(t *testing.T) {
	srv, _ := startServer(t)
	mkTable := func(n uint64) *store.Table {
		vals := make([]uint64, 100)
		for i := range vals {
			vals[i] = n
		}
		tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: vals}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ref := fmt.Sprintf("t%d@Seabed", g%4)
			for i := 0; i < 20; i++ {
				if err := srv.RegisterTable(ref, mkTable(uint64(g))); err != nil {
					t.Error(err)
					return
				}
				if tbl, err := srv.lookup(ref); err != nil || tbl.NumRows() != 100 {
					t.Errorf("lookup %q: (%v, %v)", ref, tbl, err)
					return
				}
				srv.TableRefs()
			}
		}(g)
	}
	wg.Wait()
	if got := len(srv.TableRefs()); got != 4 {
		t.Fatalf("registry holds %d refs, want 4", got)
	}
}

// TestAppendIdempotentReplay pins the at-most-once contract: a retried
// append frame whose rows are already the table's tail (the client's
// connection died after apply, before the MsgOK) is acknowledged without
// re-applying, while genuinely misplaced batches still fail.
func TestAppendIdempotentReplay(t *testing.T) {
	srv := New(engine.NewCluster(engine.Config{Workers: 2}))
	base, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: make([]uint64, 100)}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@Seabed", base); err != nil {
		t.Fatal(err)
	}
	mkBatch := func(startID uint64, n int) []byte {
		batch, err := store.BuildFrom("t", []store.Column{{Name: "v", Kind: store.U64, U64: make([]uint64, n)}}, 1, startID)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := wire.EncodeAppend("t@Seabed", batch)
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	rows := func() uint64 {
		tbl, err := srv.lookup("t@Seabed")
		if err != nil {
			t.Fatal(err)
		}
		return tbl.NumRows()
	}

	payload := mkBatch(101, 10)
	if mt, resp := srv.handleAppend(payload); mt != wire.MsgOK {
		t.Fatalf("append: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 110 {
		t.Fatalf("rows after append = %d, want 110", rows())
	}
	// Replay of the same frame: acknowledged, not re-applied.
	if mt, resp := srv.handleAppend(payload); mt != wire.MsgOK {
		t.Fatalf("replay: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 110 {
		t.Fatalf("rows after replay = %d, want 110 (double-applied)", rows())
	}
	// The next fresh batch continues normally.
	if mt, resp := srv.handleAppend(mkBatch(111, 5)); mt != wire.MsgOK {
		t.Fatalf("follow-up append: %v %s", mt, wire.DecodeError(resp))
	}
	if rows() != 115 {
		t.Fatalf("rows after follow-up = %d, want 115", rows())
	}
	// A genuinely misplaced batch still fails.
	if mt, _ := srv.handleAppend(mkBatch(200, 5)); mt != wire.MsgError {
		t.Fatal("misplaced batch accepted")
	}
}

func TestCloseThenServeAgainKeepsRegistry(t *testing.T) {
	srv := New(engine.NewCluster(engine.Config{Workers: 2}))
	tbl, err := store.Build("t", []store.Column{{Name: "v", Kind: store.U64, U64: []uint64{1}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterTable("t@NoEnc", tbl); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		conn := dialRaw(t, ln.Addr().String())
		handshake(t, conn)
		conn.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("round %d: serve returned %v", round, err)
		}
	}
	if len(srv.TableRefs()) != 1 {
		t.Fatal("registry did not survive Close")
	}
}
