package wire

import (
	"bytes"
	crand "crypto/rand"
	"io"
	"math/big"
	"reflect"
	"testing"
	"time"

	"seabed/internal/engine"
	"seabed/internal/idlist"
	"seabed/internal/paillier"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, MsgRun, p); err != nil {
			t.Fatalf("frame %d: write: %v", i, err)
		}
	}
	for i, p := range payloads {
		mt, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if mt != MsgRun {
			t.Fatalf("frame %d: type %v, want %v", i, mt, MsgRun)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgResult, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("reading %d of %d bytes succeeded", cut, len(whole))
		}
	}
	// A clean EOF at a frame boundary is io.EOF, so callers can tell an
	// orderly close from a mid-frame cut.
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	head := []byte{byte(MsgRun), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(head)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	v, err := DecodeHello(EncodeHello())
	if err != nil {
		t.Fatal(err)
	}
	if v != Version {
		t.Fatalf("hello version %d, want %d", v, Version)
	}
	v, workers, shardIdx, shardCount, err := DecodeWelcome(EncodeWelcome(Version, 48, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if v != Version || workers != 48 || shardIdx != 1 || shardCount != 3 {
		t.Fatalf("welcome = (v%d, %d workers, shard %d/%d), want (v%d, 48, 1/3)", v, workers, shardIdx, shardCount, Version)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	if got := DecodeError(EncodeError("boom: table missing")); got != "boom: table missing" {
		t.Fatalf("error round trip = %q", got)
	}
}

func TestCodecByName(t *testing.T) {
	for _, c := range idlist.AllCodecs() {
		got, err := CodecByName(c.Name())
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got.Name() != c.Name() {
			t.Fatalf("CodecByName(%q).Name() = %q", c.Name(), got.Name())
		}
	}
	if c, err := CodecByName(""); err != nil || c != nil {
		t.Fatalf("empty name = (%v, %v), want (nil, nil)", c, err)
	}
	if _, err := CodecByName("snappy"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// testPK is a small Paillier key generated once for the suite.
var testPK = func() *paillier.PublicKey {
	sk, err := paillier.GenerateKey(crand.Reader, 256)
	if err != nil {
		panic(err)
	}
	return &sk.PublicKey
}()

func TestPlanRoundTrip(t *testing.T) {
	plans := map[string]*PlanRequest{
		"minimal": {
			TableRef: "sales@Seabed",
			Plan: &engine.Plan{
				Aggs: []engine.Agg{{Kind: engine.AggCount}},
			},
		},
		"kitchen-sink": {
			TableRef: "sales@Seabed",
			JoinRef:  "stores@Seabed",
			Plan: &engine.Plan{
				Join: &engine.Join{
					LeftCol:   "store",
					RightCol:  "id",
					RightCols: []string{"region", "sqft"},
				},
				Filters: []engine.Filter{
					{Kind: engine.FilterPlainCmp, Col: "day", Op: sqlparse.OpGt, U64: 180},
					{Kind: engine.FilterStrCmp, Col: "country", Op: sqlparse.OpNe, Str: "USA"},
					{Kind: engine.FilterDetEq, Col: "country", Bytes: []byte{1, 2, 3}, Negate: true},
					{Kind: engine.FilterOpeCmp, Col: "day", Op: sqlparse.OpLe, Bytes: []byte{9, 8}},
					{Kind: engine.FilterRandom, Prob: 0.125, Seed: 42},
				},
				Aggs: []engine.Agg{
					{Kind: engine.AggAsheSum, Col: "revenue"},
					{Kind: engine.AggPaillierSum, Col: "revenue_p", PK: testPK},
					{Kind: engine.AggOpeMax, Col: "day_ope", Companion: "revenue"},
				},
				GroupBy:          &engine.GroupBy{Col: "store", Inflate: 7},
				Codec:            idlist.VBDiff,
				CompressAtDriver: true,
			},
		},
		"scan": {
			TableRef: "sales@NoEnc",
			Plan: &engine.Plan{
				Project: []string{"revenue", "country"},
				Codec:   idlist.Default,
			},
		},
		"shard-scoped": {
			TableRef: "sales@Seabed",
			Plan: &engine.Plan{
				Aggs:    []engine.Agg{{Kind: engine.AggAsheSum, Col: "revenue"}},
				Range:   &engine.IDRange{Lo: 667, Hi: 1333},
				Partial: true,
				Codec:   idlist.Default,
			},
		},
	}
	for name, req := range plans {
		t.Run(name, func(t *testing.T) {
			payload, err := EncodePlan(req, Version)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodePlan(payload, Version)
			if err != nil {
				t.Fatal(err)
			}
			if got.TableRef != req.TableRef || got.JoinRef != req.JoinRef {
				t.Fatalf("refs = (%q, %q), want (%q, %q)", got.TableRef, got.JoinRef, req.TableRef, req.JoinRef)
			}
			// The Paillier key is reconstructed from its modulus; compare it
			// semantically, then align for the deep comparison.
			for i := range req.Plan.Aggs {
				want := req.Plan.Aggs[i].PK
				if want == nil {
					continue
				}
				pk := got.Plan.Aggs[i].PK
				if pk == nil || pk.N.Cmp(want.N) != 0 || pk.NSquared.Cmp(want.NSquared) != 0 ||
					pk.CiphertextSize() != want.CiphertextSize() {
					t.Fatalf("agg %d: Paillier key did not survive the round trip", i)
				}
				got.Plan.Aggs[i].PK = want
			}
			if !reflect.DeepEqual(got.Plan, req.Plan) {
				t.Fatalf("plan round trip:\n got %+v\nwant %+v", got.Plan, req.Plan)
			}
		})
	}
}

func TestPlanEncodeRejectsBadRequests(t *testing.T) {
	if _, err := EncodePlan(&PlanRequest{TableRef: "t"}, Version); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := EncodePlan(&PlanRequest{Plan: &engine.Plan{}}, Version); err == nil {
		t.Fatal("empty table ref accepted")
	}
	join := &PlanRequest{TableRef: "t", Plan: &engine.Plan{Join: &engine.Join{LeftCol: "k", RightCol: "k"}}}
	if _, err := EncodePlan(join, Version); err == nil {
		t.Fatal("join without right-table ref accepted")
	}
}

func TestPlanDecodeRejectsUnknownCodec(t *testing.T) {
	req := &PlanRequest{TableRef: "t", Plan: &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggCount}}}}
	payload, err := EncodePlan(req, Version)
	if err != nil {
		t.Fatal(err)
	}
	// The codec name is the penultimate field; corrupt it wholesale by
	// truncating the payload instead, which must also fail.
	if _, err := DecodePlan(payload[:len(payload)-1], Version); err == nil {
		t.Fatal("truncated plan accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	ids := idlist.FromRange(10, 1000)
	ids.Merge(idlist.FromRange(500, 600)) // overlapping: duplicates preserved
	encoded, err := idlist.Default.Encode(ids)
	if err != nil {
		t.Fatal(err)
	}
	res := &engine.Result{
		Groups: []engine.Group{
			{
				KeyKind: store.U64, KeyU64: 7, Suffix: -1, Rows: 991,
				Aggs: []engine.AggValue{
					{Kind: engine.AggAsheSum, Ashe: engine.AsheAgg{Body: 0xDEADBEEFCAFE, IDs: ids, Encoded: encoded}},
					{Kind: engine.AggCount, U64: 991},
					{Kind: engine.AggPaillierSum, Pail: big.NewInt(0).Lsh(big.NewInt(12345), 300)},
				},
			},
			{
				KeyKind: store.Bytes, KeyBytes: []byte{0xAA, 0xBB}, Suffix: 3, Rows: 2,
				Aggs: []engine.AggValue{
					{Kind: engine.AggOpeMax, Ope: []byte{1, 2, 3}, ArgID: 77, U64: 41, CompanionBytes: []byte{9}},
				},
			},
			{KeyKind: store.Str, KeyStr: "Canada", Suffix: -1, Rows: 0, Aggs: []engine.AggValue{{Kind: engine.AggPlainMin}}},
			{
				// Partial-plan median collections (shard slices).
				KeyKind: store.U64, KeyU64: 9, Suffix: -1, Rows: 5,
				Aggs: []engine.AggValue{
					{Kind: engine.AggPlainMedian, MedU64: []uint64{5, 1, 3}},
					{Kind: engine.AggOpeMedian,
						MedOpe:  [][]byte{{4, 4}, {1, 1}, {2}},
						MedIDs:  []uint64{11, 12, 13},
						MedComp: []uint64{400, 100, 200}},
				},
			},
		},
		Scan: []engine.ScanRow{
			{ID: 1, U64s: []uint64{42, 0}, Bytes: [][]byte{nil, {5, 6}}, Strs: []string{"", ""}},
			{ID: 2, U64s: []uint64{0, 0}, Bytes: [][]byte{nil, nil}, Strs: []string{"x", "y"}},
		},
		Metrics: engine.Metrics{
			ServerTime: 123 * time.Millisecond, MapTime: 100 * time.Millisecond,
			ReduceTime: 13 * time.Millisecond, ShuffleTime: 10 * time.Millisecond,
			DriverTime: 1 * time.Millisecond, ShuffleBytes: 4096, ResultBytes: 512,
			MapTasks: 32, ReduceTasks: 4, RowsScanned: 1_000_000, RowsSelected: 993,
		},
	}
	payload, err := EncodeResult(idlist.Default.Name(), res, nil, Version)
	if err != nil {
		t.Fatal(err)
	}
	codecName, got, _, err := DecodeResult(payload, Version)
	if err != nil {
		t.Fatal(err)
	}
	if codecName != idlist.Default.Name() {
		t.Fatalf("codec name %q, want %q", codecName, idlist.Default.Name())
	}
	if !got.Groups[0].Aggs[0].Ashe.IDs.Equal(ids) {
		t.Fatalf("id list round trip: got %v, want %v", got.Groups[0].Aggs[0].Ashe.IDs, ids)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result round trip:\n got %+v\nwant %+v", got, res)
	}
}

// TestDecodeResultRejectsHostileCounts pins the allocation guards: a tiny
// frame claiming a huge element count must fail the decode, not panic or
// OOM the trusted proxy (the server is untrusted).
func TestDecodeResultRejectsHostileCounts(t *testing.T) {
	e := &enc{}
	e.str("")       // codec name
	e.uint(0)       // no groups
	e.uint(1)       // one scan row
	e.uint(7)       // row id
	e.uint(1 << 62) // hostile projection count
	if _, _, _, err := DecodeResult(e.buf, Version); err == nil {
		t.Fatal("hostile scan-column count accepted")
	}

	e = &enc{}
	e.str("")
	e.uint(1) // one group
	e.uint(0) // key kind
	e.uint(0) // key u64
	e.bytes(nil)
	e.str("")
	e.int(-1)       // suffix
	e.uint(1)       // rows
	e.uint(1)       // one agg
	e.uint(0)       // agg kind
	e.uint(0)       // agg u64
	e.uint(0)       // ashe body
	e.uint(1 << 62) // hostile range count
	if _, _, _, err := DecodeResult(e.buf, Version); err == nil {
		t.Fatal("hostile id-list range count accepted")
	}
}

// TestDecodeResultRejectsOverflowedRange pins the span-overflow guard: a
// range whose span wraps hi below lo must fail the decode instead of
// panicking inside idlist.FromRanges.
func TestDecodeResultRejectsOverflowedRange(t *testing.T) {
	e := &enc{}
	e.str("")
	e.uint(1) // one group
	e.uint(0)
	e.uint(0)
	e.bytes(nil)
	e.str("")
	e.int(-1)
	e.uint(1)
	e.uint(1) // one agg
	e.uint(0)
	e.uint(0)
	e.uint(0)              // ashe body
	e.uint(1)              // one range
	e.uint(10)             // lo delta
	e.uint(^uint64(0) - 3) // span: hi = 10 + (2^64−4) wraps below lo
	e.bytes(nil)           // encoded
	e.bool(false)          // no pail
	e.bytes(nil)           // ope
	e.uint(0)              // arg id
	e.bytes(nil)           // companion
	e.uint(0)              // no scan rows
	encodeMetrics(e, &engine.Metrics{}, Version)
	if _, _, _, err := DecodeResult(e.buf, Version); err == nil {
		t.Fatal("overflow-inverted range accepted")
	}
}

func TestAppendFrameRoundTrip(t *testing.T) {
	batch, err := store.BuildFrom("sales", []store.Column{
		{Name: "revenue", Kind: store.U64, U64: []uint64{9, 8}},
	}, 1, 1001)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeAppend("sales@Seabed", batch)
	if err != nil {
		t.Fatal(err)
	}
	ref, got, err := DecodeAppend(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ref != "sales@Seabed" || got.NumRows() != 2 || got.Parts[0].StartID != 1001 {
		t.Fatalf("append round trip: ref=%q rows=%d start=%d", ref, got.NumRows(), got.Parts[0].StartID)
	}
}

func TestResultEncodeRejectsRaggedScanRows(t *testing.T) {
	res := &engine.Result{Scan: []engine.ScanRow{{ID: 1, U64s: []uint64{1, 2}, Bytes: [][]byte{nil}, Strs: []string{"", ""}}}}
	if _, err := EncodeResult("", res, nil, Version); err == nil {
		t.Fatal("ragged scan row accepted")
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	tbl, err := store.Build("sales", []store.Column{
		{Name: "revenue", Kind: store.U64, U64: []uint64{1, 2, 3, 4, 5}},
		{Name: "ct", Kind: store.Bytes, Bytes: [][]byte{{1}, {2, 2}, nil, {4}, {5}}},
		{Name: "country", Kind: store.Str, Str: []string{"a", "b", "c", "d", "e"}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeRegister("sales@Seabed", tbl)
	if err != nil {
		t.Fatal(err)
	}
	ref, got, err := DecodeRegister(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ref != "sales@Seabed" {
		t.Fatalf("ref = %q", ref)
	}
	if got.NumRows() != tbl.NumRows() || len(got.Parts) != len(tbl.Parts) {
		t.Fatalf("table shape = (%d rows, %d parts), want (%d, %d)",
			got.NumRows(), len(got.Parts), tbl.NumRows(), len(tbl.Parts))
	}
	var a, b bytes.Buffer
	if _, err := tbl.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("table serialization changed across the register round trip")
	}
}

func TestRegisterRejectsJunk(t *testing.T) {
	if _, _, err := DecodeRegister([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Fatal("junk register payload accepted")
	}
	if _, err := EncodeRegister("", &store.Table{}); err == nil {
		t.Fatal("empty ref accepted")
	}
}

func TestScanChunkRoundTrip(t *testing.T) {
	// The pre-v5 row-major framing tolerates per-row widths (and must keep
	// doing so: v3/v4 peers ship such frames); rows here are deliberately
	// ragged across rows. The v5 columnar path is covered in colchunk_test.go.
	rows := []engine.ScanRow{
		{ID: 7, U64s: []uint64{42, 0}, Bytes: [][]byte{nil, {1, 2, 3}}, Strs: []string{"", "x"}},
		{ID: 9, U64s: []uint64{1}, Bytes: [][]byte{nil}, Strs: []string{"hello"}},
		{ID: 11},
	}
	payload, err := EncodeScanChunk(rows, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScanChunk(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("chunk round trip:\n got %+v\nwant %+v", got, rows)
	}
	// Empty chunks survive too (a shard whose slice selected nothing).
	payload, err = EncodeScanChunk(nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeScanChunk(payload, 4); err != nil || len(got) != 0 {
		t.Fatalf("empty chunk: (%v, %v)", got, err)
	}
}

func TestScanChunkRejectsHostilePayloads(t *testing.T) {
	// A huge row count over a tiny payload must fail the count guard, not
	// allocate — on both framings.
	for _, version := range []uint64{4, 5} {
		if _, err := DecodeScanChunk([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, version); err == nil {
			t.Fatalf("v%d: hostile row count accepted", version)
		}
	}
	// Ragged projections are refused at encode time.
	if _, err := EncodeScanChunk([]engine.ScanRow{{ID: 1, U64s: []uint64{1}}}, nil, 4); err == nil {
		t.Fatal("ragged scan row encoded")
	}
	// Trailing garbage is refused.
	payload, err := EncodeScanChunk([]engine.ScanRow{{ID: 1}}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeScanChunk(append(payload, 0), 4); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestCancelFrameType(t *testing.T) {
	// The v3 frame types must keep their identities (they cross processes).
	if MsgCancel.String() != "cancel" || MsgResultChunk.String() != "result-chunk" {
		t.Fatalf("v3 frame names: %v, %v", MsgCancel, MsgResultChunk)
	}
	if Version != 8 || MinVersion != 3 {
		t.Fatalf("protocol versions = %d (min %d), want 8 (min 3)", Version, MinVersion)
	}
	if MsgSegmentList.String() != "segment-list" || MsgSegmentFetch.String() != "segment-fetch" || MsgSegmentData.String() != "segment-data" {
		t.Fatalf("v6 frame names: %v, %v, %v", MsgSegmentList, MsgSegmentFetch, MsgSegmentData)
	}
}
