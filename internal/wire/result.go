package wire

import (
	"fmt"
	"math/big"
	"time"

	"seabed/internal/engine"
	"seabed/internal/idlist"
	"seabed/internal/obs"
	"seabed/internal/store"
)

// EncodeResult serializes a MsgResult payload for a connection negotiated at
// version: the codec the engine actually used (the client must decode
// identifier lists with the same one — the in-process path communicates it by
// mutating the plan, the wire path carries it here) followed by the result's
// groups, scan rows, metrics, and — on v4 — the daemon's span breakdown for
// the query trace (nil spans encode as an empty list).
func EncodeResult(codecName string, res *engine.Result, spans []obs.FlatSpan, version uint64) ([]byte, error) {
	e := &enc{}
	e.str(codecName)

	e.uint(uint64(len(res.Groups)))
	for i := range res.Groups {
		g := &res.Groups[i]
		e.uint(uint64(g.KeyKind))
		e.uint(g.KeyU64)
		e.bytes(g.KeyBytes)
		e.str(g.KeyStr)
		e.int(int64(g.Suffix))
		e.uint(g.Rows)
		e.uint(uint64(len(g.Aggs)))
		for j := range g.Aggs {
			encodeAggValue(e, &g.Aggs[j])
		}
	}

	if err := encodeScanRows(e, res.Scan); err != nil {
		return nil, err
	}

	encodeMetrics(e, &res.Metrics, version)
	if version >= 4 {
		encodeSpans(e, spans)
	}
	return e.buf, nil
}

// encodeSpans appends a v4 span-record section: the daemon's trace breakdown,
// flattened preorder with depths (obs.Flatten).
func encodeSpans(e *enc, spans []obs.FlatSpan) {
	e.uint(uint64(len(spans)))
	for i := range spans {
		s := &spans[i]
		depth := s.Depth
		if depth < 0 {
			depth = 0
		}
		e.uint(uint64(depth))
		e.str(s.Name)
		e.int(int64(s.Start))
		e.int(int64(s.Dur))
		e.uint(uint64(len(s.Attrs)))
		for _, a := range s.Attrs {
			e.str(a.Key)
			e.str(a.Val)
		}
	}
}

// decodeSpans parses a v4 span-record section. Counts are hostile-guarded
// like every other section; tree-shape sanity (depth sequences) is the
// client's problem — obs.AttachFlat clamps rather than trusts.
func decodeSpans(d *dec) []obs.FlatSpan {
	n := d.uint()
	// Each span record consumes ≥ 5 payload bytes (depth, empty name, start,
	// dur, attr count).
	if !d.checkCount(n, 5, "spans") || n == 0 {
		return nil
	}
	spans := make([]obs.FlatSpan, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s obs.FlatSpan
		s.Depth = int(d.uint())
		s.Name = d.str()
		s.Start = time.Duration(d.int())
		s.Dur = time.Duration(d.int())
		nAttrs := d.uint()
		if !d.checkCount(nAttrs, 2, "span attrs") {
			break
		}
		for j := uint64(0); j < nAttrs && d.err == nil; j++ {
			k := d.str()
			v := d.str()
			s.Attrs = append(s.Attrs, obs.Attr{Key: k, Val: v})
		}
		spans = append(spans, s)
	}
	return spans
}

// encodeScanRows appends a length-prefixed scan-row section, shared by the
// result frame and the v3 chunk frame.
func encodeScanRows(e *enc, scan []engine.ScanRow) error {
	e.uint(uint64(len(scan)))
	for i := range scan {
		r := &scan[i]
		e.uint(r.ID)
		n := len(r.U64s)
		if len(r.Bytes) != n || len(r.Strs) != n {
			return fmt.Errorf("wire: encode result: scan row %d has ragged projections (%d/%d/%d)",
				i, len(r.U64s), len(r.Bytes), len(r.Strs))
		}
		e.uint(uint64(n))
		for j := 0; j < n; j++ {
			e.uint(r.U64s[j])
			e.bytes(r.Bytes[j])
			e.str(r.Strs[j])
		}
	}
	return nil
}

// decodeScanRows parses a scan-row section into dst.
func decodeScanRows(d *dec, dst *[]engine.ScanRow) {
	nScan := d.uint()
	for i := uint64(0); i < nScan && d.err == nil; i++ {
		var r engine.ScanRow
		r.ID = d.uint()
		n := d.uint()
		// Each projected cell consumes ≥ 3 payload bytes, bounding the
		// allocation a hostile count can demand.
		if !d.checkCount(n, 3, "scan columns") {
			break
		}
		if d.err == nil && n > 0 {
			r.U64s = make([]uint64, n)
			r.Bytes = make([][]byte, n)
			r.Strs = make([]string, n)
			for j := uint64(0); j < n && d.err == nil; j++ {
				r.U64s[j] = d.uint()
				r.Bytes[j] = d.bytes()
				r.Strs[j] = d.str()
			}
		}
		*dst = append(*dst, r)
	}
}

// DecodeResult parses a MsgResult payload framed at the connection's
// negotiated version.
func DecodeResult(p []byte, version uint64) (codecName string, res *engine.Result, spans []obs.FlatSpan, err error) {
	d := newDec(p)
	codecName = d.str()
	res = &engine.Result{}

	nGroups := d.uint()
	for i := uint64(0); i < nGroups && d.err == nil; i++ {
		var g engine.Group
		g.KeyKind = store.Kind(d.uint())
		g.KeyU64 = d.uint()
		g.KeyBytes = d.bytes()
		g.KeyStr = d.str()
		g.Suffix = int(d.int())
		g.Rows = d.uint()
		nAggs := d.uint()
		for j := uint64(0); j < nAggs && d.err == nil; j++ {
			g.Aggs = append(g.Aggs, decodeAggValue(d))
		}
		res.Groups = append(res.Groups, g)
	}

	decodeScanRows(d, &res.Scan)

	decodeMetrics(d, &res.Metrics, version)
	if version >= 4 {
		spans = decodeSpans(d)
	}
	if err := d.close("result"); err != nil {
		return "", nil, nil, err
	}
	return codecName, res, spans, nil
}

func encodeAggValue(e *enc, av *engine.AggValue) {
	e.uint(uint64(av.Kind))
	e.uint(av.U64)

	// ASHE: body, the raw identifier-list ranges, and the codec-compressed
	// encoding. Shipping the ranges too keeps the decoded AggValue equivalent
	// to the in-process one (deflateGroups and tests inspect them).
	e.uint(av.Ashe.Body)
	ranges := av.Ashe.IDs.Ranges()
	e.uint(uint64(len(ranges)))
	prev := uint64(0)
	for _, r := range ranges {
		// Differential bounds, the same trick the id-list codecs use (§4.5).
		e.uint(r.Lo - prev)
		e.uint(r.Hi - r.Lo)
		prev = r.Lo
	}
	e.bytes(av.Ashe.Encoded)

	if av.Pail != nil {
		e.bool(true)
		e.bytes(av.Pail.Bytes())
	} else {
		e.bool(false)
	}

	e.bytes(av.Ope)
	e.uint(av.ArgID)
	e.bytes(av.CompanionBytes)

	// Partial-plan median collections (v2): a shard cannot collapse a median
	// locally, so the collected inputs cross the wire for the coordinator's
	// merge. All four are empty on non-Partial plans.
	e.uint(uint64(len(av.MedU64)))
	for _, v := range av.MedU64 {
		e.uint(v)
	}
	e.uint(uint64(len(av.MedOpe)))
	for _, b := range av.MedOpe {
		e.bytes(b)
	}
	e.uint(uint64(len(av.MedIDs)))
	for _, v := range av.MedIDs {
		e.uint(v)
	}
	e.uint(uint64(len(av.MedComp)))
	for _, v := range av.MedComp {
		e.uint(v)
	}
}

func decodeAggValue(d *dec) engine.AggValue {
	var av engine.AggValue
	av.Kind = engine.AggKind(d.uint())
	av.U64 = d.uint()

	av.Ashe.Body = d.uint()
	nRanges := d.uint()
	// Each range consumes ≥ 2 payload bytes, bounding the allocation.
	if d.checkCount(nRanges, 2, "id-list ranges") && nRanges > 0 {
		ranges := make([]idlist.Range, 0, nRanges)
		prev := uint64(0)
		for i := uint64(0); i < nRanges && d.err == nil; i++ {
			lo := prev + d.uint()
			hi := lo + d.uint()
			if hi < lo { // span overflowed: hostile or corrupt frame
				d.fail("id-list range span")
				break
			}
			ranges = append(ranges, idlist.Range{Lo: lo, Hi: hi})
			prev = lo
		}
		if d.err == nil {
			av.Ashe.IDs = idlist.FromRanges(ranges)
		}
	}
	av.Ashe.Encoded = d.bytes()

	if d.bool() {
		av.Pail = new(big.Int).SetBytes(d.bytes())
	}

	av.Ope = d.bytes()
	av.ArgID = d.uint()
	av.CompanionBytes = d.bytes()

	if n := d.uint(); d.checkCount(n, 1, "median u64s") && n > 0 {
		av.MedU64 = make([]uint64, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			av.MedU64 = append(av.MedU64, d.uint())
		}
	}
	if n := d.uint(); d.checkCount(n, 1, "median opes") && n > 0 {
		av.MedOpe = make([][]byte, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			av.MedOpe = append(av.MedOpe, d.bytes())
		}
	}
	if n := d.uint(); d.checkCount(n, 1, "median ids") && n > 0 {
		av.MedIDs = make([]uint64, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			av.MedIDs = append(av.MedIDs, d.uint())
		}
	}
	if n := d.uint(); d.checkCount(n, 1, "median companions") && n > 0 {
		av.MedComp = make([]uint64, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			av.MedComp = append(av.MedComp, d.uint())
		}
	}
	return av
}

func encodeMetrics(e *enc, m *engine.Metrics, version uint64) {
	e.int(int64(m.ServerTime))
	e.int(int64(m.MapTime))
	e.int(int64(m.ReduceTime))
	e.int(int64(m.ShuffleTime))
	e.int(int64(m.DriverTime))
	e.int(int64(m.ShuffleBytes))
	e.int(int64(m.ResultBytes))
	e.int(int64(m.MapTasks))
	e.int(int64(m.ReduceTasks))
	e.uint(m.RowsScanned)
	e.uint(m.RowsSelected)
	// Per-task duration sample (v4).
	if version >= 4 {
		e.int(int64(m.TaskMin))
		e.int(int64(m.TaskP50))
		e.int(int64(m.TaskMax))
	}
	// Streamed-scan first-chunk latency (v7).
	if version >= 7 {
		e.int(int64(m.FirstChunk))
	}
	// Per-operator execution counters (v8) — EXPLAIN ANALYZE's payload.
	if version >= 8 {
		e.uint(m.Ops.Batches)
		e.uint(m.Ops.DenseBatches)
		e.uint(m.Ops.JoinProbed)
		e.uint(m.Ops.JoinMatched)
		e.uint(m.Ops.GroupDense)
		e.uint(m.Ops.GroupHash)
		e.uint(m.Ops.RadixBatches)
		e.uint(m.Ops.GroupSlots)
		e.uint(m.Ops.GroupTableLen)
		e.uint(m.Ops.ColumnPins)
		e.uint(m.Ops.ColumnFaults)
	}
}

func decodeMetrics(d *dec, m *engine.Metrics, version uint64) {
	m.ServerTime = time.Duration(d.int())
	m.MapTime = time.Duration(d.int())
	m.ReduceTime = time.Duration(d.int())
	m.ShuffleTime = time.Duration(d.int())
	m.DriverTime = time.Duration(d.int())
	m.ShuffleBytes = int(d.int())
	m.ResultBytes = int(d.int())
	m.MapTasks = int(d.int())
	m.ReduceTasks = int(d.int())
	m.RowsScanned = d.uint()
	m.RowsSelected = d.uint()
	if version >= 4 {
		m.TaskMin = time.Duration(d.int())
		m.TaskP50 = time.Duration(d.int())
		m.TaskMax = time.Duration(d.int())
	}
	if version >= 7 {
		m.FirstChunk = time.Duration(d.int())
	}
	if version >= 8 {
		m.Ops.Batches = d.uint()
		m.Ops.DenseBatches = d.uint()
		m.Ops.JoinProbed = d.uint()
		m.Ops.JoinMatched = d.uint()
		m.Ops.GroupDense = d.uint()
		m.Ops.GroupHash = d.uint()
		m.Ops.RadixBatches = d.uint()
		m.Ops.GroupSlots = d.uint()
		m.Ops.GroupTableLen = d.uint()
		m.Ops.ColumnPins = d.uint()
		m.Ops.ColumnFaults = d.uint()
	}
}
