package wire

import (
	"encoding/binary"
	"fmt"

	"seabed/internal/engine"
	"seabed/internal/store"
)

// v5 columnar scan chunks: a MsgResultChunk in the same column-extent
// encoding durable segments use (store.AppendColumnExtent, specified in
// docs/FORMAT.md), so the server streams the executor's arena batches
// column-at-a-time instead of re-encoding them row-major. Layout:
//
//	rows     uvarint
//	width    uvarint (projected columns)
//	kinds    width bytes (store.Kind per column — the receiver cannot infer
//	         a column's kind from row cells, which are ambiguous when empty)
//	ids      row-identifier extent: rows × 8 bytes little-endian
//	extents  one store column extent per projected column, in order, packed
//	         (no alignment: wire buffers land at arbitrary offsets anyway,
//	         and the decoder's copy fallback covers unaligned u64 extents)
//
// The decoder carves the rows out of per-chunk arenas and aliases Bytes
// values straight into the received frame, so a streamed scan's dominant
// payload (ciphertext blobs) crosses decode with zero copies.

// EncodeScanChunk builds a MsgResultChunk payload for a connection
// negotiated at version: columnar extents on v5+, row-major scan rows
// before. kinds is the plan's projected column kinds in Plan.Project order
// (engine.ProjectKinds); pre-v5 encodings ignore it.
func EncodeScanChunk(rows []engine.ScanRow, kinds []store.Kind, version uint64) ([]byte, error) {
	if version >= 5 {
		return AppendScanChunk(nil, rows, kinds)
	}
	e := &enc{}
	if err := encodeScanRows(e, rows); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// AppendScanChunk appends a v5 columnar chunk for rows to buf and returns
// the extended slice. It allocates only when buf lacks capacity — a server
// streaming a large scan reuses one buffer across chunks, paying zero
// allocations per row.
func AppendScanChunk(buf []byte, rows []engine.ScanRow, kinds []store.Kind) ([]byte, error) {
	width := len(kinds)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	buf = binary.AppendUvarint(buf, uint64(width))
	for _, k := range kinds {
		buf = append(buf, byte(k))
	}
	for i := range rows {
		r := &rows[i]
		if len(r.U64s) != width || len(r.Bytes) != width || len(r.Strs) != width {
			return nil, fmt.Errorf("wire: encode chunk: scan row %d has ragged projections (%d/%d/%d, want %d)",
				i, len(r.U64s), len(r.Bytes), len(r.Strs), width)
		}
		buf = binary.LittleEndian.AppendUint64(buf, r.ID)
	}
	for j, k := range kinds {
		switch k {
		case store.U64:
			for i := range rows {
				buf = binary.LittleEndian.AppendUint64(buf, rows[i].U64s[j])
			}
		case store.Bytes:
			var off uint64
			buf = binary.LittleEndian.AppendUint64(buf, 0)
			for i := range rows {
				off += uint64(len(rows[i].Bytes[j]))
				buf = binary.LittleEndian.AppendUint64(buf, off)
			}
			for i := range rows {
				buf = append(buf, rows[i].Bytes[j]...)
			}
		case store.Str:
			var off uint64
			buf = binary.LittleEndian.AppendUint64(buf, 0)
			for i := range rows {
				off += uint64(len(rows[i].Strs[j]))
				buf = binary.LittleEndian.AppendUint64(buf, off)
			}
			for i := range rows {
				buf = append(buf, rows[i].Strs[j]...)
			}
		default:
			return nil, fmt.Errorf("wire: encode chunk: column %d has unknown kind %d", j, int(k))
		}
	}
	return buf, nil
}

// DecodeScanChunk parses a MsgResultChunk payload framed at the
// connection's negotiated version. The returned rows may alias p (v5 Bytes
// values point into the frame), so the caller must not reuse p's backing
// array afterwards — ReadFrame allocates per frame, which satisfies this.
func DecodeScanChunk(p []byte, version uint64) ([]engine.ScanRow, error) {
	if version < 5 {
		d := newDec(p)
		var rows []engine.ScanRow
		decodeScanRows(d, &rows)
		if err := d.close("scan chunk"); err != nil {
			return nil, err
		}
		return rows, nil
	}
	d := newDec(p)
	nRows := d.uint()
	width := d.uint()
	// Bounds before any allocation: each row costs ≥ 8 id bytes, each column
	// ≥ 1 kind byte now and ≥ 8·rows extent bytes later.
	if !d.checkCount(nRows, 8, "scan rows") || !d.checkCount(width, 1, "scan columns") {
		return nil, d.close("scan chunk")
	}
	kinds := make([]store.Kind, width)
	for j := range kinds {
		k := store.Kind(d.uint())
		if d.err == nil && k != store.U64 && k != store.Bytes && k != store.Str {
			return nil, fmt.Errorf("wire: decode scan chunk: column %d has unknown kind %d", j, int(k))
		}
		kinds[j] = k
	}
	if d.err != nil {
		return nil, d.close("scan chunk")
	}
	ext := d.buf[d.off:]
	if nRows > 0 && width > uint64(len(ext))/(8*nRows) {
		return nil, fmt.Errorf("wire: decode scan chunk: %d columns × %d rows exceed %d payload bytes", width, nRows, len(ext))
	}
	rows := int(nRows)
	ids, n, err := store.DecodeColumnExtent("ids", store.U64, rows, ext)
	if err != nil {
		return nil, fmt.Errorf("wire: decode scan chunk: %v", err)
	}
	ext = ext[n:]
	// One arena per value slice: rows share backing arrays, carved per row
	// below, exactly like the executor's scan arenas on the sending side.
	u64s := make([]uint64, rows*int(width))
	byts := make([][]byte, rows*int(width))
	strs := make([]string, rows*int(width))
	for j := 0; j < int(width); j++ {
		col, n, err := store.DecodeColumnExtent("chunk column", kinds[j], rows, ext)
		if err != nil {
			return nil, fmt.Errorf("wire: decode scan chunk: column %d: %v", j, err)
		}
		ext = ext[n:]
		switch kinds[j] {
		case store.U64:
			for i := 0; i < rows; i++ {
				u64s[i*int(width)+j] = col.U64[i]
			}
		case store.Bytes:
			for i := 0; i < rows; i++ {
				byts[i*int(width)+j] = col.Bytes[i]
			}
		case store.Str:
			for i := 0; i < rows; i++ {
				strs[i*int(width)+j] = col.Str[i]
			}
		}
	}
	if len(ext) != 0 {
		return nil, fmt.Errorf("wire: decode scan chunk: %d trailing bytes", len(ext))
	}
	out := make([]engine.ScanRow, rows)
	w := int(width)
	for i := 0; i < rows; i++ {
		out[i] = engine.ScanRow{
			ID:    ids.U64[i],
			U64s:  u64s[i*w : (i+1)*w : (i+1)*w],
			Bytes: byts[i*w : (i+1)*w : (i+1)*w],
			Strs:  strs[i*w : (i+1)*w : (i+1)*w],
		}
	}
	return out, nil
}
