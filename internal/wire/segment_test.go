package wire

import (
	"hash/crc32"
	"reflect"
	"testing"

	"seabed/internal/engine"
)

func TestSegmentListRoundTrip(t *testing.T) {
	ms := []TableManifest{
		{
			Ref:     "big@NoEnc#r0",
			Rows:    1000,
			StartID: 1,
			EndID:   1000,
			Segments: []SegmentInfo{
				{Name: "seg-000001.seg", Size: 4096, CRC: 0xdeadbeef},
				{Name: WALSegment, Size: 128, CRC: 7},
			},
		},
		{Ref: "empty@Seabed#r2", Rows: 0, StartID: 1, EndID: 0},
	}
	got, err := DecodeSegmentList(EncodeSegmentList(ms))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ms) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ms)
	}

	// Empty list round-trips to an empty slice.
	got, err = DecodeSegmentList(EncodeSegmentList(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty list decoded to %+v", got)
	}
}

func TestSegmentListReqRoundTrip(t *testing.T) {
	for _, ref := range []string{"", "big@NoEnc#r1"} {
		got, err := DecodeSegmentListReq(EncodeSegmentListReq(ref))
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("got %q want %q", got, ref)
		}
	}
}

func TestSegmentFetchRoundTrip(t *testing.T) {
	ref, name, from, err := DecodeSegmentFetch(EncodeSegmentFetch("t@Seabed#r1", "seg-000002.seg", ""))
	if err != nil {
		t.Fatal(err)
	}
	if ref != "t@Seabed#r1" || name != "seg-000002.seg" || from != "" {
		t.Fatalf("got %q %q %q", ref, name, from)
	}
	ref, name, from, err = DecodeSegmentFetch(EncodeSegmentFetch("t@Seabed#r1", "", "127.0.0.1:7687"))
	if err != nil {
		t.Fatal(err)
	}
	if ref != "t@Seabed#r1" || name != "" || from != "127.0.0.1:7687" {
		t.Fatalf("got %q %q %q", ref, name, from)
	}
}

func TestSegmentDataRoundTripAndCorruption(t *testing.T) {
	data := []byte("SBSG-ish segment bytes 0123456789")
	p := EncodeSegmentData("seg-000001.seg", data)
	sd, err := DecodeSegmentData(p)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Name != "seg-000001.seg" || string(sd.Data) != string(data) {
		t.Fatalf("round trip mismatch: %+v", sd)
	}

	// Flip one payload byte: the decoder must detect it via the CRC.
	bad := append([]byte(nil), p...)
	bad[len(bad)-1] ^= 0x40
	if _, err := DecodeSegmentData(bad); err == nil {
		t.Fatal("corrupted segment data decoded without error")
	}

	// Empty segments are legal and still checksummed.
	sd, err = DecodeSegmentData(EncodeSegmentData(WALSegment, nil))
	if err != nil {
		t.Fatal(err)
	}
	if sd.Name != WALSegment || len(sd.Data) != 0 {
		t.Fatalf("empty round trip mismatch: %+v", sd)
	}
	if crc32.ChecksumIEEE(nil) != 0 {
		t.Fatal("crc32 of empty input is expected to be zero")
	}
}

func TestSegmentFramesRejectHostilePayloads(t *testing.T) {
	cases := []struct {
		name string
		run  func(p []byte) error
	}{
		{"list", func(p []byte) error { _, err := DecodeSegmentList(p); return err }},
		{"list-req", func(p []byte) error { _, err := DecodeSegmentListReq(p); return err }},
		{"fetch", func(p []byte) error { _, _, _, err := DecodeSegmentFetch(p); return err }},
		{"data", func(p []byte) error { _, err := DecodeSegmentData(p); return err }},
	}
	payloads := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge count/length
		{0x05, 'a', 'b'}, // truncated string
		{0x02, 0x01, 'x', 0x00, 0x00, 0x00, 0x00}, // short element list
	}
	for _, c := range cases {
		for i, p := range payloads {
			if err := c.run(p); err == nil {
				t.Errorf("%s: hostile payload %d decoded without error", c.name, i)
			}
		}
		// Trailing garbage after a valid frame is rejected too.
		valid := map[string][]byte{
			"list":     EncodeSegmentList(nil),
			"list-req": EncodeSegmentListReq("r"),
			"fetch":    EncodeSegmentFetch("r", "n", ""),
			"data":     EncodeSegmentData("n", []byte("x")),
		}[c.name]
		if err := c.run(append(valid, 0x00)); err == nil {
			t.Errorf("%s: trailing byte accepted", c.name)
		}
	}
}

func TestPlanHedgeFailoverVersionFraming(t *testing.T) {
	req := &PlanRequest{
		TableRef: "t",
		Plan:     &engine.Plan{Aggs: []engine.Agg{{Kind: engine.AggCount}}},
		TraceID:  9,
		Hedge:    true,
		Failover: true,
	}

	// v6 carries the flags.
	p, err := EncodePlan(req, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Hedge || !got.Failover {
		t.Fatalf("v6 flags lost: %+v", got)
	}

	// v5 must not frame them (a v5 decoder rejects trailing bytes), and a
	// v5 decode must leave them false.
	p5, err := EncodePlan(req, 5)
	if err != nil {
		t.Fatal(err)
	}
	got5, err := DecodePlan(p5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got5.Hedge || got5.Failover {
		t.Fatalf("v5 decode invented flags: %+v", got5)
	}
	if _, err := DecodePlan(p, 5); err == nil {
		t.Fatal("v6 frame decoded at v5 without error")
	}
}
