package wire

import (
	"bytes"
	"testing"

	"seabed/internal/engine"
	"seabed/internal/store"
)

// chunkRows builds n scan rows over one U64, one Bytes, and one Str column,
// with per-row value lengths that vary so offset bookkeeping is exercised.
func chunkRows(n int) ([]engine.ScanRow, []store.Kind) {
	kinds := []store.Kind{store.U64, store.Bytes, store.Str}
	rows := make([]engine.ScanRow, n)
	for i := range rows {
		blob := bytes.Repeat([]byte{byte(i)}, i%5)
		rows[i] = engine.ScanRow{
			ID:    uint64(i)*3 + 1,
			U64s:  []uint64{uint64(i) * 0x0101010101010101, 0, 0},
			Bytes: [][]byte{nil, blob, nil},
			Strs:  []string{"", "", string(rune('a' + i%26))},
		}
	}
	return rows, kinds
}

func TestColumnarChunkRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		rows, kinds := chunkRows(n)
		p, err := EncodeScanChunk(rows, kinds, Version)
		if err != nil {
			t.Fatalf("encode %d rows: %v", n, err)
		}
		got, err := DecodeScanChunk(p, Version)
		if err != nil {
			t.Fatalf("decode %d rows: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("decoded %d rows, want %d", len(got), n)
		}
		for i := range got {
			if got[i].ID != rows[i].ID {
				t.Fatalf("row %d: id = %d, want %d", i, got[i].ID, rows[i].ID)
			}
			for j := range kinds {
				if got[i].U64s[j] != rows[i].U64s[j] {
					t.Fatalf("row %d col %d: u64 = %d, want %d", i, j, got[i].U64s[j], rows[i].U64s[j])
				}
				if !bytes.Equal(got[i].Bytes[j], rows[i].Bytes[j]) {
					t.Fatalf("row %d col %d: bytes = %x, want %x", i, j, got[i].Bytes[j], rows[i].Bytes[j])
				}
				if got[i].Strs[j] != rows[i].Strs[j] {
					t.Fatalf("row %d col %d: str = %q, want %q", i, j, got[i].Strs[j], rows[i].Strs[j])
				}
			}
		}
	}
}

// TestColumnarChunkZeroCopy verifies the decode contract: Bytes values alias
// the frame payload rather than copying out of it.
func TestColumnarChunkZeroCopy(t *testing.T) {
	rows := []engine.ScanRow{{
		ID:    1,
		U64s:  []uint64{0},
		Bytes: [][]byte{[]byte("ciphertext")},
		Strs:  []string{""},
	}}
	p, err := EncodeScanChunk(rows, []store.Kind{store.Bytes}, Version)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScanChunk(p, Version)
	if err != nil {
		t.Fatal(err)
	}
	p[len(p)-1] ^= 0xFF // mutate the frame: an aliasing decode must see it
	if bytes.Equal(got[0].Bytes[0], []byte("ciphertext")) {
		t.Fatal("decoded Bytes value did not alias the frame payload")
	}
}

// TestAppendScanChunkNoPerRowAllocs pins the encode path's allocation
// contract: with a primed reusable buffer, streaming a chunk performs zero
// allocations regardless of row count — the server's sink reuses one buffer
// across every chunk of a scan.
func TestAppendScanChunkNoPerRowAllocs(t *testing.T) {
	rows, kinds := chunkRows(512)
	// Prime: one encode to learn the needed capacity.
	primed, err := AppendScanChunk(nil, rows, kinds)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, cap(primed)+1024)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AppendScanChunk(buf[:0], rows, kinds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendScanChunk allocated %.1f times per call with a primed buffer, want 0", allocs)
	}
}

func TestColumnarChunkRejectsHostilePayloads(t *testing.T) {
	rows, kinds := chunkRows(8)
	good, err := EncodeScanChunk(rows, kinds, Version)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"huge row count", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}},
		{"width overflows payload", []byte{2, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 1, 1, 1, 1, 1}},
		{"unknown kind", append([]byte{1, 1, 0x7F}, make([]byte, 16)...)},
		{"truncated extents", good[:len(good)-4]},
		{"trailing garbage", append(append([]byte{}, good...), 0xAA, 0xBB)},
	}
	for _, tc := range cases {
		if _, err := DecodeScanChunk(tc.p, Version); err == nil {
			t.Errorf("%s: decode accepted a hostile payload", tc.name)
		}
	}
}

// TestScanChunkVersionFraming pins the negotiation fallback: the same rows
// round-trip through both framings, and each decoder rejects the other's
// bytes (the version is part of the connection state, not the frame).
func TestScanChunkVersionFraming(t *testing.T) {
	rows, kinds := chunkRows(16)
	for _, v := range []uint64{4, 5} {
		p, err := EncodeScanChunk(rows, kinds, v)
		if err != nil {
			t.Fatalf("v%d encode: %v", v, err)
		}
		got, err := DecodeScanChunk(p, v)
		if err != nil {
			t.Fatalf("v%d decode: %v", v, err)
		}
		if len(got) != len(rows) {
			t.Fatalf("v%d: %d rows, want %d", v, len(got), len(rows))
		}
		for i := range got {
			if got[i].ID != rows[i].ID || !bytes.Equal(got[i].Bytes[1], rows[i].Bytes[1]) {
				t.Fatalf("v%d: row %d mismatch", v, i)
			}
		}
	}
}
