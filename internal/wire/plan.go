package wire

import (
	"fmt"
	"math/big"

	"seabed/internal/engine"
	"seabed/internal/paillier"
	"seabed/internal/sqlparse"
)

// PlanRequest is a MsgRun payload: a physical plan whose tables travel by
// reference. The proxy uploads tables once (MsgRegister) and every query
// names them by ref, so a plan frame stays a few hundred bytes no matter how
// large the dataset is — exactly the paper's split between the bulk upload
// path and the per-query path (§4.1).
type PlanRequest struct {
	// TableRef names the plan's scan table on the server.
	TableRef string
	// JoinRef names the broadcast-join right table; empty when Plan.Join is
	// nil.
	JoinRef string
	// Plan is the plan itself. Its Table and Join.Right pointers are nil in
	// transit; the server rebinds them from the refs.
	Plan *engine.Plan
	// TraceID ties this plan to the proxy-side query trace (v4). Zero means
	// untraced; on v3 connections it never crosses the wire. It lives on the
	// request, not the connection, so a pool redial mid-query cannot change
	// the ID a daemon reports back.
	TraceID uint64
	// Hedge marks a speculative re-issue of a straggling sub-query to a
	// replica (v6): the fleet coordinator fired this run while the original
	// is still in flight and will keep whichever answers first. Daemons count
	// hedged runs in Stats.
	Hedge bool
	// Failover marks a retry of a sub-query whose original replica failed
	// (v6). Daemons count failed-over runs in Stats.
	Failover bool
}

// EncodePlan serializes a plan request for a connection negotiated at
// version.
func EncodePlan(req *PlanRequest, version uint64) ([]byte, error) {
	pl := req.Plan
	if pl == nil {
		return nil, fmt.Errorf("wire: encode plan: nil plan")
	}
	if req.TableRef == "" {
		return nil, fmt.Errorf("wire: encode plan: empty table ref")
	}
	e := &enc{}
	e.str(req.TableRef)

	e.bool(pl.Join != nil)
	if pl.Join != nil {
		if req.JoinRef == "" {
			return nil, fmt.Errorf("wire: encode plan: join without a right-table ref")
		}
		e.str(req.JoinRef)
		e.str(pl.Join.LeftCol)
		e.str(pl.Join.RightCol)
		e.uint(uint64(len(pl.Join.RightCols)))
		for _, c := range pl.Join.RightCols {
			e.str(c)
		}
	}

	e.uint(uint64(len(pl.Filters)))
	for i := range pl.Filters {
		f := &pl.Filters[i]
		e.uint(uint64(f.Kind))
		e.str(f.Col)
		e.uint(uint64(f.Op))
		e.uint(f.U64)
		e.str(f.Str)
		e.bytes(f.Bytes)
		e.bool(f.Negate)
		e.f64(f.Prob)
		e.uint(f.Seed)
	}

	e.uint(uint64(len(pl.Aggs)))
	for i := range pl.Aggs {
		a := &pl.Aggs[i]
		e.uint(uint64(a.Kind))
		e.str(a.Col)
		e.str(a.Companion)
		e.bool(a.PK != nil)
		if a.PK != nil {
			e.bytes(a.PK.N.Bytes())
		}
	}

	e.bool(pl.GroupBy != nil)
	if pl.GroupBy != nil {
		e.str(pl.GroupBy.Col)
		e.uint(uint64(pl.GroupBy.Inflate))
		// Key-domain bound (v7). Older peers simply run the hashed group
		// path — the bound is a sizing hint, never a correctness contract.
		if version >= 7 {
			e.uint(pl.GroupBy.KeyBound)
		}
	}

	e.uint(uint64(len(pl.Project)))
	for _, c := range pl.Project {
		e.str(c)
	}

	if pl.Codec != nil {
		e.str(pl.Codec.Name())
	} else {
		e.str("")
	}
	e.bool(pl.CompressAtDriver)

	// Shard framing (v2): identifier-range scope and partial-result mode, so
	// one plan frame addresses exactly one shard's rows of the logical table.
	e.bool(pl.Range != nil)
	if pl.Range != nil {
		e.uint(pl.Range.Lo)
		e.uint(pl.Range.Hi)
	}
	e.bool(pl.Partial)

	// Trace propagation (v4). A v3 decoder rejects trailing bytes, so the
	// field is strictly version-gated.
	if version >= 4 {
		e.uint(req.TraceID)
	}

	// Fleet replication flags (v6), gated like TraceID.
	if version >= 6 {
		e.bool(req.Hedge)
		e.bool(req.Failover)
	}
	return e.buf, nil
}

// DecodePlan parses a plan request framed at the connection's negotiated
// version. The returned plan's Table and Join.Right are nil; the caller
// resolves TableRef/JoinRef against its registry.
func DecodePlan(p []byte, version uint64) (*PlanRequest, error) {
	d := newDec(p)
	req := &PlanRequest{Plan: &engine.Plan{}}
	pl := req.Plan
	req.TableRef = d.str()

	if d.bool() {
		pl.Join = &engine.Join{}
		req.JoinRef = d.str()
		pl.Join.LeftCol = d.str()
		pl.Join.RightCol = d.str()
		nCols := d.uint()
		for i := uint64(0); i < nCols && d.err == nil; i++ {
			pl.Join.RightCols = append(pl.Join.RightCols, d.str())
		}
	}

	nFilters := d.uint()
	for i := uint64(0); i < nFilters && d.err == nil; i++ {
		var f engine.Filter
		f.Kind = engine.FilterKind(d.uint())
		f.Col = d.str()
		f.Op = sqlparse.CmpOp(d.uint())
		f.U64 = d.uint()
		f.Str = d.str()
		f.Bytes = d.bytes()
		f.Negate = d.bool()
		f.Prob = d.f64()
		f.Seed = d.uint()
		pl.Filters = append(pl.Filters, f)
	}

	nAggs := d.uint()
	for i := uint64(0); i < nAggs && d.err == nil; i++ {
		var a engine.Agg
		a.Kind = engine.AggKind(d.uint())
		a.Col = d.str()
		a.Companion = d.str()
		if d.bool() {
			n := d.bytes()
			if d.err == nil {
				if len(n) == 0 {
					return nil, fmt.Errorf("wire: decode plan: empty Paillier modulus")
				}
				a.PK = paillier.NewPublicKey(new(big.Int).SetBytes(n))
			}
		}
		pl.Aggs = append(pl.Aggs, a)
	}

	if d.bool() {
		pl.GroupBy = &engine.GroupBy{}
		pl.GroupBy.Col = d.str()
		pl.GroupBy.Inflate = int(d.uint())
		if version >= 7 {
			pl.GroupBy.KeyBound = d.uint()
		}
	}

	nProject := d.uint()
	for i := uint64(0); i < nProject && d.err == nil; i++ {
		pl.Project = append(pl.Project, d.str())
	}

	codecName := d.str()
	pl.CompressAtDriver = d.bool()
	if d.bool() {
		pl.Range = &engine.IDRange{Lo: d.uint(), Hi: d.uint()}
	}
	pl.Partial = d.bool()
	if version >= 4 {
		req.TraceID = d.uint()
	}
	if version >= 6 {
		req.Hedge = d.bool()
		req.Failover = d.bool()
	}
	if err := d.close("plan"); err != nil {
		return nil, err
	}
	codec, err := CodecByName(codecName)
	if err != nil {
		return nil, err
	}
	pl.Codec = codec
	return req, nil
}
