package wire

import (
	"fmt"
	"hash/crc32"
)

// Segment shipping (v6) -----------------------------------------------------
//
// Three frames move a table's durable bytes between daemons without the
// proxy in the loop. MsgSegmentList inventories tables (names, sizes, CRCs,
// identifier envelopes); MsgSegmentFetch either asks for one segment's raw
// bytes (answered by MsgSegmentData, checksummed end-to-end) or instructs
// the receiving daemon to pull a whole table from a named peer and install
// it (answered by MsgOK). Two segment names are reserved for state that is
// not an on-disk file: WALSegment carries a durable table's uncompacted WAL
// tail, MemSegment carries a memory-only daemon's whole table, both encoded
// as store table serializations or SBSG bytes (see docs/FORMAT.md).

// WALSegment is the reserved pseudo-segment name under which a durable
// daemon ships its uncompacted WAL tail: the payload is a store table
// serialization (store.WriteTo bytes) of the pending rows, not an SBSG file.
const WALSegment = "@wal"

// MemSegment is the reserved pseudo-segment name under which a memory-only
// daemon ships a whole table: the payload is an SBSG v2 columnar segment
// encoded in memory rather than read from disk.
const MemSegment = "@mem"

// SegmentInfo describes one shippable segment of a table: its name (a
// seg-NNNNNN.seg file or a reserved pseudo-segment), its size in bytes, and
// a CRC-32 (IEEE) over those bytes.
type SegmentInfo struct {
	// Name is the segment file name or reserved pseudo-segment name.
	Name string
	// Size is the segment's byte length.
	Size uint64
	// CRC is the CRC-32 (IEEE) of the segment bytes.
	CRC uint32
}

// TableManifest inventories one table for segment shipping: its registry
// ref, row count, identifier envelope, and segment set in ship order.
type TableManifest struct {
	// Ref is the table's registry reference.
	Ref string
	// Rows is the table's total row count.
	Rows uint64
	// StartID and EndID bound the table's global row identifiers. For an
	// empty table EndID < StartID (the inverted envelope shards use).
	StartID, EndID uint64
	// Segments lists the table's shippable segments in install order.
	Segments []SegmentInfo
}

// SegmentData is a decoded MsgSegmentData payload: one segment's name and
// raw bytes. The CRC has already been verified by DecodeSegmentData.
type SegmentData struct {
	// Name echoes the fetched segment's name.
	Name string
	// Data holds the raw segment bytes.
	Data []byte
}

// EncodeSegmentListReq builds a MsgSegmentList request payload. An empty ref
// asks for every table's manifest.
func EncodeSegmentListReq(ref string) []byte {
	e := &enc{}
	e.str(ref)
	return e.buf
}

// DecodeSegmentListReq parses a MsgSegmentList request payload.
func DecodeSegmentListReq(p []byte) (ref string, err error) {
	d := newDec(p)
	ref = d.str()
	return ref, d.close("segment-list request")
}

// EncodeSegmentList builds a MsgSegmentList response payload.
func EncodeSegmentList(ms []TableManifest) []byte {
	e := &enc{}
	e.uint(uint64(len(ms)))
	for i := range ms {
		m := &ms[i]
		e.str(m.Ref)
		e.uint(m.Rows)
		e.uint(m.StartID)
		e.uint(m.EndID)
		e.uint(uint64(len(m.Segments)))
		for _, s := range m.Segments {
			e.str(s.Name)
			e.uint(s.Size)
			e.uint(uint64(s.CRC))
		}
	}
	return e.buf
}

// DecodeSegmentList parses a MsgSegmentList response payload.
func DecodeSegmentList(p []byte) ([]TableManifest, error) {
	d := newDec(p)
	n := d.uint()
	if !d.checkCount(n, 5, "table manifests") {
		return nil, d.close("segment-list")
	}
	ms := make([]TableManifest, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var m TableManifest
		m.Ref = d.str()
		m.Rows = d.uint()
		m.StartID = d.uint()
		m.EndID = d.uint()
		nSegs := d.uint()
		if !d.checkCount(nSegs, 3, "segment infos") {
			break
		}
		if nSegs > 0 {
			m.Segments = make([]SegmentInfo, 0, nSegs)
		}
		for j := uint64(0); j < nSegs && d.err == nil; j++ {
			var s SegmentInfo
			s.Name = d.str()
			s.Size = d.uint()
			s.CRC = uint32(d.uint())
			m.Segments = append(m.Segments, s)
		}
		ms = append(ms, m)
	}
	if err := d.close("segment-list"); err != nil {
		return nil, err
	}
	return ms, nil
}

// EncodeSegmentFetch builds a MsgSegmentFetch payload. With from empty it
// requests segment name of table ref from the receiving daemon; with from
// set (a host:port address) it instructs the receiving daemon to pull table
// ref from that peer and install it, and name is ignored.
func EncodeSegmentFetch(ref, name, from string) []byte {
	e := &enc{}
	e.str(ref)
	e.str(name)
	e.str(from)
	return e.buf
}

// DecodeSegmentFetch parses a MsgSegmentFetch payload.
func DecodeSegmentFetch(p []byte) (ref, name, from string, err error) {
	d := newDec(p)
	ref = d.str()
	name = d.str()
	from = d.str()
	return ref, name, from, d.close("segment-fetch")
}

// EncodeSegmentData builds a MsgSegmentData payload, stamping a CRC-32
// (IEEE) over the segment bytes so the fetching peer verifies the transfer
// end to end.
func EncodeSegmentData(name string, data []byte) []byte {
	e := &enc{}
	e.str(name)
	e.uint(uint64(crc32.ChecksumIEEE(data)))
	e.bytes(data)
	return e.buf
}

// DecodeSegmentData parses a MsgSegmentData payload and verifies its
// checksum; a corrupted transfer fails here rather than at install time.
func DecodeSegmentData(p []byte) (SegmentData, error) {
	d := newDec(p)
	var sd SegmentData
	sd.Name = d.str()
	sum := uint32(d.uint())
	sd.Data = d.bytes()
	if err := d.close("segment-data"); err != nil {
		return SegmentData{}, err
	}
	if got := crc32.ChecksumIEEE(sd.Data); got != sum {
		return SegmentData{}, fmt.Errorf("wire: segment %q checksum mismatch: frame says %08x, bytes hash to %08x", sd.Name, sum, got)
	}
	return sd, nil
}
