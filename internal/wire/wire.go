// Package wire defines Seabed's client↔server wire protocol: the framing and
// binary payload codecs that let the trusted proxy (internal/client) drive an
// untrusted engine running in another process, across a TCP connection.
//
// It plays the role the Spark RPC + Protobuf layer plays in the paper's
// prototype (§6.1) and follows the same serialization style as the columnar
// store (internal/store): varint-heavy, length-prefixed, no reflection.
//
// # Framing
//
// Every message is one frame:
//
//	type     1 byte  (MsgType)
//	length   4 bytes big-endian payload size
//	payload  length bytes
//
// A connection opens with a Hello/Welcome version handshake; after that the
// client sends request frames (MsgRegister, MsgRun) and the server answers
// each with exactly one terminal response frame (MsgOK, MsgResult, or
// MsgError). Two exceptions, both introduced in v3 for query lifecycle
// management: a MsgRun's terminal response may be preceded by any number of
// MsgResultChunk frames carrying scan rows (column extents on v5+
// connections, row-major before — see colchunk.go and docs/FORMAT.md), and
// the client may send MsgCancel
// while a MsgRun is in flight — Cancel gets no response of its own, the
// canceled run's terminal frame closes the exchange.
//
// # Payloads
//
// Payload codecs live beside the types they serialize:
//
//	plan.go    engine.Plan requests (tables travel by reference, not value)
//	result.go  engine.Result + engine.Metrics responses
//	table.go   upload frames wrapping store's table serialization
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"seabed/internal/idlist"
)

// Version is the newest protocol version this build speaks; MinVersion is the
// oldest. The Hello/Welcome handshake negotiates within that window: the
// client's Hello carries its Version, the server answers with
// min(client, server) — the connection's negotiated version — and both sides
// frame plans and results accordingly. A peer outside the window is rejected.
//
// History: v1 introduced the protocol; v2 added shard-aware plan framing
// (identifier-range scoping + partial-result mode) and median collections in
// result frames; v3 added query lifecycle management — the MsgCancel frame
// (abort the connection's in-flight plan) and chunked scan streaming (a
// MsgRun answered by zero or more MsgResultChunk frames before its terminal
// MsgResult/MsgError); v4 added observability — a trace ID in the plan frame
// and a span breakdown + per-task duration sample in the result frame — and,
// because v4 fields are negotiated rather than assumed, the first version to
// tolerate older peers at all; v5 reframed MsgResultChunk as column extents
// (the same encoding durable segments map — docs/FORMAT.md), deleting the
// row-major re-encode from the server's streaming path. A v5 peer falls back
// to row-major chunks when the negotiated version is 4 or below; v6 added
// fleet replication — segment shipping frames (MsgSegmentList /
// MsgSegmentFetch / MsgSegmentData let a daemon stream a table's CRC'd
// segment set plus WAL tail to a peer) and two negotiated plan-frame flags
// (Hedge, Failover) so daemons can count hedged and failed-over runs; v7
// added two streaming-engine fields — a group-by key-domain bound in the
// plan frame (KeyBound, a sizing hint for the executor's flat accumulator)
// and a first-chunk latency in the result frame's metrics (FirstChunk, how
// long the streamed scan took to deliver its first rows); v8 added per-
// operator execution counters to the result frame's metrics (engine.OpStats:
// batch/path counts, join probe survival, group dense-vs-hash resolution and
// radix engagement, group-table occupancy, column pins/faults) — the EXPLAIN
// ANALYZE payload. A v7-or-older peer still gets stage-level metrics; the
// operator block just reads zero.
const (
	Version    = 8
	MinVersion = 3
)

// MaxFrame bounds a frame's payload (1 GiB), protecting both ends from
// corrupt or hostile length prefixes.
const MaxFrame = 1 << 30

// MsgType tags a frame.
type MsgType byte

const (
	// MsgHello opens a connection (client → server): protocol version.
	MsgHello MsgType = 1 + iota
	// MsgWelcome answers a Hello (server → client): version + worker count.
	MsgWelcome
	// MsgRegister ships an encrypted physical table (client → server).
	MsgRegister
	// MsgAppend ships a batch of new rows for an already-registered table
	// (client → server). Its payload has the register-frame layout, but only
	// the batch crosses the wire — uploads are "a continuing process" (§4.1)
	// and re-shipping the whole table per batch would be quadratic.
	MsgAppend
	// MsgRun submits a physical plan (client → server).
	MsgRun
	// MsgOK acknowledges a request with no result payload (server → client).
	MsgOK
	// MsgResult carries a plan's result (server → client). For scan plans it
	// is preceded by the scan rows in MsgResultChunk frames; its own Scan
	// section is then empty.
	MsgResult
	// MsgError carries a request-level failure (server → client).
	MsgError
	// MsgCancel (client → server) asks the server to abort the connection's
	// in-flight plan; the aborted MsgRun still gets its terminal response
	// (normally a MsgError). Cancel itself is never answered, so a Cancel
	// that crosses the response in flight is silently ignored — cancellation
	// is best-effort on an untrusted server, and the client enforces its own
	// deadline regardless.
	MsgCancel
	// MsgResultChunk carries one batch of scan rows (server → client),
	// letting large scans stream instead of materializing in one frame.
	MsgResultChunk
	// MsgSegmentList (v6) is both the request and the response of a segment
	// inventory exchange: the request names one table ref (empty = every
	// table), the response enumerates per-table manifests — segment names,
	// sizes, CRCs, row counts, and identifier envelopes (segment.go).
	MsgSegmentList
	// MsgSegmentFetch (v6) requests segment bytes. With an empty From it asks
	// the receiving daemon to serve one named segment of a table (answered by
	// MsgSegmentData); with From set it instructs the receiving daemon to
	// dial the peer at From, pull the whole table's segments + WAL tail, and
	// install them locally (answered by MsgOK) — daemon-to-daemon healing
	// with no proxy re-upload.
	MsgSegmentFetch
	// MsgSegmentData (v6) answers a single-segment MsgSegmentFetch: the
	// segment name, a CRC-32 (IEEE) over the bytes, and the raw bytes. The
	// decoder verifies the checksum, so a frame that decodes is end-to-end
	// intact.
	MsgSegmentData
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgRegister:
		return "register"
	case MsgAppend:
		return "append"
	case MsgRun:
		return "run"
	case MsgOK:
		return "ok"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgCancel:
		return "cancel"
	case MsgResultChunk:
		return "result-chunk"
	case MsgSegmentList:
		return "segment-list"
	case MsgSegmentFetch:
		return "segment-fetch"
	case MsgSegmentData:
		return "segment-data"
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: %v frame of %d bytes exceeds MaxFrame", t, len(payload))
	}
	var head [5]byte
	head[0] = byte(t)
	binary.BigEndian.PutUint32(head[1:], uint32(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("wire: write %v header: %w", t, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write %v payload: %w", t, err)
	}
	return nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	t := MsgType(head[0])
	n := binary.BigEndian.Uint32(head[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: %v frame of %d bytes exceeds MaxFrame", t, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read %v payload: %w", t, err)
	}
	return t, payload, nil
}

// Handshake payloads ------------------------------------------------------

// EncodeHello builds a MsgHello payload advertising this build's newest
// version.
func EncodeHello() []byte {
	return EncodeHelloVersion(Version)
}

// EncodeHelloVersion builds a MsgHello payload advertising an explicit
// version — the client's retry path against a pre-v4 server, which rejects
// rather than negotiates anything above its own version.
func EncodeHelloVersion(version uint64) []byte {
	e := &enc{}
	e.uint(version)
	return e.buf
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(p []byte) (version uint64, err error) {
	d := newDec(p)
	version = d.uint()
	return version, d.close("hello")
}

// EncodeWelcome builds a MsgWelcome payload. version is the connection's
// negotiated protocol version. shardIndex/shardCount declare the server's
// shard identity (the daemon's -shard i/n flag); shardCount 0 means the
// server declares none, which clients accept anywhere.
func EncodeWelcome(version uint64, workers, shardIndex, shardCount int) []byte {
	e := &enc{}
	e.uint(version)
	e.uint(uint64(workers))
	e.uint(uint64(shardIndex))
	e.uint(uint64(shardCount))
	return e.buf
}

// DecodeWelcome parses a MsgWelcome payload.
func DecodeWelcome(p []byte) (version uint64, workers, shardIndex, shardCount int, err error) {
	d := newDec(p)
	version = d.uint()
	workers = int(d.uint())
	shardIndex = int(d.uint())
	shardCount = int(d.uint())
	return version, workers, shardIndex, shardCount, d.close("welcome")
}

// EncodeError builds a MsgError payload.
func EncodeError(msg string) []byte {
	e := &enc{}
	e.str(msg)
	return e.buf
}

// DecodeError parses a MsgError payload. A malformed payload still yields a
// usable message.
func DecodeError(p []byte) string {
	d := newDec(p)
	msg := d.str()
	if d.err != nil {
		return fmt.Sprintf("malformed error frame (%d bytes)", len(p))
	}
	return msg
}

// CodecByName resolves an identifier-list codec by its Name(), inverting the
// codec field of plan and result payloads. The empty name resolves to nil
// (meaning "engine default").
func CodecByName(name string) (idlist.Codec, error) {
	if name == "" {
		return nil, nil
	}
	for _, c := range idlist.AllCodecs() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("wire: unknown id-list codec %q", name)
}

// Payload primitives ------------------------------------------------------
//
// enc appends to a byte slice; dec consumes one and latches the first error,
// so codecs read fields unconditionally and check once at the end — the same
// discipline store's serializer uses.

type enc struct{ buf []byte }

func (e *enc) uint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) int(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) f64(v float64) { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) bytes(b []byte) {
	e.uint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) str(s string) {
	e.uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

type dec struct {
	buf []byte
	off int
	err error
}

func newDec(p []byte) *dec { return &dec{buf: p} }

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s at offset %d", what, d.off)
	}
}

func (d *dec) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	v := d.buf[d.off]
	d.off++
	return v != 0
}

func (d *dec) bytes() []byte {
	n := d.uint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

func (d *dec) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// checkCount guards slice preallocation against hostile counts: a count of
// n elements, each consuming at least minBytes of payload, cannot exceed the
// bytes remaining. Reports whether decoding may proceed.
func (d *dec) checkCount(n uint64, minBytes int, what string) bool {
	if d.err != nil {
		return false
	}
	if n > uint64(len(d.buf)-d.off)/uint64(minBytes) {
		d.fail(what)
		return false
	}
	return true
}

// close finishes a decode: it reports the latched error, if any, and rejects
// trailing garbage.
func (d *dec) close(what string) error {
	if d.err != nil {
		return fmt.Errorf("wire: decode %s: %v", what, d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: decode %s: %d trailing bytes", what, len(d.buf)-d.off)
	}
	return nil
}
