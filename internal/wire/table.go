package wire

import (
	"bytes"
	"fmt"

	"seabed/internal/store"
)

// EncodeRegister builds a MsgRegister payload: the ref the table will be
// addressable by in later plan frames, followed by the table in store's
// serialization format (the same bytes an HDFS upload would carry in the
// paper's prototype, §6.1). The table bytes run to the end of the payload —
// the frame header already carries the length, and skipping an inner prefix
// lets the table serialize straight into the payload buffer instead of
// being materialized twice (these are the protocol's largest frames).
func EncodeRegister(ref string, t *store.Table) ([]byte, error) {
	if ref == "" {
		return nil, fmt.Errorf("wire: encode register: empty table ref")
	}
	if t == nil {
		return nil, fmt.Errorf("wire: encode register: nil table")
	}
	e := &enc{}
	e.str(ref)
	buf := bytes.NewBuffer(e.buf)
	if _, err := t.WriteTo(buf); err != nil {
		return nil, fmt.Errorf("wire: encode register: %v", err)
	}
	return buf.Bytes(), nil
}

// EncodeAppend builds a MsgAppend payload: the target table's ref and the
// batch of new rows. The layout is identical to a register frame.
func EncodeAppend(ref string, batch *store.Table) ([]byte, error) {
	return EncodeRegister(ref, batch)
}

// DecodeAppend parses a MsgAppend payload.
func DecodeAppend(p []byte) (ref string, batch *store.Table, err error) {
	return DecodeRegister(p)
}

// DecodeRegister parses a MsgRegister payload.
func DecodeRegister(p []byte) (ref string, t *store.Table, err error) {
	d := newDec(p)
	ref = d.str()
	if d.err != nil {
		return "", nil, fmt.Errorf("wire: decode register: %v", d.err)
	}
	t, err = store.Read(bytes.NewReader(d.buf[d.off:]))
	if err != nil {
		return "", nil, fmt.Errorf("wire: decode register: %v", err)
	}
	return ref, t, nil
}
