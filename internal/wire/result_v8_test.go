package wire

import (
	"reflect"
	"testing"
	"time"

	"seabed/internal/engine"
	"seabed/internal/idlist"
	"seabed/internal/store"
)

// opsResult builds a result whose per-operator counter block has every field
// nonzero and distinct, so a dropped or reordered field cannot round-trip
// cleanly by accident.
func opsResult() *engine.Result {
	return &engine.Result{
		Groups: []engine.Group{
			{KeyKind: store.U64, KeyU64: 7, Suffix: -1, Rows: 3,
				Aggs: []engine.AggValue{{Kind: engine.AggCount, U64: 3}}},
		},
		Metrics: engine.Metrics{
			ServerTime: 5 * time.Millisecond, MapTasks: 4, ReduceTasks: 1,
			RowsScanned: 9000, RowsSelected: 1234,
			FirstChunk: 2 * time.Millisecond,
			Ops: engine.OpStats{
				Batches:       101,
				DenseBatches:  11,
				JoinProbed:    5000,
				JoinMatched:   4200,
				GroupDense:    3000,
				GroupHash:     1200,
				RadixBatches:  7,
				GroupSlots:    31,
				GroupTableLen: 4096,
				ColumnPins:    12,
				ColumnFaults:  2,
			},
		},
	}
}

// TestResultOpsRoundTripV8 pins the v8 result frame: the full per-operator
// counter block survives encode/decode exactly.
func TestResultOpsRoundTripV8(t *testing.T) {
	res := opsResult()
	payload, err := EncodeResult(idlist.Default.Name(), res, nil, Version)
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := DecodeResult(payload, Version)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Metrics.Ops, res.Metrics.Ops) {
		t.Fatalf("v8 ops round trip:\n got %+v\nwant %+v", got.Metrics.Ops, res.Metrics.Ops)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("v8 result round trip:\n got %+v\nwant %+v", got, res)
	}
}

// TestResultOpsV7Interop pins backward compatibility: a connection negotiated
// at v7 (an older peer) frames the same result without the ops block — the
// decode succeeds, stage-level metrics arrive intact, and the counters simply
// read zero. A v7 frame must also not leave trailing bytes a v7 decoder
// would reject.
func TestResultOpsV7Interop(t *testing.T) {
	res := opsResult()
	payload, err := EncodeResult(idlist.Default.Name(), res, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := DecodeResult(payload, 7)
	if err != nil {
		t.Fatalf("v7 peer rejected the frame: %v", err)
	}
	if got.Metrics.Ops != (engine.OpStats{}) {
		t.Fatalf("v7 frame carried ops counters: %+v", got.Metrics.Ops)
	}
	if got.Metrics.RowsScanned != res.Metrics.RowsScanned ||
		got.Metrics.FirstChunk != res.Metrics.FirstChunk ||
		got.Metrics.MapTasks != res.Metrics.MapTasks {
		t.Fatalf("v7 frame lost stage-level metrics: %+v", got.Metrics)
	}
	// The version gate is symmetric: a v7 frame is shorter than a v8 one.
	v8, err := EncodeResult(idlist.Default.Name(), res, nil, Version)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) >= len(v8) {
		t.Fatalf("v7 frame (%dB) not shorter than v8 (%dB); gate not applied", len(payload), len(v8))
	}
}

// TestResultOpsRejectsTruncatedV8 pins the hostile-payload guard: a v8 frame
// cut off inside the ops block must fail the decode, not panic or hand the
// trusted proxy fabricated counters plus a clean error.
func TestResultOpsRejectsTruncatedV8(t *testing.T) {
	payload, err := EncodeResult(idlist.Default.Name(), opsResult(), nil, Version)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point from "just before the ops block could finish"
	// back to an empty frame must error — never panic.
	for cut := len(payload) - 1; cut >= 0; cut-- {
		if _, _, _, err := DecodeResult(payload[:cut], Version); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(payload))
		}
	}
}
