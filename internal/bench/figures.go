package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/idlist"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// Fig6 reproduces Figure 6: median end-to-end aggregation latency vs input
// size for NoEnc, Seabed at selectivity 100% and 50% (best/worst case,
// §6.4), and Paillier.
func Fig6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	paperRows := []uint64{250_000_000, 750_000_000, 1_250_000_000, 1_750_000_000}
	if cfg.Quick {
		paperRows = []uint64{250_000_000, 1_750_000_000}
	}
	fmt.Fprintf(w, "Figure 6: end-to-end latency vs rows (scaled 1/%d, %d workers, median of %d)\n",
		cfg.Scale, cfg.Workers, cfg.Trials)
	fmt.Fprintf(w, "%12s %14s %16s %16s %14s\n", "rows", "NoEnc", "ASHE(sel=100%)", "ASHE(sel=50%)", "Paillier")

	const sql = "SELECT SUM(v) FROM synth"
	for _, pr := range paperRows {
		rows := workload.ScaleRows(pr, cfg.Scale)
		proxy, err := syntheticProxy(cfg, rows, 10, translate.NoEnc, translate.Seabed, translate.Paillier)
		if err != nil {
			return err
		}
		noenc, err := medianQuery(proxy, sql, cfg.Trials, client.WithMode(translate.NoEnc))
		if err != nil {
			return err
		}
		ashe100, err := medianQuery(proxy, sql, cfg.Trials)
		if err != nil {
			return err
		}
		ashe50, err := medianQuery(proxy, sql, cfg.Trials,
			client.WithSelectivity(0.5, uint64(cfg.Seed)))
		if err != nil {
			return err
		}
		pail, err := medianQuery(proxy, sql, cfg.Trials, client.WithMode(translate.Paillier))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%12d %14s %16s %16s %14s\n",
			rows, seconds(noenc), seconds(ashe100), seconds(ashe50), seconds(pail))
	}
	fmt.Fprintln(w, "(paper shape: NoEnc flat; ASHE grows linearly, sel=50% worst case; Paillier 2 orders slower)")
	return nil
}

// medianQuery runs a query trials times and returns the median total time.
// The mode rides in opts (client.WithMode); the default is translate.Seabed.
func medianQuery(p *client.Proxy, sql string, trials int, opts ...client.QueryOption) (time.Duration, error) {
	ds := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		res, err := p.Query(context.Background(), sql, opts...)
		if err != nil {
			return 0, err
		}
		ds = append(ds, res.TotalTime)
	}
	return median(ds), nil
}

// medianServer runs a query trials times and returns the median server time.
func medianServer(p *client.Proxy, sql string, trials int, opts ...client.QueryOption) (time.Duration, *client.QueryResult, error) {
	ds := make([]time.Duration, 0, trials)
	var last *client.QueryResult
	for i := 0; i < trials; i++ {
		res, err := p.Query(context.Background(), sql, opts...)
		if err != nil {
			return 0, nil, err
		}
		ds = append(ds, res.ServerTime)
		last = res
	}
	return median(ds), last, nil
}

// Fig7 reproduces Figure 7: server-side latency vs simulated worker count at
// the full (scaled) 1.75 B-row dataset.
func Fig7(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	workerSweep := []int{1, 2, 4, 8, 16, 32, 64, 100}
	if cfg.Quick {
		workerSweep = []int{2, 8, 32}
	}
	rows := workload.ScaleRows(1_750_000_000, cfg.Scale)
	base, err := syntheticProxy(cfg, rows, 10, translate.NoEnc, translate.Seabed, translate.Paillier)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7: server latency vs workers (%d rows, median of %d)\n", rows, cfg.Trials)
	fmt.Fprintf(w, "%8s %14s %16s %16s %14s\n", "workers", "NoEnc", "Seabed(100%)", "Seabed(50%)", "Paillier")
	const sql = "SELECT SUM(v) FROM synth"
	for _, workers := range workerSweep {
		proxy := base.WithCluster(engine.NewCluster(engine.Config{Workers: workers, Seed: uint64(cfg.Seed)}))
		noenc, _, err := medianServer(proxy, sql, cfg.Trials, client.WithMode(translate.NoEnc))
		if err != nil {
			return err
		}
		s100, _, err := medianServer(proxy, sql, cfg.Trials)
		if err != nil {
			return err
		}
		s50, _, err := medianServer(proxy, sql, cfg.Trials,
			client.WithSelectivity(0.5, uint64(cfg.Seed)))
		if err != nil {
			return err
		}
		pail, _, err := medianServer(proxy, sql, cfg.Trials, client.WithMode(translate.Paillier))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %14s %16s %16s %14s\n",
			workers, seconds(noenc), seconds(s100), seconds(s50), seconds(pail))
	}
	fmt.Fprintln(w, "(paper shape: NoEnc/Seabed flatten by ~20-50 cores; Paillier stays 2 orders higher)")
	return nil
}

// Fig8 reproduces Figure 8: (a) result size and (b) response time vs
// selectivity for the encoding family, and (c) the OPE selection overhead.
func Fig8(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := workload.ScaleRows(1_750_000_000, cfg.Scale)
	sels := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if cfg.Quick {
		sels = []float64{0.1, 0.5, 1.0}
	}
	proxy, err := syntheticProxy(cfg, rows, 10, translate.Seabed)
	if err != nil {
		return err
	}
	codecs := []idlist.Codec{
		idlist.RangeVB,
		idlist.RangeVBDiff,
		idlist.RangeVBDiffDeflateCompact,
		idlist.RangeVBDiffDeflateFast,
	}
	const sql = "SELECT SUM(v) FROM synth"

	fmt.Fprintf(w, "Figure 8a: result size (KB) vs selectivity (%d rows)\n", rows)
	fmt.Fprintf(w, "%6s", "sel%")
	for _, c := range codecs {
		fmt.Fprintf(w, " %18s", shortCodec(c.Name()))
	}
	fmt.Fprintln(w)
	type cell struct {
		bytes int
		dur   time.Duration
	}
	grid := make(map[string]map[float64]cell)
	for _, c := range codecs {
		grid[c.Name()] = make(map[float64]cell)
		for _, sel := range sels {
			opts := []client.QueryOption{client.WithCodec(c)}
			if sel < 1 {
				opts = append(opts, client.WithSelectivity(sel, uint64(cfg.Seed)))
			}
			dur, res, err := medianServer(proxy, sql, cfg.Trials, opts...)
			if err != nil {
				return err
			}
			grid[c.Name()][sel] = cell{bytes: res.Metrics.ResultBytes, dur: dur}
		}
	}
	for _, sel := range sels {
		fmt.Fprintf(w, "%6.0f", sel*100)
		for _, c := range codecs {
			fmt.Fprintf(w, " %18.2f", float64(grid[c.Name()][sel].bytes)/1e3)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper shape: size peaks near sel=50%, collapses at 100% thanks to range encoding)")

	fmt.Fprintf(w, "\nFigure 8b: server response time (s) vs selectivity\n")
	fmt.Fprintf(w, "%6s", "sel%")
	for _, c := range codecs {
		fmt.Fprintf(w, " %18s", shortCodec(c.Name()))
	}
	fmt.Fprintln(w)
	for _, sel := range sels {
		fmt.Fprintf(w, "%6.0f", sel*100)
		for _, c := range codecs {
			fmt.Fprintf(w, " %18s", seconds(grid[c.Name()][sel].dur))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nFigure 8c: aggregation vs +OPE selection (response time, s)\n")
	fmt.Fprintf(w, "%6s %14s %14s\n", "sel%", "aggregation", "+OPE selection")
	for _, sel := range sels {
		var aggOpts []client.QueryOption
		if sel < 1 {
			aggOpts = append(aggOpts, client.WithSelectivity(sel, uint64(cfg.Seed)))
		}
		agg, _, err := medianServer(proxy, sql, cfg.Trials, aggOpts...)
		if err != nil {
			return err
		}
		// The o column is uniform in [0, 1e6): a threshold at sel·1e6
		// achieves the same selectivity through an ORE comparison.
		opeSQL := fmt.Sprintf("SELECT SUM(v) FROM synth WHERE o < %d", int(sel*1_000_000))
		ope, _, err := medianServer(proxy, opeSQL, cfg.Trials)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6.0f %14s %14s\n", sel*100, seconds(agg), seconds(ope))
	}
	fmt.Fprintln(w, "(paper shape: OPE adds a roughly constant comparison overhead on top of aggregation)")
	return nil
}

func shortCodec(name string) string {
	switch name {
	case "ranges+vb":
		return "Ranges&VB"
	case "ranges+vb+diff":
		return "+Diff"
	case "ranges+vb+diff+deflate(compact)":
		return "+Deflate(Compact)"
	case "ranges+vb+diff+deflate(fast)":
		return "+Deflate(Fast)"
	case "vb+diff":
		return "VB+Diff"
	}
	return name
}
