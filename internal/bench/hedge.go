package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/fleet"
	"seabed/internal/planner"
	"seabed/internal/server"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// Hedge measures what hedged scatter buys against a straggling replica: a
// 3-daemon R=2 loopback fleet answers the §6.1 microbenchmark aggregate
// repeatedly while daemon 0 stalls every map task, and the query-latency
// distribution (p50/p99) is compared across three configurations — no
// straggler, straggler unhedged, and straggler with the hedge quantile
// armed. The paper's straggler mitigation (§4.5) recast at the replica
// level: the hedged p99 should sit near the no-straggler p99 instead of the
// straggler's stall, because the straggling range's sub-query is re-issued
// to its second replica and the first result wins.
func Hedge(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := workload.ScaleRows(1_750_000_000, cfg.Scale)
	reps := 40
	if cfg.Quick {
		reps = 12
	}
	const daemons = 3
	const stall = 15 * time.Millisecond
	// With 3 ranges the trigger is ceil(q·3): 0.5 arms the hedge once 2 of 3
	// ranges complete (a larger quantile would round to "all done" and
	// disarm).
	const hedgeQ = 0.5
	fmt.Fprintf(w, "Hedged scatter vs a straggling replica: %d rows, %d daemons, R=2, %d-query runs, %v task stall\n",
		rows, daemons, reps, stall)

	type sample struct {
		label  string
		p50    time.Duration
		p99    time.Duration
		hedges uint64
	}
	run := func(label string, stragglerStall time.Duration, quantile float64) (sample, error) {
		s := sample{label: label}
		// One loopback daemon per shard; daemon 0 is the (optional) straggler.
		addrs := make([]string, daemons)
		servers := make([]*server.Server, daemons)
		for i := range addrs {
			sleep := time.Duration(0)
			if i == 0 {
				sleep = stragglerStall
			}
			srv := server.New(engine.NewCluster(engine.Config{
				Workers:         cfg.Workers,
				RealParallelism: 2,
				TaskSleep:       sleep,
				Seed:            uint64(cfg.Seed),
			}))
			srv.ShardIndex, srv.ShardCount = i, daemons
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return s, err
			}
			go srv.Serve(ln) //nolint:errcheck // closed via srv.Close below
			addrs[i] = ln.Addr().String()
			servers[i] = srv
		}
		defer func() {
			for _, srv := range servers {
				srv.Close() //nolint:errcheck // bench teardown
			}
		}()

		fc, err := fleet.Dial(addrs, fleet.Options{Replicas: 2, HedgeQuantile: quantile})
		if err != nil {
			return s, err
		}
		defer fc.Close() //nolint:errcheck // bench teardown

		proxy, err := client.NewProxy([]byte("seabed-bench-master-secret-0123"), fc)
		if err != nil {
			return s, err
		}
		// Several map tasks per range, so a stalled daemon has a long runway
		// and the hedge's head start is visible.
		proxy.Parts = daemons * 8
		if _, err := proxy.CreatePlan(workload.SyntheticSchema(2), workload.SyntheticQueries(), planner.Options{}); err != nil {
			return s, err
		}
		src, err := workload.Synthetic(rows, 2, cfg.Seed)
		if err != nil {
			return s, err
		}
		ctx := context.Background()
		if err := proxy.Upload(ctx, "synth", src, translate.Seabed); err != nil {
			return s, err
		}

		ds := make([]time.Duration, 0, reps)
		for i := 0; i < reps+1; i++ { // +1 discarded warmup
			start := time.Now()
			res, err := proxy.Query(ctx, "SELECT SUM(v) FROM synth WHERE o > 100")
			if err != nil {
				return s, err
			}
			if _, err := res.All(); err != nil {
				return s, err
			}
			if i > 0 {
				ds = append(ds, time.Since(start))
			}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		s.p50 = ds[len(ds)/2]
		s.p99 = ds[(len(ds)*99)/100]
		s.hedges = fc.Stats().Hedges
		return s, nil
	}

	baseline, err := run("no straggler", 0, 0)
	if err != nil {
		return err
	}
	unhedged, err := run("straggler, unhedged", stall, 0)
	if err != nil {
		return err
	}
	hedged, err := run(fmt.Sprintf("straggler, hedged (q=%.1f)", hedgeQ), stall, hedgeQ)
	if err != nil {
		return err
	}

	for _, s := range []sample{baseline, unhedged, hedged} {
		line := fmt.Sprintf("  %-26s p50=%s  p99=%s", s.label+":", seconds(s.p50), seconds(s.p99))
		if s.hedges > 0 {
			line += fmt.Sprintf("  (%d hedged sub-queries)", s.hedges)
		}
		fmt.Fprintln(w, line)
	}
	if baseline.p99 > 0 && unhedged.p99 > 0 {
		fmt.Fprintf(w, "  straggler cost: %.2fx unhedged, %.2fx hedged (vs no-straggler p99)\n",
			float64(unhedged.p99)/float64(baseline.p99),
			float64(hedged.p99)/float64(baseline.p99))
	}
	return nil
}
