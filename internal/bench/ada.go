package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/netsim"
	"seabed/internal/planner"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// adaProxy builds the Ad-Analytics workload proxy (cached per process).
var adaCache = map[int]*client.Proxy{}

func adaProxy(cfg Config) (*client.Proxy, int, error) {
	rows := workload.ScaleRows(759_000_000, cfg.Scale)
	if cfg.Quick {
		rows = workload.ScaleRows(759_000_000, cfg.Scale*10)
	}
	fixMu.Lock()
	if p, ok := adaCache[rows]; ok {
		fixMu.Unlock()
		return p, rows, nil
	}
	fixMu.Unlock()
	ada, err := workload.GenerateAdA(workload.AdAConfig{Rows: rows, Seed: cfg.Seed})
	if err != nil {
		return nil, 0, err
	}
	cluster := engine.NewCluster(engine.Config{Workers: cfg.Workers, Seed: uint64(cfg.Seed)})
	proxy, err := client.NewProxy([]byte("seabed-bench-master-secret-0123"), cluster)
	if err != nil {
		return nil, 0, err
	}
	proxy.TraceSink = recordTrace
	proxy.Parts = cfg.Workers
	if _, err := proxy.CreatePlan(ada.Schema, workload.AdASamples(), planner.Options{MaxStorageOverhead: 10}); err != nil {
		return nil, 0, err
	}
	if err := proxy.Upload(context.Background(), "ada", ada.Table,
		translate.NoEnc, translate.Seabed, translate.Paillier); err != nil {
		return nil, 0, err
	}
	fixMu.Lock()
	adaCache[rows] = proxy
	fixMu.Unlock()
	return proxy, rows, nil
}

// Fig10a reproduces Figure 10a: the response-time distribution of the
// ad-analytics query set (5 queries per group count in {1,4,8}) for Plain,
// Seabed, and Paillier, plus the §6.6 decryption statistics.
func Fig10a(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	proxy, rows, err := adaProxy(cfg)
	if err != nil {
		return err
	}
	queries := workload.AdAPerfQueries()
	fmt.Fprintf(w, "Figure 10a: Ad-Analytics response times (%d rows, %d workers, median of %d)\n",
		rows, cfg.Workers, cfg.Trials)

	times := map[translate.Mode][]time.Duration{}
	var idListBytes, prfEvals, nSeabed uint64
	for _, q := range queries {
		for _, mode := range []translate.Mode{translate.NoEnc, translate.Seabed, translate.Paillier} {
			var ds []time.Duration
			for trial := 0; trial < cfg.Trials; trial++ {
				res, err := proxy.Query(context.Background(), q.SQL,
					client.WithMode(mode), client.WithExpectedGroups(q.Groups))
				if err != nil {
					return fmt.Errorf("%s %v: %v", q.Name, mode, err)
				}
				ds = append(ds, res.TotalTime)
				if mode == translate.Seabed && trial == 0 {
					idListBytes += uint64(res.Metrics.ResultBytes)
					prfEvals += res.PRFEvals
					nSeabed++
				}
			}
			times[mode] = append(times[mode], median(ds))
		}
	}
	for _, mode := range []translate.Mode{translate.NoEnc, translate.Seabed, translate.Paillier} {
		ts := append([]time.Duration(nil), times[mode]...)
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		fmt.Fprintf(w, "%-9s min=%s p25=%s median=%s p75=%s max=%s\n", mode,
			seconds(ts[0]), seconds(ts[len(ts)/4]), seconds(ts[len(ts)/2]),
			seconds(ts[3*len(ts)/4]), seconds(ts[len(ts)-1]))
	}
	med := func(m translate.Mode) time.Duration {
		ts := append([]time.Duration(nil), times[m]...)
		sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
		return ts[len(ts)/2]
	}
	fmt.Fprintf(w, "Seabed/NoEnc median ratio: %.2fx (paper: 1.08-1.45x, median 1.27x)\n",
		float64(med(translate.Seabed))/float64(med(translate.NoEnc)))
	fmt.Fprintf(w, "Paillier/Seabed median ratio: %.2fx (paper: 6.7x)\n",
		float64(med(translate.Paillier))/float64(med(translate.Seabed)))
	fmt.Fprintf(w, "Avg ID-list result size: %.1f KB/query; avg PRF evals to decrypt: %d (paper: 163.5 KB, ~26k)\n",
		float64(idListBytes)/float64(nSeabed)/1e3, prfEvals/nSeabed)
	return nil
}

// Fig10b reproduces Figure 10b: cumulative SPLASHE storage overhead per
// sensitive dimension, basic vs enhanced.
func Fig10b(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := workload.ScaleRows(759_000_000, cfg.Scale)
	ada, err := workload.GenerateAdA(workload.AdAConfig{Rows: rows, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	ov, err := ada.AdASplasheOverheads()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10b: cumulative SPLASHE storage overhead (dims sorted by cardinality)")
	fmt.Fprintf(w, "%-8s %12s %6s %14s %16s\n", "dim", "cardinality", "k", "basic(cum x)", "enhanced(cum x)")
	for _, o := range ov {
		fmt.Fprintf(w, "%-8s %12d %6d %14.1f %16.1f\n", o.Dim, o.Cardinality, o.K, o.CumBasic, o.CumEnhanced)
	}
	// §6.6's headline numbers.
	budget := func(factor float64) (basic, enh int) {
		for _, o := range ov {
			if o.CumBasic <= factor {
				basic++
			}
			if o.CumEnhanced <= factor {
				enh++
			}
		}
		return
	}
	b2, e2 := budget(2)
	b3, e3 := budget(3)
	fmt.Fprintf(w, "Dims encryptable within 2x storage: basic=%d enhanced=%d (paper: 1 vs 2)\n", b2, e2)
	fmt.Fprintf(w, "Dims encryptable within 3x storage: basic=%d enhanced=%d (paper: 3 vs 6)\n", b3, e3)
	return nil
}

// Links reproduces the §6.6 link-sensitivity experiment: the median
// ad-analytics query under the three client links. Absolute network times
// are reported alongside the percentage they would add to the paper's
// median query (17.8 s): the paper's point is that ID lists are small, so a
// degraded link adds only milliseconds of transfer time that long queries
// amortize. (At laptop scale our queries last milliseconds, so the same
// absolute additions look proportionally huge — the absolute numbers are
// the faithful comparison.)
func Links(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	proxy, rows, err := adaProxy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "§6.6: network cost vs client link (%d rows)\n", rows)
	const sql = "SELECT hour, SUM(m0) FROM ada WHERE hour < 8 GROUP BY hour"
	const paperMedian = 17.8 // seconds, §6.6
	var baseNet time.Duration
	for _, link := range []netsim.Link{netsim.InCluster, netsim.WAN100, netsim.WAN10} {
		proxy.Link = link
		res, err := proxy.Query(context.Background(), sql, client.WithExpectedGroups(8))
		if err != nil {
			return err
		}
		if baseNet == 0 {
			baseNet = res.NetworkTime
		}
		extra := res.NetworkTime - baseNet
		fmt.Fprintf(w, "%-16s network=%10s result=%6.1fKB  extra vs in-cluster: %8s (+%5.2f%% of the paper's 17.8s median)\n",
			link, res.NetworkTime, float64(res.Metrics.ResultBytes)/1e3,
			extra, 100*extra.Seconds()/paperMedian)
	}
	proxy.Link = netsim.InCluster
	fmt.Fprintln(w, "(paper: +1% at 100Mbps/10ms, +12% at 10Mbps/100ms — ID lists are small)")
	return nil
}
