package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/planner"
	"seabed/internal/schema"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// Table2 shows the query translation examples of paper Table 2: the same
// SQL translated for NoEnc and for Seabed's encrypted schema.
func Table2(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "Table 2: query translation examples")

	// The Table 2 schema: measure a, range dimension b, splayed dimension
	// with d=16 values, group dimension k.
	tbl := &schema.Table{Name: "tbl", Columns: []schema.Column{
		{Name: "a", Type: schema.Int64, Sensitive: true},
		{Name: "b", Type: schema.Int64, Sensitive: true},
		{Name: "g", Type: schema.Int64, Sensitive: true, Cardinality: 16},
		{Name: "k", Type: schema.Int64, Sensitive: true},
	}}
	samples := []string{
		"SELECT SUM(a) FROM tbl WHERE b > 10",
		"SELECT COUNT(*) FROM tbl WHERE g = 10",
		"SELECT k, SUM(a) FROM tbl GROUP BY k",
	}
	cluster := engine.NewCluster(engine.Config{Workers: 100})
	proxy, err := client.NewProxy([]byte("seabed-bench-master-secret-0123"), cluster)
	if err != nil {
		return err
	}
	proxy.TraceSink = recordTrace
	if _, err := proxy.CreatePlan(tbl, samples, planner.Options{}); err != nil {
		return err
	}
	// A single-row table is enough to resolve plans.
	one := make([]uint64, 1)
	src, err := store.Build("tbl", []store.Column{
		{Name: "a", Kind: store.U64, U64: one},
		{Name: "b", Kind: store.U64, U64: one},
		{Name: "g", Kind: store.U64, U64: one},
		{Name: "k", Kind: store.U64, U64: one},
	}, 1)
	if err != nil {
		return err
	}
	if err := proxy.Upload(context.Background(), "tbl", src, translate.NoEnc, translate.Seabed); err != nil {
		return err
	}

	examples := []struct {
		kind string
		sql  string
		opts translate.Options
	}{
		{"ID preservation", "SELECT SUM(tmp.a) FROM (SELECT a FROM tbl WHERE b > 10) tmp", translate.Options{}},
		{"SPLASHE", "SELECT COUNT(*) FROM tbl WHERE g = 10", translate.Options{}},
		{"Group-by optimization", "SELECT k, SUM(a) FROM tbl GROUP BY k", translate.Options{Workers: 100, ExpectedGroups: 10}},
	}
	for _, ex := range examples {
		q := sqlparse.MustParse(ex.sql)
		fmt.Fprintf(w, "\n[%s]\n  SQL:    %s\n", ex.kind, q)
		tr, err := translate.Translate(q, proxy, proxy.Ring(), translate.Seabed, ex.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  Seabed: %s\n", planString(tr))
	}
	return nil
}

// planString renders a translated plan the way Table 2 sketches Spark code.
func planString(tr *translate.Translation) string {
	var b strings.Builder
	sp := tr.Server
	b.WriteString("table")
	for _, f := range sp.Filters {
		switch f.Kind {
		case engine.FilterDetEq:
			fmt.Fprintf(&b, ".filter(DET.eq(%s, <enc>))", f.Col)
		case engine.FilterOpeCmp:
			fmt.Fprintf(&b, ".filter(OPE.%s(%s, <enc>))", strings.ToLower(f.Op.String()), f.Col)
		case engine.FilterPlainCmp:
			fmt.Fprintf(&b, ".filter(%s %s %d)", f.Col, f.Op, f.U64)
		case engine.FilterRandom:
			fmt.Fprintf(&b, ".sample(%g)", f.Prob)
		}
	}
	if gb := sp.GroupBy; gb != nil {
		if gb.Inflate > 1 {
			fmt.Fprintf(&b, ".map(x => (%s + ':' + rnd%%%d, (x.id, x.val))).reduceByKey(ASHE)", gb.Col, gb.Inflate)
		} else {
			fmt.Fprintf(&b, ".map(x => (%s, (x.id, x.val))).reduceByKey(ASHE)", gb.Col)
		}
	} else if len(sp.Aggs) > 0 {
		cols := make([]string, len(sp.Aggs))
		for i, a := range sp.Aggs {
			cols[i] = a.Col
			if a.Kind == engine.AggCount {
				cols[i] = "count"
			}
		}
		fmt.Fprintf(&b, ".map(x => (x.id, [%s])).reduce(ASHE)", strings.Join(cols, ","))
	}
	if len(sp.Project) > 0 {
		fmt.Fprintf(&b, ".select(%s)", strings.Join(sp.Project, ","))
	}
	return b.String()
}

// Table4 reproduces the query-support classification: the generated
// ad-analytics log, the MDX catalog, and the TPC-DS reference row.
func Table4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "Table 4: query support categories (total / server / client-pre / client-post / two-round)")
	logSize := workload.AdLogReference.Total
	if cfg.Quick {
		logSize = 10_000
	}
	log := workload.GenerateAdLog(logSize, cfg.Seed)
	ada, err := workload.ClassifyLog(log)
	if err != nil {
		return err
	}
	mdx := workload.MDXCounts()
	tpc := workload.TPCDSReference

	row := func(name string, c workload.CategoryCounts, note string) {
		fmt.Fprintf(w, "%-14s %8d %8d %8d %8d %8d   %s\n",
			name, c.Total, c.Server, c.ClientPre, c.ClientPost, c.TwoRound, note)
	}
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s %8s\n", "Query set", "total", "S", "CPre", "CPost", "2R")
	row("Ad Analytics", ada, "(generated log, classified by the planner; paper: 168352/134298/0/34054/0)")
	row("TPC-DS", tpc, "(reference row from the paper)")
	row("MDX", mdx, "(classified from the Appendix B catalog; paper: 38/17/12/4/5)")
	return nil
}

// Table5 reproduces dataset characteristics: rows, dims, measures, and the
// disk/memory footprint under NoEnc, Seabed, and Paillier.
func Table5(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Table 5: dataset characteristics (rows scaled by 1/%d; sizes in MB)\n", cfg.Scale)
	fmt.Fprintf(w, "%-22s %10s %5s %5s | %9s %9s %9s | %9s %9s %9s\n",
		"Dataset", "rows", "dims", "meas", "diskNoEnc", "diskSbd", "diskPail", "memNoEnc", "memSbd", "memPail")

	type ds struct {
		name       string
		paperRows  uint64
		dims, meas int
		build      func(rows int) (*store.Table, *schema.Table, []string, error)
	}
	mk := func(name string, paperRows uint64, dims, meas int,
		build func(rows int) (*store.Table, *schema.Table, []string, error)) ds {
		return ds{name, paperRows, dims, meas, build}
	}

	sets := []ds{
		mk("Synthetic - Large", 1_750_000_000, 0, 1, buildSynth),
		mk("Synthetic - Small", 250_000_000, 0, 1, buildSynth),
		mk("BDB - Rankings", 90_000_000, 1, 2, buildRankings(cfg)),
		mk("BDB - UserVisits", 775_000_000, 8, 2, buildUserVisits(cfg)),
		mk("BDB - Query4 Ph.2", 194_000_000, 2, 1, buildQ4(cfg)),
		mk("Ad Analytics", 759_000_000, 33, 18, buildAdA(cfg)),
	}
	for _, d := range sets {
		rows := workload.ScaleRows(d.paperRows, cfg.Scale)
		if cfg.Quick {
			rows = workload.ScaleRows(d.paperRows, cfg.Scale*10)
		}
		src, sch, samples, err := d.build(rows)
		if err != nil {
			return fmt.Errorf("%s: %v", d.name, err)
		}
		sizes, err := datasetSizes(src, sch, samples)
		if err != nil {
			return fmt.Errorf("%s: %v", d.name, err)
		}
		mb := func(b uint64) string { return fmt.Sprintf("%.1f", float64(b)/1e6) }
		fmt.Fprintf(w, "%-22s %10d %5d %5d | %9s %9s %9s | %9s %9s %9s\n",
			d.name, rows, d.dims, d.meas,
			mb(sizes.disk[0]), mb(sizes.disk[1]), mb(sizes.disk[2]),
			mb(sizes.mem[0]), mb(sizes.mem[1]), mb(sizes.mem[2]))
	}
	fmt.Fprintln(w, "(paper shape: Seabed disk ≈ 1.1-2x NoEnc, Paillier ≈ 3-15x NoEnc)")
	return nil
}

type sizeTriple struct {
	disk [3]uint64 // NoEnc, Seabed, Paillier
	mem  [3]uint64
}

// datasetSizes encrypts a source table in all three modes and measures.
func datasetSizes(src *store.Table, sch *schema.Table, samples []string) (sizeTriple, error) {
	var out sizeTriple
	cluster := engine.NewCluster(engine.Config{Workers: 4})
	proxy, err := client.NewProxy([]byte("seabed-bench-master-secret-0123"), cluster)
	if err != nil {
		return out, err
	}
	proxy.TraceSink = recordTrace
	if _, err := proxy.CreatePlan(sch, samples, planner.Options{}); err != nil {
		return out, err
	}
	for i, mode := range []translate.Mode{translate.NoEnc, translate.Seabed, translate.Paillier} {
		if err := proxy.Upload(context.Background(), sch.Name, src, mode); err != nil {
			return out, err
		}
		t, err := proxy.Table(sch.Name, mode)
		if err != nil {
			return out, err
		}
		out.disk[i] = t.DiskBytes()
		out.mem[i] = t.MemBytes()
	}
	return out, nil
}

func buildSynth(rows int) (*store.Table, *schema.Table, []string, error) {
	src, err := workload.Synthetic(rows, 10, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	return src, workload.SyntheticSchema(10), workload.SyntheticQueries(), nil
}

func buildRankings(cfg Config) func(rows int) (*store.Table, *schema.Table, []string, error) {
	return func(rows int) (*store.Table, *schema.Table, []string, error) {
		bdb, err := workload.GenerateBDB(workload.BDBConfig{Pages: rows, Visits: 1, Q4Rows: 1, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		return bdb.Rankings, bdb.RankingsSchema, workload.BDBSamples()["rankings"], nil
	}
}

func buildUserVisits(cfg Config) func(rows int) (*store.Table, *schema.Table, []string, error) {
	return func(rows int) (*store.Table, *schema.Table, []string, error) {
		pages := rows / 10
		if pages < 10 {
			pages = 10
		}
		bdb, err := workload.GenerateBDB(workload.BDBConfig{Pages: pages, Visits: rows, Q4Rows: 1, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		return bdb.UserVisits, bdb.UserVisitsSchema, workload.BDBSamples()["uservisits"], nil
	}
}

func buildQ4(cfg Config) func(rows int) (*store.Table, *schema.Table, []string, error) {
	return func(rows int) (*store.Table, *schema.Table, []string, error) {
		bdb, err := workload.GenerateBDB(workload.BDBConfig{Pages: 100, Visits: 1, Q4Rows: rows, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		return bdb.Q4Phase2, bdb.Q4Phase2Schema, workload.BDBSamples()["q4phase2"], nil
	}
}

func buildAdA(cfg Config) func(rows int) (*store.Table, *schema.Table, []string, error) {
	return func(rows int) (*store.Table, *schema.Table, []string, error) {
		ada, err := workload.GenerateAdA(workload.AdAConfig{Rows: rows, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, nil, err
		}
		return ada.Table, ada.Schema, workload.AdASamples(), nil
	}
}
