package bench

import (
	"sync"

	"seabed/internal/obs"
)

// Trace capture for -trace: every proxy the bench package builds reports its
// finished query traces to recordTrace (via client.Proxy.TraceSink), and the
// driver drains the slowest one per experiment. Capture is off unless
// EnableTracing was called, so the default bench run pays one atomic load per
// query and keeps no spans alive.
var traceState struct {
	sync.Mutex
	enabled bool
	slowest *obs.Span
}

// EnableTracing turns on slowest-query trace capture for the process.
func EnableTracing() {
	traceState.Lock()
	traceState.enabled = true
	traceState.Unlock()
}

// TakeSlowestTrace returns the slowest query trace recorded since the last
// call (nil if none) and resets the tracker, giving each experiment its own
// slowest query.
func TakeSlowestTrace() *obs.Span {
	traceState.Lock()
	defer traceState.Unlock()
	sp := traceState.slowest
	traceState.slowest = nil
	return sp
}

// recordTrace is the TraceSink wired into every bench proxy.
func recordTrace(sp *obs.Span) {
	traceState.Lock()
	defer traceState.Unlock()
	if !traceState.enabled {
		return
	}
	if traceState.slowest == nil || sp.Duration() > traceState.slowest.Duration() {
		traceState.slowest = sp
	}
}
