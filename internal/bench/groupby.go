package bench

import (
	"context"
	"fmt"
	"io"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/planner"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// Fig9a reproduces Figure 9a: group-by response time vs group count for
// NoEnc, Paillier, Seabed (no inflation), and Seabed-optimized (group
// inflation, §4.5).
func Fig9a(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := workload.ScaleRows(1_750_000_000, cfg.Scale)
	groupSweep := []int{10, 100, 1_000, 10_000}
	if cfg.Quick {
		groupSweep = []int{10, 1_000}
	}
	fmt.Fprintf(w, "Figure 9a: group-by response time vs groups (%d rows, %d workers)\n", rows, cfg.Workers)
	fmt.Fprintf(w, "%8s %12s %12s %12s %16s\n", "groups", "NoEnc", "Paillier", "Seabed", "Seabed-opt")
	const sql = "SELECT g, SUM(v) FROM synth GROUP BY g"
	for _, groups := range groupSweep {
		if groups > rows {
			continue
		}
		proxy, err := syntheticProxy(cfg, rows, groups, translate.NoEnc, translate.Seabed, translate.Paillier)
		if err != nil {
			return err
		}
		noenc, err := medianQuery(proxy, sql, cfg.Trials, client.WithMode(translate.NoEnc), client.WithoutInflation())
		if err != nil {
			return err
		}
		pail, err := medianQuery(proxy, sql, cfg.Trials, client.WithMode(translate.Paillier), client.WithoutInflation())
		if err != nil {
			return err
		}
		plain, err := medianQuery(proxy, sql, cfg.Trials, client.WithoutInflation())
		if err != nil {
			return err
		}
		opt, err := medianQuery(proxy, sql, cfg.Trials, client.WithExpectedGroups(groups))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %12s %12s %12s %16s\n",
			groups, seconds(noenc), seconds(pail), seconds(plain), seconds(opt))
	}
	fmt.Fprintln(w, "(paper shape: few groups hurt unoptimized Seabed; inflation fixes it; Seabed beats Paillier 5-10x)")
	return nil
}

// Fig9bc reproduces Figures 9b/9c: the AmpLab Big Data Benchmark queries,
// server-side time only (§6.7 measured only server cost).
func Fig9bc(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	pages := workload.ScaleRows(90_000_000, cfg.Scale)
	visits := workload.ScaleRows(775_000_000, cfg.Scale)
	q4rows := workload.ScaleRows(194_000_000, cfg.Scale)
	if cfg.Quick {
		pages, visits, q4rows = pages/10, visits/10, q4rows/10
	}
	bdb, err := workload.GenerateBDB(workload.BDBConfig{Pages: pages, Visits: visits, Q4Rows: q4rows, Seed: cfg.Seed})
	if err != nil {
		return err
	}

	cluster := engine.NewCluster(engine.Config{Workers: cfg.Workers, Seed: uint64(cfg.Seed)})
	proxy, err := client.NewProxy([]byte("seabed-bench-master-secret-0123"), cluster)
	if err != nil {
		return err
	}
	proxy.TraceSink = recordTrace
	proxy.Parts = cfg.Workers
	samples := workload.BDBSamples()
	if _, err := proxy.CreatePlan(bdb.RankingsSchema, samples["rankings"], planner.Options{}); err != nil {
		return err
	}
	if _, err := proxy.CreatePlan(bdb.UserVisitsSchema, samples["uservisits"], planner.Options{}); err != nil {
		return err
	}
	if _, err := proxy.CreatePlan(bdb.Q4Phase2Schema, samples["q4phase2"], planner.Options{}); err != nil {
		return err
	}
	modes := []translate.Mode{translate.NoEnc, translate.Seabed, translate.Paillier}
	ctx := context.Background()
	if err := proxy.Upload(ctx, "rankings", bdb.Rankings, modes...); err != nil {
		return err
	}
	if err := proxy.Upload(ctx, "uservisits", bdb.UserVisits, modes...); err != nil {
		return err
	}
	if err := proxy.Upload(ctx, "q4phase2", bdb.Q4Phase2, modes...); err != nil {
		return err
	}

	fmt.Fprintf(w, "Figure 9b/9c: Big Data Benchmark server-side response time (rankings=%d, uservisits=%d, q4=%d rows)\n",
		pages, visits, q4rows)
	fmt.Fprintf(w, "%-5s %12s %12s %12s\n", "query", "NoEnc", "Seabed", "Paillier")
	for _, q := range workload.BDBQueries() {
		noenc, _, err := medianServer(proxy, q.SQL, cfg.Trials, client.WithMode(translate.NoEnc), client.WithServerOnly())
		if err != nil {
			return fmt.Errorf("%s NoEnc: %v", q.Name, err)
		}
		sbd, _, err := medianServer(proxy, q.SQL, cfg.Trials, client.WithServerOnly())
		if err != nil {
			return fmt.Errorf("%s Seabed: %v", q.Name, err)
		}
		pail, _, err := medianServer(proxy, q.SQL, cfg.Trials, client.WithMode(translate.Paillier), client.WithServerOnly())
		if err != nil {
			return fmt.Errorf("%s Paillier: %v", q.Name, err)
		}
		fmt.Fprintf(w, "%-5s %12s %12s %12s\n", q.Name, seconds(noenc), seconds(sbd), seconds(pail))
	}
	fmt.Fprintln(w, "(paper shape: Q1 near-parity with OPE overhead; Q2-Q4 Seabed consistently beats Paillier)")
	return nil
}
