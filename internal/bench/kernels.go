package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"seabed/internal/ashe"
	"seabed/internal/engine"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// Kernels measures raw map-stage throughput of the vectorized batch
// executor against the retained row-at-a-time reference evaluator, per
// query shape. Unlike the paper-figure experiments these rows report real
// wall-clock rows/sec of this machine's scan loop — the §4.5 premise is
// that ASHE makes the scan loop, not the crypto, the bottleneck, so the
// scan loop's own speed is a first-class artifact of the reproduction.
func Kernels(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := 1 << 21
	if cfg.Quick {
		rows = 1 << 18
	}
	fmt.Fprintf(w, "Executor kernel throughput, %d rows, %d partitions (vectorized vs reference, wall clock)\n",
		rows, engine.DefaultWorkers)

	key := ashe.MustNewKey([]byte("bench-key-16byte"))
	vals := make([]uint64, rows)
	dims := make([]uint64, rows)
	wide := make([]uint64, rows)
	body := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		vals[i] = uint64(i % 100)
		dims[i] = uint64(i % 1024)
		// Distinct sparse keys: every row its own group, far outside the
		// dense direct-index span, so grouping runs the hashed/radix path.
		wide[i] = uint64(i)*0x9e3779b1 + 11
		body[i] = key.EncryptBody(vals[i], uint64(i)+1)
	}
	tbl, err := store.Build("kern", []store.Column{
		{Name: "v", Kind: store.U64, U64: vals},
		{Name: "d", Kind: store.U64, U64: dims},
		{Name: "u", Kind: store.U64, U64: wide},
		{Name: "v_ashe", Kind: store.U64, U64: body},
	}, engine.DefaultWorkers)
	if err != nil {
		return err
	}

	cluster := engine.NewCluster(engine.Config{Workers: engine.DefaultWorkers, Seed: uint64(cfg.Seed)})
	shapes := []struct {
		name string
		plan func() *engine.Plan
	}{
		{"filter+sum (u64)", func() *engine.Plan {
			return &engine.Plan{Table: tbl,
				Filters: []engine.Filter{{Kind: engine.FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 50}},
				Aggs:    []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}}}
		}},
		{"ashe sum", func() *engine.Plan {
			return &engine.Plan{Table: tbl,
				Aggs: []engine.Agg{{Kind: engine.AggAsheSum, Col: "v_ashe"}}}
		}},
		{"group-by (1024 u64 keys)", func() *engine.Plan {
			return &engine.Plan{Table: tbl, GroupBy: &engine.GroupBy{Col: "d"},
				Aggs: []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}}}
		}},
		{"group-by (wide u64 keys)", func() *engine.Plan {
			return &engine.Plan{Table: tbl, GroupBy: &engine.GroupBy{Col: "u"},
				Aggs: []engine.Agg{{Kind: engine.AggPlainSum, Col: "v"}}}
		}},
	}

	// One discarded warmup run plus a trial floor: at these row counts a
	// single Run finishes in milliseconds, so cold caches and goroutine
	// spin-up would otherwise swamp the kernel difference being measured.
	trials := max(cfg.Trials, 3)
	measure := func(run func(context.Context, *engine.Plan) (*engine.Result, error), pl *engine.Plan) (time.Duration, error) {
		if _, err := run(context.Background(), pl); err != nil {
			return 0, err
		}
		var ds []time.Duration
		for t := 0; t < trials; t++ {
			start := time.Now()
			if _, err := run(context.Background(), pl); err != nil {
				return 0, err
			}
			ds = append(ds, time.Since(start))
		}
		return median(ds), nil
	}

	for _, s := range shapes {
		vec, err := measure(cluster.Run, s.plan())
		if err != nil {
			return err
		}
		ref, err := measure(cluster.RunReference, s.plan())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-26s vectorized=%8.1f Mrows/s  reference=%8.1f Mrows/s  speedup=%.2fx\n",
			s.name, mrowsPerSec(rows, vec), mrowsPerSec(rows, ref), float64(ref)/float64(vec))
	}

	// Mid-map streaming: a plain projected scan delivered through RunStream.
	// The headline number is first-chunk latency — how long the caller waits
	// before any rows arrive — against the full run, which pays for every
	// partition plus the gather.
	scanPlan := &engine.Plan{Table: tbl,
		Filters: []engine.Filter{{Kind: engine.FilterPlainCmp, Col: "v", Op: sqlparse.OpGt, U64: 50}},
		Project: []string{"v", "d"}}
	var first, total time.Duration
	for t := 0; t < trials+1; t++ { // first iteration is the warmup
		start := time.Now()
		res, err := cluster.RunStream(context.Background(), scanPlan,
			func([]engine.ScanRow) error { return nil })
		if err != nil {
			return err
		}
		d := time.Since(start)
		if t == 0 || res.Metrics.FirstChunk < first {
			first, total = res.Metrics.FirstChunk, d
		}
	}
	fmt.Fprintf(w, "  %-26s first-chunk=%v  full-run=%v  (%.1f%% of run)\n",
		"streamed scan", first.Round(time.Microsecond), total.Round(time.Microsecond),
		100*float64(first)/float64(total))
	return nil
}

func mrowsPerSec(rows int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(rows) / d.Seconds() / 1e6
}
