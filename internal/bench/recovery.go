package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"seabed/internal/ashe"
	"seabed/internal/durable"
	"seabed/internal/store"
)

// Recovery measures the durable storage engine's boot path: how fast a
// restarted seabed-server gets its registry back. Two recoveries are timed
// separately because they stress different code — segment load is
// sequential checksummed-frame decoding of one big immutable file, WAL
// replay decodes and re-appends many small records — and their ratio tells
// an operator what a lower compaction threshold (more segments, less WAL)
// would buy at boot. Reported as MB/s of on-disk bytes recovered, which is
// the figure that turns into restart downtime for a dataset of known disk
// size (Table 5).
func Recovery(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := 1 << 19
	if cfg.Quick {
		rows = 1 << 16
	}
	const batchRows = 1 << 12
	fmt.Fprintf(w, "Durable recovery throughput, %d rows (ASHE body + DET dimension per row), %d-row WAL batches\n",
		rows, batchRows)

	// A Seabed-shaped table: one ASHE ciphertext column and one 8-byte DET
	// dimension — the physical layout the daemons persist in production.
	key := ashe.MustNewKey([]byte("bench-key-16byte"))
	mkBatch := func(startID uint64, n int) (*store.Table, error) {
		body := make([]uint64, n)
		det := make([][]byte, n)
		for i := 0; i < n; i++ {
			id := startID + uint64(i)
			body[i] = key.EncryptBody(id%100, id)
			det[i] = []byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24), 0xD3, 0xD3, 0xD3, 0xD3}
		}
		return store.BuildFrom("rec", []store.Column{
			{Name: "m_ashe", Kind: store.U64, U64: body},
			{Name: "d_det", Kind: store.Bytes, Bytes: det},
		}, max(n/batchRows, 1), startID)
	}

	trials := max(cfg.Trials, 3)
	measure := func(prep func(dir string) error) (mbps float64, stats durable.RecoveryStats, err error) {
		var ds []time.Duration
		for trial := 0; trial < trials+1; trial++ { // +1 discarded warmup
			dir, err := os.MkdirTemp("", "seabed-recovery-*")
			if err != nil {
				return 0, stats, err
			}
			if err := prep(dir); err != nil {
				os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
				return 0, stats, err
			}
			start := time.Now()
			s, err := durable.Open(durable.Options{Dir: dir})
			if err != nil {
				os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
				return 0, stats, err
			}
			elapsed := time.Since(start)
			stats = s.Recovery()
			s.Close()         //nolint:errcheck // read-only recovery
			os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
			if trial > 0 {
				ds = append(ds, elapsed)
			}
		}
		med := median(ds)
		if med <= 0 {
			return 0, stats, nil
		}
		return float64(stats.Bytes) / med.Seconds() / 1e6, stats, nil
	}

	// Segment load: the whole table registered as one flush.
	segMBps, segStats, err := measure(func(dir string) error {
		s, err := durable.Open(durable.Options{Dir: dir})
		if err != nil {
			return err
		}
		defer s.Close()
		tbl, err := mkBatch(1, rows)
		if err != nil {
			return err
		}
		return s.Register("rec#seabed", tbl)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  segment load: %8.1f MB/s  (%d segments, %d bytes)\n", segMBps, segStats.Segments, segStats.Bytes)

	// WAL replay: a small seed segment plus the rest of the table journaled
	// as uncompacted append records.
	walMBps, walStats, err := measure(func(dir string) error {
		s, err := durable.Open(durable.Options{Dir: dir, CompactBytes: 1 << 40})
		if err != nil {
			return err
		}
		defer s.Close()
		seed, err := mkBatch(1, batchRows)
		if err != nil {
			return err
		}
		if err := s.Register("rec#seabed", seed); err != nil {
			return err
		}
		for start := batchRows + 1; start <= rows; start += batchRows {
			batch, err := mkBatch(uint64(start), min(batchRows, rows-start+1))
			if err != nil {
				return err
			}
			if err := s.Append("rec#seabed", batch); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  wal replay:   %8.1f MB/s  (%d records, %d bytes)\n", walMBps, walStats.WALRecords, walStats.Bytes)
	if walMBps > 0 {
		fmt.Fprintf(w, "  segment/wal speed ratio: %.2fx (what compaction buys a restart)\n", segMBps/walMBps)
	}
	return nil
}
