package bench

import (
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"seabed/internal/ashe"
	"seabed/internal/idlist"
	"seabed/internal/paillier"
	"seabed/internal/prf"
)

// Table1 measures the cost of basic operations (paper Table 1, on a 2.2 GHz
// Xeon: AES-CTR 47 ns, Paillier enc 5.1 ms, ASHE enc/dec 12–24 ns, plain add
// 1 ns, Paillier add 3.8 µs, Paillier dec 3.4 ms).
func Table1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(w, "Table 1: Cost of operations (this machine; paper values on 2.2GHz Xeon in parentheses)")

	key := []byte("bench-key-16byte")
	f := prf.MustNew(key)
	ak := ashe.MustNewKey(key)
	sk, err := paillier.GenerateKey(rand.Reader, paillier.DefaultBits)
	if err != nil {
		return err
	}

	measure := func(n int, fn func(i int)) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return time.Duration(int64(time.Since(start)) / int64(n))
	}

	var sink uint64
	aes := measure(2_000_000, func(i int) { sink += f.U64(uint64(i) * 2654435761) })
	asheEnc := measure(2_000_000, func(i int) { sink += ak.EncryptBody(uint64(i), uint64(i)+1) })
	asheDec := measure(2_000_000, func(i int) { sink += ak.DecryptBody(uint64(i), uint64(i)+1) })
	plainAdd := measure(20_000_000, func(i int) { sink += uint64(i) })
	_ = sink

	nPail := 50
	if cfg.Quick {
		nPail = 10
	}
	pailEnc := measure(nPail, func(i int) {
		if _, err := sk.EncryptU64(rand.Reader, uint64(i)); err != nil {
			panic(err)
		}
	})
	c1, err := sk.EncryptU64(rand.Reader, 1)
	if err != nil {
		return err
	}
	c2, err := sk.EncryptU64(rand.Reader, 2)
	if err != nil {
		return err
	}
	acc := sk.Add(c1, c2)
	pailAdd := measure(nPail*100, func(i int) { sk.AddInto(acc, c2) })
	pailDec := measure(nPail, func(i int) { sk.Decrypt(c1) })

	rows := []struct {
		op    string
		got   time.Duration
		paper string
	}{
		{"AES counter mode (PRF eval)", aes, "47 ns"},
		{"Paillier encryption", pailEnc, "5,100,000 ns"},
		{"ASHE encryption", asheEnc, "12-24 ns"},
		{"ASHE decryption", asheDec, "12-24 ns"},
		{"Plain addition", plainAdd, "1 ns"},
		{"Paillier addition", pailAdd, "3,800 ns"},
		{"Paillier decryption", pailDec, "3,400,000 ns"},
	}
	fmt.Fprintf(w, "%-32s %14s   %s\n", "Operation", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %12dns   (%s)\n", r.op, r.got.Nanoseconds(), r.paper)
	}
	ratio := float64(pailEnc) / float64(asheEnc)
	fmt.Fprintf(w, "Paillier/ASHE encryption ratio: %.0fx (paper: ~5 orders of magnitude incl. AES-NI gap)\n", ratio)
	return nil
}

// Table3 demonstrates the ID-list encoding techniques on the paper's running
// example and on representative lists.
func Table3(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "Table 3: ID list encoding techniques")
	var example idlist.List
	example.AppendRange(2, 14)
	example.AppendRange(19, 23)
	fmt.Fprintf(w, "Example list %s (%d ids)\n", example.String(), example.Len())
	for _, codec := range idlist.AllCodecs() {
		data, err := codec.Encode(example)
		if err != nil {
			fmt.Fprintf(w, "  %-34s (not applicable: %v)\n", codec.Name(), err)
			continue
		}
		fmt.Fprintf(w, "  %-34s %4d bytes\n", codec.Name(), len(data))
	}

	// A dense 100k-row selection and a sparse one, showing where each
	// encoding wins.
	dense := idlist.FromRange(1, 100_000)
	var sparse idlist.List
	for id := uint64(1); id <= 100_000; id += 97 {
		sparse.Append(id)
	}
	for _, list := range []struct {
		name string
		l    idlist.List
	}{{"dense 100k contiguous", dense}, {"sparse (every 97th)", sparse}} {
		fmt.Fprintf(w, "%s (%d ids):\n", list.name, list.l.Len())
		for _, codec := range idlist.AllCodecs() {
			data, err := codec.Encode(list.l)
			if err != nil {
				fmt.Fprintf(w, "  %-34s (not applicable)\n", codec.Name())
				continue
			}
			fmt.Fprintf(w, "  %-34s %8d bytes\n", codec.Name(), len(data))
		}
	}
	return nil
}
