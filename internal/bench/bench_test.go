package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testCfg keeps the full-suite test fast: tiny datasets, single trials.
func testCfg() Config {
	return Config{Quick: true, Scale: 100_000, Workers: 8, Trials: 1, Seed: 7}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 18 {
		t.Fatalf("experiments = %d, want 18", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if _, ok := Find(e.Name); !ok {
			t.Fatalf("Find(%q) failed", e.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find must reject unknown names")
	}
}

// TestEveryExperimentRuns executes each experiment at minimal scale and
// checks for its headline output.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	wants := map[string]string{
		"table1":    "ASHE encryption",
		"table2":    "reduceByKey(ASHE)",
		"table3":    "ranges+vb",
		"table4":    "MDX",
		"table5":    "Ad Analytics",
		"fig6":      "ASHE(sel=100%)",
		"fig7":      "workers",
		"fig8":      "+OPE selection",
		"fig9a":     "Seabed-opt",
		"fig9bc":    "Q4",
		"fig10a":    "Paillier/Seabed median ratio",
		"fig10b":    "enhanced",
		"links":     "10Mbps",
		"ablations": "packing speedup",
		"kernels":   "vectorized=",
		"recovery":  "wal replay",
		"hedge":     "straggler cost",
	}
	cfg := testCfg()
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.Name, err, buf.String())
			}
			if want := wants[e.Name]; !strings.Contains(buf.String(), want) {
				t.Fatalf("%s output lacks %q:\n%s", e.Name, want, buf.String())
			}
		})
	}
}

func TestMedian(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	if median(nil) != 0 {
		t.Fatal("median of empty must be 0")
	}
	if median([]time.Duration{ms(5)}) != ms(5) {
		t.Fatal("median of one")
	}
	if median([]time.Duration{ms(9), ms(1), ms(5)}) != ms(5) {
		t.Fatal("median of three")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 10_000 || c.Workers != 100 || c.Trials != 3 || c.Seed != 42 {
		t.Fatalf("defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Trials != 1 {
		t.Fatalf("quick trials = %d, want 1", q.Trials)
	}
}

func TestSyntheticProxyCache(t *testing.T) {
	ResetCaches()
	cfg := testCfg()
	a, err := syntheticProxy(cfg, 2000, 4, 1) // translate.Seabed == 1
	if err != nil {
		t.Fatal(err)
	}
	b, err := syntheticProxy(cfg, 2000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss for identical fixture")
	}
	ResetCaches()
}

func TestSeconds(t *testing.T) {
	if seconds(1500*time.Millisecond) != "1.5000s" {
		t.Fatalf("seconds = %q", seconds(1500*time.Millisecond))
	}
}
