// Package bench implements Seabed's evaluation (§6): one driver per table
// and figure of the paper, shared by cmd/seabed-bench and the repository's
// testing.B benchmarks.
//
// Row counts scale the paper's datasets down by Config.Scale (default
// 10,000×), preserving ratios between datasets; all comparisons report the
// shape of the paper's results (who wins, by what factor, where crossovers
// fall), not absolute seconds. See DESIGN.md §2 for the substitution notes.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/planner"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// Config parameterizes a run.
type Config struct {
	// Scale divides the paper's row counts (default 10,000: 1.75 B rows →
	// 175 k rows). Smaller values mean bigger datasets.
	Scale uint64
	// Workers is the simulated cluster size for experiments that do not
	// sweep it. Defaults to the paper's 100-core cluster for full runs and to
	// engine.DefaultWorkers under Quick, so `go test -bench` exercises the
	// same machine an unconfigured engine.Config simulates.
	Workers int
	// Quick shrinks sweeps for use under `go test`.
	Quick bool
	// Trials is the number of runs per measured point (median reported).
	Trials int
	// Seed drives all generators.
	Seed int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 10_000
	}
	if c.Workers == 0 {
		if c.Quick {
			c.Workers = engine.DefaultWorkers
		} else {
			c.Workers = 100 // the paper's default cluster size
		}
	}
	if c.Trials == 0 {
		if c.Quick {
			c.Trials = 1
		} else {
			c.Trials = 3
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Experiment is one runnable paper artifact.
type Experiment struct {
	Name  string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: cost of basic operations", Table1},
		{"table2", "Table 2: query translation examples", Table2},
		{"table3", "Table 3: ID-list encoding techniques", Table3},
		{"table4", "Table 4: query support categories", Table4},
		{"table5", "Table 5: dataset characteristics and storage", Table5},
		{"fig6", "Figure 6: end-to-end latency vs rows", Fig6},
		{"fig7", "Figure 7: server latency vs cores", Fig7},
		{"fig8", "Figure 8: ID-list size and latency vs selectivity; OPE overhead", Fig8},
		{"fig9a", "Figure 9a: group-by microbenchmark", Fig9a},
		{"fig9bc", "Figure 9b/9c: Big Data Benchmark", Fig9bc},
		{"fig10a", "Figure 10a: Ad-Analytics response-time distribution", Fig10a},
		{"fig10b", "Figure 10b: SPLASHE storage overhead", Fig10b},
		{"links", "§6.6: client link sensitivity", Links},
		{"ablations", "Design ablations (compression site, inflation, codecs, stragglers)", Ablations},
		{"kernels", "Executor kernel throughput (vectorized vs reference evaluator)", Kernels},
		{"recovery", "Durable-store recovery throughput (segment load + WAL replay MB/s)", Recovery},
		{"coldscan", "Mapped-segment scan throughput (cold fault-in vs resident; first-chunk latency)", ColdScan},
		{"hedge", "Hedged scatter vs a straggling replica (p50/p99, hedged vs unhedged)", Hedge},
	}
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// median returns the median of the measured durations.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// seconds renders a duration in seconds with ms resolution.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.4fs", d.Seconds())
}

// --- shared fixtures, cached across experiments within one process ---

type synthKey struct {
	rows    int
	groups  int
	workers int
	modes   string
}

var (
	fixMu      sync.Mutex
	synthCache = map[synthKey]*client.Proxy{}
)

// syntheticProxy builds (and caches) a proxy with the §6.1 microbenchmark
// table uploaded in the given modes.
func syntheticProxy(cfg Config, rows, groups int, modes ...translate.Mode) (*client.Proxy, error) {
	key := synthKey{rows: rows, groups: groups, workers: cfg.Workers}
	for _, m := range modes {
		key.modes += m.String()
	}
	fixMu.Lock()
	if p, ok := synthCache[key]; ok {
		fixMu.Unlock()
		return p, nil
	}
	fixMu.Unlock()

	cluster := engine.NewCluster(engine.Config{Workers: cfg.Workers, Seed: uint64(cfg.Seed)})
	proxy, err := client.NewProxy([]byte("seabed-bench-master-secret-0123"), cluster)
	if err != nil {
		return nil, err
	}
	proxy.TraceSink = recordTrace
	// One partition per worker keeps per-task fixed costs (bind, slice
	// allocation, GC) small relative to real per-row work at laptop scale.
	proxy.Parts = cfg.Workers
	if _, err := proxy.CreatePlan(workload.SyntheticSchema(max(groups, 2)), workload.SyntheticQueries(), planner.Options{}); err != nil {
		return nil, err
	}
	src, err := workload.Synthetic(rows, groups, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := proxy.Upload(context.Background(), "synth", src, modes...); err != nil {
		return nil, err
	}
	fixMu.Lock()
	synthCache[key] = proxy
	fixMu.Unlock()
	return proxy, nil
}

// ResetCaches clears cached fixtures (tests use it to bound memory).
func ResetCaches() {
	fixMu.Lock()
	defer fixMu.Unlock()
	synthCache = map[synthKey]*client.Proxy{}
}
