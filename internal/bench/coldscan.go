package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"seabed/internal/ashe"
	"seabed/internal/durable"
	"seabed/internal/engine"
	"seabed/internal/store"
)

// ColdScan measures what the mapped-segment path costs and saves: scan
// throughput over a recovered table when its columns are already resident,
// when every column must fault in from the mmap'd segment (the first query
// after a restart), and when a -max-resident budget forces partitions to
// evict between scans. First-chunk latency is reported alongside rows/s
// because the mapped path's promise is exactly that a restarted daemon
// streams its first rows before the whole table is back in memory — the
// time-to-first-byte an operator sees after a failover.
func ColdScan(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := 1 << 20
	if cfg.Quick {
		rows = 1 << 17
	}
	const parts = 16
	fmt.Fprintf(w, "Cold-scan throughput over mapped segments, %d rows (ASHE body + DET dimension), %d partitions\n",
		rows, parts)

	// The production layout: one ASHE ciphertext column and one 8-byte DET
	// dimension, flushed as a single columnar segment.
	key := ashe.MustNewKey([]byte("bench-key-16byte"))
	body := make([]uint64, rows)
	det := make([][]byte, rows)
	for i := 0; i < rows; i++ {
		id := uint64(i) + 1
		body[i] = key.EncryptBody(id%100, id)
		det[i] = []byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24), 0xC5, 0xC5, 0xC5, 0xC5}
	}
	tbl, err := store.BuildFrom("cold", []store.Column{
		{Name: "m_ashe", Kind: store.U64, U64: body},
		{Name: "d_det", Kind: store.Bytes, Bytes: det},
	}, parts, 1)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "seabed-coldscan-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
	{
		s, err := durable.Open(durable.Options{Dir: dir})
		if err != nil {
			return err
		}
		if err := s.Register("cold#seabed", tbl); err != nil {
			s.Close() //nolint:errcheck // already failing
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
	}
	tableBytes := tbl.MemBytes()

	cluster := engine.NewCluster(engine.Config{Workers: parts, Seed: uint64(cfg.Seed)})
	scanPlan := func(t *store.Table) *engine.Plan {
		return &engine.Plan{Table: t, Project: []string{"m_ashe", "d_det"}}
	}

	// One streamed scan: total wall clock plus latency to the first non-empty
	// batch out of the executor.
	scanOnce := func(t *store.Table) (total, firstChunk time.Duration, nRows int, err error) {
		start := time.Now()
		sink := func(batch []engine.ScanRow) error {
			if nRows == 0 && len(batch) > 0 {
				firstChunk = time.Since(start)
			}
			nRows += len(batch)
			return nil
		}
		if _, err = cluster.RunStream(context.Background(), scanPlan(t), sink); err != nil {
			return 0, 0, 0, err
		}
		return time.Since(start), firstChunk, nRows, nil
	}

	report := func(label string, total, first time.Duration, n int) {
		fmt.Fprintf(w, "  %-28s %8.1f Mrows/s  first-chunk %s  (%d rows)\n",
			label, mrowsPerSec(n, total), first, n)
	}

	// Cold: open maps the segment; the measured scan faults every column.
	// Warm: the same store again, columns resident (unlimited budget).
	{
		s, err := durable.Open(durable.Options{Dir: dir})
		if err != nil {
			return err
		}
		rec := s.Recovery()
		fmt.Fprintf(w, "  recovery: %d bytes mapped of %d on disk in %s (table %d bytes resident when loaded)\n",
			rec.MappedBytes, rec.Bytes, seconds(rec.Duration), tableBytes)
		mapped := s.Tables()["cold#seabed"]
		if mapped == nil {
			s.Close() //nolint:errcheck // already failing
			return fmt.Errorf("coldscan: recovered store lost table cold#seabed")
		}
		total, first, n, err := scanOnce(mapped)
		if err != nil {
			s.Close() //nolint:errcheck // already failing
			return err
		}
		report("cold (fault per column):", total, first, n)

		trials := max(cfg.Trials, 3)
		var ds, firsts []time.Duration
		for t := 0; t < trials; t++ {
			total, first, _, err := scanOnce(mapped)
			if err != nil {
				s.Close() //nolint:errcheck // already failing
				return err
			}
			ds, firsts = append(ds, total), append(firsts, first)
		}
		report("warm (columns resident):", median(ds), median(firsts), n)
		st := s.Residency().Stats()
		fmt.Fprintf(w, "  unlimited budget: %d column faults, %d evictions, %d bytes resident\n",
			st.ColumnFaults, st.Evictions, st.ResidentBytes)
		if err := s.Close(); err != nil {
			return err
		}
	}

	// Budgeted: a -max-resident watermark at half the table forces the LRU to
	// evict partitions between scans, so every pass re-faults part of the
	// working set. The interesting number is how close a thrashing scan stays
	// to the warm one — the price of serving a table larger than RAM.
	{
		s, err := durable.Open(durable.Options{Dir: dir, MaxResidentBytes: int64(tableBytes / 2)})
		if err != nil {
			return err
		}
		mapped := s.Tables()["cold#seabed"]
		trials := max(cfg.Trials, 3)
		var ds []time.Duration
		var n int
		for t := 0; t < trials+1; t++ { // +1 discarded cold pass
			total, _, got, err := scanOnce(mapped)
			if err != nil {
				s.Close() //nolint:errcheck // already failing
				return err
			}
			if t > 0 {
				ds = append(ds, total)
				n = got
			}
		}
		st := s.Residency().Stats()
		report(fmt.Sprintf("budget %dB (evicting):", st.BudgetBytes), median(ds), 0, n)
		fmt.Fprintf(w, "  budgeted: %d column faults, %d evictions (%d bytes reclaimed), %d bytes resident\n",
			st.ColumnFaults, st.Evictions, st.EvictedBytes, st.ResidentBytes)
		if err := s.Close(); err != nil {
			return err
		}
	}
	return nil
}
