package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"seabed/internal/client"
	"seabed/internal/engine"
	"seabed/internal/idlist"
	"seabed/internal/prf"
	"seabed/internal/translate"
	"seabed/internal/workload"
)

// Ablations covers the design decisions DESIGN.md calls out beyond the
// paper's own figures: where compression runs, the group-inflation factor,
// range encoding for group-by results, the PRF packing optimization, and
// straggler sensitivity.
func Ablations(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	rows := workload.ScaleRows(1_750_000_000, cfg.Scale)
	if cfg.Quick {
		rows = workload.ScaleRows(1_750_000_000, cfg.Scale*10)
	}

	// --- 1. Worker-side vs driver-side compression (§4.5) ---
	fmt.Fprintln(w, "Ablation 1: compression at workers vs driver (sel=50% aggregation)")
	proxy, err := syntheticProxy(cfg, rows, 10, translate.Seabed)
	if err != nil {
		return err
	}
	const sql = "SELECT SUM(v) FROM synth"
	sel := client.WithSelectivity(0.5, uint64(cfg.Seed))
	wDur, wRes, err := medianServer(proxy, sql, cfg.Trials, sel)
	if err != nil {
		return err
	}
	dDur, dRes, err := medianServer(proxy, sql, cfg.Trials, sel, client.WithCompressAtDriver())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  at workers: server=%s shuffleBytes=%d\n", seconds(wDur), wRes.Metrics.ShuffleBytes)
	fmt.Fprintf(w, "  at driver:  server=%s shuffleBytes=%d\n", seconds(dDur), dRes.Metrics.ShuffleBytes)
	fmt.Fprintln(w, "  (paper: worker-side wins — parallel compression, less driver bottleneck)")

	// --- 2. Group-inflation factor sweep (§4.5) ---
	fmt.Fprintln(w, "\nAblation 2: group-inflation factor (10 groups)")
	gproxy, err := syntheticProxy(cfg, rows, 10, translate.Seabed)
	if err != nil {
		return err
	}
	const gsql = "SELECT g, SUM(v) FROM synth GROUP BY g"
	factors := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		factors = []int{1, 4}
	}
	for _, f := range factors {
		opts := client.WithoutInflation()
		if f > 1 {
			opts = client.WithForceInflate(f)
		}
		d, res, err := medianServer(gproxy, gsql, cfg.Trials, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  inflate=%2d: server=%s reducers=%d shuffle=%s\n",
			f, seconds(d), res.Metrics.ReduceTasks, res.Metrics.ShuffleTime)
	}

	// --- 3. Range encoding for group-by results (§4.5) ---
	fmt.Fprintln(w, "\nAblation 3: group-by ID-list codec (range encoding bloats sparse lists)")
	for _, codec := range []idlist.Codec{idlist.VBDiff, idlist.RangeVBDiff, idlist.RangeVBDiffDeflateFast} {
		_, res, err := medianServer(gproxy, gsql, 1,
			client.WithoutInflation(), client.WithCodec(codec))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-34s resultBytes=%d\n", shortCodec(codec.Name()), res.Metrics.ResultBytes)
	}

	// --- 4. PRF block packing (§4.3) ---
	fmt.Fprintln(w, "\nAblation 4: PRF block packing (sequential ids share AES blocks)")
	f := prf.MustNew([]byte("bench-key-16byte"))
	const n = 2_000_000
	var sink uint64
	start := time.Now()
	for i := uint64(0); i < n; i++ {
		sink += f.U64(i)
	}
	seq := time.Since(start) / n
	start = time.Now()
	for i := uint64(0); i < n; i++ {
		sink += f.U64(i * 2654435761)
	}
	rnd := time.Since(start) / n
	_ = sink
	fmt.Fprintf(w, "  sequential: %dns/eval   random: %dns/eval   packing speedup: %.2fx (ideal 2x)\n",
		seq.Nanoseconds(), rnd.Nanoseconds(), float64(rnd)/float64(seq))

	// --- 5. Straggler sensitivity (§6.2) ---
	fmt.Fprintln(w, "\nAblation 5: straggler injection (5x slowdown, varying probability)")
	// A 16-worker fixture keeps per-task work large enough to stand out from
	// measurement noise.
	scfg := cfg
	scfg.Workers = 16
	sproxy, err := syntheticProxy(scfg, rows, 10, translate.Seabed)
	if err != nil {
		return err
	}
	src, err := sproxy.Table("synth", translate.Seabed)
	if err != nil {
		return err
	}
	for _, p := range []float64{0, 0.05, 0.2} {
		cl := engine.NewCluster(engine.Config{
			Workers: 16, Seed: uint64(cfg.Seed),
			StragglerProb: p, StragglerFactor: 5,
		})
		var ds []time.Duration
		var tasks int
		for t := 0; t < max(cfg.Trials, 3); t++ {
			res, err := cl.Run(context.Background(), &engine.Plan{Table: src, Aggs: []engine.Agg{{Kind: engine.AggAsheSum, Col: "v_ashe"}}})
			if err != nil {
				return err
			}
			ds = append(ds, res.Metrics.MapTime)
			tasks = res.Metrics.MapTasks
		}
		fmt.Fprintf(w, "  p=%.2f: map makespan=%s over %d tasks (median of %d)\n",
			p, seconds(median(ds)), tasks, len(ds))
	}
	fmt.Fprintln(w, "  (paper §6.2: stragglers — usually GC — hurt short Seabed/NoEnc jobs most)")
	return nil
}
