package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Partition views: the lazy half of the disk→memory→wire story. A regular
// partition owns heap column vectors; a view partition starts as layout-only
// metadata (names and kinds, no data) backed by a ColumnLoader — in practice
// a memory-mapped durable segment — and materializes columns on first use.
// Queries pin exactly the columns they touch for the duration of a map task;
// a Residency budget evicts the least-recently-used unpinned partitions when
// the resident estimate exceeds `-max-resident`. Everything else in the
// package (layout checks, copy-on-write appends, identifier coverage) treats
// view and heap partitions identically, because a view partition keeps its
// Cols slice populated with Name and Kind even while the vectors are absent.

// ColMeta describes one column of a view partition: its layout without data.
type ColMeta struct {
	Name string
	Kind Kind
}

// ColumnLoader materializes a view partition's columns on demand. Load is
// always invoked with the owning view's lock held, so implementations need no
// synchronization of their own; they must return a column of exactly the
// view's row count whose vectors may alias loader-owned storage (an mmap),
// kept immutable and alive until the loader itself is closed.
type ColumnLoader interface {
	// LoadColumn returns column i of the viewed partition.
	LoadColumn(i int) (Column, error)
}

// partView is the lazy state of a view partition.
type partView struct {
	mu     sync.Mutex
	rows   int
	loader ColumnLoader
	res    *Residency
	loaded []bool
	pins   int
	bytes  uint64 // resident estimate of currently loaded vectors
}

// NewViewPartition returns a partition of `rows` rows whose column vectors
// load through loader on first pin. The partition's Cols carry the layout
// (Name, Kind) immediately, so schema operations work without touching data.
// res, if non-nil, tracks the partition's resident bytes and may evict it
// while unpinned.
func NewViewPartition(startID uint64, rows int, meta []ColMeta, loader ColumnLoader, res *Residency) *Partition {
	p := &Partition{StartID: startID}
	p.Cols = make([]Column, len(meta))
	for i, m := range meta {
		p.Cols[i] = Column{Name: m.Name, Kind: m.Kind}
	}
	p.view = &partView{
		rows:   rows,
		loader: loader,
		res:    res,
		loaded: make([]bool, len(meta)),
	}
	return p
}

// releaseNone is the no-op release returned when pinning a heap partition,
// shared so the hot path allocates nothing.
func releaseNone() {}

// Pin materializes the columns at idxs (nil means all), protects the
// partition from eviction, and returns the release that undoes the pin. On a
// heap partition it is a no-op. The returned column pointers (&p.Cols[i])
// stay valid until release is called; after release the residency manager may
// drop the vectors again at any time.
func (p *Partition) Pin(idxs []int) (release func(), err error) {
	release, _, err = p.PinStats(idxs)
	return release, err
}

// PinStats is Pin plus attribution: faulted reports how many of the pinned
// columns had to be materialized from their backing segments by this call
// (0 on a heap partition or a warm view). The per-query fault accounting in
// engine.OpStats reads this; the global Residency counters are unchanged.
func (p *Partition) PinStats(idxs []int) (release func(), faulted int, err error) {
	v := p.view
	if v == nil {
		return releaseNone, 0, nil
	}
	v.mu.Lock()
	var faultedBytes uint64
	var faultedCols int
	load := func(i int) error {
		if v.loaded[i] {
			return nil
		}
		col, err := v.loader.LoadColumn(i)
		if err != nil {
			return err
		}
		if col.Len() != v.rows {
			return fmt.Errorf("store: view column %q loaded %d rows, want %d", p.Cols[i].Name, col.Len(), v.rows)
		}
		if col.Kind != p.Cols[i].Kind {
			return fmt.Errorf("store: view column %q loaded kind %v, want %v", p.Cols[i].Name, col.Kind, p.Cols[i].Kind)
		}
		p.Cols[i].U64, p.Cols[i].Bytes, p.Cols[i].Str = col.U64, col.Bytes, col.Str
		v.loaded[i] = true
		faultedBytes += p.Cols[i].memBytes()
		faultedCols++
		return nil
	}
	if idxs == nil {
		for i := range p.Cols {
			if err := load(i); err != nil {
				v.mu.Unlock()
				return nil, 0, err
			}
		}
	} else {
		for _, i := range idxs {
			if i < 0 || i >= len(p.Cols) {
				v.mu.Unlock()
				return nil, 0, fmt.Errorf("store: pin column %d of %d", i, len(p.Cols))
			}
			if err := load(i); err != nil {
				v.mu.Unlock()
				return nil, 0, err
			}
		}
	}
	v.pins++
	v.bytes += faultedBytes
	v.mu.Unlock()
	if v.res != nil {
		// Charged outside v.mu: the residency manager may evict other
		// partitions to make room, and eviction takes their view locks.
		v.res.charge(p, faultedBytes, faultedCols)
	}
	return p.unpin, faultedCols, nil
}

// unpin releases one Pin, making the partition evictable again once its pin
// count reaches zero.
func (p *Partition) unpin() {
	v := p.view
	v.mu.Lock()
	v.pins--
	v.mu.Unlock()
}

// dropResident discards the partition's loaded vectors if it is unpinned,
// returning the bytes freed (0 if pinned or nothing resident). Layout
// metadata survives; the next Pin faults the columns back in.
func (p *Partition) dropResident() uint64 {
	v := p.view
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.pins > 0 || v.bytes == 0 {
		return 0
	}
	for i := range p.Cols {
		p.Cols[i].U64, p.Cols[i].Bytes, p.Cols[i].Str = nil, nil, nil
		v.loaded[i] = false
	}
	freed := v.bytes
	v.bytes = 0
	return freed
}

// MemBytes estimates the partition's resident footprint: loaded vectors only
// for a view partition, all vectors for a heap partition.
func (p *Partition) MemBytes() uint64 {
	if v := p.view; v != nil {
		v.mu.Lock()
		defer v.mu.Unlock()
		return v.bytes
	}
	var n uint64
	for i := range p.Cols {
		n += p.Cols[i].memBytes()
	}
	return n
}

// IsView reports whether the partition lazily loads its columns from a
// backing segment rather than owning heap vectors.
func (p *Partition) IsView() bool { return p.view != nil }

// Assemble builds a table directly from pre-built partitions — the recovery
// path's constructor, where partitions are segment-backed views rather than
// slices of full-length heap columns. Partitions must share one column layout
// and appear in strictly increasing, non-overlapping identifier order (gaps
// allowed, as for shard tables).
func Assemble(name string, parts []*Partition) (*Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("store: assemble %q: no partitions", name)
	}
	t := &Table{Name: name, Parts: parts[:1:1], rows: uint64(parts[0].NumRows())}
	for _, p := range parts[1:] {
		next := &Table{Name: name, Parts: []*Partition{p}, rows: uint64(p.NumRows())}
		if err := t.AppendTable(next); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Residency enforces a resident-bytes budget across view partitions: every
// column fault charges the partition's estimate here, and when the total
// exceeds the budget the least-recently-pinned unpinned partitions are
// dropped until it fits. The budget is a watermark, not a hard cap — pinned
// partitions (queries in flight) are never dropped, so a single query's
// working set may transiently exceed it. A zero budget disables eviction but
// still counts faults and resident bytes, which is what the stats plane
// reports.
type Residency struct {
	budget uint64

	mu   sync.Mutex
	used uint64
	lru  *list.List // of *resEntry; front = most recently pinned
	elem map[*Partition]*list.Element

	faults       atomic.Uint64
	evictions    atomic.Uint64
	evictedBytes atomic.Uint64
}

// resEntry is the manager's shadow of one partition's resident bytes,
// tracked here so eviction can plan victims without taking partition locks.
type resEntry struct {
	p     *Partition
	bytes uint64
}

// NewResidency returns a manager with the given budget in bytes; 0 means
// unlimited (count, never evict).
func NewResidency(budget uint64) *Residency {
	return &Residency{
		budget: budget,
		lru:    list.New(),
		elem:   make(map[*Partition]*list.Element),
	}
}

// ResidencyStats is a point-in-time snapshot of the manager.
type ResidencyStats struct {
	// BudgetBytes is the configured watermark; 0 means unlimited.
	BudgetBytes uint64
	// ResidentBytes estimates the bytes currently materialized from views.
	ResidentBytes uint64
	// ColumnFaults counts columns materialized from backing segments.
	ColumnFaults uint64
	// Evictions counts partitions whose vectors were dropped under pressure.
	Evictions uint64
	// EvictedBytes totals the resident estimate reclaimed by evictions.
	EvictedBytes uint64
}

// Stats returns a snapshot of the manager's counters.
func (r *Residency) Stats() ResidencyStats {
	r.mu.Lock()
	used := r.used
	r.mu.Unlock()
	return ResidencyStats{
		BudgetBytes:   r.budget,
		ResidentBytes: used,
		ColumnFaults:  r.faults.Load(),
		Evictions:     r.evictions.Load(),
		EvictedBytes:  r.evictedBytes.Load(),
	}
}

// charge records that p faulted in `delta` more resident bytes across
// `faultedCols` columns (both may be 0 for a pin that found everything
// loaded), refreshes p's recency, and evicts cold partitions if the budget is
// now exceeded. Called without any partition lock held.
func (r *Residency) charge(p *Partition, delta uint64, faultedCols int) {
	if faultedCols > 0 {
		r.faults.Add(uint64(faultedCols))
	}
	r.mu.Lock()
	if e, ok := r.elem[p]; ok {
		r.lru.MoveToFront(e)
		e.Value.(*resEntry).bytes += delta
	} else if delta > 0 {
		r.elem[p] = r.lru.PushFront(&resEntry{p: p, bytes: delta})
	}
	r.used += delta
	var victims []*Partition
	if r.budget > 0 && r.used > r.budget {
		var planned uint64
		for e := r.lru.Back(); e != nil && r.used-planned > r.budget; e = e.Prev() {
			ent := e.Value.(*resEntry)
			if ent.p == p {
				continue // never evict the partition being pinned
			}
			victims = append(victims, ent.p)
			planned += ent.bytes
		}
	}
	r.mu.Unlock()
	for _, q := range victims {
		freed := q.dropResident() // takes q's view lock; skips if pinned
		if freed == 0 {
			continue
		}
		r.evictions.Add(1)
		r.evictedBytes.Add(freed)
		r.mu.Lock()
		if e, ok := r.elem[q]; ok {
			r.lru.Remove(e)
			delete(r.elem, q)
			r.used -= e.Value.(*resEntry).bytes
		}
		r.mu.Unlock()
	}
}
