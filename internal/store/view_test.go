package store

import (
	"errors"
	"sync"
	"testing"
)

// fakeLoader serves columns from an in-memory template and counts loads.
type fakeLoader struct {
	cols  []Column
	loads int
	fail  error
}

func (l *fakeLoader) LoadColumn(i int) (Column, error) {
	if l.fail != nil {
		return Column{}, l.fail
	}
	l.loads++
	return l.cols[i], nil
}

// viewFixture builds one view partition of n rows over a U64 and a Bytes
// column, backed by a counting loader.
func viewFixture(n int, startID uint64, res *Residency) (*Partition, *fakeLoader) {
	u := make([]uint64, n)
	b := make([][]byte, n)
	for i := range u {
		u[i] = startID + uint64(i)
		b[i] = []byte{byte(i), 0xEE}
	}
	l := &fakeLoader{cols: []Column{
		{Name: "m", Kind: U64, U64: u},
		{Name: "d", Kind: Bytes, Bytes: b},
	}}
	meta := []ColMeta{{Name: "m", Kind: U64}, {Name: "d", Kind: Bytes}}
	return NewViewPartition(startID, n, meta, l, res), l
}

func TestViewPartitionLazyLoad(t *testing.T) {
	p, l := viewFixture(64, 1, nil)
	if !p.IsView() {
		t.Fatal("IsView() = false for a view partition")
	}
	if p.NumRows() != 64 {
		t.Fatalf("NumRows() = %d before any pin, want 64", p.NumRows())
	}
	if got := p.MemBytes(); got != 0 {
		t.Fatalf("MemBytes() = %d before any pin, want 0", got)
	}
	if p.Cols[0].U64 != nil || p.Cols[1].Bytes != nil {
		t.Fatal("column vectors materialized before any pin")
	}

	// Pin only column 0: column 1 must stay unloaded.
	release, err := p.Pin([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if l.loads != 1 {
		t.Fatalf("loader ran %d times after pinning one column, want 1", l.loads)
	}
	if p.Cols[0].U64 == nil || p.Cols[1].Bytes != nil {
		t.Fatal("pin loaded the wrong column set")
	}
	if p.Cols[0].U64[7] != 8 {
		t.Fatalf("pinned column value = %d, want 8", p.Cols[0].U64[7])
	}
	release()

	// Pin all: only the remaining column faults.
	release, err = p.Pin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.loads != 2 {
		t.Fatalf("loader ran %d times after pinning all, want 2 (no redundant loads)", l.loads)
	}
	release()
	if p.MemBytes() == 0 {
		t.Fatal("MemBytes() = 0 with all columns resident")
	}
}

func TestViewPinErrors(t *testing.T) {
	p, _ := viewFixture(8, 1, nil)
	if _, err := p.Pin([]int{5}); err == nil {
		t.Fatal("pinning an out-of-range column index succeeded")
	}

	p2, l2 := viewFixture(8, 1, nil)
	l2.fail = errors.New("checksum mismatch")
	if _, err := p2.Pin(nil); err == nil || err.Error() != "checksum mismatch" {
		t.Fatalf("pin surfaced %v, want the loader's error", err)
	}

	// A loader returning the wrong row count or kind is a corrupt segment;
	// the pin must refuse rather than serve a misshapen partition.
	p3, l3 := viewFixture(8, 1, nil)
	l3.cols[0].U64 = l3.cols[0].U64[:4]
	if _, err := p3.Pin([]int{0}); err == nil {
		t.Fatal("pin accepted a short column")
	}
	p4, l4 := viewFixture(8, 1, nil)
	l4.cols[1].Kind = Str
	l4.cols[1].Bytes, l4.cols[1].Str = nil, make([]string, 8)
	if _, err := p4.Pin([]int{1}); err == nil {
		t.Fatal("pin accepted a kind mismatch")
	}
}

func TestHeapPartitionPinIsNoop(t *testing.T) {
	tbl, err := Build("h", []Column{{Name: "m", Kind: U64, U64: []uint64{1, 2, 3}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := tbl.Parts[0]
	if p.IsView() {
		t.Fatal("heap partition reports IsView")
	}
	allocs := testing.AllocsPerRun(100, func() {
		release, err := p.Pin(nil)
		if err != nil {
			t.Fatal(err)
		}
		release()
	})
	if allocs != 0 {
		t.Fatalf("heap Pin allocated %.1f times per call, want 0", allocs)
	}
}

func TestResidencyEviction(t *testing.T) {
	// Each fixture partition holds 64 rows × (8 u64 bytes + slice-header +
	// blob estimate); a budget below two partitions forces the LRU to hold at
	// most one resident at a time.
	res := NewResidency(1)
	a, la := viewFixture(64, 1, res)
	b, lb := viewFixture(64, 65, res)

	release, err := a.Pin(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pinning b while a is still pinned must not evict a (queries in flight
	// own their working set), even though the budget is blown.
	release2, err := b.Pin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.MemBytes() == 0 || b.MemBytes() == 0 {
		t.Fatal("a pinned partition was evicted")
	}
	release()
	release2()

	// The next charge evicts the cold ones: re-pin a, which should push the
	// now-unpinned b (and possibly a's own prior residency) out.
	if _, err := a.Pin(nil); err == nil {
		// a was dropped and refaulted, or still resident — either way b, the
		// least recently pinned unpinned partition, must be gone.
	} else {
		t.Fatal(err)
	}
	if b.MemBytes() != 0 {
		t.Fatal("unpinned partition survived a blown budget")
	}
	st := res.Stats()
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if st.ColumnFaults < 4 {
		t.Fatalf("ColumnFaults = %d, want ≥ 4 (two columns × two partitions)", st.ColumnFaults)
	}
	// Eviction discards vectors, not data: a re-pin faults them back intact.
	before := lb.loads
	release3, err := b.Pin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb.loads != before+2 {
		t.Fatalf("re-pin after eviction ran the loader %d more times, want 2", lb.loads-before)
	}
	if b.Cols[0].U64[0] != 65 {
		t.Fatalf("refaulted value = %d, want 65", b.Cols[0].U64[0])
	}
	release3()
	_ = la
}

func TestResidencyZeroBudgetNeverEvicts(t *testing.T) {
	res := NewResidency(0)
	parts := make([]*Partition, 8)
	for i := range parts {
		parts[i], _ = viewFixture(32, uint64(i*32)+1, res)
		release, err := parts[i].Pin(nil)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	st := res.Stats()
	if st.Evictions != 0 {
		t.Fatalf("unlimited budget evicted %d partitions", st.Evictions)
	}
	if st.ResidentBytes == 0 || st.ColumnFaults != 16 {
		t.Fatalf("stats = %+v, want 16 faults and nonzero resident bytes", st)
	}
}

// TestViewConcurrentPinsAndAppends exercises the locking story under -race:
// map tasks pin and release view partitions while appends grow the table
// copy-on-write and the residency manager evicts under a tiny budget.
func TestViewConcurrentPinsAndAppends(t *testing.T) {
	res := NewResidency(1) // evict on every charge
	var parts []*Partition
	for i := 0; i < 4; i++ {
		p, _ := viewFixture(64, uint64(i*64)+1, res)
		parts = append(parts, p)
	}
	tbl, err := Assemble("cc", parts)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex // guards tbl (copy-on-write swaps)
	snapshot := func() *Table {
		mu.Lock()
		defer mu.Unlock()
		return tbl
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				snap := snapshot()
				for _, p := range snap.Parts {
					idxs := []int{iter % 2}
					if iter%3 == 0 {
						idxs = nil
					}
					release, err := p.Pin(idxs)
					if err != nil {
						t.Errorf("pin: %v", err)
						return
					}
					if idxs == nil && p.IsView() && p.Cols[0].U64[0] != p.StartID {
						t.Errorf("pinned value = %d, want %d", p.Cols[0].U64[0], p.StartID)
						release()
						return
					}
					release()
				}
			}
		}(g)
	}
	// Appender: grow the table with heap batches while readers pin views.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 50; iter++ {
			cur := snapshot()
			n := 16
			u := make([]uint64, n)
			b := make([][]byte, n)
			start := cur.EndID() + 1
			for i := range u {
				u[i] = start + uint64(i)
				b[i] = []byte{byte(i)}
			}
			batch, err := BuildFrom("cc", []Column{
				{Name: "m", Kind: U64, U64: u},
				{Name: "d", Kind: Bytes, Bytes: b},
			}, 1, start)
			if err != nil {
				t.Errorf("build batch: %v", err)
				return
			}
			grown, err := cur.WithAppended(batch)
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			mu.Lock()
			tbl = grown
			mu.Unlock()
		}
	}()
	wg.Wait()

	st := res.Stats()
	if st.ColumnFaults == 0 || st.Evictions == 0 {
		t.Fatalf("concurrent run recorded no pressure: %+v", st)
	}
	final := snapshot()
	want := uint64(4*64 + 50*16)
	if final.NumRows() != want {
		t.Fatalf("final rows = %d, want %d", final.NumRows(), want)
	}
}

// TestAssembleRejectsOverlap pins Assemble's identifier ordering contract.
func TestAssembleRejectsOverlap(t *testing.T) {
	a, _ := viewFixture(16, 1, nil)
	b, _ := viewFixture(16, 10, nil) // overlaps a's [1,16]
	if _, err := Assemble("bad", []*Partition{a, b}); err == nil {
		t.Fatal("Assemble accepted overlapping partitions")
	}
	if _, err := Assemble("empty", nil); err == nil {
		t.Fatal("Assemble accepted zero partitions")
	}
}
