package store

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// TestFrameRoundTrip pushes payloads of many sizes (empty, sub-frame,
// multi-frame, unaligned) through FrameWriter and reads them back.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, frameChunk - 1, frameChunk, frameChunk + 1, 3*frameChunk + 17} {
		payload := make([]byte, size)
		rng.Read(payload)
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		// Write in awkward slices to exercise the internal buffering.
		for off := 0; off < len(payload); {
			n := min(rng.Intn(frameChunk)+1, len(payload)-off)
			if _, err := fw.Write(payload[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if fw.BytesWritten() != int64(buf.Len()) {
			t.Fatalf("size %d: BytesWritten %d, buffer holds %d", size, fw.BytesWritten(), buf.Len())
		}
		got, err := io.ReadAll(NewFrameReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("size %d: read back: %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: round trip diverged", size)
		}
	}
}

// TestFrameTableRoundTrip serializes a table through the frame layer — the
// exact composition durable segment files use.
func TestFrameTableRoundTrip(t *testing.T) {
	tbl := buildTestTable(t)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if _, err := tbl.WriteTo(fw); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(NewFrameReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.Name != tbl.Name {
		t.Fatalf("framed round trip: got %d rows of %q, want %d of %q", got.NumRows(), got.Name, tbl.NumRows(), tbl.Name)
	}
}

// TestFrameDetectsCorruption flips one byte at every position of a framed
// stream and asserts the reader reports ErrFrameCorrupt rather than serving
// altered bytes.
func TestFrameDetectsCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte("seabed"), 64)
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.Write(payload) //nolint:errcheck // bytes.Buffer
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for pos := range clean {
		evil := append([]byte(nil), clean...)
		evil[pos] ^= 0x40
		got, err := io.ReadAll(NewFrameReader(bytes.NewReader(evil)))
		if err == nil {
			t.Fatalf("flip at %d: corruption not detected", pos)
		}
		if !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("flip at %d: error %v does not wrap ErrFrameCorrupt", pos, err)
		}
		if len(got) != 0 {
			t.Fatalf("flip at %d: reader served %d bytes of a corrupt frame", pos, len(got))
		}
	}
}

// TestFrameDetectsTruncation cuts a framed stream at every length and
// asserts the reader either returns the intact prefix frames or reports
// corruption — never silently-short data from inside a torn frame.
func TestFrameDetectsTruncation(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, frameChunk+100) // two frames
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.Write(payload) //nolint:errcheck // bytes.Buffer
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	frame1End := frameHeaderSize + frameChunk
	for cut := 0; cut < len(clean); cut++ {
		got, err := io.ReadAll(NewFrameReader(bytes.NewReader(clean[:cut])))
		switch {
		case cut == 0:
			if err != nil || len(got) != 0 {
				t.Fatalf("cut 0: got %d bytes, err %v", len(got), err)
			}
		case cut == frame1End:
			// Clean boundary: first frame intact, stream simply ends.
			if err != nil || !bytes.Equal(got, payload[:frameChunk]) {
				t.Fatalf("cut at frame boundary: got %d bytes, err %v", len(got), err)
			}
		default:
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("cut %d: error %v does not wrap ErrFrameCorrupt", cut, err)
			}
		}
	}
}

// buildTestTable assembles a small mixed-kind table.
func buildTestTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := Build("frames", []Column{
		{Name: "u", Kind: U64, U64: []uint64{1, 2, 3, 4, 5}},
		{Name: "b", Kind: Bytes, Bytes: [][]byte{{1}, {2, 2}, {3}, {}, {5, 5, 5}}},
		{Name: "s", Kind: Str, Str: []string{"a", "bb", "", "dddd", "e"}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}
