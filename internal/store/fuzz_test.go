package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRead feeds hostile bytes to the table decoder. Read sits at two trust
// boundaries — wire.DecodeRegister hands it network payloads from untrusted
// clients, and durable recovery hands it segment and WAL bytes off disk —
// so it must reject malformed input with an error: never a panic, and never
// an allocation sized from a declared count the stream doesn't back (the
// incremental-append discipline in serialize.go). The seed corpus is real
// serializations of the three upload modes' column shapes (NoEnc strings,
// Seabed ASHE/DET columns, Paillier ciphertext blobs) plus targeted
// mutations: truncations, a huge declared row count, and a huge blob length.
func FuzzRead(f *testing.F) {
	for _, tbl := range fuzzSeedTables(f) {
		var buf bytes.Buffer
		if _, err := tbl.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(append([]byte(nil), valid...))
		// Truncations: torn tails at awkward offsets.
		for _, cut := range []int{1, len(valid) / 3, len(valid) - 1} {
			if cut < len(valid) {
				f.Add(append([]byte(nil), valid[:cut]...))
			}
		}
	}
	// A header claiming 2^62 rows of a U64 column with no bytes behind it.
	hostile := []byte(magic)
	hostile = append(hostile, 1, 't') // name "t"
	hostile = append(hostile, 1)      // one partition
	hostile = append(hostile, 1)      // startID 1
	hostile = append(hostile, 1)      // one column
	hostile = binary.AppendUvarint(hostile, 1<<62)
	hostile = append(hostile, 1, 'c', 0) // column "c", kind U64
	f.Add(append([]byte(nil), hostile...))
	// A Bytes row declaring a 2^40-byte blob.
	blob := []byte(magic)
	blob = append(blob, 1, 't', 1, 1, 1, 1) // name, 1 part, startID, 1 col, 1 row
	blob = append(blob, 1, 'c', 1)          // column "c", kind Bytes
	blob = binary.AppendUvarint(blob, 1<<40)
	f.Add(append([]byte(nil), blob...))

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must be internally consistent and must
		// re-serialize: Read's output feeds straight into the engine and
		// back onto disk during durable compaction.
		var rows uint64
		for _, p := range tbl.Parts {
			n := p.NumRows()
			for i := range p.Cols {
				if got := p.Cols[i].Len(); got != n {
					t.Fatalf("ragged partition: column %q has %d rows, sibling has %d", p.Cols[i].Name, got, n)
				}
			}
			rows += uint64(n)
		}
		if rows != tbl.NumRows() {
			t.Fatalf("NumRows %d, partitions hold %d", tbl.NumRows(), rows)
		}
		var buf bytes.Buffer
		if _, err := tbl.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialize accepted table: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read re-serialized table: %v", err)
		}
		if again.NumRows() != tbl.NumRows() || len(again.Parts) != len(tbl.Parts) {
			t.Fatalf("round trip drifted: %d rows/%d parts vs %d rows/%d parts",
				again.NumRows(), len(again.Parts), tbl.NumRows(), len(tbl.Parts))
		}
	})
}

// fuzzSeedTables builds small tables with the column shapes each upload mode
// produces.
func fuzzSeedTables(f *testing.F) []*Table {
	f.Helper()
	build := func(name string, cols []Column) *Table {
		tbl, err := Build(name, cols, 2)
		if err != nil {
			f.Fatal(err)
		}
		return tbl
	}
	return []*Table{
		// NoEnc: plaintext integers and strings.
		build("noenc", []Column{
			{Name: "m", Kind: U64, U64: []uint64{10, 20, 30, 40}},
			{Name: "country", Kind: Str, Str: []string{"CA", "US", "CA", "DE"}},
		}),
		// Seabed: ASHE bodies are U64 words, DET/OPE dimensions are short blobs.
		build("seabed", []Column{
			{Name: "m_ashe", Kind: U64, U64: []uint64{0xdeadbeef, 0xfeedface, 7, 1 << 60}},
			{Name: "d_det", Kind: Bytes, Bytes: [][]byte{
				{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
				{0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18},
				{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08},
				{0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, 0x28},
			}},
		}),
		// Paillier: long ciphertext blobs (trimmed to keep the corpus small).
		build("paillier", []Column{
			{Name: "m_pail", Kind: Bytes, Bytes: [][]byte{
				bytes.Repeat([]byte{0xAB}, 128),
				bytes.Repeat([]byte{0xCD}, 128),
				bytes.Repeat([]byte{0xEF}, 128),
				bytes.Repeat([]byte{0x01}, 128),
			}},
		}),
		// Degenerate but legal: an empty table.
		build("empty", []Column{{Name: "u", Kind: U64}}),
	}
}
