package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Checksummed framing for durable storage. A framed stream chops a byte
// stream into frames of
//
//	u32 payload length (LE) | u32 CRC32-IEEE of payload (LE) | payload
//
// so a reader can detect torn writes and bit rot frame by frame instead of
// discovering them as garbled varints deep inside a table decode. Segment
// files in internal/durable are a table's WriteTo serialization passed
// through a FrameWriter; the write-ahead log uses the same header layout one
// record per frame. The 8-byte header is the only overhead: ~0.01% at the
// 64 KiB frames the writer emits.

const (
	// frameHeaderSize is the fixed per-frame header: length + CRC32.
	frameHeaderSize = 8
	// frameChunk is the payload size FrameWriter emits once its buffer
	// fills. 64 KiB matches the bufio sizing of WriteTo/Read: large enough
	// to amortize the header and the CRC pass, small enough that a torn
	// tail loses little.
	frameChunk = 64 << 10
	// FrameMaxPayload bounds a single frame's declared payload length on
	// read (1 MiB). A corrupt or hostile length prefix therefore cannot make
	// the reader allocate more than this before the CRC check runs.
	FrameMaxPayload = 1 << 20
)

// ErrFrameCorrupt reports a frame whose payload was torn short or whose
// checksum does not match its contents. errors.Is-match it to distinguish
// detected corruption from ordinary I/O failures.
var ErrFrameCorrupt = errors.New("store: corrupt frame")

// FrameWriter wraps an io.Writer in the checksummed frame format. Write
// buffers; full frames flush as they fill, and Flush emits the final partial
// frame. The zero frame (empty payload) is never written, so a framed stream
// is empty iff the underlying stream is.
type FrameWriter struct {
	w   io.Writer
	buf []byte
	n   int64 // framed bytes written, headers included
	err error
}

// NewFrameWriter returns a FrameWriter emitting frames to w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: make([]byte, frameHeaderSize, frameHeaderSize+frameChunk)}
}

// Write implements io.Writer.
func (fw *FrameWriter) Write(p []byte) (int, error) {
	if fw.err != nil {
		return 0, fw.err
	}
	total := len(p)
	for len(p) > 0 {
		space := frameChunk - (len(fw.buf) - frameHeaderSize)
		n := min(space, len(p))
		fw.buf = append(fw.buf, p[:n]...)
		p = p[n:]
		if len(fw.buf)-frameHeaderSize == frameChunk {
			if err := fw.emit(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// Flush writes any buffered bytes as a final (possibly short) frame.
func (fw *FrameWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if len(fw.buf) == frameHeaderSize {
		return nil
	}
	return fw.emit()
}

// BytesWritten returns the framed bytes written so far, headers included.
func (fw *FrameWriter) BytesWritten() int64 { return fw.n }

// emit stamps the buffered payload's header and writes the frame.
func (fw *FrameWriter) emit() error {
	payload := fw.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(fw.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fw.buf[4:8], crc32.ChecksumIEEE(payload))
	if _, err := fw.w.Write(fw.buf); err != nil {
		fw.err = err
		return err
	}
	fw.n += int64(len(fw.buf))
	fw.buf = fw.buf[:frameHeaderSize]
	return nil
}

// FrameReader undoes FrameWriter: it reads frames from r, verifies each
// payload against its checksum, and serves the verified bytes through Read.
// A clean end of the underlying stream at a frame boundary is io.EOF; a
// stream ending inside a frame, or a checksum mismatch, is ErrFrameCorrupt
// (wrapped with position detail).
type FrameReader struct {
	r     io.Reader
	buf   []byte // current verified payload
	spare []byte // previous payload's backing array, reused by fill
	off   int    // read cursor within buf
	pos   int64  // byte offset of the next frame header in the underlying stream
	err   error
}

// NewFrameReader returns a FrameReader decoding frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read implements io.Reader.
func (fr *FrameReader) Read(p []byte) (int, error) {
	for fr.off == len(fr.buf) {
		if fr.err != nil {
			return 0, fr.err
		}
		fr.fill()
	}
	n := copy(p, fr.buf[fr.off:])
	fr.off += n
	return n, nil
}

// fill decodes the next frame into fr.buf, latching io.EOF or corruption.
// The read cursor and buffer only move on success, so a latched error never
// exposes a half-filled payload through Read.
func (fr *FrameReader) fill() {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			fr.err = io.EOF // clean boundary
			return
		}
		fr.err = fmt.Errorf("%w: torn header at offset %d: %v", ErrFrameCorrupt, fr.pos, err)
		return
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > FrameMaxPayload {
		fr.err = fmt.Errorf("%w: implausible payload length %d at offset %d", ErrFrameCorrupt, length, fr.pos)
		return
	}
	payload := fr.spare
	if cap(payload) < int(length) {
		payload = make([]byte, length)
	}
	payload = payload[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		fr.err = fmt.Errorf("%w: torn payload at offset %d: %v", ErrFrameCorrupt, fr.pos, err)
		return
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		fr.err = fmt.Errorf("%w: checksum mismatch at offset %d (stored %08x, computed %08x)", ErrFrameCorrupt, fr.pos, sum, got)
		return
	}
	fr.pos += int64(frameHeaderSize) + int64(length)
	fr.spare = fr.buf[:0]
	fr.buf = payload
	fr.off = 0
}
