package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary table serialization. The format plays the role Protobuf-over-HDFS
// plays in the paper's prototype (§6.1) and defines the "disk size" column
// of Table 5.
//
// Layout (all integers varint unless noted):
//
//	magic "SBD1" | name | numParts
//	per partition: startID | numCols | numRows
//	  per column: name | kind
//	    U64:   numRows little-endian 8-byte words
//	    Bytes: per row: len | bytes
//	    Str:   per row: len | bytes

const magic = "SBD1"

// WriteTo serializes the table. It returns the number of bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.Write([]byte(magic)); err != nil {
		return bw.n, err
	}
	writeString(bw, t.Name)
	writeUvarint(bw, uint64(len(t.Parts)))
	for _, p := range t.Parts {
		if err := writePartition(bw, p); err != nil {
			return bw.n, err
		}
	}
	if err := bw.w.(*bufio.Writer).Flush(); err != nil {
		return bw.n, err
	}
	return bw.n, bw.err
}

// writePartition serializes one partition. A view partition serializes like
// any other, but its vectors must be pinned resident for the walk.
func writePartition(bw *countingWriter, p *Partition) error {
	release, err := p.Pin(nil)
	if err != nil {
		return err
	}
	defer release()
	writeUvarint(bw, p.StartID)
	writeUvarint(bw, uint64(len(p.Cols)))
	writeUvarint(bw, uint64(p.NumRows()))
	for i := range p.Cols {
		c := &p.Cols[i]
		writeString(bw, c.Name)
		writeUvarint(bw, uint64(c.Kind))
		switch c.Kind {
		case U64:
			var buf [8]byte
			for _, v := range c.U64 {
				binary.LittleEndian.PutUint64(buf[:], v)
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
		case Bytes:
			for _, b := range c.Bytes {
				writeUvarint(bw, uint64(len(b)))
				if _, err := bw.Write(b); err != nil {
					return err
				}
			}
		case Str:
			for _, s := range c.Str {
				writeString(bw, s)
			}
		}
	}
	return nil
}

// DiskBytes returns the serialized size of the table without materializing
// the serialization (Table 5's "disk size").
func (t *Table) DiskBytes() uint64 {
	n, err := t.WriteTo(io.Discard)
	if err != nil {
		return 0
	}
	return uint64(n)
}

// Read deserializes a table written by WriteTo.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read header: %v", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("store: bad magic %q", head)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	nParts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: read partition count: %v", err)
	}
	t := &Table{Name: name}
	for pi := uint64(0); pi < nParts; pi++ {
		startID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: partition %d: %v", pi, err)
		}
		nCols, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: partition %d: %v", pi, err)
		}
		nRows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: partition %d: %v", pi, err)
		}
		p := &Partition{StartID: startID}
		for ci := uint64(0); ci < nCols; ci++ {
			cname, err := readString(br)
			if err != nil {
				return nil, err
			}
			kind, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("store: column %q: %v", cname, err)
			}
			// Counts and lengths are untrusted (this decoder sits behind
			// wire.DecodeRegister and reads segment files off disk), so no
			// allocation may be sized from a declared count alone: slices
			// grow by append with a capped initial capacity, and every blob
			// reads in bounded chunks. Memory use is therefore proportional
			// to bytes actually present in the stream, never to a hostile
			// header claiming 2^60 rows.
			c := Column{Name: cname, Kind: Kind(kind)}
			switch c.Kind {
			case U64:
				c.U64 = make([]uint64, 0, preallocRows(nRows))
				var buf [8]byte
				for i := uint64(0); i < nRows; i++ {
					if _, err := io.ReadFull(br, buf[:]); err != nil {
						return nil, fmt.Errorf("store: column %q row %d: %v", cname, i, err)
					}
					c.U64 = append(c.U64, binary.LittleEndian.Uint64(buf[:]))
				}
			case Bytes:
				c.Bytes = make([][]byte, 0, preallocRows(nRows))
				for i := uint64(0); i < nRows; i++ {
					n, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, fmt.Errorf("store: column %q row %d: %v", cname, i, err)
					}
					b, err := readBlob(br, n)
					if err != nil {
						return nil, fmt.Errorf("store: column %q row %d: %v", cname, i, err)
					}
					c.Bytes = append(c.Bytes, b)
				}
			case Str:
				c.Str = make([]string, 0, preallocRows(nRows))
				for i := uint64(0); i < nRows; i++ {
					s, err := readString(br)
					if err != nil {
						return nil, fmt.Errorf("store: column %q row %d: %v", cname, i, err)
					}
					c.Str = append(c.Str, s)
				}
			default:
				return nil, fmt.Errorf("store: column %q: unknown kind %d", cname, kind)
			}
			p.Cols = append(p.Cols, c)
		}
		t.Parts = append(t.Parts, p)
		t.rows += uint64(p.NumRows())
	}
	// Partitions decode independently, so a hostile stream can declare a
	// different column set per partition. Every in-process constructor
	// (Build, appends, SplitRanges) produces one layout for the whole table,
	// and the engine binds plans against that shared layout once per run
	// (Partition.ColIndex) — so reject divergent layouts here, at the trust
	// boundary, instead of letting a compiled column index read past (or
	// into the wrong) column of a later partition.
	if len(t.Parts) > 1 {
		ref := t.Parts[0]
		for pi, p := range t.Parts[1:] {
			if len(p.Cols) != len(ref.Cols) {
				return nil, fmt.Errorf("store: partition %d has %d columns, want %d", pi+1, len(p.Cols), len(ref.Cols))
			}
			for ci := range p.Cols {
				if p.Cols[ci].Name != ref.Cols[ci].Name || p.Cols[ci].Kind != ref.Cols[ci].Kind {
					return nil, fmt.Errorf("store: partition %d column %d is %q/%v, want %q/%v",
						pi+1, ci, p.Cols[ci].Name, p.Cols[ci].Kind, ref.Cols[ci].Name, ref.Cols[ci].Kind)
				}
			}
		}
	}
	return t, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

// Write implements io.Writer, counting bytes and latching the first error.
func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // countingWriter latches the error
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s) //nolint:errcheck // countingWriter latches the error
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("store: read string length: %v", err)
	}
	buf, err := readBlob(br, n)
	if err != nil {
		return "", fmt.Errorf("store: read string: %v", err)
	}
	return string(buf), nil
}

// maxPrealloc caps any allocation sized from an untrusted declared count:
// larger claims must earn their memory by actually delivering bytes.
const maxPrealloc = 1 << 16

// preallocRows clamps a declared row count to a safe initial capacity.
func preallocRows(n uint64) int {
	return int(min(n, maxPrealloc))
}

// readBlob reads exactly n declared bytes, growing in bounded chunks so a
// hostile length cannot force a huge allocation before the stream runs dry.
func readBlob(br *bufio.Reader, n uint64) ([]byte, error) {
	if n <= maxPrealloc {
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, maxPrealloc)
	var chunk [32 << 10]byte
	for remaining := n; remaining > 0; {
		step := min(remaining, uint64(len(chunk)))
		if _, err := io.ReadFull(br, chunk[:step]); err != nil {
			return nil, err
		}
		buf = append(buf, chunk[:step]...)
		remaining -= step
	}
	return buf, nil
}
