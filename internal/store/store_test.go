package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func u64Col(name string, vals ...uint64) Column {
	return Column{Name: name, Kind: U64, U64: vals}
}

func testTable(t *testing.T, rows, parts int) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	a := make([]uint64, rows)
	b := make([][]byte, rows)
	c := make([]string, rows)
	for i := 0; i < rows; i++ {
		a[i] = rng.Uint64()
		b[i] = []byte(fmt.Sprintf("ct-%d", rng.Intn(100)))
		c[i] = fmt.Sprintf("url-%d", i)
	}
	tbl, err := Build("t", []Column{
		{Name: "a", Kind: U64, U64: a},
		{Name: "b", Kind: Bytes, Bytes: b},
		{Name: "c", Kind: Str, Str: c},
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestBuildPartitioning(t *testing.T) {
	tbl := testTable(t, 10, 3)
	if got := len(tbl.Parts); got != 3 {
		t.Fatalf("partitions = %d, want 3", got)
	}
	var total int
	next := uint64(1)
	for _, p := range tbl.Parts {
		if p.StartID != next {
			t.Fatalf("partition StartID = %d, want %d", p.StartID, next)
		}
		next += uint64(p.NumRows())
		total += p.NumRows()
	}
	if total != 10 || tbl.NumRows() != 10 {
		t.Fatalf("row count mismatch: %d/%d", total, tbl.NumRows())
	}
}

func TestBuildClampsPartitions(t *testing.T) {
	tbl := testTable(t, 2, 50)
	if len(tbl.Parts) != 2 {
		t.Fatalf("partitions = %d, want clamp to 2", len(tbl.Parts))
	}
	tbl = testTable(t, 5, 0)
	if len(tbl.Parts) != 1 {
		t.Fatalf("partitions = %d, want clamp to 1", len(tbl.Parts))
	}
}

func TestBuildRejectsRaggedColumns(t *testing.T) {
	_, err := Build("t", []Column{u64Col("a", 1, 2), u64Col("b", 1)}, 1)
	if err == nil {
		t.Fatal("want error for ragged columns")
	}
}

func TestBuildEmptyTable(t *testing.T) {
	tbl, err := Build("t", []Column{u64Col("a")}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || len(tbl.Parts) != 1 {
		t.Fatalf("empty table: rows=%d parts=%d", tbl.NumRows(), len(tbl.Parts))
	}
}

func TestColLookup(t *testing.T) {
	tbl := testTable(t, 5, 2)
	if !tbl.HasCol("a") || tbl.HasCol("zz") {
		t.Fatal("HasCol misbehaves")
	}
	k, err := tbl.ColKind("b")
	if err != nil || k != Bytes {
		t.Fatalf("ColKind(b) = %v, %v", k, err)
	}
	if _, err := tbl.ColKind("zz"); err == nil {
		t.Fatal("want error for unknown column")
	}
	if got := tbl.ColNames(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ColNames = %v", got)
	}
	// ColIndex resolves the shared layout: the same index must address the
	// same column in every partition (the compile-once executor's contract).
	for want, name := range []string{"a", "b", "c"} {
		if got := tbl.Parts[0].ColIndex(name); got != want {
			t.Fatalf("ColIndex(%q) = %d, want %d", name, got, want)
		}
		for _, p := range tbl.Parts {
			if p.Cols[want].Name != name {
				t.Fatalf("partition layout diverges at %d", want)
			}
		}
	}
	if tbl.Parts[0].ColIndex("zz") != -1 {
		t.Fatal("ColIndex of unknown column should be -1")
	}
}

// TestReadRejectsDivergentLayouts pins the trust-boundary check: partitions
// decode independently, so a hostile register/append frame can declare a
// different column set per partition. The compile-once executor binds
// column indices against partition 0's layout, so Read must refuse such a
// table instead of letting a later partition be indexed out of range (a
// server-crashing panic) or into the wrong column.
func TestReadRejectsDivergentLayouts(t *testing.T) {
	cols := func(names ...string) []Column {
		out := make([]Column, len(names))
		for i, n := range names {
			out[i] = Column{Name: n, Kind: U64, U64: []uint64{1, 2}}
		}
		return out
	}
	for name, hostile := range map[string]*Table{
		"missing-column": {Name: "h", Parts: []*Partition{
			{StartID: 1, Cols: cols("a", "b")},
			{StartID: 3, Cols: cols("a")},
		}},
		"reordered-columns": {Name: "h", Parts: []*Partition{
			{StartID: 1, Cols: cols("a", "b")},
			{StartID: 3, Cols: cols("b", "a")},
		}},
		"kind-mismatch": {Name: "h", Parts: []*Partition{
			{StartID: 1, Cols: cols("a")},
			{StartID: 3, Cols: []Column{{Name: "a", Kind: Str, Str: []string{"x", "y"}}}},
		}},
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := hostile.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := Read(&buf); err == nil {
				t.Fatal("Read accepted a table with divergent partition layouts")
			}
		})
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	tbl := testTable(t, 57, 4)
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tbl.Name || back.NumRows() != tbl.NumRows() || len(back.Parts) != len(tbl.Parts) {
		t.Fatalf("header mismatch: %q %d %d", back.Name, back.NumRows(), len(back.Parts))
	}
	for pi, p := range tbl.Parts {
		q := back.Parts[pi]
		if q.StartID != p.StartID {
			t.Fatalf("partition %d StartID %d, want %d", pi, q.StartID, p.StartID)
		}
		for ci := range p.Cols {
			if !reflect.DeepEqual(p.Cols[ci], q.Cols[ci]) {
				t.Fatalf("partition %d column %q differs", pi, p.Cols[ci].Name)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("want error for empty input")
	}
	// Truncated valid prefix.
	tbl := testTable(t, 20, 2)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("want error for truncated input")
	}
}

func TestDiskBytesMatchesWriteTo(t *testing.T) {
	tbl := testTable(t, 100, 3)
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.DiskBytes(); got != uint64(n) {
		t.Fatalf("DiskBytes = %d, WriteTo wrote %d", got, n)
	}
}

func TestMemBytesScalesWithRows(t *testing.T) {
	small := testTable(t, 100, 1)
	large := testTable(t, 1000, 1)
	if large.MemBytes() <= small.MemBytes() {
		t.Fatal("MemBytes must grow with rows")
	}
}

func TestSplitRangesBalancedAndShared(t *testing.T) {
	tbl := testTable(t, 1000, 7)
	subs := tbl.SplitRanges(3)
	if len(subs) != 3 {
		t.Fatalf("sub-tables = %d, want 3", len(subs))
	}
	wantRows := []uint64{334, 333, 333}
	next := uint64(1)
	var total uint64
	for i, sub := range subs {
		if sub.NumRows() != wantRows[i] {
			t.Errorf("shard %d rows = %d, want %d", i, sub.NumRows(), wantRows[i])
		}
		if sub.Parts[0].StartID != next {
			t.Errorf("shard %d starts at id %d, want %d", i, sub.Parts[0].StartID, next)
		}
		if sub.EndID() != next+sub.NumRows()-1 {
			t.Errorf("shard %d EndID = %d, want %d", i, sub.EndID(), next+sub.NumRows()-1)
		}
		// Identifiers are contiguous across the shard's partitions.
		id := sub.Parts[0].StartID
		for _, p := range sub.Parts {
			if p.StartID != id {
				t.Errorf("shard %d partition starts at %d, want %d", i, p.StartID, id)
			}
			id += uint64(p.NumRows())
		}
		next += sub.NumRows()
		total += sub.NumRows()
	}
	if total != tbl.NumRows() {
		t.Fatalf("split covers %d rows, want %d", total, tbl.NumRows())
	}
	// Column vectors are shared, not copied: the first shard's first value
	// aliases the source table's.
	if &subs[0].Parts[0].Cols[0].U64[0] != &tbl.Parts[0].Cols[0].U64[0] {
		t.Fatal("split copied column vectors")
	}
	// Values round the split boundaries survive.
	if got, want := subs[1].Parts[0].Cols[0].U64[0], colValueAt(tbl, 334); got != want {
		t.Fatalf("row 335 in shard 1 = %d, want %d", got, want)
	}
}

// colValueAt returns column "a"'s value for the 0-based global row index.
func colValueAt(tbl *Table, idx int) uint64 {
	for _, p := range tbl.Parts {
		if idx < p.NumRows() {
			return p.Cols[0].U64[idx]
		}
		idx -= p.NumRows()
	}
	panic("index out of range")
}

func TestSplitRangesMoreShardsThanRows(t *testing.T) {
	tbl := testTable(t, 2, 1)
	subs := tbl.SplitRanges(4)
	if len(subs) != 4 {
		t.Fatalf("sub-tables = %d, want 4", len(subs))
	}
	for i, want := range []uint64{1, 1, 0, 0} {
		if subs[i].NumRows() != want {
			t.Errorf("shard %d rows = %d, want %d", i, subs[i].NumRows(), want)
		}
	}
	// Empty shards keep the column layout and a usable append position.
	for _, sub := range subs[2:] {
		if got, want := sub.ColNames(), tbl.ColNames(); !reflect.DeepEqual(got, want) {
			t.Errorf("empty shard columns = %v, want %v", got, want)
		}
		if sub.EndID() != tbl.EndID() {
			t.Errorf("empty shard EndID = %d, want %d", sub.EndID(), tbl.EndID())
		}
	}
}

func TestEndIDWithGaps(t *testing.T) {
	tbl := testTable(t, 10, 2)
	if tbl.EndID() != 10 {
		t.Fatalf("EndID = %d, want 10", tbl.EndID())
	}
	// A shard-style append skips identifiers routed to other shards.
	batch, err := BuildFrom("t", []Column{
		{Name: "a", Kind: U64, U64: []uint64{1, 2}},
		{Name: "b", Kind: Bytes, Bytes: [][]byte{{1}, {2}}},
		{Name: "c", Kind: Str, Str: []string{"x", "y"}},
	}, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := tbl.WithAppended(batch)
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumRows() != 12 || grown.EndID() != 32 {
		t.Fatalf("grown rows/EndID = %d/%d, want 12/32", grown.NumRows(), grown.EndID())
	}
	// Rewinding or overlapping identifiers still fail.
	if _, err := grown.WithAppended(batch); err == nil {
		t.Fatal("overlapping append accepted")
	}
	// An EMPTY batch with a rewound StartID must also fail: its empty
	// partition would rewind EndID and admit overlapping appends afterwards.
	rewound, err := BuildFrom("t", []Column{
		{Name: "a", Kind: U64, U64: nil},
		{Name: "b", Kind: Bytes, Bytes: nil},
		{Name: "c", Kind: Str, Str: nil},
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grown.WithAppended(rewound); err == nil {
		t.Fatal("rewound empty batch accepted")
	}
	// An empty batch continuing the sequence is harmless.
	inPlace, err := BuildFrom("t", []Column{
		{Name: "a", Kind: U64, U64: nil},
		{Name: "b", Kind: Bytes, Bytes: nil},
		{Name: "c", Kind: Str, Str: nil},
	}, 1, grown.EndID()+1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := grown.WithAppended(inPlace)
	if err != nil {
		t.Fatal(err)
	}
	if ok.NumRows() != grown.NumRows() || ok.EndID() != grown.EndID() {
		t.Fatalf("empty in-place append changed rows/EndID: %d/%d", ok.NumRows(), ok.EndID())
	}
}

func TestSnapshotIsolatedFromInPlaceAppend(t *testing.T) {
	tbl := testTable(t, 10, 2)
	snap := tbl.Snapshot()
	batch, err := BuildFrom("t", []Column{
		{Name: "a", Kind: U64, U64: []uint64{9}},
		{Name: "b", Kind: Bytes, Bytes: [][]byte{{9}}},
		{Name: "c", Kind: Str, Str: []string{"z"}},
	}, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendTable(batch); err != nil {
		t.Fatal(err)
	}
	if snap.NumRows() != 10 || len(snap.Parts) != 2 {
		t.Fatalf("snapshot grew with the original: %d rows, %d parts", snap.NumRows(), len(snap.Parts))
	}
	if tbl.NumRows() != 11 {
		t.Fatalf("original rows = %d, want 11", tbl.NumRows())
	}
}

func TestCovers(t *testing.T) {
	tbl := testTable(t, 10, 3) // ids 1..10
	batch, err := BuildFrom("t", []Column{
		{Name: "a", Kind: U64, U64: []uint64{1, 2}},
		{Name: "b", Kind: Bytes, Bytes: [][]byte{{1}, {2}}},
		{Name: "c", Kind: Str, Str: []string{"x", "y"}},
	}, 1, 31) // ids 31..32, gap 11..30
	if err != nil {
		t.Fatal(err)
	}
	grown, err := tbl.WithAppended(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		lo, hi uint64
		want   bool
	}{
		{1, 10, true},
		{3, 7, true},
		{31, 32, true},
		{10, 11, false}, // runs into the gap
		{15, 20, false}, // entirely inside the gap
		{31, 33, false}, // past the end
		{5, 4, false},   // inverted
	} {
		if got := grown.Covers(tc.lo, tc.hi); got != tc.want {
			t.Errorf("Covers(%d, %d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if U64.String() != "u64" || Bytes.String() != "bytes" || Str.String() != "str" {
		t.Fatal("Kind.String broken")
	}
}
