package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func u64Col(name string, vals ...uint64) Column {
	return Column{Name: name, Kind: U64, U64: vals}
}

func testTable(t *testing.T, rows, parts int) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	a := make([]uint64, rows)
	b := make([][]byte, rows)
	c := make([]string, rows)
	for i := 0; i < rows; i++ {
		a[i] = rng.Uint64()
		b[i] = []byte(fmt.Sprintf("ct-%d", rng.Intn(100)))
		c[i] = fmt.Sprintf("url-%d", i)
	}
	tbl, err := Build("t", []Column{
		{Name: "a", Kind: U64, U64: a},
		{Name: "b", Kind: Bytes, Bytes: b},
		{Name: "c", Kind: Str, Str: c},
	}, parts)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestBuildPartitioning(t *testing.T) {
	tbl := testTable(t, 10, 3)
	if got := len(tbl.Parts); got != 3 {
		t.Fatalf("partitions = %d, want 3", got)
	}
	var total int
	next := uint64(1)
	for _, p := range tbl.Parts {
		if p.StartID != next {
			t.Fatalf("partition StartID = %d, want %d", p.StartID, next)
		}
		next += uint64(p.NumRows())
		total += p.NumRows()
	}
	if total != 10 || tbl.NumRows() != 10 {
		t.Fatalf("row count mismatch: %d/%d", total, tbl.NumRows())
	}
}

func TestBuildClampsPartitions(t *testing.T) {
	tbl := testTable(t, 2, 50)
	if len(tbl.Parts) != 2 {
		t.Fatalf("partitions = %d, want clamp to 2", len(tbl.Parts))
	}
	tbl = testTable(t, 5, 0)
	if len(tbl.Parts) != 1 {
		t.Fatalf("partitions = %d, want clamp to 1", len(tbl.Parts))
	}
}

func TestBuildRejectsRaggedColumns(t *testing.T) {
	_, err := Build("t", []Column{u64Col("a", 1, 2), u64Col("b", 1)}, 1)
	if err == nil {
		t.Fatal("want error for ragged columns")
	}
}

func TestBuildEmptyTable(t *testing.T) {
	tbl, err := Build("t", []Column{u64Col("a")}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || len(tbl.Parts) != 1 {
		t.Fatalf("empty table: rows=%d parts=%d", tbl.NumRows(), len(tbl.Parts))
	}
}

func TestColLookup(t *testing.T) {
	tbl := testTable(t, 5, 2)
	if !tbl.HasCol("a") || tbl.HasCol("zz") {
		t.Fatal("HasCol misbehaves")
	}
	k, err := tbl.ColKind("b")
	if err != nil || k != Bytes {
		t.Fatalf("ColKind(b) = %v, %v", k, err)
	}
	if _, err := tbl.ColKind("zz"); err == nil {
		t.Fatal("want error for unknown column")
	}
	if got := tbl.ColNames(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ColNames = %v", got)
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	tbl := testTable(t, 57, 4)
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tbl.Name || back.NumRows() != tbl.NumRows() || len(back.Parts) != len(tbl.Parts) {
		t.Fatalf("header mismatch: %q %d %d", back.Name, back.NumRows(), len(back.Parts))
	}
	for pi, p := range tbl.Parts {
		q := back.Parts[pi]
		if q.StartID != p.StartID {
			t.Fatalf("partition %d StartID %d, want %d", pi, q.StartID, p.StartID)
		}
		for ci := range p.Cols {
			if !reflect.DeepEqual(p.Cols[ci], q.Cols[ci]) {
				t.Fatalf("partition %d column %q differs", pi, p.Cols[ci].Name)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("want error for empty input")
	}
	// Truncated valid prefix.
	tbl := testTable(t, 20, 2)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("want error for truncated input")
	}
}

func TestDiskBytesMatchesWriteTo(t *testing.T) {
	tbl := testTable(t, 100, 3)
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.DiskBytes(); got != uint64(n) {
		t.Fatalf("DiskBytes = %d, WriteTo wrote %d", got, n)
	}
}

func TestMemBytesScalesWithRows(t *testing.T) {
	small := testTable(t, 100, 1)
	large := testTable(t, 1000, 1)
	if large.MemBytes() <= small.MemBytes() {
		t.Fatal("MemBytes must grow with rows")
	}
}

func TestKindString(t *testing.T) {
	if U64.String() != "u64" || Bytes.String() != "bytes" || Str.String() != "str" {
		t.Fatal("Kind.String broken")
	}
}
