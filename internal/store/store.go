// Package store implements Seabed's columnar table storage: partitioned,
// in-memory column vectors with a compact binary serialization. It plays the
// role HDFS + Protobuf serialization play in the paper's prototype (§6.1)
// and provides the disk/memory accounting behind Table 5.
//
// Tables are split into contiguous row partitions. Row identifiers are
// global, 1-based, and contiguous (partition p covers [StartID, StartID+len)),
// which is exactly the property ASHE's range encoding exploits (§4.2, §4.5):
// the identifier never needs to be materialized as a physical column.
package store

import (
	"fmt"
)

// Kind is the physical type of a column vector.
type Kind int

const (
	// U64 columns hold 64-bit words: plaintext integers or ASHE ciphertext
	// bodies.
	U64 Kind = iota
	// Bytes columns hold per-row byte strings: DET, OPE, or Paillier
	// ciphertexts.
	Bytes
	// Str columns hold plaintext strings (NoEnc baseline only).
	Str
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case U64:
		return "u64"
	case Bytes:
		return "bytes"
	case Str:
		return "str"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column is one column vector within a partition. Exactly one of the value
// slices is populated, matching Kind.
type Column struct {
	Name  string
	Kind  Kind
	U64   []uint64
	Bytes [][]byte
	Str   []string
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case U64:
		return len(c.U64)
	case Bytes:
		return len(c.Bytes)
	default:
		return len(c.Str)
	}
}

// slice returns the column restricted to rows [lo, hi).
func (c *Column) slice(lo, hi int) Column {
	out := Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case U64:
		out.U64 = c.U64[lo:hi]
	case Bytes:
		out.Bytes = c.Bytes[lo:hi]
	default:
		out.Str = c.Str[lo:hi]
	}
	return out
}

// memBytes estimates the in-memory footprint of the column.
func (c *Column) memBytes() uint64 {
	var n uint64
	switch c.Kind {
	case U64:
		n = uint64(len(c.U64)) * 8
	case Bytes:
		for _, b := range c.Bytes {
			n += uint64(len(b)) + 24 // slice header
		}
	default:
		for _, s := range c.Str {
			n += uint64(len(s)) + 16 // string header
		}
	}
	return n
}

// Partition is a contiguous horizontal slice of a table. A partition is
// either heap-resident (Cols own their vectors) or a view (Cols carry layout
// only and vectors fault in from a backing segment via Pin — see view.go).
type Partition struct {
	// StartID is the global 1-based row identifier of the partition's first
	// row.
	StartID uint64
	Cols    []Column

	// view, when non-nil, marks a lazily loaded partition: Cols' vectors may
	// be absent until pinned and may be evicted while unpinned.
	view *partView
}

// NumRows returns the number of rows in the partition. For a view partition
// the count comes from the view's metadata, so it is valid even while the
// column vectors are not resident.
func (p *Partition) NumRows() int {
	if p.view != nil {
		return p.view.rows
	}
	if len(p.Cols) == 0 {
		return 0
	}
	return p.Cols[0].Len()
}

// Col returns the named column, or nil.
func (p *Partition) Col(name string) *Column {
	if i := p.ColIndex(name); i >= 0 {
		return &p.Cols[i]
	}
	return nil
}

// ColIndex returns the position of the named column in the partition's
// layout, or -1. Every partition of a table shares one layout (Build slices
// whole columns and appends validate names and kinds), so an index resolved
// against any partition addresses the same column in all of them — the
// property a compile-once query executor needs to bind names once per run
// instead of once per partition.
func (p *Partition) ColIndex(name string) int {
	for i := range p.Cols {
		if p.Cols[i].Name == name {
			return i
		}
	}
	return -1
}

// Table is a partitioned columnar table.
type Table struct {
	Name  string
	Parts []*Partition
	rows  uint64
}

// Build splits full-length columns into numParts contiguous partitions with
// global row identifiers starting at 1. All columns must have equal length;
// numParts is clamped to [1, rows] (an empty table gets one empty partition).
func Build(name string, cols []Column, numParts int) (*Table, error) {
	return BuildFrom(name, cols, numParts, 1)
}

// BuildFrom is Build with an explicit first global row identifier, used when
// appending batches to an existing table (§4.1: uploads are "a continuing
// process"). startID must be ≥ 1.
func BuildFrom(name string, cols []Column, numParts int, startID uint64) (*Table, error) {
	if startID == 0 {
		return nil, fmt.Errorf("store: row identifiers start at 1")
	}
	rows := -1
	for i := range cols {
		if rows == -1 {
			rows = cols[i].Len()
		} else if cols[i].Len() != rows {
			return nil, fmt.Errorf("store: column %q has %d rows, want %d", cols[i].Name, cols[i].Len(), rows)
		}
	}
	if rows < 0 {
		rows = 0
	}
	if numParts < 1 {
		numParts = 1
	}
	if numParts > rows && rows > 0 {
		numParts = rows
	}
	t := &Table{Name: name, rows: uint64(rows)}
	if rows == 0 {
		part := &Partition{StartID: startID}
		for i := range cols {
			part.Cols = append(part.Cols, cols[i].slice(0, 0))
		}
		t.Parts = []*Partition{part}
		return t, nil
	}
	per := rows / numParts
	extra := rows % numParts
	lo := 0
	for p := 0; p < numParts; p++ {
		n := per
		if p < extra {
			n++
		}
		hi := lo + n
		part := &Partition{StartID: startID + uint64(lo)}
		for i := range cols {
			part.Cols = append(part.Cols, cols[i].slice(lo, hi))
		}
		t.Parts = append(t.Parts, part)
		lo = hi
	}
	return t, nil
}

// AppendTable appends another table's partitions to t. The tables must have
// identical column layouts and the other table's identifiers must all come
// after t's, preserving the range-compression property (§4.2). Gaps are
// permitted — a shard table owns only its slice of each append batch, so the
// batches it receives skip the identifiers routed to other shards — but
// identifiers never rewind or overlap.
func (t *Table) AppendTable(other *Table) error {
	if err := t.appendCheck(other); err != nil {
		return err
	}
	t.Parts = append(t.Parts, other.Parts...)
	t.rows += other.rows
	return nil
}

// WithAppended returns a new table holding t's partitions followed by
// other's, leaving t untouched — copy-on-write append, so readers iterating
// t's partitions concurrently (e.g. queries in flight on a server) never see
// a mutating slice. Validation matches AppendTable.
func (t *Table) WithAppended(other *Table) (*Table, error) {
	if err := t.appendCheck(other); err != nil {
		return nil, err
	}
	grown := &Table{Name: t.Name, rows: t.rows + other.rows}
	grown.Parts = make([]*Partition, 0, len(t.Parts)+len(other.Parts))
	grown.Parts = append(grown.Parts, t.Parts...)
	grown.Parts = append(grown.Parts, other.Parts...)
	return grown, nil
}

// appendCheck validates that other's layout matches t's and that its
// identifiers come strictly after t's (contiguously for a whole table,
// possibly with gaps for a shard table).
func (t *Table) appendCheck(other *Table) error {
	tNames, oNames := t.ColNames(), other.ColNames()
	if len(tNames) != len(oNames) {
		return fmt.Errorf("store: append: column counts differ (%d vs %d)", len(tNames), len(oNames))
	}
	for i := range tNames {
		if tNames[i] != oNames[i] {
			return fmt.Errorf("store: append: column %d is %q, want %q", i, oNames[i], tNames[i])
		}
		tk, _ := t.ColKind(tNames[i])
		ok, _ := other.ColKind(oNames[i])
		if tk != ok {
			return fmt.Errorf("store: append: column %q kind mismatch (%v vs %v)", tNames[i], ok, tk)
		}
	}
	// Validate the batch's position even when it holds no rows: an empty
	// partition with a rewound StartID would poison EndID and let later
	// overlapping appends through.
	if len(other.Parts) > 0 && other.Parts[0].StartID < t.EndID()+1 {
		return fmt.Errorf("store: append: batch identifiers start at %d, want ≥ %d", other.Parts[0].StartID, t.EndID()+1)
	}
	return nil
}

// NumRows returns the table's total row count.
func (t *Table) NumRows() uint64 { return t.rows }

// EndID returns the global identifier of the table's last row. For a table
// whose identifiers start at 1 and run contiguously this equals NumRows; for
// a shard table holding a later identifier range (or one with gaps between
// appended batches) it is the last partition's StartID + rows − 1. An empty
// table reports StartID − 1 (or 0 with no partitions), so EndID()+1 is always
// the next acceptable append identifier.
func (t *Table) EndID() uint64 {
	if len(t.Parts) == 0 {
		return 0
	}
	last := t.Parts[len(t.Parts)-1]
	return last.StartID + uint64(last.NumRows()) - 1
}

// Snapshot returns a shallow copy of the table: a fresh Parts slice holding
// the same (immutable) partitions. Appends to either the original or the
// snapshot never disturb the other, so a coordinator can hold a consistent
// view of a table whose owner keeps growing it in place.
func (t *Table) Snapshot() *Table {
	return &Table{Name: t.Name, Parts: append([]*Partition(nil), t.Parts...), rows: t.rows}
}

// TailParts returns a table holding t's partitions from index n on, shared
// with t. It is the delta an append-only replica needs when the first n
// partitions were already shipped: copy-on-write appends extend a table by
// whole partitions, so the prefix is immutable and the tail is the growth.
func (t *Table) TailParts(n int) *Table {
	tail := &Table{Name: t.Name}
	if n < 0 {
		n = 0
	}
	for _, p := range t.Parts[min(n, len(t.Parts)):] {
		tail.Parts = append(tail.Parts, p)
		tail.rows += uint64(p.NumRows())
	}
	return tail
}

// Covers reports whether every identifier in [lo, hi] is present in the
// table. Partitions are ordered by StartID (appends are monotone), so one
// forward sweep suffices. It is how a server distinguishes a replayed append
// batch (its identifiers all exist already) from a misplaced one.
func (t *Table) Covers(lo, hi uint64) bool {
	if lo > hi {
		return false
	}
	next := lo
	for _, p := range t.Parts {
		n := uint64(p.NumRows())
		if n == 0 || p.StartID+n-1 < next {
			continue
		}
		if p.StartID > next {
			return false // gap at next
		}
		if p.StartID+n-1 >= hi {
			return true
		}
		next = p.StartID + n
	}
	return false
}

// SplitRanges range-partitions the table into n sub-tables by row identifier:
// sub-table i holds the i-th of n contiguous, balanced row ranges (the same
// per/extra split Build uses). Column vectors are shared with t, not copied,
// and partitions overlapping a range boundary are sliced, so the split is
// O(partitions). Every sub-table keeps its rows' global StartIDs, preserving
// ASHE's range-encoding property (§4.2) shard-locally. Ranges left empty when
// rows < n yield sub-tables with one empty partition carrying the column
// layout, positioned after the last row, so they still register and append
// cleanly. n < 1 is treated as 1.
func (t *Table) SplitRanges(n int) []*Table {
	if n < 1 {
		n = 1
	}
	rows := int(t.rows)
	per, extra := rows/n, rows%n
	out := make([]*Table, n)
	part, off := 0, 0 // cursor: partition index and row offset within it
	for i := 0; i < n; i++ {
		want := per
		if i < extra {
			want++
		}
		sub := &Table{Name: t.Name, rows: uint64(want)}
		if want == 0 {
			// Empty shard: one empty partition with the layout, placed after
			// the table's end so EndID()+1 continues the global sequence.
			empty := &Partition{StartID: t.EndID() + 1}
			if len(t.Parts) > 0 {
				for _, c := range t.Parts[0].Cols {
					empty.Cols = append(empty.Cols, c.slice(0, 0))
				}
			}
			sub.Parts = []*Partition{empty}
			out[i] = sub
			continue
		}
		for want > 0 {
			p := t.Parts[part]
			avail := p.NumRows() - off
			take := avail
			if take > want {
				take = want
			}
			sp := &Partition{StartID: p.StartID + uint64(off)}
			for j := range p.Cols {
				sp.Cols = append(sp.Cols, p.Cols[j].slice(off, off+take))
			}
			sub.Parts = append(sub.Parts, sp)
			want -= take
			off += take
			if off == p.NumRows() {
				part++
				off = 0
			}
		}
		out[i] = sub
	}
	return out
}

// ColNames returns the table's column names in declaration order.
func (t *Table) ColNames() []string {
	if len(t.Parts) == 0 {
		return nil
	}
	names := make([]string, len(t.Parts[0].Cols))
	for i := range t.Parts[0].Cols {
		names[i] = t.Parts[0].Cols[i].Name
	}
	return names
}

// HasCol reports whether the table has the named column.
func (t *Table) HasCol(name string) bool {
	return len(t.Parts) > 0 && t.Parts[0].Col(name) != nil
}

// ColKind returns the kind of the named column.
func (t *Table) ColKind(name string) (Kind, error) {
	if len(t.Parts) == 0 {
		return 0, fmt.Errorf("store: table %q is empty", t.Name)
	}
	c := t.Parts[0].Col(name)
	if c == nil {
		return 0, fmt.Errorf("store: table %q has no column %q", t.Name, name)
	}
	return c.Kind, nil
}

// MemBytes estimates the table's in-memory footprint (Table 5's "memory
// size"). View partitions contribute only their currently resident vectors,
// so a mapped table served under a residency budget reports its true heap
// pressure, not its on-disk size.
func (t *Table) MemBytes() uint64 {
	var n uint64
	for _, p := range t.Parts {
		n += p.MemBytes()
	}
	return n
}
