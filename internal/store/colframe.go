package store

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Column extents: the one column-major encoding Seabed uses from disk to
// wire. A durable segment file stores each column of each partition as one
// extent (8-aligned so the file can be memory-mapped and the vectors aliased
// in place), and a v5 MsgResultChunk carries each projected column of a scan
// batch as one extent (packed, no alignment — the receiving buffer decides).
// docs/FORMAT.md is the authoritative spec; this file is its implementation.
//
// Extent layouts, by column kind (all integers little-endian, fixed width —
// no varints, so an extent can be consumed without a sequential scan):
//
//	U64:       rows × 8-byte words.
//	Bytes/Str: (rows+1) × 8-byte offsets into the blob heap that follows,
//	           with off[0] == 0 and off[rows] == total blob bytes; row i's
//	           value is heap[off[i]:off[i+1]]. Offsets are relative to the
//	           heap base (the byte after the offset array).
//
// Decoding aliases rather than copies wherever the platform allows: a U64
// extent that is 8-byte-aligned on a little-endian host becomes the []uint64
// vector itself, and Bytes/Str rows always alias the blob heap. The caller
// therefore must keep the backing buffer immutable and alive for as long as
// the decoded column is reachable — exactly the contract a read-only mmap or
// a received wire frame satisfies.

// hostLittleEndian reports whether this machine can alias little-endian
// extents in place. Every supported Go platform today is little-endian; the
// check keeps the copy fallback honest rather than theoretical.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// ColumnExtentSize returns the exact encoded size of c's extent.
func ColumnExtentSize(c *Column) int {
	switch c.Kind {
	case U64:
		return 8 * len(c.U64)
	case Bytes:
		n := 8 * (len(c.Bytes) + 1)
		for _, b := range c.Bytes {
			n += len(b)
		}
		return n
	default:
		n := 8 * (len(c.Str) + 1)
		for _, s := range c.Str {
			n += len(s)
		}
		return n
	}
}

// AppendColumnExtent appends c's extent encoding to buf and returns the
// extended slice. It allocates only when buf lacks capacity, so an encoder
// reusing its buffer appends whole columns without per-row allocations.
func AppendColumnExtent(buf []byte, c *Column) []byte {
	switch c.Kind {
	case U64:
		if hostLittleEndian && len(c.U64) > 0 {
			// The in-memory vector already is the extent encoding.
			raw := unsafe.Slice((*byte)(unsafe.Pointer(&c.U64[0])), 8*len(c.U64))
			return append(buf, raw...)
		}
		for _, v := range c.U64 {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		return buf
	case Bytes:
		off := uint64(0)
		buf = binary.LittleEndian.AppendUint64(buf, 0)
		for _, b := range c.Bytes {
			off += uint64(len(b))
			buf = binary.LittleEndian.AppendUint64(buf, off)
		}
		for _, b := range c.Bytes {
			buf = append(buf, b...)
		}
		return buf
	default:
		off := uint64(0)
		buf = binary.LittleEndian.AppendUint64(buf, 0)
		for _, s := range c.Str {
			off += uint64(len(s))
			buf = binary.LittleEndian.AppendUint64(buf, off)
		}
		for _, s := range c.Str {
			buf = append(buf, s...)
		}
		return buf
	}
}

// aligned8 reports whether b's first byte sits on an 8-byte boundary.
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// DecodeColumnExtent decodes one extent of the given kind and row count from
// the front of data, returning the column vectors and the bytes consumed.
// The returned column aliases data wherever possible (see the package
// comment above for the immutability contract); lengths and offsets are
// validated against len(data), never trusted, so a truncated or hostile
// buffer yields an error rather than an out-of-bounds vector.
func DecodeColumnExtent(name string, kind Kind, rows int, data []byte) (Column, int, error) {
	c := Column{Name: name, Kind: kind}
	if rows < 0 {
		return c, 0, fmt.Errorf("store: extent %q: negative row count", name)
	}
	switch kind {
	case U64:
		need := 8 * rows
		if len(data) < need {
			return c, 0, fmt.Errorf("store: extent %q: %d bytes for %d u64 rows", name, len(data), rows)
		}
		if rows == 0 {
			c.U64 = []uint64{}
			return c, 0, nil
		}
		if hostLittleEndian && aligned8(data) {
			c.U64 = unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), rows)
		} else {
			c.U64 = make([]uint64, rows)
			for i := range c.U64 {
				c.U64[i] = binary.LittleEndian.Uint64(data[8*i:])
			}
		}
		return c, need, nil
	case Bytes, Str:
		offBytes := 8 * (rows + 1)
		if len(data) < offBytes {
			return c, 0, fmt.Errorf("store: extent %q: %d bytes for %d offset entries", name, len(data), rows+1)
		}
		heap := data[offBytes:]
		prev := binary.LittleEndian.Uint64(data)
		if prev != 0 {
			return c, 0, fmt.Errorf("store: extent %q: first offset %d, want 0", name, prev)
		}
		if kind == Bytes {
			c.Bytes = make([][]byte, rows)
		} else {
			c.Str = make([]string, rows)
		}
		for i := 0; i < rows; i++ {
			next := binary.LittleEndian.Uint64(data[8*(i+1):])
			if next < prev || next > uint64(len(heap)) {
				return c, 0, fmt.Errorf("store: extent %q: offset %d out of order or past heap (%d after %d, heap %d)",
					name, i+1, next, prev, len(heap))
			}
			blob := heap[prev:next]
			if kind == Bytes {
				if len(blob) > 0 {
					c.Bytes[i] = blob
				}
			} else if len(blob) > 0 {
				// Alias the heap as a string: the backing buffer is immutable
				// by the decode contract, which is what makes this safe.
				c.Str[i] = unsafe.String(&blob[0], len(blob))
			}
			prev = next
		}
		return c, offBytes + int(prev), nil
	}
	return c, 0, fmt.Errorf("store: extent %q: unknown kind %d", name, int(kind))
}
