package planner

import (
	"fmt"

	"seabed/internal/sqlparse"
)

// Category is the §5 / Table 4 support classification of a query.
type Category int

const (
	// Server queries run purely on the untrusted server.
	Server Category = iota
	// ClientPre queries need client pre-processing at upload time (e.g.
	// squared columns for variance).
	ClientPre
	// ClientPost queries need client post-processing after decryption
	// (arbitrary functions, sorting on aggregates).
	ClientPost
	// TwoRoundTrips queries need the client to compute an intermediate
	// result, re-encrypt it, and send it back (e.g. iterative regression).
	TwoRoundTrips
)

// String implements fmt.Stringer using the paper's Table 6 labels.
func (c Category) String() string {
	switch c {
	case Server:
		return "S"
	case ClientPre:
		return "CPre"
	case ClientPost:
		return "CPost"
	case TwoRoundTrips:
		return "2R"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// QueryTraits carries the out-of-band properties of a query that the SQL
// text alone cannot express (user-defined functions, iterative analyses).
// Workload generators attach these to their query logs.
type QueryTraits struct {
	// UDF marks queries applying an arbitrary client-side function to the
	// result.
	UDF bool
	// Iterative marks queries whose analysis feeds intermediate results
	// back to the server (linear regression and friends).
	Iterative bool
}

// Classify assigns a parsed query (plus traits) to its Table 4 category.
func Classify(q *sqlparse.Query, traits QueryTraits) Category {
	if traits.Iterative {
		return TwoRoundTrips
	}
	if traits.UDF {
		return ClientPost
	}
	for _, se := range q.Select {
		switch se.Agg {
		case sqlparse.AggVar, sqlparse.AggStddev:
			// Quadratic aggregates need the client-uploaded squared column.
			return ClientPre
		}
	}
	return Server
}
