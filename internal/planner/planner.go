// Package planner implements Seabed's data planner (§4.2): it parses a
// sample query set, classifies each sensitive column as a measure or a
// dimension, and chooses an encryption scheme per column — ASHE for
// aggregated measures (plus client-computed squared columns for quadratic
// aggregates), SPLASHE for filter dimensions, DET for join/group dimensions,
// and OPE for range dimensions. Given a storage budget it prioritizes
// SPLASHE dimensions by cardinality, lowest first, exactly as §4.2
// prescribes.
package planner

import (
	"fmt"
	"sort"

	"seabed/internal/schema"
	"seabed/internal/splashe"
	"seabed/internal/sqlparse"
)

// Options configures the planner.
type Options struct {
	// MaxStorageOverhead caps the encrypted table's estimated size as a
	// multiple of the plaintext size. Dimensions that would push the
	// estimate past the cap fall back to DET (with a warning). Zero means
	// unlimited.
	MaxStorageOverhead float64
}

// ColumnPlan records every encryption artifact planned for one source
// column. A column may need several (e.g. a measure used in both linear and
// quadratic aggregates gets an ASHE column and a squared ASHE column).
type ColumnPlan struct {
	Source string
	Type   schema.Type
	Role   schema.Role

	// Plain keeps the column unencrypted (non-sensitive columns).
	Plain bool
	// Ashe stores the column ASHE-encrypted for linear aggregation.
	Ashe bool
	// Square adds a client-computed x² column, ASHE-encrypted (§4.2:
	// quadratic aggregates such as variance).
	Square bool
	// Det stores the column deterministically encrypted (joins, group-by,
	// equality filters that SPLASHE cannot cover).
	Det bool
	// DetKeyName overrides the DET key identity. Join columns across tables
	// must share one key so their ciphertexts compare equal; the planner
	// assigns the canonical pair name to both sides. Empty means the column
	// uses its own name.
	DetKeyName string
	// Ope stores the column order-revealing encrypted (range filters,
	// MIN/MAX aggregates).
	Ope bool
	// Splashe, when non-nil, splays the dimension with the given layout.
	Splashe *splashe.Layout
	// SplayedMeasures lists the measure columns splayed under this
	// dimension (§4.2: "only these measure columns need to be
	// SPLASHE-encrypted").
	SplayedMeasures []string
	// SplayedSquares lists the quadratic measures whose squared columns are
	// also splayed under this dimension, so filtered variance stays fully
	// server-side.
	SplayedSquares []string
	// Dict maps value ids to strings for string dimensions.
	Dict []string
	// Cardinality carries the schema's declared distinct-value count for the
	// dimension (0 when unknown), so downstream consumers can size dense
	// structures without re-resolving the source schema.
	Cardinality int
}

// KeyDomain returns the size of the column's u64 key domain when the
// planner knows it — the dictionary size of a string dimension (whose
// values travel as value ids) or the declared cardinality of an integer
// dimension — and 0 when the domain is unbounded or unknown. Executors use
// it to size dense group-by accumulators; it is a sizing hint, never a
// correctness contract.
func (cp *ColumnPlan) KeyDomain() uint64 {
	if len(cp.Dict) > 0 {
		return uint64(len(cp.Dict))
	}
	if cp.Cardinality > 0 {
		return uint64(cp.Cardinality)
	}
	return 0
}

// DetKey returns the DET key identity for the column.
func (cp *ColumnPlan) DetKey() string {
	if cp.DetKeyName != "" {
		return cp.DetKeyName
	}
	return cp.Source
}

// PrimaryScheme summarizes the plan for display.
func (cp *ColumnPlan) PrimaryScheme() schema.Scheme {
	switch {
	case cp.Splashe != nil && cp.Splashe.Mode == splashe.Enhanced:
		return schema.SplasheEnhanced
	case cp.Splashe != nil:
		return schema.SplasheBasic
	case cp.Ashe:
		return schema.ASHE
	case cp.Ope:
		return schema.OPE
	case cp.Det:
		return schema.DET
	}
	return schema.Plain
}

// Plan is the encrypted schema the planner produces.
type Plan struct {
	Source   *schema.Table
	Cols     map[string]*ColumnPlan
	Order    []string
	Warnings []string
}

// Col returns the plan for the named source column, or nil.
func (p *Plan) Col(name string) *ColumnPlan { return p.Cols[name] }

// New runs the planner over a plaintext table and a sample query set.
func New(tbl *schema.Table, samples []*sqlparse.Query, opts Options) (*Plan, error) {
	p := &Plan{Source: tbl, Cols: make(map[string]*ColumnPlan)}
	for i := range tbl.Columns {
		c := &tbl.Columns[i]
		p.Cols[c.Name] = &ColumnPlan{Source: c.Name, Type: c.Type, Dict: c.Values, Cardinality: c.Cardinality}
		p.Order = append(p.Order, c.Name)
	}

	// Phase 1: classify columns by walking the sample queries.
	usage := newUsage()
	for _, q := range samples {
		if err := usage.walk(q, p); err != nil {
			return nil, err
		}
	}
	for name, role := range usage.roles {
		if cp := p.Cols[name]; cp != nil {
			cp.Role = role
		}
	}

	// Phase 2: choose schemes.
	var splasheCandidates []string
	for _, name := range p.Order {
		cp := p.Cols[name]
		col := tbl.Column(name)
		if !col.Sensitive {
			cp.Plain = true
			continue
		}
		role := cp.Role
		if role.Has(schema.RoleMeasure) {
			cp.Ashe = true
			if role.Has(schema.RoleQuadratic) {
				cp.Square = true
			}
		}
		if role.Has(schema.RoleProjected) && !cp.Ashe && col.Type == schema.Int64 {
			// Scan queries return the value; store it ASHE so the client can
			// decrypt returned rows (§6.7, BDB query 1).
			cp.Ashe = true
		}
		if role.Has(schema.RoleRange) && !role.Has(schema.RoleMeasure) {
			cp.Ope = true
		}
		if role.Has(schema.RoleMeasure) && (usage.minMax[name] || role.Has(schema.RoleRange)) {
			// MIN/MAX aggregates and range predicates over measures need
			// order comparisons server-side.
			cp.Ope = true
		}
		if role.Has(schema.RoleJoin) {
			cp.Det = true
			if partner := usage.joinPartner[name]; partner != "" {
				// Both sides of an equi-join must encrypt under one key;
				// derive a canonical name both tables' planners agree on.
				a, b := name, partner
				if a > b {
					a, b = b, a
				}
				cp.DetKeyName = "join:" + a + "=" + b
			}
			p.warnf("column %q is used in joins; falling back to deterministic encryption (frequency leakage)", name)
			continue
		}
		if role.Has(schema.RoleGroup) {
			cp.Det = true
			continue
		}
		if role.Has(schema.RoleDimension) && !role.Has(schema.RoleRange) {
			if col.Cardinality >= 2 {
				splasheCandidates = append(splasheCandidates, name)
			} else {
				cp.Det = true
				p.warnf("column %q has unknown cardinality; SPLASHE unavailable, using deterministic encryption", name)
			}
			continue
		}
		if role == schema.RoleNone && !cp.Ashe && !cp.Ope {
			// Sensitive but unused by samples: keep it retrievable.
			if col.Type == schema.Int64 {
				cp.Ashe = true
			} else {
				cp.Det = true
			}
		}
	}

	// Phase 3: SPLASHE storage budgeting. Lowest-cardinality dimensions
	// first, to maximize protection per byte (§4.2).
	sort.SliceStable(splasheCandidates, func(a, b int) bool {
		return tbl.Column(splasheCandidates[a]).Cardinality < tbl.Column(splasheCandidates[b]).Cardinality
	})
	baseBytes := p.plainRowBytes()
	budget := opts.MaxStorageOverhead
	usedBytes := p.encryptedRowBytes()
	for _, name := range splasheCandidates {
		cp := p.Cols[name]
		col := tbl.Column(name)
		layout, err := layoutFor(col)
		if err != nil {
			cp.Det = true
			p.warnf("column %q: %v; using deterministic encryption", name, err)
			continue
		}
		measures := usage.measuresWith[name]
		added := splasheRowBytes(layout, len(measures))
		if budget > 0 && (usedBytes+added) > budget*baseBytes {
			cp.Det = true
			p.warnf("column %q: SPLASHE would exceed the %.1fx storage budget; using deterministic encryption", name, budget)
			continue
		}
		usedBytes += added
		cp.Splashe = &layout
		cp.SplayedMeasures = sortedKeys(measures)
		for _, m := range cp.SplayedMeasures {
			if mp := p.Cols[m]; mp != nil && mp.Square {
				cp.SplayedSquares = append(cp.SplayedSquares, m)
			}
		}
	}
	return p, nil
}

func (p *Plan) warnf(format string, args ...interface{}) {
	p.Warnings = append(p.Warnings, fmt.Sprintf(format, args...))
}

func layoutFor(col *schema.Column) (splashe.Layout, error) {
	if len(col.Freqs) == col.Cardinality && col.Cardinality > 0 {
		return splashe.PlanEnhanced(col.Freqs)
	}
	return splashe.PlanBasic(col.Cardinality)
}

// plainRowBytes estimates the plaintext bytes per row.
func (p *Plan) plainRowBytes() float64 {
	var n float64
	for _, name := range p.Order {
		if p.Cols[name].Type == schema.Int64 {
			n += 8
		} else {
			n += 16 // rough average string width
		}
	}
	return n
}

// encryptedRowBytes estimates the encrypted bytes per row for the current
// plan, excluding SPLASHE columns (added incrementally during budgeting).
func (p *Plan) encryptedRowBytes() float64 {
	var n float64
	for _, name := range p.Order {
		cp := p.Cols[name]
		if cp.Plain {
			if cp.Type == schema.Int64 {
				n += 8
			} else {
				n += 16
			}
			continue
		}
		if cp.Ashe {
			n += 8
		}
		if cp.Square {
			n += 8
		}
		if cp.Det {
			n += detWidth(cp.Type)
		}
		if cp.Ope {
			n += 64
		}
	}
	return n
}

// splasheRowBytes estimates the per-row bytes a splayed dimension adds:
// 8-byte ASHE cells per indicator and per splayed measure column, plus the
// enhanced layout's DET column.
func splasheRowBytes(l splashe.Layout, numMeasures int) float64 {
	cells := l.NumSplayColumns() * (1 + numMeasures)
	n := float64(8 * cells)
	if l.Mode == splashe.Enhanced {
		n += 16 // DET column
	}
	return n
}

func detWidth(t schema.Type) float64 {
	if t == schema.Int64 {
		return 16
	}
	return 32 // tag + average string
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// usage accumulates column roles across the sample queries.
type usage struct {
	roles        map[string]schema.Role
	minMax       map[string]bool
	measuresWith map[string]map[string]bool // dim -> set of measures co-used
	joinPartner  map[string]string          // join column -> the other side
}

func newUsage() *usage {
	return &usage{
		roles:        make(map[string]schema.Role),
		minMax:       make(map[string]bool),
		measuresWith: make(map[string]map[string]bool),
		joinPartner:  make(map[string]string),
	}
}

func (u *usage) add(col string, role schema.Role) {
	u.roles[col] |= role
}

func (u *usage) walk(q *sqlparse.Query, p *Plan) error {
	if q.From.Sub != nil {
		if err := u.walk(q.From.Sub, p); err != nil {
			return err
		}
	}
	var measures, eqDims []string
	for _, se := range q.Select {
		if se.Star {
			continue
		}
		name := se.Col.Name
		switch se.Agg {
		case sqlparse.AggNone:
			u.add(name, schema.RoleProjected)
		case sqlparse.AggVar, sqlparse.AggStddev:
			u.add(name, schema.RoleMeasure|schema.RoleQuadratic)
			measures = append(measures, name)
		case sqlparse.AggMin, sqlparse.AggMax, sqlparse.AggMedian:
			u.add(name, schema.RoleMeasure)
			u.minMax[name] = true
		default:
			u.add(name, schema.RoleMeasure)
			measures = append(measures, name)
		}
	}
	for _, pred := range q.Where {
		name := pred.Col.Name
		role := schema.RoleDimension
		if pred.Op.IsRange() {
			role |= schema.RoleRange
		} else {
			eqDims = append(eqDims, name)
		}
		u.add(name, role)
	}
	for _, g := range q.GroupBy {
		u.add(g.Name, schema.RoleDimension|schema.RoleGroup)
	}
	if j := q.From.Join; j != nil {
		u.add(j.LeftCol.Name, schema.RoleDimension|schema.RoleJoin)
		u.add(j.RightCol.Name, schema.RoleDimension|schema.RoleJoin)
		u.joinPartner[j.LeftCol.Name] = j.RightCol.Name
		u.joinPartner[j.RightCol.Name] = j.LeftCol.Name
	}
	// Record measure co-occurrence for SPLASHE planning.
	for _, d := range eqDims {
		set := u.measuresWith[d]
		if set == nil {
			set = make(map[string]bool)
			u.measuresWith[d] = set
		}
		for _, m := range measures {
			set[m] = true
		}
	}
	return nil
}
