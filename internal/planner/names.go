package planner

import (
	"fmt"

	"seabed/internal/schema"
	"seabed/internal/splashe"
	"seabed/internal/store"
)

// Encrypted-schema column naming. The encryption module, query translator,
// and decryption module all resolve physical columns through these helpers,
// so the convention lives in one place.

// AsheName returns the physical name of a measure's ASHE column.
func AsheName(m string) string { return m + "_ashe" }

// SquareName returns the physical name of a measure's client-computed
// squared column (ASHE-encrypted).
func SquareName(m string) string { return m + "_sq" }

// DetName returns the physical name of a dimension's DET column.
func DetName(d string) string { return d + "_det" }

// PailName returns the physical name of a measure's Paillier column in the
// baseline configuration the evaluation compares against.
func PailName(m string) string { return m + "_pail" }

// OpeName returns the physical name of a dimension's OPE column.
func OpeName(d string) string { return d + "_ope" }

// IndName returns the physical name of a SPLASHE indicator column. col is
// the dedicated-column index; others selects the enhanced layout's "others"
// indicator.
func IndName(dim string, col int, others bool) string {
	if others {
		return dim + "_ind_oth"
	}
	return fmt.Sprintf("%s_ind_%d", dim, col)
}

// SplayName returns the physical name of a splayed measure column.
func SplayName(m, dim string, col int, others bool) string {
	if others {
		return fmt.Sprintf("%s_spl_%s_oth", m, dim)
	}
	return fmt.Sprintf("%s_spl_%s_%d", m, dim, col)
}

// EncColumn describes one physical column of the encrypted table.
type EncColumn struct {
	Name string
	Kind store.Kind
	// Scheme is the scheme that produced the column.
	Scheme schema.Scheme
	// Source is the plaintext column the data derives from.
	Source string
}

// EncColumns enumerates every physical column of the encrypted table in a
// deterministic order. The encryption module materializes exactly these; the
// translator resolves against them.
func (p *Plan) EncColumns() []EncColumn {
	var out []EncColumn
	add := func(name string, kind store.Kind, s schema.Scheme, src string) {
		out = append(out, EncColumn{Name: name, Kind: kind, Scheme: s, Source: src})
	}
	for _, name := range p.Order {
		cp := p.Cols[name]
		if cp.Plain {
			kind := store.U64
			if cp.Type == schema.String {
				kind = store.Str
			}
			add(name, kind, schema.Plain, name)
			continue
		}
		if cp.Ashe {
			add(AsheName(name), store.U64, schema.ASHE, name)
		}
		if cp.Square {
			add(SquareName(name), store.U64, schema.ASHE, name)
		}
		if cp.Det {
			add(DetName(name), store.Bytes, schema.DET, name)
		}
		if cp.Ope {
			add(OpeName(name), store.Bytes, schema.OPE, name)
		}
		if l := cp.Splashe; l != nil {
			mode := schema.SplasheBasic
			if l.Mode == splashe.Enhanced {
				mode = schema.SplasheEnhanced
			}
			n := l.NumSplayColumns()
			for i := 0; i < n; i++ {
				others := l.Mode == splashe.Enhanced && i == n-1
				add(IndName(name, i, others), store.U64, mode, name)
			}
			if l.Mode == splashe.Enhanced {
				add(DetName(name), store.Bytes, schema.DET, name)
			}
			for _, m := range cp.SplayedMeasures {
				for i := 0; i < n; i++ {
					others := l.Mode == splashe.Enhanced && i == n-1
					add(SplayName(m, name, i, others), store.U64, mode, m)
				}
			}
			for _, m := range cp.SplayedSquares {
				for i := 0; i < n; i++ {
					others := l.Mode == splashe.Enhanced && i == n-1
					add(SplayName(SquareName(m), name, i, others), store.U64, mode, m)
				}
			}
		}
	}
	return out
}
