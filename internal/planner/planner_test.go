package planner

import (
	"strings"
	"testing"

	"seabed/internal/schema"
	"seabed/internal/splashe"
	"seabed/internal/sqlparse"
)

func adTable() *schema.Table {
	return &schema.Table{
		Name: "ads",
		Columns: []schema.Column{
			{Name: "revenue", Type: schema.Int64, Sensitive: true},
			{Name: "clicks", Type: schema.Int64, Sensitive: true},
			{Name: "country", Type: schema.String, Sensitive: true, Cardinality: 4,
				Freqs:  []uint64{1000, 900, 30, 20},
				Values: []string{"USA", "Canada", "India", "Chile"}},
			{Name: "gender", Type: schema.String, Sensitive: true, Cardinality: 2,
				Values: []string{"Male", "Female"}},
			{Name: "day", Type: schema.Int64, Sensitive: true},
			{Name: "hour", Type: schema.Int64, Sensitive: true, Cardinality: 24},
			{Name: "campaign", Type: schema.String, Sensitive: true},
			{Name: "region", Type: schema.String, Sensitive: false},
		},
	}
}

func adQueries() []*sqlparse.Query {
	return []*sqlparse.Query{
		sqlparse.MustParse("SELECT SUM(revenue) FROM ads WHERE country = 'Canada'"),
		sqlparse.MustParse("SELECT COUNT(*) FROM ads WHERE gender = 'Female'"),
		sqlparse.MustParse("SELECT VAR(clicks) FROM ads WHERE gender = 'Male'"),
		sqlparse.MustParse("SELECT SUM(revenue) FROM ads WHERE day > 15"),
		sqlparse.MustParse("SELECT hour, SUM(revenue) FROM ads GROUP BY hour"),
		sqlparse.MustParse("SELECT SUM(x.spend) FROM ads a JOIN budgets x ON a.campaign = x.campaign"),
	}
}

func mustPlan(t *testing.T, tbl *schema.Table, qs []*sqlparse.Query, opts Options) *Plan {
	t.Helper()
	p, err := New(tbl, qs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasureGetsASHE(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cp := p.Col("revenue")
	if !cp.Ashe || cp.Det || cp.Ope {
		t.Fatalf("revenue plan = %+v, want ASHE only", cp)
	}
	if cp.PrimaryScheme() != schema.ASHE {
		t.Fatalf("scheme = %v", cp.PrimaryScheme())
	}
}

func TestQuadraticMeasureGetsSquaredColumn(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cp := p.Col("clicks")
	if !cp.Ashe || !cp.Square {
		t.Fatalf("clicks plan = %+v, want ASHE + squared column", cp)
	}
}

func TestEqualityDimensionGetsSplashe(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	country := p.Col("country")
	if country.Splashe == nil {
		t.Fatalf("country plan = %+v, want SPLASHE", country)
	}
	if country.Splashe.Mode != splashe.Enhanced {
		t.Fatalf("country has freqs; want enhanced, got %v", country.Splashe.Mode)
	}
	if len(country.SplayedMeasures) != 1 || country.SplayedMeasures[0] != "revenue" {
		t.Fatalf("country splayed measures = %v, want [revenue]", country.SplayedMeasures)
	}
	gender := p.Col("gender")
	if gender.Splashe == nil || gender.Splashe.Mode != splashe.Basic {
		t.Fatalf("gender plan = %+v, want basic SPLASHE (no freqs)", gender)
	}
}

func TestRangeDimensionGetsOPE(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cp := p.Col("day")
	if !cp.Ope {
		t.Fatalf("day plan = %+v, want OPE", cp)
	}
}

func TestGroupByDimensionGetsDET(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cp := p.Col("hour")
	if !cp.Det || cp.Splashe != nil {
		t.Fatalf("hour plan = %+v, want DET for group-by", cp)
	}
}

func TestJoinDimensionGetsDETWithWarning(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cp := p.Col("campaign")
	if !cp.Det {
		t.Fatalf("campaign plan = %+v, want DET for join", cp)
	}
	found := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "campaign") && strings.Contains(w, "join") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no join warning for campaign; warnings = %v", p.Warnings)
	}
}

func TestNonSensitiveStaysPlain(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cp := p.Col("region")
	if !cp.Plain || cp.PrimaryScheme() != schema.Plain {
		t.Fatalf("region plan = %+v, want plain", cp)
	}
}

func TestStorageBudgetFallsBackToDET(t *testing.T) {
	// With a tight budget, the higher-cardinality candidate (country, d=4)
	// must fall back to DET while gender (d=2) fits — lowest cardinality
	// first (§4.2).
	p := mustPlan(t, adTable(), adQueries(), Options{MaxStorageOverhead: 2.2})
	gender := p.Col("gender")
	country := p.Col("country")
	if gender.Splashe == nil {
		t.Fatalf("gender plan = %+v, want SPLASHE under tight budget (d=2 planned first)", gender)
	}
	if country.Splashe != nil || !country.Det {
		t.Fatalf("country plan = %+v, want DET fallback under tight budget", country)
	}
	found := false
	for _, w := range p.Warnings {
		if strings.Contains(w, "country") && strings.Contains(w, "budget") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no budget warning; warnings = %v", p.Warnings)
	}
}

func TestUnknownCardinalityFallsBackToDET(t *testing.T) {
	tbl := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "m", Type: schema.Int64, Sensitive: true},
		{Name: "d", Type: schema.String, Sensitive: true}, // no cardinality
	}}
	qs := []*sqlparse.Query{sqlparse.MustParse("SELECT SUM(m) FROM t WHERE d = 'x'")}
	p := mustPlan(t, tbl, qs, Options{})
	if cp := p.Col("d"); !cp.Det || cp.Splashe != nil {
		t.Fatalf("d plan = %+v, want DET for unknown cardinality", cp)
	}
}

func TestMinMaxMeasureGetsOPE(t *testing.T) {
	tbl := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "m", Type: schema.Int64, Sensitive: true},
	}}
	qs := []*sqlparse.Query{sqlparse.MustParse("SELECT MAX(m) FROM t")}
	p := mustPlan(t, tbl, qs, Options{})
	if cp := p.Col("m"); !cp.Ope {
		t.Fatalf("m plan = %+v, want OPE for MAX", cp)
	}
}

func TestProjectedSensitiveColumnRetrievable(t *testing.T) {
	tbl := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "pageRank", Type: schema.Int64, Sensitive: true},
	}}
	qs := []*sqlparse.Query{sqlparse.MustParse("SELECT pageRank FROM t WHERE pageRank > 100")}
	p := mustPlan(t, tbl, qs, Options{})
	cp := p.Col("pageRank")
	if !cp.Ashe || !cp.Ope {
		t.Fatalf("pageRank plan = %+v, want ASHE (retrieval) + OPE (range)", cp)
	}
}

func TestUnusedSensitiveColumnStaysRetrievable(t *testing.T) {
	tbl := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "m", Type: schema.Int64, Sensitive: true},
		{Name: "s", Type: schema.String, Sensitive: true},
	}}
	p := mustPlan(t, tbl, nil, Options{})
	if cp := p.Col("m"); !cp.Ashe {
		t.Fatalf("unused int column plan = %+v, want ASHE", cp)
	}
	if cp := p.Col("s"); !cp.Det {
		t.Fatalf("unused string column plan = %+v, want DET", cp)
	}
}

func TestEncColumnsEnumeration(t *testing.T) {
	p := mustPlan(t, adTable(), adQueries(), Options{})
	cols := p.EncColumns()
	byName := map[string]EncColumn{}
	for _, c := range cols {
		if _, dup := byName[c.Name]; dup {
			t.Fatalf("duplicate physical column %q", c.Name)
		}
		byName[c.Name] = c
	}
	for _, want := range []string{
		AsheName("revenue"), AsheName("clicks"), SquareName("clicks"),
		OpeName("day"), DetName("hour"), DetName("campaign"),
		IndName("gender", 0, false), IndName("gender", 1, false),
		SplayName("revenue", "country", 0, false),
	} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing physical column %q; have %v", want, names(cols))
		}
	}
	// Enhanced country layout: k dedicated + others indicator + DET column.
	country := p.Col("country")
	k := country.Splashe.K
	if _, ok := byName[IndName("country", k, true)]; !ok {
		t.Fatalf("missing others indicator for country; have %v", names(cols))
	}
	if _, ok := byName[DetName("country")]; !ok {
		t.Fatal("missing balanced DET column for enhanced country")
	}
	if _, ok := byName[SplayName("revenue", "country", k, true)]; !ok {
		t.Fatal("missing others splay column for revenue under country")
	}
	// region stays plain under its own name.
	if c, ok := byName["region"]; !ok || c.Scheme != schema.Plain {
		t.Fatalf("region = %+v", c)
	}
}

func names(cols []EncColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sql    string
		traits QueryTraits
		want   Category
	}{
		{"SELECT SUM(a) FROM t", QueryTraits{}, Server},
		{"SELECT AVG(a) FROM t", QueryTraits{}, Server},
		{"SELECT COUNT(*) FROM t WHERE b = 1", QueryTraits{}, Server},
		{"SELECT MIN(a) FROM t", QueryTraits{}, Server},
		{"SELECT VAR(a) FROM t", QueryTraits{}, ClientPre},
		{"SELECT STDDEV(a) FROM t", QueryTraits{}, ClientPre},
		{"SELECT SUM(a) FROM t", QueryTraits{UDF: true}, ClientPost},
		{"SELECT SUM(a) FROM t", QueryTraits{Iterative: true}, TwoRoundTrips},
		{"SELECT SUM(a) FROM t", QueryTraits{UDF: true, Iterative: true}, TwoRoundTrips},
	}
	for _, c := range cases {
		got := Classify(sqlparse.MustParse(c.sql), c.traits)
		if got != c.want {
			t.Errorf("Classify(%q, %+v) = %v, want %v", c.sql, c.traits, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Server.String() != "S" || ClientPre.String() != "CPre" ||
		ClientPost.String() != "CPost" || TwoRoundTrips.String() != "2R" {
		t.Fatal("Category.String broken")
	}
}
