// Package sqlparse implements the SQL subset Seabed's query translator
// accepts (§4.4, Table 2): single-table aggregation queries with conjunctive
// predicates, GROUP BY, equi-joins, and aggregation over subqueries.
//
// The grammar, roughly:
//
//	query      = SELECT selectList FROM from [WHERE pred {AND pred}] [GROUP BY cols]
//	selectList = selectExpr {"," selectExpr}
//	selectExpr = agg "(" (col | "*") ")" [AS ident] | col [AS ident]
//	agg        = SUM | COUNT | AVG | MIN | MAX | VAR | VARIANCE | STDDEV
//	from       = table [alias] | "(" query ")" [AS] alias | table JOIN table ON col "=" col
//	pred       = col op literal
//	op         = "=" | "<" | ">" | "<=" | ">=" | "<>" | "!="
//	literal    = integer | "'" string "'"
package sqlparse

import (
	"fmt"
	"strings"
)

// AggFunc identifies an aggregate function.
type AggFunc int

// Aggregate functions Seabed supports server-side or with client help (§5).
const (
	AggNone AggFunc = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
	AggVar
	AggStddev
	AggMedian
)

// String implements fmt.Stringer.
func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggVar:
		return "VAR"
	case AggStddev:
		return "STDDEV"
	case AggMedian:
		return "MEDIAN"
	}
	return fmt.Sprintf("AggFunc(%d)", int(a))
}

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Table string
	Name  string
}

// String implements fmt.Stringer.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// SelectExpr is one item of the SELECT list.
type SelectExpr struct {
	Agg   AggFunc
	Col   ColRef
	Star  bool // COUNT(*)
	Alias string
}

// String implements fmt.Stringer.
func (s SelectExpr) String() string {
	var b strings.Builder
	if s.Agg != AggNone {
		b.WriteString(s.Agg.String())
		b.WriteByte('(')
		if s.Star {
			b.WriteByte('*')
		} else {
			b.WriteString(s.Col.String())
		}
		b.WriteByte(')')
	} else {
		b.WriteString(s.Col.String())
	}
	if s.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(s.Alias)
	}
	return b.String()
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(o))
}

// IsRange reports whether the operator is an inequality (requires OPE).
func (o CmpOp) IsRange() bool { return o == OpLt || o == OpLe || o == OpGt || o == OpGe }

// LitKind is a literal's type.
type LitKind int

// Literal kinds.
const (
	LitInt LitKind = iota
	LitString
)

// Literal is a constant in a predicate.
type Literal struct {
	Kind LitKind
	Num  int64
	Str  string
}

// String implements fmt.Stringer.
func (l Literal) String() string {
	if l.Kind == LitString {
		return "'" + l.Str + "'"
	}
	return fmt.Sprintf("%d", l.Num)
}

// Predicate is one conjunct of the WHERE clause.
type Predicate struct {
	Col ColRef
	Op  CmpOp
	Lit Literal
}

// String implements fmt.Stringer.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Lit)
}

// Join is an equi-join clause.
type Join struct {
	Table    string
	Alias    string
	LeftCol  ColRef
	RightCol ColRef
}

// From is a query's FROM clause: a base table, a subquery, or a join.
type From struct {
	Table string
	Alias string
	Sub   *Query
	Join  *Join
}

// Query is a parsed SQL statement.
type Query struct {
	Select  []SelectExpr
	From    From
	Where   []Predicate
	GroupBy []ColRef
}

// String renders the query back to SQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	switch {
	case q.From.Sub != nil:
		b.WriteByte('(')
		b.WriteString(q.From.Sub.String())
		b.WriteByte(')')
		if q.From.Alias != "" {
			b.WriteByte(' ')
			b.WriteString(q.From.Alias)
		}
	default:
		b.WriteString(q.From.Table)
		if q.From.Alias != "" {
			b.WriteByte(' ')
			b.WriteString(q.From.Alias)
		}
		if q.From.Join != nil {
			j := q.From.Join
			b.WriteString(" JOIN ")
			b.WriteString(j.Table)
			if j.Alias != "" {
				b.WriteByte(' ')
				b.WriteString(j.Alias)
			}
			fmt.Fprintf(&b, " ON %s = %s", j.LeftCol, j.RightCol)
		}
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// Aggregates reports whether the query computes any aggregate.
func (q *Query) Aggregates() bool {
	for _, s := range q.Select {
		if s.Agg != AggNone {
			return true
		}
	}
	return false
}
