package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a SQL statement in Seabed's supported subset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

// Statement is a parsed SQL statement: a query, optionally wrapped by an
// EXPLAIN or EXPLAIN ANALYZE prefix.
type Statement struct {
	// Explain marks an EXPLAIN-wrapped query: the caller should render the
	// compiled plan instead of (plain EXPLAIN) or in addition to (EXPLAIN
	// ANALYZE) returning the query's rows.
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: run the query and graft its measured
	// per-operator counters onto the rendered plan.
	Analyze bool
	// Query is the wrapped (or bare) query.
	Query *Query
}

// ParseStatement parses a statement in Seabed's supported subset: a query,
// optionally prefixed by EXPLAIN or EXPLAIN ANALYZE. Parse remains the entry
// point for call sites that accept only bare queries.
func ParseStatement(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st := &Statement{}
	if p.atKeyword("explain") {
		p.next()
		st.Explain = true
		if p.atKeyword("analyze") {
			p.next()
			st.Analyze = true
		}
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	st.Query = q
	return st, nil
}

// MustParse is Parse but panics on error; intended for tests and fixtures.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) atSymbol(s string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) expectSymbol(s string) error {
	if !p.atSymbol(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	p.next()
	return nil
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"and": true, "as": true, "join": true, "on": true,
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent || reservedWords[strings.ToLower(t.text)] {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

var aggNames = map[string]AggFunc{
	"sum": AggSum, "count": AggCount, "avg": AggAvg, "min": AggMin,
	"max": AggMax, "var": AggVar, "variance": AggVar, "stddev": AggStddev,
	"median": AggMedian,
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		se, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, se)
		if !p.atSymbol(",") {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	q.From = from
	if p.atKeyword("where") {
		p.next()
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.atKeyword("and") {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.atSymbol(",") {
				break
			}
			p.next()
		}
	}
	return q, nil
}

func (p *parser) parseSelectExpr() (SelectExpr, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToLower(t.text)]; ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.next() // agg name
			p.next() // (
			se := SelectExpr{Agg: agg}
			if p.atSymbol("*") {
				if agg != AggCount {
					return SelectExpr{}, p.errf("%s(*) is only valid for COUNT", agg)
				}
				se.Star = true
				p.next()
			} else {
				col, err := p.parseColRef()
				if err != nil {
					return SelectExpr{}, err
				}
				se.Col = col
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectExpr{}, err
			}
			alias, err := p.parseOptionalAlias()
			if err != nil {
				return SelectExpr{}, err
			}
			se.Alias = alias
			return se, nil
		}
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectExpr{}, err
	}
	alias, err := p.parseOptionalAlias()
	if err != nil {
		return SelectExpr{}, err
	}
	return SelectExpr{Col: col, Alias: alias}, nil
}

func (p *parser) parseOptionalAlias() (string, error) {
	if p.atKeyword("as") {
		p.next()
		return p.expectIdent()
	}
	return "", nil
}

func (p *parser) parseColRef() (ColRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.atSymbol(".") {
		p.next()
		col, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: name, Name: col}, nil
	}
	return ColRef{Name: name}, nil
}

func (p *parser) parseFrom() (From, error) {
	if p.atSymbol("(") {
		p.next()
		sub, err := p.parseQuery()
		if err != nil {
			return From{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return From{}, err
		}
		alias := ""
		if p.atKeyword("as") {
			p.next()
		}
		if p.cur().kind == tokIdent && !reservedWords[strings.ToLower(p.cur().text)] {
			alias, _ = p.expectIdent()
		}
		return From{Sub: sub, Alias: alias}, nil
	}
	table, err := p.expectIdent()
	if err != nil {
		return From{}, err
	}
	f := From{Table: table}
	if p.cur().kind == tokIdent && !reservedWords[strings.ToLower(p.cur().text)] {
		f.Alias, _ = p.expectIdent()
	}
	if p.atKeyword("join") {
		p.next()
		j := &Join{}
		if j.Table, err = p.expectIdent(); err != nil {
			return From{}, err
		}
		if p.cur().kind == tokIdent && !reservedWords[strings.ToLower(p.cur().text)] {
			j.Alias, _ = p.expectIdent()
		}
		if err := p.expectKeyword("on"); err != nil {
			return From{}, err
		}
		if j.LeftCol, err = p.parseColRef(); err != nil {
			return From{}, err
		}
		if err := p.expectSymbol("="); err != nil {
			return From{}, err
		}
		if j.RightCol, err = p.parseColRef(); err != nil {
			return From{}, err
		}
		f.Join = j
	}
	return f, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	col, err := p.parseColRef()
	if err != nil {
		return Predicate{}, err
	}
	t := p.cur()
	if t.kind != tokSymbol {
		return Predicate{}, p.errf("expected comparison operator, got %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "=":
		op = OpEq
	case "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Predicate{}, p.errf("unknown operator %q", t.text)
	}
	p.next()
	lit, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Col: col, Op: op, Lit: lit}, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, p.errf("bad number %q: %v", t.text, err)
		}
		p.next()
		return Literal{Kind: LitInt, Num: n}, nil
	case tokString:
		p.next()
		return Literal{Kind: LitString, Str: t.text}, nil
	}
	return Literal{}, p.errf("expected literal, got %q", t.text)
}
