package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSimpleAggregate(t *testing.T) {
	q := MustParse("SELECT SUM(salary) FROM employees")
	if len(q.Select) != 1 || q.Select[0].Agg != AggSum || q.Select[0].Col.Name != "salary" {
		t.Fatalf("select = %+v", q.Select)
	}
	if q.From.Table != "employees" {
		t.Fatalf("from = %+v", q.From)
	}
	if !q.Aggregates() {
		t.Fatal("Aggregates() must be true")
	}
}

func TestParseWhereConjunction(t *testing.T) {
	q := MustParse("SELECT SUM(revenue) FROM ads WHERE country = 'Canada' AND clicks > 10 AND day <= 31")
	if len(q.Where) != 3 {
		t.Fatalf("predicates = %d, want 3", len(q.Where))
	}
	p := q.Where[0]
	if p.Col.Name != "country" || p.Op != OpEq || p.Lit.Kind != LitString || p.Lit.Str != "Canada" {
		t.Fatalf("pred 0 = %+v", p)
	}
	if q.Where[1].Op != OpGt || q.Where[1].Lit.Num != 10 {
		t.Fatalf("pred 1 = %+v", q.Where[1])
	}
	if q.Where[2].Op != OpLe {
		t.Fatalf("pred 2 = %+v", q.Where[2])
	}
}

func TestParseGroupBy(t *testing.T) {
	q := MustParse("SELECT a, SUM(b) FROM t GROUP BY a")
	if len(q.GroupBy) != 1 || q.GroupBy[0].Name != "a" {
		t.Fatalf("group by = %+v", q.GroupBy)
	}
	if q.Select[0].Agg != AggNone || q.Select[1].Agg != AggSum {
		t.Fatalf("select = %+v", q.Select)
	}
}

func TestParseCountStar(t *testing.T) {
	q := MustParse("SELECT COUNT(*) FROM t WHERE a = 10")
	if !q.Select[0].Star || q.Select[0].Agg != AggCount {
		t.Fatalf("select = %+v", q.Select[0])
	}
}

func TestParseSubquery(t *testing.T) {
	// Table 2's ID-preservation example.
	q := MustParse("SELECT sum(tmp.a) FROM (SELECT a FROM tbl WHERE b > 10) tmp")
	if q.From.Sub == nil {
		t.Fatal("subquery not parsed")
	}
	if q.From.Alias != "tmp" {
		t.Fatalf("alias = %q, want tmp", q.From.Alias)
	}
	sub := q.From.Sub
	if sub.From.Table != "tbl" || len(sub.Where) != 1 || sub.Where[0].Op != OpGt {
		t.Fatalf("subquery = %+v", sub)
	}
	if q.Select[0].Col.Table != "tmp" || q.Select[0].Col.Name != "a" {
		t.Fatalf("outer select = %+v", q.Select[0])
	}
}

func TestParseJoin(t *testing.T) {
	q := MustParse("SELECT SUM(uv.adRevenue) FROM rankings r JOIN uservisits uv ON r.pageURL = uv.destURL WHERE r.pageRank > 100")
	j := q.From.Join
	if j == nil {
		t.Fatal("join not parsed")
	}
	if q.From.Table != "rankings" || q.From.Alias != "r" || j.Table != "uservisits" || j.Alias != "uv" {
		t.Fatalf("from = %+v join = %+v", q.From, j)
	}
	if j.LeftCol.String() != "r.pageURL" || j.RightCol.String() != "uv.destURL" {
		t.Fatalf("join cols = %s, %s", j.LeftCol, j.RightCol)
	}
}

func TestParseAliases(t *testing.T) {
	q := MustParse("SELECT SUM(a) AS total, AVG(b) AS mean FROM t")
	if q.Select[0].Alias != "total" || q.Select[1].Alias != "mean" {
		t.Fatalf("aliases = %q, %q", q.Select[0].Alias, q.Select[1].Alias)
	}
}

func TestParseAggregateVariants(t *testing.T) {
	for src, want := range map[string]AggFunc{
		"SELECT SUM(x) FROM t":      AggSum,
		"SELECT count(x) FROM t":    AggCount,
		"SELECT Avg(x) FROM t":      AggAvg,
		"SELECT MIN(x) FROM t":      AggMin,
		"SELECT max(x) FROM t":      AggMax,
		"SELECT VAR(x) FROM t":      AggVar,
		"SELECT variance(x) FROM t": AggVar,
		"SELECT STDDEV(x) FROM t":   AggStddev,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if q.Select[0].Agg != want {
			t.Fatalf("%s: agg = %v, want %v", src, q.Select[0].Agg, want)
		}
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q := MustParse("SELECT SUM(x) FROM t WHERE y > -5")
	if q.Where[0].Lit.Num != -5 {
		t.Fatalf("lit = %+v", q.Where[0].Lit)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := MustParse("SELECT COUNT(*) FROM t WHERE name = 'O''Brien'")
	if q.Where[0].Lit.Str != "O'Brien" {
		t.Fatalf("lit = %q", q.Where[0].Lit.Str)
	}
}

func TestParseNotEqualForms(t *testing.T) {
	for _, src := range []string{
		"SELECT COUNT(*) FROM t WHERE a <> 1",
		"SELECT COUNT(*) FROM t WHERE a != 1",
	} {
		q := MustParse(src)
		if q.Where[0].Op != OpNe {
			t.Fatalf("%s: op = %v", src, q.Where[0].Op)
		}
	}
}

func TestStringRoundtrip(t *testing.T) {
	for _, src := range []string{
		"SELECT SUM(salary) FROM employees",
		"SELECT a, SUM(b) FROM t GROUP BY a",
		"SELECT COUNT(*) FROM t WHERE a = 10",
		"SELECT SUM(tmp.a) FROM (SELECT a FROM tbl WHERE b > 10) tmp",
		"SELECT SUM(uv.adRevenue) FROM rankings r JOIN uservisits uv ON r.pageURL = uv.destURL",
		"SELECT AVG(x) AS mean FROM t WHERE c = 'Canada' AND d >= 3 GROUP BY e, f",
	} {
		q := MustParse(src)
		again := MustParse(q.String())
		if q.String() != again.String() {
			t.Fatalf("unstable roundtrip:\n  1: %s\n  2: %s", q.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT SUM( FROM t",
		"SELECT SUM(a FROM t",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE b",
		"SELECT a FROM t WHERE b ==",
		"SELECT a FROM t WHERE b = ",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t trailing garbage",
		"SELECT a FROM t WHERE s = 'unterminated",
		"SELECT a FROM (SELECT b FROM u",
		"SELECT a FROM t JOIN",
		"SELECT a FROM t JOIN u ON x",
		"SELECT a FROM t JOIN u ON x = ",
		"SELECT a FROM t WHERE b ! 3",
		"SELECT a FROM t WHERE b = 99999999999999999999999",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		} else if !strings.Contains(err.Error(), "sqlparse") {
			t.Errorf("Parse(%q): error %v lacks package prefix", src, err)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := MustParse("select sum(a) from t where b = 1 group by c")
	if q.Select[0].Agg != AggSum || len(q.GroupBy) != 1 {
		t.Fatalf("lowercase query misparsed: %+v", q)
	}
}

func TestIsRange(t *testing.T) {
	if OpEq.IsRange() || OpNe.IsRange() {
		t.Fatal("equality ops are not ranges")
	}
	if !OpLt.IsRange() || !OpGe.IsRange() {
		t.Fatal("inequality ops are ranges")
	}
}

func TestParseStatementExplain(t *testing.T) {
	cases := []struct {
		src              string
		explain, analyze bool
	}{
		{"SELECT SUM(m) FROM big WHERE d > 15", false, false},
		{"EXPLAIN SELECT SUM(m) FROM big WHERE d > 15", true, false},
		{"explain analyze SELECT SUM(m) FROM big", true, true},
		{"  Explain   Analyze  SELECT COUNT(*) FROM t", true, true},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("ParseStatement(%q): %v", c.src, err)
		}
		if st.Explain != c.explain || st.Analyze != c.analyze {
			t.Errorf("ParseStatement(%q): explain=%v analyze=%v, want %v/%v",
				c.src, st.Explain, st.Analyze, c.explain, c.analyze)
		}
		if st.Query == nil || st.Query.From.Table == "" {
			t.Errorf("ParseStatement(%q): wrapped query not parsed: %+v", c.src, st.Query)
		}
	}
	// The wrapped query is identical to a bare Parse of the same SQL.
	bare := MustParse("SELECT SUM(m) FROM big WHERE d > 15")
	st, err := ParseStatement("EXPLAIN ANALYZE SELECT SUM(m) FROM big WHERE d > 15")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Query, bare) {
		t.Errorf("EXPLAIN-wrapped query diverges from bare parse:\n got %+v\nwant %+v", st.Query, bare)
	}
}

func TestParseStatementRejectsJunk(t *testing.T) {
	for _, src := range []string{
		"EXPLAIN",                           // nothing to explain
		"ANALYZE SELECT COUNT(*) FROM t",    // ANALYZE without EXPLAIN
		"EXPLAIN EXPLAIN SELECT * FROM t",   // doubled keyword
		"EXPLAIN SELECT COUNT(*) FROM t 42", // trailing input after the query
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) accepted", src)
		}
	}
}
