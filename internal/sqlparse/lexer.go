package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . * = < > <= >= <> !=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s, start)
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.emit(tokNumber, l.lexNumber(), start)
		case isIdentStart(c):
			l.emit(tokIdent, l.lexIdent(), start)
		case strings.ContainsRune("(),.*", rune(c)):
			l.pos++
			l.emit(tokSymbol, string(c), start)
		case c == '=':
			l.pos++
			l.emit(tokSymbol, "=", start)
		case c == '<':
			l.pos++
			switch l.peek() {
			case '=':
				l.pos++
				l.emit(tokSymbol, "<=", start)
			case '>':
				l.pos++
				l.emit(tokSymbol, "<>", start)
			default:
				l.emit(tokSymbol, "<", start)
			}
		case c == '>':
			l.pos++
			if l.peek() == '=' {
				l.pos++
				l.emit(tokSymbol, ">=", start)
			} else {
				l.emit(tokSymbol, ">", start)
			}
		case c == '!':
			l.pos++
			if l.peek() == '=' {
				l.pos++
				l.emit(tokSymbol, "<>", start)
			} else {
				return nil, fmt.Errorf("sqlparse: unexpected '!' at position %d", start)
			}
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at position %d", c, start)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) peek() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqlparse: unterminated string starting at position %d", start)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
