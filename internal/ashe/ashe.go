// Package ashe implements ASHE, Seabed's additively symmetric homomorphic
// encryption scheme (§3.1, Appendix A.1).
//
// Plaintexts are elements of the additive group Z_2^64, represented as
// uint64 (signed measures map through two's complement). A ciphertext is a
// pair (c, S) where c = m − F_k(id) + F_k(id−1) mod 2^64 and S is a multiset
// of identifiers. Homomorphic addition adds the group elements and unions
// the multisets:
//
//	(c1, S1) ⊕ (c2, S2) = (c1 + c2, S1 ∪ S2)
//
// Decryption computes c + Σ_{i∈S} (F_k(i) − F_k(i−1)). Because the pad of
// identifier i is the telescoping difference F(i) − F(i−1), the sum over a
// contiguous identifier range [lo, hi] collapses to F(hi) − F(lo−1): two PRF
// evaluations per range regardless of length (§3.2). Identifier lists are
// managed by package idlist, which stores them as ranges for exactly this
// reason.
//
// Identifier 0 is reserved: decrypting it would require F(−1), which wraps.
// Seabed assigns row identifiers starting at 1 (§4.2).
package ashe

import (
	"fmt"
	"runtime"
	"sync"

	"seabed/internal/idlist"
	"seabed/internal/prf"
)

// KeySize is the column key length in bytes.
const KeySize = prf.KeySize

// Key is a per-column ASHE secret key. Seabed chooses a fresh key for every
// encrypted column (§4.2).
//
// A Key is not safe for concurrent use (the underlying PRF caches its last
// AES block); use Clone to derive per-goroutine instances.
type Key struct {
	f *prf.PRF
}

// NewKey returns a Key for the given 16-byte secret.
func NewKey(secret []byte) (*Key, error) {
	f, err := prf.New(secret)
	if err != nil {
		return nil, fmt.Errorf("ashe: %v", err)
	}
	return &Key{f: f}, nil
}

// MustNewKey is like NewKey but panics on error.
func MustNewKey(secret []byte) *Key {
	k, err := NewKey(secret)
	if err != nil {
		panic(err)
	}
	return k
}

// Clone returns an independent Key with the same secret.
func (k *Key) Clone() *Key { return &Key{f: k.f.Clone()} }

// Ciphertext is an ASHE ciphertext: a group element plus the identifier
// multiset it covers. The zero value is the encryption of 0 over the empty
// multiset and is the identity for Add.
type Ciphertext struct {
	Body uint64
	IDs  idlist.List
}

// Encrypt encrypts m under identifier id (which must be ≥ 1).
func (k *Key) Encrypt(m uint64, id uint64) Ciphertext {
	return Ciphertext{Body: k.EncryptBody(m, id), IDs: idlist.FromRange(id, id)}
}

// EncryptBody returns only the group element of Enc(m, id). Columnar storage
// keeps bodies in a []uint64 with the identifier implicit in the row
// position, so this is the hot path for uploads.
func (k *Key) EncryptBody(m uint64, id uint64) uint64 {
	if id == 0 {
		panic("ashe: identifier 0 is reserved")
	}
	return m - k.f.Delta(id)
}

// Decrypt recovers the plaintext sum encrypted by ct.
func (k *Key) Decrypt(ct Ciphertext) uint64 {
	sum := ct.Body
	for _, r := range ct.IDs.Ranges() {
		if r.Lo == 0 {
			panic("ashe: identifier 0 is reserved")
		}
		sum += k.f.RangeDelta(r.Lo, r.Hi)
	}
	return sum
}

// DecryptBody recovers the plaintext of a single-row ciphertext body.
func (k *Key) DecryptBody(body uint64, id uint64) uint64 {
	if id == 0 {
		panic("ashe: identifier 0 is reserved")
	}
	return body + k.f.Delta(id)
}

// PRFEvalsToDecrypt reports how many PRF evaluations Decrypt will perform for
// the ciphertext: two per identifier range (§3.2). The Ad-Analytics
// evaluation (§6.6) reports this statistic.
func PRFEvalsToDecrypt(ct Ciphertext) uint64 {
	return 2 * uint64(ct.IDs.NumRanges())
}

// Add returns the homomorphic sum of two ciphertexts.
func Add(a, b Ciphertext) Ciphertext {
	ids := a.IDs.Clone()
	ids.Merge(b.IDs)
	return Ciphertext{Body: a.Body + b.Body, IDs: ids}
}

// Accumulate adds b into a in place, avoiding the clone in Add. It is the
// aggregation hot path on the server.
func (a *Ciphertext) Accumulate(b Ciphertext) {
	a.Body += b.Body
	a.IDs.Merge(b.IDs)
}

// AccumulateBody adds a single row's ciphertext body with identifier id.
func (a *Ciphertext) AccumulateBody(body uint64, id uint64) {
	a.Body += body
	a.IDs.Append(id)
}

// EncryptColumn encrypts values under consecutive identifiers starting at
// startID (which must be ≥ 1) and returns the ciphertext bodies. Consecutive
// identifiers make the PRF's block packing effective and give uploads the
// contiguous-ID property that range encoding exploits (§4.2, §4.5).
func (k *Key) EncryptColumn(values []uint64, startID uint64) []uint64 {
	if startID == 0 {
		panic("ashe: identifier 0 is reserved")
	}
	out := make([]uint64, len(values))
	for i, m := range values {
		out[i] = m - k.f.Delta(startID+uint64(i))
	}
	return out
}

// DecryptColumn inverts EncryptColumn.
func (k *Key) DecryptColumn(bodies []uint64, startID uint64) []uint64 {
	if startID == 0 {
		panic("ashe: identifier 0 is reserved")
	}
	out := make([]uint64, len(bodies))
	for i, c := range bodies {
		out[i] = c + k.f.Delta(startID+uint64(i))
	}
	return out
}

// EncryptColumnParallel is EncryptColumn fanned out over up to
// runtime.NumCPU() goroutines, each with its own PRF clone. ASHE encryption
// is inherently parallelizable (§4.3); Seabed's client runs it
// multi-threaded to cut upload latency.
func (k *Key) EncryptColumnParallel(values []uint64, startID uint64) []uint64 {
	return k.columnParallel(values, startID, true)
}

// DecryptColumnParallel inverts EncryptColumnParallel.
func (k *Key) DecryptColumnParallel(bodies []uint64, startID uint64) []uint64 {
	return k.columnParallel(bodies, startID, false)
}

func (k *Key) columnParallel(in []uint64, startID uint64, encrypt bool) []uint64 {
	if startID == 0 {
		panic("ashe: identifier 0 is reserved")
	}
	workers := runtime.NumCPU()
	const minChunk = 4096
	if len(in) < minChunk*2 || workers < 2 {
		if encrypt {
			return k.EncryptColumn(in, startID)
		}
		return k.DecryptColumn(in, startID)
	}
	out := make([]uint64, len(in))
	chunk := (len(in) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(in) {
			break
		}
		hi := lo + chunk
		if hi > len(in) {
			hi = len(in)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f := k.f.Clone()
			for i := lo; i < hi; i++ {
				d := f.Delta(startID + uint64(i))
				if encrypt {
					out[i] = in[i] - d
				} else {
					out[i] = in[i] + d
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
