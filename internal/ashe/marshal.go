package ashe

import (
	"encoding/binary"
	"fmt"

	"seabed/internal/idlist"
)

// Marshal serializes the ciphertext for transfer (worker → driver → client)
// using the given identifier-list codec. The wire format is the 8-byte body
// followed by the encoded list.
func (ct Ciphertext) Marshal(codec idlist.Codec) ([]byte, error) {
	ids, err := codec.Encode(ct.IDs)
	if err != nil {
		return nil, fmt.Errorf("ashe: marshal: %v", err)
	}
	buf := make([]byte, 8, 8+len(ids))
	binary.LittleEndian.PutUint64(buf, ct.Body)
	return append(buf, ids...), nil
}

// Unmarshal inverts Marshal.
func Unmarshal(data []byte, codec idlist.Codec) (Ciphertext, error) {
	if len(data) < 8 {
		return Ciphertext{}, fmt.Errorf("ashe: unmarshal: short buffer (%d bytes)", len(data))
	}
	ids, err := codec.Decode(data[8:])
	if err != nil {
		return Ciphertext{}, fmt.Errorf("ashe: unmarshal: %v", err)
	}
	return Ciphertext{Body: binary.LittleEndian.Uint64(data), IDs: ids}, nil
}
