package ashe

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seabed/internal/idlist"
)

var testKey = MustNewKey([]byte("0123456789abcdef"))

func TestRoundtripSingle(t *testing.T) {
	f := func(m uint64, id uint64) bool {
		if id == 0 {
			id = 1
		}
		ct := testKey.Encrypt(m, id)
		return testKey.Decrypt(ct) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextLooksRandom(t *testing.T) {
	// Encryptions of zero under distinct ids must differ (randomized scheme).
	seen := map[uint64]bool{}
	for id := uint64(1); id <= 1000; id++ {
		body := testKey.EncryptBody(0, id)
		if seen[body] {
			t.Fatalf("duplicate ciphertext body for plaintext 0 at id %d", id)
		}
		seen[body] = true
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	f := func(m1, m2 uint64) bool {
		c1 := testKey.Encrypt(m1, 10)
		c2 := testKey.Encrypt(m2, 11)
		return testKey.Decrypt(Add(c1, c2)) == m1+m2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomomorphismManyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum Ciphertext
	var want uint64
	for id := uint64(1); id <= 10000; id++ {
		m := rng.Uint64()
		want += m
		sum.AccumulateBody(testKey.EncryptBody(m, id), id)
	}
	if got := testKey.Decrypt(sum); got != want {
		t.Fatalf("Decrypt = %d, want %d", got, want)
	}
	// Contiguous ids must have collapsed to a single range: decryption is
	// two PRF evaluations (§3.2).
	if n := PRFEvalsToDecrypt(sum); n != 2 {
		t.Fatalf("PRFEvalsToDecrypt = %d, want 2 for contiguous ids", n)
	}
}

func TestSignedValuesViaTwosComplement(t *testing.T) {
	vals := []int64{-5, 3, -10, 12, 0}
	var sum Ciphertext
	var want int64
	for i, v := range vals {
		id := uint64(i + 1)
		want += v
		sum.Accumulate(testKey.Encrypt(uint64(v), id))
	}
	if got := int64(testKey.Decrypt(sum)); got != want {
		t.Fatalf("signed sum = %d, want %d", got, want)
	}
}

func TestWraparound(t *testing.T) {
	// Sums are mod 2^64 by construction.
	c1 := testKey.Encrypt(^uint64(0), 1)
	c2 := testKey.Encrypt(2, 2)
	if got := testKey.Decrypt(Add(c1, c2)); got != 1 {
		t.Fatalf("wraparound sum = %d, want 1", got)
	}
}

func TestMultisetSemantics(t *testing.T) {
	// Adding the same row twice must double its contribution.
	ct := testKey.Encrypt(21, 5)
	sum := Add(ct, ct)
	if got := testKey.Decrypt(sum); got != 42 {
		t.Fatalf("double-counted row decrypts to %d, want 42", got)
	}
}

func TestZeroValueIsIdentity(t *testing.T) {
	var zero Ciphertext
	ct := testKey.Encrypt(99, 7)
	if got := testKey.Decrypt(Add(zero, ct)); got != 99 {
		t.Fatalf("identity add = %d, want 99", got)
	}
	if got := testKey.Decrypt(zero); got != 0 {
		t.Fatalf("empty ciphertext decrypts to %d, want 0", got)
	}
}

func TestColumnRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values := make([]uint64, 5000)
	for i := range values {
		values[i] = rng.Uint64()
	}
	bodies := testKey.EncryptColumn(values, 100)
	back := testKey.DecryptColumn(bodies, 100)
	for i := range values {
		if back[i] != values[i] {
			t.Fatalf("column roundtrip mismatch at %d", i)
		}
	}
}

func TestColumnMatchesSingleEncrypt(t *testing.T) {
	values := []uint64{5, 10, 15, 20}
	bodies := testKey.EncryptColumn(values, 7)
	for i, m := range values {
		if want := testKey.EncryptBody(m, 7+uint64(i)); bodies[i] != want {
			t.Fatalf("column body %d = %#x, want %#x", i, bodies[i], want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]uint64, 50000)
	for i := range values {
		values[i] = rng.Uint64()
	}
	serial := testKey.EncryptColumn(values, 1)
	parallel := testKey.EncryptColumnParallel(values, 1)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel encryption diverges at %d", i)
		}
	}
	back := testKey.DecryptColumnParallel(parallel, 1)
	for i := range values {
		if back[i] != values[i] {
			t.Fatalf("parallel decryption diverges at %d", i)
		}
	}
}

func TestDifferentKeysProduceDifferentCiphertexts(t *testing.T) {
	other := MustNewKey([]byte("fedcba9876543210"))
	same := 0
	for id := uint64(1); id <= 256; id++ {
		if testKey.EncryptBody(7, id) == other.EncryptBody(7, id) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("keys agree on %d/256 bodies", same)
	}
}

func TestIdentifierZeroPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Encrypt":       func() { testKey.Encrypt(1, 0) },
		"EncryptColumn": func() { testKey.EncryptColumn([]uint64{1}, 0) },
		"DecryptBody":   func() { testKey.DecryptBody(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with id 0: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	var sum Ciphertext
	for id := uint64(1); id <= 100; id++ {
		if id%3 == 0 {
			continue // gaps force multiple ranges
		}
		sum.AccumulateBody(testKey.EncryptBody(id*7, id), id)
	}
	for _, codec := range idlist.AllCodecs() {
		data, err := sum.Marshal(codec)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		got, err := Unmarshal(data, codec)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if testKey.Decrypt(got) != testKey.Decrypt(sum) {
			t.Fatalf("%s: marshal roundtrip changed decryption", codec.Name())
		}
	}
}

func TestUnmarshalRejectsShortBuffer(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}, idlist.Default); err == nil {
		t.Fatal("want error for short buffer")
	}
}

func TestNewKeyRejectsBadSecret(t *testing.T) {
	if _, err := NewKey([]byte("short")); err == nil {
		t.Fatal("want error for short secret")
	}
}

// Table 1 micro-benchmarks: ASHE encryption/decryption, paper band 12–24 ns.

func BenchmarkEncrypt(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += testKey.EncryptBody(uint64(i), uint64(i)+1)
	}
	_ = sink
}

func BenchmarkDecryptBody(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += testKey.DecryptBody(uint64(i), uint64(i)+1)
	}
	_ = sink
}

func BenchmarkPlainAddBaseline(b *testing.B) {
	// Table 1's "plain addition ~1 ns" row.
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += uint64(i)
	}
	_ = sink
}

func BenchmarkAggregateColumn(b *testing.B) {
	const rows = 1 << 16
	bodies := testKey.EncryptColumn(make([]uint64, rows), 1)
	b.SetBytes(rows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum Ciphertext
		for j, body := range bodies {
			sum.AccumulateBody(body, uint64(j)+1)
		}
		if sum.IDs.NumRanges() != 1 {
			b.Fatal("expected one range")
		}
	}
}
