// Package det implements the deterministic encryption scheme Seabed falls
// back to for dimensions that take part in joins or that enhanced SPLASHE
// stores in its balanced "others" column (§2.1, §3.4, §4.2).
//
// Deterministic encryption maps each plaintext to exactly one ciphertext, so
// the untrusted server can evaluate equality predicates, group rows, and
// compute joins by comparing ciphertexts directly. The cost is the leakage
// the paper discusses at length: ciphertext equality reveals plaintext
// equality, which is what frequency attacks exploit and what SPLASHE exists
// to prevent.
//
// Two forms are provided:
//
//   - 64-bit values encrypt to a single AES block (the value padded with a
//     verification tag), giving 16-byte ciphertexts.
//   - Arbitrary byte strings use an SIV-style composition: a keyed MAC of
//     the plaintext serves as the synthetic IV for AES-CTR, making the
//     scheme deterministic yet decryptable, with the MAC verified on
//     decryption.
package det

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the master secret length in bytes.
const KeySize = 16

// U64Size is the ciphertext length for 64-bit values.
const U64Size = aes.BlockSize

// sivSize is the synthetic-IV (and MAC tag) length for byte-string mode.
const sivSize = 16

// ErrCorrupt is returned when a ciphertext fails verification on decryption.
var ErrCorrupt = errors.New("det: ciphertext verification failed")

// Key holds the derived block and MAC keys. It is safe for concurrent use.
type Key struct {
	block  cipher.Block // for 64-bit values and CTR mode
	macKey [32]byte     // for the SIV tag
	pad    [8]byte      // keyed verification pad for 64-bit mode
}

// NewKey derives a Key from a 16-byte master secret.
func NewKey(secret []byte) (*Key, error) {
	if len(secret) != KeySize {
		return nil, fmt.Errorf("det: secret must be %d bytes, got %d", KeySize, len(secret))
	}
	// Domain-separated subkeys from the master secret.
	encKey := hmacSHA256(secret, []byte("det-enc"))[:16]
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("det: %v", err)
	}
	k := &Key{block: block}
	copy(k.macKey[:], hmacSHA256(secret, []byte("det-mac")))
	copy(k.pad[:], hmacSHA256(secret, []byte("det-pad")))
	return k, nil
}

// MustNewKey is like NewKey but panics on error.
func MustNewKey(secret []byte) *Key {
	k, err := NewKey(secret)
	if err != nil {
		panic(err)
	}
	return k
}

// EncryptU64 deterministically encrypts a 64-bit value to a 16-byte
// ciphertext.
func (k *Key) EncryptU64(v uint64) []byte {
	var in [aes.BlockSize]byte
	copy(in[:8], k.pad[:])
	binary.BigEndian.PutUint64(in[8:], v)
	out := make([]byte, aes.BlockSize)
	k.block.Encrypt(out, in[:])
	return out
}

// DecryptU64 inverts EncryptU64, verifying the embedded pad.
func (k *Key) DecryptU64(ct []byte) (uint64, error) {
	if len(ct) != U64Size {
		return 0, fmt.Errorf("det: u64 ciphertext must be %d bytes, got %d", U64Size, len(ct))
	}
	var out [aes.BlockSize]byte
	k.block.Decrypt(out[:], ct)
	if !bytes.Equal(out[:8], k.pad[:]) {
		return 0, ErrCorrupt
	}
	return binary.BigEndian.Uint64(out[8:]), nil
}

// EncryptBytes deterministically encrypts an arbitrary byte string. The
// ciphertext is sivSize bytes longer than the plaintext.
func (k *Key) EncryptBytes(p []byte) []byte {
	tag := hmacSHA256(k.macKey[:], p)[:sivSize]
	out := make([]byte, sivSize+len(p))
	copy(out, tag)
	ctr := cipher.NewCTR(k.block, tag)
	ctr.XORKeyStream(out[sivSize:], p)
	return out
}

// DecryptBytes inverts EncryptBytes, verifying the synthetic IV.
func (k *Key) DecryptBytes(ct []byte) ([]byte, error) {
	if len(ct) < sivSize {
		return nil, fmt.Errorf("det: ciphertext too short (%d bytes)", len(ct))
	}
	tag := ct[:sivSize]
	p := make([]byte, len(ct)-sivSize)
	ctr := cipher.NewCTR(k.block, tag)
	ctr.XORKeyStream(p, ct[sivSize:])
	want := hmacSHA256(k.macKey[:], p)[:sivSize]
	if !hmac.Equal(tag, want) {
		return nil, ErrCorrupt
	}
	return p, nil
}

// EncryptString deterministically encrypts a string.
func (k *Key) EncryptString(s string) []byte {
	return k.EncryptBytes([]byte(s))
}

// DecryptString inverts EncryptString.
func (k *Key) DecryptString(ct []byte) (string, error) {
	p, err := k.DecryptBytes(ct)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func hmacSHA256(key, msg []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(msg)
	return h.Sum(nil)
}
