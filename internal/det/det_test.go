package det

import (
	"bytes"
	"testing"
	"testing/quick"
)

var testKey = MustNewKey([]byte("0123456789abcdef"))

func TestU64Roundtrip(t *testing.T) {
	f := func(v uint64) bool {
		ct := testKey.EncryptU64(v)
		got, err := testKey.DecryptU64(ct)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU64Deterministic(t *testing.T) {
	a := testKey.EncryptU64(42)
	b := testKey.EncryptU64(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same plaintext must yield same ciphertext")
	}
	c := testKey.EncryptU64(43)
	if bytes.Equal(a, c) {
		t.Fatal("different plaintexts must yield different ciphertexts")
	}
}

func TestU64DecryptRejectsCorruption(t *testing.T) {
	ct := testKey.EncryptU64(42)
	ct[3] ^= 0xff
	if _, err := testKey.DecryptU64(ct); err == nil {
		t.Fatal("want error for corrupted ciphertext")
	}
	if _, err := testKey.DecryptU64(ct[:5]); err == nil {
		t.Fatal("want error for short ciphertext")
	}
}

func TestU64DecryptRejectsWrongKey(t *testing.T) {
	other := MustNewKey([]byte("fedcba9876543210"))
	ct := testKey.EncryptU64(42)
	if _, err := other.DecryptU64(ct); err == nil {
		t.Fatal("want error when decrypting with wrong key")
	}
}

func TestBytesRoundtrip(t *testing.T) {
	f := func(p []byte) bool {
		ct := testKey.EncryptBytes(p)
		got, err := testKey.DecryptBytes(ct)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesDeterministic(t *testing.T) {
	a := testKey.EncryptString("Canada")
	b := testKey.EncryptString("Canada")
	if !bytes.Equal(a, b) {
		t.Fatal("same string must yield same ciphertext")
	}
	c := testKey.EncryptString("India")
	if bytes.Equal(a, c) {
		t.Fatal("different strings must yield different ciphertexts")
	}
}

func TestStringRoundtrip(t *testing.T) {
	for _, s := range []string{"", "x", "hello world", "日本語", string(make([]byte, 1000))} {
		ct := testKey.EncryptString(s)
		got, err := testKey.DecryptString(ct)
		if err != nil {
			t.Fatalf("DecryptString(%q): %v", s, err)
		}
		if got != s {
			t.Fatalf("roundtrip %q -> %q", s, got)
		}
	}
}

func TestBytesDecryptRejectsCorruption(t *testing.T) {
	ct := testKey.EncryptString("Canada")
	ct[len(ct)-1] ^= 1
	if _, err := testKey.DecryptBytes(ct); err == nil {
		t.Fatal("want error for corrupted ciphertext")
	}
	if _, err := testKey.DecryptBytes(ct[:4]); err == nil {
		t.Fatal("want error for truncated ciphertext")
	}
}

func TestKeysAreIndependent(t *testing.T) {
	other := MustNewKey([]byte("fedcba9876543210"))
	if bytes.Equal(testKey.EncryptU64(1), other.EncryptU64(1)) {
		t.Fatal("different keys produced the same ciphertext")
	}
}

func TestNewKeyRejectsBadSecret(t *testing.T) {
	if _, err := NewKey([]byte("short")); err == nil {
		t.Fatal("want error for short secret")
	}
}

func TestEqualityPreserved(t *testing.T) {
	// The property the server relies on: ciphertext equality ⇔ plaintext
	// equality under one key.
	f := func(a, b uint64) bool {
		ea, eb := testKey.EncryptU64(a), testKey.EncryptU64(b)
		return bytes.Equal(ea, eb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncryptU64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		testKey.EncryptU64(uint64(i))
	}
}

func BenchmarkEncryptString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		testKey.EncryptString("uservisits.example.com/page")
	}
}
