// Package obs is Seabed's dependency-free observability kit: per-query trace
// spans (trace.go), lock-cheap counters/gauges/histograms with a Prometheus
// text exposition writer (metrics.go, prom.go).
//
// The paper's evaluation (§6.2) attributes tail latency to per-shard skew —
// GC stragglers on individual Spark workers — which is only visible if every
// query can say where its time went, per shard. Spans carry that: the proxy
// mints a trace ID per query, the ID rides the v4 plan frame to each daemon,
// and each daemon ships its own span breakdown (queue wait, map, shuffle,
// reduce) back in the result frame. Metrics cover the fleet view the paper's
// Table 5 style accounting needs: request latency by message type, WAL
// append/fsync cost, bytes moved.
//
// The package deliberately imports nothing from the rest of the module so
// every layer (wire, engine, durable, client) can depend on it.
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (row counts, shard index, …).
type Attr struct {
	Key string
	Val string
}

// Span is one timed operation in a trace tree. The root span is the trace:
// NewTrace mints a trace ID and every descendant inherits it. Spans are safe
// for concurrent use — the scatter path starts one child per shard from
// concurrent goroutines.
type Span struct {
	name    string
	traceID uint64
	start   time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// NewTrace starts a root span with a freshly minted (nonzero) trace ID.
func NewTrace(name string) *Span {
	id := rand.Uint64()
	for id == 0 {
		id = rand.Uint64()
	}
	return NewTraceWithID(name, id)
}

// NewTraceWithID starts a root span under an existing trace ID — the daemon
// side of trace propagation, where the ID arrived in the plan frame.
func NewTraceWithID(name string, traceID uint64) *Span {
	return &Span{name: name, traceID: traceID, start: time.Now()}
}

// Name reports the span's name.
func (s *Span) Name() string { return s.name }

// TraceID reports the trace the span belongs to.
func (s *Span) TraceID() uint64 { return s.traceID }

// Start reports when the span started.
func (s *Span) Start() time.Time { return s.start }

// End closes the span, fixing its duration. End is idempotent; a span left
// open reports the time elapsed so far.
func (s *Span) End() {
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Duration reports the span's duration: fixed if ended, elapsed-so-far if
// still open.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// StartChild starts a child span inheriting the trace ID.
func (s *Span) StartChild(name string) *Span {
	c := &Span{name: name, traceID: s.traceID, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddSpan attaches an already-measured child — a stage whose wall clock was
// observed elsewhere (the engine's internal stage times, a remote daemon's
// breakdown) rather than bracketed by StartChild/End.
func (s *Span) AddSpan(name string, start time.Time, dur time.Duration) *Span {
	c := &Span{name: name, traceID: s.traceID, start: start, dur: dur, ended: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span. A repeated key overwrites the earlier value.
func (s *Span) SetAttr(key, val string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// Attr reads an annotation; "" if absent.
func (s *Span) Attr(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's child list, in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// FindSpan searches the subtree rooted at s for the first span with the given
// name (depth-first, in child order); nil if none.
func (s *Span) FindSpan(name string) *Span {
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if found := c.FindSpan(name); found != nil {
			return found
		}
	}
	return nil
}

// String renders the trace tree, one span per line:
//
//	trace 4f1c9a2b77e01d45
//	query 12.4ms
//	  parse 180µs +0s
//	  run 11.9ms +210µs
//	    shard 0 3.1ms +40µs [rows_scanned=4096]
//
// Durations are rounded for display; +offset is the span's start relative to
// the rendered root.
func (s *Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x\n", s.traceID)
	s.render(&b, 0, s.start)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int, base time.Time) {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.name)
	fmt.Fprintf(b, " %v", dur.Round(10*time.Microsecond))
	if depth > 0 {
		fmt.Fprintf(b, " +%v", s.start.Sub(base).Round(10*time.Microsecond))
	}
	if len(attrs) > 0 {
		b.WriteString(" [")
		for i, a := range attrs {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%s", a.Key, a.Val)
		}
		b.WriteString("]")
	}
	b.WriteString("\n")
	for _, c := range children {
		c.render(b, depth+1, base)
	}
}

// FlatSpan is one span flattened for the wire: position in the tree by depth
// (preorder), start as an offset from the flattened root's start. Offsets stay
// meaningful across machines because they are relative, not absolute clock
// readings.
type FlatSpan struct {
	Depth int
	Name  string
	Start time.Duration
	Dur   time.Duration
	Attrs []Attr
}

// Flatten serializes the subtree rooted at s into preorder FlatSpans with
// starts relative to s's start.
func Flatten(root *Span) []FlatSpan {
	var out []FlatSpan
	root.flatten(&out, 0, root.start)
	return out
}

func (s *Span) flatten(out *[]FlatSpan, depth int, base time.Time) {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	fs := FlatSpan{
		Depth: depth,
		Name:  s.name,
		Start: s.start.Sub(base),
		Dur:   dur,
		Attrs: append([]Attr(nil), s.attrs...),
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	*out = append(*out, fs)
	for _, c := range children {
		c.flatten(out, depth+1, base)
	}
}

// AttachFlat rebuilds flattened spans as descendants of s, mapping offset 0 to
// s's own start time — the client side of trace assembly, grafting a daemon's
// breakdown under the RPC span that carried it. Malformed depth sequences
// (first span deeper than 1, or a jump of more than one level) are clamped to
// the nearest valid ancestor rather than rejected: the server is untrusted and
// a garbled trace must not break the query.
func (s *Span) AttachFlat(spans []FlatSpan) {
	stack := []*Span{s} // stack[d] is the current ancestor at depth d
	for _, fs := range spans {
		d := fs.Depth
		if d < 0 {
			d = 0
		}
		if d >= len(stack) {
			d = len(stack) - 1
		}
		parent := stack[d]
		c := &Span{
			name:    fs.Name,
			traceID: s.traceID,
			start:   s.start.Add(fs.Start),
			dur:     fs.Dur,
			ended:   true,
			attrs:   append([]Attr(nil), fs.Attrs...),
		}
		parent.mu.Lock()
		parent.children = append(parent.children, c)
		parent.mu.Unlock()
		stack = append(stack[:d+1], c)
	}
}

// SlowestChild returns the direct child with the longest duration whose name
// starts with prefix ("" matches all); nil if there are none. This is the
// straggler question — "which shard dominated this query?" — as a method.
func (s *Span) SlowestChild(prefix string) *Span {
	var slowest *Span
	var max time.Duration
	for _, c := range s.Children() {
		if !strings.HasPrefix(c.Name(), prefix) {
			continue
		}
		if d := c.Duration(); slowest == nil || d > max {
			slowest, max = c, d
		}
	}
	return slowest
}

// Context plumbing ---------------------------------------------------------

type ctxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the context's active span, or nil. Layers below the
// proxy (shard scatter, remote RPC, the engine) read this instead of taking a
// span parameter, so interfaces stay trace-agnostic and tracing stays
// optional.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
