package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryInfo is one query as the introspection plane reports it: either a run
// in flight (Done false, Elapsed still growing) or a completed run retained
// by the flight recorder. The JSON field names are part of the debug-plane
// contract (/debug/queries) and must stay stable.
type QueryInfo struct {
	// TraceID is the query's trace ID, rendered as 16 hex digits so JSON
	// consumers never lose precision on a uint64.
	TraceID string `json:"trace_id"`
	// Query is the query fingerprint: the SQL text on the proxy, a compact
	// plan summary on a daemon (which never sees plaintext SQL).
	Query string `json:"query"`
	// Start is when the run began.
	Start time.Time `json:"start"`
	// Elapsed is the run's age (in flight) or final duration (completed).
	Elapsed time.Duration `json:"elapsed"`
	// Rows counts rows delivered so far (streamed runs) or in total.
	Rows uint64 `json:"rows"`
	// Err is the terminal error message; "" for success or in-flight runs.
	Err string `json:"err,omitempty"`
	// Done marks a completed run (a flight-recorder entry).
	Done bool `json:"done"`
	// Slow marks a completed run that crossed the recorder's SlowThreshold;
	// slow entries are pinned preferentially when the ring evicts.
	Slow bool `json:"slow"`
	// Trace is the rendered span tree, when the run carried one.
	Trace string `json:"trace,omitempty"`
}

// TraceIDString renders a trace ID the way the whole debug plane does.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// ActiveQuery is one registered in-flight run: a handle for bumping its row
// count from the streaming sink and finishing it into the flight recorder.
type ActiveQuery struct {
	log      *QueryLog
	traceID  uint64
	query    string
	start    time.Time
	rows     atomic.Uint64
	cancel   context.CancelFunc
	finished atomic.Bool
}

// AddRows bumps the rows-delivered-so-far counter (atomic; called from the
// streaming sink).
func (a *ActiveQuery) AddRows(n uint64) {
	if a != nil {
		a.rows.Add(n)
	}
}

// SetRows overwrites the row count — the non-streaming path's one-shot total.
func (a *ActiveQuery) SetRows(n uint64) {
	if a != nil {
		a.rows.Store(n)
	}
}

// Finish completes the run: it leaves the active set and enters the flight
// recorder ring with the given terminal error (nil for success) and rendered
// trace ("" for none). Safe on a nil receiver and idempotent enough for
// defer-at-every-return use: the second call finds the active entry gone and
// does nothing.
func (a *ActiveQuery) Finish(err error, trace string) {
	if a == nil || a.log == nil {
		return
	}
	a.log.finish(a, err, trace)
}

// QueryLog is the live-query registry plus the trace flight recorder: every
// run registers on start (with its cancel func, so the kill endpoint reaches
// the same per-run context MsgCancel uses), and on finish moves into a
// bounded ring of the last N completed queries. Eviction prefers dropping
// fast queries: entries over SlowThreshold survive until the ring is all
// slow. All methods are safe for concurrent use.
type QueryLog struct {
	mu     sync.Mutex
	slow   time.Duration
	limit  int
	active map[uint64]*ActiveQuery
	ring   []QueryInfo // completion order, oldest first
}

// SetSlowThreshold marks completed runs at or over d as slow (pinned
// preferentially by the ring's eviction). Zero — the default — pins nothing.
// Safe to call at any time; runs finishing afterwards use the new value.
func (q *QueryLog) SetSlowThreshold(d time.Duration) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.slow = d
	q.mu.Unlock()
}

// DefaultFlightRecorderSize is the ring capacity a daemon or proxy gets when
// it doesn't choose one.
const DefaultFlightRecorderSize = 128

// NewQueryLog returns a registry whose flight recorder retains at most limit
// completed queries (DefaultFlightRecorderSize if limit <= 0).
func NewQueryLog(limit int) *QueryLog {
	if limit <= 0 {
		limit = DefaultFlightRecorderSize
	}
	return &QueryLog{limit: limit, active: make(map[uint64]*ActiveQuery)}
}

// Start registers an in-flight run. cancel may be nil (the run is then
// visible but not killable). A second run under the same trace ID replaces
// the first in the active set — latest wins, and the replaced run still
// records on Finish.
func (q *QueryLog) Start(traceID uint64, query string, cancel context.CancelFunc) *ActiveQuery {
	if q == nil {
		return nil // nil registry (zero-value host): run is simply untracked
	}
	a := &ActiveQuery{log: q, traceID: traceID, query: query, start: time.Now(), cancel: cancel}
	q.mu.Lock()
	q.active[traceID] = a
	q.mu.Unlock()
	return a
}

func (q *QueryLog) finish(a *ActiveQuery, err error, trace string) {
	if !a.finished.CompareAndSwap(false, true) {
		return // double Finish (defer-at-every-return)
	}
	info := QueryInfo{
		TraceID: TraceIDString(a.traceID),
		Query:   a.query,
		Start:   a.start,
		Elapsed: time.Since(a.start),
		Rows:    a.rows.Load(),
		Done:    true,
		Trace:   trace,
	}
	if err != nil {
		info.Err = err.Error()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if cur, ok := q.active[a.traceID]; ok && cur == a {
		delete(q.active, a.traceID)
	}
	info.Slow = q.slow > 0 && info.Elapsed >= q.slow
	q.ring = append(q.ring, info)
	if len(q.ring) <= q.limit {
		return
	}
	// Evict the oldest non-slow entry; if every entry is slow, the oldest
	// goes — the ring never exceeds limit regardless of pinning.
	victim := 0
	for i := range q.ring {
		if !q.ring[i].Slow {
			victim = i
			break
		}
	}
	q.ring = append(q.ring[:victim], q.ring[victim+1:]...)
}

// Kill cancels the in-flight run with the given trace ID through its
// registered cancel func. It reports whether a killable run was found; the
// run still finishes through its normal path (recording context.Canceled).
func (q *QueryLog) Kill(traceID uint64) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	a := q.active[traceID]
	q.mu.Unlock()
	if a == nil || a.cancel == nil {
		return false
	}
	a.cancel()
	return true
}

// Active snapshots the in-flight runs, oldest first.
func (q *QueryLog) Active() []QueryInfo {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	as := make([]*ActiveQuery, 0, len(q.active))
	for _, a := range q.active {
		as = append(as, a)
	}
	q.mu.Unlock()
	sort.Slice(as, func(i, j int) bool { return as[i].start.Before(as[j].start) })
	out := make([]QueryInfo, len(as))
	for i, a := range as {
		out[i] = QueryInfo{
			TraceID: TraceIDString(a.traceID),
			Query:   a.query,
			Start:   a.start,
			Elapsed: time.Since(a.start),
			Rows:    a.rows.Load(),
		}
	}
	return out
}

// Recent snapshots the flight recorder, oldest completion first.
func (q *QueryLog) Recent() []QueryInfo {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]QueryInfo(nil), q.ring...)
}

// ActiveCount reports the number of in-flight runs (the
// seabed_active_queries gauge).
func (q *QueryLog) ActiveCount() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.active)
}

// RecordedCount reports the number of retained completed traces (the
// seabed_flight_recorder_traces gauge).
func (q *QueryLog) RecordedCount() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ring)
}
