package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. All mutation is a single
// atomic add — safe on the request hot path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (CAS loop; gauges are off the hot path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// per-bucket atomic counters plus an atomic sum, no locks, no allocation per
// observation. Buckets are upper bounds in ascending order; observations above
// the last bound land only in the implicit +Inf bucket.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-added
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (~16) and the scan is branch-cheap;
	// a binary search buys nothing at this size.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	// count before bucket: the scraper reads buckets first and count last, so
	// this order keeps the rendered +Inf bucket (= count) ≥ every cumulative
	// finite bucket even mid-observation.
	h.count.Add(1)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the Prometheus convention
// for latency series.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the default bucket layout for latency histograms: 100µs
// to ~100s, roughly ×3 per step — wide enough to catch both a kernel-path
// batch and a cold recovery replay without per-series tuning.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
		0.1, 0.3, 1, 3, 10, 30, 100,
	}
}

// SizeBuckets is the default bucket layout for byte-size histograms: 256 B to
// 1 GiB, ×8 per step.
func SizeBuckets() []float64 {
	return []float64{256, 2048, 16384, 131072, 1048576, 8388608, 67108864, 536870912}
}

// Labels name a metric's dimensions ({shard="2"}, {type="run"}). Instruments
// are registered once at startup, so the map allocation never touches a hot
// path.
type Labels map[string]string

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for an instrument
// that already exists (same name, same labels) returns the existing one, so
// layers can share a registry without coordinating ownership.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	fams  map[string]*family
	order []*family
}

type family struct {
	name, help, typ string
	metrics         []*metric
}

type metric struct {
	labels []Attr // sorted by key
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // counterfunc/gaugefunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric), fams: make(map[string]*family)}
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.register(name, help, "counter", labels, func() *metric { return &metric{ctr: &Counter{}} })
	return m.ctr
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.register(name, help, "gauge", labels, func() *metric { return &metric{gauge: &Gauge{}} })
	return m.gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape time
// — the bridge for counts an existing subsystem already tracks (server.Stats'
// atomics) without double-counting.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, func() *metric { return &metric{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, func() *metric { return &metric{fn: fn} })
}

// Histogram registers (or finds) a histogram. A nil bucket list gets
// LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets()
	}
	m := r.register(name, help, "histogram", labels, func() *metric {
		h := &Histogram{upper: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(h.upper)+1)
		return &metric{hist: h}
	})
	return m.hist
}

func (r *Registry) register(name, help, typ string, labels Labels, mk func() *metric) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	attrs := make([]Attr, 0, len(labels))
	for k, v := range labels {
		if !validName(k) || k == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", k, name))
		}
		attrs = append(attrs, Attr{Key: k, Val: v})
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	key := name + renderLabels(attrs, "", 0)

	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if r.fams[name].typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, r.fams[name].typ))
		}
		return m
	}
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
	}
	m := mk()
	m.labels = attrs
	f.metrics = append(f.metrics, m)
	r.byKey[key] = m
	return m
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels formats a label block; mode 1 appends an le="bound" pair for
// histogram bucket lines (empty output only when there is nothing to render).
func renderLabels(attrs []Attr, le string, mode int) string {
	if len(attrs) == 0 && mode == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(a.Val))
		b.WriteByte('"')
	}
	if mode != 0 {
		if len(attrs) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family list; instrument reads are atomic and need no lock.
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		metrics := append([]*metric(nil), f.metrics...)
		r.mu.Unlock()
		for _, m := range metrics {
			switch {
			case m.ctr != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(m.labels, "", 0), formatFloat(float64(m.ctr.Value())))
			case m.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(m.labels, "", 0), formatFloat(m.gauge.Value()))
			case m.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(m.labels, "", 0), formatFloat(m.fn()))
			case m.hist != nil:
				h := m.hist
				cum := uint64(0)
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(m.labels, formatFloat(ub), 1), cum)
				}
				// The +Inf bucket must equal _count; read count first so a
				// racing Observe can't make +Inf smaller than _count.
				count := h.count.Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(m.labels, "+Inf", 1), count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(m.labels, "", 0), formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(m.labels, "", 0), count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
