package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks data against the Prometheus text exposition
// format (version 0.0.4) and returns the metric families it declares
// (name → type). It verifies:
//
//   - every line is a well-formed comment or sample (name{labels} value [ts])
//   - each family has at most one # TYPE, appearing before its samples
//   - sample names belong to a declared family (histogram samples may use the
//     _bucket/_sum/_count suffixes)
//   - counter and histogram sample values are non-negative
//   - histogram buckets carry an le label, are cumulative (non-decreasing in
//     le order), include le="+Inf", and the +Inf bucket equals _count
//
// The CI observability job and the debug-endpoint tests share this instead of
// each hand-rolling a scrape parser.
func ValidateExposition(data []byte) (map[string]string, error) {
	families := make(map[string]string)
	sampled := make(map[string]bool) // family name → saw a sample
	type bucketKey struct{ name, labels string }
	buckets := make(map[bucketKey][]lePoint)
	counts := make(map[bucketKey]float64)

	for lineNo, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, families, sampled); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := familyOf(s.name, families)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, s.name)
		}
		sampled[fam] = true
		typ := families[fam]
		if (typ == "counter" || typ == "histogram") && s.value < 0 {
			return nil, fmt.Errorf("line %d: %s %s has negative value %v", lineNo, typ, s.name, s.value)
		}
		if typ == "histogram" {
			key := bucketKey{fam, s.labelsWithout("le")}
			switch suffix {
			case "_bucket":
				le, ok := s.label("le")
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, s.name)
				}
				bound, err := parseLe(le)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
				buckets[key] = append(buckets[key], lePoint{bound, s.value})
			case "_count":
				counts[key] = s.value
			case "_sum", "":
				// _sum can be any float; a bare histogram-family sample name
				// (no suffix) is invalid.
				if suffix == "" {
					return nil, fmt.Errorf("line %d: histogram family %s sample lacks _bucket/_sum/_count suffix", lineNo, fam)
				}
			}
		}
	}

	for key, pts := range buckets {
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
		hasInf := false
		for i, p := range pts {
			if i > 0 && p.value < pts[i-1].value {
				return nil, fmt.Errorf("histogram %s%s buckets not cumulative at le=%v", key.name, key.labels, p.le)
			}
			if math.IsInf(p.le, 1) {
				hasInf = true
				if c, ok := counts[key]; ok && c != p.value {
					return nil, fmt.Errorf("histogram %s%s +Inf bucket %v != _count %v", key.name, key.labels, p.value, c)
				}
			}
		}
		if !hasInf {
			return nil, fmt.Errorf("histogram %s%s missing le=\"+Inf\" bucket", key.name, key.labels)
		}
	}
	return families, nil
}

type lePoint struct{ le, value float64 }

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

func validateComment(line string, families map[string]string, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := families[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s appears after its samples", name)
		}
		families[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family, honoring histogram
// suffixes: seabed_run_seconds_bucket belongs to seabed_run_seconds.
func familyOf(name string, families map[string]string) (fam, suffix string) {
	if _, ok := families[name]; ok {
		return name, ""
	}
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name {
			if t, ok := families[base]; ok && (t == "histogram" || t == "summary") {
				return base, sfx
			}
		}
	}
	return "", ""
}

type sample struct {
	name   string
	labels []Attr
	value  float64
}

func (s *sample) label(key string) (string, bool) {
	for _, a := range s.labels {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// labelsWithout renders the sample's labels minus one key, sorted — the
// grouping key that joins a histogram's _bucket series to its _count.
func (s *sample) labelsWithout(drop string) string {
	attrs := make([]Attr, 0, len(s.labels))
	for _, a := range s.labels {
		if a.Key != drop {
			attrs = append(attrs, a)
		}
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	return renderLabels(attrs, "", 0)
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (*sample, error) {
	s := &sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return nil, fmt.Errorf("bad sample line %q", line)
	}
	s.name = line[:i]
	rest := line[i:]

	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return nil, fmt.Errorf("sample %s: %w", s.name, err)
		}
		s.labels = labels
		rest = rest[end:]
	}

	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("sample %s: bad value section %q", s.name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return nil, fmt.Errorf("sample %s: %w", s.name, err)
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("sample %s: bad timestamp %q", s.name, fields[1])
		}
	}
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isNameChar(c byte, first bool) bool {
	alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	return alpha || (!first && c >= '0' && c <= '9')
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{'; returns the
// index just past the closing brace.
func parseLabels(s string) (int, []Attr, error) {
	var labels []Attr
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && isNameChar(s[j], j == i) {
			j++
		}
		if j == i || j >= len(s) || s[j] != '=' {
			return 0, nil, fmt.Errorf("bad label block at %q", s[i:])
		}
		key := s[i:j]
		j++ // '='
		if j >= len(s) || s[j] != '"' {
			return 0, nil, fmt.Errorf("label %s: unquoted value", key)
		}
		j++
		var val strings.Builder
		for {
			if j >= len(s) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", key)
			}
			c := s[j]
			if c == '"' {
				j++
				break
			}
			if c == '\\' {
				j++
				if j >= len(s) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: bad escape \\%c", key, s[j])
				}
				j++
				continue
			}
			val.WriteByte(c)
			j++
		}
		labels = append(labels, Attr{Key: key, Val: val.String()})
		i = j
	}
}
