package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	root := NewTrace("query")
	if root.TraceID() == 0 {
		t.Fatal("trace ID should be nonzero")
	}
	parse := root.StartChild("parse")
	parse.End()
	run := root.StartChild("run")
	run.SetAttr("shards", "3")
	run.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "parse" || kids[1].Name() != "run" {
		t.Fatalf("children = %v", kids)
	}
	if kids[1].TraceID() != root.TraceID() {
		t.Fatal("child did not inherit trace ID")
	}
	if got := run.Attr("shards"); got != "3" {
		t.Fatalf("attr shards = %q", got)
	}
	if root.FindSpan("run") != run {
		t.Fatal("FindSpan missed run")
	}
	if root.FindSpan("absent") != nil {
		t.Fatal("FindSpan invented a span")
	}
	s := root.String()
	if !strings.Contains(s, "query") || !strings.Contains(s, "parse") || !strings.Contains(s, "shards=3") {
		t.Fatalf("render missing content:\n%s", s)
	}
}

func TestSpanConcurrent(t *testing.T) {
	root := NewTrace("scatter")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("shard")
			c.SetAttr("k", "v")
			c.End()
			_ = root.String()
		}()
	}
	wg.Wait()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

func TestFlattenAttach(t *testing.T) {
	root := NewTraceWithID("daemon", 42)
	m := root.AddSpan("map", root.Start().Add(time.Millisecond), 5*time.Millisecond)
	m.SetAttr("rows", "100")
	sub := m.StartChild("spill")
	sub.End()
	root.AddSpan("reduce", root.Start().Add(7*time.Millisecond), time.Millisecond)
	root.End()

	flat := Flatten(root)
	if len(flat) != 4 {
		t.Fatalf("flat = %d spans, want 4", len(flat))
	}
	if flat[0].Depth != 0 || flat[1].Depth != 1 || flat[2].Depth != 2 || flat[3].Depth != 1 {
		t.Fatalf("depths = %v", []int{flat[0].Depth, flat[1].Depth, flat[2].Depth, flat[3].Depth})
	}
	if flat[1].Start != time.Millisecond || flat[1].Dur != 5*time.Millisecond {
		t.Fatalf("map offset/dur = %v/%v", flat[1].Start, flat[1].Dur)
	}

	// Reattach under a client-side span and check the tree shape survives.
	client := NewTraceWithID("rpc", 42)
	client.AttachFlat(flat)
	d := client.FindSpan("daemon")
	if d == nil {
		t.Fatal("daemon span lost")
	}
	mp := d.FindSpan("map")
	if mp == nil || mp.Attr("rows") != "100" || mp.Duration() != 5*time.Millisecond {
		t.Fatalf("map span mangled: %v", mp)
	}
	if mp.FindSpan("spill") == nil {
		t.Fatal("nested spill span lost")
	}
}

func TestAttachFlatHostileDepths(t *testing.T) {
	// The server is untrusted: garbled depth sequences must clamp, not panic.
	root := NewTraceWithID("rpc", 1)
	root.AttachFlat([]FlatSpan{
		{Depth: 5, Name: "a"},
		{Depth: -3, Name: "b"},
		{Depth: 2, Name: "c"},
	})
	if root.FindSpan("a") == nil || root.FindSpan("b") == nil || root.FindSpan("c") == nil {
		t.Fatalf("spans dropped:\n%s", root.String())
	}
}

func TestSlowestChild(t *testing.T) {
	root := NewTraceWithID("run", 7)
	root.AddSpan("shard 0", root.Start(), 2*time.Millisecond)
	root.AddSpan("shard 1", root.Start(), 9*time.Millisecond)
	root.AddSpan("shard 2", root.Start(), 3*time.Millisecond)
	root.AddSpan("merge", root.Start(), 50*time.Millisecond)
	sl := root.SlowestChild("shard")
	if sl == nil || sl.Name() != "shard 1" {
		t.Fatalf("slowest = %v", sl)
	}
}

func TestContextPlumbing(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no span")
	}
	sp := NewTrace("q")
	ctx := ContextWithSpan(context.Background(), sp)
	if SpanFromContext(ctx) != sp {
		t.Fatal("span lost in context")
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	want := 0.05 + 0.5 + 5 + 50 + 0.02
	if diff := h.Sum() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("seabed_x_total", "h", Labels{"type": "run"})
	b := r.Counter("seabed_x_total", "h", Labels{"type": "run"})
	if a != b {
		t.Fatal("duplicate registration returned a new counter")
	}
	c := r.Counter("seabed_x_total", "h", Labels{"type": "append"})
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash did not panic")
		}
	}()
	r.Gauge("seabed_x_total", "h", nil)
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("seabed_bytes_in_total", "bytes received", nil).Add(123)
	r.Gauge("seabed_tables", "registered tables", Labels{"shard": "0"}).Set(4)
	r.GaugeFunc("seabed_uptime_seconds", "uptime", nil, func() float64 { return 1.5 })
	h := r.Histogram("seabed_request_seconds", "request latency", nil, Labels{"type": "run"})
	h.Observe(0.004)
	h.Observe(2)
	hQuote := r.Gauge("seabed_weird", "label escaping", Labels{"path": "a\"b\\c\nd"})
	hQuote.Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ValidateExposition([]byte(b.String()))
	if err != nil {
		t.Fatalf("self-produced exposition invalid: %v\n%s", err, b.String())
	}
	for name, typ := range map[string]string{
		"seabed_bytes_in_total":  "counter",
		"seabed_tables":          "gauge",
		"seabed_uptime_seconds":  "gauge",
		"seabed_request_seconds": "histogram",
		"seabed_weird":           "gauge",
	} {
		if fams[name] != typ {
			t.Fatalf("family %s = %q, want %q (all: %v)", name, fams[name], typ, fams)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"undeclared sample": "seabed_x 1\n",
		"bad value":         "# TYPE a gauge\na one\n",
		"bad type":          "# TYPE a rainbow\n",
		"type after sample": "# TYPE a gauge\na 1\n# TYPE a gauge\n",
		"negative counter":  "# TYPE a counter\na -1\n",
		"unterminated label": "# TYPE a gauge\n" +
			`a{x="y 1` + "\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"+Inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
	}
	for name, in := range cases {
		if _, err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	ok := "# HELP h latency\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n" +
		"# TYPE g gauge\ng{a=\"b\",c=\"d\"} 1 1700000000000\n"
	if _, err := ValidateExposition([]byte(ok)); err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "h", nil, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.01)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
		}
		if _, err := ValidateExposition([]byte(b.String())); err != nil {
			t.Errorf("mid-flight exposition invalid: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
