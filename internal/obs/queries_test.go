package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderRingBound is the ring property test: however many runs
// complete (N + k for assorted k), the recorder retains at most N, the
// retained set is the newest completions, and slow entries survive eviction
// while any fast entry remains.
func TestFlightRecorderRingBound(t *testing.T) {
	const limit = 8
	for _, extra := range []int{0, 1, 3, 5 * limit} {
		q := NewQueryLog(limit)
		total := limit + extra
		for i := 0; i < total; i++ {
			q.Start(uint64(i+1), fmt.Sprintf("q%d", i), nil).Finish(nil, "")
		}
		recent := q.Recent()
		if len(recent) > limit {
			t.Fatalf("extra=%d: ring holds %d entries, limit %d", extra, len(recent), limit)
		}
		if extra == 0 && len(recent) != limit {
			t.Fatalf("ring evicted below its limit: %d of %d", len(recent), limit)
		}
		// With no slow pinning, eviction is strictly oldest-first: the ring
		// holds exactly the last `limit` completions in order.
		for i, info := range recent {
			want := TraceIDString(uint64(total - limit + i + 1))
			if info.TraceID != want {
				t.Fatalf("extra=%d: ring[%d] = %s, want %s", extra, i, info.TraceID, want)
			}
		}
		if q.RecordedCount() != len(recent) {
			t.Fatalf("RecordedCount %d != len(Recent) %d", q.RecordedCount(), len(recent))
		}
	}
}

// TestFlightRecorderPinsSlow pins the slow-query preference: completed runs
// over the threshold survive eviction while fast entries remain, and the
// ring still never exceeds its limit even when everything is slow.
func TestFlightRecorderPinsSlow(t *testing.T) {
	const limit = 4
	q := NewQueryLog(limit)
	q.SetSlowThreshold(time.Nanosecond) // everything that follows is "slow"

	slow := q.Start(1, "slow", nil)
	time.Sleep(time.Microsecond)
	slow.Finish(errors.New("deadline"), "trace-text")

	q.SetSlowThreshold(time.Hour) // everything that follows is "fast"
	for i := 0; i < 3*limit; i++ {
		q.Start(uint64(100+i), "fast", nil).Finish(nil, "")
	}
	recent := q.Recent()
	if len(recent) != limit {
		t.Fatalf("ring holds %d, want %d", len(recent), limit)
	}
	if recent[0].TraceID != TraceIDString(1) || !recent[0].Slow {
		t.Fatalf("slow entry evicted: ring starts with %+v", recent[0])
	}
	if recent[0].Err != "deadline" || recent[0].Trace != "trace-text" {
		t.Fatalf("slow entry lost its error/trace: %+v", recent[0])
	}

	// All-slow ring: pinning never overrides the size bound.
	q2 := NewQueryLog(limit)
	q2.SetSlowThreshold(time.Nanosecond)
	for i := 0; i < 3*limit; i++ {
		a := q2.Start(uint64(i+1), "s", nil)
		time.Sleep(time.Microsecond)
		a.Finish(nil, "")
	}
	if n := q2.RecordedCount(); n != limit {
		t.Fatalf("all-slow ring holds %d, want %d", n, limit)
	}
}

// TestQueryLogConcurrent hammers the registry from racing recorders, killers,
// and snapshotters — the -race gate for the debug plane's shared state.
func TestQueryLogConcurrent(t *testing.T) {
	const limit = 16
	q := NewQueryLog(limit)
	q.SetSlowThreshold(time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(w*1000 + i + 1)
				_, cancel := context.WithCancel(context.Background())
				a := q.Start(id, "concurrent", cancel)
				a.AddRows(3)
				if i%3 == 0 {
					q.Kill(id)
				}
				a.Finish(nil, "")
				a.Finish(nil, "") // double Finish must stay idempotent
				cancel()
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				q.Active()
				q.Recent()
				q.ActiveCount()
				q.RecordedCount()
			}
		}()
	}
	wg.Wait()
	if n := q.ActiveCount(); n != 0 {
		t.Fatalf("%d runs still active after all finished", n)
	}
	if n := q.RecordedCount(); n != limit {
		t.Fatalf("ring holds %d after 1600 completions, want %d", n, limit)
	}
	// Each completed run recorded its rows.
	for _, info := range q.Recent() {
		if info.Rows != 3 || !info.Done {
			t.Fatalf("recorded entry corrupt: %+v", info)
		}
	}
}

// TestQueryLogNilSafety pins the zero-value-host contract: a nil registry
// (a Proxy built without NewProxy, as some tests do) must no-op everywhere
// instead of panicking.
func TestQueryLogNilSafety(t *testing.T) {
	var q *QueryLog
	q.SetSlowThreshold(time.Second)
	a := q.Start(1, "x", nil)
	a.AddRows(1)
	a.SetRows(2)
	a.Finish(nil, "")
	if q.Kill(1) || q.Active() != nil || q.Recent() != nil || q.ActiveCount() != 0 || q.RecordedCount() != 0 {
		t.Fatal("nil QueryLog not inert")
	}
}
