package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// QueriesPayload is the /debug/queries JSON document: the live-query
// registry's active runs plus the flight recorder's retained traces.
type QueriesPayload struct {
	// Active lists in-flight runs, oldest first.
	Active []QueryInfo `json:"active"`
	// Recent lists retained completed runs, oldest completion first.
	Recent []QueryInfo `json:"recent"`
}

// ServeQueries is the /debug/queries handler: one JSON snapshot of active
// runs and the flight recorder. Both the daemon's and the proxy's debug
// planes mount it, so operators read the same shape everywhere.
func (q *QueryLog) ServeQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(QueriesPayload{Active: q.Active(), Recent: q.Recent()}) //nolint:errcheck // best-effort debug endpoint
}

// ServeKill is the /debug/queries/kill?trace=<16-hex> handler: it cancels
// the named in-flight run through its registered per-run cancel func — the
// same context a wire MsgCancel reaches — and reports what happened as JSON.
// 400 for a malformed trace ID, 404 when no killable run holds it.
func (q *QueryLog) ServeKill(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	id, err := strconv.ParseUint(r.URL.Query().Get("trace"), 16, 64)
	if err != nil || id == 0 {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{"killed": false, "error": "trace must be a nonzero hex trace ID"}) //nolint:errcheck
		return
	}
	if !q.Kill(id) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{"killed": false, "error": "no killable run with that trace ID"}) //nolint:errcheck
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"killed": true, "trace_id": TraceIDString(id)}) //nolint:errcheck
}
