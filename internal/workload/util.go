package workload

import (
	"math/rand"
	"sync"

	"seabed/internal/sqlparse"
)

func seededRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

var (
	parseMu    sync.Mutex
	parseCache = map[string]*sqlparse.Query{}
)

// parseCached parses SQL with memoization; log classification parses the
// same few query shapes hundreds of thousands of times.
func parseCached(src string) (*sqlparse.Query, error) {
	parseMu.Lock()
	q, ok := parseCache[src]
	parseMu.Unlock()
	if ok {
		return q, nil
	}
	q, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	parseMu.Lock()
	parseCache[src] = q
	parseMu.Unlock()
	return q, nil
}
