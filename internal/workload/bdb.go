package workload

import (
	"fmt"
	"math/rand"

	"seabed/internal/schema"
	"seabed/internal/store"
)

// The AmpLab Big Data Benchmark (§6.7): Rankings and UserVisits tables plus
// the ten queries Q1A–Q4. Substring search (Q2) is handled the way the paper
// handled it — derived prefix columns matched under deterministic encryption
// — and Q4's external-script phase is modeled as its phase-2 aggregation
// table.

// BDB bundles the generated benchmark.
type BDB struct {
	Rankings   *store.Table
	UserVisits *store.Table
	Q4Phase2   *store.Table

	RankingsSchema   *schema.Table
	UserVisitsSchema *schema.Table
	Q4Phase2Schema   *schema.Table
}

// BDBConfig scales the benchmark.
type BDBConfig struct {
	// Pages is the Rankings row count (paper: 90M).
	Pages int
	// Visits is the UserVisits row count (paper: 775M).
	Visits int
	// Q4Rows is the Q4 phase-2 row count (paper: 194M).
	Q4Rows int
	Seed   int64
}

// GenerateBDB builds the benchmark tables.
func GenerateBDB(cfg BDBConfig) (*BDB, error) {
	if cfg.Pages < 1 || cfg.Visits < 1 || cfg.Q4Rows < 1 {
		return nil, fmt.Errorf("workload: BDB row counts must be positive: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Rankings: pageURL, pageRank, avgDuration.
	urls := make([]string, cfg.Pages)
	ranks := make([]uint64, cfg.Pages)
	durs := make([]uint64, cfg.Pages)
	for i := range urls {
		urls[i] = fmt.Sprintf("url%d.example.com/page", i)
		// Power-law-ish pageRank in [0, 10000).
		r := rng.Float64()
		ranks[i] = uint64(10000 * r * r * r)
		durs[i] = uint64(rng.Intn(300))
	}
	rankings, err := store.Build("rankings", []store.Column{
		{Name: "pageURL", Kind: store.Str, Str: urls},
		{Name: "pageRank", Kind: store.U64, U64: ranks},
		{Name: "avgDuration", Kind: store.U64, U64: durs},
	}, 1)
	if err != nil {
		return nil, err
	}

	// UserVisits: sourceIP (+ derived prefixes), destURL, visitDate,
	// adRevenue, userAgent, countryCode, languageCode, searchWord, duration.
	n := cfg.Visits
	srcIP := make([]string, n)
	pfx8 := make([]string, n)
	pfx10 := make([]string, n)
	pfx12 := make([]string, n)
	dest := make([]string, n)
	date := make([]uint64, n)
	rev := make([]uint64, n)
	agent := make([]string, n)
	country := make([]string, n)
	lang := make([]string, n)
	word := make([]string, n)
	dur := make([]uint64, n)
	agents := []string{"Mozilla", "Chrome", "Safari", "Edge", "curl"}
	countries := []string{"USA", "IND", "CHN", "BRA", "GBR", "DEU", "JPN", "FRA"}
	langs := []string{"en", "hi", "zh", "pt", "de", "ja", "fr"}
	words := []string{"shoes", "phone", "travel", "books", "music", "sports"}
	for i := 0; i < n; i++ {
		ip := fmt.Sprintf("%d.%d.%d.%d", rng.Intn(224)+1, rng.Intn(256), rng.Intn(256), rng.Intn(256))
		srcIP[i] = ip
		pfx8[i] = prefix(ip, 8)
		pfx10[i] = prefix(ip, 10)
		pfx12[i] = prefix(ip, 12)
		dest[i] = urls[rng.Intn(cfg.Pages)]
		date[i] = uint64(rng.Intn(365)) // day index within a year
		rev[i] = uint64(rng.Intn(1000))
		agent[i] = agents[rng.Intn(len(agents))]
		country[i] = countries[rng.Intn(len(countries))]
		lang[i] = langs[rng.Intn(len(langs))]
		word[i] = words[rng.Intn(len(words))]
		dur[i] = uint64(rng.Intn(1000))
	}
	visits, err := store.Build("uservisits", []store.Column{
		{Name: "sourceIP", Kind: store.Str, Str: srcIP},
		{Name: "srcPrefix8", Kind: store.Str, Str: pfx8},
		{Name: "srcPrefix10", Kind: store.Str, Str: pfx10},
		{Name: "srcPrefix12", Kind: store.Str, Str: pfx12},
		{Name: "destURL", Kind: store.Str, Str: dest},
		{Name: "visitDate", Kind: store.U64, U64: date},
		{Name: "adRevenue", Kind: store.U64, U64: rev},
		{Name: "userAgent", Kind: store.Str, Str: agent},
		{Name: "countryCode", Kind: store.Str, Str: country},
		{Name: "languageCode", Kind: store.Str, Str: lang},
		{Name: "searchWord", Kind: store.Str, Str: word},
		{Name: "duration", Kind: store.U64, U64: dur},
	}, 1)
	if err != nil {
		return nil, err
	}

	// Q4 phase 2: (dstKey, hits) pairs emitted by the external script's
	// first phase; the benchmark aggregates counts per key.
	keys := make([]string, cfg.Q4Rows)
	hits := make([]uint64, cfg.Q4Rows)
	for i := range keys {
		keys[i] = fmt.Sprintf("url%d.example.com", rng.Intn(cfg.Pages))
		hits[i] = uint64(rng.Intn(10) + 1)
	}
	q4, err := store.Build("q4phase2", []store.Column{
		{Name: "dstKey", Kind: store.Str, Str: keys},
		{Name: "hits", Kind: store.U64, U64: hits},
	}, 1)
	if err != nil {
		return nil, err
	}

	return &BDB{
		Rankings:   rankings,
		UserVisits: visits,
		Q4Phase2:   q4,
		RankingsSchema: &schema.Table{Name: "rankings", Columns: []schema.Column{
			{Name: "pageURL", Type: schema.String, Sensitive: true},
			{Name: "pageRank", Type: schema.Int64, Sensitive: true},
			{Name: "avgDuration", Type: schema.Int64, Sensitive: true},
		}},
		UserVisitsSchema: &schema.Table{Name: "uservisits", Columns: []schema.Column{
			{Name: "sourceIP", Type: schema.String, Sensitive: true},
			{Name: "srcPrefix8", Type: schema.String, Sensitive: true},
			{Name: "srcPrefix10", Type: schema.String, Sensitive: true},
			{Name: "srcPrefix12", Type: schema.String, Sensitive: true},
			{Name: "destURL", Type: schema.String, Sensitive: true},
			{Name: "visitDate", Type: schema.Int64, Sensitive: true},
			{Name: "adRevenue", Type: schema.Int64, Sensitive: true},
			{Name: "userAgent", Type: schema.String, Sensitive: false},
			{Name: "countryCode", Type: schema.String, Sensitive: false},
			{Name: "languageCode", Type: schema.String, Sensitive: false},
			{Name: "searchWord", Type: schema.String, Sensitive: false},
			{Name: "duration", Type: schema.Int64, Sensitive: true},
		}},
		Q4Phase2Schema: &schema.Table{Name: "q4phase2", Columns: []schema.Column{
			{Name: "dstKey", Type: schema.String, Sensitive: true},
			{Name: "hits", Type: schema.Int64, Sensitive: true},
		}},
	}, nil
}

func prefix(s string, n int) string {
	if len(s) < n {
		return s
	}
	return s[:n]
}

// BDBQuery identifies one benchmark query.
type BDBQuery struct {
	Name string
	SQL  string
	// ExpectedGroups feeds the group-inflation heuristic.
	ExpectedGroups int
}

// BDBQueries returns the ten queries (§6.7), with the paper's
// simplifications already applied.
func BDBQueries() []BDBQuery {
	return []BDBQuery{
		{Name: "Q1A", SQL: "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000"},
		{Name: "Q1B", SQL: "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100"},
		{Name: "Q1C", SQL: "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 10"},
		{Name: "Q2A", SQL: "SELECT srcPrefix8, SUM(adRevenue) FROM uservisits GROUP BY srcPrefix8"},
		{Name: "Q2B", SQL: "SELECT srcPrefix10, SUM(adRevenue) FROM uservisits GROUP BY srcPrefix10"},
		{Name: "Q2C", SQL: "SELECT srcPrefix12, SUM(adRevenue) FROM uservisits GROUP BY srcPrefix12"},
		{Name: "Q3A", SQL: "SELECT sourceIP, SUM(adRevenue) FROM uservisits uv JOIN rankings r ON uv.destURL = r.pageURL WHERE visitDate < 30 GROUP BY sourceIP"},
		{Name: "Q3B", SQL: "SELECT sourceIP, SUM(adRevenue) FROM uservisits uv JOIN rankings r ON uv.destURL = r.pageURL WHERE visitDate < 120 GROUP BY sourceIP"},
		{Name: "Q3C", SQL: "SELECT sourceIP, SUM(adRevenue) FROM uservisits uv JOIN rankings r ON uv.destURL = r.pageURL WHERE visitDate < 365 GROUP BY sourceIP"},
		{Name: "Q4", SQL: "SELECT dstKey, COUNT(*) FROM q4phase2 GROUP BY dstKey"},
	}
}

// BDBSamples returns the sample query sets per table, for planning.
func BDBSamples() map[string][]string {
	rankings := []string{
		"SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000",
		// The Q3 join marks pageURL as a join key in rankings' plan too.
		"SELECT sourceIP, SUM(adRevenue) FROM uservisits uv JOIN rankings r ON uv.destURL = r.pageURL WHERE visitDate < 30 GROUP BY sourceIP",
	}
	visits := []string{
		"SELECT srcPrefix8, SUM(adRevenue) FROM uservisits GROUP BY srcPrefix8",
		"SELECT srcPrefix10, SUM(adRevenue) FROM uservisits GROUP BY srcPrefix10",
		"SELECT srcPrefix12, SUM(adRevenue) FROM uservisits GROUP BY srcPrefix12",
		"SELECT sourceIP, SUM(adRevenue) FROM uservisits uv JOIN rankings r ON uv.destURL = r.pageURL WHERE visitDate < 30 GROUP BY sourceIP",
	}
	q4 := []string{
		"SELECT dstKey, COUNT(*) FROM q4phase2 GROUP BY dstKey",
	}
	return map[string][]string{"rankings": rankings, "uservisits": visits, "q4phase2": q4}
}
