// Package workload generates the datasets and query sets of Seabed's
// evaluation (§5, §6): the synthetic microbenchmark tables, the AmpLab Big
// Data Benchmark (Rankings / UserVisits), a synthetic stand-in for the
// proprietary advertising-analytics application, the month-long ad-analytics
// query log, and the MDX function catalog of Appendix B.
//
// Every generator is seeded and deterministic, so experiments are exactly
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"seabed/internal/schema"
	"seabed/internal/store"
)

// SyntheticSchema describes the §6.1 microbenchmark table: one sensitive
// measure v, one group dimension g (cardinality given), and one range
// dimension o.
func SyntheticSchema(groups int) *schema.Table {
	return &schema.Table{
		Name: "synth",
		Columns: []schema.Column{
			{Name: "v", Type: schema.Int64, Sensitive: true},
			{Name: "g", Type: schema.Int64, Sensitive: true, Cardinality: groups},
			{Name: "o", Type: schema.Int64, Sensitive: true},
		},
	}
}

// SyntheticQueries is the sample query set matching SyntheticSchema.
func SyntheticQueries() []string {
	return []string{
		"SELECT SUM(v) FROM synth",
		"SELECT g, SUM(v) FROM synth GROUP BY g",
		"SELECT SUM(v) FROM synth WHERE o > 100",
	}
}

// Synthetic generates the microbenchmark source table: values uniform in
// [0, 10^6), group ids uniform in [0, groups), range values uniform in
// [0, 10^6).
func Synthetic(rows, groups int, seed int64) (*store.Table, error) {
	if groups < 1 {
		groups = 1
	}
	rng := rand.New(rand.NewSource(seed))
	v := make([]uint64, rows)
	g := make([]uint64, rows)
	o := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		v[i] = uint64(rng.Intn(1_000_000))
		g[i] = uint64(rng.Intn(groups))
		o[i] = uint64(rng.Intn(1_000_000))
	}
	return store.Build("synth", []store.Column{
		{Name: "v", Kind: store.U64, U64: v},
		{Name: "g", Kind: store.U64, U64: g},
		{Name: "o", Kind: store.U64, U64: o},
	}, 1)
}

// ScaleRows resolves a paper-scale row count (e.g. 1.75 billion) to a
// laptop-scale count, preserving ratios across datasets: rows = paperRows /
// divisor, floored at 1000.
func ScaleRows(paperRows uint64, divisor uint64) int {
	if divisor == 0 {
		divisor = 1
	}
	rows := paperRows / divisor
	if rows < 1000 {
		rows = 1000
	}
	return int(rows)
}

// fmtCount renders large counts compactly for experiment output.
func fmtCount(n uint64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}
