package workload

import (
	"testing"

	"seabed/internal/planner"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(1000, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(1000, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Parts[0].Col("v"), b.Parts[0].Col("v")
	for i := range ca.U64 {
		if ca.U64[i] != cb.U64[i] {
			t.Fatal("synthetic generator is not deterministic")
		}
	}
	if a.NumRows() != 1000 {
		t.Fatalf("rows = %d", a.NumRows())
	}
}

func TestSyntheticSchemaMatchesQueries(t *testing.T) {
	tbl := SyntheticSchema(10)
	var qs []*sqlparse.Query
	for _, s := range SyntheticQueries() {
		qs = append(qs, sqlparse.MustParse(s))
	}
	plan, err := planner.New(tbl, qs, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Col("v").Ashe {
		t.Fatal("v must be ASHE")
	}
	if !plan.Col("g").Det {
		t.Fatal("g must be DET (group-by)")
	}
	if !plan.Col("o").Ope {
		t.Fatal("o must be OPE (range)")
	}
}

func TestScaleRows(t *testing.T) {
	if got := ScaleRows(1_750_000_000, 10_000); got != 175_000 {
		t.Fatalf("ScaleRows = %d", got)
	}
	if got := ScaleRows(100, 10_000); got != 1000 {
		t.Fatalf("ScaleRows floor = %d", got)
	}
	if got := ScaleRows(500, 0); got != 1000 {
		t.Fatalf("ScaleRows zero divisor = %d", got)
	}
}

func TestGenerateBDBShapes(t *testing.T) {
	bdb, err := GenerateBDB(BDBConfig{Pages: 100, Visits: 1000, Q4Rows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bdb.Rankings.NumRows() != 100 || bdb.UserVisits.NumRows() != 1000 || bdb.Q4Phase2.NumRows() != 500 {
		t.Fatalf("row counts: %d/%d/%d", bdb.Rankings.NumRows(), bdb.UserVisits.NumRows(), bdb.Q4Phase2.NumRows())
	}
	// Every destURL must reference a real page (inner-join totals match).
	urls := map[string]bool{}
	for _, p := range bdb.Rankings.Parts {
		for _, u := range p.Col("pageURL").Str {
			urls[u] = true
		}
	}
	for _, p := range bdb.UserVisits.Parts {
		for _, u := range p.Col("destURL").Str {
			if !urls[u] {
				t.Fatalf("destURL %q not in rankings", u)
			}
		}
	}
	// Prefix columns are actual prefixes.
	uv := bdb.UserVisits.Parts[0]
	for i := 0; i < 10; i++ {
		ip := uv.Col("sourceIP").Str[i]
		if uv.Col("srcPrefix8").Str[i] != prefix(ip, 8) {
			t.Fatalf("prefix mismatch at %d", i)
		}
	}
	if _, err := GenerateBDB(BDBConfig{}); err == nil {
		t.Fatal("want error for zero config")
	}
}

func TestBDBQueriesParse(t *testing.T) {
	for _, q := range BDBQueries() {
		if _, err := sqlparse.Parse(q.SQL); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
	if len(BDBQueries()) != 10 {
		t.Fatalf("BDB has %d queries, want 10", len(BDBQueries()))
	}
	for table, samples := range BDBSamples() {
		for _, s := range samples {
			if _, err := sqlparse.Parse(s); err != nil {
				t.Errorf("%s sample: %v", table, err)
			}
		}
	}
}

func TestGenerateAdAShapes(t *testing.T) {
	ada, err := GenerateAdA(AdAConfig{Rows: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ada.Table.NumRows() != 5000 {
		t.Fatalf("rows = %d", ada.Table.NumRows())
	}
	// 33 dimensions (hour + 10 sensitive + 22 public) + 18 measures = 51.
	if got := len(ada.Table.ColNames()); got != 51 {
		t.Fatalf("columns = %d, want 51", got)
	}
	if len(ada.SensitiveDims) != 10 || len(ada.EncMeasures) != 10 {
		t.Fatalf("sensitive dims/measures = %d/%d", len(ada.SensitiveDims), len(ada.EncMeasures))
	}
	// Frequency vectors match the materialized columns exactly.
	for _, dim := range ada.SensitiveDims {
		col := ada.Schema.Column(dim)
		counts := make([]uint64, col.Cardinality)
		for _, p := range ada.Table.Parts {
			for _, v := range p.Col(dim).U64 {
				counts[v]++
			}
		}
		for v := range counts {
			if counts[v] != col.Freqs[v] {
				t.Fatalf("%s value %d: materialized %d, declared %d", dim, v, counts[v], col.Freqs[v])
			}
		}
	}
	if _, err := GenerateAdA(AdAConfig{}); err == nil {
		t.Fatal("want error for zero rows")
	}
}

func TestAdASamplesAndPerfQueriesParse(t *testing.T) {
	for _, s := range AdASamples() {
		if _, err := sqlparse.Parse(s); err != nil {
			t.Errorf("sample %q: %v", s, err)
		}
	}
	qs := AdAPerfQueries()
	if len(qs) != 15 {
		t.Fatalf("perf queries = %d, want 15 (5 × groups {1,4,8})", len(qs))
	}
	for _, q := range qs {
		if _, err := sqlparse.Parse(q.SQL); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}

func TestAdASplasheOverheads(t *testing.T) {
	ada, err := GenerateAdA(AdAConfig{Rows: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := ada.AdASplasheOverheads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ov) != 10 {
		t.Fatalf("overhead rows = %d, want 10", len(ov))
	}
	prevBasic, prevEnh := 1.0, 1.0
	for i, o := range ov {
		if o.CumBasic <= prevBasic || o.CumEnhanced <= prevEnh {
			t.Fatalf("dim %d: cumulative overheads must increase", i)
		}
		// The Figure 10(b) claim: enhanced costs less than basic.
		if o.CumEnhanced >= o.CumBasic {
			t.Fatalf("dim %s: enhanced (%.1f) must beat basic (%.1f)", o.Dim, o.CumEnhanced, o.CumBasic)
		}
		prevBasic, prevEnh = o.CumBasic, o.CumEnhanced
	}
	// Skewed distributions keep k well below cardinality.
	last := ov[len(ov)-1]
	if last.K >= last.Cardinality/4 {
		t.Fatalf("k = %d for cardinality %d; skew should keep k small", last.K, last.Cardinality)
	}
}

func TestMDXCatalogMatchesTable4(t *testing.T) {
	c := MDXCounts()
	if c.Total != 38 || c.Server != 17 || c.ClientPre != 12 || c.ClientPost != 4 || c.TwoRound != 5 {
		t.Fatalf("MDX counts = %+v, want 38/17/12/4/5 (Table 4)", c)
	}
	// Catalog numbering is 1..38 without gaps.
	for i, f := range MDXCatalog() {
		if f.No != i+1 {
			t.Fatalf("catalog entry %d has No %d", i, f.No)
		}
		if f.Name == "" || f.How == "" {
			t.Fatalf("catalog entry %d incomplete", f.No)
		}
	}
}

func TestAdLogClassificationMatchesTable4(t *testing.T) {
	log := GenerateAdLog(AdLogReference.Total, 99)
	c, err := ClassifyLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if c != AdLogReference {
		t.Fatalf("log classification = %+v, want %+v", c, AdLogReference)
	}
}

func TestAdLogScaledMix(t *testing.T) {
	log := GenerateAdLog(1000, 7)
	c, err := ClassifyLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != 1000 {
		t.Fatalf("total = %d", c.Total)
	}
	// ~20.2% post-processing.
	if c.ClientPost < 180 || c.ClientPost > 220 {
		t.Fatalf("post-processing share = %d/1000, want ≈202", c.ClientPost)
	}
	if c.Server+c.ClientPost != c.Total {
		t.Fatalf("counts don't add up: %+v", c)
	}
}

func TestFmtCount(t *testing.T) {
	for in, want := range map[uint64]string{
		5:             "5",
		1500:          "1.5k",
		2_500_000:     "2.5M",
		1_750_000_000: "1.75B",
	} {
		if got := fmtCount(in); got != want {
			t.Errorf("fmtCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTPCDSReference(t *testing.T) {
	c := TPCDSReference
	if c.Server+c.ClientPre+c.ClientPost+c.TwoRound != c.Total {
		t.Fatalf("TPC-DS reference row inconsistent: %+v", c)
	}
}

func TestStoreKindsUsed(t *testing.T) {
	// Both generators must emit the kinds the engine expects.
	bdb, err := GenerateBDB(BDBConfig{Pages: 10, Visits: 50, Q4Rows: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := bdb.UserVisits.ColKind("adRevenue"); k != store.U64 {
		t.Fatal("adRevenue must be U64")
	}
	if k, _ := bdb.UserVisits.ColKind("sourceIP"); k != store.Str {
		t.Fatal("sourceIP must be Str")
	}
}
