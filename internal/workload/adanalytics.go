package workload

import (
	"fmt"
	"math/rand"

	"seabed/internal/schema"
	"seabed/internal/splashe"
	"seabed/internal/store"
)

// The advertising-analytics application of §6.6: 33 dimensions, 18 measures,
// hour-of-day group-by queries with 1–12 groups, and 10 sensitive dimensions
// with skewed value distributions spanning the cardinality range of
// Figure 10(b). The proprietary dataset is simulated per DESIGN.md §2.

// AdAConfig scales the workload.
type AdAConfig struct {
	// Rows is the table size (paper: 759M).
	Rows int
	Seed int64
}

// AdA bundles the generated workload.
type AdA struct {
	Table  *store.Table
	Schema *schema.Table
	// SensitiveDims lists the 10 dimensions requiring encryption, in
	// ascending cardinality order (Figure 10b's x-axis).
	SensitiveDims []string
	// EncMeasures lists the 10 measures requiring encryption (§6.6).
	EncMeasures []string
}

// adaDimCardinalities spans the Figure 10(b) range (sorted ascending).
var adaDimCardinalities = []int{8, 12, 24, 48, 96, 192, 384, 768, 1536, 3072}

// adaSplayMeasuresPerDim is the number of measures co-used with (and hence
// splayed under) each sensitive dimension (§4.2: "only these measure columns
// need to be SPLASHE-encrypted").
const adaSplayMeasuresPerDim = 3

// AdASamples returns the sample queries the planner sees: hour-of-day
// group-bys over each encrypted measure, with occasional range filters.
func AdASamples() []string {
	samples := []string{}
	for i := 0; i < 10; i++ {
		samples = append(samples,
			fmt.Sprintf("SELECT hour, SUM(m%d) FROM ada WHERE hour < 8 GROUP BY hour", i))
	}
	// Equality filters on the first two sensitive dims keep them SPLASHE
	// candidates.
	samples = append(samples,
		"SELECT SUM(m0) FROM ada WHERE sdim0 = 1",
		"SELECT SUM(m1) FROM ada WHERE sdim1 = 2",
	)
	return samples
}

// GenerateAdA builds the workload.
func GenerateAdA(cfg AdAConfig) (*AdA, error) {
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("workload: AdA rows must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows

	cols := make([]store.Column, 0, 52)
	scols := make([]schema.Column, 0, 52)

	// hour-of-day: the grouping dimension every query uses.
	hour := make([]uint64, n)
	for i := range hour {
		hour[i] = uint64(rng.Intn(24))
	}
	cols = append(cols, store.Column{Name: "hour", Kind: store.U64, U64: hour})
	scols = append(scols, schema.Column{Name: "hour", Type: schema.Int64, Sensitive: true, Cardinality: 24})

	// 18 measures, 10 sensitive (m0..m9), 8 public (p0..p7).
	var encMeasures []string
	for m := 0; m < 18; m++ {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Intn(100000))
		}
		name := fmt.Sprintf("p%d", m-10)
		sensitive := m < 10
		if sensitive {
			name = fmt.Sprintf("m%d", m)
			encMeasures = append(encMeasures, name)
		}
		cols = append(cols, store.Column{Name: name, Kind: store.U64, U64: vals})
		scols = append(scols, schema.Column{Name: name, Type: schema.Int64, Sensitive: sensitive})
	}

	// 10 sensitive dimensions with skewed distributions (sdim0..sdim9), plus
	// 22 public dimensions (pdim0..pdim21) to reach 33 dims with hour.
	var sensDims []string
	for d, card := range adaDimCardinalities {
		name := fmt.Sprintf("sdim%d", d)
		sensDims = append(sensDims, name)
		freqs := skewedFreqs(card, uint64(n), rng)
		vals := sampleFromFreqs(freqs, n, rng)
		cols = append(cols, store.Column{Name: name, Kind: store.U64, U64: vals})
		scols = append(scols, schema.Column{
			Name: name, Type: schema.Int64, Sensitive: true,
			Cardinality: card, Freqs: freqs,
		})
	}
	for d := 0; d < 22; d++ {
		name := fmt.Sprintf("pdim%d", d)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Intn(50))
		}
		cols = append(cols, store.Column{Name: name, Kind: store.U64, U64: vals})
		scols = append(scols, schema.Column{Name: name, Type: schema.Int64, Sensitive: false})
	}

	tbl, err := store.Build("ada", cols, 1)
	if err != nil {
		return nil, err
	}
	return &AdA{
		Table:         tbl,
		Schema:        &schema.Table{Name: "ada", Columns: scols},
		SensitiveDims: sensDims,
		EncMeasures:   encMeasures,
	}, nil
}

// skewedFreqs builds a heavy-hitter frequency vector summing to total: two
// dominant values own ~65% of the rows and the tail is near-uniform with
// small jitter — the §3.4 shape (e.g. a Canadian company with most employees
// in USA or Canada). This keeps the enhanced layout's k small regardless of
// cardinality, which is exactly the property Figure 10(b) exploits.
func skewedFreqs(card int, total uint64, rng *rand.Rand) []uint64 {
	freqs := make([]uint64, card)
	freqs[0] = total * 40 / 100
	if card > 1 {
		freqs[1] = total * 25 / 100
	}
	rest := total - freqs[0] - freqs[1]
	tail := uint64(card - 2)
	if tail == 0 {
		freqs[0] += rest
		return freqs
	}
	var used uint64
	for i := 2; i < card; i++ {
		base := rest / tail
		jitter := uint64(0)
		if base > 10 {
			jitter = uint64(rng.Intn(int(base / 5))) // ±20% spread
		}
		f := base - base/10 + jitter
		if f == 0 {
			f = 1
		}
		freqs[i] = f
		used += f
	}
	// Fix drift on the heavy hitters.
	for used > rest {
		if freqs[0] > 1 {
			freqs[0]--
			used--
		} else {
			break
		}
	}
	freqs[0] += rest - used
	return freqs
}

// sampleFromFreqs materializes a column matching the frequency vector
// exactly, shuffled (Appendix A.2's uniform-row-order assumption).
func sampleFromFreqs(freqs []uint64, n int, rng *rand.Rand) []uint64 {
	out := make([]uint64, 0, n)
	for v, c := range freqs {
		for i := uint64(0); i < c && len(out) < n; i++ {
			out = append(out, uint64(v))
		}
	}
	for len(out) < n {
		out = append(out, 0)
	}
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// AdAPerfQueries returns the §6.6 performance query set: five queries per
// group count in {1, 4, 8}, each summing a different measure.
func AdAPerfQueries() []struct {
	Name   string
	SQL    string
	Groups int
} {
	var out []struct {
		Name   string
		SQL    string
		Groups int
	}
	for _, groups := range []int{1, 4, 8} {
		for q := 0; q < 5; q++ {
			out = append(out, struct {
				Name   string
				SQL    string
				Groups int
			}{
				Name:   fmt.Sprintf("g%d-q%d", groups, q),
				SQL:    fmt.Sprintf("SELECT hour, SUM(m%d) FROM ada WHERE hour < %d GROUP BY hour", q, groups),
				Groups: groups,
			})
		}
	}
	return out
}

// SplasheOverhead reports Figure 10(b): for each sensitive dimension (in
// ascending cardinality), the cumulative storage overhead factor of basic
// and enhanced SPLASHE over the plaintext table.
type SplasheOverhead struct {
	Dim         string
	Cardinality int
	// CumBasic and CumEnhanced are cumulative storage factors after
	// splaying this dimension and all smaller ones.
	CumBasic    float64
	CumEnhanced float64
	// K is the enhanced layout's dedicated-column count.
	K int
}

// AdASplasheOverheads computes Figure 10(b) from the declared dimension
// distributions: each splayed dimension adds indicator columns and splays
// the measures co-used with it (adaSplayMeasuresPerDim of them, per §4.2);
// overheads accumulate relative to the plaintext row width (33 dims + 18
// measures, 8 bytes each).
func (a *AdA) AdASplasheOverheads() ([]SplasheOverhead, error) {
	const plainRow = 8.0 * (33 + 18)
	cumBasic, cumEnh := plainRow, plainRow
	out := make([]SplasheOverhead, 0, len(a.SensitiveDims))
	for _, dim := range a.SensitiveDims {
		col := a.Schema.Column(dim)
		basic, err := splashe.PlanBasic(col.Cardinality)
		if err != nil {
			return nil, err
		}
		enh, err := splashe.PlanEnhanced(col.Freqs)
		if err != nil {
			return nil, err
		}
		const nm = adaSplayMeasuresPerDim
		cumBasic += 8 * float64(basic.NumDimColumns()+nm*basic.NumSplayColumns())
		cumEnh += 8*float64(enh.NumDimColumns()-1+nm*enh.NumSplayColumns()) + 16 // DET col is 16B
		out = append(out, SplasheOverhead{
			Dim:         dim,
			Cardinality: col.Cardinality,
			CumBasic:    cumBasic / plainRow,
			CumEnhanced: cumEnh / plainRow,
			K:           enh.K,
		})
	}
	return out, nil
}
