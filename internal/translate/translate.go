// Package translate implements Seabed's query translator (§4.4): it rewrites
// a client's unmodified SQL query against the encrypted schema, encrypting
// constants, redirecting aggregates to ASHE/SPLASHE/Paillier columns,
// replacing comparisons with DET/OPE checks, preserving the identifier
// column through subqueries, and optionally inflating group-by keys (§4.5).
// The same translator also produces the NoEnc and Paillier baseline plans,
// so all three systems of the evaluation run one code path.
//
// The output is a pair: a server plan for package engine, and a client plan
// describing the decryption and post-processing steps (division for AVG, the
// variance formula, group de-inflation) that packages client executes —
// Monomi's split-execution idea (§4.2, §5).
package translate

import (
	"fmt"

	"seabed/internal/ashe"
	"seabed/internal/det"
	"seabed/internal/engine"
	"seabed/internal/ope"
	"seabed/internal/paillier"
	"seabed/internal/planner"
	"seabed/internal/schema"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// Mode selects which of the evaluation's three systems the translation
// targets (§6.1).
type Mode int

const (
	// NoEnc runs original queries over unencrypted data.
	NoEnc Mode = iota
	// Seabed encrypts measures with ASHE and dimensions with
	// SPLASHE/DET/OPE.
	Seabed
	// Paillier encrypts measures with Paillier and dimensions with DET/OPE.
	Paillier
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NoEnc:
		return "NoEnc"
	case Seabed:
		return "Seabed"
	case Paillier:
		return "Paillier"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Keys provides the per-column secrets the translator needs to encrypt
// query constants. Package client implements it.
type Keys interface {
	Ashe(col string) *ashe.Key
	Det(col string) *det.Key
	Ope(col string) *ope.Key
	PaillierPK() *paillier.PublicKey
}

// Catalog resolves table names to their plans and physical tables. Package
// client implements it.
type Catalog interface {
	Plan(table string) (*planner.Plan, error)
	Table(table string, mode Mode) (*store.Table, error)
}

// Options tunes translation.
type Options struct {
	// Workers is the server's worker count, used by the group-inflation
	// heuristic.
	Workers int
	// ExpectedGroups is the client's estimate of the result group count
	// (§4.4: "the client maintains some state about the expected number of
	// groups"). Zero disables inflation.
	ExpectedGroups int
	// DisableInflation turns the §4.5 group-inflation optimization off
	// (the "Seabed" vs "Seabed-optimized" comparison of Figure 9a).
	DisableInflation bool
}

// OutputKind describes how the client derives one result column.
type OutputKind int

const (
	// OutPlain passes a plaintext aggregate through.
	OutPlain OutputKind = iota
	// OutAsheSum decrypts an ASHE aggregate with the source column's key.
	OutAsheSum
	// OutPailSum decrypts a Paillier aggregate.
	OutPailSum
	// OutAvg divides a sum output by a count output (client-side).
	OutAvg
	// OutVar computes (Σx² − (Σx)²/n)/n from three outputs (client-side).
	OutVar
	// OutStddev is OutVar followed by a square root.
	OutStddev
	// OutMinMax decrypts the companion ASHE value of an OPE extreme.
	OutMinMax
	// OutGroupKey yields the (decrypted) group key.
	OutGroupKey
)

// Output is one client-plan result column.
type Output struct {
	Name string
	Kind OutputKind
	// Agg indexes into the server plan's aggregate list (primary value).
	Agg int
	// SourceCol is the plaintext column whose key decrypts the value. For
	// splayed or squared measures it is the physical column name, which the
	// key ring also accepts.
	SourceCol string
	// AuxSum, AuxSq and AuxCount describe the auxiliary aggregates composed
	// by OutAvg, OutVar and OutStddev: each is itself a decryptable output.
	AuxSum   *Output
	AuxSq    *Output
	AuxCount *Output
}

// GroupKeyPlan describes how the client maps group keys back to plaintext.
type GroupKeyPlan struct {
	// Det indicates the key bytes are DET ciphertexts.
	Det bool
	// SourceCol is the grouping column (for display and dictionaries).
	SourceCol string
	// KeyName is the DET key identity (join groups share one key).
	KeyName string
	// Dict, when non-nil, maps decrypted value ids back to strings.
	Dict []string
	// StrValues indicates DET ciphertexts decrypt to strings, not u64 ids.
	StrValues bool
}

// ScanCol describes one projected column of a scan query.
type ScanCol struct {
	Name string
	// Ashe marks per-row ASHE bodies the client decrypts with the row id.
	Ashe bool
	// Det marks DET ciphertexts the client decrypts.
	Det bool
	// Pail marks per-row Paillier ciphertexts (baseline mode).
	Pail bool
	// Str / U64 plaintext passthrough otherwise.
	SourceCol string
	Dict      []string
	StrValues bool
}

// ClientPlan is the decrypt/post-process half of a translation.
type ClientPlan struct {
	Outputs  []Output
	GroupKey *GroupKeyPlan
	ScanCols []ScanCol
	// Inflated tells the client to merge suffix-inflated groups (§4.5).
	Inflated bool
	// Mode echoes the translation mode.
	Mode Mode
}

// Translation pairs the server plan with the client plan.
type Translation struct {
	Server *engine.Plan
	Client ClientPlan
	// Query echoes the source query.
	Query *sqlparse.Query
}

// Translate rewrites a query for the given mode.
func Translate(q *sqlparse.Query, cat Catalog, keys Keys, mode Mode, opts Options) (*Translation, error) {
	t := &translator{cat: cat, keys: keys, mode: mode, opts: opts}
	return t.translate(q)
}

type translator struct {
	cat  Catalog
	keys Keys
	mode Mode
	opts Options
}

func (t *translator) translate(q *sqlparse.Query) (*Translation, error) {
	// Flatten one level of FROM-subquery: predicates push down, the outer
	// aggregates apply to the inner projection. ID preservation (Table 2)
	// falls out of ASHE's implicit identifier column.
	flat := q
	if q.From.Sub != nil {
		inner := q.From.Sub
		if inner.Aggregates() || inner.From.Sub != nil {
			return nil, fmt.Errorf("translate: only scan-shaped single-level subqueries are supported")
		}
		merged := &sqlparse.Query{
			Select:  q.Select,
			From:    inner.From,
			Where:   append(append([]sqlparse.Predicate{}, inner.Where...), q.Where...),
			GroupBy: q.GroupBy,
		}
		flat = merged
	}

	plan, err := t.cat.Plan(flat.From.Table)
	if err != nil {
		return nil, err
	}
	tbl, err := t.cat.Table(flat.From.Table, t.mode)
	if err != nil {
		return nil, err
	}
	sp := &engine.Plan{Table: tbl}
	tr := &Translation{Server: sp, Query: q}
	tr.Client.Mode = t.mode

	// Join clause.
	if j := flat.From.Join; j != nil {
		if err := t.translateJoin(flat, j, plan, sp); err != nil {
			return nil, err
		}
	}

	// The SPLASHE rewrite: find at most one equality predicate on a splayed
	// dimension; it determines which splayed columns replace the measures.
	splCtx, rest, extra, err := t.splitSplashe(flat, plan)
	if err != nil {
		return nil, err
	}
	sp.Filters = append(sp.Filters, extra...)

	// Remaining predicates.
	for _, pred := range rest {
		f, err := t.translatePredicate(pred, plan, flat)
		if err != nil {
			return nil, err
		}
		sp.Filters = append(sp.Filters, f)
	}

	// Aggregates vs scan.
	if flat.Aggregates() {
		if err := t.translateAggregates(flat, plan, splCtx, tr); err != nil {
			return nil, err
		}
	} else {
		if len(flat.GroupBy) > 0 {
			return nil, fmt.Errorf("translate: GROUP BY requires at least one aggregate in the SELECT list")
		}
		if err := t.translateScan(flat, plan, tr); err != nil {
			return nil, err
		}
	}

	// GROUP BY.
	if len(flat.GroupBy) > 0 {
		if err := t.translateGroupBy(flat, plan, tr); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// splasheCtx records the SPLASHE rewrite chosen for a query.
type splasheCtx struct {
	dim string
	// col is the splayed column index the predicate selects; others is true
	// when the enhanced layout's others column applies (with a DET filter).
	col    int
	others bool
	cp     *planner.ColumnPlan
}

// splitSplashe extracts the (single) SPLASHE-rewritable equality predicate.
// It returns the rewrite context, the predicates left for ordinary
// translation, and any extra server filters the rewrite itself requires (the
// balanced-DET filter for enhanced layouts' uncommon values, §3.4).
func (t *translator) splitSplashe(q *sqlparse.Query, plan *planner.Plan) (*splasheCtx, []sqlparse.Predicate, []engine.Filter, error) {
	if t.mode != Seabed {
		return nil, q.Where, nil, nil
	}
	var ctx *splasheCtx
	var rest []sqlparse.Predicate
	var extra []engine.Filter
	for _, pred := range q.Where {
		cp := plan.Col(pred.Col.Name)
		if cp == nil || cp.Splashe == nil || pred.Op != sqlparse.OpEq {
			rest = append(rest, pred)
			continue
		}
		if ctx != nil {
			return nil, nil, nil, fmt.Errorf("translate: query filters on two splayed dimensions (%q and %q); the planner splays measures per dimension", ctx.dim, pred.Col.Name)
		}
		vid, err := valueID(cp, pred.Lit)
		if err != nil {
			return nil, nil, nil, err
		}
		l := cp.Splashe
		sc := &splasheCtx{dim: pred.Col.Name, cp: cp}
		if c := l.ColumnOf(vid); c >= 0 {
			// Common value (or basic layout): the predicate disappears
			// entirely — the splayed column *is* the filter.
			sc.col = c
		} else {
			// Uncommon value: aggregate the others column filtered by the
			// balanced DET column (§3.4). Dummy rows carry ASHE(0), so
			// correctness is preserved.
			sc.col = l.NumSplayColumns() - 1
			sc.others = true
			dk := t.keys.Det(pred.Col.Name)
			if dk == nil {
				return nil, nil, nil, fmt.Errorf("translate: no DET key for %q", pred.Col.Name)
			}
			extra = append(extra, engine.Filter{
				Kind:  engine.FilterDetEq,
				Col:   planner.DetName(pred.Col.Name),
				Bytes: dk.EncryptU64(uint64(vid)),
			})
		}
		ctx = sc
	}
	return ctx, rest, extra, nil
}

// valueID resolves a literal to a dimension's value id using its dictionary.
func valueID(cp *planner.ColumnPlan, lit sqlparse.Literal) (int, error) {
	if lit.Kind == sqlparse.LitString {
		for i, v := range cp.Dict {
			if v == lit.Str {
				return i, nil
			}
		}
		return 0, fmt.Errorf("translate: value %q not in dictionary of column %q", lit.Str, cp.Source)
	}
	return int(lit.Num), nil
}

// translatePredicate rewrites one WHERE conjunct.
func (t *translator) translatePredicate(pred sqlparse.Predicate, plan *planner.Plan, q *sqlparse.Query) (engine.Filter, error) {
	name := pred.Col.Name
	cp := plan.Col(name)
	if cp == nil {
		// Possibly a right-side join column; resolve through the joined plan.
		if q.From.Join != nil {
			jplan, err := t.cat.Plan(q.From.Join.Table)
			if err == nil {
				if jcp := jplan.Col(name); jcp != nil {
					return t.predicateFor(pred, jcp)
				}
			}
		}
		return engine.Filter{}, fmt.Errorf("translate: unknown column %q", name)
	}
	return t.predicateFor(pred, cp)
}

func (t *translator) predicateFor(pred sqlparse.Predicate, cp *planner.ColumnPlan) (engine.Filter, error) {
	name := cp.Source
	if t.mode == NoEnc || cp.Plain {
		if cp.Type == schema.String {
			if pred.Lit.Kind != sqlparse.LitString {
				return engine.Filter{}, fmt.Errorf("translate: column %q needs a string literal", name)
			}
			return engine.Filter{Kind: engine.FilterStrCmp, Col: name, Op: pred.Op, Str: pred.Lit.Str}, nil
		}
		v, err := litU64(cp, pred.Lit)
		if err != nil {
			return engine.Filter{}, err
		}
		return engine.Filter{Kind: engine.FilterPlainCmp, Col: name, Op: pred.Op, U64: v}, nil
	}
	switch {
	case pred.Op.IsRange():
		if !cp.Ope {
			return engine.Filter{}, fmt.Errorf("translate: column %q has no OPE form for range predicate", name)
		}
		ok := t.keys.Ope(name)
		if ok == nil {
			return engine.Filter{}, fmt.Errorf("translate: no OPE key for %q", name)
		}
		v, err := litU64(cp, pred.Lit)
		if err != nil {
			return engine.Filter{}, err
		}
		return engine.Filter{Kind: engine.FilterOpeCmp, Col: planner.OpeName(name), Op: pred.Op, Bytes: ok.Encrypt(v)}, nil
	default: // equality / inequality
		det := cp.Det
		if t.mode == Paillier && cp.Splashe != nil {
			// The Paillier baseline stores dimensions deterministically
			// (§6.1); the encryptor materializes a DET column for splayed
			// dimensions in that mode.
			det = true
		}
		if !det && cp.Splashe != nil {
			return engine.Filter{}, fmt.Errorf("translate: splayed dimension %q cannot be filtered here", name)
		}
		if !det {
			return engine.Filter{}, fmt.Errorf("translate: column %q has no DET form for equality predicate", name)
		}
		dk := t.keys.Det(cp.DetKey())
		if dk == nil {
			return engine.Filter{}, fmt.Errorf("translate: no DET key for %q", name)
		}
		ct, err := detLiteral(dk, cp, pred.Lit)
		if err != nil {
			return engine.Filter{}, err
		}
		return engine.Filter{Kind: engine.FilterDetEq, Col: planner.DetName(name), Bytes: ct, Negate: pred.Op == sqlparse.OpNe}, nil
	}
}

// detLiteral encrypts a literal for a DET comparison, honoring the column's
// dictionary convention: dictionary dimensions store DET(value id), plain
// string dimensions store DET(string), integer dimensions DET(u64).
func detLiteral(dk *det.Key, cp *planner.ColumnPlan, lit sqlparse.Literal) ([]byte, error) {
	if lit.Kind == sqlparse.LitString {
		if len(cp.Dict) > 0 {
			id, err := valueID(cp, lit)
			if err != nil {
				return nil, err
			}
			return dk.EncryptU64(uint64(id)), nil
		}
		return dk.EncryptString(lit.Str), nil
	}
	return dk.EncryptU64(uint64(lit.Num)), nil
}

func litU64(cp *planner.ColumnPlan, lit sqlparse.Literal) (uint64, error) {
	if lit.Kind == sqlparse.LitString {
		id, err := valueID(cp, lit)
		if err != nil {
			return 0, err
		}
		return uint64(id), nil
	}
	return uint64(lit.Num), nil
}
