package translate

import (
	"crypto/rand"
	"strings"
	"testing"

	"seabed/internal/engine"
	"seabed/internal/paillier"
	"seabed/internal/planner"
	"seabed/internal/schema"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// pailKeys extends testKeys with a real (small) Paillier key.
type pailKeys struct {
	testKeys
	sk *paillier.PrivateKey
}

func (k pailKeys) PaillierPK() *paillier.PublicKey { return &k.sk.PublicKey }

func newPailKeys(t *testing.T) pailKeys {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	return pailKeys{sk: sk}
}

// richCatalog covers measures with squares, an enhanced splashe dimension
// with a dictionary, and min/max-capable columns.
func richCatalog(t *testing.T) *testCatalog {
	t.Helper()
	tbl := &schema.Table{Name: "rich", Columns: []schema.Column{
		{Name: "rev", Type: schema.Int64, Sensitive: true},
		{Name: "clicks", Type: schema.Int64, Sensitive: true},
		{Name: "country", Type: schema.String, Sensitive: true, Cardinality: 4,
			Freqs:  []uint64{900, 800, 60, 40},
			Values: []string{"USA", "Canada", "India", "Chile"}},
		{Name: "day", Type: schema.Int64, Sensitive: true},
		{Name: "city", Type: schema.String, Sensitive: true}, // group-by, no dict
		{Name: "pub", Type: schema.Int64, Sensitive: false},
	}}
	samples := []*sqlparse.Query{
		sqlparse.MustParse("SELECT SUM(rev) FROM rich WHERE country = 'India'"),
		sqlparse.MustParse("SELECT VAR(clicks) FROM rich WHERE country = 'USA'"),
		sqlparse.MustParse("SELECT SUM(rev) FROM rich WHERE day > 3"),
		sqlparse.MustParse("SELECT MIN(rev) FROM rich"),
		sqlparse.MustParse("SELECT MEDIAN(rev) FROM rich"),
		sqlparse.MustParse("SELECT city, SUM(rev) FROM rich GROUP BY city"),
	}
	plan, err := planner.New(tbl, samples, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cols []store.Column
	for _, ec := range plan.EncColumns() {
		c := store.Column{Name: ec.Name, Kind: ec.Kind}
		switch ec.Kind {
		case store.U64:
			c.U64 = []uint64{0}
		case store.Bytes:
			c.Bytes = [][]byte{{0}}
		default:
			c.Str = []string{""}
		}
		cols = append(cols, c)
	}
	// Translation-only tests never execute plans, but Paillier columns must
	// resolve, so add them alongside the Seabed columns.
	for _, cname := range plan.Order {
		if plan.Col(cname).Ashe {
			cols = append(cols, store.Column{Name: planner.PailName(cname), Kind: store.Bytes, Bytes: [][]byte{{0}}})
			if plan.Col(cname).Square {
				cols = append(cols, store.Column{Name: planner.PailName(planner.SquareName(cname)), Kind: store.Bytes, Bytes: [][]byte{{0}}})
			}
		}
	}
	encAll, err := store.Build("rich", cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &testCatalog{
		plans:  map[string]*planner.Plan{"rich": plan},
		tables: map[string]*store.Table{"rich": encAll},
	}
}

func TestAvgProducesSumAndCount(t *testing.T) {
	cat := richCatalog(t)
	tr, err := Translate(sqlparse.MustParse("SELECT AVG(rev) FROM rich"), cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Server.Aggs) != 2 {
		t.Fatalf("aggs = %d, want sum+count", len(tr.Server.Aggs))
	}
	out := tr.Client.Outputs[0]
	if out.Kind != OutAvg || out.AuxSum == nil || out.AuxCount == nil {
		t.Fatalf("avg output = %+v", out)
	}
}

func TestVarProducesThreeAggregates(t *testing.T) {
	cat := richCatalog(t)
	tr, err := Translate(sqlparse.MustParse("SELECT VAR(clicks) FROM rich"), cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Server.Aggs) != 3 {
		t.Fatalf("aggs = %d, want sum+sq+count", len(tr.Server.Aggs))
	}
	out := tr.Client.Outputs[0]
	if out.Kind != OutVar || out.AuxSq == nil {
		t.Fatalf("var output = %+v", out)
	}
	if tr.Server.Aggs[1].Col != planner.SquareName("clicks") {
		t.Fatalf("squared agg col = %q", tr.Server.Aggs[1].Col)
	}
}

func TestVarUnderSplasheUsesSplayedSquare(t *testing.T) {
	cat := richCatalog(t)
	tr, err := Translate(sqlparse.MustParse("SELECT VAR(clicks) FROM rich WHERE country = 'USA'"),
		cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range tr.Server.Aggs {
		if strings.Contains(a.Col, planner.SquareName("clicks")+"_spl_country") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no splayed square aggregate in %+v", tr.Server.Aggs)
	}
}

func TestEnhancedUncommonValueKeepsDetFilter(t *testing.T) {
	cat := richCatalog(t)
	// India is uncommon: the others column plus a balanced DET filter.
	tr, err := Translate(sqlparse.MustParse("SELECT SUM(rev) FROM rich WHERE country = 'India'"),
		cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Server.Filters) != 1 || tr.Server.Filters[0].Kind != engine.FilterDetEq {
		t.Fatalf("filters = %+v, want one DET filter", tr.Server.Filters)
	}
	if !strings.HasSuffix(tr.Server.Aggs[0].Col, "_oth") {
		t.Fatalf("agg col = %q, want others column", tr.Server.Aggs[0].Col)
	}
	// USA is common: no filter at all.
	tr2, err := Translate(sqlparse.MustParse("SELECT SUM(rev) FROM rich WHERE country = 'USA'"),
		cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Server.Filters) != 0 {
		t.Fatalf("common value should drop the filter: %+v", tr2.Server.Filters)
	}
}

func TestCountUnderSplasheUsesIndicator(t *testing.T) {
	cat := richCatalog(t)
	tr, err := Translate(sqlparse.MustParse("SELECT COUNT(*) FROM rich WHERE country = 'Chile'"),
		cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Server.Aggs[0].Kind != engine.AggAsheSum || !strings.Contains(tr.Server.Aggs[0].Col, "_ind_") {
		t.Fatalf("count agg = %+v, want indicator sum", tr.Server.Aggs[0])
	}
}

func TestMinMaxMedianCompanions(t *testing.T) {
	cat := richCatalog(t)
	for _, sql := range []string{
		"SELECT MIN(rev) FROM rich",
		"SELECT MAX(rev) FROM rich",
		"SELECT MEDIAN(rev) FROM rich",
	} {
		tr, err := Translate(sqlparse.MustParse(sql), cat, testKeys{}, Seabed, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		a := tr.Server.Aggs[0]
		if a.Col != planner.OpeName("rev") || a.Companion != planner.AsheName("rev") {
			t.Fatalf("%s: agg = %+v", sql, a)
		}
		if tr.Client.Outputs[0].Kind != OutMinMax {
			t.Fatalf("%s: output kind = %d", sql, tr.Client.Outputs[0].Kind)
		}
	}
}

func TestPaillierModeTranslation(t *testing.T) {
	cat := richCatalog(t)
	keys := newPailKeys(t)
	tr, err := Translate(sqlparse.MustParse("SELECT SUM(rev) FROM rich WHERE country = 'India'"),
		cat, keys, Paillier, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Server.Aggs[0].Kind != engine.AggPaillierSum || tr.Server.Aggs[0].Col != planner.PailName("rev") {
		t.Fatalf("paillier agg = %+v", tr.Server.Aggs[0])
	}
	// The Paillier baseline filters splayed dims via their DET fallback.
	if len(tr.Server.Filters) != 1 || tr.Server.Filters[0].Kind != engine.FilterDetEq {
		t.Fatalf("paillier filters = %+v", tr.Server.Filters)
	}
	if tr.Client.Outputs[0].Kind != OutPailSum {
		t.Fatalf("output kind = %d, want OutPailSum", tr.Client.Outputs[0].Kind)
	}
	// MIN in Paillier mode ships the Paillier companion.
	tr2, err := Translate(sqlparse.MustParse("SELECT MIN(rev) FROM rich"), cat, keys, Paillier, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Server.Aggs[0].Companion != planner.PailName("rev") {
		t.Fatalf("paillier min companion = %q", tr2.Server.Aggs[0].Companion)
	}
}

func TestGroupByStringWithoutDict(t *testing.T) {
	cat := richCatalog(t)
	tr, err := Translate(sqlparse.MustParse("SELECT city, SUM(rev) FROM rich GROUP BY city"),
		cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gk := tr.Client.GroupKey
	if gk == nil || !gk.Det || !gk.StrValues {
		t.Fatalf("group key plan = %+v, want DET string values", gk)
	}
}

func TestAggregateErrors(t *testing.T) {
	cat := richCatalog(t)
	for _, sql := range []string{
		"SELECT SUM(pub) FROM rich WHERE country = 'USA' AND country = 'Canada'", // double splashe... same dim: second ctx
		"SELECT SUM(nosuch) FROM rich",
		"SELECT MIN(clicks) FROM rich",       // clicks has no OPE form
		"SELECT rev FROM rich GROUP BY city", // bare column not the group key
		"SELECT SUM(rev) FROM rich WHERE city = 'x' AND country = 'USA' AND day > 99 AND nosuch = 1",
	} {
		if _, err := Translate(sqlparse.MustParse(sql), cat, testKeys{}, Seabed, Options{}); err == nil {
			t.Errorf("%q: want error", sql)
		}
	}
}

func TestModeStringAndOutputs(t *testing.T) {
	if NoEnc.String() != "NoEnc" || Seabed.String() != "Seabed" || Paillier.String() != "Paillier" {
		t.Fatal("Mode.String broken")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
