package translate

import (
	"strings"
	"testing"

	"seabed/internal/ashe"
	"seabed/internal/det"
	"seabed/internal/engine"
	"seabed/internal/ope"
	"seabed/internal/paillier"
	"seabed/internal/planner"
	"seabed/internal/schema"
	"seabed/internal/sqlparse"
	"seabed/internal/store"
)

// testKeys derives deterministic per-column keys without a key ring.
type testKeys struct{}

func pad(col, tag string) []byte {
	b := make([]byte, 16)
	copy(b, tag+col)
	return b
}

func (testKeys) Ashe(col string) *ashe.Key       { return ashe.MustNewKey(pad(col, "a")) }
func (testKeys) Det(col string) *det.Key         { return det.MustNewKey(pad(col, "d")) }
func (testKeys) Ope(col string) *ope.Key         { return ope.MustNewKey(pad(col, "o")) }
func (testKeys) PaillierPK() *paillier.PublicKey { return nil }

// testCatalog serves one fixed table and plan.
type testCatalog struct {
	plans  map[string]*planner.Plan
	tables map[string]*store.Table
}

func (c *testCatalog) Plan(table string) (*planner.Plan, error) {
	p, ok := c.plans[table]
	if !ok {
		return nil, errUnknown(table)
	}
	return p, nil
}

func (c *testCatalog) Table(table string, mode Mode) (*store.Table, error) {
	t, ok := c.tables[table]
	if !ok {
		return nil, errUnknown(table)
	}
	return t, nil
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown table " + string(e) }

// catalog builds the Table 2 fixture: table "tbl" with measure a, range
// dimension b, and splayed dimension g (cardinality 10, value 10 ≡ id 9...).
func catalog(t *testing.T) *testCatalog {
	t.Helper()
	tbl := &schema.Table{Name: "tbl", Columns: []schema.Column{
		{Name: "a", Type: schema.Int64, Sensitive: true},
		{Name: "b", Type: schema.Int64, Sensitive: true},
		{Name: "g", Type: schema.Int64, Sensitive: true, Cardinality: 16},
		{Name: "k", Type: schema.Int64, Sensitive: true},
	}}
	samples := []*sqlparse.Query{
		sqlparse.MustParse("SELECT SUM(a) FROM tbl WHERE b > 10"),
		sqlparse.MustParse("SELECT COUNT(*) FROM tbl WHERE g = 10"),
		sqlparse.MustParse("SELECT k, SUM(a) FROM tbl GROUP BY k"),
	}
	plan, err := planner.New(tbl, samples, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny physical table so engine plans resolve; contents irrelevant for
	// translation tests.
	var cols []store.Column
	for _, ec := range plan.EncColumns() {
		c := store.Column{Name: ec.Name, Kind: ec.Kind}
		switch ec.Kind {
		case store.U64:
			c.U64 = []uint64{0}
		case store.Bytes:
			c.Bytes = [][]byte{{0}}
		default:
			c.Str = []string{""}
		}
		cols = append(cols, c)
	}
	enc, err := store.Build("tbl", cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &testCatalog{
		plans:  map[string]*planner.Plan{"tbl": plan},
		tables: map[string]*store.Table{"tbl": enc},
	}
}

func TestTable2IDPreservation(t *testing.T) {
	// Table 2 row 1: SELECT sum(tmp.a) FROM (SELECT a FROM table WHERE b > 10) tmp
	// must become an OPE filter plus an ASHE aggregation — the identifier
	// column is implicit in the engine, so aggregation over the subquery
	// works without explicit ID projection.
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT SUM(tmp.a) FROM (SELECT a FROM tbl WHERE b > 10) tmp")
	tr, err := Translate(q, cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Server.Filters) != 1 || tr.Server.Filters[0].Kind != engine.FilterOpeCmp {
		t.Fatalf("filters = %+v, want one OPE filter", tr.Server.Filters)
	}
	if len(tr.Server.Aggs) != 1 || tr.Server.Aggs[0].Kind != engine.AggAsheSum || tr.Server.Aggs[0].Col != planner.AsheName("a") {
		t.Fatalf("aggs = %+v, want ASHE sum over a_ashe", tr.Server.Aggs)
	}
}

func TestTable2SplasheRewrite(t *testing.T) {
	// Table 2 row 2: SELECT count(*) FROM table WHERE a = 10 over a splayed
	// dimension becomes a pure sum over the indicator column — no filter at
	// all (the server cannot even tell which value was queried).
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT COUNT(*) FROM tbl WHERE g = 10")
	tr, err := Translate(q, cat, testKeys{}, Seabed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Server.Filters) != 0 {
		t.Fatalf("filters = %+v, want none (basic SPLASHE)", tr.Server.Filters)
	}
	if len(tr.Server.Aggs) != 1 || tr.Server.Aggs[0].Kind != engine.AggAsheSum {
		t.Fatalf("aggs = %+v, want indicator sum", tr.Server.Aggs)
	}
	if tr.Server.Aggs[0].Col != planner.IndName("g", 10, false) {
		t.Fatalf("agg col = %q, want %q", tr.Server.Aggs[0].Col, planner.IndName("g", 10, false))
	}
}

func TestTable2GroupByInflation(t *testing.T) {
	// Table 2 row 3: group-by with inflation when groups < workers.
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT k, SUM(a) FROM tbl GROUP BY k")
	tr, err := Translate(q, cat, testKeys{}, Seabed, Options{Workers: 100, ExpectedGroups: 10})
	if err != nil {
		t.Fatal(err)
	}
	gb := tr.Server.GroupBy
	if gb == nil || gb.Col != planner.DetName("k") {
		t.Fatalf("group by = %+v, want DET column", gb)
	}
	if gb.Inflate != 10 {
		t.Fatalf("inflate = %d, want 10 (100 workers / 10 groups)", gb.Inflate)
	}
	if !tr.Client.Inflated {
		t.Fatal("client plan must be marked inflated")
	}
	// Without the optimization there is no inflation.
	tr2, err := Translate(q, cat, testKeys{}, Seabed, Options{Workers: 100, ExpectedGroups: 10, DisableInflation: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Server.GroupBy.Inflate != 0 || tr2.Client.Inflated {
		t.Fatal("DisableInflation must turn the optimization off")
	}
}

func TestNoEncPassthrough(t *testing.T) {
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT SUM(a) FROM tbl WHERE b > 10")
	tr, err := Translate(q, cat, testKeys{}, NoEnc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Server.Filters[0].Kind != engine.FilterPlainCmp {
		t.Fatalf("NoEnc filter = %+v", tr.Server.Filters[0])
	}
	if tr.Server.Aggs[0].Kind != engine.AggPlainSum || tr.Server.Aggs[0].Col != "a" {
		t.Fatalf("NoEnc agg = %+v", tr.Server.Aggs[0])
	}
}

func TestVarianceNeedsSquaredColumn(t *testing.T) {
	// "a" was never used quadratically in the samples, so VAR(a) must fail
	// with the §4.2 client-pre-processing explanation.
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT VAR(a) FROM tbl")
	_, err := Translate(q, cat, testKeys{}, Seabed, Options{})
	if err == nil || !strings.Contains(err.Error(), "squared") {
		t.Fatalf("err = %v, want squared-column error", err)
	}
}

func TestRangeOnNonOpeColumnFails(t *testing.T) {
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT SUM(a) FROM tbl WHERE g > 3")
	if _, err := Translate(q, cat, testKeys{}, Seabed, Options{}); err == nil {
		t.Fatal("want error: g has no OPE form")
	}
}

func TestMultiGroupByUnsupported(t *testing.T) {
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT SUM(a) FROM tbl GROUP BY k, b")
	if _, err := Translate(q, cat, testKeys{}, Seabed, Options{}); err == nil {
		t.Fatal("want error for two group-by columns")
	}
}

func TestNestedSubqueryUnsupported(t *testing.T) {
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT SUM(x.a) FROM (SELECT a FROM (SELECT a FROM tbl) y) x")
	if _, err := Translate(q, cat, testKeys{}, Seabed, Options{}); err == nil {
		t.Fatal("want error for nested subquery")
	}
}

func TestOutputKindsForModes(t *testing.T) {
	cat := catalog(t)
	q := sqlparse.MustParse("SELECT SUM(a) FROM tbl")
	for mode, want := range map[Mode]OutputKind{
		NoEnc:  OutPlain,
		Seabed: OutAsheSum,
	} {
		tr, err := Translate(q, cat, testKeys{}, mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Client.Outputs[0].Kind != want {
			t.Fatalf("%v output kind = %d, want %d", mode, tr.Client.Outputs[0].Kind, want)
		}
	}
}
