package translate

import (
	"fmt"

	"seabed/internal/engine"
	"seabed/internal/planner"
	"seabed/internal/schema"
	"seabed/internal/sqlparse"
)

// translateAggregates rewrites the SELECT list of an aggregation query.
func (t *translator) translateAggregates(q *sqlparse.Query, plan *planner.Plan, spl *splasheCtx, tr *Translation) error {
	sp := tr.Server
	// addAgg appends a server aggregate and returns its index.
	addAgg := func(a engine.Agg) int {
		sp.Aggs = append(sp.Aggs, a)
		return len(sp.Aggs) - 1
	}
	// sumAggFor returns the server aggregate summing measure m, honoring the
	// active SPLASHE rewrite, the mode, and an optional squared variant.
	sumAggFor := func(m string, squared bool) (engine.Agg, error) {
		cp, err := t.measurePlan(q, plan, m)
		if err != nil {
			return engine.Agg{}, err
		}
		if t.mode == NoEnc || cp.Plain {
			if squared {
				return engine.Agg{}, fmt.Errorf("translate: internal: squared plain aggregation is computed from the base column")
			}
			return engine.Agg{Kind: engine.AggPlainSum, Col: m}, nil
		}
		if t.mode == Paillier {
			col := planner.PailName(m)
			if squared {
				col = planner.PailName(planner.SquareName(m))
			}
			return engine.Agg{Kind: engine.AggPaillierSum, Col: col, PK: t.keys.PaillierPK()}, nil
		}
		// Seabed.
		if spl != nil && contains(spl.cp.SplayedMeasures, m) {
			if squared {
				if !contains(spl.cp.SplayedSquares, m) {
					return engine.Agg{}, fmt.Errorf("translate: quadratic aggregate over splayed measure %q needs its squared column splayed; re-run the planner with this query in the sample set", m)
				}
				return engine.Agg{Kind: engine.AggAsheSum, Col: planner.SplayName(planner.SquareName(m), spl.dim, spl.col, spl.others)}, nil
			}
			return engine.Agg{Kind: engine.AggAsheSum, Col: planner.SplayName(m, spl.dim, spl.col, spl.others)}, nil
		}
		if spl != nil {
			return engine.Agg{}, fmt.Errorf("translate: measure %q is not splayed under dimension %q; re-run the planner with this query in the sample set", m, spl.dim)
		}
		if !cp.Ashe {
			return engine.Agg{}, fmt.Errorf("translate: column %q has no ASHE form for aggregation", m)
		}
		col := planner.AsheName(m)
		if squared {
			if !cp.Square {
				return engine.Agg{}, fmt.Errorf("translate: column %q has no squared column; quadratic aggregates need client pre-processing (§4.2)", m)
			}
			col = planner.SquareName(m)
		}
		return engine.Agg{Kind: engine.AggAsheSum, Col: col}, nil
	}
	// countAgg returns the server aggregate counting selected rows: a plain
	// count normally, or the SPLASHE indicator sum under a splay rewrite
	// (dummy rows must not count, §3.4).
	countAgg := func() engine.Agg {
		if t.mode == Seabed && spl != nil {
			return engine.Agg{Kind: engine.AggAsheSum, Col: planner.IndName(spl.dim, spl.col, spl.others)}
		}
		return engine.Agg{Kind: engine.AggCount}
	}
	outKindForSum := func(cp *planner.ColumnPlan) OutputKind {
		switch {
		case t.mode == NoEnc || cp.Plain:
			return OutPlain
		case t.mode == Paillier:
			return OutPailSum
		default:
			return OutAsheSum
		}
	}

	for _, se := range q.Select {
		name := se.Alias
		if name == "" {
			name = se.String()
		}
		switch se.Agg {
		case sqlparse.AggNone:
			// Bare column in an aggregation query: must be the group key.
			if !isGroupCol(q, se.Col.Name) {
				return fmt.Errorf("translate: bare column %q in aggregate query must appear in GROUP BY", se.Col.Name)
			}
			tr.Client.Outputs = append(tr.Client.Outputs, Output{Name: name, Kind: OutGroupKey, SourceCol: se.Col.Name})
		case sqlparse.AggCount:
			a := countAgg()
			idx := addAgg(a)
			kind := OutPlain
			src := ""
			if a.Kind == engine.AggAsheSum {
				kind = OutAsheSum
				src = a.Col // indicator columns are keyed by physical name
			}
			tr.Client.Outputs = append(tr.Client.Outputs, Output{Name: name, Kind: kind, Agg: idx, SourceCol: src})
		case sqlparse.AggSum:
			a, err := sumAggFor(se.Col.Name, false)
			if err != nil {
				return err
			}
			idx := addAgg(a)
			cp, _ := t.measurePlan(q, plan, se.Col.Name)
			// ASHE keys are per physical column, so SourceCol carries the
			// physical name (base, squared, splayed, or indicator column).
			tr.Client.Outputs = append(tr.Client.Outputs, Output{Name: name, Kind: outKindForSum(cp), Agg: idx, SourceCol: a.Col})
		case sqlparse.AggAvg:
			a, err := sumAggFor(se.Col.Name, false)
			if err != nil {
				return err
			}
			sumIdx := addAgg(a)
			cntIdx := addAgg(countAgg())
			cp, _ := t.measurePlan(q, plan, se.Col.Name)
			cntOut := Output{Kind: OutPlain, Agg: cntIdx}
			if sp.Aggs[cntIdx].Kind == engine.AggAsheSum {
				cntOut = Output{Kind: OutAsheSum, Agg: cntIdx, SourceCol: sp.Aggs[cntIdx].Col}
			}
			tr.Client.Outputs = append(tr.Client.Outputs, Output{
				Name: name, Kind: OutAvg, Agg: sumIdx, SourceCol: a.Col,
				AuxSum:   &Output{Kind: outKindForSum(cp), Agg: sumIdx, SourceCol: a.Col},
				AuxCount: &cntOut,
			})
		case sqlparse.AggVar, sqlparse.AggStddev:
			sum, err := sumAggFor(se.Col.Name, false)
			if err != nil {
				return err
			}
			cp, _ := t.measurePlan(q, plan, se.Col.Name)
			var sq engine.Agg
			if t.mode == NoEnc || cp.Plain {
				sq = engine.Agg{Kind: engine.AggPlainSumSq, Col: se.Col.Name}
			} else {
				sq, err = sumAggFor(se.Col.Name, true)
				if err != nil {
					return err
				}
			}
			sumIdx := addAgg(sum)
			sqIdx := addAgg(sq)
			cntIdx := addAgg(countAgg())
			kind := OutVar
			if se.Agg == sqlparse.AggStddev {
				kind = OutStddev
			}
			out := Output{Name: name, Kind: kind, Agg: sumIdx, SourceCol: sum.Col}
			out.AuxSum = &Output{Kind: outKindForSum(cp), Agg: sumIdx, SourceCol: sum.Col}
			sqKind := out.AuxSum.Kind
			if sq.Kind == engine.AggPlainSumSq {
				sqKind = OutPlain
			}
			out.AuxSq = &Output{Kind: sqKind, Agg: sqIdx, SourceCol: sq.Col}
			cntOut := Output{Kind: OutPlain, Agg: cntIdx}
			if sp.Aggs[cntIdx].Kind == engine.AggAsheSum {
				cntOut = Output{Kind: OutAsheSum, Agg: cntIdx, SourceCol: sp.Aggs[cntIdx].Col}
			}
			out.AuxCount = &cntOut
			tr.Client.Outputs = append(tr.Client.Outputs, out)
		case sqlparse.AggMin, sqlparse.AggMax, sqlparse.AggMedian:
			cp, err := t.measurePlan(q, plan, se.Col.Name)
			if err != nil {
				return err
			}
			if t.mode == NoEnc || cp.Plain {
				kind := engine.AggPlainMin
				switch se.Agg {
				case sqlparse.AggMax:
					kind = engine.AggPlainMax
				case sqlparse.AggMedian:
					kind = engine.AggPlainMedian
				}
				idx := addAgg(engine.Agg{Kind: kind, Col: se.Col.Name})
				tr.Client.Outputs = append(tr.Client.Outputs, Output{Name: name, Kind: OutPlain, Agg: idx})
				break
			}
			if !cp.Ope || !cp.Ashe {
				return fmt.Errorf("translate: MIN/MAX/MEDIAN over %q needs OPE and ASHE forms", se.Col.Name)
			}
			if spl != nil {
				// The SPLASHE rewrite redirects sums to splayed columns, but
				// there is no splayed OPE form: extremes would be computed
				// over the wrong rows (dummy rows included). Refuse rather
				// than silently mis-answer; the planner should keep a DET
				// form for dimensions filtered alongside MIN/MAX/MEDIAN.
				return fmt.Errorf("translate: %v over %q cannot be combined with the splayed filter on %q", se.Agg, se.Col.Name, spl.dim)
			}
			kind := engine.AggOpeMin
			switch se.Agg {
			case sqlparse.AggMax:
				kind = engine.AggOpeMax
			case sqlparse.AggMedian:
				kind = engine.AggOpeMedian
			}
			companion := planner.AsheName(se.Col.Name)
			if t.mode == Paillier {
				// The baseline ships the winning row's Paillier ciphertext.
				companion = planner.PailName(se.Col.Name)
			}
			idx := addAgg(engine.Agg{Kind: kind, Col: planner.OpeName(se.Col.Name), Companion: companion})
			tr.Client.Outputs = append(tr.Client.Outputs, Output{Name: name, Kind: OutMinMax, Agg: idx, SourceCol: companion})
		default:
			return fmt.Errorf("translate: unsupported aggregate %v", se.Agg)
		}
	}
	return nil
}

// measurePlan resolves a measure column's plan, looking through joins.
func (t *translator) measurePlan(q *sqlparse.Query, plan *planner.Plan, m string) (*planner.ColumnPlan, error) {
	if cp := plan.Col(m); cp != nil {
		return cp, nil
	}
	if q.From.Join != nil {
		jplan, err := t.cat.Plan(q.From.Join.Table)
		if err == nil {
			if cp := jplan.Col(m); cp != nil {
				return cp, nil
			}
		}
	}
	return nil, fmt.Errorf("translate: unknown measure column %q", m)
}

// translateScan rewrites a projection (non-aggregate) query.
func (t *translator) translateScan(q *sqlparse.Query, plan *planner.Plan, tr *Translation) error {
	sp := tr.Server
	for _, se := range q.Select {
		name := se.Col.Name
		cp := plan.Col(name)
		if cp == nil {
			return fmt.Errorf("translate: unknown column %q", name)
		}
		sc := ScanCol{Name: name, SourceCol: name, Dict: cp.Dict}
		switch {
		case t.mode == NoEnc || cp.Plain:
			sp.Project = append(sp.Project, name)
		case cp.Ashe && t.mode == Paillier:
			sp.Project = append(sp.Project, planner.PailName(name))
			sc.Pail = true
		case cp.Ashe:
			sp.Project = append(sp.Project, planner.AsheName(name))
			sc.Ashe = true
			sc.SourceCol = planner.AsheName(name)
		case cp.Det:
			sp.Project = append(sp.Project, planner.DetName(name))
			sc.Det = true
			sc.SourceCol = cp.DetKey()
			sc.StrValues = cp.Type == schema.String && len(cp.Dict) == 0
		default:
			return fmt.Errorf("translate: column %q cannot be returned by a scan (no retrievable form)", name)
		}
		tr.Client.ScanCols = append(tr.Client.ScanCols, sc)
	}
	return nil
}

// translateGroupBy rewrites the GROUP BY clause and applies the §4.5
// inflation heuristic.
func (t *translator) translateGroupBy(q *sqlparse.Query, plan *planner.Plan, tr *Translation) error {
	if len(q.GroupBy) != 1 {
		return fmt.Errorf("translate: exactly one GROUP BY column is supported, got %d", len(q.GroupBy))
	}
	name := q.GroupBy[0].Name
	cp := plan.Col(name)
	if cp == nil {
		// Right-side join column.
		if q.From.Join != nil {
			jplan, err := t.cat.Plan(q.From.Join.Table)
			if err == nil {
				if jcp := jplan.Col(name); jcp != nil {
					cp = jcp
				}
			}
		}
		if cp == nil {
			return fmt.Errorf("translate: unknown GROUP BY column %q", name)
		}
	}
	gk := &GroupKeyPlan{SourceCol: name, KeyName: cp.DetKey(), Dict: cp.Dict}
	var col string
	switch {
	case t.mode == NoEnc || cp.Plain:
		col = name
	case cp.Det:
		col = planner.DetName(name)
		gk.Det = true
		gk.StrValues = cp.Type == schema.String && len(cp.Dict) == 0
	default:
		return fmt.Errorf("translate: GROUP BY on %q needs a plaintext or DET form", name)
	}
	// Declared key domain (dictionary size or schema cardinality) lets the
	// executor run its dense flat-array group path. Harmless when the group
	// column turns out to be strings or ciphertexts — the engine only
	// consults the bound for u64 keys, and out-of-bound keys hash-fall-back.
	gb := &engine.GroupBy{Col: col, KeyBound: cp.KeyDomain()}
	if !t.opts.DisableInflation && t.opts.ExpectedGroups > 0 && t.opts.Workers > t.opts.ExpectedGroups {
		// §4.5: inflate the number of groups to the number of available
		// workers when fewer groups than workers are expected.
		gb.Inflate = (t.opts.Workers + t.opts.ExpectedGroups - 1) / t.opts.ExpectedGroups
		tr.Client.Inflated = true
	}
	tr.Server.GroupBy = gb
	tr.Client.GroupKey = gk
	return nil
}

// translateJoin wires an equi-join into the server plan.
func (t *translator) translateJoin(q *sqlparse.Query, j *sqlparse.Join, plan *planner.Plan, sp *engine.Plan) error {
	rplan, err := t.cat.Plan(j.Table)
	if err != nil {
		return err
	}
	rtbl, err := t.cat.Table(j.Table, t.mode)
	if err != nil {
		return err
	}
	// Resolve which side each ON column belongs to.
	leftRef, rightRef := j.LeftCol, j.RightCol
	if plan.Col(leftRef.Name) == nil && rplan.Col(leftRef.Name) != nil {
		leftRef, rightRef = rightRef, leftRef
	}
	lcp := plan.Col(leftRef.Name)
	rcp := rplan.Col(rightRef.Name)
	if lcp == nil || rcp == nil {
		return fmt.Errorf("translate: cannot resolve join columns %s = %s", j.LeftCol, j.RightCol)
	}
	leftCol, rightCol := leftRef.Name, rightRef.Name
	if t.mode != NoEnc && !lcp.Plain {
		if !lcp.Det || !rcp.Det {
			return fmt.Errorf("translate: join keys %q/%q need DET forms", leftCol, rightCol)
		}
		leftCol = planner.DetName(leftCol)
		rightCol = planner.DetName(rightCol)
	}
	// Expose every right-side physical column the query might touch.
	var rightCols []string
	for _, ec := range rplan.EncColumns() {
		if t.mode == Paillier && ec.Scheme == schema.ASHE {
			continue
		}
		name := ec.Name
		if t.mode == NoEnc {
			name = ec.Source
		}
		if name != rightCol {
			rightCols = append(rightCols, name)
		}
	}
	if t.mode == NoEnc {
		rightCols = dedup(rightCols)
	}
	if t.mode == Paillier {
		for _, cname := range rplan.Order {
			if rplan.Col(cname).Ashe {
				rightCols = append(rightCols, planner.PailName(cname))
			}
		}
	}
	sp.Join = &engine.Join{Right: rtbl, LeftCol: leftCol, RightCol: rightCol, RightCols: rightCols}
	return nil
}

func isGroupCol(q *sqlparse.Query, name string) bool {
	for _, g := range q.GroupBy {
		if g.Name == name {
			return true
		}
	}
	return false
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func dedup(list []string) []string {
	seen := make(map[string]bool, len(list))
	out := list[:0]
	for _, v := range list {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
