//go:build unix

package durable

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile returns the file's bytes via a read-only memory mapping, so a
// segment's extents page in on demand and the kernel may reclaim clean pages
// under pressure. The second result reports whether the bytes are a true
// mapping (and must eventually go through munmapFile) or a heap copy.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	if st.Size() == 0 {
		return nil, false, nil
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, false, fmt.Errorf("durable: %s: %d bytes exceeds address space", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts) fall back to
		// an eager read; the segment is then heap-resident but still lazy at
		// the column-decode level.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, false, rerr
		}
		return data, false, nil
	}
	return data, true, nil
}

// munmapFile releases a mapping returned by mapFile.
func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
