package durable

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeSegmentRoundTrip(t *testing.T) {
	tbl := mkTable(t, "ship", 1, 500, 3)
	data, err := EncodeSegment(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, got), serialize(t, tbl)) {
		t.Fatal("decoded segment differs from source table")
	}

	// The in-memory encoding IS the file encoding: writeSegment must emit
	// the identical bytes.
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.seg")
	if _, err := writeSegment(path, tbl); err != nil {
		t.Fatal(err)
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, fileBytes) {
		t.Fatal("EncodeSegment bytes differ from writeSegment file bytes")
	}

	// Corruption in the header fails decode immediately.
	bad := append([]byte(nil), data...)
	bad[8] ^= 0xff
	if _, err := DecodeSegment(bad); err == nil {
		t.Fatal("corrupt header decoded without error")
	}
}

func TestShipManifestAndInstallRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := openStore(t, srcDir, func(o *Options) { o.CompactBytes = 1 }) // compact every append
	defer src.Close()

	base := mkTable(t, "big", 1, 300, 2)
	if err := src.Register("big@NoEnc", base); err != nil {
		t.Fatal(err)
	}
	// Two appends: the first compacts into a second segment (CompactBytes=1),
	// the second becomes the WAL tail shipped alongside.
	b1 := mkTable(t, "big", 301, 100, 1)
	if err := src.Append("big@NoEnc", b1); err != nil {
		t.Fatal(err)
	}
	tailBatch := mkTable(t, "big", 401, 50, 1)
	// Raise the threshold so this batch stays in the WAL.
	src.opts.CompactBytes = 1 << 30
	if err := src.Append("big@NoEnc", tailBatch); err != nil {
		t.Fatal(err)
	}

	segs, tail, err := src.ShipManifest("big@NoEnc")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("want >= 2 committed segments, got %+v", segs)
	}
	if tail == nil || tail.NumRows() != 50 {
		t.Fatalf("want 50-row wal tail, got %v", tail)
	}

	// Ship: read each segment's bytes, verify against the manifest CRC.
	var files []ShipFile
	for _, sg := range segs {
		data, err := src.SegmentBytes("big@NoEnc", sg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != sg.Size || crc32.ChecksumIEEE(data) != sg.CRC {
			t.Fatalf("segment %s bytes disagree with manifest", sg.Name)
		}
		files = append(files, ShipFile{Name: sg.Name, Data: data})
	}

	dst := openStore(t, dstDir)
	defer dst.Close()
	installed, err := dst.InstallTable("big@NoEnc", files, tail)
	if err != nil {
		t.Fatal(err)
	}

	// The assembled table matches the source's full contents.
	want := base.Snapshot()
	if err := want.AppendTable(b1); err != nil {
		t.Fatal(err)
	}
	if err := want.AppendTable(tailBatch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, installed), serialize(t, want)) {
		t.Fatal("installed table differs from source contents")
	}

	// CRC-for-CRC: the installed directory's segment files are byte-identical
	// to the source's, under the same names.
	dstSegs, dstTail, err := dst.ShipManifest("big@NoEnc")
	if err != nil {
		t.Fatal(err)
	}
	if len(dstSegs) != len(segs) {
		t.Fatalf("installed %d segments, want %d", len(dstSegs), len(segs))
	}
	for i := range segs {
		if dstSegs[i] != segs[i] {
			t.Fatalf("segment %d mismatch: installed %+v, source %+v", i, dstSegs[i], segs[i])
		}
	}
	if dstTail == nil || !bytes.Equal(serialize(t, dstTail), serialize(t, tail)) {
		t.Fatal("installed wal tail differs from shipped tail")
	}

	// The install survives a restart: reopen and compare again.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dstDir)
	defer re.Close()
	recovered := re.Tables()["big@NoEnc"]
	if recovered == nil {
		t.Fatal("installed table missing after reopen")
	}
	if !bytes.Equal(serialize(t, recovered), serialize(t, want)) {
		t.Fatal("recovered installed table differs from source contents")
	}
}

func TestInstallTableRejectsBadInput(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()

	seg, err := EncodeSegment(mkTable(t, "x", 1, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Hostile names must not escape the table directory.
	for _, name := range []string{"../evil.seg", "wal.log", "seg-1.seg", "@wal", ""} {
		if _, err := s.InstallTable("x@NoEnc", []ShipFile{{Name: name, Data: seg}}, nil); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	if _, err := s.InstallTable("x@NoEnc", nil, nil); err == nil {
		t.Fatal("empty install accepted")
	}

	// Installing over a table with committed segments is refused.
	if err := s.Register("x@NoEnc", mkTable(t, "x", 1, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallTable("x@NoEnc", []ShipFile{{Name: "seg-000001.seg", Data: seg}}, nil); err == nil {
		t.Fatal("install over committed segments accepted")
	}
}
