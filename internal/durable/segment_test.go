package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seabed/internal/store"
)

// segPath returns the single committed segment of the only table in dir.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	return filepath.Join(tableDir(t, dir), "seg-000001.seg")
}

// TestMappedRecovery pins the v2 segment contract: reopening a store maps the
// segment instead of reading it (MappedBytes accounts for the whole file, the
// recovered partitions are views) and the faulted data is byte-identical to
// what was registered.
func TestMappedRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := mkTable(t, "x", 1, 300, 3)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.MappedBytes == 0 {
		t.Fatalf("recovery mapped 0 bytes; stats %+v", rec)
	}
	got := s2.Tables()["x"]
	for _, p := range got.Parts {
		if !p.IsView() {
			t.Fatal("recovered partition is not a view")
		}
	}
	if got.MemBytes() != 0 {
		t.Fatalf("recovered table resident bytes = %d before any query, want 0", got.MemBytes())
	}
	if string(serialize(t, got)) != string(serialize(t, want)) {
		t.Fatal("mapped recovery differs from registered table")
	}
	st := s2.Residency().Stats()
	if st.ColumnFaults == 0 {
		t.Fatal("serializing the mapped table faulted no columns")
	}
}

// TestMappedRecoveryUnderBudget serializes a mapped table through a budget
// smaller than one partition, forcing evictions mid-walk, and checks the
// output still matches — eviction must never corrupt, only re-fault.
func TestMappedRecoveryUnderBudget(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := mkTable(t, "x", 1, 400, 8)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, func(o *Options) { o.MaxResidentBytes = 1 })
	defer s2.Close()
	got := serialize(t, s2.Tables()["x"])
	if string(got) != string(serialize(t, want)) {
		t.Fatal("budgeted recovery differs from registered table")
	}
	st := s2.Residency().Stats()
	if st.Evictions == 0 {
		t.Fatalf("1-byte budget over 8 partitions evicted nothing: %+v", st)
	}
	// Walk it twice: every partition re-faults after its eviction.
	faults := st.ColumnFaults
	if string(serialize(t, s2.Tables()["x"])) != string(serialize(t, want)) {
		t.Fatal("second budgeted walk differs")
	}
	if s2.Residency().Stats().ColumnFaults <= faults {
		t.Fatal("second walk faulted no columns despite evictions")
	}
}

// TestTruncatedSegmentFailsOpen cuts a committed v2 segment short at several
// points; every truncation must fail at Open (the header CRC or the extent
// bounds catch it), never be served.
func TestTruncatedSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Register("x", mkTable(t, "x", 1, 200, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// −8 always cuts into the final extent (inter-extent padding is < 8),
	// never just its padding, so the bounds check must reject it.
	for _, keep := range []int{5, 12, len(raw) / 4, len(raw) - 8} {
		if err := os.WriteFile(seg, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if s2, err := Open(Options{Dir: dir}); err == nil {
			s2.Close() //nolint:errcheck // test failure path
			t.Fatalf("open served a segment truncated to %d of %d bytes", keep, len(raw))
		}
	}
	// Restore and confirm the fixture itself was good.
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir)
	s3.Close() //nolint:errcheck // read-only reopen
}

// TestV1SegmentCompat replaces a committed segment's bytes with the
// pre-columnar v1 format (framed row-major WriteTo); recovery must detect the
// old magic, decode it eagerly onto the heap, and serve identical rows.
func TestV1SegmentCompat(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := mkTable(t, "x", 1, 150, 3)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the segment in the v1 format, as a pre-change daemon would
	// have left it on disk.
	seg := segPath(t, dir)
	f, err := os.Create(seg)
	if err != nil {
		t.Fatal(err)
	}
	fw := store.NewFrameWriter(f)
	if _, err := want.WriteTo(fw); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	rec := s2.Recovery()
	if rec.MappedBytes != 0 {
		t.Fatalf("v1 segment reported %d mapped bytes, want 0 (eager read)", rec.MappedBytes)
	}
	if rec.Bytes == 0 {
		t.Fatal("v1 segment reported 0 recovered bytes")
	}
	got := s2.Tables()["x"]
	for _, p := range got.Parts {
		if p.IsView() {
			t.Fatal("v1 segment produced a view partition")
		}
	}
	if string(serialize(t, got)) != string(serialize(t, want)) {
		t.Fatal("v1 recovery differs from registered table")
	}
}

// TestCloseUnmapsSegments documents the Close contract: after Close, the
// mapping is gone, so recovered view tables must not be used. We only assert
// Close succeeds with mapped segments open and is idempotent about its maps.
func TestCloseUnmapsSegments(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Register("x", mkTable(t, "x", 1, 50, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	// Fault a column so the mapping is actually referenced before Close.
	release, err := s2.Tables()["x"].Parts[0].Pin(nil)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptExtentNamesColumn checks the lazy CRC error is actionable: it
// names the segment file and the corrupt column.
func TestCorruptExtentNamesColumn(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Register("x", mkTable(t, "x", 1, 100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // last byte: inside the final column's extent
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("extent corruption failed Open: %v (want a lazy fault)", err)
	}
	defer s2.Close()
	parts := s2.Tables()["x"].Parts
	_, err = parts[len(parts)-1].Pin(nil)
	if err == nil {
		t.Fatal("pin served a corrupt extent")
	}
	if !strings.Contains(err.Error(), "checksum") || !strings.Contains(err.Error(), "seg-000001.seg") {
		t.Fatalf("fault error %v does not name the checksum and segment", err)
	}
}
