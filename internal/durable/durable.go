// Package durable is Seabed's disk-backed table store: the persistence
// layer a seabed-server mounts with -data-dir so its registry of encrypted
// tables survives crashes and restarts. The paper's prototype leans on HDFS
// for exactly this (§6.1 stores every dataset on the cloud provider's
// disks; Table 5 reports the resulting per-scheme disk sizes) — this
// package plays that role for the daemons, with a design borrowed from
// log-structured storage engines:
//
//   - Registered tables flush as immutable columnar segment files
//     ("SBSG" v2, specified in docs/FORMAT.md): a CRC'd directory header
//     followed by 8-aligned column extents, each with its own CRC, so the
//     file can be memory-mapped and served in place. Bit rot is detected
//     at read time — header eagerly at Open, extents lazily at first
//     fault — never served to a query. Pre-columnar v1 segments (the
//     framed store.WriteTo serialization) are detected by magic and
//     still decode eagerly, so old data directories open unchanged.
//   - Appends journal to a per-table write-ahead log before they are
//     acknowledged (length-prefixed, checksummed records; fsync per the
//     configured policy). Past Options.CompactBytes the accumulated batches
//     compact into a new segment and the log resets — segments already
//     written are never rewritten.
//   - A versioned manifest, replaced by atomic rename, is the commit
//     point: it names the live segment set per table. Anything on disk the
//     manifest doesn't reference is a leftover of a crashed operation and
//     is deleted on Open.
//
// Recovery (Open) replays manifest + segments + WAL per table in parallel.
// v2 segments are mapped, not read: their tables recover as lazy view
// partitions (store.NewViewPartition) whose columns fault in per query,
// and only the WAL tail loads eagerly — so boot cost scales with the
// journal, not the dataset, and Options.MaxResidentBytes bounds how much
// faulted column data stays on the heap (see store.Residency). A torn WAL
// tail — the expected artifact of a crash mid-append — is truncated, not
// an error: the record was never acknowledged under FsyncAlways, or falls
// inside FsyncBatch's documented loss window. A checksum-passing record
// that fails to decode is real corruption and does error. The recovered
// tables preserve identifier placement exactly, so a restarted shard
// daemon still covers its identifier ranges and the coordinator's
// envelope scoping, replay detection (store.Table.Covers), and
// Proxy.SyncTables rebinding all work unchanged.
package durable

import (
	"bufio"
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"seabed/internal/obs"
	"seabed/internal/store"
)

// FsyncPolicy selects when the write-ahead log reaches stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the log before every append acknowledgement: an
	// acked append survives any crash, at one fsync (~ms on commodity
	// disks) per append.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch leaves records to the kernel until Options.BatchBytes
	// accumulate, then syncs once: appends ack at memory speed and one
	// fsync amortizes over many records, but a crash may drop up to
	// BatchBytes of acknowledged appends. Registers, compactions, and the
	// manifest always sync regardless of policy.
	FsyncBatch
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	if p == FsyncBatch {
		return "batch"
	}
	return "always"
}

// ParseFsyncPolicy parses the -fsync flag values "always" and "batch".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	}
	return 0, fmt.Errorf("durable: fsync policy %q: want always or batch", s)
}

// Options configures a Store.
type Options struct {
	// Dir is the store's root directory, created if missing.
	Dir string
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// CompactBytes is the per-table WAL size past which appended batches
	// compact into a new segment. Default 4 MiB.
	CompactBytes int64
	// BatchBytes is FsyncBatch's sync threshold: unsynced WAL bytes that
	// force an fsync. Default 1 MiB.
	BatchBytes int64
	// MaxResidentBytes bounds the heap bytes materialized from mapped
	// segments (the -max-resident flag): past it, the least-recently-used
	// unpinned view partitions drop their vectors and later queries fault
	// them back in. 0 means unlimited. The WAL tail and tables registered
	// this run are heap-resident regardless — the budget governs the mapped,
	// recovered bulk, which is where a dataset larger than RAM lives.
	MaxResidentBytes int64
	// Log, when non-nil, receives structured recovery and compaction events.
	Log *slog.Logger
	// Metrics, when non-nil, receives the store's WAL latency histograms
	// (seabed_wal_append_seconds, seabed_wal_fsync_seconds) — typically the
	// owning server's registry, so one /metrics scrape covers both layers.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.CompactBytes <= 0 {
		o.CompactBytes = 4 << 20
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 1 << 20
	}
	return o
}

// RecoveryStats summarizes what Open rebuilt, for startup logs and
// server.Stats.
type RecoveryStats struct {
	// Tables and Segments count what was recovered; WALRecords counts
	// replayed append batches.
	Tables     int
	Segments   int
	WALRecords int
	// TornTails counts WALs truncated at a torn or checksum-failing tail
	// record (at most one tear per table).
	TornTails int
	// Bytes is the total segment + WAL bytes recovery made addressable:
	// eagerly read bytes plus MappedBytes.
	Bytes int64
	// MappedBytes is the subset of Bytes recovery mapped rather than read —
	// v2 columnar segments whose columns fault in on first query instead of
	// being decoded at startup.
	MappedBytes int64
	// Duration is recovery wall-clock time, tables recovering in parallel.
	Duration time.Duration
}

// tableState is one table's mutable durable state.
type tableState struct {
	id string

	mu       sync.Mutex
	segments []string
	nextSeq  int
	wal      *wal
	// pending accumulates the batches journaled since the last segment —
	// the exact contents the next compaction writes. Nil when the WAL holds
	// nothing uncompacted.
	pending *store.Table
	// endID is the last row identifier across segments and WAL, validating
	// that journaled batches only ever move forward.
	endID uint64
}

// Store is a disk-backed table store. Methods are safe for concurrent use;
// appends to different tables journal and sync independently.
type Store struct {
	opts Options

	// WAL latency instruments (nil without Options.Metrics). mAppend brackets
	// the whole journal write — serialize, record write, policy fsync — which
	// is the latency an acknowledged append paid for durability; mFsync
	// isolates the f.Sync call itself, the §6 disk-cost denominator.
	mAppend *obs.Histogram
	mFsync  *obs.Histogram

	// res tracks (and, under Options.MaxResidentBytes, bounds) the heap
	// bytes materialized from mapped segments.
	res *store.Residency

	// maps holds every mapped segment opened by recovery, released at Close.
	// Segments superseded by Register/compaction stay mapped until then:
	// queries on an earlier table snapshot may still alias them, and the
	// kernel reclaims their clean pages anyway once nothing faults them.
	mapsMu sync.Mutex
	maps   []*mappedSegment

	mu     sync.Mutex
	man    *manifest
	tables map[string]*tableState // by ref
	closed bool

	recovered map[string]*store.Table
	stats     RecoveryStats
}

// Open mounts the store at opts.Dir, creating it if empty, and recovers
// every table the manifest names: segments load in order, intact WAL
// records replay on top, torn tails truncate, and uncommitted leftovers of
// crashed operations are deleted. Recovery runs per-table in parallel; its
// cost is reported by Recovery.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create %s: %w", opts.Dir, err)
	}
	man, err := loadManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		opts:      opts,
		man:       man,
		res:       store.NewResidency(uint64(max(opts.MaxResidentBytes, 0))),
		tables:    make(map[string]*tableState, len(man.Tables)),
		recovered: make(map[string]*store.Table, len(man.Tables)),
	}
	if opts.Metrics != nil {
		s.mAppend = opts.Metrics.Histogram("seabed_wal_append_seconds",
			"WAL journal latency per append: serialize, record write, and any policy fsync.", nil, nil)
		s.mFsync = opts.Metrics.Histogram("seabed_wal_fsync_seconds",
			"WAL fsync latency.", nil, nil)
	}
	if err := s.removeOrphans(); err != nil {
		return nil, err
	}

	start := time.Now()
	type result struct {
		ref   string
		state *tableState
		tbl   *store.Table
		stats RecoveryStats
		err   error
	}
	results := make([]result, len(man.Tables))
	var wg sync.WaitGroup
	for i, mt := range man.Tables {
		wg.Add(1)
		go func(i int, mt manifestTable) {
			defer wg.Done()
			st, tbl, stats, err := s.recoverTable(mt)
			results[i] = result{ref: mt.Ref, state: st, tbl: tbl, stats: stats, err: err}
		}(i, mt)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			// Close the WALs the successful recoveries opened.
			for _, other := range results {
				if other.state != nil && other.state.wal != nil {
					other.state.wal.close() //nolint:errcheck // already failing
				}
			}
			return nil, fmt.Errorf("durable: recover table %q: %w", r.ref, r.err)
		}
		s.tables[r.ref] = r.state
		s.recovered[r.ref] = r.tbl
		s.stats.Tables++
		s.stats.Segments += r.stats.Segments
		s.stats.WALRecords += r.stats.WALRecords
		s.stats.TornTails += r.stats.TornTails
		s.stats.Bytes += r.stats.Bytes
		s.stats.MappedBytes += r.stats.MappedBytes
	}
	s.stats.Duration = time.Since(start)
	return s, nil
}

// recoverTable rebuilds one table from its directory.
func (s *Store) recoverTable(mt manifestTable) (*tableState, *store.Table, RecoveryStats, error) {
	var stats RecoveryStats
	tdir := filepath.Join(s.opts.Dir, mt.ID)
	var tbl *store.Table
	for _, seg := range mt.Segments {
		path := filepath.Join(tdir, seg)
		part, nRead, nMapped, err := s.openSegment(path)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("segment %s: %w", seg, err)
		}
		stats.Bytes += nRead + nMapped
		stats.MappedBytes += nMapped
		stats.Segments++
		if tbl == nil {
			tbl = part
		} else if err := tbl.AppendTable(part); err != nil {
			return nil, nil, stats, fmt.Errorf("segment %s does not continue its predecessors: %w", seg, err)
		}
	}
	if tbl == nil {
		return nil, nil, stats, fmt.Errorf("manifest lists no segments")
	}

	walPath := filepath.Join(tdir, walName)
	batches, goodBytes, torn, err := replayWAL(walPath)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.Bytes += goodBytes
	if torn {
		stats.TornTails++
		s.log("truncating torn wal tail", "ref", mt.Ref, "offset", goodBytes)
		if err := os.Truncate(walPath, goodBytes); err != nil {
			return nil, nil, stats, fmt.Errorf("truncate torn wal: %w", err)
		}
	}
	var pending *store.Table
	for _, batch := range batches {
		// A record already covered by the segments was compacted in a run
		// that crashed between the manifest commit and the WAL reset — the
		// rows are in a segment, the record is a harmless leftover.
		if batch.NumRows() > 0 && tbl.Covers(batch.Parts[0].StartID, batch.EndID()) {
			continue
		}
		if err := tbl.AppendTable(batch); err != nil {
			return nil, nil, stats, fmt.Errorf("wal record does not continue the table: %w", err)
		}
		if pending == nil {
			pending = batch.Snapshot()
		} else if err := pending.AppendTable(batch); err != nil {
			return nil, nil, stats, fmt.Errorf("wal records out of order: %w", err)
		}
		stats.WALRecords++
	}
	w, err := openWAL(walPath)
	if err != nil {
		return nil, nil, stats, err
	}
	w.obsFsync = s.mFsync
	st := &tableState{
		id:       mt.ID,
		segments: append([]string(nil), mt.Segments...),
		nextSeq:  nextSegSeq(mt.Segments),
		wal:      w,
		pending:  pending,
		endID:    tbl.EndID(),
	}
	return st, tbl, stats, nil
}

// Tables returns the tables recovered at Open, keyed by ref. The snapshot
// is taken once; later Register/Append calls do not alter it (the caller —
// the server registry — owns the live copies).
func (s *Store) Tables() map[string]*store.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*store.Table, len(s.recovered))
	for ref, t := range s.recovered {
		out[ref] = t
	}
	return out
}

// Recovery reports what Open rebuilt.
func (s *Store) Recovery() RecoveryStats {
	return s.stats
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.opts.Dir }

// Residency returns the store's resident-budget manager: the live counters
// behind Options.MaxResidentBytes (faults, evictions, resident bytes), which
// the server surfaces through Stats and the obs registry.
func (s *Store) Residency() *store.Residency { return s.res }

// Register durably stores a table under ref, replacing any previous
// contents: the table flushes to a fresh segment, the manifest commits, and
// the previous segments and WAL records become garbage. The table is only
// addressable once Register returns, so an upload acknowledged by a durable
// server is on disk.
func (s *Store) Register(ref string, t *store.Table) error {
	if ref == "" {
		return fmt.Errorf("durable: empty table ref")
	}
	if t == nil {
		return fmt.Errorf("durable: nil table")
	}
	st, err := s.stateFor(ref, true)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tdir := filepath.Join(s.opts.Dir, st.id)
	if st.wal == nil {
		// Fresh table: create its directory and log.
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			return fmt.Errorf("durable: create table dir: %w", err)
		}
		w, err := openWAL(filepath.Join(tdir, walName))
		if err != nil {
			return err
		}
		w.obsFsync = s.mFsync
		st.wal = w
	}
	// Empty the WAL — by folding any journaled batches into a segment of
	// the *old* contents — before the replacement commits. Ordering is the
	// crash-safety argument: if the WAL were still holding records when the
	// manifest swapped to the replacement, a crash before the reset would
	// leave records that recovery cannot tell from legal gap-appends and
	// would replay onto the new table. Compaction's own crash window is
	// covered (its records stay identifier-covered by the segment it
	// commits), so after this line the WAL is durably empty and the swap
	// below has no WAL state to race.
	if st.wal.size > 0 {
		if err := s.compactLocked(ref, st); err != nil {
			return fmt.Errorf("durable: fold wal before re-register of %q: %w", ref, err)
		}
	}
	seg := segName(st.nextSeq)
	if _, err := writeSegment(filepath.Join(tdir, seg), t); err != nil {
		return err
	}
	old := st.segments
	if err := s.commitTable(st.id, ref, []string{seg}); err != nil {
		return err
	}
	st.nextSeq++
	st.segments = []string{seg}
	st.pending = nil
	st.endID = t.EndID()
	for _, stale := range old {
		os.Remove(filepath.Join(tdir, stale)) //nolint:errcheck // unreferenced; Open re-collects
	}
	return nil
}

// Append journals one batch of later rows for ref. Under FsyncAlways the
// record is on stable storage when Append returns — the caller may then
// acknowledge the append to its client. Past CompactBytes of journaled
// records the batches compact into a new segment and the log resets.
func (s *Store) Append(ref string, batch *store.Table) error {
	if batch == nil {
		return fmt.Errorf("durable: nil batch")
	}
	st, err := s.stateFor(ref, false)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if batch.NumRows() > 0 && batch.Parts[0].StartID <= st.endID {
		return fmt.Errorf("durable: append to %q rewinds identifiers (batch starts at %d, table ends at %d)",
			ref, batch.Parts[0].StartID, st.endID)
	}
	journalStart := time.Now()
	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		return fmt.Errorf("durable: serialize batch: %w", err)
	}
	if err := st.wal.append(buf.Bytes(), s.opts.Fsync == FsyncAlways, s.opts.BatchBytes); err != nil {
		return err
	}
	if s.mAppend != nil {
		s.mAppend.ObserveDuration(time.Since(journalStart))
	}
	if batch.NumRows() > 0 {
		if st.pending == nil {
			st.pending = batch.Snapshot()
		} else if err := st.pending.AppendTable(batch); err != nil {
			return fmt.Errorf("durable: grow pending batches: %w", err)
		}
		st.endID = batch.EndID()
	}
	// The append is durable the moment its WAL record is; compaction is an
	// optimization, so a compaction failure (disk full writing the segment,
	// say) must not fail the append — the caller would report an error for
	// data that IS on disk, and a retried batch would then trip the rewind
	// check above against its own journaled record. Log it and try again
	// at the next append; until one succeeds the WAL simply keeps growing.
	if st.wal.size >= s.opts.CompactBytes {
		if err := s.compactLocked(ref, st); err != nil {
			s.log("compaction deferred", "ref", ref, "err", err)
		}
	}
	return nil
}

// compactLocked folds the table's journaled batches into a new immutable
// segment and resets the WAL. st.mu is held. Crash windows are covered by
// recovery: a segment without a manifest commit is an orphan; a manifest
// commit without the WAL reset leaves covered records that replay detects
// via identifier coverage and skips.
func (s *Store) compactLocked(ref string, st *tableState) error {
	if st.pending == nil || st.pending.NumRows() == 0 {
		// Only empty or superseded records: nothing worth a segment.
		return st.wal.reset()
	}
	tdir := filepath.Join(s.opts.Dir, st.id)
	seg := segName(st.nextSeq)
	n, err := writeSegment(filepath.Join(tdir, seg), st.pending)
	if err != nil {
		return err
	}
	segments := append(append([]string(nil), st.segments...), seg)
	if err := s.commitTable(st.id, ref, segments); err != nil {
		return err
	}
	st.nextSeq++
	st.segments = segments
	st.pending = nil
	if err := st.wal.reset(); err != nil {
		return err
	}
	s.log("wal compacted", "ref", ref, "segment", seg, "bytes", n, "segments", len(segments))
	return nil
}

// Sync forces outstanding FsyncBatch records to stable storage, across all
// tables.
func (s *Store) Sync() error {
	for _, st := range s.states() {
		st.mu.Lock()
		err := st.wal.sync()
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes every table's log and releases every segment
// mapping. The store is unusable after, and so are the tables recovered from
// it: their view partitions alias the released mappings.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	first := s.closeLocked()
	s.mapsMu.Lock()
	maps := s.maps
	s.maps = nil
	s.mapsMu.Unlock()
	for _, m := range maps {
		if err := m.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Store) closeLocked() error {
	var first error
	for _, st := range s.states() {
		st.mu.Lock()
		if st.wal != nil {
			if err := st.wal.close(); err != nil && first == nil {
				first = err
			}
			st.wal = nil
		}
		st.mu.Unlock()
	}
	return first
}

// states snapshots the table states under the store lock.
func (s *Store) states() []*tableState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*tableState, 0, len(s.tables))
	for _, st := range s.tables {
		out = append(out, st)
	}
	return out
}

// stateFor resolves ref's state, allocating a directory ID for a new ref
// when create is set.
func (s *Store) stateFor(ref string, create bool) (*tableState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("durable: store is closed")
	}
	if st := s.tables[ref]; st != nil {
		return st, nil
	}
	if !create {
		return nil, fmt.Errorf("durable: unknown table ref %q (register it first)", ref)
	}
	st := &tableState{id: fmt.Sprintf("t%06d", s.man.NextID), nextSeq: 1}
	s.man.NextID++
	s.tables[ref] = st
	return st, nil
}

// commitTable updates one table's manifest entry and commits the manifest.
func (s *Store) commitTable(id, ref string, segments []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mt := s.man.table(id)
	if mt == nil {
		s.man.Tables = append(s.man.Tables, manifestTable{ID: id, Ref: ref})
		mt = &s.man.Tables[len(s.man.Tables)-1]
	}
	mt.Ref = ref
	mt.Segments = append([]string(nil), segments...)
	return s.man.commit(s.opts.Dir)
}

// removeOrphans deletes files the manifest does not reference: leftovers of
// registers and compactions that crashed before their commit.
func (s *Store) removeOrphans() error {
	known := make(map[string]map[string]bool, len(s.man.Tables)) // id -> segment set
	for _, mt := range s.man.Tables {
		segs := make(map[string]bool, len(mt.Segments))
		for _, seg := range mt.Segments {
			segs[seg] = true
		}
		known[mt.ID] = segs
	}
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("durable: scan %s: %w", s.opts.Dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestName {
			continue
		}
		if !e.IsDir() {
			// Stray files at the root (a MANIFEST.tmp from a crashed commit).
			s.log("removing orphan file", "name", name)
			os.Remove(filepath.Join(s.opts.Dir, name)) //nolint:errcheck // best-effort GC
			continue
		}
		segs, ok := known[name]
		if !ok {
			s.log("removing orphan table dir", "name", name)
			os.RemoveAll(filepath.Join(s.opts.Dir, name)) //nolint:errcheck // best-effort GC
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.opts.Dir, name))
		if err != nil {
			return fmt.Errorf("durable: scan table dir %s: %w", name, err)
		}
		for _, f := range files {
			if f.Name() == walName || segs[f.Name()] {
				continue
			}
			s.log("removing orphan segment", "dir", name, "name", f.Name())
			os.Remove(filepath.Join(s.opts.Dir, name, f.Name())) //nolint:errcheck // best-effort GC
		}
	}
	return nil
}

func (s *Store) log(msg string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Info(msg, args...)
	}
}

// segName formats a segment file name; the sequence keeps append order
// lexical.
func segName(seq int) string { return fmt.Sprintf("seg-%06d.seg", seq) }

// nextSegSeq continues a table's segment numbering past its recovered set.
func nextSegSeq(segments []string) int {
	next := 1
	for _, seg := range segments {
		var n int
		if _, err := fmt.Sscanf(seg, "seg-%06d.seg", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// readSegment reads one v1 (framed, row-major) segment file, verifying every
// frame checksum, and returns the table plus the bytes consumed. New
// segments are written in the v2 columnar format (segment.go); this reader
// survives so data directories created before the format change open
// unchanged.
func readSegment(path string) (*store.Table, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	t, err := store.Read(store.NewFrameReader(bufio.NewReaderSize(f, 1<<16)))
	if err != nil {
		return nil, 0, err
	}
	return t, st.Size(), nil
}
