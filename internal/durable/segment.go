package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"seabed/internal/store"
)

// Segment format v2: directly-mappable column extents.
//
// A v1 segment was the table's row-major store.WriteTo serialization passed
// through store.FrameWriter — recovery had to decode every byte into heap
// vectors before the first query. A v2 segment is the same data laid out so
// the file IS the table: a self-describing header (the per-column offset
// table) followed by 8-aligned column extents in the shared encoding of
// store.AppendColumnExtent. Recovery maps the file and builds view
// partitions; a query faults in just the extents it touches, verified
// against their CRCs on first use. docs/FORMAT.md is the authoritative spec.
//
// Layout (integers little-endian, fixed width):
//
//	magic "SBSG"                     4 B
//	version                          u32 (= 2)
//	headerLen                        u32 (bytes, magic through header CRC)
//	tableName                        u32 length + bytes
//	numParts                         u32
//	per partition:
//	  startID                        u64
//	  rows                           u64
//	  numCols                        u32
//	  per column:
//	    name                         u32 length + bytes
//	    kind                         u8
//	    offset                       u64 (absolute, 8-aligned)
//	    size                         u64 (extent bytes)
//	    crc32                        u32 (IEEE, over the extent bytes)
//	headerCRC                        u32 (IEEE, over bytes [0, headerLen-4))
//	padding to 8-byte boundary, then the extents, each padded to 8
//
// The header CRC is verified at open — a torn or truncated segment fails
// loudly there (segments are fsynced before their manifest commit, so unlike
// a WAL tail a tear is real corruption, not a crash artifact). Extent CRCs
// are verified lazily at first fault, so bit rot in a cold column errors the
// query that would have read it instead of being served.

const (
	segMagic   = "SBSG"
	segVersion = 2
	// segMaxHeader bounds a declared header length (64 MiB is thousands of
	// partitions), protecting open from a corrupt prefix.
	segMaxHeader = 64 << 20
)

// segColMeta is one column's directory entry in a mapped segment.
type segColMeta struct {
	name     string
	kind     store.Kind
	off      uint64
	size     uint64
	crc      uint32
	verified bool
}

// segPartMeta is one partition's directory entry in a mapped segment.
type segPartMeta struct {
	startID uint64
	rows    int
	cols    []segColMeta
}

// mappedSegment is an open v2 segment: the file's bytes (memory-mapped where
// the platform supports it, read onto the heap otherwise) plus the decoded
// directory. Column extents are decoded out of data on demand by the view
// partitions built over it; data must stay immutable and mapped until close.
type mappedSegment struct {
	path   string
	data   []byte
	mapped bool
	name   string
	parts  []segPartMeta
}

// segPartLoader adapts one partition of a mapped segment to
// store.ColumnLoader. LoadColumn runs under the owning view's lock, which
// serializes access to the partition's verified flags.
type segPartLoader struct {
	seg *mappedSegment
	pi  int
}

// LoadColumn implements store.ColumnLoader: verify the extent's CRC on first
// touch, then decode it in place (the vectors alias the mapping).
func (l *segPartLoader) LoadColumn(i int) (store.Column, error) {
	pm := &l.seg.parts[l.pi]
	cm := &pm.cols[i]
	ext := l.seg.data[cm.off : cm.off+cm.size]
	if !cm.verified {
		if crc32.ChecksumIEEE(ext) != cm.crc {
			return store.Column{}, fmt.Errorf("durable: segment %s: column %q extent checksum mismatch (bit rot?)",
				filepath.Base(l.seg.path), cm.name)
		}
		cm.verified = true
	}
	col, n, err := store.DecodeColumnExtent(cm.name, cm.kind, pm.rows, ext)
	if err != nil {
		return store.Column{}, fmt.Errorf("durable: segment %s: %w", filepath.Base(l.seg.path), err)
	}
	if uint64(n) != cm.size {
		return store.Column{}, fmt.Errorf("durable: segment %s: column %q extent decoded %d of %d bytes",
			filepath.Base(l.seg.path), cm.name, n, cm.size)
	}
	return col, nil
}

// table builds the segment's table: one view partition per directory entry,
// charged against res.
func (m *mappedSegment) table(res *store.Residency) (*store.Table, error) {
	parts := make([]*store.Partition, len(m.parts))
	for pi := range m.parts {
		pm := &m.parts[pi]
		meta := make([]store.ColMeta, len(pm.cols))
		for ci, cm := range pm.cols {
			meta[ci] = store.ColMeta{Name: cm.name, Kind: cm.kind}
		}
		parts[pi] = store.NewViewPartition(pm.startID, pm.rows, meta, &segPartLoader{seg: m, pi: pi}, res)
	}
	return store.Assemble(m.name, parts)
}

// close releases the segment's mapping (a no-op for heap-read fallbacks).
// Any view partition still aliasing it must not be used afterwards.
func (m *mappedSegment) close() error {
	if !m.mapped {
		m.data = nil
		return nil
	}
	m.mapped = false
	data := m.data
	m.data = nil
	return munmapFile(data)
}

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// colPlan pairs one pinned column with its directory entry while a segment
// is being laid out.
type colPlan struct {
	col  *store.Column
	meta segColMeta
}

// planSegment pins t resident and lays out its v2 segment: every column's
// extent plan (offset, size, CRC) plus the emitted directory header. The
// returned release undoes the pins; callers must invoke it once emission is
// done. Shared by the streaming file writer and the in-memory encoder so
// disk bytes and shipped bytes come from one layout.
func planSegment(t *store.Table) (plans [][]colPlan, head []byte, release func(), err error) {
	// Pass 1: pin everything resident and size the directory + extents.
	var releases []func()
	release = func() {
		for _, r := range releases {
			r()
		}
	}
	fail := func(err error) ([][]colPlan, []byte, func(), error) {
		release()
		return nil, nil, func() {}, err
	}
	headerLen := uint64(4 + 4 + 4 + 4 + len(t.Name) + 4) // magic, version, headerLen, name, numParts
	for _, p := range t.Parts {
		rel, err := p.Pin(nil)
		if err != nil {
			return fail(fmt.Errorf("durable: pin partition for segment: %w", err))
		}
		releases = append(releases, rel)
		headerLen += 8 + 8 + 4 // startID, rows, numCols
		pc := make([]colPlan, len(p.Cols))
		for i := range p.Cols {
			c := &p.Cols[i]
			headerLen += uint64(4+len(c.Name)) + 1 + 8 + 8 + 4 // name, kind, off, size, crc
			pc[i] = colPlan{col: c, meta: segColMeta{name: c.Name, kind: c.Kind, size: uint64(store.ColumnExtentSize(c))}}
		}
		plans = append(plans, pc)
	}
	headerLen += 4 // header CRC
	off := align8(headerLen)
	for _, pc := range plans {
		for i := range pc {
			pc[i].meta.off = off
			off += align8(pc[i].meta.size)
		}
	}

	// Pass 2: encode extents (reusing one buffer) to learn their CRCs.
	var ext []byte
	for _, pc := range plans {
		for i := range pc {
			ext = store.AppendColumnExtent(ext[:0], pc[i].col)
			pc[i].meta.crc = crc32.ChecksumIEEE(ext)
			if uint64(len(ext)) != pc[i].meta.size {
				return fail(fmt.Errorf("durable: column %q extent encoded %d bytes, sized %d", pc[i].meta.name, len(ext), pc[i].meta.size))
			}
		}
	}

	// Emit the directory header.
	head = make([]byte, 0, headerLen)
	head = append(head, segMagic...)
	head = binary.LittleEndian.AppendUint32(head, segVersion)
	head = binary.LittleEndian.AppendUint32(head, uint32(headerLen))
	head = binary.LittleEndian.AppendUint32(head, uint32(len(t.Name)))
	head = append(head, t.Name...)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(t.Parts)))
	for pi, p := range t.Parts {
		head = binary.LittleEndian.AppendUint64(head, p.StartID)
		head = binary.LittleEndian.AppendUint64(head, uint64(p.NumRows()))
		head = binary.LittleEndian.AppendUint32(head, uint32(len(plans[pi])))
		for i := range plans[pi] {
			m := &plans[pi][i].meta
			head = binary.LittleEndian.AppendUint32(head, uint32(len(m.name)))
			head = append(head, m.name...)
			head = append(head, byte(m.kind))
			head = binary.LittleEndian.AppendUint64(head, m.off)
			head = binary.LittleEndian.AppendUint64(head, m.size)
			head = binary.LittleEndian.AppendUint32(head, m.crc)
		}
	}
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(head))
	if uint64(len(head)) != headerLen {
		return fail(fmt.Errorf("durable: segment header sized %d, emitted %d", headerLen, len(head)))
	}
	return plans, head, release, nil
}

// writeSegment durably writes t as one v2 columnar segment: directory
// header, then each partition's column extents, 8-aligned, each with its own
// CRC. The file is fsynced, as is the parent directory, so the segment's
// name survives with its contents. Returns the bytes written.
func writeSegment(path string, t *store.Table) (int64, error) {
	plans, head, release, err := planSegment(t)
	if err != nil {
		return 0, err
	}
	defer release()
	headerLen := uint64(len(head))
	var ext []byte

	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("durable: create segment: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var written int64
	emit := func(b []byte) error {
		n, err := bw.Write(b)
		written += int64(n)
		return err
	}
	var pad [8]byte
	fail := func(err error) (int64, error) {
		f.Close()
		return 0, fmt.Errorf("durable: write segment: %w", err)
	}
	if err := emit(head); err != nil {
		return fail(err)
	}
	if err := emit(pad[:align8(headerLen)-headerLen]); err != nil {
		return fail(err)
	}
	for _, pc := range plans {
		for i := range pc {
			ext = store.AppendColumnExtent(ext[:0], pc[i].col)
			if err := emit(ext); err != nil {
				return fail(err)
			}
			if err := emit(pad[:align8(pc[i].meta.size)-pc[i].meta.size]); err != nil {
				return fail(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("durable: close segment: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return written, nil
}

// openColumnarSegment maps a v2 segment file and decodes its directory,
// validating the header CRC and every extent's bounds so a torn or truncated
// segment fails here rather than mid-query.
func openColumnarSegment(path string) (*mappedSegment, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	m := &mappedSegment{path: path, data: data, mapped: mapped}
	if err := m.parseHeader(); err != nil {
		m.close() //nolint:errcheck // already failing
		return nil, err
	}
	return m, nil
}

// parseHeader decodes and validates the segment directory.
func (m *mappedSegment) parseHeader() error {
	data := m.data
	if len(data) < 12 || string(data[:4]) != segMagic {
		return fmt.Errorf("durable: segment %s: bad magic", filepath.Base(m.path))
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != segVersion {
		return fmt.Errorf("durable: segment %s: unsupported version %d", filepath.Base(m.path), v)
	}
	headerLen := uint64(binary.LittleEndian.Uint32(data[8:]))
	if headerLen < 20 || headerLen > segMaxHeader || headerLen > uint64(len(data)) {
		return fmt.Errorf("durable: segment %s: header length %d outside file of %d bytes (truncated?)",
			filepath.Base(m.path), headerLen, len(data))
	}
	head := data[:headerLen]
	want := binary.LittleEndian.Uint32(head[headerLen-4:])
	if crc32.ChecksumIEEE(head[:headerLen-4]) != want {
		return fmt.Errorf("durable: segment %s: header checksum mismatch (torn write?)", filepath.Base(m.path))
	}
	// The CRC vouches for everything below, but lengths are still bounded
	// against the buffer — a stale CRC over a corrupt header must not panic.
	d := segDec{buf: head[:headerLen-4], off: 12}
	m.name = d.str()
	nParts := d.u32()
	for p := uint64(0); p < uint64(nParts) && d.err == nil; p++ {
		var pm segPartMeta
		pm.startID = d.u64()
		rows := d.u64()
		nCols := d.u32()
		if rows > uint64(len(m.data)) { // any real row costs ≥ 1 byte somewhere
			d.fail("row count")
			break
		}
		pm.rows = int(rows)
		for c := uint32(0); c < nCols && d.err == nil; c++ {
			cm := segColMeta{name: d.str(), kind: store.Kind(d.u8())}
			cm.off = d.u64()
			cm.size = d.u64()
			cm.crc = d.u32()
			if d.err != nil {
				break
			}
			if cm.kind != store.U64 && cm.kind != store.Bytes && cm.kind != store.Str {
				return fmt.Errorf("durable: segment %s: column %q has unknown kind %d",
					filepath.Base(m.path), cm.name, int(cm.kind))
			}
			if cm.off%8 != 0 || cm.off < headerLen || cm.off+cm.size < cm.off || cm.off+cm.size > uint64(len(m.data)) {
				return fmt.Errorf("durable: segment %s: column %q extent [%d,%d) outside file of %d bytes (truncated?)",
					filepath.Base(m.path), cm.name, cm.off, cm.off+cm.size, len(m.data))
			}
			pm.cols = append(pm.cols, cm)
		}
		if d.err == nil {
			m.parts = append(m.parts, pm)
		}
	}
	if d.err != nil {
		return fmt.Errorf("durable: segment %s: %v", filepath.Base(m.path), d.err)
	}
	return nil
}

// segDec is a bounds-checked little-endian cursor over the header bytes.
type segDec struct {
	buf []byte
	off int
	err error
}

func (d *segDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated header %s at offset %d", what, d.off)
	}
}

func (d *segDec) take(n int) []byte {
	if d.err != nil || len(d.buf)-d.off < n {
		d.fail("field")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *segDec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *segDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *segDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *segDec) str() string {
	n := d.u32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// openSegment opens one segment file in whichever format it carries: v2
// columnar segments map lazily into view partitions, v1 framed segments (the
// pre-columnar format, still honored so existing data directories open
// unchanged) decode eagerly onto the heap. It returns the segment's table,
// the bytes read eagerly, and the bytes mapped lazily.
func (s *Store) openSegment(path string) (*store.Table, int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	var head [4]byte
	n, err := f.ReadAt(head[:], 0)
	f.Close()
	if err != nil && n < len(segMagic) {
		return nil, 0, 0, fmt.Errorf("durable: segment %s: read magic: %v", filepath.Base(path), err)
	}
	if string(head[:]) != segMagic {
		t, nRead, err := readSegment(path)
		return t, nRead, 0, err
	}
	m, err := openColumnarSegment(path)
	if err != nil {
		return nil, 0, 0, err
	}
	t, err := m.table(s.res)
	if err != nil {
		m.close() //nolint:errcheck // already failing
		return nil, 0, 0, err
	}
	s.mapsMu.Lock()
	s.maps = append(s.maps, m)
	s.mapsMu.Unlock()
	return t, 0, int64(len(m.data)), nil
}
