package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seabed/internal/store"
)

// mkTable builds a table of rows mixed-kind rows starting at startID.
func mkTable(t *testing.T, name string, startID uint64, rows, parts int) *store.Table {
	t.Helper()
	u := make([]uint64, rows)
	b := make([][]byte, rows)
	s := make([]string, rows)
	for i := range u {
		id := startID + uint64(i)
		u[i] = id * 7
		b[i] = []byte{byte(id), byte(id >> 8), 0xEE}
		s[i] = fmt.Sprintf("row-%d", id)
	}
	tbl, err := store.BuildFrom(name, []store.Column{
		{Name: "u", Kind: store.U64, U64: u},
		{Name: "b", Kind: store.Bytes, Bytes: b},
		{Name: "s", Kind: store.Str, Str: s},
	}, parts, startID)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// serialize renders a table to bytes for byte-identical comparison.
func serialize(t *testing.T, tbl *store.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openStore(t *testing.T, dir string, mut ...func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir}
	for _, m := range mut {
		m(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegisterAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)

	want := mkTable(t, "sales", 1, 100, 4)
	if err := s.Register("sales#seabed", want); err != nil {
		t.Fatal(err)
	}
	other := mkTable(t, "dims", 1, 10, 1)
	if err := s.Register("dims#seabed", other); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		batch := mkTable(t, "sales", want.EndID()+1, 20, 2)
		if err := s.Append("sales#seabed", batch); err != nil {
			t.Fatal(err)
		}
		if err := want.AppendTable(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir)
	defer re.Close()
	tables := re.Tables()
	if len(tables) != 2 {
		t.Fatalf("recovered %d tables, want 2", len(tables))
	}
	if got := tables["sales#seabed"]; !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatalf("recovered sales diverges: %d rows vs %d", got.NumRows(), want.NumRows())
	}
	if got := tables["dims#seabed"]; !bytes.Equal(serialize(t, got), serialize(t, other)) {
		t.Fatal("recovered dims diverges")
	}
	st := re.Recovery()
	if st.Tables != 2 || st.WALRecords != 5 || st.TornTails != 0 || st.Bytes == 0 || st.Duration <= 0 {
		t.Fatalf("recovery stats off: %+v", st)
	}
	// Recovered tables keep accepting appends.
	batch := mkTable(t, "sales", want.EndID()+1, 10, 1)
	if err := re.Append("sales#seabed", batch); err != nil {
		t.Fatal(err)
	}
}

func TestAppendUnknownRefErrors(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.Append("ghost", mkTable(t, "g", 1, 5, 1)); err == nil {
		t.Fatal("append to unregistered ref succeeded")
	}
}

func TestAppendRewindRejected(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	if err := s.Register("x", mkTable(t, "x", 1, 50, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("x", mkTable(t, "x", 10, 5, 1)); err == nil {
		t.Fatal("overlapping append journaled")
	}
}

// TestFsyncAlwaysWritesThrough asserts the acknowledgement contract: after
// Append returns under FsyncAlways, the record is complete in the log file
// (no process-level buffering), so a replay of the file as it exists on
// disk already yields the batch.
func TestFsyncAlwaysWritesThrough(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	if err := s.Register("x", mkTable(t, "x", 1, 10, 1)); err != nil {
		t.Fatal(err)
	}
	batch := mkTable(t, "x", 11, 7, 1)
	if err := s.Append("x", batch); err != nil {
		t.Fatal(err)
	}
	// Find the WAL and replay it without closing the store — as a crashed
	// process's recovery would.
	walPath := findWAL(t, dir)
	batches, _, torn, err := replayWAL(walPath)
	if err != nil || torn {
		t.Fatalf("replay of live wal: torn=%v err=%v", torn, err)
	}
	if len(batches) != 1 || !bytes.Equal(serialize(t, batches[0]), serialize(t, batch)) {
		t.Fatalf("live wal holds %d batches, want the acked one", len(batches))
	}
}

// TestTornTailTruncated damages the last WAL record several ways; recovery
// must keep every committed prefix record, drop the tail, truncate the
// file, and count the tear — and a second recovery must be clean.
func TestTornTailTruncated(t *testing.T) {
	for _, damage := range []struct {
		name string
		mut  func(wal []byte) []byte
	}{
		{"truncated-header", func(w []byte) []byte { return w[:lastRecordOffset(t, w)+4] }},
		{"truncated-payload", func(w []byte) []byte { return w[:len(w)-10] }},
		{"bit-rot", func(w []byte) []byte {
			w[len(w)-1] ^= 0xFF
			return w
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir)
			want := mkTable(t, "x", 1, 30, 2)
			if err := s.Register("x", want); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				batch := mkTable(t, "x", want.EndID()+1, 8, 1)
				if err := s.Append("x", batch); err != nil {
					t.Fatal(err)
				}
				if i < 2 { // the third batch will be destroyed
					if err := want.AppendTable(batch); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			walPath := findWAL(t, dir)
			raw, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, damage.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			re := openStore(t, dir)
			got := re.Tables()["x"]
			if !bytes.Equal(serialize(t, got), serialize(t, want)) {
				t.Fatalf("recovered %d rows, want the committed prefix %d", got.NumRows(), want.NumRows())
			}
			if st := re.Recovery(); st.TornTails != 1 || st.WALRecords != 2 {
				t.Fatalf("recovery stats off: %+v", st)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			// The tear was truncated away: a third open is tear-free.
			again := openStore(t, dir)
			defer again.Close()
			if st := again.Recovery(); st.TornTails != 0 || st.WALRecords != 2 {
				t.Fatalf("second recovery still sees damage: %+v", st)
			}
		})
	}
}

// lastRecordOffset walks a clean WAL's records and returns the offset where
// the final record starts, so a test can cut inside its header.
func lastRecordOffset(t *testing.T, raw []byte) int {
	t.Helper()
	off := 0
	for {
		if off+walHeaderSize > len(raw) {
			t.Fatal("wal ends mid-header; fixture not clean")
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		end := off + walHeaderSize + n
		if end >= len(raw) {
			return off
		}
		off = end
	}
}

// TestCompaction drives the WAL past CompactBytes and checks batches fold
// into segments, the log resets, and recovery is byte-identical.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, func(o *Options) { o.CompactBytes = 2048 })
	want := mkTable(t, "x", 1, 50, 2)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		batch := mkTable(t, "x", want.EndID()+1, 10, 1)
		if err := s.Append("x", batch); err != nil {
			t.Fatal(err)
		}
		if err := want.AppendTable(batch); err != nil {
			t.Fatal(err)
		}
	}
	// At least one compaction ran: multiple segments exist and the live
	// WAL is smaller than the journaled total.
	s.mu.Lock()
	segs := len(s.man.table(s.tables["x"].id).Segments)
	s.mu.Unlock()
	if segs < 2 {
		t.Fatalf("no compaction happened: %d segments", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	if got := re.Tables()["x"]; !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatalf("post-compaction recovery diverges: %d rows vs %d", got.NumRows(), want.NumRows())
	}
}

// TestCrashBetweenCompactionCommitAndWALReset simulates the nastiest crash
// window: the compaction's manifest commit landed but the WAL reset did
// not, so every WAL record's rows are already in a segment. Recovery must
// skip them by identifier coverage, not double-append or fail.
func TestCrashBetweenCompactionCommitAndWALReset(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, func(o *Options) { o.CompactBytes = 1 << 30 })
	want := mkTable(t, "x", 1, 30, 2)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	batch := mkTable(t, "x", want.EndID()+1, 12, 1)
	if err := s.Append("x", batch); err != nil {
		t.Fatal(err)
	}
	if err := want.AppendTable(batch); err != nil {
		t.Fatal(err)
	}
	// Preserve the WAL bytes, force the compaction, then restore the WAL —
	// the state a crash between commit and reset leaves behind.
	walPath := findWAL(t, dir)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	st := s.tables["x"]
	s.mu.Unlock()
	st.mu.Lock()
	err = s.compactLocked("x", st)
	st.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir)
	defer re.Close()
	if got := re.Tables()["x"]; !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("covered wal records were not skipped cleanly")
	}
	if st := re.Recovery(); st.WALRecords != 0 {
		t.Fatalf("covered records counted as replayed: %+v", st)
	}
}

// TestRegisterReplacesAndCleans re-registers a ref with new contents; the
// old segments must stop being served and be garbage-collected.
func TestRegisterReplacesAndCleans(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Register("x", mkTable(t, "x", 1, 40, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("x", mkTable(t, "x", 41, 5, 1)); err != nil {
		t.Fatal(err)
	}
	replacement := mkTable(t, "x", 1, 12, 3)
	if err := s.Register("x", replacement); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	if got := re.Tables()["x"]; !bytes.Equal(serialize(t, got), serialize(t, replacement)) {
		t.Fatal("re-registered contents not recovered")
	}
	if st := re.Recovery(); st.Segments != 1 || st.WALRecords != 0 {
		t.Fatalf("old segments or wal records survived the replace: %+v", st)
	}
}

// TestOrphanCleanup plants files a crashed operation would leave and checks
// Open removes them without touching committed state.
func TestOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	want := mkTable(t, "x", 1, 20, 1)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A table dir never committed, a stray segment in a live table dir, and
	// a torn manifest temp file.
	if err := os.MkdirAll(filepath.Join(dir, "t999999"), 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "t999999", "seg-000001.seg"), []byte("junk"), 0o644) //nolint:errcheck // test setup
	tdir := tableDir(t, dir)
	os.WriteFile(filepath.Join(tdir, "seg-000999.seg"), []byte("junk"), 0o644) //nolint:errcheck // test setup
	os.WriteFile(filepath.Join(dir, manifestTmp), []byte("{"), 0o644)          //nolint:errcheck // test setup

	re := openStore(t, dir)
	defer re.Close()
	if got := re.Tables()["x"]; !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("cleanup damaged committed state")
	}
	for _, gone := range []string{
		filepath.Join(dir, "t999999"),
		filepath.Join(tdir, "seg-000999.seg"),
		filepath.Join(dir, manifestTmp),
	} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived Open", gone)
		}
	}
}

// TestCorruptSegmentFailsRecovery flips a byte inside a committed segment;
// the store must refuse to serve the table's altered rows. Header corruption
// fails at Open; extent corruption is caught by the lazy CRC at the first
// column fault — either way the bad bytes never reach a query.
func TestCorruptSegmentFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Register("x", mkTable(t, "x", 1, 200, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tdir := tableDir(t, dir)
	seg := filepath.Join(tdir, "seg-000001.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		return // corruption landed in the header: rejected at Open
	}
	defer s2.Close()
	var faultErr error
	for _, p := range s2.Tables()["x"].Parts {
		release, err := p.Pin(nil)
		if err != nil {
			faultErr = err
			continue
		}
		release()
	}
	if faultErr == nil {
		t.Fatal("recovery served a corrupt segment")
	}
	if !strings.Contains(faultErr.Error(), "checksum") {
		t.Fatalf("fault error %v does not name the checksum", faultErr)
	}
}

// TestFsyncBatchSyncOnClose checks the batch policy journals write-through
// on Close even when the threshold was never reached.
func TestFsyncBatchSyncOnClose(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, func(o *Options) { o.Fsync = FsyncBatch; o.BatchBytes = 1 << 30 })
	want := mkTable(t, "x", 1, 10, 1)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	batch := mkTable(t, "x", 11, 5, 1)
	if err := s.Append("x", batch); err != nil {
		t.Fatal(err)
	}
	if err := want.AppendTable(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	if got := re.Tables()["x"]; !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("batch-mode records lost across clean close")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseFsyncPolicy("batch"); err != nil || p != FsyncBatch {
		t.Fatalf("batch: %v %v", p, err)
	}
	if _, err := ParseFsyncPolicy("yolo"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// findWAL locates the single table's WAL file.
func findWAL(t *testing.T, dir string) string {
	t.Helper()
	return filepath.Join(tableDir(t, dir), walName)
}

// tableDir locates the single table directory in a one-table store.
func tableDir(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "t") {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no table dir found")
	return ""
}

// TestCompactionFailureDoesNotFailAppend wedges compaction (a directory
// squats on the next segment file name) and checks appends keep succeeding
// — the record is durable in the WAL, compaction is just deferred — and
// that compaction recovers once the obstruction clears, with recovery
// byte-identical throughout.
func TestCompactionFailureDoesNotFailAppend(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, func(o *Options) { o.CompactBytes = 1024 })
	want := mkTable(t, "x", 1, 20, 1)
	if err := s.Register("x", want); err != nil {
		t.Fatal(err)
	}
	// Squat on seg-000002.seg: writeSegment's os.Create fails on a dir.
	obstruction := filepath.Join(tableDir(t, dir), segName(2))
	if err := os.Mkdir(obstruction, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		batch := mkTable(t, "x", want.EndID()+1, 10, 1)
		if err := s.Append("x", batch); err != nil {
			t.Fatalf("append %d failed on a deferred compaction: %v", i, err)
		}
		if err := want.AppendTable(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(obstruction); err != nil {
		t.Fatal(err)
	}
	// Next append triggers a successful compaction.
	batch := mkTable(t, "x", want.EndID()+1, 10, 1)
	if err := s.Append("x", batch); err != nil {
		t.Fatal(err)
	}
	if err := want.AppendTable(batch); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	segs := len(s.man.table(s.tables["x"].id).Segments)
	s.mu.Unlock()
	if segs < 2 {
		t.Fatalf("compaction never recovered: %d segments", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir)
	defer re.Close()
	if got := re.Tables()["x"]; !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("recovery diverges after deferred compaction")
	}
}

// TestOversizedWALRecordRejected checks the append-side record bound: a
// record the replay path would truncate as a tear must be refused up
// front, before it is acknowledged.
func TestOversizedWALRecordRejected(t *testing.T) {
	w, err := openWAL(filepath.Join(t.TempDir(), walName))
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.append(make([]byte, walMaxRecord+1), true, 1); err == nil {
		t.Fatal("oversized record journaled; replay would truncate it as a tear")
	}
	if err := w.append([]byte("fine"), true, 1); err != nil {
		t.Fatalf("log unusable after rejecting an oversized record: %v", err)
	}
}
