package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the store's commit point: a small JSON file listing, per
// table, the segment files that make up its durable contents. Every
// state-changing operation (register, compaction) writes the whole manifest
// to MANIFEST.tmp, fsyncs it, and renames it over MANIFEST — rename is
// atomic on POSIX filesystems, so a crash leaves either the old or the new
// manifest, never a torn one. Files a crashed operation wrote but never
// committed into the manifest are orphans; Open deletes them.
//
// JSON is a deliberate choice over a binary format: the manifest is tiny
// (tens of entries), rewritten rarely, and being able to `cat` it is worth
// more than the bytes.

const (
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
	// manifestFormat versions the manifest layout itself, so a future
	// incompatible change can be detected instead of misparsed.
	manifestFormat = 1
)

// manifest is the on-disk registry of committed table state.
type manifest struct {
	// Format is the manifest layout version (manifestFormat).
	Format int `json:"format"`
	// Version increments on every commit; recovery logs it so operators can
	// correlate a data directory with the write that produced it.
	Version uint64 `json:"version"`
	// NextID feeds table-directory allocation (t000001, t000002, …).
	NextID int `json:"next_id"`
	// Tables lists every live table.
	Tables []manifestTable `json:"tables"`
}

// manifestTable is one table's committed state.
type manifestTable struct {
	// ID names the table's directory under the store root. Directories use
	// generated IDs, not refs: refs are arbitrary client strings (they
	// contain '#' mode suffixes and could contain path separators) and must
	// never touch the filesystem namespace.
	ID string `json:"id"`
	// Ref is the wire-protocol table reference this table serves.
	Ref string `json:"ref"`
	// Segments are the table's immutable segment files, in append order,
	// relative to the table directory.
	Segments []string `json:"segments"`
}

// loadManifest reads dir's manifest; a missing file is an empty store.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return &manifest{Format: manifestFormat, NextID: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: parse manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("durable: manifest format %d, this build reads %d", m.Format, manifestFormat)
	}
	if m.NextID < 1 {
		m.NextID = 1
	}
	return &m, nil
}

// commit durably replaces dir's manifest: write-temp, fsync, rename, fsync
// the directory so the rename itself survives power loss.
func (m *manifest) commit(dir string) error {
	m.Version++
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("durable: commit manifest: %w", err)
	}
	return syncDir(dir)
}

// table returns the entry for id, or nil.
func (m *manifest) table(id string) *manifestTable {
	for i := range m.Tables {
		if m.Tables[i].ID == id {
			return &m.Tables[i]
		}
	}
	return nil
}

// syncDir fsyncs a directory, making recent renames and creations in it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
