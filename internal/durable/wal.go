package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"seabed/internal/obs"
	"seabed/internal/store"
)

// The write-ahead log holds append batches that have not yet been folded
// into a segment. One record per append:
//
//	u32 payload length (LE) | u32 CRC32-IEEE of payload (LE) | payload
//
// where the payload is the batch in store.WriteTo serialization — the same
// header layout as store's segment frames, so one inspection tool reads
// both. Records are written with a single write() and made durable per the
// store's fsync policy; recovery replays intact records in order and
// truncates the log at the first torn or checksum-failing record, which is
// the crash-consistency contract: a record is either wholly in (it was
// acknowledged, or raced the crash and wins harmlessly) or wholly dropped.

const (
	walName       = "wal.log"
	walHeaderSize = 8
	// walMaxRecord bounds a record's declared length during replay. It
	// matches wire.MaxFrame: an append batch arrives in one wire frame, so
	// no legitimate record can exceed it, and a corrupt length prefix past
	// it is recognized as a tear without trusting the claim.
	walMaxRecord = 1 << 30
)

// wal is an open write-ahead log, exclusive to one tableState.
type wal struct {
	f        *os.File
	path     string
	size     int64
	unsynced int64
	// obsFsync, when non-nil, observes each f.Sync's latency (the store's
	// seabed_wal_fsync_seconds histogram).
	obsFsync *obs.Histogram
	// broken latches a partial record write that could not be cut back:
	// appending past it would strand acknowledged records behind a tear,
	// so the log refuses further records until a restart recovers it.
	broken error
}

// openWAL opens (creating if needed) the log at path for appending.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: stat wal: %w", err)
	}
	return &wal{f: f, path: path, size: st.Size()}, nil
}

// append writes one record. With sync true the record is fsynced before
// append returns (FsyncAlways — the acknowledgement that follows promises
// durability); otherwise the write is left to the kernel until unsynced
// bytes exceed batchBytes (FsyncBatch — bounded loss window, one fsync
// amortized over many appends).
func (w *wal) append(payload []byte, sync bool, batchBytes int64) error {
	if w.broken != nil {
		return fmt.Errorf("durable: wal needs recovery after a failed write: %w", w.broken)
	}
	if len(payload) == 0 || int64(len(payload)) > walMaxRecord {
		// Replay bounds record lengths to walMaxRecord; a record past it
		// would be acknowledged now and truncated as a "tear" at the next
		// boot. Refuse it up front instead.
		return fmt.Errorf("durable: wal record of %d bytes exceeds the %d-byte record limit", len(payload), walMaxRecord)
	}
	rec := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderSize:], payload)
	if _, err := w.f.Write(rec); err != nil {
		// A partial write leaves torn bytes that would strand every later
		// record behind a mid-file tear at recovery. Cut the file back to
		// the last intact record; if even that fails, poison the log.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.broken = terr
		}
		return fmt.Errorf("durable: append wal record: %w", err)
	}
	w.size += int64(len(rec))
	w.unsynced += int64(len(rec))
	if sync || w.unsynced >= batchBytes {
		return w.sync()
	}
	return nil
}

// sync flushes outstanding records to stable storage.
func (w *wal) sync() error {
	if w.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync wal: %w", err)
	}
	if w.obsFsync != nil {
		w.obsFsync.ObserveDuration(time.Since(start))
	}
	w.unsynced = 0
	return nil
}

// reset empties the log after its records were compacted into a segment.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncate wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync truncated wal: %w", err)
	}
	w.size, w.unsynced = 0, 0
	return nil
}

// close syncs and closes the log.
func (w *wal) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL reads the log at path, decoding every intact record in order.
// It returns the decoded batches, the offset where intact records end, and
// whether a torn tail (incomplete or checksum-failing trailing record) was
// found past that offset — the caller truncates the file there before
// reopening it for appends. A missing file is an empty log. A record whose
// checksum verifies but whose payload fails to decode is not a tear; it is
// data corruption and replays as an error.
func replayWAL(path string) (batches []*store.Table, goodBytes int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("durable: open wal for replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	for {
		var hdr [walHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return batches, offset, false, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return batches, offset, true, nil // torn header
			}
			// A real read failure (EIO, not a short file) is NOT a tear:
			// truncating here would delete acknowledged records a retried
			// read might return intact. Fail recovery loudly instead.
			return nil, 0, false, fmt.Errorf("durable: read wal at offset %d: %w", offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > walMaxRecord {
			return batches, offset, true, nil // implausible length: a tear
		}
		payload, rerr := readCapped(br, int(length))
		if rerr != nil {
			if errors.Is(rerr, io.ErrUnexpectedEOF) || rerr == io.EOF {
				return batches, offset, true, nil // torn payload
			}
			return nil, 0, false, fmt.Errorf("durable: read wal record at offset %d: %w", offset, rerr)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return batches, offset, true, nil
		}
		batch, derr := store.Read(bytes.NewReader(payload))
		if derr != nil {
			return nil, 0, false, fmt.Errorf("durable: wal record at offset %d passed its checksum but failed to decode: %w", offset, derr)
		}
		batches = append(batches, batch)
		offset += walHeaderSize + int64(length)
	}
}

// readCapped reads exactly n bytes, growing in bounded chunks so a corrupt
// length prefix cannot force a gigabyte allocation before hitting the tear.
func readCapped(br *bufio.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
