//go:build !unix

package durable

import "os"

// mapFile reads the file's bytes onto the heap on platforms without a usable
// mmap; segments are then eagerly resident but columns still decode lazily.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// munmapFile matches the unix build's signature; nothing to release here.
func munmapFile([]byte) error { return nil }
