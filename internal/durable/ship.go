package durable

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"seabed/internal/store"
)

// Segment shipping: the daemon-to-daemon replication surface (wire v6).
//
// A table's durable bytes are already replication-ready — immutable,
// CRC'd SBSG files plus a WAL tail — so shipping a table to a peer is a
// file transfer, not a re-encode: ShipManifest inventories the committed
// segments and snapshots the uncompacted tail, SegmentBytes serves one
// segment's raw file bytes, and InstallTable on the receiving daemon writes
// the verified bytes back down byte-for-byte (same names, same CRCs) and
// journals the tail, so a healed shard's directory is a faithful replica of
// its source. Memory-only daemons join the same protocol through
// EncodeSegment/DecodeSegment, which run the v2 columnar codec against a
// byte slice instead of a file.

// ShipSegment describes one shippable committed segment: file name, size,
// and CRC-32 (IEEE) over the whole file.
type ShipSegment struct {
	// Name is the segment's file name (seg-NNNNNN.seg).
	Name string
	// Size is the file's byte length.
	Size int64
	// CRC is the CRC-32 (IEEE) of the file bytes.
	CRC uint32
}

// ShipFile is one incoming segment for InstallTable: a file name and the
// verified raw bytes to write under it.
type ShipFile struct {
	// Name is the segment file name to install (seg-NNNNNN.seg).
	Name string
	// Data holds the raw file bytes.
	Data []byte
}

// EncodeSegment encodes t as one v2 columnar segment in memory: the exact
// bytes writeSegment would put in a file. It is how a memory-only daemon
// ships a table to a peer.
func EncodeSegment(t *store.Table) ([]byte, error) {
	plans, head, release, err := planSegment(t)
	if err != nil {
		return nil, err
	}
	defer release()
	headerLen := uint64(len(head))
	size := align8(headerLen)
	for _, pc := range plans {
		for i := range pc {
			size += align8(pc[i].meta.size)
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, head...)
	buf = append(buf, make([]byte, align8(headerLen)-headerLen)...)
	var ext []byte
	for _, pc := range plans {
		for i := range pc {
			ext = store.AppendColumnExtent(ext[:0], pc[i].col)
			buf = append(buf, ext...)
			buf = append(buf, make([]byte, align8(pc[i].meta.size)-pc[i].meta.size)...)
		}
	}
	if uint64(len(buf)) != size {
		return nil, fmt.Errorf("durable: segment sized %d, encoded %d", size, len(buf))
	}
	return buf, nil
}

// DecodeSegment opens v2 columnar segment bytes without a file: the
// directory header is validated (CRC included) and the table is built as
// lazy view partitions aliasing data, whose column extents are CRC-verified
// on first touch. data must stay immutable for the table's lifetime.
func DecodeSegment(data []byte) (*store.Table, error) {
	m := &mappedSegment{path: "(shipped segment)", data: data}
	if err := m.parseHeader(); err != nil {
		return nil, err
	}
	return m.table(store.NewResidency(0))
}

// ShipManifest inventories ref for segment shipping: the committed segment
// files in install order (name, size, whole-file CRC) plus a snapshot of the
// uncompacted WAL tail (nil when the WAL holds nothing). The file reads run
// under the table lock, so the manifest is a consistent cut even against
// concurrent appends and compactions.
func (s *Store) ShipManifest(ref string) ([]ShipSegment, *store.Table, error) {
	st, err := s.stateFor(ref, false)
	if err != nil {
		return nil, nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tdir := filepath.Join(s.opts.Dir, st.id)
	segs := make([]ShipSegment, 0, len(st.segments))
	for _, name := range st.segments {
		data, err := os.ReadFile(filepath.Join(tdir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("durable: read segment for shipping: %w", err)
		}
		segs = append(segs, ShipSegment{Name: name, Size: int64(len(data)), CRC: crc32.ChecksumIEEE(data)})
	}
	var tail *store.Table
	if st.pending != nil && st.pending.NumRows() > 0 {
		tail = st.pending.Snapshot()
	}
	return segs, tail, nil
}

// SegmentBytes serves one committed segment's raw file bytes for shipping.
// The name must be in ref's live segment set.
func (s *Store) SegmentBytes(ref, name string) ([]byte, error) {
	st, err := s.stateFor(ref, false)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, seg := range st.segments {
		if seg == name {
			data, err := os.ReadFile(filepath.Join(s.opts.Dir, st.id, name))
			if err != nil {
				return nil, fmt.Errorf("durable: read segment for shipping: %w", err)
			}
			return data, nil
		}
	}
	return nil, fmt.Errorf("durable: table %q has no live segment %q", ref, name)
}

// InstallTable installs a shipped table: each incoming segment's raw bytes
// are written under its original name (fsynced), the manifest commits the
// set, and the WAL tail — the source's uncompacted rows — is journaled on
// top, so the installed directory round-trips the source's CRC-for-CRC.
// The assembled table (segments + tail), ready for the server registry, is
// returned. To keep the committed-segments-are-immutable invariant, install
// targets must be fresh: a ref that already has committed segments is
// rejected rather than overwritten in place.
func (s *Store) InstallTable(ref string, files []ShipFile, tail *store.Table) (*store.Table, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("durable: install of %q ships no segments", ref)
	}
	names := make([]string, len(files))
	for i, f := range files {
		var n int
		if _, err := fmt.Sscanf(f.Name, "seg-%06d.seg", &n); err != nil || segName(n) != f.Name {
			return nil, fmt.Errorf("durable: install of %q: segment name %q is not a seg-NNNNNN.seg file", ref, f.Name)
		}
		names[i] = f.Name
	}
	st, err := s.stateFor(ref, true)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.segments) > 0 {
		return nil, fmt.Errorf("durable: table %q already has committed segments; install targets must be fresh", ref)
	}
	tdir := filepath.Join(s.opts.Dir, st.id)
	if st.wal == nil {
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			return nil, fmt.Errorf("durable: create table dir: %w", err)
		}
		w, err := openWAL(filepath.Join(tdir, walName))
		if err != nil {
			return nil, err
		}
		w.obsFsync = s.mFsync
		st.wal = w
	}
	for _, f := range files {
		if err := writeRawFile(filepath.Join(tdir, f.Name), f.Data); err != nil {
			return nil, fmt.Errorf("durable: install segment %s: %w", f.Name, err)
		}
	}
	if err := syncDir(tdir); err != nil {
		return nil, err
	}
	if err := s.commitTable(st.id, ref, names); err != nil {
		return nil, err
	}
	st.segments = names
	st.nextSeq = nextSegSeq(names)
	st.pending = nil

	// Assemble the installed table the same way recovery would.
	var tbl *store.Table
	for _, name := range names {
		part, _, _, err := s.openSegment(filepath.Join(tdir, name))
		if err != nil {
			return nil, fmt.Errorf("durable: open installed segment %s: %w", name, err)
		}
		if tbl == nil {
			tbl = part
		} else if err := tbl.AppendTable(part); err != nil {
			return nil, fmt.Errorf("durable: installed segment %s does not continue its predecessors: %w", name, err)
		}
	}
	st.endID = tbl.EndID()
	if tail != nil && tail.NumRows() > 0 {
		var buf bytes.Buffer
		if _, err := tail.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("durable: serialize shipped wal tail: %w", err)
		}
		if err := st.wal.append(buf.Bytes(), true, s.opts.BatchBytes); err != nil {
			return nil, err
		}
		if err := tbl.AppendTable(tail); err != nil {
			return nil, fmt.Errorf("durable: shipped wal tail does not continue the segments: %w", err)
		}
		st.pending = tail.Snapshot()
		st.endID = tail.EndID()
	}
	return tbl, nil
}

// writeRawFile durably writes data to path: create, write, fsync, close.
func writeRawFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
