package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"seabed/internal/wire"
)

// Pool is a per-endpoint TCP connection pool speaking the wire protocol: it
// dials, handshakes, and recycles connections to one seabed-server, and runs
// single request/response round trips over them. RemoteCluster composes one
// Pool per endpoint; a sharded deployment (internal/shard) composes N
// RemoteClusters and therefore N independent pools, so scatter requests to
// different shards never queue behind one socket or one lock.
//
// Every round trip checks a connection out for exclusive use, returns it on
// success, and discards it on transport errors, so a poisoned socket never
// serves a second request. A transport failure on a pooled connection —
// typically a server that restarted while the socket sat idle — is retried
// once on a freshly dialed one.
type Pool struct {
	addr    string
	workers int
	// shardIndex/shardCount hold the shard identity the server declared at
	// handshake (count 0 = none declared).
	shardIndex, shardCount int

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// DialPool connects to a seabed-server, performs the version handshake, and
// returns a pool primed with the handshaked connection.
func DialPool(addr string) (*Pool, error) {
	p := &Pool{addr: addr}
	conn, err := p.dialFirst()
	if err != nil {
		return nil, err
	}
	p.put(conn)
	return p, nil
}

// Addr returns the server address this pool dials.
func (p *Pool) Addr() string { return p.addr }

// Workers returns the worker count the server reported at handshake.
func (p *Pool) Workers() int { return p.workers }

// Shard returns the shard identity the server declared at handshake; count
// is 0 for a server that declared none.
func (p *Pool) Shard() (index, count int) { return p.shardIndex, p.shardCount }

// dialFirst opens the pool's first connection and records the handshake
// metadata (worker count, shard identity). Later dials from the request path
// only validate the handshake, so the recorded fields stay immutable — and
// therefore readable without a lock — after DialPool returns.
func (p *Pool) dialFirst() (net.Conn, error) {
	conn, workers, shardIndex, shardCount, err := p.handshake()
	if err != nil {
		return nil, err
	}
	p.workers, p.shardIndex, p.shardCount = workers, shardIndex, shardCount
	return conn, nil
}

// dial opens and handshakes one connection.
func (p *Pool) dial() (net.Conn, error) {
	conn, _, _, _, err := p.handshake()
	return conn, err
}

// handshake opens one connection and performs the Hello/Welcome exchange.
func (p *Pool) handshake() (net.Conn, int, int, int, error) {
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("remote: dial %s: %w", p.addr, err)
	}
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.EncodeHello()); err != nil {
		conn.Close()
		return nil, 0, 0, 0, err
	}
	t, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, 0, 0, fmt.Errorf("remote: handshake with %s: %w", p.addr, err)
	}
	if t == wire.MsgError {
		conn.Close()
		return nil, 0, 0, 0, fmt.Errorf("remote: server %s: %s", p.addr, wire.DecodeError(payload))
	}
	if t != wire.MsgWelcome {
		conn.Close()
		return nil, 0, 0, 0, fmt.Errorf("remote: handshake with %s: unexpected %v frame", p.addr, t)
	}
	version, workers, shardIndex, shardCount, err := wire.DecodeWelcome(payload)
	if version != wire.Version {
		// Checked before the decode error so an older server — whose shorter
		// Welcome fails to decode — gets the actionable "speaks protocol vN"
		// diagnosis instead of the truncated-payload symptom. A version-0
		// decode failure really is a malformed frame; report it as such.
		if version != 0 || err == nil {
			conn.Close()
			return nil, 0, 0, 0, fmt.Errorf("remote: server %s speaks protocol v%d, want v%d", p.addr, version, wire.Version)
		}
	}
	if err != nil {
		conn.Close()
		return nil, 0, 0, 0, err
	}
	return conn, workers, shardIndex, shardCount, nil
}

// get checks a connection out of the pool, dialing a fresh one if none is
// idle. fromPool reports which, so callers know a transport failure may just
// be a stale pooled socket.
func (p *Pool) get() (conn net.Conn, fromPool bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, errors.New("remote: cluster is closed")
	}
	if n := len(p.idle); n > 0 {
		conn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return conn, true, nil
	}
	p.mu.Unlock()
	conn, err = p.dial()
	return conn, false, err
}

// put returns a healthy connection to the pool.
func (p *Pool) put(conn net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.idle = append(p.idle, conn)
	p.mu.Unlock()
}

// RoundTrip sends one request frame and reads its response. Server-reported
// failures surface as errors with the server's message; the response type is
// returned for the caller to validate.
func (p *Pool) RoundTrip(reqType wire.MsgType, req []byte) (wire.MsgType, []byte, error) {
	for {
		conn, fromPool, err := p.get()
		if err != nil {
			return 0, nil, err
		}
		respType, payload, err := p.exchange(conn, reqType, req)
		if err != nil {
			if fromPool {
				continue // stale pooled socket: retry on a fresh dial
			}
			return 0, nil, err
		}
		if respType == wire.MsgError {
			return respType, nil, fmt.Errorf("remote: server: %s", wire.DecodeError(payload))
		}
		return respType, payload, nil
	}
}

// exchange performs one request/response on conn, pooling it on success and
// closing it on transport errors.
func (p *Pool) exchange(conn net.Conn, reqType wire.MsgType, req []byte) (wire.MsgType, []byte, error) {
	if err := wire.WriteFrame(conn, reqType, req); err != nil {
		conn.Close()
		return 0, nil, err
	}
	respType, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return 0, nil, fmt.Errorf("remote: read %v response: %w", reqType, err)
	}
	p.put(conn)
	return respType, payload, nil
}

// Close releases the pool. In-flight requests finish on their checked-out
// connections, which are then discarded.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	var first error
	for _, conn := range p.idle {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.idle = nil
	return first
}
